bin/npb_run.ml: Array Preo_npb Preo_runtime Printf Sys
