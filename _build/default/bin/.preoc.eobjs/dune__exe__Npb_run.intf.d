bin/npb_run.mli:
