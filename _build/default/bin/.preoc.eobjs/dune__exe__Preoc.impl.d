bin/preoc.ml: Array Buffer Format Fun Hashtbl List Preo Preo_automata Preo_connectors Preo_lang Preo_reo Preo_runtime Preo_support Preo_verify Printf String Sys Thread
