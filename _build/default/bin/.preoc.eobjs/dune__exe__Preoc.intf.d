bin/preoc.mli:
