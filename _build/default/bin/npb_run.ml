(* npb_run: run one NPB kernel from the command line.

     npb_run KERNEL CLASS NSLAVES [orig|reo|reo-partitioned|reo-sync]

     npb_run cg C 4 reo
     npb_run lu S 8 orig
*)

let usage () =
  prerr_endline
    "usage: npb_run {cg|lu|ep|is|mg} {S|W|A|C} NSLAVES [orig|reo|reo-partitioned|reo-sync]";
  exit 2

let () =
  let kernel, cls, n, variant =
    match Array.to_list Sys.argv with
    | _ :: k :: c :: n :: rest ->
      let cls =
        match Preo_npb.Workloads.cls_of_string c with
        | Some cls -> cls
        | None -> usage ()
      in
      let v = match rest with [] -> "reo" | v :: _ -> v in
      (k, cls, int_of_string n, v)
    | _ -> usage ()
  in
  let comm =
    match variant with
    | "orig" -> Preo_npb.Comm.hand ~nslaves:n
    | "reo" -> Preo_npb.Comm.reo ~nslaves:n ()
    | "reo-partitioned" ->
      Preo_npb.Comm.reo ~config:Preo_runtime.Config.new_partitioned ~nslaves:n ()
    | "reo-sync" ->
      Preo_npb.Comm.reo
        ~config:(Preo_runtime.Config.synchronous_of Preo_runtime.Config.new_jit)
        ~nslaves:n ()
    | _ -> usage ()
  in
  match kernel with
  | "cg" ->
    let r = Preo_npb.Cg.run ~comm ~cls ~nslaves:n in
    Printf.printf "CG class %s N=%d %s: zeta=%.10f in %.3fs (%d connector steps)\n"
      (Preo_npb.Workloads.cls_name cls) n variant r.zeta r.seconds r.comm_steps
  | "lu" ->
    let r = Preo_npb.Lu.run ~comm ~cls ~nslaves:n in
    Printf.printf
      "LU class %s N=%d %s: residual=%.10f in %.3fs (%d connector steps)\n"
      (Preo_npb.Workloads.cls_name cls) n variant r.residual r.seconds
      r.comm_steps
  | "is" ->
    let r = Preo_npb.Is.run ~comm ~cls ~nslaves:n in
    Printf.printf "IS class %s N=%d %s: checksum=%.3f in %.3fs (%d connector steps)\n"
      (Preo_npb.Workloads.cls_name cls) n variant r.checksum r.seconds
      r.comm_steps
  | "mg" ->
    let r = Preo_npb.Mg.run ~comm ~cls ~nslaves:n in
    Printf.printf "MG class %s N=%d %s: norm=%.6f in %.3fs (%d connector steps)\n"
      (Preo_npb.Workloads.cls_name cls) n variant r.norm r.seconds r.comm_steps
  | "ep" ->
    let r = Preo_npb.Ep.run ~comm ~cls ~nslaves:n in
    Printf.printf "EP class %s N=%d %s: pi~%.6f in %.3fs (%d connector steps)\n"
      (Preo_npb.Workloads.cls_name cls) n variant r.estimate r.seconds
      r.comm_steps
  | _ -> usage ()
