examples/distributed.ml: Array List Port Preo Preo_connectors Preo_dist Printf Sys Task Thread Unix Value
