examples/distributed.mli:
