examples/master_slaves.ml: Array List Port Preo Preo_connectors Printf Sys Task Value
