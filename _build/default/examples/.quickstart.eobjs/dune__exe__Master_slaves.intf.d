examples/master_slaves.mli:
