examples/ordered_merge.ml: Array List Port Preo Printf Sys Value
