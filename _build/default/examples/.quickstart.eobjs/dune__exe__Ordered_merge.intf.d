examples/ordered_merge.mli:
