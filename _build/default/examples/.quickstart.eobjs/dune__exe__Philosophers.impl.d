examples/philosophers.ml: Array Ast Eval List Port Preo Preo_automata Preo_support Preo_verify Printf Sys Task Value
