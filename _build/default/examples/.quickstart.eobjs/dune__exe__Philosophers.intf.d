examples/philosophers.mli:
