examples/pipeline.ml: Array Config Connector List Port Preo Printf Sys Task Value
