examples/pipeline.mli:
