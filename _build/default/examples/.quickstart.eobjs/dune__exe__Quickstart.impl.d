examples/quickstart.ml: List Port Preo Printf Value
