examples/quickstart.mli:
