examples/streaming.ml: Array Format List Preo_runtime Preo_stream Preo_support Printf String Sys Value
