examples/streaming.mli:
