(* Master–slaves map/reduce with connector-based coordination — the shape of
   the paper's NPB experiments. The master deals work items round-robin over
   a distributor connector (so every slave gets the same count); slaves
   return results through the paper's ordered-merger connector (Fig. 9), so
   the master collects them in rank order regardless of completion order.

     dune exec examples/master_slaves.exe -- 4
*)

open Preo

let () =
  let n = try int_of_string Sys.argv.(1) with _ -> 3 in
  let rounds = 4 in
  let scatter_e = Preo_connectors.Catalog.find "distributor" in
  let scatter =
    instantiate (Preo_connectors.Catalog.compiled scatter_e) ~lengths:[ ("hd", n) ]
  in
  let gather_e = Preo_connectors.Catalog.find "ordered_merger" in
  let gather =
    instantiate (Preo_connectors.Catalog.compiled gather_e)
      ~lengths:[ ("tl", n); ("hd", n) ]
  in
  let work_out = (outports scatter "tl").(0) in
  let work_in = inports scatter "hd" in
  let res_out = outports gather "tl" in
  let res_in = inports gather "hd" in
  let slave rank () =
    for _ = 1 to rounds do
      let x = Value.to_int (Port.recv work_in.(rank)) in
      (* square the work item; tag with no rank — the connector orders us *)
      Port.send res_out.(rank) (Value.int (x * x))
    done
  in
  let master () =
    for r = 1 to rounds do
      (* deal one item to each slave (the distributor enforces the order),
         then collect the round's results in rank order *)
      for i = 1 to n do
        Port.send work_out (Value.int (((r - 1) * n) + i))
      done;
      Printf.printf "round %d results:" r;
      Array.iter
        (fun p -> Printf.printf " %d" (Value.to_int (Port.recv p)))
        res_in;
      print_newline ()
    done
  in
  Task.run_all (master :: List.init n slave);
  Printf.printf "scatter steps=%d gather steps=%d\n" (steps scatter)
    (steps gather);
  shutdown scatter;
  shutdown gather
