(* The paper's Example 8 / Fig. 9: task C receives messages from N producer
   tasks in strict round-robin order, where N is chosen at run time — the
   protocol the original Reo could not express.

     dune exec examples/ordered_merge.exe -- 6
*)

open Preo

let protocol =
  {|
X(tl;prev,next,hd) =
  Repl2(tl;prev,v) mult Fifo1(v;w) mult Repl2(w;next,hd)

ConnectorEx11N(tl[];hd[]) =
  if (#tl == 1) {
    Fifo1(tl[1];hd[1])
  } else {
    prod (i:1..#tl) X(tl[i];prev[i],next[i],hd[i])
    mult prod (i:1..#tl-1) Seq2(next[i],prev[i+1];)
    mult Seq2(prev[1],next[#tl];)
  }

main(N) = ConnectorEx11N(out[1..N];in[1..N]) among
  forall (i:1..N) Tasks.pro(out[i]) and Tasks.con(in[1..N])
|}

let () =
  let n = try int_of_string Sys.argv.(1) with _ -> 4 in
  let rounds = 3 in
  let producer args =
    let out = out1 (List.hd args) in
    for r = 1 to rounds do
      Port.send out (Value.int r)
    done
  in
  let consumer args =
    match List.hd args with
    | Ins ports ->
      for r = 1 to rounds do
        Printf.printf "round %d:" r;
        Array.iteri
          (fun j p ->
            let got = Value.to_int (Port.recv p) in
            Printf.printf " p%d:r%d" (j + 1) got;
            assert (got = r))
          ports;
        print_newline ()
      done
    | Outs _ -> failwith "consumer expects inports"
  in
  let inst =
    run_main_source ~source:protocol ~params:[ ("N", n) ]
      [ ("Tasks.pro", producer); ("Tasks.con", consumer) ]
  in
  Printf.printf
    "N=%d: every round arrived in strict producer order (%d global steps)\n" n
    (steps inst)
