(* A processing pipeline with a run-time number of stages: stage i reads
   from its inbound buffer, transforms the datum, and writes to the next
   buffer. The inter-stage protocol is a connector (a fifo array defined in
   the DSL); stages are ordinary OCaml functions. The partitioned runtime
   (the DESIGN.md extension) runs each hop on its own engine.

     dune exec examples/pipeline.exe -- 5 partitioned
*)

open Preo

let protocol = {|NPipe(tl[];hd[]) = prod (i:1..#tl) Fifo1(tl[i];hd[i])|}

let () =
  let nstages = try int_of_string Sys.argv.(1) with _ -> 4 in
  let config =
    match if Array.length Sys.argv > 2 then Sys.argv.(2) else "jit" with
    | "existing" -> Config.existing
    | "partitioned" -> Config.new_partitioned
    | _ -> Config.new_jit
  in
  let items = 6 in
  (* nstages+1 hops: source -> stage 1 -> ... -> stage n -> sink *)
  let compiled = compile ~source:protocol ~name:"NPipe" in
  let inst =
    instantiate ~config compiled
      ~lengths:[ ("tl", nstages + 1); ("hd", nstages + 1) ]
  in
  let outs = outports inst "tl" in
  let ins = inports inst "hd" in
  let source () =
    for i = 1 to items do
      Port.send outs.(0) (Value.int i)
    done
  in
  let stage k () =
    for _ = 1 to items do
      let x = Value.to_int (Port.recv ins.(k)) in
      (* each stage adds a digit so the provenance is visible *)
      Port.send outs.(k + 1) (Value.int ((x * 10) + k + 1))
    done
  in
  let sink () =
    for _ = 1 to items do
      Printf.printf "sink got %d\n%!" (Value.to_int (Port.recv ins.(nstages)))
    done
  in
  Task.run_all
    ((source :: List.init nstages (fun k -> stage k)) @ [ sink ]);
  Printf.printf "%d stages, %d engine regions, %d global steps\n" nstages
    (Connector.nregions (connector inst))
    (steps inst)
