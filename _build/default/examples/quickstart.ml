(* Quickstart: the paper's Example 1.

   "First task A communicates a message to task C, then task B communicates
   a message to C" — the protocol is a separate module (the DSL text below),
   the tasks are plain OCaml functions that only see ports.

     dune exec examples/quickstart.exe
*)

open Preo

let protocol =
  {|
// Fig. 8 of the paper: ConnectorEx11a, written with a composite X
X(tl;prev,next,hd) =
  Repl2(tl;prev,v) mult Fifo1(v;w) mult Repl2(w;next,hd)

ConnectorEx11(tl1,tl2;hd1,hd2) =
  X(tl1;prev1,next1,hd1) mult X(tl2;prev2,next2,hd2)
  mult Seq2(next1,prev2;) mult Seq2(prev1,next2;)

main = ConnectorEx11(aOut,bOut;cIn1,cIn2) among
  Tasks.a(aOut) and Tasks.b(bOut) and Tasks.c(cIn1,cIn2)
|}

let () =
  let rounds = 3 in
  let task_a args =
    let out = out1 (List.hd args) in
    for i = 1 to rounds do
      Port.send out (Value.str (Printf.sprintf "A%d" i))
    done
  in
  let task_b args =
    let out = out1 (List.hd args) in
    for i = 1 to rounds do
      Port.send out (Value.str (Printf.sprintf "B%d" i))
    done
  in
  let task_c args =
    match args with
    | [ p1; p2 ] ->
      let from_a = in1 p1 and from_b = in1 p2 in
      for _ = 1 to rounds do
        (* The connector guarantees A-then-B per round; no auxiliary
           communication appears in any task (contrast the paper's Fig. 2).
           Receive in two bindings: OCaml evaluates Printf arguments
           right-to-left, which would ask for B's message first. *)
        let a = Value.to_str (Port.recv from_a) in
        let b = Value.to_str (Port.recv from_b) in
        Printf.printf "C received %s then %s\n%!" a b
      done
    | _ -> failwith "task C expects two ports"
  in
  let inst =
    run_main_source ~source:protocol ~params:[]
      [ ("Tasks.a", task_a); ("Tasks.b", task_b); ("Tasks.c", task_c) ]
  in
  Printf.printf "protocol made %d global execution steps\n" (steps inst)
