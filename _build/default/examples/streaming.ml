(* Stream processing on top of connectors: a log-analytics pipeline built
   from the combinator layer (lib/stream). The plumbing — buffering, strict
   round-robin dealing to workers, merging — is entirely connector-based;
   the stages are plain OCaml closures.

     dune exec examples/streaming.exe -- 4
*)

module S = Preo_stream.Stream_graph
open Preo_support

let () =
  let nworkers = try int_of_string Sys.argv.(1) with _ -> 3 in
  let b = S.create () in
  (* source: synthetic "log lines" *)
  let lines =
    List.init 24 (fun i ->
        Value.str
          (Printf.sprintf "%s request=%d"
             (if i mod 3 = 0 then "ERROR" else "INFO")
             i))
  in
  let events = S.buffer ~depth:4 b (S.of_list b ~name:"log" lines) in
  (* keep only errors *)
  let errors =
    S.filter b
      (fun v -> String.length (Value.to_str v) >= 5
                && String.sub (Value.to_str v) 0 5 = "ERROR")
      events
  in
  (* deal to workers round-robin; each worker annotates with its id *)
  let sharded = S.round_robin b errors nworkers in
  let processed =
    List.mapi
      (fun w shard ->
        S.buffer b
          (S.map b
             (fun v -> Value.str (Printf.sprintf "[worker %d] %s" w (Value.to_str v)))
             shard))
      sharded
  in
  (* merge the workers' outputs into one report *)
  let report = S.to_list b (S.merge b processed) in
  let conn = S.run b in
  List.iter
    (fun v -> print_endline (Value.to_str v))
    (List.rev !report);
  Format.printf "pipeline: %a@." Preo_runtime.Connector.pp_stats
    (Preo_runtime.Connector.stats conn)
