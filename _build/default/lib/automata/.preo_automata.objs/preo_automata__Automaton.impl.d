lib/automata/automaton.ml: Array Command Constr Format Iset List Option Preo_support Queue
