lib/automata/automaton.mli: Command Constr Format Iset Preo_support Vertex
