lib/automata/cell.ml: Format Hashtbl Mutex Printf
