lib/automata/cell.mli: Format
