lib/automata/command.ml: Array Constr Datafun Format Fun Hashtbl Iset List Preo_support Union_find Value Vertex
