lib/automata/command.mli: Constr Format Iset Preo_support Value Vertex
