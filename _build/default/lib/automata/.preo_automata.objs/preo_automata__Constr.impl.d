lib/automata/constr.ml: Cell Format Iset List Preo_support Value Vertex
