lib/automata/constr.mli: Cell Format Preo_support Vertex
