lib/automata/datafun.ml: Fun Hashtbl Mutex Preo_support Printf Value
