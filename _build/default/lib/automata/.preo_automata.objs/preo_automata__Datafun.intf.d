lib/automata/datafun.mli: Preo_support
