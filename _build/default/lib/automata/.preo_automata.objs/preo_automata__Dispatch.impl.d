lib/automata/dispatch.ml: Array Automaton Hashtbl Iset List Preo_support Vertex
