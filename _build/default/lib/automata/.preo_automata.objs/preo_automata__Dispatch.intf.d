lib/automata/dispatch.mli: Automaton Preo_support
