lib/automata/dot.ml: Array Automaton Buffer Constr Format Iset List Preo_support Printf String Vertex
