lib/automata/dot.mli: Automaton
