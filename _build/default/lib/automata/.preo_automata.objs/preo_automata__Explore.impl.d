lib/automata/explore.ml: Array Automaton Queue
