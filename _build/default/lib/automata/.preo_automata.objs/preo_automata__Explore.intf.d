lib/automata/explore.mli: Automaton
