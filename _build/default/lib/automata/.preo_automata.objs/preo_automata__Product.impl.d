lib/automata/product.ml: Array Automaton Constr Dyn Hashtbl Iset List Option Preo_support Printf Queue Sys
