lib/automata/product.mli: Automaton Preo_support
