lib/automata/vertex.ml: Format Hashtbl Int Mutex Printf
