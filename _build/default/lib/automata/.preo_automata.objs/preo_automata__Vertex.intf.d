lib/automata/vertex.mli: Format
