type t = int

let lock = Mutex.create ()
let next = ref 0
let names : (int, string) Hashtbl.t = Hashtbl.create 64

let fresh name =
  Mutex.lock lock;
  let id = !next in
  incr next;
  Hashtbl.replace names id name;
  Mutex.unlock lock;
  id

let name c = try Hashtbl.find names c with Not_found -> Printf.sprintf "c%d" c
let pp ppf c = Format.fprintf ppf "%s@%d" (name c) c
