(** Memory cells of buffered primitives (e.g. the slot of a fifo1).

    Cells are allocated process-globally like vertices; a connector instance
    renumbers the cells of its constituent automata densely before execution
    so the engine can keep its memory in a flat array. *)

type t = int

val fresh : string -> t
val name : t -> string
val pp : Format.formatter -> t -> unit
