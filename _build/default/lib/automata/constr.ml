open Preo_support

type term =
  | Port of Vertex.t
  | Pre of Cell.t
  | Post of Cell.t
  | Const of Value.t
  | App of string * term

type atom = Eq of term * term | Pred of string * bool * term
type t = atom list

let tt : t = []
let ( === ) a b = Eq (a, b)
let pred name t = Pred (name, true, t)
let npred name t = Pred (name, false, t)
let conj a b = a @ b

let rec map_term_vertices f = function
  | Port v -> Port (f v)
  | (Pre _ | Post _ | Const _) as t -> t
  | App (name, t) -> App (name, map_term_vertices f t)

let rec map_term_cells f = function
  | Pre c -> Pre (f c)
  | Post c -> Post (f c)
  | (Port _ | Const _) as t -> t
  | App (name, t) -> App (name, map_term_cells f t)

let map_atom g = function
  | Eq (a, b) -> Eq (g a, g b)
  | Pred (name, pos, t) -> Pred (name, pos, g t)

let map_vertices f t = List.map (map_atom (map_term_vertices f)) t
let map_cells f t = List.map (map_atom (map_term_cells f)) t

let rec term_ports acc = function
  | Port v -> Iset.add v acc
  | Pre _ | Post _ | Const _ -> acc
  | App (_, t) -> term_ports acc t

let rec term_cells acc = function
  | Pre c | Post c -> Iset.add c acc
  | Port _ | Const _ -> acc
  | App (_, t) -> term_cells acc t

let fold_terms f init t =
  List.fold_left
    (fun acc atom ->
      match atom with
      | Eq (a, b) -> f (f acc a) b
      | Pred (_, _, x) -> f acc x)
    init t

let ports t = fold_terms term_ports Iset.empty t
let cells t = fold_terms term_cells Iset.empty t

let rec pp_term ppf = function
  | Port v -> Vertex.pp ppf v
  | Pre c -> Format.fprintf ppf "pre(%a)" Cell.pp c
  | Post c -> Format.fprintf ppf "post(%a)" Cell.pp c
  | Const v -> Value.pp ppf v
  | App (name, t) -> Format.fprintf ppf "%s(%a)" name pp_term t

let pp_atom ppf = function
  | Eq (a, b) -> Format.fprintf ppf "%a = %a" pp_term a pp_term b
  | Pred (name, true, t) -> Format.fprintf ppf "%s(%a)" name pp_term t
  | Pred (name, false, t) -> Format.fprintf ppf "!%s(%a)" name pp_term t

let pp ppf = function
  | [] -> Format.pp_print_string ppf "true"
  | atoms ->
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf " & ")
      pp_atom ppf atoms
