(** Data constraints labelling automaton transitions.

    A transition's data constraint relates the values observed at the firing
    vertices, the connector memory before the step ([Pre] cells) and after it
    ([Post] cells), constants, and applications of registered data functions.
    Synchronous product simply unions constraint sets; the {!Command} solver
    later turns a constraint into an executable data-flow program. *)

type term =
  | Port of Vertex.t  (** value flowing at a vertex in this step *)
  | Pre of Cell.t  (** cell content before the step *)
  | Post of Cell.t  (** cell content after the step *)
  | Const of Preo_support.Value.t
  | App of string * term  (** registered data function applied to a term *)

type atom =
  | Eq of term * term
  | Pred of string * bool * term
      (** [Pred (p, positive, t)]: registered predicate [p] applied to [t]
          must evaluate to [positive]. *)

type t = atom list
(** Conjunction. The empty list is [true]. *)

val tt : t
val ( === ) : term -> term -> atom
val pred : string -> term -> atom
val npred : string -> term -> atom

val conj : t -> t -> t
val map_vertices : (Vertex.t -> Vertex.t) -> t -> t
val map_cells : (Cell.t -> Cell.t) -> t -> t

val ports : t -> Preo_support.Iset.t
(** All vertices mentioned. *)

val cells : t -> Preo_support.Iset.t
(** All cells mentioned (pre or post). *)

val pp : Format.formatter -> t -> unit
