(** Registry of named data functions and predicates.

    Data-sensitive primitives (transformer and filter channels) refer to
    functions and predicates by name in the DSL; implementations are
    registered here by the host program. Registration is idempotent per name
    (last wins) and thread-safe. *)

val register_fn : string -> (Preo_support.Value.t -> Preo_support.Value.t) -> unit
val register_pred : string -> (Preo_support.Value.t -> bool) -> unit

val find_fn : string -> (Preo_support.Value.t -> Preo_support.Value.t)
(** Raises [Not_found] with a helpful message if unregistered. *)

val find_pred : string -> (Preo_support.Value.t -> bool)

val fn_exists : string -> bool
val pred_exists : string -> bool
