open Preo_support

type state_index = {
  silent : Automaton.trans array;
  (* For each transition, the boundary vertices it needs. Transitions are
     bucketed by their least boundary vertex; a transition is only
     examined when that vertex is pending, which skips most of the
     out-degree in wide states. *)
  by_least : (Vertex.t, (Iset.t * Automaton.trans) list) Hashtbl.t;
  everything : Automaton.trans array;
}

type t = { boundary : Iset.t; states : state_index array }

let build (a : Automaton.t) =
  let boundary = Iset.union a.sources a.sinks in
  let states =
    Array.map
      (fun ts ->
        let silent = ref [] in
        let by_least = Hashtbl.create 8 in
        Array.iter
          (fun (tr : Automaton.trans) ->
            let needs = Iset.inter tr.sync boundary in
            if Iset.is_empty needs then silent := tr :: !silent
            else begin
              let key = Iset.min_elt needs in
              let prev = try Hashtbl.find by_least key with Not_found -> [] in
              Hashtbl.replace by_least key ((needs, tr) :: prev)
            end)
          ts;
        {
          silent = Array.of_list (List.rev !silent);
          by_least;
          everything = ts;
        })
      a.trans
  in
  { boundary; states }

let candidates t ~state ~pending =
  let idx = t.states.(state) in
  let acc = ref (Array.to_list idx.silent) in
  Iset.iter
    (fun v ->
      match Hashtbl.find_opt idx.by_least v with
      | None -> ()
      | Some entries ->
        List.iter
          (fun (needs, tr) -> if Iset.subset needs pending then acc := tr :: !acc)
          entries)
    pending;
  Array.of_list !acc

let all t ~state = t.states.(state).everything
