(** Per-state transition dispatch index.

    The whole-automaton ("transition-global") optimization of the existing
    compiler: with the complete large automaton known ahead of time, every
    state gets an index from vertices to the transitions that involve them,
    so the runtime inspects only transitions that can possibly be enabled by
    the pending operations instead of scanning the whole outgoing set. This
    optimization is inherently unavailable to the just-in-time approach
    (the paper's §V-B, reason 2). *)

type t

val build : Automaton.t -> t

val candidates : t -> state:int -> pending:Preo_support.Iset.t -> Automaton.trans array
(** Transitions of [state] whose sync set is covered by [pending] boundary
    vertices (silent transitions are always included). The guard/data checks
    still have to be performed by the caller. *)

val all : t -> state:int -> Automaton.trans array
