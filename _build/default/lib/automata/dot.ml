open Preo_support

let escape s = String.concat "\\\"" (String.split_on_char '"' s)

let automaton ?(name = "automaton") (a : Automaton.t) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" (escape name));
  Buffer.add_string buf "  rankdir=LR;\n  node [shape=circle];\n";
  Buffer.add_string buf
    (Printf.sprintf "  init [shape=point]; init -> s%d;\n" a.initial);
  Array.iteri
    (fun s ts ->
      Buffer.add_string buf (Printf.sprintf "  s%d [label=\"%d\"];\n" s s);
      Array.iter
        (fun (tr : Automaton.trans) ->
          let sync =
            String.concat ","
              (List.map Vertex.name (Iset.elements tr.sync))
          in
          let label =
            Format.asprintf "{%s} %a" sync Constr.pp tr.constr
          in
          Buffer.add_string buf
            (Printf.sprintf "  s%d -> s%d [label=\"%s\"];\n" s tr.target
               (escape label)))
        ts)
    a.trans;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
