(** Graphviz export of automata, for documentation and debugging. *)

val automaton : ?name:string -> Automaton.t -> string
(** DOT source for the state graph; transition labels show sync sets and
    constraints. *)
