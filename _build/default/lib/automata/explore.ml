let reachable (a : Automaton.t) =
  let seen = Array.make a.nstates false in
  let queue = Queue.create () in
  seen.(a.initial) <- true;
  Queue.push a.initial queue;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    Array.iter
      (fun (tr : Automaton.trans) ->
        if not seen.(tr.target) then begin
          seen.(tr.target) <- true;
          Queue.push tr.target queue
        end)
      a.trans.(s)
  done;
  seen

let deadlock_states (a : Automaton.t) =
  let seen = reachable a in
  let acc = ref [] in
  for s = a.nstates - 1 downto 0 do
    if seen.(s) && Array.length a.trans.(s) = 0 then acc := s :: !acc
  done;
  !acc

let on_paths (a : Automaton.t) ~init ~step =
  let visited = Array.make a.nstates false in
  let rec go acc s =
    if not visited.(s) then begin
      visited.(s) <- true;
      Array.iter
        (fun tr ->
          match step acc s tr with
          | Some acc' -> go acc' tr.Automaton.target
          | None -> ())
        a.trans.(s)
    end
  in
  go init a.initial
