(** Reachability-based analyses over a single automaton. *)

val reachable : Automaton.t -> bool array
(** [reachable a].(s) iff state [s] is reachable from the initial state. *)

val deadlock_states : Automaton.t -> int list
(** Reachable states without outgoing transitions. *)

val on_paths :
  Automaton.t -> init:'a -> step:('a -> int -> Automaton.trans -> 'a option) -> unit
(** Depth-first traversal of reachable transitions: [step acc s tr] is called
    for each transition; returning [None] cuts the branch. Visits each state
    once per distinct accumulator via a visited-set on states only (i.e. the
    traversal is a spanning exploration, suited to invariant checks). *)
