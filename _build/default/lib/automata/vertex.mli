(** Connector vertices.

    A vertex is a named point through which messages flow: the boundary
    vertices of a connector are linked to task outports/inports, the internal
    ones join primitive connectors to each other. Identifiers are allocated
    from a process-global counter so that automata can be composed without
    renaming collisions. *)

type t = int

val fresh : string -> t
(** [fresh name] allocates a new vertex. Names are kept for diagnostics only;
    distinct calls with the same name yield distinct vertices. *)

val name : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val count : unit -> int
(** Number of vertices allocated so far (diagnostics). *)
