lib/connectors/catalog.ml: Fun Hashtbl List Mutex Preo
