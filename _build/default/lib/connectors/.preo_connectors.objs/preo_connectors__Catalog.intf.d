lib/connectors/catalog.mli: Preo
