lib/connectors/driver.ml: Array Catalog List Preo Preo_support Printf Sys Thread Value
