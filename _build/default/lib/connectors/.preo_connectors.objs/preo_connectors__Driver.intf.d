lib/connectors/driver.mli: Catalog Preo_runtime
