lib/dist/bridge.ml: Fun Mutex Preo_runtime Printexc String Sys Thread Unix Wire
