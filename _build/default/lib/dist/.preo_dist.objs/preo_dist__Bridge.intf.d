lib/dist/bridge.mli: Preo_runtime Preo_support Thread Unix Value
