lib/dist/wire.ml: Array Buffer Bytes Char Int64 List Preo_support Printf String Unix Value
