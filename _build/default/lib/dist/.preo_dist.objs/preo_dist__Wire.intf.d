lib/dist/wire.mli: Buffer Preo_support Unix Value
