(* Writing to a peer that already closed must surface as EPIPE, not kill the
   process. *)
let () =
  match Sys.os_type with
  | "Unix" -> (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ())
  | _ -> ()

(* --- Serving ---------------------------------------------------------------- *)

let serve loop fd =
  Thread.create
    (fun () ->
      let rec go () =
        match Wire.read_request fd with
        | None | Some Wire.Req_close -> ()
        | Some req ->
          let resp =
            try loop req with
            | Preo_runtime.Engine.Poisoned msg ->
              Wire.Resp_error ("poisoned: " ^ msg)
            | e -> Wire.Resp_error (Printexc.to_string e)
          in
          Wire.write_response fd resp;
          (match resp with Wire.Resp_error _ -> () | _ -> go ())
      in
      (try go () with _ -> ());
      try Unix.close fd with _ -> ())
    ()

let serve_outport port fd =
  serve
    (fun req ->
      match req with
      | Wire.Req_send v ->
        Preo_runtime.Port.send port v;
        Wire.Resp_ok
      | Wire.Req_recv -> Wire.Resp_error "this bridge serves an outport"
      | Wire.Req_close -> assert false)
    fd

let serve_inport port fd =
  serve
    (fun req ->
      match req with
      | Wire.Req_recv -> Wire.Resp_value (Preo_runtime.Port.recv port)
      | Wire.Req_send _ -> Wire.Resp_error "this bridge serves an inport"
      | Wire.Req_close -> assert false)
    fd

(* --- Remote ------------------------------------------------------------------ *)

type remote_outport = { ofd : Unix.file_descr; olock : Mutex.t }
type remote_inport = { ifd : Unix.file_descr; ilock : Mutex.t }

let remote_outport ofd = { ofd; olock = Mutex.create () }
let remote_inport ifd = { ifd; ilock = Mutex.create () }

let rpc fd lock req =
  Mutex.lock lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () ->
      Wire.write_request fd req;
      Wire.read_response fd)

let fail_of_error msg =
  if String.length msg >= 9 && String.sub msg 0 9 = "poisoned:" then
    raise (Preo_runtime.Engine.Poisoned msg)
  else failwith ("bridge: " ^ msg)

let send r v =
  match rpc r.ofd r.olock (Wire.Req_send v) with
  | Wire.Resp_ok -> ()
  | Wire.Resp_error msg -> fail_of_error msg
  | Wire.Resp_value _ -> failwith "bridge: unexpected value response"

let recv r =
  match rpc r.ifd r.ilock Wire.Req_recv with
  | Wire.Resp_value v -> v
  | Wire.Resp_error msg -> fail_of_error msg
  | Wire.Resp_ok -> failwith "bridge: unexpected ok response"

let close_remote fd =
  (try Wire.write_request fd Wire.Req_close with _ -> ());
  try Unix.close fd with _ -> ()

(* --- TCP ---------------------------------------------------------------------- *)

let listen_local ~port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 8;
  fd

let accept_one fd = fst (Unix.accept fd)

let connect_local ~port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd
