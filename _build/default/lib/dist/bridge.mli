(** Bridging connector ports across process boundaries.

    A host that owns a connector can export individual boundary ports over
    file descriptors (sockets); a remote peer drives them with the same
    blocking semantics as local ports. One descriptor carries one port.
    This realizes the paper's remark that Reo "can in principle be used to
    … enforce protocols among tasks across heterogeneous platforms": the
    protocol stays on one host, tasks can live anywhere.

    All functions are thread-safe per descriptor (one outstanding request at
    a time per bridge, as enforced by an internal lock). *)

open Preo_support

(** {1 Serving (connector-owning side)} *)

val serve_outport : Preo_runtime.Port.outport -> Unix.file_descr -> Thread.t
(** Handle [Req_send] requests by performing blocking local sends; replies
    [Resp_ok] per completed send. Returns when the peer closes. *)

val serve_inport : Preo_runtime.Port.inport -> Unix.file_descr -> Thread.t
(** Handle [Req_recv] requests by performing blocking local receives. *)

(** {1 Remote (task side)} *)

type remote_outport
type remote_inport

val remote_outport : Unix.file_descr -> remote_outport
val remote_inport : Unix.file_descr -> remote_inport

val send : remote_outport -> Value.t -> unit
(** Blocks until the remote connector completed the send. Raises [Failure]
    on protocol errors and [Preo_runtime.Engine.Poisoned] if the remote
    reports poisoning. *)

val recv : remote_inport -> Value.t
val close_remote : Unix.file_descr -> unit
(** Send a clean close so the serving thread exits. *)

(** {1 TCP conveniences} *)

val listen_local : port:int -> Unix.file_descr
(** Bind+listen on 127.0.0.1. *)

val accept_one : Unix.file_descr -> Unix.file_descr
val connect_local : port:int -> Unix.file_descr
