(** Wire format for port operations across process boundaries.

    Values are encoded with a self-describing binary format (no [Marshal],
    so the two endpoints need not run the same binary); every message is a
    length-prefixed frame. *)

open Preo_support

val encode_value : Buffer.t -> Value.t -> unit
val decode_value : bytes -> pos:int ref -> Value.t
(** Raises [Failure] on malformed input. *)

type request =
  | Req_send of Value.t  (** complete a send on the bridged outport *)
  | Req_recv  (** complete a receive on the bridged inport *)
  | Req_close

type response =
  | Resp_ok
  | Resp_value of Value.t
  | Resp_error of string

val write_request : Unix.file_descr -> request -> unit
val read_request : Unix.file_descr -> request option
(** [None] on clean EOF. *)

val write_response : Unix.file_descr -> response -> unit
val read_response : Unix.file_descr -> response
