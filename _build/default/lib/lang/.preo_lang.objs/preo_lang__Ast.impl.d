lib/lang/ast.ml: Format Hashtbl List Option Stdlib String
