lib/lang/codegen.ml: Array Ast Buffer Eval Hashtbl List Preo_automata Preo_reo Preo_support Printf String Template
