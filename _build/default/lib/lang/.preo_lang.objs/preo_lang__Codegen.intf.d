lib/lang/codegen.mli: Template
