lib/lang/eval.ml: Array Ast Hashtbl List Preo_automata Preo_reo Preo_support Printf String Value Vertex
