lib/lang/eval.mli: Ast Automaton Hashtbl Preo_automata Preo_reo Vertex
