lib/lang/flatten.ml: Ast Hashtbl List Preo_reo Printf
