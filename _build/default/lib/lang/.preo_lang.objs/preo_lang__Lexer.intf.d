lib/lang/lexer.mli:
