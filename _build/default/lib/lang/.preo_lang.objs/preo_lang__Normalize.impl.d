lib/lang/normalize.ml: Ast List
