lib/lang/normalize.mli: Ast
