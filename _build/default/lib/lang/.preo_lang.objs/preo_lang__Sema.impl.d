lib/lang/sema.ml: Ast Hashtbl List Option Preo_reo Printf String
