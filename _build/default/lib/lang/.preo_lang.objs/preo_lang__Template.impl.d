lib/lang/template.ml: Array Ast Automaton Cell Eval Hashtbl List Normalize Preo_automata Preo_reo Printf Product Vertex
