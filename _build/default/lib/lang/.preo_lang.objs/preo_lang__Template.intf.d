lib/lang/template.mli: Ast Automaton Eval Preo_automata Vertex
