type iexpr =
  | I_lit of int
  | I_var of string
  | I_len of string
  | I_add of iexpr * iexpr
  | I_sub of iexpr * iexpr
  | I_mul of iexpr * iexpr
  | I_div of iexpr * iexpr
  | I_mod of iexpr * iexpr
  | I_neg of iexpr

type cmp = Ceq | Cne | Clt | Cle | Cgt | Cge

type bexpr =
  | B_cmp of cmp * iexpr * iexpr
  | B_and of bexpr * bexpr
  | B_or of bexpr * bexpr
  | B_not of bexpr

type arg =
  | A_id of string
  | A_index of string * iexpr list
  | A_slice of string * iexpr * iexpr

type inst = {
  i_name : string;
  i_ann : string option;
  i_tails : arg list;
  i_heads : arg list;
}

type expr =
  | E_skip
  | E_inst of inst
  | E_mult of expr * expr
  | E_prod of string * iexpr * iexpr * expr
  | E_if of bexpr * expr * expr

type param = P_scalar of string | P_array of string

type conn_def = {
  c_name : string;
  c_tparams : param list;
  c_hparams : param list;
  c_body : expr;
}

type task_inst = { t_name : string; t_args : arg list }

type task_item =
  | TI_single of task_inst
  | TI_forall of string * iexpr * iexpr * task_inst

type main_def = {
  m_params : string list;
  m_conn : inst;
  m_tasks : task_item list;
}

type program = { defs : conn_def list; main : main_def option }

(* --- Printing ----------------------------------------------------------- *)

let rec pp_iexpr ppf = function
  | I_lit n -> Format.pp_print_int ppf n
  | I_var v -> Format.pp_print_string ppf v
  | I_len a -> Format.fprintf ppf "#%s" a
  | I_add (a, b) -> Format.fprintf ppf "(%a + %a)" pp_iexpr a pp_iexpr b
  | I_sub (a, b) -> Format.fprintf ppf "(%a - %a)" pp_iexpr a pp_iexpr b
  | I_mul (a, b) -> Format.fprintf ppf "(%a * %a)" pp_iexpr a pp_iexpr b
  | I_div (a, b) -> Format.fprintf ppf "(%a / %a)" pp_iexpr a pp_iexpr b
  | I_mod (a, b) -> Format.fprintf ppf "(%a %% %a)" pp_iexpr a pp_iexpr b
  | I_neg a -> Format.fprintf ppf "(-%a)" pp_iexpr a

let cmp_name = function
  | Ceq -> "=="
  | Cne -> "!="
  | Clt -> "<"
  | Cle -> "<="
  | Cgt -> ">"
  | Cge -> ">="

let rec pp_bexpr ppf = function
  | B_cmp (c, a, b) ->
    Format.fprintf ppf "%a %s %a" pp_iexpr a (cmp_name c) pp_iexpr b
  | B_and (a, b) -> Format.fprintf ppf "(%a && %a)" pp_bexpr a pp_bexpr b
  | B_or (a, b) -> Format.fprintf ppf "(%a || %a)" pp_bexpr a pp_bexpr b
  | B_not a -> Format.fprintf ppf "!(%a)" pp_bexpr a

let pp_arg ppf = function
  | A_id x -> Format.pp_print_string ppf x
  | A_index (x, idxs) ->
    Format.pp_print_string ppf x;
    List.iter (fun e -> Format.fprintf ppf "[%a]" pp_iexpr e) idxs
  | A_slice (x, lo, hi) ->
    Format.fprintf ppf "%s[%a..%a]" x pp_iexpr lo pp_iexpr hi

let pp_args ppf args =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
    pp_arg ppf args

let pp_inst ppf i =
  Format.fprintf ppf "%s%s(%a;%a)" i.i_name
    (match i.i_ann with Some a -> "<" ^ a ^ ">" | None -> "")
    pp_args i.i_tails pp_args i.i_heads

let rec pp_expr ppf = function
  | E_skip -> Format.pp_print_string ppf "skip"
  | E_inst i -> pp_inst ppf i
  | E_mult (a, b) ->
    Format.fprintf ppf "@[<hv>%a@ mult %a@]" pp_expr a pp_expr b
  | E_prod (v, lo, hi, body) ->
    Format.fprintf ppf "@[<hv 2>prod (%s:%a..%a) {@ %a@ }@]" v pp_iexpr lo
      pp_iexpr hi pp_expr body
  | E_if (c, t, e) ->
    Format.fprintf ppf "@[<hv 2>if (%a) {@ %a@ } else {@ %a@ }@]" pp_bexpr c
      pp_expr t pp_expr e

let pp_param ppf = function
  | P_scalar x -> Format.pp_print_string ppf x
  | P_array x -> Format.fprintf ppf "%s[]" x

let pp_params ppf ps =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
    pp_param ppf ps

let pp_conn_def ppf d =
  Format.fprintf ppf "@[<hv 2>%s(%a;%a) =@ %a@]@." d.c_name pp_params
    d.c_tparams pp_params d.c_hparams pp_expr d.c_body

let pp_task_inst ppf t =
  Format.fprintf ppf "%s(%a)" t.t_name pp_args t.t_args

let pp_task_item ppf = function
  | TI_single t -> pp_task_inst ppf t
  | TI_forall (v, lo, hi, t) ->
    Format.fprintf ppf "forall (%s:%a..%a) %a" v pp_iexpr lo pp_iexpr hi
      pp_task_inst t

let pp_main ppf m =
  Format.fprintf ppf "@[<hv 2>main%s = %a among@ %a@]@."
    (match m.m_params with
     | [] -> ""
     | ps -> "(" ^ String.concat "," ps ^ ")")
    pp_inst m.m_conn
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ and ")
       pp_task_item)
    m.m_tasks

let pp_program ppf p =
  List.iter (fun d -> Format.fprintf ppf "%a@." pp_conn_def d) p.defs;
  Option.iter (pp_main ppf) p.main

(* --- Canonicalization --------------------------------------------------- *)

(* Linear normal form: a sorted sum of monomials coeff*key, where keys are
   variables, array lengths, the unit constant, or opaque non-linear
   sub-expressions (whose children are canonicalized recursively). *)

type key = K_const | K_var of string | K_len of string | K_opaque of iexpr

let rec monomials e : (key * int) list =
  match e with
  | I_lit n -> [ (K_const, n) ]
  | I_var v -> [ (K_var v, 1) ]
  | I_len a -> [ (K_len a, 1) ]
  | I_add (a, b) -> monomials a @ monomials b
  | I_sub (a, b) -> monomials a @ List.map (fun (k, c) -> (k, -c)) (monomials b)
  | I_neg a -> List.map (fun (k, c) -> (k, -c)) (monomials a)
  | I_mul (a, b) -> begin
    let ma = monomials a and mb = monomials b in
    (* A side is constant iff its monomials collapse to pure constants once
       equal keys are merged and zero coefficients dropped (e.g. [i - i]). *)
    let const_of m =
      let tbl = Hashtbl.create 4 in
      List.iter
        (fun (k, c) ->
          Hashtbl.replace tbl k (c + try Hashtbl.find tbl k with Not_found -> 0))
        m;
      Hashtbl.fold
        (fun k c acc ->
          match acc with
          | None -> None
          | Some n ->
            if c = 0 then acc
            else begin
              match k with K_const -> Some (n + c) | _ -> None
            end)
        tbl (Some 0)
    in
    match (const_of ma, const_of mb) with
    | Some n, _ -> List.map (fun (k, c) -> (k, n * c)) mb
    | _, Some n -> List.map (fun (k, c) -> (k, n * c)) ma
    | None, None -> [ (K_opaque (I_mul (canon a, canon b)), 1) ]
  end
  | I_div (a, b) -> [ (K_opaque (I_div (canon a, canon b)), 1) ]
  | I_mod (a, b) -> [ (K_opaque (I_mod (canon a, canon b)), 1) ]

and canon e =
  let ms = monomials e in
  (* Sum equal keys; drop zero coefficients; sort deterministically. *)
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (k, c) ->
      match Hashtbl.find_opt tbl k with
      | Some c' -> Hashtbl.replace tbl k (c + c')
      | None ->
        Hashtbl.add tbl k c;
        order := k :: !order)
    ms;
  let entries =
    List.filter_map
      (fun k ->
        let c = Hashtbl.find tbl k in
        if c = 0 then None else Some (k, c))
      (List.sort_uniq Stdlib.compare (List.rev !order))
  in
  let term (k, c) =
    match k with
    | K_const -> I_lit c
    | K_var v -> if c = 1 then I_var v else I_mul (I_lit c, I_var v)
    | K_len a -> if c = 1 then I_len a else I_mul (I_lit c, I_len a)
    | K_opaque e -> if c = 1 then e else I_mul (I_lit c, e)
  in
  match entries with
  | [] -> I_lit 0
  | first :: rest ->
    List.fold_left (fun acc kc -> I_add (acc, term kc)) (term first) rest

let canon_iexpr = canon
let iexpr_equal a b = canon a = canon b
