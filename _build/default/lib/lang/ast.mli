(** Abstract syntax of the textual, parametrized connector DSL (§IV-B).

    A program is a list of connector definitions plus an optional [main]
    definition wiring one connector instance to task signatures. *)

type iexpr =
  | I_lit of int
  | I_var of string  (** iteration variable or main parameter *)
  | I_len of string  (** [#arr] *)
  | I_add of iexpr * iexpr
  | I_sub of iexpr * iexpr
  | I_mul of iexpr * iexpr
  | I_div of iexpr * iexpr
  | I_mod of iexpr * iexpr
  | I_neg of iexpr

type cmp = Ceq | Cne | Clt | Cle | Cgt | Cge

type bexpr =
  | B_cmp of cmp * iexpr * iexpr
  | B_and of bexpr * bexpr
  | B_or of bexpr * bexpr
  | B_not of bexpr

type arg =
  | A_id of string  (** scalar vertex variable, or a whole array *)
  | A_index of string * iexpr list
      (** [x[e]]; multiple indices arise internally from flattening
          composites inside iterations *)
  | A_slice of string * iexpr * iexpr  (** [x[e1..e2]], 1-based inclusive *)

type inst = {
  i_name : string;
  i_ann : string option;  (** [Filter<even>], [Transform<incr>], [Fifo1Full<42>] *)
  i_tails : arg list;
  i_heads : arg list;
}

type expr =
  | E_skip
  | E_inst of inst
  | E_mult of expr * expr
  | E_prod of string * iexpr * iexpr * expr  (** prod (i : lo .. hi) body *)
  | E_if of bexpr * expr * expr

type param = P_scalar of string | P_array of string

type conn_def = {
  c_name : string;
  c_tparams : param list;  (** before the ';' — where tasks send *)
  c_hparams : param list;  (** after the ';' — where tasks receive *)
  c_body : expr;
}

type task_inst = { t_name : string; t_args : arg list }

type task_item =
  | TI_single of task_inst
  | TI_forall of string * iexpr * iexpr * task_inst

type main_def = {
  m_params : string list;  (** run-time integer inputs, e.g. N *)
  m_conn : inst;  (** the instantiated top-level connector *)
  m_tasks : task_item list;
}

type program = { defs : conn_def list; main : main_def option }

val pp_iexpr : Format.formatter -> iexpr -> unit
val pp_bexpr : Format.formatter -> bexpr -> unit
val pp_arg : Format.formatter -> arg -> unit
val pp_expr : Format.formatter -> expr -> unit
val pp_conn_def : Format.formatter -> conn_def -> unit
val pp_program : Format.formatter -> program -> unit

val canon_iexpr : iexpr -> iexpr
(** Canonical form for syntactic comparison: linear sub-expressions are
    normalized to a sorted sum of monomials (so [i+1] and [1+i] compare
    equal); non-linear parts are kept structurally. *)

val iexpr_equal : iexpr -> iexpr -> bool
(** Equality modulo {!canon_iexpr}. *)
