open Ast

let buf_add = Buffer.add_string

(* --- Small emitters ------------------------------------------------------- *)

let param_var name = "p_" ^ name

let rec emit_iexpr ~loops = function
  | I_lit n -> if n < 0 then Printf.sprintf "(%d)" n else string_of_int n
  | I_var v -> begin
    match List.assoc_opt v loops with
    | Some ocaml -> ocaml
    | None -> failwith ("codegen: unbound iteration variable " ^ v)
  end
  | I_len a -> Printf.sprintf "(len %S)" a
  | I_add (a, b) ->
    Printf.sprintf "(%s + %s)" (emit_iexpr ~loops a) (emit_iexpr ~loops b)
  | I_sub (a, b) ->
    Printf.sprintf "(%s - %s)" (emit_iexpr ~loops a) (emit_iexpr ~loops b)
  | I_mul (a, b) ->
    Printf.sprintf "(%s * %s)" (emit_iexpr ~loops a) (emit_iexpr ~loops b)
  | I_div (a, b) ->
    Printf.sprintf "(%s / %s)" (emit_iexpr ~loops a) (emit_iexpr ~loops b)
  | I_mod (a, b) ->
    Printf.sprintf "(%s mod %s)" (emit_iexpr ~loops a) (emit_iexpr ~loops b)
  | I_neg a -> Printf.sprintf "(- %s)" (emit_iexpr ~loops a)

let rec emit_bexpr ~loops = function
  | B_cmp (c, a, b) ->
    let op =
      match c with
      | Ceq -> "=" | Cne -> "<>" | Clt -> "<" | Cle -> "<=" | Cgt -> ">"
      | Cge -> ">="
    in
    Printf.sprintf "(%s %s %s)" (emit_iexpr ~loops a) op (emit_iexpr ~loops b)
  | B_and (a, b) ->
    Printf.sprintf "(%s && %s)" (emit_bexpr ~loops a) (emit_bexpr ~loops b)
  | B_or (a, b) ->
    Printf.sprintf "(%s || %s)" (emit_bexpr ~loops a) (emit_bexpr ~loops b)
  | B_not a -> Printf.sprintf "(not %s)" (emit_bexpr ~loops a)

let emit_value (v : Preo_support.Value.t) =
  match v with
  | Preo_support.Value.Unit -> "Value.unit"
  | Preo_support.Value.Int n -> Printf.sprintf "(Value.int (%d))" n
  | Preo_support.Value.Str s -> Printf.sprintf "(Value.str %S)" s
  | Preo_support.Value.Bool b -> Printf.sprintf "(Value.bool %b)" b
  | Preo_support.Value.Float f -> Printf.sprintf "(Value.float %h)" f
  | _ -> failwith "codegen: unsupported annotation value"

let emit_kind (k : Preo_reo.Prim.kind) =
  let open Preo_reo.Prim in
  match k with
  | Sync -> "Preo_reo.Prim.Sync"
  | Lossy_sync -> "Preo_reo.Prim.Lossy_sync"
  | Sync_drain -> "Preo_reo.Prim.Sync_drain"
  | Async_drain -> "Preo_reo.Prim.Async_drain"
  | Sync_spout -> "Preo_reo.Prim.Sync_spout"
  | Fifo1 -> "Preo_reo.Prim.Fifo1"
  | Fifo1_full v -> Printf.sprintf "(Preo_reo.Prim.Fifo1_full %s)" (emit_value v)
  | Fifo_n n -> Printf.sprintf "(Preo_reo.Prim.Fifo_n %d)" n
  | Shift_lossy -> "Preo_reo.Prim.Shift_lossy"
  | Overflow_lossy -> "Preo_reo.Prim.Overflow_lossy"
  | Filter p -> Printf.sprintf "(Preo_reo.Prim.Filter %S)" p
  | Transform f -> Printf.sprintf "(Preo_reo.Prim.Transform %S)" f
  | Merger -> "Preo_reo.Prim.Merger"
  | Replicator -> "Preo_reo.Prim.Replicator"
  | Router -> "Preo_reo.Prim.Router"
  | Seq -> "Preo_reo.Prim.Seq"

(* A vertex-producing expression for a symbolic reference. [arrays] is the
   set of array-parameter names; scalars are one-element arrays. *)
let emit_sym ~loops ~params (sym : Template.sym) =
  match sym with
  | Template.S_scalar x ->
    if List.mem x params then Printf.sprintf "%s.(0)" (param_var x)
    else Printf.sprintf "(local %S [])" x
  | Template.S_indexed (x, idxs) ->
    if List.mem x params then begin
      match idxs with
      | [ e ] -> Printf.sprintf "%s.(%s - 1)" (param_var x) (emit_iexpr ~loops e)
      | _ -> failwith "codegen: parameter with multiple indices"
    end
    else
      Printf.sprintf "(local %S [ %s ])" x
        (String.concat "; " (List.map (emit_iexpr ~loops) idxs))

(* A vertex-list expression for a dynamic constituent argument. *)
let emit_arg_list ~loops ~params (a : arg) =
  match a with
  | A_id x ->
    if List.mem x params then Printf.sprintf "(Array.to_list %s)" (param_var x)
    else Printf.sprintf "[ local %S [] ]" x
  | A_index (x, idxs) ->
    if List.mem x params then begin
      match idxs with
      | [ e ] ->
        Printf.sprintf "[ %s.(%s - 1) ]" (param_var x) (emit_iexpr ~loops e)
      | _ -> failwith "codegen: parameter with multiple indices"
    end
    else
      Printf.sprintf "[ local %S [ %s ] ]" x
        (String.concat "; " (List.map (emit_iexpr ~loops) idxs))
  | A_slice (x, lo, hi) ->
    let lo = emit_iexpr ~loops lo and hi = emit_iexpr ~loops hi in
    if List.mem x params then
      Printf.sprintf "(List.init (%s - %s + 1) (fun k_ -> %s.(%s + k_ - 1)))" hi
        lo (param_var x) lo
    else
      Printf.sprintf "(List.init (%s - %s + 1) (fun k_ -> local %S [ %s + k_ ]))"
        hi lo x lo

(* --- Static medium automata as literals ----------------------------------- *)

let emit_medium_literal buf ~name (auto : Preo_automata.Automaton.t)
    (binding : (Preo_automata.Vertex.t * Template.sym) array) =
  (* placeholder vertex id -> subst index *)
  let vmap = Hashtbl.create 8 in
  Array.iteri (fun i (ph, _) -> Hashtbl.replace vmap ph i) binding;
  let vexpr v =
    match Hashtbl.find_opt vmap v with
    | Some i -> Printf.sprintf "subst.(%d)" i
    | None -> failwith "codegen: vertex outside the medium binding"
  in
  (* template cell id -> dense index *)
  let cmap = Hashtbl.create 4 in
  Preo_support.Iset.iter
    (fun c -> Hashtbl.replace cmap c (Hashtbl.length cmap))
    auto.Preo_automata.Automaton.cells;
  let cexpr c =
    Printf.sprintf "cells.(%d)" (Hashtbl.find cmap c)
  in
  let rec term (t : Preo_automata.Constr.term) =
    match t with
    | Preo_automata.Constr.Port v -> Printf.sprintf "Constr.Port %s" (vexpr v)
    | Preo_automata.Constr.Pre c -> Printf.sprintf "Constr.Pre %s" (cexpr c)
    | Preo_automata.Constr.Post c -> Printf.sprintf "Constr.Post %s" (cexpr c)
    | Preo_automata.Constr.Const v ->
      Printf.sprintf "Constr.Const %s" (emit_value v)
    | Preo_automata.Constr.App (f, u) ->
      Printf.sprintf "Constr.App (%S, %s)" f (term u)
  in
  let atom (a : Preo_automata.Constr.atom) =
    match a with
    | Preo_automata.Constr.Eq (x, y) ->
      Printf.sprintf "Constr.Eq (%s, %s)" (term x) (term y)
    | Preo_automata.Constr.Pred (p, pos, x) ->
      Printf.sprintf "Constr.Pred (%S, %b, %s)" p pos (term x)
  in
  let iset_expr s =
    Printf.sprintf "Iset.of_list [ %s ]"
      (String.concat "; "
         (List.map vexpr (Preo_support.Iset.elements s)))
  in
  buf_add buf (Printf.sprintf "  let %s (subst : Vertex.t array) =\n" name);
  let ncells = Hashtbl.length cmap in
  if ncells > 0 then
    buf_add buf
      (Printf.sprintf
         "    let cells = Array.init %d (fun _ -> Cell.fresh \"cell\") in\n"
         ncells);
  buf_add buf
    (Printf.sprintf "    Automaton.make ~nstates:%d ~initial:%d\n"
       auto.Preo_automata.Automaton.nstates auto.Preo_automata.Automaton.initial);
  buf_add buf "      ~trans:[|\n";
  Array.iter
    (fun ts ->
      buf_add buf "        [|";
      Array.iter
        (fun (tr : Preo_automata.Automaton.trans) ->
          buf_add buf
            (Printf.sprintf
               "\n          { Automaton.sync = %s;\n            constr = [ %s \
                ];\n            command = None; target = %d };"
               (iset_expr tr.sync)
               (String.concat ";\n                       "
                  (List.map atom tr.constr))
               tr.target))
        ts;
      buf_add buf " |];\n")
    auto.Preo_automata.Automaton.trans;
  buf_add buf "      |]\n";
  buf_add buf
    (Printf.sprintf "      ~sources:(%s) ~sinks:(%s)\n  in\n"
       (iset_expr auto.Preo_automata.Automaton.sources)
       (iset_expr auto.Preo_automata.Automaton.sinks))

(* --- The instantiation program (Fig. 10's connect body) ------------------- *)

let rec emit_nodes buf ~indent ~loops ~params ~medium_names nodes =
  let pad = String.make indent ' ' in
  List.iter
    (fun node ->
      match node with
      | Template.N_medium (Template.M_static { auto = _; binding }) as n ->
        let name = List.assq n medium_names in
        let substs =
          Array.to_list binding
          |> List.map (fun (_, sym) -> emit_sym ~loops ~params sym)
        in
        buf_add buf
          (Printf.sprintf "%sadd (%s [| %s |]);\n" pad name
             (String.concat "; " substs))
      | Template.N_medium (Template.M_dynamic inst) ->
        let kind = Eval.kind_of_inst inst in
        let tails =
          List.map (emit_arg_list ~loops ~params) inst.i_tails
        in
        let heads =
          List.map (emit_arg_list ~loops ~params) inst.i_heads
        in
        let cat = function
          | [] -> "[]"
          | [ one ] -> one
          | many -> Printf.sprintf "(List.concat [ %s ])" (String.concat "; " many)
        in
        buf_add buf
          (Printf.sprintf "%sadd (Preo_reo.Prim.build %s ~tails:%s ~heads:%s);\n"
             pad (emit_kind kind) (cat tails) (cat heads))
      | Template.N_loop (var, lo, hi, body) ->
        let ocaml_var = "v_" ^ var in
        buf_add buf
          (Printf.sprintf "%sfor %s = %s to %s do\n" pad ocaml_var
             (emit_iexpr ~loops lo) (emit_iexpr ~loops hi));
        emit_nodes buf ~indent:(indent + 2)
          ~loops:((var, ocaml_var) :: loops)
          ~params ~medium_names body;
        buf_add buf (Printf.sprintf "%sdone;\n" pad)
      | Template.N_if (cond, then_, else_) ->
        buf_add buf
          (Printf.sprintf "%sif %s then begin\n" pad (emit_bexpr ~loops cond));
        emit_nodes buf ~indent:(indent + 2) ~loops ~params ~medium_names then_;
        buf_add buf (Printf.sprintf "%send\n%selse begin\n" pad pad);
        emit_nodes buf ~indent:(indent + 2) ~loops ~params ~medium_names else_;
        buf_add buf (Printf.sprintf "%send;\n" pad)
      )
    nodes

let collect_static_mediums (t : Template.t) =
  let acc = ref [] in
  let rec go nodes =
    List.iter
      (fun node ->
        match node with
        | Template.N_medium (Template.M_static { auto; binding }) ->
          acc := (node, auto, binding) :: !acc
        | Template.N_medium (Template.M_dynamic _) -> ()
        | Template.N_loop (_, _, _, body) -> go body
        | Template.N_if (_, a, b) -> go a; go b)
      nodes
  in
  go t.Template.nodes;
  List.rev !acc

let connector ~module_comment (t : Template.t) =
  let def = t.Template.def in
  let params =
    List.map (function P_scalar x | P_array x -> x)
      (def.c_tparams @ def.c_hparams)
  in
  let buf = Buffer.create 4096 in
  buf_add buf (Printf.sprintf "(* %s *)\n" module_comment);
  buf_add buf
    "(* Generated by preoc — do not edit. Links against the preo runtime\n\
    \   (libraries: preo_support preo_automata preo_reo preo_runtime). *)\n\n";
  buf_add buf "open Preo_support\nopen Preo_automata\n\n";
  buf_add buf "let connect ?config ~(lengths : (string * int) list) () :\n";
  buf_add buf "    Preo_runtime.Connector.t =\n";
  buf_add buf
    "  let len name =\n\
    \    match List.assoc_opt name lengths with\n\
    \    | Some n -> n\n\
    \    | None -> invalid_arg (\"missing length for array parameter \" ^ name)\n\
    \  in\n\
    \  ignore len;\n";
  (* Boundary vertices, one array per parameter (scalars have length 1). *)
  List.iter
    (fun p ->
      match p with
      | P_scalar x ->
        buf_add buf
          (Printf.sprintf "  let %s = [| Vertex.fresh %S |] in\n" (param_var x) x)
      | P_array x ->
        buf_add buf
          (Printf.sprintf
             "  let %s =\n\
             \    Array.init (len %S)\n\
             \      (fun i -> Vertex.fresh (Printf.sprintf \"%s[%%d]\" (i + 1)))\n\
             \  in\n"
             (param_var x) x x))
    (def.c_tparams @ def.c_hparams);
  buf_add buf
    "  let locals : (string * int list, Vertex.t) Hashtbl.t = Hashtbl.create 16 in\n\
    \  let local name idxs =\n\
    \    match Hashtbl.find_opt locals (name, idxs) with\n\
    \    | Some v -> v\n\
    \    | None ->\n\
    \      let v = Vertex.fresh name in\n\
    \      Hashtbl.add locals (name, idxs) v;\n\
    \      v\n\
    \  in\n\
    \  ignore local;\n\
    \  let mediums = ref [] in\n\
    \  let add m = mediums := m :: !mediums in\n";
  (* Compile-time share: one literal automaton per static medium. *)
  let statics = collect_static_mediums t in
  let medium_names =
    List.mapi (fun i (node, _, _) -> (node, Printf.sprintf "medium_%d" i)) statics
  in
  List.iter
    (fun (node, auto, binding) ->
      let name = List.assq node medium_names in
      emit_medium_literal buf ~name auto binding)
    statics;
  (* Run-time share. *)
  emit_nodes buf ~indent:2 ~loops:[] ~params ~medium_names t.Template.nodes;
  let group which =
    String.concat "; " (List.map (fun p -> param_var (match p with P_scalar x | P_array x -> x)) which)
  in
  buf_add buf
    (Printf.sprintf
       "  Preo_runtime.Connector.create ?config\n\
       \    ~sources:(Array.concat [ %s ])\n\
       \    ~sinks:(Array.concat [ %s ])\n\
       \    (List.rev !mediums)\n"
       (group def.c_tparams) (group def.c_hparams));
  Buffer.contents buf
