(** Code generation: emit a standalone OCaml module implementing one
    parametrized connector — the analogue of the paper's text-to-Java
    compiler output (Fig. 10).

    The generated module contains the compile-time share verbatim: every
    static medium automaton appears as a literal [Automaton.make] (the
    generated "state machine classes"), and the run-time share is ordinary
    OCaml control flow (loops/conditionals around medium constructors, as in
    Fig. 10's [connect]). The module exposes

    {[
      val connect :
        ?config:Preo_runtime.Config.t ->
        lengths:(string * int) list ->
        unit ->
        Preo_runtime.Connector.t
    ]}

    and links against this library's runtime system, exactly as the paper's
    generated Java links against its runtime plug-in. *)

val connector : module_comment:string -> Template.t -> string
(** OCaml source text. [module_comment] goes into the header. *)
