open Preo_support
open Preo_automata
open Ast

exception Error of string

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type venv = {
  ints : (string * int) list;
  arrays : (string, Vertex.t array) Hashtbl.t;
  locals : (string * int list, Vertex.t) Hashtbl.t;
}

let venv ~ints ~arrays =
  let tbl = Hashtbl.create 8 in
  List.iter (fun (name, vs) -> Hashtbl.replace tbl name vs) arrays;
  { ints; arrays = tbl; locals = Hashtbl.create 32 }

let rec eval_int env = function
  | I_lit n -> n
  | I_var v -> begin
    match List.assoc_opt v env.ints with
    | Some n -> n
    | None -> err "eval: unbound integer variable %s" v
  end
  | I_len a -> begin
    match Hashtbl.find_opt env.arrays a with
    | Some vs -> Array.length vs
    | None -> err "eval: #%s refers to an unknown array" a
  end
  | I_add (a, b) -> eval_int env a + eval_int env b
  | I_sub (a, b) -> eval_int env a - eval_int env b
  | I_mul (a, b) -> eval_int env a * eval_int env b
  | I_div (a, b) ->
    let d = eval_int env b in
    if d = 0 then err "eval: division by zero" else eval_int env a / d
  | I_mod (a, b) ->
    let d = eval_int env b in
    if d = 0 then err "eval: modulo by zero" else eval_int env a mod d
  | I_neg a -> -eval_int env a

let rec eval_bool env = function
  | B_cmp (c, a, b) -> begin
    let x = eval_int env a and y = eval_int env b in
    match c with
    | Ceq -> x = y
    | Cne -> x <> y
    | Clt -> x < y
    | Cle -> x <= y
    | Cgt -> x > y
    | Cge -> x >= y
  end
  | B_and (a, b) -> eval_bool env a && eval_bool env b
  | B_or (a, b) -> eval_bool env a || eval_bool env b
  | B_not a -> not (eval_bool env a)

let kind_of_inst (i : inst) =
  match Preo_reo.Prim.of_name i.i_name with
  | None -> err "eval: %s is not a primitive" i.i_name
  | Some kind -> begin
    match (kind, i.i_ann) with
    | Preo_reo.Prim.Filter _, Some p -> Preo_reo.Prim.Filter p
    | Preo_reo.Prim.Transform _, Some f -> Preo_reo.Prim.Transform f
    | Preo_reo.Prim.Fifo1_full _, Some v -> begin
      match int_of_string_opt v with
      | Some n -> Preo_reo.Prim.Fifo1_full (Value.int n)
      | None -> Preo_reo.Prim.Fifo1_full (Value.str v)
    end
    | Preo_reo.Prim.Fifo1, Some v -> begin
      (* Fifo<k>: bounded buffer of capacity k (the paper's fifon). *)
      match int_of_string_opt v with
      | Some 1 -> Preo_reo.Prim.Fifo1
      | Some n when n >= 2 -> Preo_reo.Prim.Fifo_n n
      | _ -> err "eval: Fifo<%s>: capacity must be a positive integer" v
    end
    | kind, _ -> kind
  end

type prim_inst = {
  pi_kind : Preo_reo.Prim.kind;
  pi_tails : Vertex.t list;
  pi_heads : Vertex.t list;
}

let array_of env x =
  match Hashtbl.find_opt env.arrays x with
  | Some vs -> Some vs
  | None -> None

let local_vertex env x idxs =
  let key = (x, idxs) in
  match Hashtbl.find_opt env.locals key with
  | Some v -> v
  | None ->
    let name =
      match idxs with
      | [] -> x
      | idxs ->
        x ^ String.concat "" (List.map (fun i -> Printf.sprintf "[%d]" i) idxs)
    in
    let v = Vertex.fresh name in
    Hashtbl.add env.locals key v;
    v

let index_into x vs i =
  if i < 1 || i > Array.length vs then
    err "eval: index %d out of bounds for %s (length %d)" i x (Array.length vs)
  else vs.(i - 1)

let resolve_arg env = function
  | A_id x -> begin
    match array_of env x with
    | Some vs -> Array.to_list vs
    | None -> [ local_vertex env x [] ]
  end
  | A_index (x, idxs) -> begin
    let idxs = List.map (eval_int env) idxs in
    match array_of env x with
    | Some vs -> begin
      match idxs with
      | [ i ] -> [ index_into x vs i ]
      | _ -> err "eval: parameter %s takes exactly one index" x
    end
    | None -> [ local_vertex env x idxs ]
  end
  | A_slice (x, lo, hi) -> begin
    let lo = eval_int env lo and hi = eval_int env hi in
    if lo > hi then err "eval: empty slice %s[%d..%d]" x lo hi;
    match array_of env x with
    | Some vs -> List.init (hi - lo + 1) (fun k -> index_into x vs (lo + k))
    | None ->
      (* Slice of a local array: materialize (memoized) local vertices. *)
      List.init (hi - lo + 1) (fun k -> local_vertex env x [ lo + k ])
  end

let rec prims env = function
  | E_skip -> []
  | E_mult (a, b) -> prims env a @ prims env b
  | E_inst i ->
    let kind = kind_of_inst i in
    let tails = List.concat_map (resolve_arg env) i.i_tails in
    let heads = List.concat_map (resolve_arg env) i.i_heads in
    if
      not
        (Preo_reo.Prim.arity_ok kind ~ntails:(List.length tails)
           ~nheads:(List.length heads))
    then
      err "eval: %s instantiated with %d tails / %d heads" i.i_name
        (List.length tails) (List.length heads);
    [ { pi_kind = kind; pi_tails = tails; pi_heads = heads } ]
  | E_prod (v, lo, hi, body) ->
    let lo = eval_int env lo and hi = eval_int env hi in
    List.concat_map
      (fun i -> prims { env with ints = (v, i) :: env.ints } body)
      (List.init (max 0 (hi - lo + 1)) (fun k -> lo + k))
  | E_if (c, t, e) -> if eval_bool env c then prims env t else prims env e

let boundary_of_def (d : conn_def) ~lengths =
  let make p =
    match p with
    | P_scalar x -> (x, [| Vertex.fresh x |])
    | P_array x -> begin
      match List.assoc_opt x lengths with
      | Some n ->
        if n < 1 then err "boundary: array %s must be nonempty" x;
        (x, Array.init n (fun i -> Vertex.fresh (Printf.sprintf "%s[%d]" x (i + 1))))
      | None -> err "boundary: missing length for array parameter %s" x
    end
  in
  let tg = List.map make d.c_tparams and hg = List.map make d.c_hparams in
  let flat groups = Array.concat (List.map snd groups) in
  (tg @ hg, flat tg, flat hg)

let small_automata ps =
  List.map
    (fun p -> Preo_reo.Prim.build p.pi_kind ~tails:p.pi_tails ~heads:p.pi_heads)
    ps
