(** Evaluation of (flattened) connector bodies with fully concrete
    parameters — the front half of the existing compiler: once every array
    length is known, the body denotes a plain multiset of primitive
    instances over concrete vertices. *)

open Preo_automata

exception Error of string

type venv = {
  ints : (string * int) list;  (** iteration variables, main parameters *)
  arrays : (string, Vertex.t array) Hashtbl.t;
      (** formal vertex parameters: scalars are 1-element arrays *)
  locals : (string * int list, Vertex.t) Hashtbl.t;
      (** memoized local vertices, keyed by name and index values *)
}

val venv : ints:(string * int) list -> arrays:(string * Vertex.t array) list -> venv

val eval_int : venv -> Ast.iexpr -> int
val eval_bool : venv -> Ast.bexpr -> bool

val kind_of_inst : Ast.inst -> Preo_reo.Prim.kind
(** Resolve primitive name + annotation ([Filter<p>], [Transform<f>],
    [Fifo1Full<v>]). Raises {!Error} on a composite name. *)

type prim_inst = {
  pi_kind : Preo_reo.Prim.kind;
  pi_tails : Vertex.t list;
  pi_heads : Vertex.t list;
}

val resolve_arg : venv -> Ast.arg -> Vertex.t list
(** Scalars and indexed names yield one vertex; whole arrays and slices
    spread to several (for variadic primitives). Local vertices are created
    on first use. *)

val prims : venv -> Ast.expr -> prim_inst list
(** Evaluate a flattened body. *)

val boundary_of_def :
  Ast.conn_def ->
  lengths:(string * int) list ->
  (string * Vertex.t array) list * Vertex.t array * Vertex.t array
(** Create fresh boundary vertices for a definition's formals: [lengths]
    gives each array parameter's size. Returns the name->vertices binding
    plus the flattened source and sink boundary arrays (in signature
    order). *)

val small_automata : prim_inst list -> Automaton.t list
