open Ast

exception Error of string

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type view = { vbase : string; voffset : iexpr; vlen : iexpr }
(* Maps the formal's 1-based index i to vbase[voffset + i]. *)

type env = {
  defs : (string, conn_def) Hashtbl.t;
  counter : int ref;
  scalars : (string, arg) Hashtbl.t;
  arrays : (string, view) Hashtbl.t;
  renames : (string, string) Hashtbl.t;  (** locals of the current frame *)
  loop_renames : (string, string) Hashtbl.t;
  mutable loops : iexpr list;  (** enclosing (renamed) iteration variables *)
  prefix : iexpr list;
      (** iteration variables enclosing this frame's call site: in-lined
          locals are implicitly indexed by these *)
  rename_locals : bool;  (** false only for the outermost frame *)
}

let fresh env base =
  incr env.counter;
  Printf.sprintf "%s__%d" base !(env.counter)

let local_name env x =
  if not env.rename_locals then x
  else begin
    match Hashtbl.find_opt env.renames x with
    | Some x' -> x'
    | None ->
      let x' = fresh env x in
      Hashtbl.add env.renames x x';
      x'
  end

let rec subst_iexpr env = function
  | I_lit n -> I_lit n
  | I_var v -> begin
    match Hashtbl.find_opt env.loop_renames v with
    | Some v' -> I_var v'
    | None -> I_var v (* main parameter *)
  end
  | I_len a -> begin
    match Hashtbl.find_opt env.arrays a with
    | Some view -> view.vlen
    | None -> err "flatten: #%s does not refer to an array in scope" a
  end
  | I_add (a, b) -> I_add (subst_iexpr env a, subst_iexpr env b)
  | I_sub (a, b) -> I_sub (subst_iexpr env a, subst_iexpr env b)
  | I_mul (a, b) -> I_mul (subst_iexpr env a, subst_iexpr env b)
  | I_div (a, b) -> I_div (subst_iexpr env a, subst_iexpr env b)
  | I_mod (a, b) -> I_mod (subst_iexpr env a, subst_iexpr env b)
  | I_neg a -> I_neg (subst_iexpr env a)

let rec subst_bexpr env = function
  | B_cmp (c, a, b) -> B_cmp (c, subst_iexpr env a, subst_iexpr env b)
  | B_and (a, b) -> B_and (subst_bexpr env a, subst_bexpr env b)
  | B_or (a, b) -> B_or (subst_bexpr env a, subst_bexpr env b)
  | B_not a -> B_not (subst_bexpr env a)

let shift view e = canon_iexpr (I_add (view.voffset, e))

let with_prefix env name idxs =
  match env.prefix @ idxs with
  | [] -> A_id name
  | idxs -> A_index (name, idxs)

let subst_arg env = function
  | A_id x -> begin
    match Hashtbl.find_opt env.scalars x with
    | Some a -> a
    | None -> begin
      match Hashtbl.find_opt env.arrays x with
      | Some v ->
        (* Whole array passed on. *)
        A_slice (v.vbase, shift v (I_lit 1), shift v v.vlen)
      | None ->
        (* Local scalar of this frame. *)
        with_prefix env (local_name env x) []
    end
  end
  | A_index (x, idxs) -> begin
    let idxs = List.map (subst_iexpr env) idxs in
    match Hashtbl.find_opt env.arrays x with
    | Some v -> begin
      match idxs with
      | [ e ] -> A_index (v.vbase, [ shift v e ])
      | _ -> err "flatten: array %s takes exactly one index" x
    end
    | None ->
      if Hashtbl.mem env.scalars x then
        err "flatten: scalar %s cannot be indexed" x
      else with_prefix env (local_name env x) idxs
  end
  | A_slice (x, lo, hi) -> begin
    let lo = subst_iexpr env lo and hi = subst_iexpr env hi in
    match Hashtbl.find_opt env.arrays x with
    | Some v -> A_slice (v.vbase, shift v lo, shift v hi)
    | None ->
      if Hashtbl.mem env.scalars x then
        err "flatten: cannot slice scalar %s" x
      else if env.prefix <> [] then
        err
          "flatten: cannot slice local array %s of an in-lined composite \
           under an iteration"
          x
      else A_slice (local_name env x, lo, hi)
  end

(* Bind the formals of [d] to already-substituted actual arguments. *)
let frame_for env (d : conn_def) (tails : arg list) (heads : arg list) =
  let scalars = Hashtbl.create 8 and arrays = Hashtbl.create 8 in
  let bind formal actual =
    match (formal, actual) with
    | P_scalar f, ((A_id _ | A_index _) as a) -> Hashtbl.add scalars f a
    | P_array f, A_slice (base, lo, hi) ->
      Hashtbl.add arrays f
        {
          vbase = base;
          voffset = canon_iexpr (I_sub (lo, I_lit 1));
          vlen = canon_iexpr (I_add (I_sub (hi, lo), I_lit 1));
        }
    | P_scalar f, A_slice _ -> err "flatten: parameter %s needs a scalar" f
    | P_array f, (A_id _ | A_index _) ->
      err "flatten: parameter %s needs an array slice" f
  in
  (try List.iter2 bind d.c_tparams tails with Invalid_argument _ ->
    err "flatten: arity mismatch instantiating %s" d.c_name);
  (try List.iter2 bind d.c_hparams heads with Invalid_argument _ ->
    err "flatten: arity mismatch instantiating %s" d.c_name);
  {
    env with
    scalars;
    arrays;
    renames = Hashtbl.create 8;
    loop_renames = Hashtbl.create 8;
    loops = env.loops;
    prefix = env.loops;
    rename_locals = true;
  }

let rec flatten_expr env = function
  | E_skip -> E_skip
  | E_mult (a, b) -> E_mult (flatten_expr env a, flatten_expr env b)
  | E_prod (v, lo, hi, body) ->
    let lo = subst_iexpr env lo and hi = subst_iexpr env hi in
    let v' = fresh env v in
    Hashtbl.add env.loop_renames v v';
    let saved = env.loops in
    env.loops <- saved @ [ I_var v' ];
    let body = flatten_expr env body in
    env.loops <- saved;
    Hashtbl.remove env.loop_renames v;
    E_prod (v', lo, hi, body)
  | E_if (c, t, e) ->
    E_if (subst_bexpr env c, flatten_expr env t, flatten_expr env e)
  | E_inst i -> begin
    let tails = List.map (subst_arg env) i.i_tails in
    let heads = List.map (subst_arg env) i.i_heads in
    match Preo_reo.Prim.of_name i.i_name with
    | Some _ -> E_inst { i with i_tails = tails; i_heads = heads }
    | None -> begin
      match Hashtbl.find_opt env.defs i.i_name with
      | None -> err "flatten: unknown connector %s" i.i_name
      | Some d ->
        let inner = frame_for env d tails heads in
        flatten_expr inner d.c_body
    end
  end

let def ~defs (d : conn_def) =
  let tbl = Hashtbl.create 16 in
  List.iter (fun d -> Hashtbl.replace tbl d.c_name d) defs;
  let env =
    {
      defs = tbl;
      counter = ref 0;
      scalars = Hashtbl.create 8;
      arrays = Hashtbl.create 8;
      renames = Hashtbl.create 8;
      loop_renames = Hashtbl.create 8;
      loops = [];
      prefix = [];
      rename_locals = false;
    }
  in
  (* Identity views for the outermost formals. *)
  List.iter
    (fun p ->
      match p with
      | P_scalar x -> Hashtbl.add env.scalars x (A_id x)
      | P_array x ->
        Hashtbl.add env.arrays x
          { vbase = x; voffset = I_lit 0; vlen = I_len x })
    (d.c_tparams @ d.c_hparams);
  { d with c_body = flatten_expr env d.c_body }

let program (p : program) =
  { p with defs = List.map (def ~defs:p.defs) p.defs }
