(** Flattening (§IV-C, first compilation step): recursively expand and
    in-line every composite constituent, renaming in-lined local variables to
    fresh names. Local variables of a composite in-lined under [k] enclosing
    iterations become locals indexed by those iteration variables, so each
    run-time instance of the composite gets its own internal vertices.

    After flattening, a definition's body contains only primitive
    constituents (possibly under [prod]/[if]). *)

exception Error of string

val def : defs:Ast.conn_def list -> Ast.conn_def -> Ast.conn_def
(** Flatten one definition in the context of [defs]. The program must have
    passed {!Sema.check}. *)

val program : Ast.program -> Ast.program
(** Flatten every definition (main is untouched). *)
