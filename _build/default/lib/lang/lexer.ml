type token =
  | IDENT of string
  | INT of int
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | COMMA | SEMI | COLON | DOT | DOTDOT | HASH
  | EQ
  | EQEQ | NE | LE | GE | LT | GT
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | ANDAND | OROR | BANG
  | KW_MULT | KW_PROD | KW_IF | KW_ELSE | KW_MAIN | KW_AMONG
  | KW_FORALL | KW_AND | KW_SKIP
  | EOF

exception Error of string * int

let keyword = function
  | "mult" -> Some KW_MULT
  | "prod" -> Some KW_PROD
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "main" -> Some KW_MAIN
  | "among" -> Some KW_AMONG
  | "forall" -> Some KW_FORALL
  | "and" -> Some KW_AND
  | "skip" -> Some KW_SKIP
  | _ -> None

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let line = ref 1 in
  let tokens = ref [] in
  let emit t = tokens := (t, !line) :: !tokens in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin incr line; incr i end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && peek 1 = Some '/' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do incr i done;
      let word = String.sub src start (!i - start) in
      emit (match keyword word with Some kw -> kw | None -> IDENT word)
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do incr i done;
      emit (INT (int_of_string (String.sub src start (!i - start))))
    end
    else begin
      let two tok = emit tok; i := !i + 2 in
      let one tok = emit tok; incr i in
      match (c, peek 1) with
      | '=', Some '=' -> two EQEQ
      | '!', Some '=' -> two NE
      | '<', Some '=' -> two LE
      | '>', Some '=' -> two GE
      | '&', Some '&' -> two ANDAND
      | '|', Some '|' -> two OROR
      | '.', Some '.' -> two DOTDOT
      | '=', _ -> one EQ
      | '<', _ -> one LT
      | '>', _ -> one GT
      | '!', _ -> one BANG
      | '(', _ -> one LPAREN
      | ')', _ -> one RPAREN
      | '{', _ -> one LBRACE
      | '}', _ -> one RBRACE
      | '[', _ -> one LBRACKET
      | ']', _ -> one RBRACKET
      | ',', _ -> one COMMA
      | ';', _ -> one SEMI
      | ':', _ -> one COLON
      | '.', _ -> one DOT
      | '#', _ -> one HASH
      | '+', _ -> one PLUS
      | '-', _ -> one MINUS
      | '*', _ -> one STAR
      | '/', _ -> one SLASH
      | '%', _ -> one PERCENT
      | _ -> raise (Error (Printf.sprintf "unexpected character %C" c, !line))
    end
  done;
  emit EOF;
  List.rev !tokens

let token_name = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT n -> Printf.sprintf "integer %d" n
  | LPAREN -> "'('" | RPAREN -> "')'"
  | LBRACE -> "'{'" | RBRACE -> "'}'"
  | LBRACKET -> "'['" | RBRACKET -> "']'"
  | COMMA -> "','" | SEMI -> "';'" | COLON -> "':'"
  | DOT -> "'.'" | DOTDOT -> "'..'" | HASH -> "'#'"
  | EQ -> "'='" | EQEQ -> "'=='" | NE -> "'!='"
  | LE -> "'<='" | GE -> "'>='" | LT -> "'<'" | GT -> "'>'"
  | PLUS -> "'+'" | MINUS -> "'-'" | STAR -> "'*'"
  | SLASH -> "'/'" | PERCENT -> "'%'"
  | ANDAND -> "'&&'" | OROR -> "'||'" | BANG -> "'!'"
  | KW_MULT -> "'mult'" | KW_PROD -> "'prod'" | KW_IF -> "'if'"
  | KW_ELSE -> "'else'" | KW_MAIN -> "'main'" | KW_AMONG -> "'among'"
  | KW_FORALL -> "'forall'" | KW_AND -> "'and'" | KW_SKIP -> "'skip'"
  | EOF -> "end of input"
