(** Hand-written lexer for the textual DSL. *)

type token =
  | IDENT of string
  | INT of int
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | COMMA | SEMI | COLON | DOT | DOTDOT | HASH
  | EQ  (** [=] *)
  | EQEQ | NE | LE | GE | LT | GT
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | ANDAND | OROR | BANG
  | KW_MULT | KW_PROD | KW_IF | KW_ELSE | KW_MAIN | KW_AMONG
  | KW_FORALL | KW_AND | KW_SKIP
  | EOF

exception Error of string * int
(** message, line number *)

val tokenize : string -> (token * int) list
(** Token stream with line numbers. Supports [//] line comments. *)

val token_name : token -> string
