open Ast

type nbody = {
  n_consts : inst list;
  n_prods : (string * iexpr * iexpr * nbody) list;
  n_ifs : (bexpr * nbody * nbody) list;
}

let empty = { n_consts = []; n_prods = []; n_ifs = [] }

let merge a b =
  {
    n_consts = a.n_consts @ b.n_consts;
    n_prods = a.n_prods @ b.n_prods;
    n_ifs = a.n_ifs @ b.n_ifs;
  }

let rec of_expr = function
  | E_skip -> empty
  | E_inst i -> { empty with n_consts = [ i ] }
  | E_mult (a, b) -> merge (of_expr a) (of_expr b)
  | E_prod (v, lo, hi, body) ->
    { empty with n_prods = [ (v, lo, hi, of_expr body) ] }
  | E_if (c, t, e) -> begin
    match (of_expr t, of_expr e) with
    | t, e when t = empty && e = empty -> empty
    | t, e -> { empty with n_ifs = [ (c, t, e) ] }
  end

let is_empty b = b = empty

let rec to_expr b =
  let parts =
    List.map (fun i -> E_inst i) b.n_consts
    @ List.map (fun (v, lo, hi, body) -> E_prod (v, lo, hi, to_expr body)) b.n_prods
    @ List.map (fun (c, t, e) -> E_if (c, to_expr t, to_expr e)) b.n_ifs
  in
  match parts with
  | [] -> E_skip
  | first :: rest -> List.fold_left (fun acc e -> E_mult (acc, e)) first rest
