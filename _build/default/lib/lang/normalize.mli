(** Normal form (§IV-C, second compilation step): a body is reordered —
    soundly, by associativity/commutativity of [mult] — into a section of
    plain constituents, then a section of iterations, then a section of
    conditionals, recursively. *)

type nbody = {
  n_consts : Ast.inst list;
  n_prods : (string * Ast.iexpr * Ast.iexpr * nbody) list;
  n_ifs : (Ast.bexpr * nbody * nbody) list;
}

val of_expr : Ast.expr -> nbody
(** The expression must be flattened (primitive constituents only). *)

val to_expr : nbody -> Ast.expr
(** Re-linearize (for printing and round-trip tests). *)

val is_empty : nbody -> bool
