open Ast

exception Error of string * int

type state = { toks : (Lexer.token * int) array; mutable pos : int }

let make src =
  match Lexer.tokenize src with
  | toks -> { toks = Array.of_list toks; pos = 0 }
  | exception Lexer.Error (msg, line) -> raise (Error (msg, line))

let peek st = fst st.toks.(st.pos)
let line st = snd st.toks.(st.pos)
let advance st = st.pos <- st.pos + 1

let fail st what =
  raise
    (Error
       ( Printf.sprintf "expected %s, found %s" what
           (Lexer.token_name (peek st)),
         line st ))

let expect st tok what = if peek st = tok then advance st else fail st what

let ident st =
  match peek st with
  | Lexer.IDENT s -> advance st; s
  | _ -> fail st "an identifier"

(* --- Integer expressions ------------------------------------------------ *)

let rec iexpr_p st =
  let rec loop acc =
    match peek st with
    | Lexer.PLUS -> advance st; loop (I_add (acc, term st))
    | Lexer.MINUS -> advance st; loop (I_sub (acc, term st))
    | _ -> acc
  in
  loop (term st)

and term st =
  let rec loop acc =
    match peek st with
    | Lexer.STAR -> advance st; loop (I_mul (acc, unary st))
    | Lexer.SLASH -> advance st; loop (I_div (acc, unary st))
    | Lexer.PERCENT -> advance st; loop (I_mod (acc, unary st))
    | _ -> acc
  in
  loop (unary st)

and unary st =
  match peek st with
  | Lexer.MINUS -> advance st; I_neg (unary st)
  | _ -> atom st

and atom st =
  match peek st with
  | Lexer.INT n -> advance st; I_lit n
  | Lexer.IDENT v -> advance st; I_var v
  | Lexer.HASH -> advance st; I_len (ident st)
  | Lexer.LPAREN ->
    advance st;
    let e = iexpr_p st in
    expect st Lexer.RPAREN "')'";
    e
  | _ -> fail st "an integer expression"

(* --- Boolean expressions ------------------------------------------------ *)

let cmp_of_token = function
  | Lexer.EQEQ -> Some Ceq
  | Lexer.NE -> Some Cne
  | Lexer.LT -> Some Clt
  | Lexer.LE -> Some Cle
  | Lexer.GT -> Some Cgt
  | Lexer.GE -> Some Cge
  | _ -> None

let rec bexpr_p st =
  let rec loop acc =
    match peek st with
    | Lexer.OROR -> advance st; loop (B_or (acc, bterm st))
    | _ -> acc
  in
  loop (bterm st)

and bterm st =
  let rec loop acc =
    match peek st with
    | Lexer.ANDAND -> advance st; loop (B_and (acc, bfactor st))
    | _ -> acc
  in
  loop (bfactor st)

and bfactor st =
  match peek st with
  | Lexer.BANG -> advance st; B_not (bfactor st)
  | _ ->
    (* Could be "iexpr cmp iexpr" or "( bexpr )": try the comparison first
       and backtrack on failure. *)
    let saved = st.pos in
    (match
       try
         let a = iexpr_p st in
         match cmp_of_token (peek st) with
         | Some c ->
           advance st;
           let b = iexpr_p st in
           Some (B_cmp (c, a, b))
         | None -> None
       with Error _ -> None
     with
     | Some b -> b
     | None ->
       st.pos <- saved;
       expect st Lexer.LPAREN "a comparison or '('";
       let b = bexpr_p st in
       expect st Lexer.RPAREN "')'";
       b)

(* --- Arguments ----------------------------------------------------------- *)

let arg st =
  let name = ident st in
  let rec indices acc =
    match peek st with
    | Lexer.LBRACKET ->
      advance st;
      let e1 = iexpr_p st in
      (match peek st with
       | Lexer.DOTDOT ->
         advance st;
         let e2 = iexpr_p st in
         expect st Lexer.RBRACKET "']'";
         if acc <> [] then
           raise (Error ("slices cannot follow other indices", line st));
         (match peek st with
          | Lexer.LBRACKET ->
            raise (Error ("slices cannot be indexed further", line st))
          | _ -> `Slice (e1, e2))
       | _ ->
         expect st Lexer.RBRACKET "']'";
         indices (e1 :: acc))
    | _ -> `Indices (List.rev acc)
  in
  match indices [] with
  | `Slice (e1, e2) -> A_slice (name, e1, e2)
  | `Indices [] -> A_id name
  | `Indices idxs -> A_index (name, idxs)

let args st close =
  if peek st = close then []
  else begin
    let rec loop acc =
      let a = arg st in
      match peek st with
      | Lexer.COMMA -> advance st; loop (a :: acc)
      | _ -> List.rev (a :: acc)
    in
    loop []
  end

let qname st =
  let first = ident st in
  let rec loop acc =
    match peek st with
    | Lexer.DOT -> advance st; loop (acc ^ "." ^ ident st)
    | _ -> acc
  in
  loop first

let annotation st =
  match peek st with
  | Lexer.LT ->
    advance st;
    let a =
      match peek st with
      | Lexer.IDENT s -> advance st; s
      | Lexer.INT n -> advance st; string_of_int n
      | _ -> fail st "an annotation (identifier or integer)"
    in
    expect st Lexer.GT "'>'";
    Some a
  | _ -> None

let inst_with_name st name =
  let ann = annotation st in
  expect st Lexer.LPAREN "'('";
  let tails = args st Lexer.SEMI in
  expect st Lexer.SEMI "';'";
  let heads = args st Lexer.RPAREN in
  expect st Lexer.RPAREN "')'";
  { i_name = name; i_ann = ann; i_tails = tails; i_heads = heads }

(* --- Connector expressions ---------------------------------------------- *)

let rec expr_p st =
  let rec loop acc =
    match peek st with
    | Lexer.KW_MULT -> advance st; loop (E_mult (acc, factor st))
    | _ -> acc
  in
  loop (factor st)

and factor st =
  match peek st with
  | Lexer.KW_SKIP -> advance st; E_skip
  | Lexer.LPAREN ->
    advance st;
    let e = expr_p st in
    expect st Lexer.RPAREN "')'";
    e
  | Lexer.KW_PROD ->
    advance st;
    expect st Lexer.LPAREN "'('";
    let v = ident st in
    expect st Lexer.COLON "':'";
    let lo = iexpr_p st in
    expect st Lexer.DOTDOT "'..'";
    let hi = iexpr_p st in
    expect st Lexer.RPAREN "')'";
    let body =
      match peek st with
      | Lexer.LBRACE ->
        advance st;
        let e = expr_p st in
        expect st Lexer.RBRACE "'}'";
        e
      | _ -> factor st
    in
    E_prod (v, lo, hi, body)
  | Lexer.KW_IF ->
    advance st;
    expect st Lexer.LPAREN "'('";
    let c = bexpr_p st in
    expect st Lexer.RPAREN "')'";
    expect st Lexer.LBRACE "'{'";
    let t = expr_p st in
    expect st Lexer.RBRACE "'}'";
    let e =
      match peek st with
      | Lexer.KW_ELSE ->
        advance st;
        expect st Lexer.LBRACE "'{'";
        let e = expr_p st in
        expect st Lexer.RBRACE "'}'";
        e
      | _ -> E_skip
    in
    E_if (c, t, e)
  | Lexer.IDENT _ -> E_inst (inst_with_name st (ident st))
  | _ -> fail st "a connector expression"

(* --- Definitions --------------------------------------------------------- *)

let param st =
  let name = ident st in
  match peek st with
  | Lexer.LBRACKET ->
    advance st;
    expect st Lexer.RBRACKET "']'";
    P_array name
  | _ -> P_scalar name

let params st close =
  if peek st = close then []
  else begin
    let rec loop acc =
      let p = param st in
      match peek st with
      | Lexer.COMMA -> advance st; loop (p :: acc)
      | _ -> List.rev (p :: acc)
    in
    loop []
  end

let conn_def_p st name =
  expect st Lexer.LPAREN "'('";
  let tparams = params st Lexer.SEMI in
  expect st Lexer.SEMI "';'";
  let hparams = params st Lexer.RPAREN in
  expect st Lexer.RPAREN "')'";
  expect st Lexer.EQ "'='";
  let body = expr_p st in
  { c_name = name; c_tparams = tparams; c_hparams = hparams; c_body = body }

let task_inst_p st =
  let name = qname st in
  expect st Lexer.LPAREN "'('";
  let targs = args st Lexer.RPAREN in
  expect st Lexer.RPAREN "')'";
  { t_name = name; t_args = targs }

let task_item_p st =
  match peek st with
  | Lexer.KW_FORALL ->
    advance st;
    expect st Lexer.LPAREN "'('";
    let v = ident st in
    expect st Lexer.COLON "':'";
    let lo = iexpr_p st in
    expect st Lexer.DOTDOT "'..'";
    let hi = iexpr_p st in
    expect st Lexer.RPAREN "')'";
    TI_forall (v, lo, hi, task_inst_p st)
  | _ -> TI_single (task_inst_p st)

let main_def_p st =
  let mparams =
    match peek st with
    | Lexer.LPAREN ->
      advance st;
      let rec loop acc =
        let p = ident st in
        match peek st with
        | Lexer.COMMA -> advance st; loop (p :: acc)
        | _ -> List.rev (p :: acc)
      in
      let ps = loop [] in
      expect st Lexer.RPAREN "')'";
      ps
    | _ -> []
  in
  expect st Lexer.EQ "'='";
  let conn = inst_with_name st (ident st) in
  expect st Lexer.KW_AMONG "'among'";
  let rec tasks acc =
    let t = task_item_p st in
    match peek st with
    | Lexer.KW_AND -> advance st; tasks (t :: acc)
    | _ -> List.rev (t :: acc)
  in
  { m_params = mparams; m_conn = conn; m_tasks = tasks [] }

let program_p st =
  let defs = ref [] in
  let main = ref None in
  let rec loop () =
    match peek st with
    | Lexer.EOF -> ()
    | Lexer.KW_MAIN ->
      advance st;
      if !main <> None then
        raise (Error ("duplicate main definition", line st));
      main := Some (main_def_p st);
      loop ()
    | Lexer.IDENT _ ->
      let name = ident st in
      defs := conn_def_p st name :: !defs;
      loop ()
    | _ -> fail st "a definition or end of input"
  in
  loop ();
  { defs = List.rev !defs; main = !main }

(* --- Entry points -------------------------------------------------------- *)

let parse_with f src =
  let st = make src in
  let x = f st in
  (match peek st with
   | Lexer.EOF -> ()
   | _ -> fail st "end of input");
  x

let program src = parse_with program_p src
let conn_def src = parse_with (fun st -> conn_def_p st (ident st)) src
let iexpr src = parse_with iexpr_p src
let bexpr src = parse_with bexpr_p src
