(** Recursive-descent parser for the textual DSL (concrete grammar in the
    README; it follows the paper's Figs. 8–9 verbatim, plus [skip], [//]
    comments, and [Name<ann>] data annotations). *)

exception Error of string * int
(** message, line *)

val program : string -> Ast.program
val conn_def : string -> Ast.conn_def
(** Parse a single connector definition (convenience for tests). *)

val iexpr : string -> Ast.iexpr
val bexpr : string -> Ast.bexpr
