open Ast

exception Error of string

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type kind = K_scalar | K_array

type scope = {
  defs : (string, conn_def) Hashtbl.t;
  params : (string, kind) Hashtbl.t;  (** formal vertex parameters *)
  locals : (string, int) Hashtbl.t;  (** local name -> index arity *)
  mutable loop_vars : string list;
  int_params : string list;  (** main parameters, empty inside conn defs *)
  where : string;
}

let param_name = function P_scalar x | P_array x -> x
let param_kind = function P_scalar _ -> K_scalar | P_array _ -> K_array

(* --- Integer and boolean expressions ------------------------------------ *)

let rec check_iexpr sc = function
  | I_lit _ -> ()
  | I_var v ->
    if not (List.mem v sc.loop_vars || List.mem v sc.int_params) then
      err "%s: %s is not an iteration variable or integer parameter" sc.where v
  | I_len a -> begin
    match Hashtbl.find_opt sc.params a with
    | Some K_array -> ()
    | Some K_scalar -> err "%s: #%s applied to a scalar parameter" sc.where a
    | None -> err "%s: #%s refers to an unknown array" sc.where a
  end
  | I_add (a, b) | I_sub (a, b) | I_mul (a, b) | I_div (a, b) | I_mod (a, b) ->
    check_iexpr sc a;
    check_iexpr sc b
  | I_neg a -> check_iexpr sc a

let rec check_bexpr sc = function
  | B_cmp (_, a, b) -> check_iexpr sc a; check_iexpr sc b
  | B_and (a, b) | B_or (a, b) -> check_bexpr sc a; check_bexpr sc b
  | B_not a -> check_bexpr sc a

(* --- Arguments ----------------------------------------------------------- *)

(* Returns the kind the argument denotes. *)
let check_arg sc = function
  | A_id x -> begin
    match Hashtbl.find_opt sc.params x with
    | Some k -> k
    | None ->
      if List.mem x sc.loop_vars then
        err "%s: iteration variable %s used as a vertex" sc.where x;
      (* Implicitly declared local scalar. *)
      (match Hashtbl.find_opt sc.locals x with
       | Some 0 -> ()
       | Some n ->
         err "%s: local %s used both with %d indices and without" sc.where x n
       | None -> Hashtbl.add sc.locals x 0);
      K_scalar
  end
  | A_index (x, idxs) -> begin
    List.iter (check_iexpr sc) idxs;
    let nidx = List.length idxs in
    match Hashtbl.find_opt sc.params x with
    | Some K_array ->
      if nidx <> 1 then
        err "%s: array parameter %s takes exactly one index" sc.where x;
      K_scalar
    | Some K_scalar -> err "%s: scalar parameter %s cannot be indexed" sc.where x
    | None ->
      if List.mem x sc.loop_vars then
        err "%s: iteration variable %s used as a vertex" sc.where x;
      (match Hashtbl.find_opt sc.locals x with
       | Some n when n <> nidx ->
         err "%s: local %s used with both %d and %d indices" sc.where x n nidx
       | Some _ -> ()
       | None -> Hashtbl.add sc.locals x nidx);
      K_scalar
  end
  | A_slice (x, lo, hi) -> begin
    check_iexpr sc lo;
    check_iexpr sc hi;
    match Hashtbl.find_opt sc.params x with
    | Some K_array -> K_array
    | Some K_scalar -> err "%s: cannot slice scalar parameter %s" sc.where x
    | None ->
      if List.mem x sc.loop_vars then
        err "%s: iteration variable %s used as a vertex" sc.where x;
      (* Slice of a local array: the local must be singly indexed. *)
      (match Hashtbl.find_opt sc.locals x with
       | Some 1 -> ()
       | Some n -> err "%s: local %s used with both %d and 1 indices" sc.where x n
       | None -> Hashtbl.add sc.locals x 1);
      K_array
  end

(* --- Instantiations ------------------------------------------------------ *)

let has_slice args = List.exists (function A_slice _ -> true | _ -> false) args

let check_inst sc (i : inst) =
  let tails = List.map (check_arg sc) i.i_tails in
  let heads = List.map (check_arg sc) i.i_heads in
  match Preo_reo.Prim.of_name i.i_name with
  | Some kind -> begin
    (match i.i_ann with
     | Some ann -> begin
       match kind with
       | Preo_reo.Prim.Filter _ | Preo_reo.Prim.Transform _
       | Preo_reo.Prim.Fifo1_full _ -> ()
       | Preo_reo.Prim.Fifo1 -> begin
         match int_of_string_opt ann with
         | Some n when n >= 1 -> ()
         | _ -> err "%s: Fifo<%s>: capacity must be a positive integer" sc.where ann
       end
       | _ -> err "%s: %s does not take a <...> annotation" sc.where i.i_name
     end
     | None -> begin
       match kind with
       | Preo_reo.Prim.Filter _ ->
         err "%s: Filter requires a <predicate> annotation" sc.where
       | Preo_reo.Prim.Transform _ ->
         err "%s: Transform requires a <function> annotation" sc.where
       | _ -> ()
     end);
    let variadic_tails, variadic_heads =
      match kind with
      | Preo_reo.Prim.Merger | Preo_reo.Prim.Seq | Preo_reo.Prim.Sync_drain
      | Preo_reo.Prim.Async_drain -> (true, false)
      | Preo_reo.Prim.Replicator | Preo_reo.Prim.Router -> (false, true)
      | _ -> (false, false)
    in
    let ntails = List.length i.i_tails and nheads = List.length i.i_heads in
    if (not variadic_tails) && (has_slice i.i_tails || List.mem K_array tails)
    then err "%s: %s does not accept arrays as tails" sc.where i.i_name;
    if (not variadic_heads) && (has_slice i.i_heads || List.mem K_array heads)
    then err "%s: %s does not accept arrays as heads" sc.where i.i_name;
    (* With slices, the static count is a lower bound only. *)
    let ok =
      if variadic_tails || variadic_heads then ntails >= 1 || nheads >= 1
      else Preo_reo.Prim.arity_ok kind ~ntails ~nheads
    in
    if not ok then
      err "%s: %s does not accept %d tails and %d heads" sc.where i.i_name
        ntails nheads
  end
  | None -> begin
    match Hashtbl.find_opt sc.defs i.i_name with
    | None -> err "%s: unknown connector %s" sc.where i.i_name
    | Some d ->
      if i.i_ann <> None then
        err "%s: composite %s does not take an annotation" sc.where i.i_name;
      let check_group formals actuals which =
        if List.length formals <> List.length actuals then
          err "%s: %s expects %d %s parameters, got %d" sc.where i.i_name
            (List.length formals) which (List.length actuals);
        List.iter2
          (fun formal actual_kind ->
            match (formal, actual_kind) with
            | P_scalar _, K_scalar | P_array _, K_array -> ()
            | P_scalar x, K_array ->
              err "%s: %s parameter %s needs a scalar vertex" sc.where
                i.i_name x
            | P_array x, K_scalar ->
              err "%s: %s parameter %s needs an array (use a slice)" sc.where
                i.i_name x)
          formals actuals
      in
      check_group d.c_tparams tails "tail";
      check_group d.c_hparams heads "head"
  end

(* --- Expressions --------------------------------------------------------- *)

let rec check_expr sc = function
  | E_skip -> ()
  | E_inst i -> check_inst sc i
  | E_mult (a, b) -> check_expr sc a; check_expr sc b
  | E_prod (v, lo, hi, body) ->
    if List.mem v sc.loop_vars then
      err "%s: iteration variable %s shadows an enclosing one" sc.where v;
    if Hashtbl.mem sc.params v then
      err "%s: iteration variable %s shadows a parameter" sc.where v;
    check_iexpr sc lo;
    check_iexpr sc hi;
    sc.loop_vars <- v :: sc.loop_vars;
    check_expr sc body;
    sc.loop_vars <- List.tl sc.loop_vars
  | E_if (c, t, e) ->
    check_bexpr sc c;
    check_expr sc t;
    check_expr sc e

(* --- Definitions --------------------------------------------------------- *)

let scope_of_def defs (d : conn_def) =
  let params = Hashtbl.create 8 in
  List.iter
    (fun p ->
      let name = param_name p in
      if Hashtbl.mem params name then
        err "%s: duplicate parameter %s" d.c_name name;
      Hashtbl.add params name (param_kind p))
    (d.c_tparams @ d.c_hparams);
  {
    defs;
    params;
    locals = Hashtbl.create 8;
    loop_vars = [];
    int_params = [];
    where = d.c_name;
  }

let check_def ~defs d =
  let tbl = Hashtbl.create 16 in
  List.iter (fun d -> Hashtbl.replace tbl d.c_name d) defs;
  check_expr (scope_of_def tbl d) d.c_body

(* Reject (mutual) recursion among composite definitions. *)
let check_recursion defs =
  let tbl = Hashtbl.create 16 in
  List.iter (fun d -> Hashtbl.replace tbl d.c_name d) defs;
  let rec calls_of = function
    | E_skip -> []
    | E_inst i -> if Hashtbl.mem tbl i.i_name then [ i.i_name ] else []
    | E_mult (a, b) -> calls_of a @ calls_of b
    | E_prod (_, _, _, b) -> calls_of b
    | E_if (_, a, b) -> calls_of a @ calls_of b
  in
  let visiting = Hashtbl.create 8 and done_ = Hashtbl.create 8 in
  let rec visit name =
    if Hashtbl.mem done_ name then ()
    else if Hashtbl.mem visiting name then
      err "recursive connector definition involving %s" name
    else begin
      Hashtbl.add visiting name ();
      (match Hashtbl.find_opt tbl name with
       | Some d -> List.iter visit (calls_of d.c_body)
       | None -> ());
      Hashtbl.remove visiting name;
      Hashtbl.add done_ name ()
    end
  in
  List.iter (fun d -> visit d.c_name) defs

(* --- Main ---------------------------------------------------------------- *)

let check_main defs (m : main_def) =
  let tbl = Hashtbl.create 16 in
  List.iter (fun d -> Hashtbl.replace tbl d.c_name d) defs;
  (match List.find_opt (fun p -> List.length (List.filter (String.equal p) m.m_params) > 1) m.m_params with
   | Some p -> err "main: duplicate parameter %s" p
   | None -> ());
  let sc =
    {
      defs = tbl;
      params = Hashtbl.create 8;
      locals = Hashtbl.create 8;
      loop_vars = [];
      int_params = m.m_params;
      where = "main";
    }
  in
  (* Port groups created by the connector instance. *)
  let declare arg =
    match arg with
    | A_id x | A_index (x, _) | A_slice (x, _, _) ->
      if Hashtbl.mem sc.params x then err "main: port group %s reused" x;
      (match arg with
       | A_id x -> Hashtbl.add sc.params x K_scalar
       | A_slice (x, lo, hi) ->
         check_iexpr sc lo;
         check_iexpr sc hi;
         Hashtbl.add sc.params x K_array
       | A_index _ -> err "main: connector arguments must be names or slices");
      x
  in
  let groups =
    List.map declare (m.m_conn.i_tails @ m.m_conn.i_heads)
  in
  (* The connector itself must exist with compatible shape. *)
  check_inst sc m.m_conn;
  (* Tasks may only use the declared groups. *)
  let used = Hashtbl.create 8 in
  let check_task_arg sc a =
    (match a with
     | A_id x | A_index (x, _) | A_slice (x, _, _) ->
       if not (Hashtbl.mem sc.params x) then
         err "main: task uses undeclared port %s" x;
       Hashtbl.replace used x ());
    ignore (check_arg sc a)
  in
  List.iter
    (fun item ->
      match item with
      | TI_single t -> List.iter (check_task_arg sc) t.t_args
      | TI_forall (v, lo, hi, t) ->
        check_iexpr sc lo;
        check_iexpr sc hi;
        sc.loop_vars <- v :: sc.loop_vars;
        List.iter (check_task_arg sc) t.t_args;
        sc.loop_vars <- List.tl sc.loop_vars)
    m.m_tasks;
  List.iter
    (fun g ->
      if not (Hashtbl.mem used g) then
        err "main: port group %s is not used by any task" g)
    groups

let check (p : program) =
  (* Unique definition names, not shadowing primitives. *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun d ->
      if Preo_reo.Prim.of_name d.c_name <> None then
        err "definition %s shadows a primitive" d.c_name;
      if Hashtbl.mem seen d.c_name then err "duplicate definition %s" d.c_name;
      Hashtbl.add seen d.c_name ())
    p.defs;
  List.iter (check_def ~defs:p.defs) p.defs;
  check_recursion p.defs;
  Option.iter (check_main p.defs) p.main
