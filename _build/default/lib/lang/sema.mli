(** Semantic analysis: scoping, kinds, arities, recursion.

    Checks a parsed program before flattening/compilation:
    - definition names are unique and do not shadow primitives;
    - formal parameters are distinct; array/scalar kinds are used
      consistently (indexing only arrays, [#] only on arrays, scalars never
      indexed);
    - integer expressions refer only to iteration variables in scope (and to
      main parameters inside [main]);
    - instantiated names exist and argument shapes fit (fixed-arity
      primitives get exactly their ports, variadic ones at least one);
    - composite definitions are not (mutually) recursive;
    - in [main], tasks use exactly the port groups declared by the connector
      instance. *)

exception Error of string

val check : Ast.program -> unit
(** Raises {!Error} with a descriptive message on the first problem. *)

val check_def : defs:Ast.conn_def list -> Ast.conn_def -> unit
(** Check a single definition in the context of [defs]. *)
