open Preo_automata
open Ast

exception Error of string

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type sym = S_indexed of string * iexpr list | S_scalar of string

type medium =
  | M_static of {
      auto : Automaton.t;
      binding : (Vertex.t * sym) array;
    }
  | M_dynamic of Ast.inst

type node =
  | N_medium of medium
  | N_loop of string * iexpr * iexpr * node list
  | N_if of bexpr * node list * node list

type t = { def : conn_def; nodes : node list }

(* --- Compilation -------------------------------------------------------- *)

let sym_of_arg = function
  | A_id x -> S_scalar x
  | A_index (x, idxs) -> S_indexed (x, List.map canon_iexpr idxs)
  | A_slice _ -> invalid_arg "sym_of_arg: slice"

let has_slice (i : inst) =
  List.exists
    (function A_slice _ -> true | A_id _ | A_index _ -> false)
    (i.i_tails @ i.i_heads)

(* Whole-array parameters passed bare (A_id over an array formal) also have
   run-time arity. The flattened form only produces A_slice for those, so
   [has_slice] is the complete test. *)

let compile_group ~max_medium_states (consts : inst list) : medium =
  let placeholders : (sym, Vertex.t) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let placeholder sym =
    match Hashtbl.find_opt placeholders sym with
    | Some v -> v
    | None ->
      let name =
        match sym with
        | S_scalar x -> x
        | S_indexed (x, _) -> x ^ "[..]"
      in
      let v = Vertex.fresh name in
      Hashtbl.add placeholders sym v;
      order := (v, sym) :: !order;
      v
  in
  let smalls =
    List.map
      (fun i ->
        let kind = Eval.kind_of_inst i in
        let tails = List.map (fun a -> placeholder (sym_of_arg a)) i.i_tails in
        let heads = List.map (fun a -> placeholder (sym_of_arg a)) i.i_heads in
        Preo_reo.Prim.build kind ~tails ~heads)
      consts
  in
  let auto =
    try Product.all ~max_states:max_medium_states smalls
    with Product.Budget_exceeded msg ->
      err "template: a static group is too large to compose at compile time (%s)" msg
  in
  M_static { auto; binding = Array.of_list (List.rev !order) }

let rec compile_nbody ~max_medium_states (b : Normalize.nbody) : node list =
  let static, dynamic = List.partition (fun i -> not (has_slice i)) b.n_consts in
  let mediums =
    (if static = [] then []
     else [ N_medium (compile_group ~max_medium_states static) ])
    @ List.map (fun i -> N_medium (M_dynamic i)) dynamic
  in
  mediums
  @ List.map
      (fun (v, lo, hi, body) ->
        N_loop (v, lo, hi, compile_nbody ~max_medium_states body))
      b.n_prods
  @ List.map
      (fun (c, t, e) ->
        N_if
          ( c,
            compile_nbody ~max_medium_states t,
            compile_nbody ~max_medium_states e ))
      b.n_ifs

let compile ?(max_medium_states = 100_000) (d : conn_def) =
  { def = d; nodes = compile_nbody ~max_medium_states (Normalize.of_expr d.c_body) }

(* --- Instantiation ------------------------------------------------------ *)

let resolve_sym (env : Eval.venv) = function
  | S_scalar x -> begin
    match Eval.resolve_arg env (A_id x) with
    | [ v ] -> v
    | _ -> err "template: %s is an array, expected a scalar vertex" x
  end
  | S_indexed (x, idxs) -> begin
    match Eval.resolve_arg env (A_index (x, idxs)) with
    | [ v ] -> v
    | _ -> err "template: %s[...] did not resolve to one vertex" x
  end

let instantiate_static env auto (binding : (Vertex.t * sym) array) =
  let mapping = Hashtbl.create 16 in
  let inverse = Hashtbl.create 16 in
  Array.iter
    (fun (ph, sym) ->
      let v = resolve_sym env sym in
      (match Hashtbl.find_opt inverse v with
       | Some _ ->
         err
           "template: two symbolic vertices of one medium resolved to the \
            same vertex %s (ill-formed instantiation)"
           (Vertex.name v)
       | None -> Hashtbl.add inverse v ());
      Hashtbl.add mapping ph v)
    binding;
  let fresh_cells = Hashtbl.create 4 in
  let cell_copy c =
    match Hashtbl.find_opt fresh_cells c with
    | Some d -> d
    | None ->
      let d = Cell.fresh (Cell.name c) in
      Hashtbl.add fresh_cells c d;
      d
  in
  auto
  |> Automaton.map_vertices (fun v ->
         match Hashtbl.find_opt mapping v with Some c -> c | None -> v)
  |> Automaton.map_cells cell_copy

let instantiate_dynamic env (i : inst) =
  let kind = Eval.kind_of_inst i in
  let tails = List.concat_map (Eval.resolve_arg env) i.i_tails in
  let heads = List.concat_map (Eval.resolve_arg env) i.i_heads in
  if
    not
      (Preo_reo.Prim.arity_ok kind ~ntails:(List.length tails)
         ~nheads:(List.length heads))
  then
    err "template: %s instantiated with %d tails / %d heads" i.i_name
      (List.length tails) (List.length heads);
  Preo_reo.Prim.build kind ~tails ~heads

let rec instantiate_nodes env nodes =
  List.concat_map
    (fun node ->
      match node with
      | N_medium (M_static { auto; binding }) ->
        [ instantiate_static env auto binding ]
      | N_medium (M_dynamic i) -> [ instantiate_dynamic env i ]
      | N_loop (v, lo, hi, body) ->
        let lo = Eval.eval_int env lo and hi = Eval.eval_int env hi in
        List.concat_map
          (fun k ->
            instantiate_nodes { env with Eval.ints = (v, k) :: env.Eval.ints } body)
          (List.init (max 0 (hi - lo + 1)) (fun j -> lo + j))
      | N_if (c, t, e) ->
        if Eval.eval_bool env c then instantiate_nodes env t
        else instantiate_nodes env e)
    nodes

let instantiate t env = instantiate_nodes env t.nodes

let rec count_nodes pred nodes =
  List.fold_left
    (fun acc node ->
      acc
      +
      match node with
      | N_medium m -> if pred m then 1 else 0
      | N_loop (_, _, _, body) -> count_nodes pred body
      | N_if (_, t, e) -> count_nodes pred t + count_nodes pred e)
    0 nodes

let count_static_mediums t =
  count_nodes (function M_static _ -> true | M_dynamic _ -> false) t.nodes

let count_dynamic_mediums t =
  count_nodes (function M_dynamic _ -> true | M_static _ -> false) t.nodes
