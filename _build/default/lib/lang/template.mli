(** Parametrized compilation (§IV-C, compile-time share) and run-time
    instantiation (§IV-D, run-time share).

    [compile] composes, at compile time, every statically known group of
    constituents into a "medium automaton" over placeholder vertices, and
    wraps the groups under iteration/conditional nodes mirroring the
    generated code of the paper's Fig. 10. [instantiate] executes those
    nodes once the array lengths are known, renaming placeholders to
    concrete vertices and giving every instance fresh memory cells. *)

open Preo_automata

exception Error of string

type sym =
  | S_indexed of string * Ast.iexpr list
      (** formal array parameter at an index, or an (indexed) local *)
  | S_scalar of string  (** formal scalar parameter or bare local *)

type medium =
  | M_static of {
      auto : Automaton.t;  (** composed over placeholder vertices *)
      binding : (Vertex.t * sym) array;  (** placeholder -> symbolic vertex *)
    }
  | M_dynamic of Ast.inst
      (** a constituent with run-time arity (array-slice arguments): its
          small automaton is built at instantiation time *)

type node =
  | N_medium of medium
  | N_loop of string * Ast.iexpr * Ast.iexpr * node list
  | N_if of Ast.bexpr * node list * node list

type t = { def : Ast.conn_def; nodes : node list }

val compile : ?max_medium_states:int -> Ast.conn_def -> t
(** The definition must be flattened. [max_medium_states] bounds each static
    group's compile-time product (default 100_000). *)

val instantiate : t -> Eval.venv -> Automaton.t list
(** The run-time share: returns the concrete medium automata. Raises
    {!Error} if two distinct symbolic vertices of one medium resolve to the
    same concrete vertex (an ill-formed instantiation, cf. Fig. 9's [if]
    guarding the N=1 case). *)

val count_static_mediums : t -> int
val count_dynamic_mediums : t -> int
