lib/npb/cg.ml: Array Clock Comm Float Int List Preo_runtime Preo_support Rng Workloads
