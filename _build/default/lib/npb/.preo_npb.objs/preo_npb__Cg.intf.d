lib/npb/cg.mli: Comm Workloads
