lib/npb/comm.ml: Array Atomic Config Handsync List Port Preo Preo_connectors Task Value
