lib/npb/comm.mli: Preo_runtime Preo_support
