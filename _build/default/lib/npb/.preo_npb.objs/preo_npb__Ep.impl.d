lib/npb/ep.ml: Clock Comm List Preo_runtime Preo_support Rng Workloads
