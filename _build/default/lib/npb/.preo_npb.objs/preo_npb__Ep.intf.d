lib/npb/ep.mli: Comm Workloads
