lib/npb/handsync.ml: Array Condition Mutex Queue
