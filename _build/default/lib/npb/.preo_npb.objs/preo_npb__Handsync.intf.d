lib/npb/handsync.mli:
