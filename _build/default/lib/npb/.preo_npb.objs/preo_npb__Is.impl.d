lib/npb/is.ml: Array Clock Comm Int List Preo_runtime Preo_support Rng Workloads
