lib/npb/is.mli: Comm Workloads
