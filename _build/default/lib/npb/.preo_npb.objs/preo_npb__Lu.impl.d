lib/npb/lu.ml: Array Clock Comm Float List Preo_runtime Preo_support Rng Value Workloads
