lib/npb/lu.mli: Comm Workloads
