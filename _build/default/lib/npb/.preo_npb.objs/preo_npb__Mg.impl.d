lib/npb/mg.ml: Array Clock Comm List Preo_runtime Preo_support Rng Workloads
