lib/npb/mg.mli: Comm Workloads
