lib/npb/workloads.ml:
