lib/npb/workloads.mli:
