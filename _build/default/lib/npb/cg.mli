(** NPB CG kernel: estimate the largest eigenvalue of a sparse symmetric
    positive-definite matrix with the power method, solving each inner
    system by conjugate gradients (master–slaves organization; the paper's
    Fig. 13 left column).

    Work is partitioned by matrix rows; vectors live in shared memory (as in
    the threaded Java reference implementation), so communication consists
    of barriers and rank-ordered allreduce operations, supplied by a
    {!Comm.t}. Both variants compute bit-identical results. *)

type result = {
  zeta : float;  (** verification value (eigenvalue estimate) *)
  seconds : float;
  comm_steps : int;  (** connector steps (0 for the hand variant) *)
}

val run : comm:Comm.t -> cls:Workloads.cls -> nslaves:int -> result

val verify : Workloads.cls -> nslaves:int -> bool
(** Hand vs Reo variants agree exactly. *)
