(** NPB EP kernel ("embarrassingly parallel"): Monte-Carlo estimation with
    per-slave independent random streams and one final reduction — minimal
    communication, included to cover the kernels' easy end. *)

type result = { estimate : float; seconds : float; comm_steps : int }

val run : comm:Comm.t -> cls:Workloads.cls -> nslaves:int -> result
val verify : Workloads.cls -> nslaves:int -> bool
