type barrier = {
  b_lock : Mutex.t;
  b_cond : Condition.t;
  b_parties : int;
  mutable b_count : int;
  mutable b_phase : int;
}

let barrier n =
  { b_lock = Mutex.create (); b_cond = Condition.create (); b_parties = n;
    b_count = 0; b_phase = 0 }

let await b =
  Mutex.lock b.b_lock;
  let phase = b.b_phase in
  b.b_count <- b.b_count + 1;
  if b.b_count = b.b_parties then begin
    b.b_count <- 0;
    b.b_phase <- b.b_phase + 1;
    Condition.broadcast b.b_cond
  end
  else
    while b.b_phase = phase do
      Condition.wait b.b_cond b.b_lock
    done;
  Mutex.unlock b.b_lock

type 'a channel = {
  c_lock : Mutex.t;
  c_cond : Condition.t;
  c_queue : 'a Queue.t;
}

let channel () =
  { c_lock = Mutex.create (); c_cond = Condition.create (); c_queue = Queue.create () }

let send c x =
  Mutex.lock c.c_lock;
  Queue.push x c.c_queue;
  Condition.signal c.c_cond;
  Mutex.unlock c.c_lock

let recv c =
  Mutex.lock c.c_lock;
  while Queue.is_empty c.c_queue do
    Condition.wait c.c_cond c.c_lock
  done;
  let x = Queue.pop c.c_queue in
  Mutex.unlock c.c_lock;
  x

type reducer = {
  r_lock : Mutex.t;
  r_cond : Condition.t;
  r_parties : int;
  mutable r_count : int;
  mutable r_phase : int;
  r_parts : float array;
  mutable r_result : float;
}

let reducer n =
  { r_lock = Mutex.create (); r_cond = Condition.create (); r_parties = n;
    r_count = 0; r_phase = 0; r_parts = Array.make n 0.0; r_result = 0.0 }

(* Summation happens in rank order so the result is deterministic and
   bit-identical to the connector-based variant (which also reduces in rank
   order). *)
let reduce r rank x =
  Mutex.lock r.r_lock;
  let phase = r.r_phase in
  r.r_parts.(rank) <- x;
  r.r_count <- r.r_count + 1;
  if r.r_count = r.r_parties then begin
    r.r_result <- Array.fold_left ( +. ) 0.0 r.r_parts;
    r.r_count <- 0;
    r.r_phase <- r.r_phase + 1;
    Condition.broadcast r.r_cond
  end
  else
    while r.r_phase = phase do
      Condition.wait r.r_cond r.r_lock
    done;
  let result = r.r_result in
  Mutex.unlock r.r_lock;
  result

type array_reducer = {
  a_lock : Mutex.t;
  a_cond : Condition.t;
  a_parties : int;
  mutable a_count : int;
  mutable a_phase : int;
  a_parts : float array option array;
  mutable a_result : float array;
}

let array_reducer n =
  { a_lock = Mutex.create (); a_cond = Condition.create (); a_parties = n;
    a_count = 0; a_phase = 0; a_parts = Array.make n None; a_result = [||] }

let reduce_array r rank xs =
  Mutex.lock r.a_lock;
  let phase = r.a_phase in
  r.a_parts.(rank) <- Some xs;
  r.a_count <- r.a_count + 1;
  if r.a_count = r.a_parties then begin
    let len = Array.length xs in
    let acc = Array.make len 0.0 in
    (* rank order: deterministic *)
    Array.iter
      (function
        | Some part -> Array.iteri (fun i x -> acc.(i) <- acc.(i) +. x) part
        | None -> assert false)
      r.a_parts;
    Array.fill r.a_parts 0 r.a_parties None;
    r.a_result <- acc;
    r.a_count <- 0;
    r.a_phase <- r.a_phase + 1;
    Condition.broadcast r.a_cond
  end
  else
    while r.a_phase = phase do
      Condition.wait r.a_cond r.a_lock
    done;
  let result = r.a_result in
  Mutex.unlock r.a_lock;
  result
