(** Hand-written synchronization for the "original" NPB variants: the
    constructs a programmer would reach for without a protocol language
    (cf. the paper's §V-C baseline). *)

type barrier

val barrier : int -> barrier
val await : barrier -> unit
(** Cyclic: blocks until all parties arrive, then all are released. *)

type 'a channel

val channel : unit -> 'a channel
val send : 'a channel -> 'a -> unit
(** Nonblocking (unbounded buffer). *)

val recv : 'a channel -> 'a
(** Blocking. *)

type reducer

val reducer : int -> reducer
val reduce : reducer -> int -> float -> float
(** [reduce r rank x] contributes [x] as party [rank] and returns the sum of
    all [n] contributions, added in rank order (deterministic); acts as a
    barrier (phase-correct for repeated use). *)

type array_reducer

val array_reducer : int -> array_reducer

val reduce_array : array_reducer -> int -> float array -> float array
(** Elementwise sum of all parties' arrays (equal lengths), added in rank
    order; collective like {!reduce}. The returned array is shared between
    parties and must not be mutated. *)
