(** NPB IS kernel (integer sort, simplified): each slave generates random
    keys, all ranks build a global bucket histogram with an array allreduce,
    derive global ranks, and locally counting-sort their keys. The global
    histogram exchange is the kernel's communication signature (here: one
    array allreduce per iteration — gather through the paper's
    ordered-merger connector, broadcast through a fifo broadcast). *)

type result = { checksum : float; seconds : float; comm_steps : int }

val run : comm:Comm.t -> cls:Workloads.cls -> nslaves:int -> result
val verify : Workloads.cls -> nslaves:int -> bool
