(** NPB LU application (simplified): SSOR-style wavefront sweeps over a 2-D
    grid, with row blocks owned by slaves and a software pipeline between
    adjacent ranks (the paper's "master–slaves and pipeline" structure;
    Fig. 13 right column).

    A slave may update chunk [k] of its block only after its upper
    neighbour finished chunk [k] of the previous block — the dependency
    token travels down the pipeline (hand-written channels vs. a fifo-array
    connector). The reverse sweep pipelines in the same direction ordering,
    preserving determinism. *)

type result = {
  residual : float;
      (** verification value: weighted grid checksum plus the last sweep's
          residual *)
  seconds : float;
  comm_steps : int;
}

val run : comm:Comm.t -> cls:Workloads.cls -> nslaves:int -> result
val verify : Workloads.cls -> nslaves:int -> bool
