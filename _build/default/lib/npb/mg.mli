(** NPB MG kernel (simplified): V-cycle multigrid for a 2-D Poisson problem
    with damped-Jacobi smoothing. Slaves own row blocks at every grid level;
    the communication signature is barrier-heavy (phase separation at each
    level) with one residual-norm allreduce per V-cycle — distinct from CG's
    reduce-dominated and LU's pipeline-dominated patterns. *)

type result = { norm : float; seconds : float; comm_steps : int }

val run : comm:Comm.t -> cls:Workloads.cls -> nslaves:int -> result
val verify : Workloads.cls -> nslaves:int -> bool
