type cls = S | W | A | C

let cls_of_string = function
  | "S" | "s" -> Some S
  | "W" | "w" -> Some W
  | "A" | "a" -> Some A
  | "C" | "c" -> Some C
  | _ -> None

let cls_name = function S -> "S" | W -> "W" | A -> "A" | C -> "C"
let all = [ S; W; A; C ]

type cg_params = {
  cg_na : int;
  cg_nonzer : int;
  cg_niter : int;
  cg_inner : int;
  cg_shift : float;
}

let cg = function
  | S -> { cg_na = 200; cg_nonzer = 6; cg_niter = 3; cg_inner = 10; cg_shift = 10.0 }
  | W -> { cg_na = 1_000; cg_nonzer = 8; cg_niter = 5; cg_inner = 15; cg_shift = 12.0 }
  | A -> { cg_na = 8_000; cg_nonzer = 12; cg_niter = 10; cg_inner = 25; cg_shift = 20.0 }
  | C -> { cg_na = 40_000; cg_nonzer = 16; cg_niter = 15; cg_inner = 25; cg_shift = 60.0 }

type lu_params = {
  lu_nx : int;
  lu_ny : int;
  lu_niter : int;
  lu_chunk : int;
}

let lu = function
  | S -> { lu_nx = 24; lu_ny = 24; lu_niter = 4; lu_chunk = 8 }
  | W -> { lu_nx = 64; lu_ny = 64; lu_niter = 8; lu_chunk = 16 }
  | A -> { lu_nx = 256; lu_ny = 256; lu_niter = 12; lu_chunk = 32 }
  | C -> { lu_nx = 1024; lu_ny = 1024; lu_niter = 40; lu_chunk = 64 }

type ep_params = { ep_samples : int }

let ep = function
  | S -> { ep_samples = 50_000 }
  | W -> { ep_samples = 500_000 }
  | A -> { ep_samples = 5_000_000 }
  | C -> { ep_samples = 50_000_000 }
