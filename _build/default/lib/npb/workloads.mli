(** Workload classes for the NAS Parallel Benchmarks kernels.

    The original NPB classes (S, W, A, B, C) are defined by problem sizes
    that take minutes on a 1990s supercomputer; we keep the class ladder and
    its intent (S = tiny, overhead-dominated; C = large, compute-dominated)
    but scale the absolute sizes so that class C runs in seconds on one
    laptop core. The substitution is documented in DESIGN.md §2. *)

type cls = S | W | A | C

val cls_of_string : string -> cls option
val cls_name : cls -> string
val all : cls list

type cg_params = {
  cg_na : int;  (** matrix order *)
  cg_nonzer : int;  (** nonzeros per row (approx.) *)
  cg_niter : int;  (** outer (power-method) iterations *)
  cg_inner : int;  (** CG iterations per outer step *)
  cg_shift : float;  (** diagonal shift *)
}

val cg : cls -> cg_params

type lu_params = {
  lu_nx : int;  (** grid rows *)
  lu_ny : int;  (** grid columns *)
  lu_niter : int;  (** SSOR sweeps *)
  lu_chunk : int;  (** pipeline chunk width (columns per hop) *)
}

val lu : cls -> lu_params

type ep_params = { ep_samples : int }

val ep : cls -> ep_params
