lib/reo/figures.ml: Graph Preo_automata Prim Vertex
