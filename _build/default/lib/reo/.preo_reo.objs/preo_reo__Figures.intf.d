lib/reo/figures.mli: Graph Preo_automata Vertex
