lib/reo/graph.ml: Automaton Hashtbl Iset List Preo_automata Preo_support Prim Printf Product String Vertex
