lib/reo/graph.mli: Automaton Preo_automata Preo_support Prim Vertex
