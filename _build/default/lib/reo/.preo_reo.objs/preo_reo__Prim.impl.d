lib/reo/prim.ml: Array Automaton Cell Constr Iset List Preo_automata Preo_support Printf String Value
