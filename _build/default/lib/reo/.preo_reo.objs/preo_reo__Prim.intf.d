lib/reo/prim.mli: Automaton Preo_automata Preo_support Vertex
