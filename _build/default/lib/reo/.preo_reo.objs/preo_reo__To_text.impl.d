lib/reo/to_text.ml: Buffer Graph Hashtbl Iset List Preo_automata Preo_support Prim Printf String Vertex
