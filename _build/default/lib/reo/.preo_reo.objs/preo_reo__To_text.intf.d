lib/reo/to_text.mli: Graph
