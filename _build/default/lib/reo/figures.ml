(** The paper's running example as a graphical connector (Fig. 5): first task
    A communicates to task C, then task B communicates to C, repeating. *)

open Preo_automata

type fig5 = {
  graph : Graph.t;
  a_out : Vertex.t;  (** tl1: where task A sends *)
  b_out : Vertex.t;  (** tl2: where task B sends *)
  c_in1 : Vertex.t;  (** hd1: where task C receives A's messages *)
  c_in2 : Vertex.t;  (** hd2: where task C receives B's messages *)
}

let fig5 () =
  let tl1 = Vertex.fresh "tl1" and tl2 = Vertex.fresh "tl2" in
  let hd1 = Vertex.fresh "hd1" and hd2 = Vertex.fresh "hd2" in
  let prev1 = Vertex.fresh "prev1" and prev2 = Vertex.fresh "prev2" in
  let next1 = Vertex.fresh "next1" and next2 = Vertex.fresh "next2" in
  let v1 = Vertex.fresh "v1" and v2 = Vertex.fresh "v2" in
  let w1 = Vertex.fresh "w1" and w2 = Vertex.fresh "w2" in
  let graph =
    [
      Graph.arc Prim.Replicator ~tails:[ tl1 ] ~heads:[ prev1; v1 ];
      Graph.arc Prim.Replicator ~tails:[ tl2 ] ~heads:[ prev2; v2 ];
      Graph.arc Prim.Fifo1 ~tails:[ v1 ] ~heads:[ w1 ];
      Graph.arc Prim.Fifo1 ~tails:[ v2 ] ~heads:[ w2 ];
      Graph.arc Prim.Replicator ~tails:[ w1 ] ~heads:[ next1; hd1 ];
      Graph.arc Prim.Replicator ~tails:[ w2 ] ~heads:[ next2; hd2 ];
      Graph.arc Prim.Seq ~tails:[ next1; prev2 ] ~heads:[];
      Graph.arc Prim.Seq ~tails:[ prev1; next2 ] ~heads:[];
    ]
  in
  { graph; a_out = tl1; b_out = tl2; c_in1 = hd1; c_in2 = hd2 }
