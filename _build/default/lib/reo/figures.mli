(** Prebuilt graphical connectors from the paper's figures. *)

open Preo_automata

type fig5 = {
  graph : Graph.t;
  a_out : Vertex.t;  (** tl1: where task A sends *)
  b_out : Vertex.t;  (** tl2: where task B sends *)
  c_in1 : Vertex.t;  (** hd1: where task C receives A's messages *)
  c_in2 : Vertex.t;  (** hd2: where task C receives B's messages *)
}

val fig5 : unit -> fig5
(** The running example (Fig. 5): first task A communicates to task C, then
    task B communicates to C, repeating. Fresh vertices per call. *)
