open Preo_support
open Preo_automata

type arc = { kind : Prim.kind; tails : Vertex.t list; heads : Vertex.t list }
type t = arc list

let arc kind ~tails ~heads =
  if not
       (Prim.arity_ok kind ~ntails:(List.length tails)
          ~nheads:(List.length heads))
  then
    invalid_arg
      (Printf.sprintf "Graph.arc: bad arity for %s" (Prim.kind_name kind));
  { kind; tails; heads }

let compose a b = a @ b

let vertices g =
  List.fold_left
    (fun acc a -> Iset.union acc (Iset.of_list (a.tails @ a.heads)))
    Iset.empty g

let boundary g =
  let tails =
    List.fold_left (fun acc a -> Iset.union acc (Iset.of_list a.tails)) Iset.empty g
  in
  let heads =
    List.fold_left (fun acc a -> Iset.union acc (Iset.of_list a.heads)) Iset.empty g
  in
  (Iset.diff tails heads, Iset.diff heads tails)

let well_formed g =
  let readers : (Vertex.t, int) Hashtbl.t = Hashtbl.create 16 in
  let writers : (Vertex.t, int) Hashtbl.t = Hashtbl.create 16 in
  let bump tbl v =
    Hashtbl.replace tbl v (1 + try Hashtbl.find tbl v with Not_found -> 0)
  in
  List.iter
    (fun a ->
      List.iter (bump readers) a.tails;
      List.iter (bump writers) a.heads)
    g;
  let bad tbl role =
    Hashtbl.fold
      (fun v n acc ->
        if n > 1 then Printf.sprintf "%s %s by %d arcs" (Vertex.name v) role n :: acc
        else acc)
      tbl []
  in
  match bad readers "read" @ bad writers "written" with
  | [] -> Ok ()
  | problems ->
    Error
      ("ill-formed connector (insert explicit mergers/replicators): "
      ^ String.concat "; " problems)

let to_automata g =
  List.map (fun a -> Prim.build a.kind ~tails:a.tails ~heads:a.heads) g

let to_large_automaton ?max_states g =
  let large = Product.all ?max_states (to_automata g) in
  let sources, sinks = boundary g in
  let keep = Iset.union sources sinks in
  Automaton.trim (Automaton.hide (Iset.diff large.vertices keep) large)
