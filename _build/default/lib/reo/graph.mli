(** Graphical representation of connectors: directed hypergraphs of typed
    arcs over vertices (the paper's Section III syntax).

    A connector [(V, A)] is kept in its equivalent "set of primitives" form
    Γ = {prim(a) | a ∈ A}; composition ⊕ is union. *)

open Preo_automata

type arc = { kind : Prim.kind; tails : Vertex.t list; heads : Vertex.t list }
type t = arc list

val arc : Prim.kind -> tails:Vertex.t list -> heads:Vertex.t list -> arc
(** Checks arity. *)

val compose : t -> t -> t
(** The ⊕ operator (multiset union of primitives). *)

val vertices : t -> Preo_support.Iset.t

val boundary : t -> Preo_support.Iset.t * Preo_support.Iset.t
(** [(sources, sinks)]: vertices read only by tasks (no arc writes them /
    no arc reads them respectively). Sources = vertices that appear only as
    tails; sinks = vertices that appear only as heads. *)

val well_formed : t -> (unit, string) result
(** Every vertex is written by at most one arc head and read by at most one
    arc tail (fan-in/fan-out must be made explicit with merger/replicator
    primitives, as in the paper's figures). *)

val to_automata : t -> Automaton.t list
(** One small automaton per primitive. *)

val to_large_automaton : ?max_states:int -> t -> Automaton.t
(** Existing-compiler pipeline on a graph: full product, internal vertices
    hidden, trimmed. May raise {!Product.Budget_exceeded}. *)
