open Preo_support
open Preo_automata

type kind =
  | Sync
  | Lossy_sync
  | Sync_drain
  | Async_drain
  | Sync_spout
  | Fifo1
  | Fifo1_full of Value.t
  | Fifo_n of int
  | Shift_lossy
  | Overflow_lossy
  | Filter of string
  | Transform of string
  | Merger
  | Replicator
  | Router
  | Seq

let equal_kind a b =
  match (a, b) with
  | Fifo1_full x, Fifo1_full y -> Value.equal x y
  | Fifo_n x, Fifo_n y -> x = y
  | Filter p, Filter q | Transform p, Transform q -> String.equal p q
  | a, b -> a = b

let kind_name = function
  | Sync -> "Sync"
  | Lossy_sync -> "LossySync"
  | Sync_drain -> "SyncDrain"
  | Async_drain -> "AsyncDrain"
  | Sync_spout -> "SyncSpout"
  | Fifo1 -> "Fifo1"
  | Fifo1_full _ -> "Fifo1Full"
  | Fifo_n n -> Printf.sprintf "Fifo<%d>" n
  | Shift_lossy -> "ShiftLossy"
  | Overflow_lossy -> "OverflowLossy"
  | Filter p -> Printf.sprintf "Filter<%s>" p
  | Transform f -> Printf.sprintf "Transform<%s>" f
  | Merger -> "Merger"
  | Replicator -> "Repl"
  | Router -> "Router"
  | Seq -> "Seq"

let arity_ok kind ~ntails ~nheads =
  match kind with
  | Sync | Lossy_sync | Fifo1 | Fifo1_full _ | Filter _ | Transform _ ->
    ntails = 1 && nheads = 1
  | Fifo_n n -> n >= 2 && ntails = 1 && nheads = 1
  | Shift_lossy | Overflow_lossy -> ntails = 1 && nheads = 1
  | Sync_drain | Async_drain -> ntails >= 1 && nheads = 0
  | Sync_spout -> ntails = 0 && nheads = 2
  | Merger -> ntails >= 1 && nheads = 1
  | Replicator | Router -> ntails = 1 && nheads >= 1
  | Seq -> ntails >= 1 && nheads = 0

(* Builders. States are numbered from 0 = initial. *)

let single_state transitions ~sources ~sinks =
  Automaton.make ~nstates:1 ~initial:0
    ~trans:[| Array.of_list transitions |]
    ~sources ~sinks

let trans sync constr target = { Automaton.sync; constr; command = None; target }

let build kind ~tails ~heads =
  if not (arity_ok kind ~ntails:(List.length tails) ~nheads:(List.length heads))
  then
    invalid_arg
      (Printf.sprintf "Prim.build: %s does not accept %d tails / %d heads"
         (kind_name kind) (List.length tails) (List.length heads));
  let sources = Iset.of_list tails and sinks = Iset.of_list heads in
  let open Constr in
  match (kind, tails, heads) with
  | Sync, [ a ], [ b ] ->
    single_state ~sources ~sinks
      [ trans (Iset.of_list [ a; b ]) [ Port b === Port a ] 0 ]
  | Lossy_sync, [ a ], [ b ] ->
    single_state ~sources ~sinks
      [
        trans (Iset.of_list [ a; b ]) [ Port b === Port a ] 0;
        trans (Iset.singleton a) tt 0;
      ]
  | Sync_drain, tails, [] ->
    single_state ~sources ~sinks [ trans (Iset.of_list tails) tt 0 ]
  | Async_drain, tails, [] ->
    single_state ~sources ~sinks
      (List.map (fun a -> trans (Iset.singleton a) tt 0) tails)
  | Sync_spout, [], [ a; b ] ->
    single_state ~sources ~sinks
      [
        trans
          (Iset.of_list [ a; b ])
          [ Port a === Const Value.unit; Port b === Const Value.unit ]
          0;
      ]
  | Fifo1, [ a ], [ b ] ->
    let c = Cell.fresh "buf" in
    Automaton.make ~nstates:2 ~initial:0
      ~trans:
        [|
          [| trans (Iset.singleton a) [ Post c === Port a ] 1 |];
          [| trans (Iset.singleton b) [ Port b === Pre c ] 0 |];
        |]
      ~sources ~sinks
  | Fifo1_full x, [ a ], [ b ] ->
    (* State 0: initialized-full (emits the constant), then behaves as a
       plain fifo1 over states 1 (empty) / 2 (full). *)
    let c = Cell.fresh "buf" in
    Automaton.make ~nstates:3 ~initial:0
      ~trans:
        [|
          [| trans (Iset.singleton b) [ Port b === Const x ] 1 |];
          [| trans (Iset.singleton a) [ Post c === Port a ] 2 |];
          [| trans (Iset.singleton b) [ Port b === Pre c ] 1 |];
        |]
      ~sources ~sinks
  | Fifo_n n, [ a ], [ b ] ->
    (* Ring buffer: state (start, count) at index start*(n+1)+count; accept
       writes cell (start+count) mod n, emit reads cell start. *)
    let cells = Array.init n (fun i -> Cell.fresh (Printf.sprintf "ring%d" i)) in
    let state start count = (start * (n + 1)) + count in
    let trans_of start count =
      let accept =
        if count < n then
          [
            trans (Iset.singleton a)
              [ Post cells.((start + count) mod n) === Port a ]
              (state start (count + 1));
          ]
        else []
      in
      let emit =
        if count > 0 then
          [
            trans (Iset.singleton b)
              [ Port b === Pre cells.(start) ]
              (state ((start + 1) mod n) (count - 1));
          ]
        else []
      in
      Array.of_list (accept @ emit)
    in
    Automaton.make ~nstates:(n * (n + 1)) ~initial:0
      ~trans:
        (Array.init
           (n * (n + 1))
           (fun id -> trans_of (id / (n + 1)) (id mod (n + 1))))
      ~sources ~sinks
  | Shift_lossy, [ a ], [ b ] ->
    (* full state accepts again, overwriting the buffered datum *)
    let c = Cell.fresh "latest" in
    Automaton.make ~nstates:2 ~initial:0
      ~trans:
        [|
          [| trans (Iset.singleton a) [ Post c === Port a ] 1 |];
          [|
            trans (Iset.singleton a) [ Post c === Port a ] 1;
            trans (Iset.singleton b) [ Port b === Pre c ] 0;
          |];
        |]
      ~sources ~sinks
  | Overflow_lossy, [ a ], [ b ] ->
    (* full state accepts and discards the new datum *)
    let c = Cell.fresh "oldest" in
    Automaton.make ~nstates:2 ~initial:0
      ~trans:
        [|
          [| trans (Iset.singleton a) [ Post c === Port a ] 1 |];
          [|
            trans (Iset.singleton a) tt 1;
            trans (Iset.singleton b) [ Port b === Pre c ] 0;
          |];
        |]
      ~sources ~sinks
  | Filter p, [ a ], [ b ] ->
    single_state ~sources ~sinks
      [
        trans (Iset.of_list [ a; b ]) [ Port b === Port a; pred p (Port a) ] 0;
        trans (Iset.singleton a) [ npred p (Port a) ] 0;
      ]
  | Transform f, [ a ], [ b ] ->
    single_state ~sources ~sinks
      [ trans (Iset.of_list [ a; b ]) [ Port b === App (f, Port a) ] 0 ]
  | Merger, tails, [ b ] ->
    single_state ~sources ~sinks
      (List.map
         (fun a -> trans (Iset.of_list [ a; b ]) [ Port b === Port a ] 0)
         tails)
  | Replicator, [ a ], heads ->
    single_state ~sources ~sinks
      [
        trans
          (Iset.of_list (a :: heads))
          (List.map (fun b -> Port b === Port a) heads)
          0;
      ]
  | Router, [ a ], heads ->
    single_state ~sources ~sinks
      (List.map
         (fun b -> trans (Iset.of_list [ a; b ]) [ Port b === Port a ] 0)
         heads)
  | Seq, tails, [] ->
    let vs = Array.of_list tails in
    let k = Array.length vs in
    Automaton.make ~nstates:k ~initial:0
      ~trans:
        (Array.init k (fun i ->
             [| trans (Iset.singleton vs.(i)) tt ((i + 1) mod k) |]))
      ~sources ~sinks
  | (Sync | Lossy_sync | Sync_drain | Async_drain | Sync_spout | Fifo1
    | Fifo1_full _ | Fifo_n _ | Shift_lossy | Overflow_lossy | Filter _
    | Transform _ | Merger | Replicator | Router | Seq), _, _ ->
    assert false (* arity_ok already rejected these shapes *)

let strip_arity_suffix s =
  let n = String.length s in
  let rec go i = if i > 0 && s.[i - 1] >= '0' && s.[i - 1] <= '9' then go (i - 1) else i in
  String.sub s 0 (go n)

let of_name name =
  (* "Fifo1" must not lose its digit; handle the fifos before stripping. *)
  match name with
  | "Fifo1" | "Fifo" -> Some Fifo1
  | "Fifo1Full" | "FifoFull" -> Some (Fifo1_full Value.unit)
  | _ -> begin
    match strip_arity_suffix name with
    | "Sync" -> Some Sync
    | "LossySync" | "Lossy" -> Some Lossy_sync
    | "SyncDrain" -> Some Sync_drain
    | "AsyncDrain" -> Some Async_drain
    | "SyncSpout" -> Some Sync_spout
    | "ShiftLossy" | "ShiftLossyFifo" -> Some Shift_lossy
    | "OverflowLossy" | "OverflowLossyFifo" -> Some Overflow_lossy
    | "Filter" -> Some (Filter "true")
    | "Transform" -> Some (Transform "id")
    | "Merger" | "Merg" -> Some Merger
    | "Repl" | "Replicator" -> Some Replicator
    | "Router" | "ExRouter" -> Some Router
    | "Seq" -> Some Seq
    | _ -> None
  end
