(** Primitive connectors and their "small" constraint automata.

    Tails are the reading ends of an arc (data flows from a tail into the
    primitive), heads the writing ends (data flows out to a head). In a
    composition, a vertex that is the head of one primitive and the tail of
    another becomes internal. *)

open Preo_automata

type kind =
  | Sync  (** 1 tail, 1 head; synchronous move *)
  | Lossy_sync  (** 1/1; may lose the datum if the head cannot fire *)
  | Sync_drain  (** n >= 1 tails; synchronizes them all and discards *)
  | Async_drain  (** n >= 1 tails; fires one at a time, discards *)
  | Sync_spout  (** 2 heads; emits (unit) signals synchronously *)
  | Fifo1  (** 1/1; one-place buffer *)
  | Fifo1_full of Preo_support.Value.t  (** fifo1 initialized with a datum *)
  | Fifo_n of int  (** 1/1; bounded buffer of the given capacity (>= 2), ring semantics (the paper's fifon) *)
  | Shift_lossy  (** 1/1; one-place buffer that overwrites when full (keeps the newest datum) *)
  | Overflow_lossy  (** 1/1; one-place buffer that drops new input when full (keeps the oldest datum) *)
  | Filter of string  (** 1/1; passes data satisfying the named predicate, drops the rest *)
  | Transform of string  (** 1/1; applies the named function *)
  | Merger  (** n tails, 1 head; nondeterministic choice *)
  | Replicator  (** 1 tail, n heads; synchronous broadcast *)
  | Router  (** 1 tail, n heads; exclusive routing *)
  | Seq  (** k tails, 0 heads; lets them fire one at a time, round-robin, discarding data *)

val equal_kind : kind -> kind -> bool
val kind_name : kind -> string

val arity_ok : kind -> ntails:int -> nheads:int -> bool
(** Whether the kind accepts this port shape. *)

val build : kind -> tails:Vertex.t list -> heads:Vertex.t list -> Automaton.t
(** The small automaton of a primitive instance. Tails become the
    automaton's sources, heads its sinks. Raises [Invalid_argument] if
    [arity_ok] fails. *)

val of_name : string -> kind option
(** Resolve a DSL primitive name ("Sync", "Fifo1", "Repl2", "Merg3", "Seq2",
    "Router4", …). Numeric arity suffixes on the variadic primitives are
    accepted and ignored (arity is taken from the argument lists). *)
