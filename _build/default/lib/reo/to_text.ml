open Preo_support
open Preo_automata

let sanitize s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    s;
  let s = Buffer.contents b in
  if s = "" then "v"
  else
    match s.[0] with
    | 'a' .. 'z' -> s
    | 'A' .. 'Z' -> String.uncapitalize_ascii s
    | _ -> "v" ^ s

let connector ~name g =
  (match Graph.well_formed g with
   | Ok () -> ()
   | Error msg -> invalid_arg ("To_text.connector: " ^ msg));
  let sources, sinks = Graph.boundary g in
  let names : (Vertex.t, string) Hashtbl.t = Hashtbl.create 16 in
  let used : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let ident v =
    match Hashtbl.find_opt names v with
    | Some s -> s
    | None ->
      let base = sanitize (Vertex.name v) in
      let s =
        if not (Hashtbl.mem used base) then base
        else begin
          let rec fresh i =
            let cand = Printf.sprintf "%s_%d" base i in
            if Hashtbl.mem used cand then fresh (i + 1) else cand
          in
          fresh 2
        end
      in
      Hashtbl.replace used s ();
      Hashtbl.replace names v s;
      s
  in
  let commas vs = String.concat "," (List.map ident vs) in
  let params =
    Printf.sprintf "%s;%s"
      (commas (Iset.elements sources))
      (commas (Iset.elements sinks))
  in
  let constituent (a : Graph.arc) =
    let prim_name =
      match a.kind with
      | Prim.Merger -> Printf.sprintf "Merger%d" (List.length a.tails)
      | Prim.Replicator -> Printf.sprintf "Repl%d" (List.length a.heads)
      | Prim.Router -> Printf.sprintf "Router%d" (List.length a.heads)
      | Prim.Seq -> Printf.sprintf "Seq%d" (List.length a.tails)
      | k -> Prim.kind_name k
    in
    Printf.sprintf "%s(%s;%s)" prim_name (commas a.tails) (commas a.heads)
  in
  let body =
    match g with
    | [] -> "skip"
    | arcs -> String.concat "\n  mult " (List.map constituent arcs)
  in
  Printf.sprintf "%s(%s) =\n  %s\n" name params body
