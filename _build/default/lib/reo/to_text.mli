(** Graph-to-text translator (the paper's Fig. 11 workflow component): turn a
    graphical connector into equivalent (non-parametrized) textual DSL
    source, ready to be parametrized by hand. *)

val connector : name:string -> Graph.t -> string
(** DSL source of one connector definition. Boundary source vertices become
    the tail parameters, boundary sinks the head parameters; internal
    vertices become local variables. Raises [Invalid_argument] if the graph
    is not well-formed. *)
