lib/runtime/composer.ml: Array Automaton Command Constr Fun Hashtbl Iset List Lru Preo_automata Preo_support Printf String Vertex
