lib/runtime/composer.mli: Automaton Command Constr Iset Preo_automata Preo_support
