lib/runtime/config.mli:
