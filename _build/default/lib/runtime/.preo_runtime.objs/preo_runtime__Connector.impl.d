lib/runtime/connector.ml: Array Automaton Clock Composer Config Engine Format Hashtbl Iset List Partition Port Preo_automata Preo_support Printf Product Vertex
