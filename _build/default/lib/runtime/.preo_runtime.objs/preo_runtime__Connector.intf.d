lib/runtime/connector.mli: Automaton Config Engine Format Port Preo_automata Vertex
