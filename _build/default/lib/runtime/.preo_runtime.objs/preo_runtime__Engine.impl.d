lib/runtime/engine.ml: Array Atomic Buffer Command Composer Condition Hashtbl Iset List Mutex Preo_automata Preo_support Printf Queue String Sys Thread Value Vertex
