lib/runtime/engine.mli: Composer Preo_automata Preo_support Value
