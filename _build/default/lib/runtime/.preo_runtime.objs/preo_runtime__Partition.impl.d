lib/runtime/partition.ml: Array Atomic Automaton Engine Hashtbl Iset List Preo_automata Preo_support Union_find Value Vertex
