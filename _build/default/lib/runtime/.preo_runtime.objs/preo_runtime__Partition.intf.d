lib/runtime/partition.mli: Automaton Engine Iset Preo_automata Preo_support Vertex
