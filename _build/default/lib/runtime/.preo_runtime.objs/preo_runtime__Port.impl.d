lib/runtime/port.ml: Engine Preo_automata Preo_support Value Vertex
