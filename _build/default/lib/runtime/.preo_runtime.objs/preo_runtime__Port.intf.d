lib/runtime/port.mli: Engine Preo_automata Preo_support Value
