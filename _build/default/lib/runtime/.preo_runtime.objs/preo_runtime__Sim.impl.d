lib/runtime/sim.ml: Array Automaton Command Composer Config Fun Hashtbl Iset List Preo_automata Preo_support Product Queue Rng Value Vertex
