lib/runtime/sim.mli: Automaton Config Iset Preo_automata Preo_support Value Vertex
