lib/runtime/task.ml: Engine List Thread
