lib/runtime/task.mli:
