(** Partitioned composition (extension; the fix the paper's §V-C points to,
    after Jongmans–Santini–Arbab 2015).

    Internal fifo1 mediums decouple the synchronous regions on their two
    sides: neither side ever fires together with the other through the
    buffer, so the product across a fifo never needs to be computed. This
    module splits a connector's medium automata at such fifos into regions;
    each region runs on its own engine, and the cut fifos become native
    single-place slots bridging the engines. The per-region products stay
    small even when the monolithic product would have exponentially many
    transitions per state. *)

open Preo_support
open Preo_automata

type region = {
  mediums : Automaton.t list;
  r_sources : Iset.t;  (** task-facing sources plus incoming bridge ends *)
  r_sinks : Iset.t;
  gates : (Vertex.t * Engine.gate) list;
  bridge_peers : int list;  (** indices of regions adjacent via bridges *)
}

type plan = { regions : region array; nbridges : int }

val split : sources:Iset.t -> sinks:Iset.t -> Automaton.t list -> plan
(** Always succeeds; when nothing can be cut the plan has one region and no
    bridges. *)

val is_plain_fifo1 : Automaton.t -> (Vertex.t * Vertex.t) option
(** Recognize an (empty) fifo1-shaped medium, returning (tail, head);
    exposed for tests. *)
