(** Task-facing ports (the generalized Foster–Chandy model, Fig. 3).

    An outport accepts blocking [send] operations, an inport blocking [recv]
    operations; completion is decided entirely by the connector the port is
    linked to. *)

open Preo_support

type outport
type inport

val make_out : Engine.t -> Preo_automata.Vertex.t -> outport
val make_in : Engine.t -> Preo_automata.Vertex.t -> inport

val send : outport -> Value.t -> unit
(** Blocks until the connector completes the operation. May raise
    {!Engine.Poisoned}. *)

val recv : inport -> Value.t
(** Blocks until a datum is delivered. May raise {!Engine.Poisoned}. *)

val try_send : outport -> Value.t -> bool
(** Nonblocking: completes the send iff the connector can take it now. *)

val try_recv : inport -> Value.t option
(** Nonblocking: returns a datum iff the connector can deliver one now. *)

val out_vertex : outport -> Preo_automata.Vertex.t
val in_vertex : inport -> Preo_automata.Vertex.t
