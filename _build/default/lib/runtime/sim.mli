(** Deterministic, single-threaded connector simulation.

    The engine runs protocols under real threads, which makes traces
    nondeterministic. The simulator drives the same composed state machine
    directly: the caller scripts pending operations ([offer]/[demand]) and
    advances the protocol one global step at a time with a deterministic
    (or seeded-random) choice policy. Used by tests, the [preoc] CLI, and
    anyone debugging a protocol. *)

open Preo_support
open Preo_automata

type t

type policy =
  | First  (** lowest-indexed enabled transition (deterministic) *)
  | Random of int  (** seeded pseudo-random choice *)

val create :
  ?config:Config.t ->
  ?policy:policy ->
  sources:Vertex.t array ->
  sinks:Vertex.t array ->
  Automaton.t list ->
  t
(** Only the composition strategy of [config] matters (no engines or
    threads are involved); partitioned configs are simulated monolithically. *)

val offer : t -> Vertex.t -> Value.t -> unit
(** Queue a pending send at a source vertex. *)

val demand : t -> Vertex.t -> unit
(** Queue a pending receive at a sink vertex. *)

type event = {
  ev_sync : Iset.t;  (** vertices of the fired transition *)
  ev_delivered : (Vertex.t * Value.t) list;  (** completed receives *)
  ev_consumed : Vertex.t list;  (** completed sends *)
}

val step : t -> event option
(** Fire one enabled transition, or [None] if the protocol is stuck given
    the current pending operations. *)

val run : ?max_steps:int -> t -> event list
(** Step until stuck (or [max_steps], default 10_000). *)

val pending_sends : t -> Vertex.t list
val pending_recvs : t -> Vertex.t list
val steps : t -> int
