type t = { thread : Thread.t; failure : exn option ref }

let spawn f =
  let failure = ref None in
  let thread =
    Thread.create
      (fun () -> try f () with e -> failure := Some e)
      ()
  in
  { thread; failure }

let join t =
  Thread.join t.thread;
  match !(t.failure) with
  | None | Some (Engine.Poisoned _) -> ()
  | Some e -> raise e

let join_all ts =
  (* Join everything before propagating, so no thread outlives the call. *)
  List.iter (fun t -> Thread.join t.thread) ts;
  List.iter
    (fun t ->
      match !(t.failure) with
      | None | Some (Engine.Poisoned _) -> ()
      | Some e -> raise e)
    ts

let run_all fs = join_all (List.map spawn fs)
