(** Tasks as threads. Thin wrappers so examples and benchmarks read like the
    paper's programming model: spawn tasks, join them, tolerate poisoning. *)

type t

val spawn : (unit -> unit) -> t
val join : t -> unit
(** Re-raises any exception the task died with, except {!Engine.Poisoned},
    which is swallowed (a poisoned connector already reported the failure). *)

val join_all : t list -> unit

val run_all : (unit -> unit) list -> unit
(** Spawn all, then join all. *)
