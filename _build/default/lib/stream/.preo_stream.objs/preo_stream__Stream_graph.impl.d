lib/stream/stream_graph.ml: Array Atomic Config Connector Datafun Iset List Port Preo_automata Preo_reo Preo_runtime Preo_support Printf Task Thread Value Vertex
