lib/stream/stream_graph.mli: Preo_runtime Preo_support Value
