open Preo_support
open Preo_automata
open Preo_runtime

type endpoint = Vertex.t
type stream = { vertex : endpoint; mutable consumed : bool }

type builder = {
  mutable arcs : Preo_reo.Graph.t;
  mutable sources : (string * Vertex.t * (unit -> Value.t option)) list;
  mutable sinks : (Vertex.t * (Value.t -> unit)) list;
  mutable counter : int;
}

let create () = { arcs = []; sources = []; sinks = []; counter = 0 }

let fresh b base =
  b.counter <- b.counter + 1;
  Vertex.fresh (Printf.sprintf "%s%d" base b.counter)

let mk_stream v = { vertex = v; consumed = false }

let consume (s : stream) =
  if s.consumed then
    invalid_arg "Stream_graph: a stream can only be consumed once";
  s.consumed <- true;
  s.vertex

let add b arc = b.arcs <- arc :: b.arcs

(* Anonymous per-builder function/predicate registration. *)
let reg_counter = Atomic.make 0

let register_fn f =
  let name = Printf.sprintf "__stream_fn_%d" (Atomic.fetch_and_add reg_counter 1) in
  Datafun.register_fn name f;
  name

let register_pred p =
  let name = Printf.sprintf "__stream_pred_%d" (Atomic.fetch_and_add reg_counter 1) in
  Datafun.register_pred name p;
  name

(* --- Producers / consumers -------------------------------------------------- *)

let source b ?(name = "src") produce =
  let v = fresh b name in
  b.sources <- (name, v, produce) :: b.sources;
  mk_stream v

let of_list b ?name values =
  let remaining = ref values in
  source b ?name (fun () ->
      match !remaining with
      | [] -> None
      | x :: rest ->
        remaining := rest;
        Some x)

let sink b s callback =
  let v = consume s in
  b.sinks <- (v, callback) :: b.sinks

let to_list b s =
  let acc = ref [] in
  sink b s (fun x -> acc := x :: !acc);
  acc

(* --- Transformations ---------------------------------------------------------- *)

let map b f s =
  let v = consume s in
  let out = fresh b "map" in
  add b (Preo_reo.Graph.arc (Preo_reo.Prim.Transform (register_fn f)) ~tails:[ v ] ~heads:[ out ]);
  mk_stream out

let filter b p s =
  let v = consume s in
  let out = fresh b "flt" in
  add b (Preo_reo.Graph.arc (Preo_reo.Prim.Filter (register_pred p)) ~tails:[ v ] ~heads:[ out ]);
  mk_stream out

let buffer ?(depth = 1) b s =
  let v = consume s in
  let out = fresh b "buf" in
  let kind =
    if depth <= 1 then Preo_reo.Prim.Fifo1 else Preo_reo.Prim.Fifo_n depth
  in
  add b (Preo_reo.Graph.arc kind ~tails:[ v ] ~heads:[ out ]);
  mk_stream out

let merge b streams =
  match streams with
  | [] -> invalid_arg "Stream_graph.merge: empty"
  | [ s ] -> s
  | _ ->
    let vs = List.map consume streams in
    let out = fresh b "mrg" in
    add b (Preo_reo.Graph.arc Preo_reo.Prim.Merger ~tails:vs ~heads:[ out ]);
    mk_stream out

let round_robin b s n =
  if n < 1 then invalid_arg "Stream_graph.round_robin: n >= 1";
  if n = 1 then [ s ]
  else begin
    let v = consume s in
    let outs = List.init n (fun _ -> fresh b "rr") in
    let gates = List.init n (fun _ -> fresh b "rrg") in
    let seqs = List.init n (fun _ -> fresh b "rrs") in
    add b (Preo_reo.Graph.arc Preo_reo.Prim.Router ~tails:[ v ] ~heads:gates);
    List.iteri
      (fun i g ->
        add b
          (Preo_reo.Graph.arc Preo_reo.Prim.Replicator ~tails:[ g ]
             ~heads:[ List.nth outs i; List.nth seqs i ]))
      gates;
    add b (Preo_reo.Graph.arc Preo_reo.Prim.Seq ~tails:seqs ~heads:[]);
    List.map mk_stream outs
  end

let broadcast b s n =
  if n < 1 then invalid_arg "Stream_graph.broadcast: n >= 1";
  if n = 1 then [ s ]
  else begin
    let v = consume s in
    let mids = List.init n (fun _ -> fresh b "bc") in
    let outs = List.init n (fun _ -> fresh b "bco") in
    add b (Preo_reo.Graph.arc Preo_reo.Prim.Replicator ~tails:[ v ] ~heads:mids);
    List.iter2
      (fun m o -> add b (Preo_reo.Graph.arc Preo_reo.Prim.Fifo1 ~tails:[ m ] ~heads:[ o ]))
      mids outs;
    List.map mk_stream outs
  end

let sample b s =
  let v = consume s in
  let out = fresh b "smp" in
  add b (Preo_reo.Graph.arc Preo_reo.Prim.Shift_lossy ~tails:[ v ] ~heads:[ out ]);
  mk_stream out

(* --- Execution ------------------------------------------------------------------ *)

let run ?(config = Config.new_jit) b =
  (match Preo_reo.Graph.well_formed b.arcs with
   | Ok () -> ()
   | Error msg -> invalid_arg ("Stream_graph: " ^ msg));
  let srcs = Array.of_list (List.rev_map (fun (_, v, _) -> v) b.sources) in
  let snks = Array.of_list (List.rev_map (fun (v, _) -> v) b.sinks) in
  (* Sanity: every graph boundary is wired to a task. *)
  let gsrc, gsnk = Preo_reo.Graph.boundary b.arcs in
  Iset.iter
    (fun v ->
      if not (Array.exists (Vertex.equal v) srcs) then
        invalid_arg "Stream_graph: a stream input has no source")
    gsrc;
  Iset.iter
    (fun v ->
      if not (Array.exists (Vertex.equal v) snks) then
        invalid_arg "Stream_graph: a stream was never consumed (add a sink)")
    gsnk;
  let conn =
    Connector.create ~config ~sources:srcs ~sinks:snks
      (Preo_reo.Graph.to_automata b.arcs)
  in
  let producers =
    List.map
      (fun (_, v, produce) ->
        Task.spawn (fun () ->
            let rec loop () =
              match produce () with
              | Some x ->
                Port.send (Connector.outport conn v) x;
                loop ()
              | None -> ()
            in
            loop ()))
      b.sources
  in
  let consumers =
    List.map
      (fun (v, callback) ->
        Task.spawn (fun () ->
            while true do
              callback (Port.recv (Connector.inport conn v))
            done))
      b.sinks
  in
  (* Wait for the finite sources, then for quiescence, then stop. *)
  List.iter Task.join producers;
  let rec settle last =
    Thread.delay 0.005;
    let now = Connector.steps conn in
    if now <> last then settle now else ()
  in
  settle (Connector.steps conn);
  Connector.poison conn "stream complete";
  List.iter (fun t -> try Task.join t with _ -> ()) consumers;
  conn
