(** Stream-processing combinators whose plumbing is connectors.

    A small "downstream consumer" layer showing how an application library
    builds on the protocol substrate: sources, transforms, buffers, merges,
    splits and sinks assemble a connector graph; [run] compiles it, spawns
    the source/sink tasks, and coordinates everything through the engine.

    Data functions/predicates are OCaml closures registered on the fly (no
    DSL involved here — this is the programmatic face of the library; the
    textual DSL remains available for protocol-first designs).

    Termination: sources are finite ([None] ends a source). [run] returns
    once every source is exhausted and the connector has gone quiescent;
    any data still buffered inside dropped branches is discarded. *)

open Preo_support

type builder
type stream

val create : unit -> builder

(** {1 Producers and consumers} *)

val source : builder -> ?name:string -> (unit -> Value.t option) -> stream
val of_list : builder -> ?name:string -> Value.t list -> stream

val sink : builder -> stream -> (Value.t -> unit) -> unit
(** Each arriving value is passed to the callback (in its own task). *)

val to_list : builder -> stream -> Value.t list ref
(** Convenience sink accumulating values; after {!run} returns the ref
    holds them in reverse arrival order. *)

(** {1 Transformations} *)

val map : builder -> (Value.t -> Value.t) -> stream -> stream
val filter : builder -> (Value.t -> bool) -> stream -> stream
val buffer : ?depth:int -> builder -> stream -> stream
(** Decouple producer and consumer rates; [depth] defaults to 1. *)

val merge : builder -> stream list -> stream
(** Nondeterministic fair-ish merge. *)

val round_robin : builder -> stream -> int -> stream list
(** Deal values to [n] branches in strict rotation. *)

val broadcast : builder -> stream -> int -> stream list
(** Every branch receives every value (buffered per branch). *)

val sample : builder -> stream -> stream
(** Keep only the newest value when the consumer lags (shift-lossy). *)

(** {1 Execution} *)

val run : ?config:Preo_runtime.Config.t -> builder -> Preo_runtime.Connector.t
(** Build, execute to quiescence, tear down; returns the (poisoned)
    connector for stats inspection. Raises [Invalid_argument] if a stream
    was left unconsumed or consumed twice. *)
