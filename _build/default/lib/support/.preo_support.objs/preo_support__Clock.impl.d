lib/support/clock.ml: Unix
