lib/support/clock.mli:
