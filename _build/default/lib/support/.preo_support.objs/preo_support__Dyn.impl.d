lib/support/dyn.ml: Array
