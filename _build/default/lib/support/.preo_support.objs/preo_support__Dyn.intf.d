lib/support/dyn.mli:
