lib/support/iset.ml: Array Format Int List
