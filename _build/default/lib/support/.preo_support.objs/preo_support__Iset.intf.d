lib/support/iset.mli: Format
