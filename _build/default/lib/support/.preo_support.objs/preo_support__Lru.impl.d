lib/support/lru.ml: Hashtbl
