lib/support/lru.mli: Hashtbl
