lib/support/rng.mli:
