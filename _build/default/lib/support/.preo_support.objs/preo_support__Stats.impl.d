lib/support/stats.ml: Array Float Stdlib
