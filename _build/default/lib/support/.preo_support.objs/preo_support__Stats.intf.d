lib/support/stats.mli:
