lib/support/tablefmt.mli:
