lib/support/value.ml: Array Format List Printf Stdlib String
