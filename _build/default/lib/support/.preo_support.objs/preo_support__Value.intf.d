lib/support/value.mli: Format
