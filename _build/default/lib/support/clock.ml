let now () = Unix.gettimeofday ()

let time f =
  let t0 = now () in
  let x = f () in
  (x, now () -. t0)

let run_for seconds step =
  let t0 = now () in
  let rec go n = if now () -. t0 >= seconds then n else (step (); go (n + 1)) in
  go 0
