(** Monotonic wall-clock timing helpers. *)

val now : unit -> float
(** Seconds from an arbitrary monotonic origin. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] and returns its result and elapsed seconds. *)

val run_for : float -> (unit -> unit) -> int
(** [run_for seconds step] repeatedly calls [step] until [seconds] have
    elapsed, checking the clock every iteration; returns the iteration
    count. *)
