(** Growable arrays (a minimal [Dynarray]; the stdlib one arrives only in
    OCaml 5.2). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val add : 'a t -> 'a -> int
(** Appends and returns the index of the new element. *)

val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val to_array : 'a t -> 'a array
val iteri : (int -> 'a -> unit) -> 'a t -> unit
