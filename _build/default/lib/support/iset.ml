type t = int array
(* Invariant: strictly increasing. *)

let empty : t = [||]
let is_empty s = Array.length s = 0
let singleton x = [| x |]

let of_list l =
  match List.sort_uniq Int.compare l with
  | [] -> empty
  | l -> Array.of_list l

let of_sorted_array_unchecked a = a
let cardinal = Array.length

let mem x s =
  let rec go lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      let v = s.(mid) in
      if v = x then true else if v < x then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length s)

let add x s =
  if mem x s then s
  else begin
    let n = Array.length s in
    let r = Array.make (n + 1) x in
    let rec go i j =
      if i < n then
        if s.(i) < x then begin
          r.(j) <- s.(i);
          go (i + 1) (j + 1)
        end
        else begin
          (* Past the insertion point every element shifts one slot right. *)
          r.(i + 1) <- s.(i);
          go (i + 1) j
        end
    in
    go 0 0;
    r
  end

let remove x s =
  if not (mem x s) then s
  else begin
    let n = Array.length s in
    let r = Array.make (n - 1) 0 in
    let j = ref 0 in
    for i = 0 to n - 1 do
      if s.(i) <> x then begin
        r.(!j) <- s.(i);
        incr j
      end
    done;
    r
  end

let union a b =
  let na = Array.length a and nb = Array.length b in
  if na = 0 then b
  else if nb = 0 then a
  else begin
    let r = Array.make (na + nb) 0 in
    let i = ref 0 and j = ref 0 and k = ref 0 in
    while !i < na && !j < nb do
      let x = a.(!i) and y = b.(!j) in
      if x < y then begin r.(!k) <- x; incr i end
      else if x > y then begin r.(!k) <- y; incr j end
      else begin r.(!k) <- x; incr i; incr j end;
      incr k
    done;
    while !i < na do r.(!k) <- a.(!i); incr i; incr k done;
    while !j < nb do r.(!k) <- b.(!j); incr j; incr k done;
    if !k = na + nb then r else Array.sub r 0 !k
  end

let inter a b =
  let na = Array.length a and nb = Array.length b in
  if na = 0 || nb = 0 then empty
  else begin
    let r = Array.make (min na nb) 0 in
    let i = ref 0 and j = ref 0 and k = ref 0 in
    while !i < na && !j < nb do
      let x = a.(!i) and y = b.(!j) in
      if x < y then incr i
      else if x > y then incr j
      else begin r.(!k) <- x; incr i; incr j; incr k end
    done;
    if !k = 0 then empty else Array.sub r 0 !k
  end

let diff a b =
  let na = Array.length a and nb = Array.length b in
  if na = 0 || nb = 0 then a
  else begin
    let r = Array.make na 0 in
    let i = ref 0 and j = ref 0 and k = ref 0 in
    while !i < na && !j < nb do
      let x = a.(!i) and y = b.(!j) in
      if x < y then begin r.(!k) <- x; incr i; incr k end
      else if x > y then incr j
      else begin incr i; incr j end
    done;
    while !i < na do r.(!k) <- a.(!i); incr i; incr k done;
    if !k = na then a else Array.sub r 0 !k
  end

let disjoint a b =
  let na = Array.length a and nb = Array.length b in
  let rec go i j =
    if i >= na || j >= nb then true
    else
      let x = a.(i) and y = b.(j) in
      if x < y then go (i + 1) j else if x > y then go i (j + 1) else false
  in
  go 0 0

let subset a b =
  let na = Array.length a and nb = Array.length b in
  let rec go i j =
    if i >= na then true
    else if j >= nb then false
    else
      let x = a.(i) and y = b.(j) in
      if x = y then go (i + 1) (j + 1)
      else if x > y then go i (j + 1)
      else false
  in
  go 0 0

let equal (a : t) (b : t) = a == b || a = b

let compare (a : t) (b : t) =
  let na = Array.length a and nb = Array.length b in
  let rec go i =
    if i >= na then if i >= nb then 0 else -1
    else if i >= nb then 1
    else
      let c = Int.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let hash s = Array.fold_left (fun acc x -> (acc * 31) + x + 1) 17 s
let iter f s = Array.iter f s
let fold f s init = Array.fold_left (fun acc x -> f x acc) init s
let for_all f s = Array.for_all f s
let exists f s = Array.exists f s

let filter f s =
  let r = Array.of_list (List.filter f (Array.to_list s)) in
  if Array.length r = Array.length s then s else r

let elements s = Array.to_list s
let choose s = if is_empty s then raise Not_found else s.(0)
let min_elt = choose
let max_elt s = if is_empty s then raise Not_found else s.(Array.length s - 1)

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
       Format.pp_print_int)
    (elements s)
