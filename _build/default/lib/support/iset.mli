(** Immutable sets of small nonnegative integers, represented as sorted
    arrays.

    Vertex sets appear in every automaton transition and are consulted on
    every candidate firing, so the representation favours cache-friendly
    iteration and cheap intersection tests over the pointer-chasing of the
    stdlib AVL sets. All operations are purely functional. *)

type t

val empty : t
val is_empty : t -> bool
val singleton : int -> t
val of_list : int list -> t
val of_sorted_array_unchecked : int array -> t

val cardinal : t -> int
val mem : int -> t -> bool
val add : int -> t -> t
val remove : int -> t -> t
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val disjoint : t -> t -> bool
val subset : t -> t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val for_all : (int -> bool) -> t -> bool
val exists : (int -> bool) -> t -> bool
val filter : (int -> bool) -> t -> t
val elements : t -> int list
val choose : t -> int  (** smallest element; raises [Not_found] if empty *)

val min_elt : t -> int
val max_elt : t -> int
val pp : Format.formatter -> t -> unit
