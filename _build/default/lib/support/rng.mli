(** Deterministic pseudo-random numbers (splitmix64).

    Benchmarks and property tests need reproducible streams that do not
    depend on the global [Random] state shared across threads; each consumer
    owns its own generator. *)

type t

val create : int -> t
(** [create seed] builds a generator; equal seeds yield equal streams. *)

val copy : t -> t
val next : t -> int64
val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool
val shuffle : t -> 'a array -> unit
