let sum xs = Array.fold_left ( +. ) 0.0 xs

let mean xs =
  let n = Array.length xs in
  if n = 0 then nan else sum xs /. float_of_int n

let stdev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (acc /. float_of_int (n - 1))
  end

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then nan
  else begin
    let sorted = Array.copy xs in
    Array.sort Float.compare sorted;
    if n = 1 then sorted.(0)
    else begin
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = Stdlib.min (lo + 1) (n - 1) in
      let frac = rank -. float_of_int lo in
      sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
    end
  end

let median xs = percentile xs 50.0
let min xs = Array.fold_left Float.min infinity xs
let max xs = Array.fold_left Float.max neg_infinity xs
