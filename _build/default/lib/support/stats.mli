(** Descriptive statistics over float samples (benchmark post-processing). *)

val mean : float array -> float
val stdev : float array -> float
(** Sample standard deviation; 0 for fewer than two samples. *)

val median : float array -> float
val percentile : float array -> float -> float
(** [percentile xs p] for p in [0,100], linear interpolation. *)

val min : float array -> float
val max : float array -> float
val sum : float array -> float
