type align = Left | Right

let render ?(header = []) ?aligns rows =
  let all = if header = [] then rows else header :: rows in
  let ncols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  if ncols = 0 then ""
  else begin
    let aligns =
      match aligns with
      | Some a -> Array.of_list a
      | None -> Array.init ncols (fun i -> if i = 0 then Left else Right)
    in
    let width = Array.make ncols 0 in
    let measure row =
      List.iteri
        (fun i cell -> width.(i) <- max width.(i) (String.length cell))
        row
    in
    List.iter measure all;
    let buf = Buffer.create 256 in
    let pad i cell =
      let w = width.(i) in
      let n = w - String.length cell in
      let a = if i < Array.length aligns then aligns.(i) else Right in
      match a with
      | Left -> cell ^ String.make n ' '
      | Right -> String.make n ' ' ^ cell
    in
    let emit_row row =
      let cells = List.mapi pad row in
      let missing = ncols - List.length cells in
      let cells =
        cells @ List.init missing (fun k -> pad (List.length cells + k) "")
      in
      Buffer.add_string buf ("| " ^ String.concat " | " cells ^ " |\n")
    in
    let sep () =
      Buffer.add_char buf '+';
      Array.iter
        (fun w -> Buffer.add_string buf (String.make (w + 2) '-' ^ "+"))
        width;
      Buffer.add_char buf '\n'
    in
    sep ();
    if header <> [] then begin
      emit_row header;
      sep ()
    end;
    List.iter emit_row rows;
    sep ();
    Buffer.contents buf
  end

let print ?header ?aligns rows = print_string (render ?header ?aligns rows)

let rule title =
  let n = max 4 (72 - String.length title - 6) in
  Printf.printf "\n==== %s %s\n" title (String.make n '=')
