(** Aligned ASCII tables for benchmark and experiment reports. *)

type align = Left | Right

val render : ?header:string list -> ?aligns:align list -> string list list -> string
(** [render ~header rows] renders rows as a box-drawn table. [aligns]
    defaults to left for the first column and right for the rest. *)

val print : ?header:string list -> ?aligns:align list -> string list list -> unit

val rule : string -> unit
(** [rule title] prints a section separator line featuring [title]. *)
