(** Imperative union–find over dense integer keys.

    Used by the constraint solver to group data-constraint terms into
    equivalence classes before extracting commands. *)

type t

val create : int -> t
(** [create n] has elements [0 .. n-1], each in its own class. *)

val find : t -> int -> int
(** Canonical representative (with path compression). *)

val union : t -> int -> int -> unit
val same : t -> int -> int -> bool
val classes : t -> int list list
(** All equivalence classes (each a nonempty list), in ascending order of
    representative. *)
