type t =
  | Unit
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Pair of t * t
  | List of t list
  | Float_array of float array

let unit = Unit
let bool b = Bool b
let int n = Int n
let float x = Float x
let str s = Str s
let pair a b = Pair (a, b)
let list l = List l
let float_array a = Float_array a

let constructor_name = function
  | Unit -> "Unit"
  | Bool _ -> "Bool"
  | Int _ -> "Int"
  | Float _ -> "Float"
  | Str _ -> "Str"
  | Pair _ -> "Pair"
  | List _ -> "List"
  | Float_array _ -> "Float_array"

let projection_error want v =
  invalid_arg
    (Printf.sprintf "Value: expected %s, got %s" want (constructor_name v))

let to_bool = function Bool b -> b | v -> projection_error "Bool" v
let to_int = function Int n -> n | v -> projection_error "Int" v
let to_float = function Float x -> x | v -> projection_error "Float" v
let to_str = function Str s -> s | v -> projection_error "Str" v
let to_pair = function Pair (a, b) -> (a, b) | v -> projection_error "Pair" v
let to_list = function List l -> l | v -> projection_error "List" v

let to_float_array = function
  | Float_array a -> a
  | v -> projection_error "Float_array" v

let rec equal a b =
  match (a, b) with
  | Unit, Unit -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | Str x, Str y -> String.equal x y
  | Pair (x1, x2), Pair (y1, y2) -> equal x1 y1 && equal x2 y2
  | List xs, List ys -> List.length xs = List.length ys && List.for_all2 equal xs ys
  | Float_array x, Float_array y -> x == y || x = y
  | (Unit | Bool _ | Int _ | Float _ | Str _ | Pair _ | List _ | Float_array _), _
    -> false

let compare = Stdlib.compare

let rec pp ppf = function
  | Unit -> Format.pp_print_string ppf "()"
  | Bool b -> Format.pp_print_bool ppf b
  | Int n -> Format.pp_print_int ppf n
  | Float x -> Format.fprintf ppf "%g" x
  | Str s -> Format.fprintf ppf "%S" s
  | Pair (a, b) -> Format.fprintf ppf "(%a, %a)" pp a pp b
  | List l ->
    Format.fprintf ppf "[%a]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp)
      l
  | Float_array a -> Format.fprintf ppf "<float[%d]>" (Array.length a)

let to_string v = Format.asprintf "%a" pp v
