(** Message payloads transported by connectors.

    Connectors are data-agnostic: they move values between ports and, for
    data-sensitive primitives (filters, transformers), apply registered
    predicates/functions to them. A small closed variant keeps the runtime
    monomorphic and the engines allocation-light; [Float_array] carries bulk
    numeric payloads for the NPB kernels without copying. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Pair of t * t
  | List of t list
  | Float_array of float array

val unit : t
val bool : bool -> t
val int : int -> t
val float : float -> t
val str : string -> t
val pair : t -> t -> t
val list : t list -> t
val float_array : float array -> t

(** Projections raise [Invalid_argument] on a wrong constructor; protocols are
    expected to be type-homogeneous per port. *)

val to_bool : t -> bool
val to_int : t -> int
val to_float : t -> float
val to_str : t -> string
val to_pair : t -> t * t
val to_list : t -> t list
val to_float_array : t -> float array

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
