lib/verify/bisim.ml: Array Automaton Constr Iset List Preo_automata Preo_support Set Stdlib String
