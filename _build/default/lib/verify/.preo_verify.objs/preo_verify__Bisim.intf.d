lib/verify/bisim.mli: Preo_automata
