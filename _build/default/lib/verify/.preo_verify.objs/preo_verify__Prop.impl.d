lib/verify/prop.ml: Array Automaton Format Hashtbl Iset List Preo_automata Preo_support Printf Queue Result String Verify
