lib/verify/prop.mli: Automaton Format Preo_automata Vertex
