lib/verify/verify.ml: Array Automaton Iset Preo_automata Preo_support Printf Queue Vertex
