lib/verify/verify.mli: Automaton Preo_automata Preo_support Vertex
