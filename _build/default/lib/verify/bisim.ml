open Preo_support
open Preo_automata

(* Normalize a constraint for syntactic comparison: orient equations by
   structural order and sort the atom list (products built in different fold
   orders concatenate the same atoms differently). *)
let norm_constr (c : Constr.t) : Constr.t =
  let atom = function
    | Constr.Eq (a, b) ->
      if Stdlib.compare a b <= 0 then Constr.Eq (a, b) else Constr.Eq (b, a)
    | Constr.Pred _ as p -> p
  in
  List.sort Stdlib.compare (List.map atom c)

let label (tr : Automaton.trans) = (tr.sync, norm_constr tr.constr)
let label_equal (s1, c1) (s2, c2) = Iset.equal s1 s2 && c1 = c2

let equivalent (a : Automaton.t) (b : Automaton.t) =
  (* Greatest fixpoint of the strong-bisimulation conditions over state
     pairs. *)
  let rel = Array.make_matrix a.nstates b.nstates true in
  let step_ok outgoing_other rel_row_ok (tr : Automaton.trans) =
    Array.exists
      (fun (tr' : Automaton.trans) ->
        label_equal (label tr) (label tr') && rel_row_ok tr.target tr'.target)
      outgoing_other
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for sa = 0 to a.nstates - 1 do
      for sb = 0 to b.nstates - 1 do
        if rel.(sa).(sb) then begin
          let ok_fwd =
            Array.for_all
              (step_ok b.trans.(sb) (fun ta tb -> rel.(ta).(tb)))
              a.trans.(sa)
          in
          let ok_bwd =
            Array.for_all
              (step_ok a.trans.(sa) (fun tb ta -> rel.(ta).(tb)))
              b.trans.(sb)
          in
          if not (ok_fwd && ok_bwd) then begin
            rel.(sa).(sb) <- false;
            changed := true
          end
        end
      done
    done
  done;
  rel.(a.initial).(b.initial)

module Sset = Set.Make (String)

let sequences ~depth (a : Automaton.t) =
  let render sync =
    String.concat "," (List.map string_of_int (Iset.elements sync))
  in
  let acc = ref Sset.empty in
  let rec go s prefix d =
    acc := Sset.add prefix !acc;
    if d > 0 then
      Array.iter
        (fun (tr : Automaton.trans) ->
          go tr.target (prefix ^ "|" ^ render tr.sync) (d - 1))
        a.trans.(s)
  in
  go a.initial "" depth;
  !acc

let language_equal_upto ~depth a b =
  Sset.equal (sequences ~depth a) (sequences ~depth b)

let label_sequences ~depth a = Sset.elements (sequences ~depth a)

(* --- Weak bisimulation ---------------------------------------------------- *)

(* tau-closure: states reachable via silent (empty-sync) transitions. *)
let tau_closure (a : Automaton.t) s =
  let seen = Array.make a.nstates false in
  let rec go s =
    if not seen.(s) then begin
      seen.(s) <- true;
      Array.iter
        (fun (tr : Automaton.trans) ->
          if Iset.is_empty tr.sync then go tr.target)
        a.trans.(s)
    end
  in
  go s;
  seen

(* Weak step: from s, fire zero or more taus, one visible transition with
   label l, then zero or more taus; returns the set of possible landing
   states. *)
let weak_successors (a : Automaton.t) closures s l =
  let landing = Array.make a.nstates false in
  Array.iteri
    (fun s' reachable ->
      if reachable then
        Array.iter
          (fun (tr : Automaton.trans) ->
            if (not (Iset.is_empty tr.sync)) && Iset.equal tr.sync l then
              Array.iteri
                (fun s'' r -> if r then landing.(s'') <- true)
                closures.(tr.target))
          a.trans.(s'))
    closures.(s);
  landing

let visible_labels (a : Automaton.t) closures s =
  let acc = ref [] in
  Array.iteri
    (fun s' reachable ->
      if reachable then
        Array.iter
          (fun (tr : Automaton.trans) ->
            if not (Iset.is_empty tr.sync) then
              if not (List.exists (Iset.equal tr.sync) !acc) then
                acc := tr.sync :: !acc)
          a.trans.(s'))
    closures.(s);
  !acc

let weakly_equivalent (a : Automaton.t) (b : Automaton.t) =
  let ca = Array.init a.nstates (tau_closure a) in
  let cb = Array.init b.nstates (tau_closure b) in
  let rel = Array.make_matrix a.nstates b.nstates true in
  (* Standard weak-bisimulation step condition: every weak successor on the
     self side must be related to some weak successor on the other side. *)
  let simulated_by succs_other rel_ok landing_self =
    Array.to_list landing_self
    |> List.mapi (fun i x -> (i, x))
    |> List.filter (fun (_, x) -> x)
    |> List.for_all (fun (s', _) ->
           let ok = ref false in
           Array.iteri
             (fun t' r -> if r && rel_ok s' t' then ok := true)
             succs_other;
           !ok)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for sa = 0 to a.nstates - 1 do
      for sb = 0 to b.nstates - 1 do
        if rel.(sa).(sb) then begin
          let ok_fwd =
            List.for_all
              (fun l ->
                let la = weak_successors a ca sa l in
                let lb = weak_successors b cb sb l in
                simulated_by lb (fun s' t' -> rel.(s').(t')) la)
              (visible_labels a ca sa)
          in
          let ok_bwd =
            List.for_all
              (fun l ->
                let lb = weak_successors b cb sb l in
                let la = weak_successors a ca sa l in
                simulated_by la (fun t' s' -> rel.(s').(t')) lb)
              (visible_labels b cb sb)
          in
          (* labels available on one side must be available on the other *)
          let same_menu =
            let menu_a = visible_labels a ca sa and menu_b = visible_labels b cb sb in
            List.for_all (fun l -> List.exists (Iset.equal l) menu_b) menu_a
            && List.for_all (fun l -> List.exists (Iset.equal l) menu_a) menu_b
          in
          if not (ok_fwd && ok_bwd && same_menu) then begin
            rel.(sa).(sb) <- false;
            changed := true
          end
        end
      done
    done
  done;
  rel.(a.initial).(b.initial)
