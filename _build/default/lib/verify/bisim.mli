(** Bounded bisimulation checking over constraint automata, used to validate
    the algebraic laws of composition (commutativity/associativity of × up
    to behaviour, soundness of the interleaving product's joint-dropping
    rule) on concrete instances.

    Transitions are compared by their visible sync label and (normalized)
    data constraint; states by mutual simulation. Intended for small
    automata (tests, ablations), not for verification at scale. *)

val equivalent : Preo_automata.Automaton.t -> Preo_automata.Automaton.t -> bool
(** Strong bisimilarity of the initial states, where a transition matches
    another iff it has the same sync label and a structurally equal
    normalized constraint. Both automata must range over the same vertex
    set (compose the same primitives). *)

val language_equal_upto :
  depth:int -> Preo_automata.Automaton.t -> Preo_automata.Automaton.t -> bool
(** Weaker check: equality of the sets of sync-label sequences up to
    [depth] (ignores data). Useful when constraints differ syntactically
    but label behaviour must agree. *)

val label_sequences : depth:int -> Preo_automata.Automaton.t -> string list
(** The sync-label sequences up to [depth], each rendered as a string
    (for subset checks and debugging). *)

val weakly_equivalent :
  Preo_automata.Automaton.t -> Preo_automata.Automaton.t -> bool
(** Weak bisimilarity: transitions with an empty sync label (internal/hidden
    steps) are treated as silent and may be absorbed on either side; visible
    transitions are matched by sync label only (data ignored). Validates
    laws like fifo{_n}(2) ≈ fifo1 ; fifo1, whose chain has an internal
    transfer step. *)
