open Preo_support
open Preo_automata

type atom =
  | Deadlock_free
  | Live of string
  | Dead of string
  | Never of string * string
  | Together of string * string
  | Precedes of string * string
  | Sequence of string list

type t = atom list  (* conjunction *)

(* --- Parsing -------------------------------------------------------------- *)

let parse src =
  (* Tokens: identifiers-with-brackets, parens, commas, &&. *)
  let n = String.length src in
  let pos = ref 0 in
  let error msg = Error (Printf.sprintf "%s (at offset %d)" msg !pos) in
  let skip_ws () =
    while !pos < n && (src.[!pos] = ' ' || src.[!pos] = '\t' || src.[!pos] = '\n') do
      incr pos
    done
  in
  let ident () =
    skip_ws ();
    let start = !pos in
    let ok c =
      (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
      || c = '_' || c = '[' || c = ']' || c = '-'
    in
    while !pos < n && ok src.[!pos] do incr pos done;
    if !pos = start then None else Some (String.sub src start (!pos - start))
  in
  let expect c =
    skip_ws ();
    if !pos < n && src.[!pos] = c then begin incr pos; true end else false
  in
  let rec atoms acc =
    skip_ws ();
    match ident () with
    | None -> error "expected a property name"
    | Some "deadlock-free" -> conj (Deadlock_free :: acc)
    | Some name -> begin
      if not (expect '(') then error ("expected '(' after " ^ name)
      else begin
        let rec args acc_args =
          match ident () with
          | None -> Error "expected a port name"
          | Some arg ->
            skip_ws ();
            if expect ',' then args (arg :: acc_args)
            else if expect ')' then Ok (List.rev (arg :: acc_args))
            else Error "expected ',' or ')'"
        in
        match args [] with
        | Error e -> Error e
        | Ok args -> begin
          match (name, args) with
          | "live", [ p ] -> conj (Live p :: acc)
          | "dead", [ p ] -> conj (Dead p :: acc)
          | "never", [ p; q ] -> conj (Never (p, q) :: acc)
          | "together", [ p; q ] -> conj (Together (p, q) :: acc)
          | "precedes", [ p; q ] -> conj (Precedes (p, q) :: acc)
          | "sequence", (_ :: _ :: _ as ps) -> conj (Sequence ps :: acc)
          | _ ->
            Error
              (Printf.sprintf "unknown property %s with %d argument(s)" name
                 (List.length args))
        end
      end
    end
  and conj acc =
    skip_ws ();
    if !pos + 1 < n && src.[!pos] = '&' && src.[!pos + 1] = '&' then begin
      pos := !pos + 2;
      atoms acc
    end
    else if !pos >= n then Ok (List.rev acc)
    else error "trailing input"
  in
  atoms []

let pp_atom ppf = function
  | Deadlock_free -> Format.pp_print_string ppf "deadlock-free"
  | Live p -> Format.fprintf ppf "live(%s)" p
  | Dead p -> Format.fprintf ppf "dead(%s)" p
  | Never (p, q) -> Format.fprintf ppf "never(%s, %s)" p q
  | Together (p, q) -> Format.fprintf ppf "together(%s, %s)" p q
  | Precedes (p, q) -> Format.fprintf ppf "precedes(%s, %s)" p q
  | Sequence ps -> Format.fprintf ppf "sequence(%s)" (String.concat ", " ps)

let pp ppf t =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf " && ")
    pp_atom ppf t

(* --- Checking ------------------------------------------------------------- *)

(* Existence of a run firing the given vertices in order (with arbitrary
   other steps in between): BFS over (state, how many matched). *)
let sequence_possible (a : Automaton.t) vs =
  let vs = Array.of_list vs in
  let k = Array.length vs in
  let seen = Hashtbl.create 64 in
  let queue = Queue.create () in
  let found = ref false in
  Queue.push (a.initial, 0) queue;
  Hashtbl.replace seen (a.initial, 0) ();
  while (not !found) && not (Queue.is_empty queue) do
    let s, matched = Queue.pop queue in
    if matched = k then found := true
    else
      Array.iter
        (fun (tr : Automaton.trans) ->
          let matched' =
            if Iset.mem vs.(matched) tr.sync then matched + 1 else matched
          in
          if not (Hashtbl.mem seen (tr.target, matched')) then begin
            Hashtbl.replace seen (tr.target, matched') ();
            Queue.push (tr.target, matched') queue
          end)
        a.trans.(s)
  done;
  !found || k = 0

let check ~resolve (a : Automaton.t) (t : t) =
  let port name =
    match resolve name with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "unknown port %s" name)
  in
  let ( let* ) = Result.bind in
  let check_atom atom =
    let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
    match atom with
    | Deadlock_free ->
      if Verify.deadlocks a = [] then Ok ()
      else fail "deadlock-free violated: a reachable state has no transitions"
    | Live p ->
      let* v = port p in
      if Verify.eventually_enabled a v then Ok ()
      else fail "live(%s) violated: the port never fires" p
    | Dead p ->
      let* v = port p in
      if not (Verify.eventually_enabled a v) then Ok ()
      else fail "dead(%s) violated: the port can fire" p
    | Never (p, q) ->
      let* vp = port p in
      let* vq = port q in
      if Verify.never_together a vp vq then Ok ()
      else fail "never(%s, %s) violated: they fire in one step" p q
    | Together (p, q) ->
      let* vp = port p in
      let* vq = port q in
      if Verify.always_together a vp vq then Ok ()
      else fail "together(%s, %s) violated: one fires without the other" p q
    | Precedes (p, q) ->
      let* vp = port p in
      let* vq = port q in
      if Verify.precedes a vp vq then Ok ()
      else fail "precedes(%s, %s) violated: %s can fire first" p q q
    | Sequence ps ->
      let* vs =
        List.fold_left
          (fun acc p ->
            let* acc = acc in
            let* v = port p in
            Ok (v :: acc))
          (Ok []) ps
      in
      if sequence_possible a (List.rev vs) then Ok ()
      else fail "sequence(%s) violated: no such execution" (String.concat ", " ps)
  in
  List.fold_left
    (fun acc atom ->
      let* () = acc in
      check_atom atom)
    (Ok ()) t
