(** A small property language over composed connectors, in the spirit of the
    model-checker front ends of the Reo tool chain. Checked exhaustively on
    the reachable state space of an explicit automaton.

    Concrete syntax (ports named as in the DSL signature, e.g. [tl[2]]):

    {v
    prop ::= deadlock-free
           | live(p)            -- p fires on some reachable transition
           | dead(p)            -- p never fires
           | never(p, q)        -- p and q never fire in the same step
           | together(p, q)     -- p and q only fire in the same step
           | precedes(p, q)     -- q cannot fire before the first p
           | sequence(p, ...)   -- some execution fires these in this order
           | prop && prop
    v} *)

open Preo_automata

type t

val parse : string -> (t, string) result
val pp : Format.formatter -> t -> unit

val check :
  resolve:(string -> Vertex.t option) ->
  Automaton.t ->
  t ->
  (unit, string) result
(** [resolve] maps source-syntax port names to boundary vertices. [Error]
    carries the first failing conjunct with an explanation. *)
