open Preo_support
open Preo_automata

type counterexample = {
  path : (int * Iset.t) list;
  state : int;
}

(* BFS predecessor tree for counterexample paths. *)
let bfs_tree (a : Automaton.t) =
  let pred = Array.make a.nstates None in
  let seen = Array.make a.nstates false in
  let queue = Queue.create () in
  seen.(a.initial) <- true;
  Queue.push a.initial queue;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    Array.iter
      (fun (tr : Automaton.trans) ->
        if not seen.(tr.target) then begin
          seen.(tr.target) <- true;
          pred.(tr.target) <- Some (s, tr.sync);
          Queue.push tr.target queue
        end)
      a.trans.(s)
  done;
  (seen, pred)

let path_to pred state =
  let rec go s acc =
    match pred.(s) with
    | None -> acc
    | Some (p, sync) -> go p ((p, sync) :: acc)
  in
  go state []

let deadlocks (a : Automaton.t) =
  let seen, pred = bfs_tree a in
  let acc = ref [] in
  for s = a.nstates - 1 downto 0 do
    if seen.(s) && Array.length a.trans.(s) = 0 then
      acc := { path = path_to pred s; state = s } :: !acc
  done;
  !acc

let unreachable_states (a : Automaton.t) =
  let seen, _ = bfs_tree a in
  let acc = ref [] in
  for s = a.nstates - 1 downto 0 do
    if not seen.(s) then acc := s :: !acc
  done;
  !acc

let reachable_transitions (a : Automaton.t) f =
  let seen, _ = bfs_tree a in
  let ok = ref true in
  Array.iteri
    (fun s ts ->
      if seen.(s) then
        Array.iter (fun (tr : Automaton.trans) -> if not (f tr) then ok := false) ts)
    a.trans;
  !ok

let never_together a u v =
  reachable_transitions a (fun tr ->
      not (Iset.mem u tr.sync && Iset.mem v tr.sync))

let always_together a u v =
  reachable_transitions a (fun tr ->
      Iset.mem u tr.sync = Iset.mem v tr.sync)

let precedes (a : Automaton.t) u v =
  (* Explore the sub-automaton of behaviour before the first firing of [u];
     [v] must not fire there. *)
  let seen = Array.make a.nstates false in
  let queue = Queue.create () in
  let ok = ref true in
  seen.(a.initial) <- true;
  Queue.push a.initial queue;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    Array.iter
      (fun (tr : Automaton.trans) ->
        if Iset.mem u tr.sync then () (* [u] fired: anything goes afterwards *)
        else begin
          if Iset.mem v tr.sync then ok := false;
          if not seen.(tr.target) then begin
            seen.(tr.target) <- true;
            Queue.push tr.target queue
          end
        end)
      a.trans.(s)
  done;
  !ok

let eventually_enabled (a : Automaton.t) u =
  not (reachable_transitions a (fun tr -> not (Iset.mem u tr.sync)))

let check_fig5_properties a ~a:va ~b:vb =
  if not (eventually_enabled a va) then
    Error (Printf.sprintf "port %s is dead" (Vertex.name va))
  else if not (eventually_enabled a vb) then
    Error (Printf.sprintf "port %s is dead" (Vertex.name vb))
  else if not (precedes a va vb) then
    Error
      (Printf.sprintf "%s can communicate before %s" (Vertex.name vb)
         (Vertex.name va))
  else if deadlocks a <> [] then Error "connector can deadlock"
  else Ok ()
