(** Verification of composed connectors — a lightweight stand-in for the
    model-checking tool chain of the Reo ecosystem that the paper's workflow
    relies on (Fig. 11: "formally verified through model checking, fully
    automatically").

    All checks run on an explicit (composed) automaton, so they are
    exhaustive over its reachable state space. Data constraints are treated
    symbolically: a transition is assumed firable whenever its constraint is
    structurally satisfiable (guards are ignored), which makes the checks
    conservative for data-sensitive connectors. *)

open Preo_automata

type counterexample = {
  path : (int * Preo_support.Iset.t) list;
      (** (state, sync label) steps from the initial state *)
  state : int;  (** offending state *)
}

val deadlocks : Automaton.t -> counterexample list
(** Reachable states with no outgoing transition. A connector automaton is
    deadlock-free iff this is empty. Note that boundary transitions only
    fire when tasks are willing; this check is about {e structural}
    deadlock. *)

val unreachable_states : Automaton.t -> int list

val never_together : Automaton.t -> Vertex.t -> Vertex.t -> bool
(** No reachable transition fires both vertices in the same step (mutual
    exclusion of two ports). *)

val always_together : Automaton.t -> Vertex.t -> Vertex.t -> bool
(** Every reachable transition firing either vertex fires both (strict
    synchrony of two ports). *)

val precedes : Automaton.t -> Vertex.t -> Vertex.t -> bool
(** On every path from the initial state, the first firing of [b] cannot
    happen before the first firing of [a]. *)

val eventually_enabled : Automaton.t -> Vertex.t -> bool
(** Some reachable transition fires the vertex (the port is not dead). *)

val check_fig5_properties : Automaton.t -> a:Vertex.t -> b:Vertex.t -> (unit, string) result
(** The paper's Example 1 contract on a composed connector: [a]'s first
    communication precedes [b]'s, and neither port is dead. Used by the
    quickstart example and tests. *)
