test/suite_automata.ml: Alcotest Array Automaton Command Constr Dispatch Dot Explore Hashtbl Iset List Preo_automata Preo_reo Preo_support Printf Product String Value Vertex
