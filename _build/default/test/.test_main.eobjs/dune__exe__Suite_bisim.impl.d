test/suite_bisim.ml: Alcotest Array Automaton Iset List Preo Preo_automata Preo_connectors Preo_lang Preo_reo Preo_support Preo_verify Prim Printf Product Rng Vertex
