test/suite_codegen.ml: Alcotest Lexing List Parse Preo Preo_connectors Preo_lang String
