test/suite_connectors.ml: Alcotest Array Config Fun List Mutex Port Preo Preo_connectors Printf Task Thread Unix Value
