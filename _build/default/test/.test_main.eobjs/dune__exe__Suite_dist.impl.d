test/suite_dist.ml: Alcotest Array Atomic Buffer Connector Engine Format Gen List Preo_automata Preo_dist Preo_reo Preo_runtime Preo_support QCheck QCheck_alcotest Task Thread Unix Value Vertex
