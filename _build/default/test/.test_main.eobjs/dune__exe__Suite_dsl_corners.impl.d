test/suite_dsl_corners.ml: Alcotest Graph List Preo_automata Preo_lang Preo_reo Preo_support Prim String To_text
