test/suite_facade.ml: Alcotest Array Config Connector Datafun Fun List Port Preo Preo_connectors Preo_lang String Task Value
