test/suite_fuzz.ml: Array List Preo Preo_connectors Preo_lang Preo_runtime Preo_support QCheck QCheck_alcotest Rng Test Value
