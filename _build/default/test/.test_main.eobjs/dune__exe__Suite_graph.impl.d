test/suite_graph.ml: Alcotest Array Automaton Figures Graph Iset List Preo_automata Preo_lang Preo_reo Preo_support Prim To_text Vertex
