test/suite_lang.ml: Alcotest Format Gen List Option Preo Preo_automata Preo_connectors Preo_lang Preo_reo Preo_support Printf QCheck QCheck_alcotest String
