test/suite_npb.ml: Alcotest Array Float List Preo_npb Preo_runtime Printf
