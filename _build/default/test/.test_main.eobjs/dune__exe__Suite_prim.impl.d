test/suite_prim.ml: Alcotest Array Automaton Iset List Preo_automata Preo_reo Preo_support Prim Value Vertex
