test/suite_prop.ml: Alcotest Array Automaton Format Iset List Preo Preo_automata Preo_connectors Preo_lang Preo_support Preo_verify Product String
