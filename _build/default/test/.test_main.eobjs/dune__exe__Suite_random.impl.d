test/suite_random.ml: Alcotest Array Config Connector List Mutex Port Preo_automata Preo_reo Preo_runtime Preo_support Printf Rng Task Value Vertex
