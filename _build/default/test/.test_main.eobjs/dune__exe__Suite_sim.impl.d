test/suite_sim.ml: Alcotest Array Connector List Port Preo Preo_automata Preo_connectors Preo_lang Preo_reo Preo_runtime Preo_support Task Thread Value Vertex
