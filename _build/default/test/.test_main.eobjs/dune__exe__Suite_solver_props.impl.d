test/suite_solver_props.ml: Array Cell Command Constr Iset List Preo_automata Preo_support QCheck QCheck_alcotest Rng Test Value Vertex
