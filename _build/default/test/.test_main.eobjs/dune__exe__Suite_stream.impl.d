test/suite_stream.ml: Alcotest Fun List Preo_runtime Preo_stream Preo_support Value
