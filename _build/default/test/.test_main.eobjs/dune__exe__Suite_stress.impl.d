test/suite_stress.ml: Alcotest Array Atomic Clock Config Connector List Port Preo_automata Preo_reo Preo_runtime Preo_support Printf Task Thread Value Vertex
