test/suite_support.ml: Alcotest Array Dyn Float Fun Hashtbl Int Iset List Lru Preo_support QCheck QCheck_alcotest Rng Set Stats String Tablefmt Test Union_find
