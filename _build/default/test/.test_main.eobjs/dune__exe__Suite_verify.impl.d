test/suite_verify.ml: Alcotest Array Automaton Constr Figures Graph List Preo Preo_automata Preo_connectors Preo_lang Preo_reo Preo_support Preo_verify Prim Vertex
