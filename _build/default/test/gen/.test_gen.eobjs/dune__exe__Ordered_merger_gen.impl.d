test/gen/ordered_merger_gen.ml: Array Automaton Cell Constr Hashtbl Iset List Preo_automata Preo_runtime Preo_support Printf Vertex
