test/gen/test_gen.ml: Alcotest Array Connector List Ordered_merger_gen Port Preo_runtime Preo_support Task Value
