test/gen/test_gen.mli:
