(* End-to-end check of the code generator: ordered_merger_gen.ml is produced
   at build time by `preoc emit` (see the dune rule), compiled against the
   runtime, and must implement the Fig. 9 protocol — for several run-time N,
   including the N=1 branch of the DSL conditional. *)

open Preo_support
open Preo_runtime

let protocol_order n =
  let conn = Ordered_merger_gen.connect ~lengths:[ ("tl", n); ("hd", n) ] () in
  (* Recover ports from the connector boundary via Connector.outports. *)
  let outs = Connector.outports conn in
  let ins = Connector.inports conn in
  Alcotest.(check int) "n outports" n (Array.length outs);
  Alcotest.(check int) "n inports" n (Array.length ins);
  let got = ref [] in
  Task.run_all
    ((fun () ->
       for _round = 1 to 3 do
         Array.iter (fun p -> got := Value.to_int (Port.recv p) :: !got) ins
       done)
    :: List.init n (fun i -> fun () ->
           for r = 1 to 3 do
             Port.send outs.(i) (Value.int ((r * 100) + i))
           done));
  let want =
    List.concat_map (fun r -> List.init n (fun i -> (r * 100) + i)) [ 1; 2; 3 ]
  in
  Alcotest.(check (list int)) "strict round-robin" want (List.rev !got);
  Connector.poison conn "done"

let generated_n1_uses_conditional () = protocol_order 1
let generated_n3 () = protocol_order 3
let generated_n5 () = protocol_order 5

let () =
  Alcotest.run "preoc-codegen"
    [
      ( "generated ordered merger",
        [
          ("N=1 (if-branch)", `Quick, generated_n1_uses_conditional);
          ("N=3", `Quick, generated_n3);
          ("N=5", `Quick, generated_n5);
        ] );
    ]
