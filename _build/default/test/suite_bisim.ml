(* Algebraic laws of composition, checked by bisimulation:
   - × is commutative and associative up to behaviour;
   - the fold order chosen by Product.all does not change behaviour;
   - the interleaving product is label-equivalent to the textbook product
     up to reordering of independent steps (checked on the reachable labels
     of synchronized cores where they must coincide). *)

module Bisim = Preo_verify.Bisim

open Preo_support
open Preo_automata
open Preo_reo

let v = Vertex.fresh

let pair_commutative () =
  let a = v "a" and m = v "m" and b = v "b" in
  let s1 = Prim.build Prim.Sync ~tails:[ a ] ~heads:[ m ] in
  let s2 = Prim.build Prim.Fifo1 ~tails:[ m ] ~heads:[ b ] in
  Alcotest.(check bool) "A x B ~ B x A" true
    (Bisim.equivalent (Product.pair s1 s2) (Product.pair s2 s1))

let pair_associative () =
  let a = v "a" and m1 = v "m1" and m2 = v "m2" and b = v "b" in
  let p1 = Prim.build Prim.Fifo1 ~tails:[ a ] ~heads:[ m1 ] in
  let p2 = Prim.build Prim.Sync ~tails:[ m1 ] ~heads:[ m2 ] in
  let p3 = Prim.build Prim.Fifo1 ~tails:[ m2 ] ~heads:[ b ] in
  (* (p1 x p2) x p3  ~  p1 x (p2 x p3): open vertices must be supplied for
     standalone pairs so cross joints survive. *)
  let left =
    Product.pair ~open_vertices:Iset.empty
      (Product.pair ~open_vertices:p3.Automaton.vertices p1 p2)
      p3
  in
  let right =
    Product.pair ~open_vertices:Iset.empty p1
      (Product.pair ~open_vertices:p1.Automaton.vertices p2 p3)
  in
  Alcotest.(check bool) "assoc" true
    (Bisim.equivalent (Automaton.trim left) (Automaton.trim right))

(* Product.all must be permutation-invariant despite its connectivity-order
   heuristic and joint-dropping rule: check on catalog connectors composed
   from shuffled primitive lists. *)
let fold_order_invariant () =
  let rng = Rng.create 99 in
  List.iter
    (fun name ->
      let e = Preo_connectors.Catalog.find name in
      let c = Preo_connectors.Catalog.compiled e in
      let bindings, sources, sinks =
        Preo_lang.Eval.boundary_of_def c.Preo.def ~lengths:(e.lengths 3)
      in
      let venv = Preo_lang.Eval.venv ~ints:[] ~arrays:bindings in
      let prims = Preo_lang.Eval.prims venv c.Preo.flat.Preo.Ast.c_body in
      let autos = Array.of_list (Preo_lang.Eval.small_automata prims) in
      let keep =
        Iset.of_list (Array.to_list sources @ Array.to_list sinks)
      in
      let compose order =
        let large = Product.all (Array.to_list order) in
        Automaton.trim
          (Automaton.hide (Iset.diff large.Automaton.vertices keep) large)
      in
      let reference = compose autos in
      for _ = 1 to 3 do
        let shuffled = Array.copy autos in
        Rng.shuffle rng shuffled;
        Alcotest.(check bool)
          (name ^ " permutation-invariant")
          true
          (Bisim.equivalent reference (compose shuffled))
      done)
    [ "ordered_merger"; "alternator"; "sequencer"; "barrier"; "token_ring"; "distributor" ]

let interleaving_vs_synchronous_on_synchronized_core () =
  (* A fully synchronized connector (barrier) has no independent parts:
     interleaving and textbook products must coincide exactly. *)
  let n = 3 in
  let tls = List.init n (fun i -> v (Printf.sprintf "t%d" i)) in
  let hds = List.init n (fun i -> v (Printf.sprintf "h%d" i)) in
  let bs = List.init n (fun i -> v (Printf.sprintf "k%d" i)) in
  let autos =
    List.concat
      (List.map2
         (fun (t, h) b ->
           [ Prim.build Prim.Replicator ~tails:[ t ] ~heads:[ h; b ] ])
         (List.combine tls hds) bs)
    @ [ Prim.build Prim.Sync_drain ~tails:bs ~heads:[] ]
  in
  let inter = Product.all autos in
  let sync = Product.all ~joint_independent:true autos in
  Alcotest.(check bool) "coincide" true
    (Bisim.equivalent (Automaton.trim inter) (Automaton.trim sync))

let interleaving_labels_subset_of_synchronous () =
  (* For a connector with independent parts, every interleaving behaviour is
     also a behaviour of the textbook product (label sequences up to a small
     depth). *)
  let a1 = v "a1" and b1 = v "b1" and a2 = v "a2" and b2 = v "b2" in
  let autos =
    [
      Prim.build Prim.Fifo1 ~tails:[ a1 ] ~heads:[ b1 ];
      Prim.build Prim.Fifo1 ~tails:[ a2 ] ~heads:[ b2 ];
    ]
  in
  let inter = Product.all autos in
  let sync = Product.all ~joint_independent:true autos in
  let si = Bisim.label_sequences ~depth:3 inter in
  let ss = Bisim.label_sequences ~depth:3 sync in
  Alcotest.(check bool) "subset" true (List.for_all (fun s -> List.mem s ss) si)

let renaming_preserves_behaviour () =
  let a = v "a" and b = v "b" in
  let f = Prim.build Prim.Fifo1 ~tails:[ a ] ~heads:[ b ] in
  let a' = v "a'" and b' = v "b'" in
  let g =
    Automaton.map_vertices
      (fun x -> if Vertex.equal x a then a' else if Vertex.equal x b then b' else x)
      f
  in
  let back =
    Automaton.map_vertices
      (fun x -> if Vertex.equal x a' then a else if Vertex.equal x b' then b else x)
      g
  in
  Alcotest.(check bool) "roundtrip bisimilar" true (Bisim.equivalent f back)

let trim_preserves_behaviour () =
  List.iter
    (fun name ->
      let e = Preo_connectors.Catalog.find name in
      let c = Preo_connectors.Catalog.compiled e in
      let bindings, _, _ =
        Preo_lang.Eval.boundary_of_def c.Preo.def ~lengths:(e.lengths 2)
      in
      let venv = Preo_lang.Eval.venv ~ints:[] ~arrays:bindings in
      let prims = Preo_lang.Eval.prims venv c.Preo.flat.Preo.Ast.c_body in
      let large = Product.all (Preo_lang.Eval.small_automata prims) in
      Alcotest.(check bool) (name ^ " trim ~ id") true
        (Bisim.equivalent large (Automaton.trim large)))
    [ "gather"; "sequencer" ]


(* --- weak bisimulation ----------------------------------------------------- *)

let weak_fifon_law () =
  (* Fifo<2>(a;b)  ≈  Fifo1(a;m) x Fifo1(m;b) with m hidden. *)
  let a = v "wa" and b = v "wb" in
  let ring = Prim.build (Prim.Fifo_n 2) ~tails:[ a ] ~heads:[ b ] in
  let m = v "wm" in
  let chain =
    Product.all
      [
        Prim.build Prim.Fifo1 ~tails:[ a ] ~heads:[ m ];
        Prim.build Prim.Fifo1 ~tails:[ m ] ~heads:[ b ];
      ]
  in
  let chain = Automaton.trim (Automaton.hide (Iset.singleton m) chain) in
  Alcotest.(check bool) "fifo2 ~ fifo1;fifo1 (weak)" true
    (Bisim.weakly_equivalent (Automaton.trim ring) chain);
  (* and strongly they are NOT equivalent (the chain has a silent step) *)
  Alcotest.(check bool) "not strongly" false
    (Bisim.equivalent (Automaton.trim ring) chain)

let weak_distinguishes_capacity () =
  let a = v "ka" and b = v "kb" in
  let f2 = Prim.build (Prim.Fifo_n 2) ~tails:[ a ] ~heads:[ b ] in
  let f3 = Prim.build (Prim.Fifo_n 3) ~tails:[ a ] ~heads:[ b ] in
  Alcotest.(check bool) "fifo2 != fifo3" false
    (Bisim.weakly_equivalent (Automaton.trim f2) (Automaton.trim f3))

let weak_sync_chain_collapses () =
  (* sync;sync with the middle hidden is weakly equivalent to sync — the
     composite fires {a,m,b} whose hidden label is {a,b}. *)
  let a = v "sa" and b = v "sb" in
  let direct = Prim.build Prim.Sync ~tails:[ a ] ~heads:[ b ] in
  let m = v "sm" in
  let chain =
    Product.all
      [
        Prim.build Prim.Sync ~tails:[ a ] ~heads:[ m ];
        Prim.build Prim.Sync ~tails:[ m ] ~heads:[ b ];
      ]
  in
  let chain = Automaton.trim (Automaton.hide (Iset.singleton m) chain) in
  Alcotest.(check bool) "sync;sync ~ sync" true
    (Bisim.weakly_equivalent (Automaton.trim direct) chain)

let tests =
  [
    ("pair commutative", `Quick, pair_commutative);
    ("pair associative", `Quick, pair_associative);
    ("fold order invariant", `Quick, fold_order_invariant);
    ("interleaving = synchronous on synchronized core", `Quick,
     interleaving_vs_synchronous_on_synchronized_core);
    ("interleaving labels within synchronous", `Quick,
     interleaving_labels_subset_of_synchronous);
    ("renaming roundtrip", `Quick, renaming_preserves_behaviour);
    ("trim preserves behaviour", `Quick, trim_preserves_behaviour);
    ("weak: fifo2 = fifo1;fifo1", `Quick, weak_fifon_law);
    ("weak: capacity distinguishes", `Quick, weak_distinguishes_capacity);
    ("weak: sync chain collapses", `Quick, weak_sync_chain_collapses);
  ]
