(* Code generator unit checks: the emitted source is syntactically valid
   OCaml (checked with compiler-libs) and structurally faithful (one literal
   automaton per static medium, loops for prods, conditionals for ifs).
   End-to-end compile-and-run coverage lives in test/gen/. *)

module Codegen = Preo_lang.Codegen

let gen name =
  let e = Preo_connectors.Catalog.find name in
  let c = Preo_connectors.Catalog.compiled e in
  Codegen.connector ~module_comment:("test: " ^ name) c.Preo.template

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let syntax_ok src =
  match Parse.implementation (Lexing.from_string src) with
  | _ -> true
  | exception _ -> false

let all_catalog_entries_emit_valid_syntax () =
  List.iter
    (fun (e : Preo_connectors.Catalog.entry) ->
      let src = gen e.name in
      Alcotest.(check bool) (e.name ^ " parses as OCaml") true (syntax_ok src))
    Preo_connectors.Catalog.all

let ordered_merger_structure () =
  let src = gen "ordered_merger" in
  Alcotest.(check bool) "has a conditional" true (contains src "if ((len \"tl\") = 1)");
  Alcotest.(check bool) "has loops" true (contains src "for v_");
  Alcotest.(check bool) "has literal automata" true (contains src "Automaton.make");
  Alcotest.(check bool) "builds the connector" true
    (contains src "Preo_runtime.Connector.create")

let dynamic_constituents_emitted () =
  let src = gen "merger" in
  Alcotest.(check bool) "merger built at run time" true
    (contains src "Preo_reo.Prim.build Preo_reo.Prim.Merger")

let annotations_survive () =
  let c =
    Preo.compile
      ~source:{|P(a;b,c) = Repl2(a;x,y) mult Transform<incr>(x;b) mult Filter<even>(y;c)|}
      ~name:"P"
  in
  let src = Codegen.connector ~module_comment:"ann" c.Preo.template in
  Alcotest.(check bool) "transform name" true (contains src "\"incr\"");
  Alcotest.(check bool) "filter name" true (contains src "\"even\"");
  Alcotest.(check bool) "syntax" true (syntax_ok src)

let tests =
  [
    ("all catalog entries emit valid OCaml", `Quick, all_catalog_entries_emit_valid_syntax);
    ("ordered merger structure", `Quick, ordered_merger_structure);
    ("dynamic constituents", `Quick, dynamic_constituents_emitted);
    ("annotations survive", `Quick, annotations_survive);
  ]
