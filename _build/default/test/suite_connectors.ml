(* Behavioural tests for every catalog connector family, run under both the
   existing and the new compilation approach. *)

open Preo

let configs = [ ("existing", Config.existing); ("jit", Config.new_jit) ]

let with_inst ?(n = 3) name f =
  let e = Preo_connectors.Catalog.find name in
  List.iter
    (fun (cname, config) ->
      let inst =
        instantiate ~config (Preo_connectors.Catalog.compiled e)
          ~lengths:(e.Preo_connectors.Catalog.lengths n)
      in
      Fun.protect ~finally:(fun () -> shutdown inst) (fun () -> f cname n inst))
    configs

let protect_locked m f = Mutex.lock m; Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let collector () =
  let m = Mutex.create () in
  let acc = ref [] in
  ( (fun x -> protect_locked m (fun () -> acc := x :: !acc)),
    fun () -> protect_locked m (fun () -> List.rev !acc) )

(* merger: every sent value arrives exactly once. *)
let merger () =
  with_inst "merger" (fun cname n inst ->
      let outs = outports inst "tl" in
      let consume = inports inst "hd" in
      let push, dump = collector () in
      Task.run_all
        ((fun () ->
           for _ = 1 to n * 5 do
             push (Value.to_int (Port.recv consume.(0)))
           done)
        :: List.init n (fun i -> fun () ->
               for r = 1 to 5 do
                 Port.send outs.(i) (Value.int ((i * 100) + r))
               done));
      let got = List.sort compare (dump ()) in
      let want =
        List.sort compare
          (List.concat_map
             (fun i -> List.init 5 (fun r -> (i * 100) + r + 1))
             (List.init n Fun.id))
      in
      Alcotest.(check (list int)) (cname ^ " all delivered once") want got)

(* replicator: every consumer sees the full stream in order. *)
let replicator () =
  with_inst "replicator" (fun cname n inst ->
      let out = (outports inst "tl").(0) in
      let ins = inports inst "hd" in
      let streams = Array.make n [] in
      let lock = Mutex.create () in
      Task.run_all
        ((fun () -> for r = 1 to 6 do Port.send out (Value.int r) done)
        :: List.init n (fun i -> fun () ->
               for _ = 1 to 6 do
                 let x = Value.to_int (Port.recv ins.(i)) in
                 protect_locked lock (fun () -> streams.(i) <- x :: streams.(i))
               done));
      Array.iteri
        (fun i s ->
          Alcotest.(check (list int))
            (Printf.sprintf "%s consumer %d" cname i)
            [ 1; 2; 3; 4; 5; 6 ] (List.rev s))
        streams)

(* router: each value goes to exactly one consumer. *)
let router () =
  with_inst "router" (fun cname n inst ->
      let out = (outports inst "tl").(0) in
      let ins = inports inst "hd" in
      let push, dump = collector () in
      let total = 12 in
      (* Consumers pull as much as they can; poisoning ends them. *)
      let consumers =
        List.init n (fun i ->
            Task.spawn (fun () ->
                while true do
                  push (Value.to_int (Port.recv ins.(i)))
                done))
      in
      for r = 1 to total do
        Port.send out (Value.int r)
      done;
      (* All sends completed; each was routed somewhere. *)
      let deadline = Unix.gettimeofday () +. 2.0 in
      let rec wait () =
        if List.length (dump ()) < total && Unix.gettimeofday () < deadline then begin
          Thread.delay 0.005;
          wait ()
        end
      in
      wait ();
      shutdown inst;
      List.iter (fun t -> try Task.join t with _ -> ()) consumers;
      Alcotest.(check (list int)) (cname ^ " exactly once")
        (List.init total (fun i -> i + 1))
        (List.sort compare (dump ())))

(* ordered_merger: strict round-robin across producers per round. *)
let ordered_merger () =
  with_inst "ordered_merger" (fun cname n inst ->
      let outs = outports inst "tl" in
      let ins = inports inst "hd" in
      let push, dump = collector () in
      let rounds = 4 in
      Task.run_all
        ((fun () ->
           for _ = 1 to rounds do
             Array.iter (fun p -> push (Value.to_int (Port.recv p))) ins
           done)
        :: List.init n (fun i -> fun () ->
               for r = 1 to rounds do
                 Port.send outs.(i) (Value.int ((r * 10) + i))
               done));
      let want =
        List.concat_map
          (fun r -> List.init n (fun i -> (r * 10) + i))
          [ 1; 2; 3; 4 ]
      in
      Alcotest.(check (list int)) (cname ^ " strict order") want (dump ()))

(* alternator: emits round r as a1 a2 ... an, intake synchronous. *)
let alternator () =
  with_inst "alternator" (fun cname n inst ->
      let outs = outports inst "tl" in
      let consume = (inports inst "hd").(0) in
      let push, dump = collector () in
      let rounds = 3 in
      Task.run_all
        ((fun () ->
           for _ = 1 to rounds * n do
             push (Value.to_int (Port.recv consume))
           done)
        :: List.init n (fun i -> fun () ->
               for r = 1 to rounds do
                 Port.send outs.(i) (Value.int ((r * 10) + i))
               done));
      let want =
        List.concat_map (fun r -> List.init n (fun i -> (r * 10) + i)) [ 1; 2; 3 ]
      in
      Alcotest.(check (list int)) (cname ^ " alternation") want (dump ()))

(* sequencer: grants rotate 1..n forever. *)
let sequencer () =
  with_inst "sequencer" (fun cname n inst ->
      let ins = inports inst "hd" in
      let push, dump = collector () in
      (* One thread polls the ports in rotation — receiving from the wrong
         port would block, so the protocol itself proves rotation if a
         round-robin receiver completes. *)
      Task.run_all
        [
          (fun () ->
            for _round = 1 to 3 do
              Array.iteri (fun i p -> ignore (Port.recv p); push i) ins
            done);
        ];
      Alcotest.(check (list int)) (cname ^ " rotation")
        (List.concat (List.init 3 (fun _ -> List.init n Fun.id)))
        (dump ()))

(* barrier: no task can be a full round ahead of any other. *)
let barrier () =
  with_inst "barrier" (fun cname n inst ->
      let outs = outports inst "tl" in
      let ins = inports inst "hd" in
      let progress = Array.make n 0 in
      let lock = Mutex.create () in
      let violation = ref false in
      let rounds = 5 in
      Task.run_all
        (List.init n (fun i -> fun () ->
             for r = 1 to rounds do
               Port.send outs.(i) (Value.int ((100 * i) + r));
               let x = Value.to_int (Port.recv ins.(i)) in
               (* pairwise: we receive our own sender's value *)
               if x <> (100 * i) + r then violation := true;
               protect_locked lock (fun () ->
                   progress.(i) <- r;
                   Array.iter
                     (fun p -> if abs (p - r) > 1 then violation := true)
                     progress)
             done));
      Alcotest.(check bool) (cname ^ " lockstep") false !violation)

(* lock: mutual exclusion across clients. *)
let lock_mutex () =
  with_inst "lock" (fun cname n inst ->
      let acq = outports inst "acq" in
      let rel = outports inst "rel" in
      let inside = ref 0 in
      let max_inside = ref 0 in
      let lock = Mutex.create () in
      Task.run_all
        (List.init n (fun i -> fun () ->
             for _ = 1 to 10 do
               Port.send acq.(i) Value.unit;
               protect_locked lock (fun () ->
                   incr inside;
                   if !inside > !max_inside then max_inside := !inside);
               Thread.yield ();
               protect_locked lock (fun () -> decr inside);
               Port.send rel.(i) Value.unit
             done));
      Alcotest.(check int) (cname ^ " mutual exclusion") 1 !max_inside)

(* load balancer / gather / broadcast_fifo / crossbar: delivery completeness. *)
let completeness name senders_group receivers_group total_of =
  with_inst name (fun cname n inst ->
      let outs = outports inst senders_group in
      let ins = inports inst receivers_group in
      let push, dump = collector () in
      let per = 4 in
      let total = total_of n per in
      let consumers =
        Array.to_list
          (Array.map
             (fun p ->
               Task.spawn (fun () ->
                   while true do
                     push (Value.to_int (Port.recv p))
                   done))
             ins)
      in
      let producers =
        Array.to_list
          (Array.mapi
             (fun i p ->
               Task.spawn (fun () ->
                   for r = 1 to per do
                     Port.send p (Value.int ((1000 * i) + r))
                   done))
             outs)
      in
      List.iter Task.join producers;
      let deadline = Unix.gettimeofday () +. 2.0 in
      while List.length (dump ()) < total && Unix.gettimeofday () < deadline do
        Thread.delay 0.005
      done;
      shutdown inst;
      List.iter (fun t -> try Task.join t with _ -> ()) consumers;
      let want =
        List.sort compare
          (List.concat
             (List.init (Array.length outs) (fun i ->
                  List.init per (fun r -> (1000 * i) + r + 1))))
      in
      Alcotest.(check (list int)) (cname ^ " complete") want
        (List.sort compare (dump ())))

let load_balancer () = completeness "load_balancer" "tl" "hd" (fun _ per -> per)
let gather () = completeness "gather" "tl" "hd" (fun n per -> n * per)
let crossbar () = completeness "crossbar" "tl" "hd" (fun n per -> n * per)

let broadcast_fifo () =
  with_inst "broadcast_fifo" (fun cname n inst ->
      let out = (outports inst "tl").(0) in
      let ins = inports inst "hd" in
      let streams = Array.make n [] in
      let lock = Mutex.create () in
      Task.run_all
        ((fun () -> for r = 1 to 5 do Port.send out (Value.int r) done)
        :: List.init n (fun i -> fun () ->
               for _ = 1 to 5 do
                 let x = Value.to_int (Port.recv ins.(i)) in
                 protect_locked lock (fun () -> streams.(i) <- x :: streams.(i))
               done));
      Array.iteri
        (fun i s ->
          Alcotest.(check (list int))
            (Printf.sprintf "%s stream %d" cname i)
            [ 1; 2; 3; 4; 5 ] (List.rev s))
        streams)

(* token ring: grants rotate; passing the token moves it on. *)
let token_ring () =
  with_inst "token_ring" (fun cname n inst ->
      let outs = outports inst "tl" in
      let ins = inports inst "hd" in
      let push, dump = collector () in
      Task.run_all
        (List.init n (fun i -> fun () ->
             for _ = 1 to 3 do
               ignore (Port.recv ins.(i));
               push i;
               Port.send outs.(i) Value.unit
             done));
      (* station 1 (index 0) holds the initial token *)
      Alcotest.(check (list int)) (cname ^ " ring order")
        (List.concat (List.init 3 (fun _ -> List.init n Fun.id)))
        (dump ()))

let relay_ring () =
  with_inst "relay_ring" (fun cname n inst ->
      let outs = outports inst "tl" in
      let ins = inports inst "hd" in
      let push, dump = collector () in
      Task.run_all
        (List.init n (fun i -> fun () ->
             for _ = 1 to 3 do
               ignore (Port.recv ins.(i));
               push i;
               Port.send outs.(i) Value.unit
             done));
      Alcotest.(check (list int)) (cname ^ " relay order")
        (List.concat (List.init 3 (fun _ -> List.init n Fun.id)))
        (dump ()))

let fork_join () =
  with_inst "fork_join" (fun cname n inst ->
      let src = (outports inst "tl").(0) in
      let acks = outports inst "ack" in
      let works = inports inst "work" in
      let result = (inports inst "hd").(0) in
      let rounds = 4 in
      Task.run_all
        ((fun () ->
           for r = 1 to rounds do
             Port.send src (Value.int r)
           done)
        :: (fun () ->
             for r = 1 to rounds do
               let x = Value.to_int (Port.recv result) in
               Alcotest.(check int) (cname ^ " joined ack") (r * 2) x
             done)
        :: List.init n (fun i -> fun () ->
               for _ = 1 to rounds do
                 let x = Value.to_int (Port.recv works.(i)) in
                 Port.send acks.(i) (Value.int (x * 2))
               done)))

let discriminator () =
  with_inst "discriminator" (fun cname n inst ->
      let outs = outports inst "tl" in
      let consume = (inports inst "hd").(0) in
      let rounds = 4 in
      Task.run_all
        ((fun () ->
           for _ = 1 to rounds do
             ignore (Port.recv consume)
           done)
        :: List.init n (fun i -> fun () ->
               for r = 1 to rounds do
                 Port.send outs.(i) (Value.int ((r * 10) + i))
               done));
      Alcotest.(check pass) (cname ^ " completes") () ())

let exchanger () =
  with_inst "exchanger" (fun cname n inst ->
      let outs = outports inst "tl" in
      let ins = inports inst "hd" in
      let results = Array.make n (-1) in
      let rounds = 3 in
      let violation = ref false in
      Task.run_all
        (List.init n (fun i -> fun () ->
             for r = 1 to rounds do
               Port.send outs.(i) (Value.int ((r * 100) + i));
               let x = Value.to_int (Port.recv ins.(i)) in
               (* party i receives from its left neighbour (i-1 mod n) *)
               let expect = (r * 100) + ((i - 1 + n) mod n) in
               if x <> expect then violation := true;
               results.(i) <- x
             done));
      Alcotest.(check bool) (cname ^ " rotation") false !violation)

let lossy_bcast () =
  with_inst ~n:2 "lossy_bcast" (fun cname _n inst ->
      let out = (outports inst "tl").(0) in
      let ins = inports inst "hd" in
      let push, dump = collector () in
      let consumers =
        Array.to_list
          (Array.map
             (fun p ->
               Task.spawn (fun () ->
                   while true do
                     push (Value.to_int (Port.recv p))
                   done))
             ins)
      in
      for r = 1 to 20 do
        Port.send out (Value.int r)
      done;
      Thread.delay 0.05;
      shutdown inst;
      List.iter (fun t -> try Task.join t with _ -> ()) consumers;
      (* deliveries are a sub(multi)set of sends *)
      List.iter
        (fun x ->
          if x < 1 || x > 20 then Alcotest.failf "%s bogus value %d" cname x)
        (dump ()))

let distributor () =
  with_inst "distributor" (fun cname n inst ->
      let out = (outports inst "tl").(0) in
      let ins = inports inst "hd" in
      let push, dump = collector () in
      let rounds = 3 in
      Task.run_all
        ((fun () ->
           for r = 1 to rounds * n do
             Port.send out (Value.int r)
           done)
        :: List.init n (fun i -> fun () ->
               for _ = 1 to rounds do
                 let x = Value.to_int (Port.recv ins.(i)) in
                 push (i, x)
               done));
      (* consumer i gets values i+1, i+1+n, i+1+2n: strict dealing order *)
      List.iter
        (fun (i, x) ->
          Alcotest.(check int)
            (Printf.sprintf "%s deal %d" cname x)
            i ((x - 1) mod n))
        (dump ()))


let sampler () =
  with_inst ~n:2 "sampler" (fun cname _n inst ->
      let out = (outports inst "tl").(0) in
      let ins = inports inst "hd" in
      (* send a burst with nobody listening: all sends complete *)
      for i = 1 to 5 do
        Port.send out (Value.int i)
      done;
      (* each consumer then reads the newest value *)
      Array.iteri
        (fun i p ->
          Alcotest.(check int)
            (Printf.sprintf "%s consumer %d sees newest" cname i)
            5
            (Value.to_int (Port.recv p)))
        ins)

let parallel_syncs () =
  with_inst "parallel_syncs" (fun cname n inst ->
      let outs = outports inst "tl" in
      let ins = inports inst "hd" in
      let oks = Array.make n false in
      Task.run_all
        (List.concat
           (List.init n (fun i ->
                [
                  (fun () -> Port.send outs.(i) (Value.int (i * 7)));
                  (fun () ->
                    oks.(i) <- Value.to_int (Port.recv ins.(i)) = i * 7);
                ])));
      Array.iteri
        (fun i ok ->
          Alcotest.(check bool) (Printf.sprintf "%s pair %d" cname i) true ok)
        oks)

let tests =
  [
    ("merger", `Quick, merger);
    ("replicator", `Quick, replicator);
    ("router", `Quick, router);
    ("ordered_merger", `Quick, ordered_merger);
    ("alternator", `Quick, alternator);
    ("sequencer", `Quick, sequencer);
    ("barrier", `Quick, barrier);
    ("lock mutual exclusion", `Quick, lock_mutex);
    ("load_balancer", `Quick, load_balancer);
    ("gather", `Quick, gather);
    ("crossbar", `Quick, crossbar);
    ("broadcast_fifo", `Quick, broadcast_fifo);
    ("token_ring", `Quick, token_ring);
    ("relay_ring", `Quick, relay_ring);
    ("fork_join", `Quick, fork_join);
    ("discriminator", `Quick, discriminator);
    ("exchanger", `Quick, exchanger);
    ("lossy_bcast", `Quick, lossy_bcast);
    ("distributor", `Quick, distributor);
    ("sampler", `Quick, sampler);
    ("parallel_syncs", `Quick, parallel_syncs);
  ]
