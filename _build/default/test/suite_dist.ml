(* Distributed port bridges: wire format roundtrips, socketpair and TCP
   bridges with real connectors behind them. *)

module Wire = Preo_dist.Wire
module Bridge = Preo_dist.Bridge

open Preo_support
open Preo_automata
open Preo_runtime

let v = Vertex.fresh
let prim = Preo_reo.Prim.build

(* --- wire format ------------------------------------------------------------ *)

let roundtrip_value x =
  let buf = Buffer.create 64 in
  Wire.encode_value buf x;
  let pos = ref 0 in
  let y = Wire.decode_value (Buffer.to_bytes buf) ~pos in
  Alcotest.(check bool)
    (Format.asprintf "roundtrip %a" Value.pp x)
    true (Value.equal x y);
  Alcotest.(check int) "consumed all" (Buffer.length buf) !pos

let wire_values () =
  List.iter roundtrip_value
    [
      Value.unit;
      Value.bool true;
      Value.bool false;
      Value.int 0;
      Value.int (-12345678901);
      Value.int max_int;
      Value.float 3.14159;
      Value.float (-0.0);
      Value.float infinity;
      Value.str "";
      Value.str "hello \x00 world";
      Value.pair (Value.int 1) (Value.str "x");
      Value.list [ Value.int 1; Value.list [ Value.unit ]; Value.float 2.5 ];
      Value.float_array [| 1.0; -2.5; 1e300 |];
      Value.float_array [||];
    ]

let qcheck_wire =
  let open QCheck in
  let rec gen_value depth =
    let open Gen in
    if depth = 0 then
      oneof
        [
          return Value.unit;
          map Value.bool bool;
          map Value.int int;
          map Value.float (float_range (-1e6) 1e6);
          map Value.str string_small;
        ]
    else
      oneof
        [
          map Value.int int;
          map2 Value.pair (gen_value (depth - 1)) (gen_value (depth - 1));
          map Value.list (list_size (int_range 0 4) (gen_value (depth - 1)));
          map
            (fun l -> Value.float_array (Array.of_list l))
            (list_size (int_range 0 6) (float_range (-1e9) 1e9));
        ]
  in
  [
    QCheck.Test.make ~name:"wire roundtrip (random values)" ~count:300
      (QCheck.make ~print:Value.to_string (gen_value 3))
      (fun x ->
        let buf = Buffer.create 64 in
        Wire.encode_value buf x;
        let pos = ref 0 in
        Value.equal x (Wire.decode_value (Buffer.to_bytes buf) ~pos));
  ]

(* --- socketpair bridge -------------------------------------------------------- *)

let bridged_fifo_over_socketpair () =
  let a = v "a" and b = v "b" in
  let conn =
    Connector.create ~sources:[| a |] ~sinks:[| b |]
      [ prim (Preo_reo.Prim.Fifo_n 4) ~tails:[ a ] ~heads:[ b ] ]
  in
  let s_out, c_out = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let s_in, c_in = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let server_out = Bridge.serve_outport (Connector.outport conn a) s_out in
  let server_in = Bridge.serve_inport (Connector.inport conn b) s_in in
  let rout = Bridge.remote_outport c_out in
  let rin = Bridge.remote_inport c_in in
  let got = ref [] in
  Task.run_all
    [
      (fun () ->
        for i = 1 to 20 do
          Bridge.send rout (Value.int i)
        done);
      (fun () ->
        for _ = 1 to 20 do
          got := Value.to_int (Bridge.recv rin) :: !got
        done);
    ];
  Alcotest.(check (list int)) "fifo order over the wire"
    (List.init 20 (fun i -> i + 1))
    (List.rev !got);
  Bridge.close_remote c_out;
  Bridge.close_remote c_in;
  Thread.join server_out;
  Thread.join server_in;
  Connector.poison conn "done"

let bridged_sync_blocks_until_partner () =
  (* A sync channel over two bridges: the remote send must not complete
     before the remote receive is in flight. *)
  let a = v "a" and b = v "b" in
  let conn =
    Connector.create ~sources:[| a |] ~sinks:[| b |]
      [ prim Preo_reo.Prim.Sync ~tails:[ a ] ~heads:[ b ] ]
  in
  let s_out, c_out = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let s_in, c_in = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let _srv1 = Bridge.serve_outport (Connector.outport conn a) s_out in
  let _srv2 = Bridge.serve_inport (Connector.inport conn b) s_in in
  let rout = Bridge.remote_outport c_out in
  let rin = Bridge.remote_inport c_in in
  let send_done = Atomic.make false in
  let sender =
    Task.spawn (fun () ->
        Bridge.send rout (Value.str "x");
        Atomic.set send_done true)
  in
  Thread.delay 0.05;
  Alcotest.(check bool) "send still blocked" false (Atomic.get send_done);
  Alcotest.(check string) "received" "x" (Value.to_str (Bridge.recv rin));
  Task.join sender;
  Alcotest.(check bool) "send completed" true (Atomic.get send_done);
  Bridge.close_remote c_out;
  Bridge.close_remote c_in;
  Connector.poison conn "done"

let bridged_over_tcp () =
  let a = v "a" and b = v "b" in
  let conn =
    Connector.create ~sources:[| a |] ~sinks:[| b |]
      [ prim Preo_reo.Prim.Fifo1 ~tails:[ a ] ~heads:[ b ] ]
  in
  let port = 35711 in
  let listener = Bridge.listen_local ~port in
  let acceptor =
    Task.spawn (fun () ->
        let fd1 = Bridge.accept_one listener in
        ignore (Bridge.serve_outport (Connector.outport conn a) fd1);
        let fd2 = Bridge.accept_one listener in
        ignore (Bridge.serve_inport (Connector.inport conn b) fd2))
  in
  let c1 = Bridge.connect_local ~port in
  let c2 = Bridge.connect_local ~port in
  Task.join acceptor;
  let rout = Bridge.remote_outport c1 and rin = Bridge.remote_inport c2 in
  Bridge.send rout (Value.pair (Value.int 1) (Value.str "tcp"));
  let got = Bridge.recv rin in
  Alcotest.(check bool) "value across TCP" true
    (Value.equal got (Value.pair (Value.int 1) (Value.str "tcp")));
  Bridge.close_remote c1;
  Bridge.close_remote c2;
  Unix.close listener;
  Connector.poison conn "done"

let poisoned_connector_reported_remotely () =
  let a = v "a" and b = v "b" in
  let conn =
    Connector.create ~sources:[| a |] ~sinks:[| b |]
      [ prim Preo_reo.Prim.Sync ~tails:[ a ] ~heads:[ b ] ]
  in
  let s_out, c_out = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let _srv = Bridge.serve_outport (Connector.outport conn a) s_out in
  let rout = Bridge.remote_outport c_out in
  let blocked =
    Task.spawn (fun () ->
        match Bridge.send rout Value.unit with
        | exception Engine.Poisoned _ -> ()
        | () -> Alcotest.fail "expected remote poisoning")
  in
  Thread.delay 0.05;
  Connector.poison conn "remote test";
  Task.join blocked;
  Bridge.close_remote c_out

let tests =
  [
    ("wire value roundtrips", `Quick, wire_values);
    ("bridged fifo over socketpair", `Quick, bridged_fifo_over_socketpair);
    ("bridged sync blocks until partner", `Quick, bridged_sync_blocks_until_partner);
    ("bridged over TCP", `Quick, bridged_over_tcp);
    ("remote poisoning surfaces", `Quick, poisoned_connector_reported_remotely);
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_wire
