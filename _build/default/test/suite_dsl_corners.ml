(* DSL corner cases: arithmetic, empty ranges, nested iteration, composite
   chains, whole-array passing, graph->text for every primitive kind. *)

module Ast = Preo_lang.Ast
module Parser = Preo_lang.Parser
module Sema = Preo_lang.Sema
module Flatten = Preo_lang.Flatten
module Eval = Preo_lang.Eval
module Template = Preo_lang.Template

let prims_of ?(lengths = []) src name =
  let p = Parser.program src in
  Sema.check p;
  let def = List.find (fun d -> d.Ast.c_name = name) p.Ast.defs in
  let flat = Flatten.def ~defs:p.Ast.defs def in
  let bindings, _, _ = Eval.boundary_of_def flat ~lengths in
  let venv = Eval.venv ~ints:[] ~arrays:bindings in
  Eval.prims venv flat.Ast.c_body

let count_prims ?(lengths = []) src name =
  List.length (prims_of ~lengths src name)

let empty_prod_range () =
  (* prod over 1..0 contributes nothing (the N=1 edge of many catalog
     connectors). *)
  Alcotest.(check int) "one fifo only" 1
    (count_prims ~lengths:[ ("a", 1); ("b", 1) ]
       {|C(a[];b[]) = prod (i:1..#a-1) Sync(a[i];x[i]) mult Fifo1(a[#a];b[1])|}
       "C")

let arith_in_ranges () =
  (* 2*#a-3 with #a=3 -> 1..3 *)
  Alcotest.(check int) "three" 3
    (count_prims ~lengths:[ ("a", 3); ("b", 3) ]
       {|C(a[];b[]) = prod (i:1..2*#a-3) Sync(a[i];b[i])|}
       "C")

let modulo_indexing () =
  (* ring indexing with % *)
  let prims =
    prims_of ~lengths:[ ("a", 3); ("b", 3) ]
      {|C(a[];b[]) = prod (i:1..#a) Sync(a[i];b[i % #a + 1])|}
      "C"
  in
  Alcotest.(check int) "three syncs" 3 (List.length prims);
  (* a[1]->b[2], a[2]->b[3], a[3]->b[1]: all b's used exactly once *)
  let heads = List.concat_map (fun p -> p.Eval.pi_heads) prims in
  Alcotest.(check int) "distinct heads" 3
    (List.length (List.sort_uniq compare heads))

let nested_prods () =
  (* a grid of fifos: locals indexed by two loop variables *)
  Alcotest.(check int) "3*4 fifos + 12 syncs" 24
    (count_prims ~lengths:[ ("a", 3); ("b", 3) ]
       {|C(a[];b[]) =
  prod (i:1..#a) prod (j:1..4) {
    Fifo1(m[i][j];w[i][j]) mult Sync(w[i][j];m2[i][j])
  }
  mult skip|}
       "C")

let composite_chain_three_deep () =
  let src =
    {|
A(x;y) = Fifo1(x;y)
B(x;y) = A(x;m) mult A(m;y)
C(x;y) = B(x;m) mult B(m;y)
|}
  in
  Alcotest.(check int) "4 fifos" 4 (count_prims src "C")

let whole_array_pass_through () =
  let src =
    {|
Inner(a[];z) = Merger(a[1..#a];z)
Outer(tl[];hd) = Inner(tl;hd)
|}
  in
  let prims = prims_of ~lengths:[ ("tl", 4) ] src "Outer" in
  match prims with
  | [ { Eval.pi_kind = Preo_reo.Prim.Merger; pi_tails; _ } ] ->
    Alcotest.(check int) "4 tails" 4 (List.length pi_tails)
  | _ -> Alcotest.fail "expected one merger"

let slice_offset_composition () =
  (* Passing a sub-slice: Inner sees a 2-element array starting at tl[2]. *)
  let src =
    {|
Inner(a[];z) = Merger(a[1..#a];z)
Outer(tl[];hd) = Inner(tl[2..3];hd) mult Fifo1(tl[1];q) mult Fifo1(tl[4];r)
|}
  in
  let prims = prims_of ~lengths:[ ("tl", 4) ] src "Outer" in
  let merger = List.find (fun p -> p.Eval.pi_kind = Preo_reo.Prim.Merger) prims in
  Alcotest.(check int) "merger over the middle two" 2
    (List.length merger.Eval.pi_tails)

let if_else_chooses () =
  let src =
    {|C(a[];b) = if (#a >= 3 && #a % 2 == 1) { Merger(a[1..#a];b) } else { Fifo1(a[1];b) }|}
  in
  let kind lengths =
    match prims_of ~lengths src "C" with
    | [ p ] -> Preo_reo.Prim.kind_name p.Eval.pi_kind
    | _ -> "?"
  in
  Alcotest.(check string) "odd >= 3 -> merger" "Merger" (kind [ ("a", 5) ]);
  Alcotest.(check string) "even -> fifo" "Fifo1" (kind [ ("a", 4) ]);
  Alcotest.(check string) "small -> fifo" "Fifo1" (kind [ ("a", 1) ])

let division_by_zero_reported () =
  let src = {|C(a[];b) = prod (i:1..#a / (#a - #a)) Sync(a[i];b)|} in
  let p = Parser.program src in
  Sema.check p;
  let def = List.hd p.Ast.defs in
  let flat = Flatten.def ~defs:p.Ast.defs def in
  let bindings, _, _ = Eval.boundary_of_def flat ~lengths:[ ("a", 2) ] in
  let venv = Eval.venv ~ints:[] ~arrays:bindings in
  match Eval.prims venv flat.Ast.c_body with
  | exception Eval.Error msg ->
    Alcotest.(check bool) "division message" true
      (String.length msg > 0)
  | _ -> Alcotest.fail "expected division by zero"

let template_handles_nested_prods () =
  let src =
    {|C(a[];b[]) =
  prod (i:1..#a) prod (j:1..2) Fifo1(m[i][j];w[i][j])
  mult prod (i:1..#a) Sync(a[i];m[i][1])
  mult prod (i:1..#a) Sync(w[i][2];b[i])|}
  in
  let p = Parser.program src in
  Sema.check p;
  let def = List.hd p.Ast.defs in
  let flat = Flatten.def ~defs:p.Ast.defs def in
  let t = Template.compile flat in
  let bindings, _, _ = Eval.boundary_of_def flat ~lengths:[ ("a", 3); ("b", 3) ] in
  let venv = Eval.venv ~ints:[] ~arrays:bindings in
  let mediums = Template.instantiate t venv in
  Alcotest.(check int) "6 fifos + 6 syncs" 12 (List.length mediums)

let to_text_all_prim_kinds () =
  let open Preo_reo in
  let v = Preo_automata.Vertex.fresh in
  let g =
    [
      Graph.arc Prim.Sync ~tails:[ v "a1" ] ~heads:[ v "b1" ];
      Graph.arc Prim.Lossy_sync ~tails:[ v "a2" ] ~heads:[ v "b2" ];
      Graph.arc Prim.Sync_drain ~tails:[ v "a3"; v "a4" ] ~heads:[];
      Graph.arc Prim.Async_drain ~tails:[ v "a5"; v "a6" ] ~heads:[];
      Graph.arc Prim.Sync_spout ~tails:[] ~heads:[ v "b3"; v "b4" ];
      Graph.arc Prim.Fifo1 ~tails:[ v "a7" ] ~heads:[ v "b5" ];
      Graph.arc (Prim.Fifo1_full Preo_support.Value.unit) ~tails:[ v "a8" ]
        ~heads:[ v "b6" ];
      Graph.arc (Prim.Filter "even") ~tails:[ v "a9" ] ~heads:[ v "b7" ];
      Graph.arc (Prim.Transform "incr") ~tails:[ v "a10" ] ~heads:[ v "b8" ];
      Graph.arc Prim.Merger ~tails:[ v "a11"; v "a12" ] ~heads:[ v "b9" ];
      Graph.arc Prim.Replicator ~tails:[ v "a13" ] ~heads:[ v "b10"; v "b11" ];
      Graph.arc Prim.Router ~tails:[ v "a14" ] ~heads:[ v "b12"; v "b13" ];
      Graph.arc Prim.Seq ~tails:[ v "a15"; v "a16" ] ~heads:[];
      Graph.arc (Prim.Fifo_n 3) ~tails:[ v "a17" ] ~heads:[ v "b14" ];
      Graph.arc Prim.Shift_lossy ~tails:[ v "a18" ] ~heads:[ v "b15" ];
      Graph.arc Prim.Overflow_lossy ~tails:[ v "a19" ] ~heads:[ v "b16" ];
    ]
  in
  let src = To_text.connector ~name:"Everything" g in
  (* must parse and check *)
  let p = Parser.program src in
  Sema.check p;
  Alcotest.(check int) "16 constituents" 16
    (count_prims
       ~lengths:[]
       src "Everything")

let tests =
  [
    ("empty prod range", `Quick, empty_prod_range);
    ("arith in ranges", `Quick, arith_in_ranges);
    ("modulo indexing", `Quick, modulo_indexing);
    ("nested prods", `Quick, nested_prods);
    ("composite chain 3-deep", `Quick, composite_chain_three_deep);
    ("whole array pass-through", `Quick, whole_array_pass_through);
    ("slice offset composition", `Quick, slice_offset_composition);
    ("if/else chooses", `Quick, if_else_chooses);
    ("division by zero reported", `Quick, division_by_zero_reported);
    ("template handles nested prods", `Quick, template_handles_nested_prods);
    ("to_text all primitive kinds", `Quick, to_text_all_prim_kinds);
  ]
