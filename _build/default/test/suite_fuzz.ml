(* Protocol fuzzing with the deterministic simulator: random operation
   schedules and random transition choices must never violate per-connector
   invariants (conservation, ordering, bounds), under both composition
   strategies. *)

module Sim = Preo_runtime.Sim
module Eval = Preo_lang.Eval
module Template = Preo_lang.Template

open Preo_support

let build name n =
  let e = Preo_connectors.Catalog.find name in
  let c = Preo_connectors.Catalog.compiled e in
  let bindings, sources, sinks =
    Eval.boundary_of_def c.Preo.def ~lengths:(e.lengths n)
  in
  let venv = Eval.venv ~ints:[] ~arrays:bindings in
  let mediums = Template.instantiate c.Preo.template venv in
  (mediums, sources, sinks)

(* Random schedule: interleave offers (tagged uniquely) and demands, step
   with a random policy, collect every delivery. *)
let fuzz_run ~seed ~name ~n ~nops =
  let rng = Rng.create seed in
  let mediums, sources, sinks = build name n in
  let sim = Sim.create ~policy:(Sim.Random (seed * 3 + 1)) ~sources ~sinks mediums in
  let offered = ref [] in
  let tag = ref 0 in
  for _ = 1 to nops do
    (match Rng.int rng 3 with
     | 0 when Array.length sources > 0 ->
       let s = sources.(Rng.int rng (Array.length sources)) in
       incr tag;
       offered := (s, !tag) :: !offered;
       Sim.offer sim s (Value.int !tag)
     | 1 when Array.length sinks > 0 ->
       Sim.demand sim sinks.(Rng.int rng (Array.length sinks))
     | _ -> ());
    (* advance a random number of steps *)
    for _ = 0 to Rng.int rng 3 do
      ignore (Sim.step sim)
    done
  done;
  let events = Sim.run sim in
  let delivered =
    List.concat_map (fun ev -> ev.Sim.ev_delivered) events
    @ List.concat_map
        (fun _ -> [])
        events
  in
  (!offered, delivered, Sim.steps sim)

let qcheck_tests =
  let open QCheck in
  let data_preserving = [ "merger"; "gather"; "router"; "crossbar"; "load_balancer"; "distributor"; "broadcast_fifo" ] in
  [
    Test.make ~name:"fuzz: delivered values were offered, at most once per copy"
      ~count:60
      (pair (int_range 0 5000) (int_range 2 5))
      (fun (seed, n) ->
        List.for_all
          (fun name ->
            let offered, delivered, _ = fuzz_run ~seed ~name ~n ~nops:30 in
            let offered_tags = List.map snd offered in
            (* broadcast duplicates to every sink; others deliver each tag at
               most once *)
            let dup_bound = if name = "broadcast_fifo" then n else 1 in
            List.for_all
              (fun (_, v) ->
                match v with
                | Value.Int t -> List.mem t offered_tags
                | _ -> false)
              delivered
            && List.for_all
                 (fun t ->
                   List.length
                     (List.filter
                        (fun (_, v) -> Value.equal v (Value.int t))
                        delivered)
                   <= dup_bound)
                 offered_tags)
          data_preserving);
    Test.make ~name:"fuzz: simulator never exceeds offered work" ~count:60
      (pair (int_range 0 5000) (int_range 2 4))
      (fun (seed, n) ->
        (* steps are bounded by a linear function of the schedule size for
           every catalog connector: no spontaneous/livelock behaviour *)
        List.for_all
          (fun (e : Preo_connectors.Catalog.entry) ->
            let _, _, steps =
              fuzz_run ~seed ~name:e.name ~n ~nops:20
            in
            steps <= 2000)
          Preo_connectors.Catalog.all);
    Test.make ~name:"fuzz: gather preserves per-producer order" ~count:60
      (int_range 0 5000)
      (fun seed ->
        let offered, delivered, _ =
          fuzz_run ~seed ~name:"gather" ~n:3 ~nops:40
        in
        (* per source vertex, the delivered subsequence of its tags must be
           in offer order *)
        let sources = List.rev offered in
        let tags_of s = List.filter_map (fun (s', t) -> if s' = s then Some t else None) sources in
        let delivered_tags =
          List.filter_map
            (fun (_, v) -> match v with Value.Int t -> Some t | _ -> None)
            delivered
        in
        let rec is_subsequence sub full =
          match (sub, full) with
          | [], _ -> true
          | _, [] -> false
          | x :: xs, y :: ys ->
            if x = y then is_subsequence xs ys else is_subsequence sub ys
        in
        List.for_all
          (fun s ->
            let mine = tags_of s in
            let mine_delivered =
              List.filter (fun t -> List.mem t mine) delivered_tags
            in
            is_subsequence mine_delivered mine)
          (List.sort_uniq compare (List.map fst sources)))
  ]

let tests = List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests
