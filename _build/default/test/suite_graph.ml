(* Hypergraph connectors, graph->text translation, Fig. 5. *)

module Parser = Preo_lang.Parser
module Sema = Preo_lang.Sema
module Flatten = Preo_lang.Flatten
module Eval = Preo_lang.Eval
module Ast = Preo_lang.Ast

open Preo_support
open Preo_automata
open Preo_reo

let v = Vertex.fresh

let boundary_and_wellformed () =
  let a = v "a" and m = v "m" and b = v "b" in
  let g =
    [
      Graph.arc Prim.Sync ~tails:[ a ] ~heads:[ m ];
      Graph.arc Prim.Fifo1 ~tails:[ m ] ~heads:[ b ];
    ]
  in
  (match Graph.well_formed g with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  let sources, sinks = Graph.boundary g in
  Alcotest.(check bool) "a source" true (Iset.equal sources (Iset.singleton a));
  Alcotest.(check bool) "b sink" true (Iset.equal sinks (Iset.singleton b))

let double_reader_rejected () =
  let a = v "a" and b = v "b" and c = v "c" in
  let g =
    [
      Graph.arc Prim.Sync ~tails:[ a ] ~heads:[ b ];
      Graph.arc Prim.Sync ~tails:[ a ] ~heads:[ c ];
    ]
  in
  match Graph.well_formed g with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "vertex read twice must be rejected"

let double_writer_rejected () =
  let a = v "a" and b = v "b" and c = v "c" in
  let g =
    [
      Graph.arc Prim.Sync ~tails:[ a ] ~heads:[ c ];
      Graph.arc Prim.Sync ~tails:[ b ] ~heads:[ c ];
    ]
  in
  match Graph.well_formed g with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "vertex written twice must be rejected"

let compose_is_union () =
  let a = v "a" and b = v "b" and c = v "c" and d = v "d" in
  let g1 = [ Graph.arc Prim.Sync ~tails:[ a ] ~heads:[ b ] ] in
  let g2 = [ Graph.arc Prim.Fifo1 ~tails:[ c ] ~heads:[ d ] ] in
  Alcotest.(check int) "two arcs" 2 (List.length (Graph.compose g1 g2));
  Alcotest.(check bool) "vertices union" true
    (Iset.equal (Graph.vertices (Graph.compose g1 g2)) (Iset.of_list [ a; b; c; d ]))

let large_automaton_of_chain () =
  let a = v "a" and m = v "m" and b = v "b" in
  let g =
    [
      Graph.arc Prim.Fifo1 ~tails:[ a ] ~heads:[ m ];
      Graph.arc Prim.Fifo1 ~tails:[ m ] ~heads:[ b ];
    ]
  in
  let large = Graph.to_large_automaton g in
  (* 2 fifos: 4 states reachable; m hidden. *)
  Alcotest.(check int) "4 states" 4 large.Automaton.nstates;
  Alcotest.(check bool) "m hidden" false (Iset.mem m large.Automaton.vertices)

(* --- graph -> text -> parse round trip ------------------------------------ *)

let to_text_parses_back () =
  let f = Figures.fig5 () in
  let src = To_text.connector ~name:"Fig5" f.Figures.graph in
  let def = Parser.conn_def src in
  Alcotest.(check string) "name kept" "Fig5" def.Ast.c_name;
  Alcotest.(check int) "4 tail params... (2 sources)" 2
    (List.length def.Ast.c_tparams);
  Alcotest.(check int) "2 sinks" 2 (List.length def.Ast.c_hparams);
  (* And the parsed definition must survive semantic checking. *)
  Sema.check { Ast.defs = [ def ]; main = None }

let to_text_eval_matches_graph () =
  (* Evaluating the emitted text yields the same number and kinds of
     primitives as the original graph. *)
  let f = Figures.fig5 () in
  let src = To_text.connector ~name:"Fig5" f.Figures.graph in
  let def = Parser.conn_def src in
  let flat = Flatten.def ~defs:[ def ] def in
  let _, _sources, _sinks =
    Eval.boundary_of_def flat
      ~lengths:[]
  in
  let bindings, _, _ = Eval.boundary_of_def flat ~lengths:[] in
  let venv = Eval.venv ~ints:[] ~arrays:bindings in
  let prims = Eval.prims venv flat.Ast.c_body in
  Alcotest.(check int) "8 primitives" 8 (List.length prims);
  let count k =
    List.length
      (List.filter (fun p -> Preo_reo.Prim.equal_kind p.Eval.pi_kind k) prims)
  in
  Alcotest.(check int) "4 replicators" 4 (count Prim.Replicator);
  Alcotest.(check int) "2 fifos" 2 (count Prim.Fifo1);
  Alcotest.(check int) "2 seqs" 2 (count Prim.Seq)

let fig5_protocol_automaton () =
  (* Composing Fig. 5 and hiding internals gives the 4-state cycle of the
     paper's Fig. 7(f). *)
  let f = Figures.fig5 () in
  let large = Graph.to_large_automaton f.Figures.graph in
  Alcotest.(check int) "4 states" 4 large.Automaton.nstates;
  Alcotest.(check int) "4 transitions" 4 (Automaton.num_transitions large);
  (* From the initial state, only A's send {tl1,...} can happen. *)
  let init = large.Automaton.trans.(large.Automaton.initial) in
  Alcotest.(check int) "single initial step" 1 (Array.length init);
  Alcotest.(check bool) "it is A's send" true
    (Iset.mem f.Figures.a_out init.(0).Automaton.sync)

let tests =
  [
    ("boundary + wellformed", `Quick, boundary_and_wellformed);
    ("double reader rejected", `Quick, double_reader_rejected);
    ("double writer rejected", `Quick, double_writer_rejected);
    ("compose is union", `Quick, compose_is_union);
    ("large automaton of chain", `Quick, large_automaton_of_chain);
    ("to_text parses back", `Quick, to_text_parses_back);
    ("to_text eval matches graph", `Quick, to_text_eval_matches_graph);
    ("fig5 protocol automaton", `Quick, fig5_protocol_automaton);
  ]
