(* DSL front end: lexer, parser, canonicalization, sema, flatten,
   normalize, eval/template agreement. *)

module Ast = Preo_lang.Ast
module Lexer = Preo_lang.Lexer
module Parser = Preo_lang.Parser
module Sema = Preo_lang.Sema
module Flatten = Preo_lang.Flatten
module Normalize = Preo_lang.Normalize
module Eval = Preo_lang.Eval
module Template = Preo_lang.Template

open Ast

let fig9_src =
  {|
// the paper's Fig. 9 (Seq polarity as in Fig. 8)
X(tl;prev,next,hd) =
  Repl2(tl;prev,v) mult Fifo1(v;w) mult Repl2(w;next,hd)

ConnectorEx11N(tl[];hd[]) =
  if (#tl == 1) {
    Fifo1(tl[1];hd[1])
  } else {
    prod (i:1..#tl) X(tl[i];prev[i],next[i],hd[i])
    mult prod (i:1..#tl-1) Seq2(next[i],prev[i+1];)
    mult Seq2(prev[1],next[#tl];)
  }

main(N) = ConnectorEx11N(out[1..N];in[1..N]) among
  forall (i:1..N) Tasks.pro(out[i]) and Tasks.con(in[1..N])
|}

(* --- Lexer ----------------------------------------------------------------- *)

let lexer_tokens () =
  let toks = List.map fst (Lexer.tokenize "prod (i:1..#tl-1) X<f>(a[i];) // c") in
  Alcotest.(check bool) "shape" true
    (toks
    = Lexer.
        [
          KW_PROD; LPAREN; IDENT "i"; COLON; INT 1; DOTDOT; HASH; IDENT "tl";
          MINUS; INT 1; RPAREN; IDENT "X"; LT; IDENT "f"; GT; LPAREN;
          IDENT "a"; LBRACKET; IDENT "i"; RBRACKET; SEMI; RPAREN; EOF;
        ])

let lexer_operators () =
  let toks = List.map fst (Lexer.tokenize "== != <= >= && || ! = < >") in
  Alcotest.(check bool) "ops" true
    (toks = Lexer.[ EQEQ; NE; LE; GE; ANDAND; OROR; BANG; EQ; LT; GT; EOF ])

let lexer_error_position () =
  match Lexer.tokenize "a\nb\n@" with
  | exception Lexer.Error (_, 3) -> ()
  | exception Lexer.Error (_, l) -> Alcotest.failf "wrong line %d" l
  | _ -> Alcotest.fail "expected lexer error"

(* --- Parser ---------------------------------------------------------------- *)

let parse_program () =
  let p = Parser.program fig9_src in
  Alcotest.(check int) "2 defs" 2 (List.length p.defs);
  Alcotest.(check bool) "has main" true (p.main <> None);
  let m = Option.get p.main in
  Alcotest.(check (list string)) "main params" [ "N" ] m.m_params;
  Alcotest.(check int) "2 task items" 2 (List.length m.m_tasks)

let parse_precedence () =
  Alcotest.(check bool) "mul binds tighter" true
    (Parser.iexpr "1+2*3" = I_add (I_lit 1, I_mul (I_lit 2, I_lit 3)));
  Alcotest.(check bool) "parens" true
    (Parser.iexpr "(1+2)*3" = I_mul (I_add (I_lit 1, I_lit 2), I_lit 3));
  Alcotest.(check bool) "and over or" true
    (Parser.bexpr "1==1 || 2==2 && 3==3"
    = B_or (B_cmp (Ceq, I_lit 1, I_lit 1),
            B_and (B_cmp (Ceq, I_lit 2, I_lit 2), B_cmp (Ceq, I_lit 3, I_lit 3))))

let parse_paren_bexpr () =
  (* '(' can open either a comparison operand or a boolean group. *)
  Alcotest.(check bool) "paren iexpr" true
    (Parser.bexpr "(1+2) == 3" = B_cmp (Ceq, I_add (I_lit 1, I_lit 2), I_lit 3));
  Alcotest.(check bool) "paren bexpr" true
    (Parser.bexpr "(1 == 2) && 3 == 3"
    = B_and (B_cmp (Ceq, I_lit 1, I_lit 2), B_cmp (Ceq, I_lit 3, I_lit 3)))

let parse_if_without_else () =
  let d = Parser.conn_def "C(a;b) = if (1 == 1) { Sync(a;b) }" in
  match d.c_body with
  | E_if (_, E_inst _, E_skip) -> ()
  | _ -> Alcotest.fail "else defaults to skip"

let parse_annotation () =
  let d = Parser.conn_def "C(a;b) = Filter<even>(a;b)" in
  match d.c_body with
  | E_inst { i_name = "Filter"; i_ann = Some "even"; _ } -> ()
  | _ -> Alcotest.fail "annotation"

let parse_slice_and_index () =
  let d = Parser.conn_def "C(a[];b) = Merger(a[1..#a];b)" in
  match d.c_body with
  | E_inst { i_tails = [ A_slice ("a", I_lit 1, I_len "a") ]; _ } -> ()
  | _ -> Alcotest.fail "slice arg"

let parse_error_reports_line () =
  match Parser.program "C(a;b) =\n  Sync(a;b) mult mult" with
  | exception Parser.Error (_, 2) -> ()
  | exception Parser.Error (_, l) -> Alcotest.failf "wrong line %d" l
  | _ -> Alcotest.fail "expected parse error"

(* Pretty-print / re-parse round trip on the fig9 program. *)
let pp_reparse_roundtrip () =
  let p = Parser.program fig9_src in
  let printed = Format.asprintf "%a" Ast.pp_program p in
  let p2 = Parser.program printed in
  Alcotest.(check int) "same def count" (List.length p.defs) (List.length p2.defs);
  let again = Format.asprintf "%a" Ast.pp_program p2 in
  Alcotest.(check string) "pp fixpoint" printed again

(* --- canon_iexpr ------------------------------------------------------------ *)

let canon_units () =
  let eq a b = Alcotest.(check bool) (a ^ " = " ^ b) true
      (Ast.iexpr_equal (Parser.iexpr a) (Parser.iexpr b))
  and ne a b = Alcotest.(check bool) (a ^ " <> " ^ b) false
      (Ast.iexpr_equal (Parser.iexpr a) (Parser.iexpr b)) in
  eq "i+1" "1+i";
  eq "i - i" "0";
  eq "2*i + 3*i" "5*i";
  eq "#tl - 1 + 1" "#tl";
  eq "(i+1)*2" "2*i + 2";
  ne "i+1" "i";
  ne "i" "j";
  ne "i/2" "i";
  eq "i/2" "i/2"

let qcheck_canon =
  let open QCheck in
  let gen_iexpr =
    let open Gen in
    sized (fun n ->
        fix
          (fun self n ->
            if n <= 0 then
              oneof
                [
                  map (fun i -> I_lit i) (int_range (-5) 5);
                  oneofl [ I_var "i"; I_var "j"; I_len "a" ];
                ]
            else
              oneof
                [
                  map2 (fun a b -> I_add (a, b)) (self (n / 2)) (self (n / 2));
                  map2 (fun a b -> I_sub (a, b)) (self (n / 2)) (self (n / 2));
                  map2 (fun a b -> I_mul (a, b)) (self (n / 2)) (self (n / 2));
                  map (fun a -> I_neg a) (self (n - 1));
                ])
          (min n 6))
  in
  let arb = QCheck.make ~print:(Format.asprintf "%a" Ast.pp_iexpr) gen_iexpr in
  let eval env e =
    let rec go = function
      | I_lit n -> n
      | I_var "i" -> fst env
      | I_var _ -> snd env
      | I_len _ -> 4
      | I_add (a, b) -> go a + go b
      | I_sub (a, b) -> go a - go b
      | I_mul (a, b) -> go a * go b
      | I_div (a, b) -> if go b = 0 then 0 else go a / go b
      | I_mod (a, b) -> if go b = 0 then 0 else go a mod go b
      | I_neg a -> -go a
    in
    go e
  in
  [
    QCheck.Test.make ~name:"canon preserves value" ~count:500 arb (fun e ->
        let c = Ast.canon_iexpr e in
        List.for_all
          (fun env -> eval env e = eval env c)
          [ (0, 0); (1, 2); (3, -1); (7, 5) ]);
    QCheck.Test.make ~name:"canon idempotent" ~count:500 arb (fun e ->
        Ast.canon_iexpr (Ast.canon_iexpr e) = Ast.canon_iexpr e);
  ]

(* --- Sema ------------------------------------------------------------------- *)

let sema_accepts_fig9 () = Sema.check (Parser.program fig9_src)

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let sema_rejects src expect_fragment =
  match Sema.check (Parser.program src) with
  | exception Sema.Error msg ->
    if not (contains msg expect_fragment) then
      Alcotest.failf "wrong message: %s (wanted %s)" msg expect_fragment
  | () -> Alcotest.failf "expected rejection: %s" expect_fragment

let sema_rejections () =
  sema_rejects "C(a;b) = Unknown(a;b)" "unknown connector";
  sema_rejects "C(a;a) = Sync(a;a)" "duplicate parameter";
  sema_rejects "C(a;b) = Sync(a;b)\nC(x;y) = Sync(x;y)" "duplicate definition";
  sema_rejects "Sync(a;b) = Sync(a;b)" "shadows a primitive";
  sema_rejects "C(a;b) = Filter(a;b)" "requires a <predicate>";
  sema_rejects "C(a;b) = Sync<f>(a;b)" "does not take";
  sema_rejects "C(a[];b) = Sync(a;b)" "arrays as tails";
  sema_rejects "C(a[];b) = Merger(a[1..#a];b[1])" "cannot be indexed";
  sema_rejects "C(a;b) = prod (i:1..2) Sync(a;i)" "used as a vertex";
  sema_rejects "C(a;b) = Sync(a[1];b)" "cannot be indexed";
  sema_rejects "C(a[];b) = prod (i:1..#c) Sync(a[i];b)" "unknown array";
  sema_rejects "D(x;y) = C(x;y)" "unknown connector";
  sema_rejects "C(a;b) = C(a;b)" "recursive";
  sema_rejects "C(a;b) = D(a;b)\nD(x;y) = C(x;y)" "recursive";
  sema_rejects "C(a;b) = Sync(a;b) mult Sync(a;c)\nmain = C(p;q) among T.t(p)"
    "not used by any task"

let sema_local_consistency () =
  sema_rejects "C(a;b) = Sync(a;x) mult Fifo1(x[1];b)" "local x used";
  (* But consistent single-index locals plus slices of them are fine. *)
  Sema.check
    (Parser.program
       "C(a[];b) = prod (i:1..#a) Sync(a[i];x[i]) mult Merger(x[1..#a];b)")

(* --- Flatten ------------------------------------------------------------------ *)

let flatten_fig9 () =
  let p = Parser.program fig9_src in
  let def = List.find (fun d -> d.c_name = "ConnectorEx11N") p.defs in
  let flat = Flatten.def ~defs:p.defs def in
  (* The body must be composite-free. *)
  let rec no_composites = function
    | E_skip -> true
    | E_inst i -> Preo_reo.Prim.of_name i.i_name <> None
    | E_mult (a, b) -> no_composites a && no_composites b
    | E_prod (_, _, _, b) -> no_composites b
    | E_if (_, a, b) -> no_composites a && no_composites b
  in
  Alcotest.(check bool) "no composites" true (no_composites flat.c_body)

(* Flattening Fig. 8's ConnectorEx11b yields ConnectorEx11a (Example 9): same
   multiset of primitives when evaluated. *)
let flatten_example9 () =
  let src =
    {|
ConnectorEx11a(tl1,tl2;hd1,hd2) =
  Repl2(tl1;prev1,v1) mult Repl2(tl2;prev2,v2)
  mult Fifo1(v1;w1) mult Fifo1(v2;w2)
  mult Repl2(w1;next1,hd1) mult Repl2(w2;next2,hd2)
  mult Seq2(next1,prev2;) mult Seq2(prev1,next2;)

ConnectorEx11b(tl1,tl2;hd1,hd2) =
  X(tl1;prev1,next1,hd1) mult X(tl2;prev2,next2,hd2)
  mult Seq2(next1,prev2;) mult Seq2(prev1,next2;)

X(tl;prev,next,hd) =
  Repl2(tl;prev,v) mult Fifo1(v;w) mult Repl2(w;next,hd)
|}
  in
  let p = Parser.program src in
  Sema.check p;
  let eval_kinds name =
    let def = List.find (fun d -> d.c_name = name) p.defs in
    let flat = Flatten.def ~defs:p.defs def in
    let bindings, _, _ = Eval.boundary_of_def flat ~lengths:[] in
    let venv = Eval.venv ~ints:[] ~arrays:bindings in
    Eval.prims venv flat.c_body
    |> List.map (fun pi -> Preo_reo.Prim.kind_name pi.Eval.pi_kind)
    |> List.sort compare
  in
  Alcotest.(check (list string)) "same primitive multiset"
    (eval_kinds "ConnectorEx11a") (eval_kinds "ConnectorEx11b")

(* Locals of a composite in-lined under an iteration are distinct per
   iteration; top-level locals are shared. *)
let flatten_local_scoping () =
  let src =
    {|
Inner(a;b) = Fifo1(a;m) mult Fifo1(m;b)
Outer(tl[];hd[]) = prod (i:1..#tl) Inner(tl[i];hd[i])
|}
  in
  let p = Parser.program src in
  Sema.check p;
  let def = List.find (fun d -> d.c_name = "Outer") p.defs in
  let flat = Flatten.def ~defs:p.defs def in
  let bindings, _, _ = Eval.boundary_of_def flat ~lengths:[ ("tl", 3); ("hd", 3) ] in
  let venv = Eval.venv ~ints:[] ~arrays:bindings in
  let prims = Eval.prims venv flat.c_body in
  Alcotest.(check int) "6 fifos" 6 (List.length prims);
  (* All 6 fifos have pairwise distinct tails (the in-lined m is fresh per
     iteration, so no vertex is read twice). *)
  let tails = List.concat_map (fun pi -> pi.Eval.pi_tails) prims in
  Alcotest.(check int) "distinct tails" 6
    (List.length (List.sort_uniq compare tails))

(* --- Normalize ------------------------------------------------------------------ *)

let normalize_sections () =
  let d =
    Parser.conn_def
      "C(a[];b) = prod (i:1..#a) Sync(a[i];x[i]) mult Merger(x[1..#a];b) mult \
       if (#a == 1) { skip } else { skip }"
  in
  let n = Normalize.of_expr d.c_body in
  Alcotest.(check int) "consts" 1 (List.length n.Normalize.n_consts);
  Alcotest.(check int) "prods" 1 (List.length n.Normalize.n_prods);
  (* if with two skip branches normalizes away *)
  Alcotest.(check int) "ifs" 0 (List.length n.Normalize.n_ifs)

let normalize_preserves_eval () =
  (* Evaluating to_expr (of_expr body) gives the same primitive multiset. *)
  List.iter
    (fun (e : Preo_connectors.Catalog.entry) ->
      let c = Preo_connectors.Catalog.compiled e in
      let flat = c.Preo.flat in
      let normalized =
        { flat with c_body = Normalize.to_expr (Normalize.of_expr flat.c_body) }
      in
      let kinds def n =
        let bindings, _, _ = Eval.boundary_of_def def ~lengths:(e.lengths n) in
        let venv = Eval.venv ~ints:[] ~arrays:bindings in
        Eval.prims venv def.c_body
        |> List.map (fun pi ->
               ( Preo_reo.Prim.kind_name pi.Eval.pi_kind,
                 List.length pi.Eval.pi_tails,
                 List.length pi.Eval.pi_heads ))
        |> List.sort compare
      in
      List.iter
        (fun n ->
          Alcotest.(check bool)
            (Printf.sprintf "%s N=%d" e.name n)
            true
            (kinds flat n = kinds normalized n))
        [ 1; 2; 5 ])
    Preo_connectors.Catalog.all

(* --- Template vs eval --------------------------------------------------------- *)

(* The run-time share of the new approach must produce the same primitive
   structure as full evaluation: compare multisets of (shape of medium
   pieces). We compare the *composed* small automata statistics: total
   transition count of all mediums equals that of all small automata composed
   per template grouping is hard to compare directly, so instead compare
   vertex sets and total cells. *)
let template_matches_eval () =
  List.iter
    (fun (e : Preo_connectors.Catalog.entry) ->
      let c = Preo_connectors.Catalog.compiled e in
      List.iter
        (fun n ->
          let bindings, _, _ =
            Eval.boundary_of_def c.Preo.def ~lengths:(e.lengths n)
          in
          let venv = Eval.venv ~ints:[] ~arrays:bindings in
          let mediums = Template.instantiate c.Preo.template venv in
          let venv2 = Eval.venv ~ints:[] ~arrays:bindings in
          let prims = Eval.prims venv2 c.Preo.flat.c_body in
          let smalls = Eval.small_automata prims in
          let vertices autos =
            List.fold_left
              (fun acc (a : Preo_automata.Automaton.t) ->
                Preo_support.Iset.union acc a.vertices)
              Preo_support.Iset.empty autos
          in
          (* Medium vertices = small-automata vertices up to renamed locals:
             compare cardinalities and the boundary subset. *)
          Alcotest.(check int)
            (Printf.sprintf "%s N=%d vertex count" e.name n)
            (Preo_support.Iset.cardinal (vertices smalls))
            (Preo_support.Iset.cardinal (vertices mediums));
          let cells autos =
            List.fold_left
              (fun acc (a : Preo_automata.Automaton.t) ->
                acc + Preo_support.Iset.cardinal a.cells)
              0 autos
          in
          Alcotest.(check int)
            (Printf.sprintf "%s N=%d cells" e.name n)
            (cells smalls) (cells mediums))
        [ 1; 2; 4; 7 ])
    Preo_connectors.Catalog.all

let tests =
  [
    ("lexer tokens", `Quick, lexer_tokens);
    ("lexer operators", `Quick, lexer_operators);
    ("lexer error line", `Quick, lexer_error_position);
    ("parse program", `Quick, parse_program);
    ("parse precedence", `Quick, parse_precedence);
    ("parse paren bexpr", `Quick, parse_paren_bexpr);
    ("parse if without else", `Quick, parse_if_without_else);
    ("parse annotation", `Quick, parse_annotation);
    ("parse slice", `Quick, parse_slice_and_index);
    ("parse error line", `Quick, parse_error_reports_line);
    ("pp/reparse roundtrip", `Quick, pp_reparse_roundtrip);
    ("canon units", `Quick, canon_units);
    ("sema accepts fig9", `Quick, sema_accepts_fig9);
    ("sema rejections", `Quick, sema_rejections);
    ("sema local consistency", `Quick, sema_local_consistency);
    ("flatten fig9", `Quick, flatten_fig9);
    ("flatten example 9", `Quick, flatten_example9);
    ("flatten local scoping", `Quick, flatten_local_scoping);
    ("normalize sections", `Quick, normalize_sections);
    ("normalize preserves eval", `Quick, normalize_preserves_eval);
    ("template matches eval", `Quick, template_matches_eval);
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_canon
