(* Primitive connectors: automaton shapes and name resolution. *)

open Preo_support
open Preo_automata
open Preo_reo

let v = Vertex.fresh
let iset = Iset.of_list

let shape name auto ~nstates ~ntrans =
  Alcotest.(check int) (name ^ " states") nstates auto.Automaton.nstates;
  Alcotest.(check int) (name ^ " transitions") ntrans (Automaton.num_transitions auto)

let prim_shapes () =
  shape "sync" (Prim.build Prim.Sync ~tails:[ v "a" ] ~heads:[ v "b" ]) ~nstates:1 ~ntrans:1;
  shape "lossy" (Prim.build Prim.Lossy_sync ~tails:[ v "a" ] ~heads:[ v "b" ]) ~nstates:1 ~ntrans:2;
  shape "drain2" (Prim.build Prim.Sync_drain ~tails:[ v "a"; v "b" ] ~heads:[]) ~nstates:1 ~ntrans:1;
  shape "drain4"
    (Prim.build Prim.Sync_drain ~tails:[ v "a"; v "b"; v "c"; v "d" ] ~heads:[])
    ~nstates:1 ~ntrans:1;
  shape "adrain3"
    (Prim.build Prim.Async_drain ~tails:[ v "a"; v "b"; v "c" ] ~heads:[])
    ~nstates:1 ~ntrans:3;
  shape "spout" (Prim.build Prim.Sync_spout ~tails:[] ~heads:[ v "a"; v "b" ]) ~nstates:1 ~ntrans:1;
  shape "fifo1" (Prim.build Prim.Fifo1 ~tails:[ v "a" ] ~heads:[ v "b" ]) ~nstates:2 ~ntrans:2;
  shape "fifo1full"
    (Prim.build (Prim.Fifo1_full Value.unit) ~tails:[ v "a" ] ~heads:[ v "b" ])
    ~nstates:3 ~ntrans:3;
  shape "filter"
    (Prim.build (Prim.Filter "even") ~tails:[ v "a" ] ~heads:[ v "b" ])
    ~nstates:1 ~ntrans:2;
  shape "transform"
    (Prim.build (Prim.Transform "incr") ~tails:[ v "a" ] ~heads:[ v "b" ])
    ~nstates:1 ~ntrans:1;
  shape "merger3"
    (Prim.build Prim.Merger ~tails:[ v "a"; v "b"; v "c" ] ~heads:[ v "z" ])
    ~nstates:1 ~ntrans:3;
  shape "repl3"
    (Prim.build Prim.Replicator ~tails:[ v "a" ] ~heads:[ v "x"; v "y"; v "z" ])
    ~nstates:1 ~ntrans:1;
  shape "router3"
    (Prim.build Prim.Router ~tails:[ v "a" ] ~heads:[ v "x"; v "y"; v "z" ])
    ~nstates:1 ~ntrans:3;
  shape "seq3" (Prim.build Prim.Seq ~tails:[ v "a"; v "b"; v "c" ] ~heads:[]) ~nstates:3 ~ntrans:3

let seq_cycles_in_order () =
  let a = v "a" and b = v "b" in
  let auto = Prim.build Prim.Seq ~tails:[ a; b ] ~heads:[] in
  let t0 = auto.Automaton.trans.(0).(0) in
  let t1 = auto.Automaton.trans.(1).(0) in
  Alcotest.(check bool) "first a" true (Iset.equal t0.Automaton.sync (iset [ a ]));
  Alcotest.(check bool) "then b" true (Iset.equal t1.Automaton.sync (iset [ b ]));
  Alcotest.(check int) "cycles" 0 t1.Automaton.target

let repl_syncs_everything () =
  let a = v "a" and x = v "x" and y = v "y" in
  let auto = Prim.build Prim.Replicator ~tails:[ a ] ~heads:[ x; y ] in
  let t = auto.Automaton.trans.(0).(0) in
  Alcotest.(check bool) "all fire" true
    (Iset.equal t.Automaton.sync (iset [ a; x; y ]))

let arity_rejected () =
  Alcotest.check_raises "sync needs 1/1"
    (Invalid_argument "Prim.build: Sync does not accept 2 tails / 1 heads")
    (fun () -> ignore (Prim.build Prim.Sync ~tails:[ v "a"; v "b" ] ~heads:[ v "c" ]))

let of_name_resolution () =
  let some k = Some k in
  let cases =
    [
      ("Sync", some Prim.Sync);
      ("Fifo1", some Prim.Fifo1);
      ("Fifo1Full", some (Prim.Fifo1_full Value.unit));
      ("Repl2", some Prim.Replicator);
      ("Repl17", some Prim.Replicator);
      ("Merger", some Prim.Merger);
      ("Merg3", some Prim.Merger);
      ("Seq2", some Prim.Seq);
      ("Router4", some Prim.Router);
      ("SyncDrain", some Prim.Sync_drain);
      ("AsyncDrain2", some Prim.Async_drain);
      ("LossySync", some Prim.Lossy_sync);
      ("SyncSpout", some Prim.Sync_spout);
      ("Filter", some (Prim.Filter "true"));
      ("Transform", some (Prim.Transform "id"));
      ("Nonsense", None);
      ("X", None);
    ]
  in
  List.iter
    (fun (name, expect) ->
      let got = Prim.of_name name in
      let eq =
        match (got, expect) with
        | None, None -> true
        | Some a, Some b -> Prim.equal_kind a b
        | _ -> false
      in
      Alcotest.(check bool) name true eq)
    cases

let polarity () =
  let a = v "a" and b = v "b" in
  let f = Prim.build Prim.Fifo1 ~tails:[ a ] ~heads:[ b ] in
  Alcotest.(check bool) "tail is source" true (Iset.mem a f.Automaton.sources);
  Alcotest.(check bool) "head is sink" true (Iset.mem b f.Automaton.sinks)

let fifo_cells_are_fresh () =
  let f1 = Prim.build Prim.Fifo1 ~tails:[ v "a" ] ~heads:[ v "b" ] in
  let f2 = Prim.build Prim.Fifo1 ~tails:[ v "c" ] ~heads:[ v "d" ] in
  Alcotest.(check bool) "distinct cells" true
    (Iset.disjoint f1.Automaton.cells f2.Automaton.cells)


(* --- Fifo_n (bounded ring buffer) ----------------------------------------- *)

let fifon_shape () =
  let auto = Prim.build (Prim.Fifo_n 3) ~tails:[ v "a" ] ~heads:[ v "b" ] in
  Alcotest.(check int) "n(n+1) states" 12 auto.Automaton.nstates;
  Alcotest.(check int) "3 cells" 3 (Iset.cardinal auto.Automaton.cells)

let fifon_rejects_capacity_one () =
  Alcotest.(check bool) "arity gate" false
    (Prim.arity_ok (Prim.Fifo_n 1) ~ntails:1 ~nheads:1)

let tests =
  [
    ("primitive shapes", `Quick, prim_shapes);
    ("seq cycles in order", `Quick, seq_cycles_in_order);
    ("replicator syncs all", `Quick, repl_syncs_everything);
    ("arity rejected", `Quick, arity_rejected);
    ("of_name", `Quick, of_name_resolution);
    ("polarity", `Quick, polarity);
    ("fifo cells fresh", `Quick, fifo_cells_are_fresh);
    ("fifon shape", `Quick, fifon_shape);
    ("fifon rejects capacity 1", `Quick, fifon_rejects_capacity_one);
  ]
