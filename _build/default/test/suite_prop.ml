(* Property language over composed connectors. *)

module Prop = Preo_verify.Prop
module Eval = Preo_lang.Eval

open Preo_support
open Preo_automata

let compose name n =
  let e = Preo_connectors.Catalog.find name in
  let c = Preo_connectors.Catalog.compiled e in
  let bindings, sources, sinks =
    Eval.boundary_of_def c.Preo.def ~lengths:(e.lengths n)
  in
  let venv = Eval.venv ~ints:[] ~arrays:bindings in
  let prims = Eval.prims venv c.Preo.flat.Preo.Ast.c_body in
  let large = Product.all (Eval.small_automata prims) in
  let keep = Iset.of_list (Array.to_list sources @ Array.to_list sinks) in
  let large =
    Automaton.trim (Automaton.hide (Iset.diff large.Automaton.vertices keep) large)
  in
  let resolve pname =
    let base, idx =
      match String.index_opt pname '[' with
      | Some i ->
        ( String.sub pname 0 i,
          int_of_string (String.sub pname (i + 1) (String.length pname - i - 2))
        )
      | None -> (pname, 1)
    in
    match List.assoc_opt base bindings with
    | Some vs when idx >= 1 && idx <= Array.length vs -> Some vs.(idx - 1)
    | _ -> None
  in
  (large, resolve)

let holds name n prop =
  let large, resolve = compose name n in
  match Prop.parse prop with
  | Error msg -> Alcotest.failf "parse %S: %s" prop msg
  | Ok p -> begin
    match Prop.check ~resolve large p with
    | Ok () -> true
    | Error _ -> false
  end

let assert_holds name n prop =
  Alcotest.(check bool) (name ^ ": " ^ prop) true (holds name n prop)

let assert_fails name n prop =
  Alcotest.(check bool) (name ^ ": not " ^ prop) false (holds name n prop)

let parse_errors () =
  let bad s =
    match Prop.parse s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected parse error: %s" s
  in
  bad "";
  bad "nonsense(a)";
  bad "live(a) &&";
  bad "never(a)";
  bad "sequence(a)";
  bad "live(a) extra"

let parse_pp_roundtrip () =
  let src = "deadlock-free && live(tl[1]) && sequence(tl[1], tl[2], hd)" in
  match Prop.parse src with
  | Error m -> Alcotest.fail m
  | Ok p ->
    let printed = Format.asprintf "%a" Prop.pp p in
    (match Prop.parse printed with
     | Ok p2 ->
       Alcotest.(check string) "pp fixpoint" printed
         (Format.asprintf "%a" Prop.pp p2)
     | Error m -> Alcotest.fail m)

let router_props () =
  assert_holds "router" 3 "deadlock-free && live(tl) && live(hd[1])";
  assert_holds "router" 3 "never(hd[1], hd[2]) && together(tl, tl)";
  assert_fails "router" 3 "together(hd[1], hd[2])";
  assert_fails "router" 3 "dead(hd[3])"

let replicator_props () =
  assert_holds "replicator" 3 "together(hd[1], hd[2]) && together(tl, hd[3])";
  assert_fails "replicator" 3 "never(hd[1], hd[2])"

let sequencer_props () =
  assert_holds "sequencer" 3
    "precedes(hd[1], hd[2]) && precedes(hd[2], hd[3]) && sequence(hd[1], hd[2], hd[3], hd[1])";
  assert_fails "sequencer" 3 "precedes(hd[2], hd[1])";
  (* the ring cycles, so hd[1] recurs (sequence allows steps in between) *)
  assert_holds "sequencer" 3 "sequence(hd[1], hd[2], hd[3], hd[1], hd[2])"

let ordered_merger_props () =
  assert_holds "ordered_merger" 3
    "deadlock-free && precedes(hd[1], hd[2]) && precedes(tl[1], hd[1])";
  assert_fails "ordered_merger" 3 "precedes(hd[3], hd[1])"

let token_ring_props () =
  (* grant i+1 is fed by station i's pass-on: a structural precedence; note
     that hd[1]-before-hd[2] is NOT structural (an undisciplined station
     could pass the token before taking its grant), the connector only
     forces the data dependency below. *)
  assert_holds "token_ring" 3 "live(hd[3]) && precedes(tl[1], hd[2])";
  assert_fails "token_ring" 3 "precedes(hd[1], hd[2])"

let unknown_port_reported () =
  let large, resolve = compose "router" 2 in
  match Prop.parse "live(bogus)" with
  | Error m -> Alcotest.fail m
  | Ok p -> begin
    match Prop.check ~resolve large p with
    | Error msg ->
      Alcotest.(check bool) "mentions port" true
        (String.length msg > 0)
    | Ok () -> Alcotest.fail "unknown port must be an error"
  end

let tests =
  [
    ("parse errors", `Quick, parse_errors);
    ("parse/pp roundtrip", `Quick, parse_pp_roundtrip);
    ("router", `Quick, router_props);
    ("replicator", `Quick, replicator_props);
    ("sequencer", `Quick, sequencer_props);
    ("ordered_merger", `Quick, ordered_merger_props);
    ("token_ring", `Quick, token_ring_props);
    ("unknown port reported", `Quick, unknown_port_reported);
  ]
