(* Randomized cross-checks: for randomly generated deterministic connector
   networks, the existing (AOT), new (JIT), bounded-cache, and partitioned
   runtimes must transport exactly the same data and count the same number
   of global steps. *)

open Preo_support
open Preo_automata
open Preo_runtime

let configs =
  [
    ("existing", Config.existing);
    ("jit", Config.new_jit);
    ("cached2", Config.new_jit_cached 2);
    ("partitioned", Config.new_partitioned);
  ]

(* A random linear network: chain of stages, each sync / fifo1 / transform /
   fifo1full; deterministic end-to-end behaviour. *)
type stage = St_sync | St_fifo | St_incr | St_full

let build_chain rng len =
  let stages = List.init len (fun _ ->
      match Rng.int rng 4 with
      | 0 -> St_sync
      | 1 -> St_fifo
      | 2 -> St_incr
      | _ -> St_full)
  in
  let a = Vertex.fresh "in" in
  let rec go tail = function
    | [] -> ([], tail)
    | st :: rest ->
      let head = Vertex.fresh "v" in
      let auto =
        match st with
        | St_sync -> Preo_reo.Prim.build Preo_reo.Prim.Sync ~tails:[ tail ] ~heads:[ head ]
        | St_fifo -> Preo_reo.Prim.build Preo_reo.Prim.Fifo1 ~tails:[ tail ] ~heads:[ head ]
        | St_incr ->
          Preo_reo.Prim.build (Preo_reo.Prim.Transform "incr") ~tails:[ tail ] ~heads:[ head ]
        | St_full ->
          Preo_reo.Prim.build (Preo_reo.Prim.Fifo1_full (Value.int 0)) ~tails:[ tail ]
            ~heads:[ head ]
      in
      let autos, last = go head rest in
      (auto :: autos, last)
  in
  let autos, b = go a stages in
  (autos, a, b, stages)

let run_chain config autos a b nitems =
  let conn = Connector.create ~config ~sources:[| a |] ~sinks:[| b |] autos in
  let got = ref [] in
  Task.run_all
    [
      (fun () ->
        for i = 1 to nitems do
          Port.send (Connector.outport conn a) (Value.int (i * 100))
        done);
      (fun () ->
        (* initialized fifos inject extra items *)
        let extra =
          Array.fold_left (fun acc _ -> acc) 0 [||]
        in
        ignore extra;
        for _ = 1 to nitems do
          got := Value.to_int (Port.recv (Connector.inport conn b)) :: !got
        done);
    ];
  let steps = Connector.steps conn in
  Connector.poison conn "done";
  (List.rev !got, steps)

let chains_agree () =
  let rng = Rng.create 2024 in
  for _case = 1 to 12 do
    let len = 1 + Rng.int rng 6 in
    let seedlen = len in
    (* build one description, replay it for each config with fresh vertices *)
    let descr_rng = Rng.copy rng in
    ignore seedlen;
    let results =
      List.map
        (fun (name, config) ->
          let rng' = Rng.copy descr_rng in
          let autos, a, b, _stages = build_chain rng' len in
          let r = run_chain config autos a b 8 in
          (name, r))
        configs
    in
    (* advance the shared rng identically *)
    ignore (build_chain rng len);
    match results with
    | (_, first) :: rest ->
      List.iter
        (fun (name, r) ->
          Alcotest.(check (pair (list int) int))
            (Printf.sprintf "case len=%d config=%s" len name)
            first r)
        rest
    | [] -> ()
  done

(* Random fan-out/fan-in: replicator into k parallel fifo+transform lanes,
   then results read lane by lane (deterministic per lane). *)
let fanout_agree () =
  let rng = Rng.create 77 in
  for _case = 1 to 6 do
    let k = 2 + Rng.int rng 4 in
    let incr_lane = Rng.int rng k in
    let run (config : Config.t) =
      let a = Vertex.fresh "a" in
      let mids = Array.init k (fun _ -> Vertex.fresh "m") in
      let outs = Array.init k (fun _ -> Vertex.fresh "o") in
      let autos =
        Preo_reo.Prim.build Preo_reo.Prim.Replicator ~tails:[ a ]
          ~heads:(Array.to_list mids)
        :: List.init k (fun i ->
               if i = incr_lane then
                 Preo_reo.Prim.build (Preo_reo.Prim.Transform "incr")
                   ~tails:[ mids.(i) ] ~heads:[ outs.(i) ]
               else
                 Preo_reo.Prim.build Preo_reo.Prim.Fifo1 ~tails:[ mids.(i) ]
                   ~heads:[ outs.(i) ])
      in
      let conn = Connector.create ~config ~sources:[| a |] ~sinks:outs autos in
      let lanes = Array.make k [] in
      let lock = Mutex.create () in
      Task.run_all
        ((fun () ->
           for i = 1 to 5 do
             Port.send (Connector.outport conn a) (Value.int i)
           done)
        :: List.init k (fun i -> fun () ->
               for _ = 1 to 5 do
                 let x = Value.to_int (Port.recv (Connector.inport conn outs.(i))) in
                 Mutex.lock lock;
                 lanes.(i) <- x :: lanes.(i);
                 Mutex.unlock lock
               done));
      Connector.poison conn "done";
      Array.map List.rev lanes
    in
    let reference = run Config.existing in
    List.iter
      (fun (name, config) ->
        let got = run config in
        Array.iteri
          (fun i lane ->
            Alcotest.(check (list int))
              (Printf.sprintf "k=%d lane=%d %s" k i name)
              reference.(i) lane)
          got)
      [ ("jit", Config.new_jit); ("partitioned", Config.new_partitioned) ]
  done

let tests =
  [
    ("random chains agree across runtimes", `Quick, chains_agree);
    ("random fanouts agree across runtimes", `Quick, fanout_agree);
  ]
