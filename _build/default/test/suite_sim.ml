(* Deterministic simulator + nonblocking port operations. *)

module Sim = Preo_runtime.Sim

open Preo_support
open Preo_automata
open Preo_runtime

let v = Vertex.fresh
let prim = Preo_reo.Prim.build
let of_pp = Alcotest.of_pp

let fifo_roundtrip () =
  let a = v "a" and b = v "b" in
  let sim =
    Sim.create ~sources:[| a |] ~sinks:[| b |]
      [ prim Preo_reo.Prim.Fifo1 ~tails:[ a ] ~heads:[ b ] ]
  in
  Alcotest.(check bool) "stuck initially" true (Sim.step sim = None);
  Sim.offer sim a (Value.int 7);
  (match Sim.step sim with
   | Some ev ->
     Alcotest.(check bool) "consumed a" true (ev.Sim.ev_consumed = [ a ]);
     Alcotest.(check bool) "nothing delivered" true (ev.Sim.ev_delivered = [])
   | None -> Alcotest.fail "accept should fire");
  Sim.demand sim b;
  (match Sim.step sim with
   | Some ev ->
     Alcotest.(check bool) "delivered 7" true
       (ev.Sim.ev_delivered = [ (b, Value.int 7) ])
   | None -> Alcotest.fail "emit should fire");
  Alcotest.(check int) "two steps" 2 (Sim.steps sim)

let ordered_merger_trace () =
  (* Script a full round of the paper's connector and check the delivery
     order deterministically. *)
  let e = Preo_connectors.Catalog.find "ordered_merger" in
  let c = Preo_connectors.Catalog.compiled e in
  let bindings, sources, sinks =
    Preo_lang.Eval.boundary_of_def c.Preo.def ~lengths:(e.lengths 3)
  in
  let venv = Preo_lang.Eval.venv ~ints:[] ~arrays:bindings in
  let mediums = Preo_lang.Template.instantiate c.Preo.template venv in
  let sim = Sim.create ~sources ~sinks mediums in
  (* all three producers offer; consumer demands all three slots *)
  Array.iteri (fun i s -> Sim.offer sim s (Value.int (100 + i))) sources;
  Array.iter (fun s -> Sim.demand sim s) sinks;
  let events = Sim.run sim in
  let delivered = List.concat_map (fun ev -> ev.Sim.ev_delivered) events in
  Alcotest.(check (list int)) "rank order"
    [ 100; 101; 102 ]
    (List.map (fun (_, x) -> Value.to_int x) delivered)

let random_policy_still_correct () =
  (* The sequencer has one enabled transition at a time: any policy yields
     the same trace. *)
  let e = Preo_connectors.Catalog.find "sequencer" in
  let c = Preo_connectors.Catalog.compiled e in
  let run policy =
    let bindings, sources, sinks =
      Preo_lang.Eval.boundary_of_def c.Preo.def ~lengths:(e.lengths 3)
    in
    let venv = Preo_lang.Eval.venv ~ints:[] ~arrays:bindings in
    let mediums = Preo_lang.Template.instantiate c.Preo.template venv in
    let sim = Sim.create ~policy ~sources ~sinks mediums in
    for _ = 1 to 2 do
      Array.iter (fun s -> Sim.demand sim s) sinks
    done;
    List.map
      (fun ev -> List.length ev.Sim.ev_delivered)
      (Sim.run sim)
  in
  Alcotest.(check (list int)) "same shape" (run Sim.First) (run (Sim.Random 5));
  Alcotest.(check int) "6 grants" 6 (List.length (run Sim.First))

let sim_matches_engine_steps () =
  (* For a deterministic pipeline the simulator and the engine agree on the
     number of global steps. *)
  let build () =
    let a = v "a" and m = v "m" and b = v "b" in
    ( [
        prim Preo_reo.Prim.Fifo1 ~tails:[ a ] ~heads:[ m ];
        prim Preo_reo.Prim.Fifo1 ~tails:[ m ] ~heads:[ b ];
      ],
      a, b )
  in
  let mediums, a, b = build () in
  let sim = Sim.create ~sources:[| a |] ~sinks:[| b |] mediums in
  for i = 1 to 5 do Sim.offer sim a (Value.int i) done;
  for _ = 1 to 5 do Sim.demand sim b done;
  ignore (Sim.run sim);
  let mediums2, a2, b2 = build () in
  let conn = Connector.create ~sources:[| a2 |] ~sinks:[| b2 |] mediums2 in
  Task.run_all
    [
      (fun () -> for i = 1 to 5 do Port.send (Connector.outport conn a2) (Value.int i) done);
      (fun () -> for _ = 1 to 5 do ignore (Port.recv (Connector.inport conn b2)) done);
    ];
  Alcotest.(check int) "same steps" (Connector.steps conn) (Sim.steps sim)

(* --- nonblocking ops ------------------------------------------------------ *)

let try_ops_on_fifo () =
  let a = v "a" and b = v "b" in
  let conn =
    Connector.create ~sources:[| a |] ~sinks:[| b |]
      [ prim Preo_reo.Prim.Fifo1 ~tails:[ a ] ~heads:[ b ] ]
  in
  let o = Connector.outport conn a and i = Connector.inport conn b in
  Alcotest.(check (option (of_pp Value.pp))) "empty: no recv" None (Port.try_recv i);
  Alcotest.(check bool) "send into empty" true (Port.try_send o (Value.int 1));
  Alcotest.(check bool) "full: send refused" false (Port.try_send o (Value.int 2));
  Alcotest.(check (option (of_pp Value.pp))) "recv the one" (Some (Value.int 1))
    (Port.try_recv i);
  Alcotest.(check (option (of_pp Value.pp))) "empty again" None (Port.try_recv i);
  Alcotest.(check int) "2 steps" 2 (Connector.steps conn)

let try_send_on_sync_needs_partner () =
  let a = v "a" and b = v "b" in
  let conn =
    Connector.create ~sources:[| a |] ~sinks:[| b |]
      [ prim Preo_reo.Prim.Sync ~tails:[ a ] ~heads:[ b ] ]
  in
  let o = Connector.outport conn a and i = Connector.inport conn b in
  Alcotest.(check bool) "no partner: refused" false (Port.try_send o Value.unit);
  (* with a blocked receiver the nonblocking send completes *)
  let recvd = Task.spawn (fun () -> ignore (Port.recv i)) in
  Thread.delay 0.02;
  Alcotest.(check bool) "partner waiting: accepted" true
    (Port.try_send o Value.unit);
  Task.join recvd

let withdrawn_offer_leaves_no_residue () =
  let a = v "a" and b = v "b" in
  let conn =
    Connector.create ~sources:[| a |] ~sinks:[| b |]
      [ prim Preo_reo.Prim.Sync ~tails:[ a ] ~heads:[ b ] ]
  in
  let o = Connector.outport conn a and i = Connector.inport conn b in
  Alcotest.(check bool) "refused" false (Port.try_send o (Value.int 1));
  (* the withdrawn offer must not satisfy a later receive *)
  Alcotest.(check (option (of_pp Value.pp))) "no ghost datum" None
    (Port.try_recv i);
  Alcotest.(check int) "no steps" 0 (Connector.steps conn)

let tests =
  [
    ("sim: fifo roundtrip", `Quick, fifo_roundtrip);
    ("sim: ordered merger trace", `Quick, ordered_merger_trace);
    ("sim: policies agree when deterministic", `Quick, random_policy_still_correct);
    ("sim matches engine step count", `Quick, sim_matches_engine_steps);
    ("try ops on fifo", `Quick, try_ops_on_fifo);
    ("try send on sync needs partner", `Quick, try_send_on_sync_needs_partner);
    ("withdrawn offer leaves no residue", `Quick, withdrawn_offer_leaves_no_residue);
  ]
