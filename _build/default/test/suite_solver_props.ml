(* Property tests for the command solver: random flow-shaped constraints
   solve and execute to the expected values; random inconsistencies are
   rejected; atom order never matters (the product concatenates constraints
   in arbitrary fold order). *)

open Preo_support
open Preo_automata

(* A random "flow": source port -> chain of [incr]-applications and glue
   equalities -> sink port (+ optionally a cell write). The expected sink
   value is the input plus the number of [incr]s. *)
type flow = {
  atoms : Constr.t;
  source : Vertex.t;
  sink : Vertex.t;
  cell : int option;
  incrs : int;
}

let gen_flow rng =
  let source = Vertex.fresh "src" in
  let sink = Vertex.fresh "snk" in
  let len = 1 + Rng.int rng 5 in
  let rec build prev i atoms incrs =
    if i >= len then (prev, atoms, incrs)
    else begin
      let next = Vertex.fresh "mid" in
      if Rng.bool rng then
        build next (i + 1)
          (Constr.(Port next === App ("incr", Port prev)) :: atoms)
          (incrs + 1)
      else
        build next (i + 1) (Constr.(Port next === Port prev) :: atoms) incrs
    end
  in
  let last, atoms, incrs = build source 0 [] 0 in
  let atoms = Constr.(Port sink === Port last) :: atoms in
  let cell, atoms =
    if Rng.bool rng then begin
      let c = Cell.fresh "obs" in
      (Some c, Constr.(Post c === Port last) :: atoms)
    end
    else (None, atoms)
  in
  { atoms; source; sink; cell; incrs }

let run_flow flow input ~shuffle_seed =
  let atoms =
    match shuffle_seed with
    | None -> flow.atoms
    | Some seed ->
      let a = Array.of_list flow.atoms in
      Rng.shuffle (Rng.create seed) a;
      Array.to_list a
  in
  match
    Command.solve ~readable:(Iset.singleton flow.source)
      ~writable:(Iset.singleton flow.sink) atoms
  with
  | Error msg -> Error msg
  | Ok cmd ->
    let delivered = ref None and written = ref None in
    let env =
      {
        Command.read_send = (fun _ -> Value.int input);
        read_cell = (fun _ -> failwith "no cell reads in flows");
        write_cell = (fun _ v -> written := Some v);
        deliver = (fun _ v -> delivered := Some v);
      }
    in
    Command.execute cmd env;
    Ok (!delivered, !written)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"solver: flows deliver the composed value" ~count:200
      (pair (int_range 0 10_000) (int_range (-1000) 1000))
      (fun (seed, input) ->
        let flow = gen_flow (Rng.create seed) in
        match run_flow flow input ~shuffle_seed:None with
        | Error _ -> false
        | Ok (delivered, written) ->
          let expect = Value.int (input + flow.incrs) in
          (match delivered with Some v -> Value.equal v expect | None -> false)
          && (match (flow.cell, written) with
             | None, None -> true
             | Some _, Some v -> Value.equal v expect
             | _ -> false));
    Test.make ~name:"solver: atom order irrelevant" ~count:200
      (pair (int_range 0 10_000) (int_range 0 10_000))
      (fun (seed, shuffle) ->
        let flow = gen_flow (Rng.create seed) in
        run_flow flow 5 ~shuffle_seed:None
        = run_flow flow 5 ~shuffle_seed:(Some shuffle));
    Test.make ~name:"solver: conflicting constants rejected" ~count:100
      (int_range 0 10_000)
      (fun seed ->
        let flow = gen_flow (Rng.create seed) in
        let poisoned =
          Constr.(Port flow.source === Const (Value.int 1))
          :: Constr.(Port flow.source === Const (Value.int 2))
          :: flow.atoms
        in
        match
          Command.solve ~readable:(Iset.singleton flow.source)
            ~writable:(Iset.singleton flow.sink) poisoned
        with
        | Error _ -> true
        | Ok _ -> false);
    Test.make ~name:"solver: constant pins become equality guards" ~count:100
      (pair (int_range 0 10_000) (int_range (-50) 50))
      (fun (seed, pin) ->
        (* Pinning the source to a constant must yield a command whose
           guards pass iff the input equals the pin. *)
        let flow = gen_flow (Rng.create seed) in
        let pinned =
          Constr.(Port flow.source === Const (Value.int pin)) :: flow.atoms
        in
        match
          Command.solve ~readable:(Iset.singleton flow.source)
            ~writable:(Iset.singleton flow.sink) pinned
        with
        | Error _ -> false
        | Ok cmd ->
          let env input =
            {
              Command.read_send = (fun _ -> Value.int input);
              read_cell = (fun _ -> assert false);
              write_cell = (fun _ _ -> ());
              deliver = (fun _ _ -> ());
            }
          in
          Command.guards_hold cmd (env pin)
          && not (Command.guards_hold cmd (env (pin + 1))));
  ]

let tests = List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests
