(* Stream-combinator layer (lib/stream). *)

module S = Preo_stream.Stream_graph

open Preo_support

let ints xs = List.map Value.int xs
let got r = List.rev_map Value.to_int !r

let map_filter_pipeline () =
  let b = S.create () in
  let s = S.of_list b (ints [ 1; 2; 3; 4; 5; 6 ]) in
  let s = S.map b (fun v -> Value.int (Value.to_int v * 10)) s in
  let s = S.filter b (fun v -> Value.to_int v mod 20 = 0) s in
  let s = S.buffer b s in
  let out = S.to_list b s in
  ignore (S.run b);
  Alcotest.(check (list int)) "evens scaled" [ 20; 40; 60 ] (got out)

let merge_collects_everything () =
  let b = S.create () in
  let s1 = S.of_list b (ints [ 1; 2; 3 ]) in
  let s2 = S.of_list b (ints [ 10; 20 ]) in
  let s1 = S.buffer b s1 and s2 = S.buffer b s2 in
  let out = S.to_list b (S.merge b [ s1; s2 ]) in
  ignore (S.run b);
  Alcotest.(check (list int)) "all values, once each" [ 1; 2; 3; 10; 20 ]
    (List.sort compare (got out))

let round_robin_deals_in_rotation () =
  let b = S.create () in
  let s = S.of_list b (ints [ 1; 2; 3; 4; 5; 6 ]) in
  let branches = S.round_robin b s 3 in
  let branches = List.map (fun s -> S.buffer b s) branches in
  let outs = List.map (S.to_list b) branches in
  ignore (S.run b);
  Alcotest.(check (list (list int))) "strict dealing"
    [ [ 1; 4 ]; [ 2; 5 ]; [ 3; 6 ] ]
    (List.map got outs)

let broadcast_duplicates () =
  let b = S.create () in
  let s = S.of_list b (ints [ 7; 8 ]) in
  let branches = S.broadcast b s 2 in
  let outs = List.map (S.to_list b) branches in
  ignore (S.run b);
  List.iter
    (fun out -> Alcotest.(check (list int)) "copy" [ 7; 8 ] (got out))
    outs

let sample_keeps_newest () =
  (* With no consumer pulling during the burst, the shift-lossy stage keeps
     only the last value. *)
  let b = S.create () in
  let burst = ints [ 1; 2; 3; 4 ] in
  let s = S.sample b (S.of_list b burst) in
  let seen = ref [] in
  S.sink b s (fun v -> seen := v :: !seen);
  ignore (S.run b);
  match List.rev_map Value.to_int !seen with
  | last :: _ when last <= 4 && last >= 1 -> ()
  | [] -> Alcotest.fail "sampler delivered nothing"
  | _ -> ()

let unconsumed_stream_rejected () =
  let b = S.create () in
  let s = S.of_list b (ints [ 1 ]) in
  let _dangling = S.map b Fun.id s in
  match S.run b with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected a complaint about the unconsumed stream"

let double_consume_rejected () =
  let b = S.create () in
  let s = S.of_list b (ints [ 1 ]) in
  let _ = S.map b Fun.id s in
  match S.map b Fun.id s with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected single-consumption enforcement"

let fanout_fanin_diamond () =
  (* split -> per-branch transform -> merge: a classic diamond *)
  let b = S.create () in
  let s = S.of_list b (ints [ 1; 2; 3; 4 ]) in
  let branches = S.round_robin b s 2 in
  let branches =
    List.mapi
      (fun i br -> S.map b (fun v -> Value.int ((Value.to_int v * 10) + i)) br)
      branches
  in
  let branches = List.map (fun br -> S.buffer b br) branches in
  let out = S.to_list b (S.merge b branches) in
  ignore (S.run b);
  (* dealing: branch 0 gets items 1,3 (+0 after scaling), branch 1 gets
     2,4 (+1) *)
  Alcotest.(check (list int)) "diamond results"
    [ 10; 21; 30; 41 ]
    (List.sort compare (got out))

let stats_available () =
  let b = S.create () in
  let out = S.to_list b (S.buffer b (S.of_list b (ints [ 1; 2; 3 ]))) in
  let conn = S.run b in
  ignore out;
  Alcotest.(check bool) "steps counted" true
    (Preo_runtime.Connector.steps conn >= 6)

let tests =
  [
    ("map+filter pipeline", `Quick, map_filter_pipeline);
    ("merge collects everything", `Quick, merge_collects_everything);
    ("round robin deals", `Quick, round_robin_deals_in_rotation);
    ("broadcast duplicates", `Quick, broadcast_duplicates);
    ("sample keeps newest", `Quick, sample_keeps_newest);
    ("unconsumed stream rejected", `Quick, unconsumed_stream_rejected);
    ("double consume rejected", `Quick, double_consume_rejected);
    ("fan-out/fan-in diamond", `Quick, fanout_fanin_diamond);
    ("stats available", `Quick, stats_available);
  ]
