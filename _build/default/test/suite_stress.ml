(* Concurrency stress: many threads hammering one engine; totals and
   per-lane orders must survive contention, repeatedly, under every
   runtime configuration. *)

open Preo_support
open Preo_automata
open Preo_runtime

let v = Vertex.fresh
let prim = Preo_reo.Prim.build

let crossbar_conservation () =
  (* n senders, n receivers through one buffer: total sent = total
     received, every tagged value exactly once. *)
  List.iter
    (fun (cname, config) ->
      let n = 6 and per = 40 in
      let tls = Array.init n (fun i -> v (Printf.sprintf "t%d" i)) in
      let hds = Array.init n (fun i -> v (Printf.sprintf "h%d" i)) in
      let a = v "mid_a" and bvx = v "mid_b" in
      let autos =
        [
          prim Preo_reo.Prim.Merger ~tails:(Array.to_list tls) ~heads:[ a ];
          prim Preo_reo.Prim.Fifo1 ~tails:[ a ] ~heads:[ bvx ];
          prim Preo_reo.Prim.Router ~tails:[ bvx ] ~heads:(Array.to_list hds);
        ]
      in
      let conn = Connector.create ~config ~sources:tls ~sinks:hds autos in
      let received = Array.make (n * per) 0 in
      let count = Atomic.make 0 in
      let consumers =
        List.init n (fun i ->
            Task.spawn (fun () ->
                while true do
                  let x = Value.to_int (Port.recv (Connector.inport conn hds.(i))) in
                  received.(x) <- received.(x) + 1;
                  Atomic.incr count
                done))
      in
      let producers =
        List.init n (fun i ->
            Task.spawn (fun () ->
                for r = 0 to per - 1 do
                  Port.send (Connector.outport conn tls.(i)) (Value.int ((i * per) + r))
                done))
      in
      List.iter Task.join producers;
      let deadline = Clock.now () +. 5.0 in
      while Atomic.get count < n * per && Clock.now () < deadline do
        Thread.delay 0.002
      done;
      Connector.poison conn "done";
      List.iter (fun t -> try Task.join t with _ -> ()) consumers;
      Alcotest.(check int) (cname ^ " total") (n * per) (Atomic.get count);
      Array.iteri
        (fun tag c ->
          if c <> 1 then Alcotest.failf "%s: tag %d seen %d times" cname tag c)
        received)
    [
      ("existing", Config.existing);
      ("jit", Config.new_jit);
      ("cached4", Config.new_jit_cached 4);
      ("partitioned", Config.new_partitioned);
    ]

let repeated_setup_teardown () =
  (* Rapid create/use/poison cycles must not leak wedged engine state. *)
  for round = 1 to 40 do
    let a = v "sa" and b = v "sb" in
    let conn =
      Connector.create ~sources:[| a |] ~sinks:[| b |]
        [ prim Preo_reo.Prim.Fifo1 ~tails:[ a ] ~heads:[ b ] ]
    in
    Task.run_all
      [
        (fun () -> Port.send (Connector.outport conn a) (Value.int round));
        (fun () -> ignore (Port.recv (Connector.inport conn b)));
      ];
    Connector.poison conn "cycle"
  done

let poison_under_contention () =
  (* Poison while many threads are mid-operation: everyone must return. *)
  for _round = 1 to 10 do
    let n = 8 in
    let tls = Array.init n (fun i -> v (Printf.sprintf "pt%d" i)) in
    let hd = v "ph" in
    let conn =
      Connector.create ~sources:tls ~sinks:[| hd |]
        [ prim Preo_reo.Prim.Merger ~tails:(Array.to_list tls) ~heads:[ hd ] ]
    in
    let blockers =
      List.init n (fun i ->
          Task.spawn (fun () ->
              while true do
                Port.send (Connector.outport conn tls.(i)) Value.unit
              done))
    in
    (* nobody receives; everyone piles up; then poison *)
    Thread.delay 0.005;
    Connector.poison conn "stress";
    List.iter (fun t -> try Task.join t with _ -> ()) blockers
  done

let tests =
  [
    ("crossbar conservation (all configs)", `Slow, crossbar_conservation);
    ("repeated setup/teardown", `Quick, repeated_setup_teardown);
    ("poison under contention", `Quick, poison_under_contention);
  ]
