(* Unit and property tests for the support substrate. *)

open Preo_support

module IS = Set.Make (Int)

let iset_of_model m = Iset.of_list (IS.elements m)

let check_same_set what m s =
  Alcotest.(check (list int)) what (IS.elements m) (Iset.elements s)

(* --- Iset: property tests against the stdlib set model ------------------- *)

let gen_small_list = QCheck.(small_list (int_range 0 40))

let qcheck_iset =
  let open QCheck in
  [
    Test.make ~name:"iset add = model add" ~count:500
      (pair gen_small_list (int_range 0 40))
      (fun (xs, x) ->
        let m = IS.add x (IS.of_list xs) in
        let s = Iset.add x (Iset.of_list xs) in
        IS.elements m = Iset.elements s);
    Test.make ~name:"iset remove = model remove" ~count:500
      (pair gen_small_list (int_range 0 40))
      (fun (xs, x) ->
        let m = IS.remove x (IS.of_list xs) in
        let s = Iset.remove x (Iset.of_list xs) in
        IS.elements m = Iset.elements s);
    Test.make ~name:"iset union = model union" ~count:500
      (pair gen_small_list gen_small_list)
      (fun (xs, ys) ->
        IS.elements (IS.union (IS.of_list xs) (IS.of_list ys))
        = Iset.elements (Iset.union (Iset.of_list xs) (Iset.of_list ys)));
    Test.make ~name:"iset inter = model inter" ~count:500
      (pair gen_small_list gen_small_list)
      (fun (xs, ys) ->
        IS.elements (IS.inter (IS.of_list xs) (IS.of_list ys))
        = Iset.elements (Iset.inter (Iset.of_list xs) (Iset.of_list ys)));
    Test.make ~name:"iset diff = model diff" ~count:500
      (pair gen_small_list gen_small_list)
      (fun (xs, ys) ->
        IS.elements (IS.diff (IS.of_list xs) (IS.of_list ys))
        = Iset.elements (Iset.diff (Iset.of_list xs) (Iset.of_list ys)));
    Test.make ~name:"iset disjoint = model" ~count:500
      (pair gen_small_list gen_small_list)
      (fun (xs, ys) ->
        IS.disjoint (IS.of_list xs) (IS.of_list ys)
        = Iset.disjoint (Iset.of_list xs) (Iset.of_list ys));
    Test.make ~name:"iset subset = model" ~count:500
      (pair gen_small_list gen_small_list)
      (fun (xs, ys) ->
        IS.subset (IS.of_list xs) (IS.of_list ys)
        = Iset.subset (Iset.of_list xs) (Iset.of_list ys));
    Test.make ~name:"iset mem = model" ~count:500
      (pair gen_small_list (int_range 0 40))
      (fun (xs, x) -> IS.mem x (IS.of_list xs) = Iset.mem x (Iset.of_list xs));
    Test.make ~name:"iset compare consistent with equal" ~count:500
      (pair gen_small_list gen_small_list)
      (fun (xs, ys) ->
        let a = Iset.of_list xs and b = Iset.of_list ys in
        Iset.equal a b = (Iset.compare a b = 0));
  ]

let iset_units () =
  let s = Iset.of_list [ 5; 1; 3; 1 ] in
  Alcotest.(check (list int)) "of_list sorts+dedups" [ 1; 3; 5 ] (Iset.elements s);
  Alcotest.(check int) "cardinal" 3 (Iset.cardinal s);
  Alcotest.(check int) "min" 1 (Iset.min_elt s);
  Alcotest.(check int) "max" 5 (Iset.max_elt s);
  Alcotest.(check bool) "empty disjoint" true (Iset.disjoint Iset.empty s);
  check_same_set "add below min" (IS.of_list [ 0; 1; 3; 5 ]) (Iset.add 0 s);
  check_same_set "add middle" (IS.of_list [ 1; 2; 3; 5 ]) (Iset.add 2 s);
  check_same_set "add above max" (IS.of_list [ 1; 3; 5; 9 ]) (Iset.add 9 s);
  Alcotest.(check bool) "add existing is identity" true
    (Iset.equal s (Iset.add 3 s));
  Alcotest.check_raises "choose empty" Not_found (fun () ->
      ignore (Iset.choose Iset.empty))

(* --- Lru ------------------------------------------------------------------ *)

module L = Lru.Make (struct
  type t = int

  let equal = Int.equal
  let hash = Hashtbl.hash
end)

let lru_basic () =
  let c = L.create ~capacity:2 in
  L.add c 1 "a";
  L.add c 2 "b";
  Alcotest.(check (option string)) "hit 1" (Some "a") (L.find c 1);
  L.add c 3 "c" (* evicts 2, the LRU *);
  Alcotest.(check (option string)) "2 evicted" None (L.find c 2);
  Alcotest.(check (option string)) "1 kept" (Some "a") (L.find c 1);
  Alcotest.(check (option string)) "3 kept" (Some "c") (L.find c 3);
  Alcotest.(check int) "evictions" 1 (L.evictions c);
  Alcotest.(check int) "length" 2 (L.length c)

let lru_unbounded () =
  let c = L.create ~capacity:0 in
  for i = 1 to 100 do
    L.add c i (string_of_int i)
  done;
  Alcotest.(check int) "no evictions" 0 (L.evictions c);
  Alcotest.(check int) "all kept" 100 (L.length c);
  Alcotest.(check (option string)) "find 57" (Some "57") (L.find c 57)

let lru_update () =
  let c = L.create ~capacity:2 in
  L.add c 1 "a";
  L.add c 1 "a'";
  Alcotest.(check (option string)) "updated" (Some "a'") (L.find c 1);
  Alcotest.(check int) "no dup" 1 (L.length c)

let qcheck_lru =
  let open QCheck in
  [
    Test.make ~name:"lru never exceeds capacity" ~count:200
      (pair (int_range 1 8) (small_list (int_range 0 20)))
      (fun (cap, keys) ->
        let c = L.create ~capacity:cap in
        List.iter (fun k -> L.add c k k) keys;
        L.length c <= cap);
    Test.make ~name:"lru find returns last added value" ~count:200
      (small_list (pair (int_range 0 5) (int_range 0 1000)))
      (fun pairs ->
        let c = L.create ~capacity:0 in
        List.iter (fun (k, v) -> L.add c k v) pairs;
        List.for_all
          (fun (k, _) ->
            let expect =
              List.fold_left
                (fun acc (k', v) -> if k = k' then Some v else acc)
                None pairs
            in
            L.find c k = expect)
          pairs);
  ]

(* --- Union_find ----------------------------------------------------------- *)

let uf_basic () =
  let u = Union_find.create 6 in
  Union_find.union u 0 1;
  Union_find.union u 2 3;
  Union_find.union u 1 3;
  Alcotest.(check bool) "0~3" true (Union_find.same u 0 3);
  Alcotest.(check bool) "0!~4" false (Union_find.same u 0 4);
  let classes = Union_find.classes u in
  Alcotest.(check int) "3 classes" 3 (List.length classes);
  Alcotest.(check (list int)) "first class" [ 0; 1; 2; 3 ]
    (List.sort compare (List.hd classes))

(* --- Rng ------------------------------------------------------------------ *)

let rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next a) (Rng.next b)
  done

let rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.int r 10 in
    if x < 0 || x >= 10 then Alcotest.fail "int out of bounds";
    let f = Rng.float r 2.5 in
    if f < 0.0 || f >= 2.5 then Alcotest.fail "float out of bounds"
  done

let rng_shuffle_permutes () =
  let r = Rng.create 3 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

(* --- Stats ---------------------------------------------------------------- *)

let feq = Alcotest.float 1e-9

let stats_basic () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.check feq "mean" 2.5 (Stats.mean xs);
  Alcotest.check feq "median" 2.5 (Stats.median xs);
  Alcotest.check feq "sum" 10.0 (Stats.sum xs);
  Alcotest.check feq "min" 1.0 (Stats.min xs);
  Alcotest.check feq "max" 4.0 (Stats.max xs);
  Alcotest.check feq "p0" 1.0 (Stats.percentile xs 0.0);
  Alcotest.check feq "p100" 4.0 (Stats.percentile xs 100.0);
  Alcotest.check (Alcotest.float 1e-6) "stdev"
    (sqrt (5.0 /. 3.0))
    (Stats.stdev xs)

let stats_degenerate () =
  Alcotest.check feq "stdev singleton" 0.0 (Stats.stdev [| 5.0 |]);
  Alcotest.(check bool) "mean empty is nan" true (Float.is_nan (Stats.mean [||]))

(* --- Dyn ------------------------------------------------------------------ *)

let dyn_basic () =
  let d = Dyn.create () in
  for i = 0 to 99 do
    let idx = Dyn.add d (i * 2) in
    Alcotest.(check int) "index" i idx
  done;
  Alcotest.(check int) "length" 100 (Dyn.length d);
  Alcotest.(check int) "get" 84 (Dyn.get d 42);
  Dyn.set d 42 (-1);
  Alcotest.(check int) "set" (-1) (Dyn.get d 42);
  Alcotest.check_raises "oob" (Invalid_argument "Dyn: index out of bounds")
    (fun () -> ignore (Dyn.get d 100))

(* --- Tablefmt ------------------------------------------------------------- *)

let table_render () =
  let s = Tablefmt.render ~header:[ "a"; "bb" ] [ [ "x"; "1" ]; [ "yy"; "22" ] ] in
  Alcotest.(check bool) "has header sep" true
    (String.length s > 0 && String.contains s '+');
  (* all lines same width *)
  let lines = String.split_on_char '\n' (String.trim s) in
  let w = String.length (List.hd lines) in
  List.iter (fun l -> Alcotest.(check int) "aligned" w (String.length l)) lines

let tests =
  [
    ("iset units", `Quick, iset_units);
    ("lru basic", `Quick, lru_basic);
    ("lru unbounded", `Quick, lru_unbounded);
    ("lru update", `Quick, lru_update);
    ("union_find", `Quick, uf_basic);
    ("rng deterministic", `Quick, rng_deterministic);
    ("rng bounds", `Quick, rng_bounds);
    ("rng shuffle", `Quick, rng_shuffle_permutes);
    ("stats basic", `Quick, stats_basic);
    ("stats degenerate", `Quick, stats_degenerate);
    ("dyn", `Quick, dyn_basic);
    ("tablefmt", `Quick, table_render);
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) (qcheck_iset @ qcheck_lru)
