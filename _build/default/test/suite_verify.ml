(* Verification library over composed automata. *)

module Verify = Preo_verify.Verify
module Eval = Preo_lang.Eval
module Ast = Preo_lang.Ast

open Preo_automata
open Preo_reo

let v = Vertex.fresh

let fig5_contract () =
  let f = Figures.fig5 () in
  let large = Graph.to_large_automaton f.Figures.graph in
  match
    Verify.check_fig5_properties large ~a:f.Figures.a_out ~b:f.Figures.b_out
  with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let fig5_violated_when_swapped () =
  let f = Figures.fig5 () in
  let large = Graph.to_large_automaton f.Figures.graph in
  (* B before A must be reported. *)
  match
    Verify.check_fig5_properties large ~a:f.Figures.b_out ~b:f.Figures.a_out
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "swapped contract should fail"

let deadlock_detected () =
  (* Two sync-drains demanding contradictory pairs: a&b then... build a
     simple automaton that reaches a sink state: fifo1-full that is never
     refillable because its tail is also its head's prerequisite. Easier:
     hand-made automaton with a dead state. *)
  let a = v "a" in
  let t sync target = { Automaton.sync; constr = Constr.tt; command = None; target } in
  let auto =
    Automaton.make ~nstates:2 ~initial:0
      ~trans:[| [| t (Preo_support.Iset.singleton a) 1 |]; [||] |]
      ~sources:(Preo_support.Iset.singleton a) ~sinks:Preo_support.Iset.empty
  in
  match Verify.deadlocks auto with
  | [ ce ] ->
    Alcotest.(check int) "dead state" 1 ce.Verify.state;
    Alcotest.(check int) "path length" 1 (List.length ce.Verify.path)
  | other -> Alcotest.failf "expected 1 deadlock, got %d" (List.length other)

let deadlock_free_connectors () =
  (* Every catalog connector composes to a deadlock-free automaton at small
     N under the existing pipeline. *)
  List.iter
    (fun (e : Preo_connectors.Catalog.entry) ->
      let c = Preo_connectors.Catalog.compiled e in
      let bindings, sources, sinks =
        Eval.boundary_of_def c.Preo.def ~lengths:(e.lengths 3)
      in
      let venv = Eval.venv ~ints:[] ~arrays:bindings in
      let prims = Eval.prims venv c.Preo.flat.Ast.c_body in
      let large =
        Preo_automata.Product.all (Eval.small_automata prims)
      in
      let keep =
        Preo_support.Iset.of_list (Array.to_list sources @ Array.to_list sinks)
      in
      let large =
        Automaton.trim
          (Automaton.hide (Preo_support.Iset.diff large.Automaton.vertices keep) large)
      in
      Alcotest.(check int)
        (e.name ^ " deadlock-free")
        0
        (List.length (Verify.deadlocks large)))
    Preo_connectors.Catalog.all

let mutual_exclusion_of_router_branches () =
  let a = v "a" and b1 = v "b1" and b2 = v "b2" in
  let auto = Prim.build Prim.Router ~tails:[ a ] ~heads:[ b1; b2 ] in
  Alcotest.(check bool) "never together" true (Verify.never_together auto b1 b2);
  Alcotest.(check bool) "a with b1 sometimes" false (Verify.never_together auto a b1)

let synchrony_of_replicator () =
  let a = v "a" and b1 = v "b1" and b2 = v "b2" in
  let auto = Prim.build Prim.Replicator ~tails:[ a ] ~heads:[ b1; b2 ] in
  Alcotest.(check bool) "always together" true (Verify.always_together auto b1 b2);
  Alcotest.(check bool) "with source too" true (Verify.always_together auto a b1)

let precedence_of_fifo () =
  let a = v "a" and b = v "b" in
  let auto = Prim.build Prim.Fifo1 ~tails:[ a ] ~heads:[ b ] in
  Alcotest.(check bool) "a precedes b" true (Verify.precedes auto a b);
  Alcotest.(check bool) "b does not precede a" false (Verify.precedes auto b a)

let dead_port_detected () =
  let a = v "a" and b = v "b" and c = v "c" in
  let auto = Prim.build Prim.Sync ~tails:[ a ] ~heads:[ b ] in
  Alcotest.(check bool) "live" true (Verify.eventually_enabled auto a);
  Alcotest.(check bool) "dead" false (Verify.eventually_enabled auto c)

let unreachable_reported () =
  let a = v "a" in
  let t sync target = { Automaton.sync; constr = Constr.tt; command = None; target } in
  let auto =
    Automaton.make ~nstates:3 ~initial:0
      ~trans:
        [| [| t (Preo_support.Iset.singleton a) 0 |]; [||]; [||] |]
      ~sources:(Preo_support.Iset.singleton a) ~sinks:Preo_support.Iset.empty
  in
  Alcotest.(check (list int)) "states 1,2" [ 1; 2 ] (Verify.unreachable_states auto)

let tests =
  [
    ("fig5 contract holds", `Quick, fig5_contract);
    ("fig5 swapped fails", `Quick, fig5_violated_when_swapped);
    ("deadlock detected", `Quick, deadlock_detected);
    ("catalog deadlock-free", `Quick, deadlock_free_connectors);
    ("router mutual exclusion", `Quick, mutual_exclusion_of_router_branches);
    ("replicator synchrony", `Quick, synchrony_of_replicator);
    ("fifo precedence", `Quick, precedence_of_fifo);
    ("dead port detected", `Quick, dead_port_detected);
    ("unreachable states", `Quick, unreachable_reported);
  ]
