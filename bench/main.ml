(* Benchmark harness regenerating every table/figure of the paper's
   evaluation (Section V), plus the ablations called out in DESIGN.md.

     dune exec bench/main.exe                 -- everything, fast settings
     dune exec bench/main.exe -- --full       -- longer windows/budgets
     dune exec bench/main.exe -- --only fig12,abl-opt

   Absolute numbers differ from the paper's testbeds (see EXPERIMENTS.md);
   the shapes -- who wins where, where the existing compiler fails, where
   the monolithic product blows up -- are the reproduction targets. *)

open Preo_support

let sections =
  [ "fig12"; "fig13"; "fig13-blowup"; "npb-mc"; "abl-opt"; "abl-cache";
    "abl-part"; "obs"; "elastic"; "coloring"; "compile"; "shard"; "micro" ]

(* Representative connector families for the steps/s micro bench: picked to
   exercise deep pending sets (sequencer), partitionable pipelines
   (relay_ring), wide synchronization (broadcast_fifo, gather), and token
   circulation (token_ring). BENCH_baseline.json is regenerated from these
   rows (plus the elastic churn and coloring scaling rows) via
   `--only micro,elastic,coloring --json BENCH_baseline.json`. *)
let micro_families =
  [ ("sequencer", 8); ("relay_ring", 6); ("broadcast_fifo", 8);
    ("token_ring", 8); ("gather", 8) ]

(* Each config pins its domain placement: [`One] runs everything in the
   primary domain (the schema-3 baseline semantics, so old and new rows stay
   comparable), [`Multi] spreads partition regions and port tasks over a
   domain pool of --domains workers (default 2). new-partitioned-mc is the
   multicore row of the evaluation. The last field is the port-task batch
   size: the -b8 rows drive every port through the batch API (8 values per
   submission burst), exercising the MPSC submission queues and the
   engines' self-loop replay. *)
let micro_configs =
  [
    ("new-jit", Preo_runtime.Config.new_jit, `One, 1);
    ("new-jit-nolabel",
     Preo_runtime.Config.New
       { optimize_labels = false; cache_capacity = 0;
         expansion_budget = 2_000_000; partition = false;
         true_synchronous = false },
     `One, 1);
    ("new-jit-b8", Preo_runtime.Config.new_jit, `One, 8);
    ("new-partitioned", Preo_runtime.Config.new_partitioned, `One, 1);
    ("new-partitioned-mc", Preo_runtime.Config.new_partitioned, `Multi, 1);
    ("new-partitioned-mc-b8", Preo_runtime.Config.new_partitioned, `Multi, 8);
  ]

type opts = {
  full : bool;
  only : string list;
  detail : bool;
  json : string option;
  compare : (string * string) option;
  domains : int;  (* domain count for the `Multi (…-mc) rows and fig13 *)
  backend : Preo_runtime.Sched.backend option;
      (* process-default backend for every section; the coloring section
         always pins its three configs explicitly *)
  interleave : int;
      (* executions per mode in the compile section: compiled and
         interpreted runs alternate (A/B/A/B…) so drift hits both sides,
         and each cell reports the median of its K runs with the spread *)
}

let parse_args () =
  let full = ref false and only = ref [] and detail = ref false in
  let json = ref None in
  let domains = ref 2 in
  let backend = ref None in
  let interleave = ref 5 in
  let cmp_old = ref "" and cmp_new = ref None in
  let set_only s = only := String.split_on_char ',' s in
  let spec =
    [
      ("--full", Arg.Set full, " longer measurement windows and budgets");
      ("--only", Arg.String set_only,
       "SECTIONS comma-separated subset of: " ^ String.concat "," sections);
      ("--detail", Arg.Set detail,
       " per-connector detail for fig12 and engine counters for micro");
      ("--domains", Arg.Set_int domains,
       "N domain count for the multicore micro rows (new-partitioned-mc); \
        default 2, clamped to the runtime cap");
      ("--backend", Arg.String (fun b -> backend := Some b),
       "B execution backend for every run: automata (default) or coloring \
        (the coloring section always measures both explicitly)");
      ("--interleave", Arg.Set_int interleave,
       "K runs per mode in the compile section, alternating \
        compiled/interpreted; each cell is the median of K (default 5)");
      ("--json", Arg.String (fun f -> json := Some f),
       "FILE dump the micro, elastic and coloring steps/s rows as JSON \
        (baseline format, see EXPERIMENTS.md)");
      ("--compare",
       Arg.Tuple
         [ Arg.Set_string cmp_old; Arg.String (fun f -> cmp_new := Some f) ],
       "OLD.json NEW.json compare two --json dumps row by row (±5% noise \
        band); exits non-zero when any row regressed");
    ]
  in
  Arg.parse spec (fun s -> raise (Arg.Bad ("unexpected argument " ^ s)))
    "preo benchmark harness";
  (* Unknown operands exit 2 with usage instead of silently running an empty
     selection. *)
  let invalid fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.eprintf "bench: %s\n" msg;
        Arg.usage spec "preo benchmark harness";
        exit 2)
      fmt
  in
  List.iter
    (fun s ->
      if not (List.mem s sections) then
        invalid "--only %s: unknown section (expected a subset of %s)" s
          (String.concat "," sections))
    !only;
  let backend =
    match !backend with
    | None -> None
    | Some b -> begin
      match Preo_runtime.Sched.of_string b with
      | Some _ as bk -> bk
      | None -> invalid "--backend %s: expected 'automata' or 'coloring'" b
    end
  in
  {
    full = !full;
    only = !only;
    detail = !detail;
    json = !json;
    compare = (match !cmp_new with Some n -> Some (!cmp_old, n) | None -> None);
    domains = max 1 !domains;
    backend;
    interleave = max 1 !interleave;
  }

let wants opts name = opts.only = [] || List.mem name opts.only

(* ------------------------------------------------------------------ *)
(* FIG12: connector benchmarks                                          *)
(* ------------------------------------------------------------------ *)

type cell =
  | C_rate of float * float  (* steps/s, compile seconds *)
  | C_compile_failed
  | C_run_failed of string

let fig12_cell ~window ~config entry n =
  match Preo_connectors.Driver.run_noop ~config ~seconds:window entry ~n with
  | Preo_connectors.Driver.Steps { steps; compile_seconds; run_seconds; _ } ->
    C_rate (float_of_int steps /. run_seconds, compile_seconds)
  | Preo_connectors.Driver.Compile_failed _ -> C_compile_failed
  | Preo_connectors.Driver.Run_failed msg -> C_run_failed msg

type verdict =
  | New_only  (* new compiles/runs where existing fails: Fig. 12 dotted *)
  | New_wins  (* dark gray *)
  | Exist_wins_1  (* medium gray: <= 1 order of magnitude *)
  | Exist_wins_2  (* light gray: more than 1 order *)
  | New_failed
  | Both_failed

let verdict_name = function
  | New_only -> "new-compiles-existing-fails"
  | New_wins -> "new-outperforms"
  | Exist_wins_1 -> "existing-wins-up-to-10x"
  | Exist_wins_2 -> "existing-wins-more-than-10x"
  | New_failed -> "new-fails"
  | Both_failed -> "both-fail"

let judge existing new_ =
  match (existing, new_) with
  | (C_compile_failed | C_run_failed _), C_rate _ -> New_only
  | C_rate _, (C_compile_failed | C_run_failed _) -> New_failed
  | (C_compile_failed | C_run_failed _), (C_compile_failed | C_run_failed _) ->
    Both_failed
  | C_rate (re, _), C_rate (rn, _) ->
    if rn >= re then New_wins
    else if re /. rn <= 10.0 then Exist_wins_1
    else Exist_wins_2

let cell_str = function
  | C_rate (r, _) -> Printf.sprintf "%.0f/s" r
  | C_compile_failed -> "COMPILE-FAIL"
  | C_run_failed _ -> "RUN-FAIL"

let fig12 opts =
  let window = if opts.full then 1.0 else 0.12 in
  let ns = [ 2; 4; 8; 16; 32; 64 ] in
  let existing_config =
    if opts.full then Preo_runtime.Config.existing
    else Preo_runtime.Config.existing_states 50_000
  in
  Tablefmt.rule "FIG12: connector benchmarks (steps per second, no-op tasks)";
  Printf.printf
    "existing = full ahead-of-time composition (+dispatch +command opts)\n\
     new      = medium automata + just-in-time composition\n\
     window   = %.2fs per cell\n\n"
    window;
  let tally : (int * verdict, int) Hashtbl.t = Hashtbl.create 64 in
  let bump n v =
    Hashtbl.replace tally (n, v)
      (1 + try Hashtbl.find tally (n, v) with Not_found -> 0)
  in
  let rows = ref [] in
  List.iter
    (fun (e : Preo_connectors.Catalog.entry) ->
      List.iter
        (fun n ->
          let existing = fig12_cell ~window ~config:existing_config e n in
          let new_ = fig12_cell ~window ~config:Preo_runtime.Config.new_jit e n in
          let v = judge existing new_ in
          bump n v;
          Printf.eprintf "[fig12] %-16s N=%-3d existing=%-13s new=%-10s %s\n%!"
            e.name n (cell_str existing) (cell_str new_) (verdict_name v);
          rows :=
            [
              e.name;
              string_of_int n;
              cell_str existing;
              cell_str new_;
              (match (existing, new_) with
               | C_rate (re, _), C_rate (rn, _) -> Printf.sprintf "%.2f" (rn /. re)
               | _ -> "-");
              verdict_name v;
            ]
            :: !rows)
        ns)
    Preo_connectors.Catalog.all;
  if opts.detail then
    Tablefmt.print
      ~header:[ "connector"; "N"; "existing"; "new"; "new/existing"; "verdict" ]
      (List.rev !rows);
  (* Per-N summary (the bar chart of Fig. 12). *)
  let verdicts = [ New_only; New_wins; Exist_wins_1; Exist_wins_2; New_failed; Both_failed ] in
  Tablefmt.print
    ~header:("N" :: List.map verdict_name verdicts)
    (List.map
       (fun n ->
         string_of_int n
         :: List.map
              (fun v ->
                string_of_int (try Hashtbl.find tally (n, v) with Not_found -> 0))
              verdicts)
       ns);
  (* Overall pie (the pie chart of Fig. 12). *)
  let totals =
    List.map
      (fun v ->
        ( v,
          Hashtbl.fold (fun (_, v') c acc -> if v' = v then acc + c else acc) tally 0 ))
      verdicts
  in
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 totals in
  Printf.printf "\nOverall (%d connector/N cells; paper: 8%% / 42%% / 42%% / 8%%):\n" total;
  List.iter
    (fun (v, c) ->
      if c > 0 then
        Printf.printf "  %-28s %3d  (%.0f%%)\n" (verdict_name v) c
          (100.0 *. float_of_int c /. float_of_int total))
    totals

(* ------------------------------------------------------------------ *)
(* FIG13: NPB                                                          *)
(* ------------------------------------------------------------------ *)

type kernel_run = {
  kr_value : float;
  kr_seconds : float;
  kr_steps : int;
  kr_dnf : bool;
}

let run_kernel ~kernel ~comm ~cls ~nslaves ~timeout =
  let result = ref None in
  let t =
    Preo_runtime.Task.spawn (fun () ->
        let v =
          match kernel with
          | `Cg ->
            let r = Preo_npb.Cg.run ~comm ~cls ~nslaves in
            (r.Preo_npb.Cg.zeta, r.seconds, r.comm_steps)
          | `Lu ->
            let r = Preo_npb.Lu.run ~comm ~cls ~nslaves in
            (r.Preo_npb.Lu.residual, r.seconds, r.comm_steps)
          | `Ep ->
            let r = Preo_npb.Ep.run ~comm ~cls ~nslaves in
            (r.Preo_npb.Ep.estimate, r.seconds, r.comm_steps)
          | `Is ->
            let r = Preo_npb.Is.run ~comm ~cls ~nslaves in
            (r.Preo_npb.Is.checksum, r.seconds, r.comm_steps)
          | `Mg ->
            let r = Preo_npb.Mg.run ~comm ~cls ~nslaves in
            (r.Preo_npb.Mg.norm, r.seconds, r.comm_steps)
        in
        result := Some v)
  in
  (* Watchdog: abort the communication layer if the kernel overruns. *)
  let deadline = Clock.now () +. timeout in
  let aborted = ref false in
  let rec wait () =
    if !result <> None then ()
    else if Clock.now () > deadline then begin
      aborted := true;
      comm.Preo_npb.Comm.abort ()
    end
    else begin
      Thread.delay 0.05;
      wait ()
    end
  in
  wait ();
  (try Preo_runtime.Task.join t with _ -> ());
  comm.Preo_npb.Comm.finish ();
  match !result with
  | Some (v, s, st) when not !aborted ->
    { kr_value = v; kr_seconds = s; kr_steps = st; kr_dnf = false }
  | _ -> { kr_value = nan; kr_seconds = timeout; kr_steps = 0; kr_dnf = true }

let fig13 opts =
  let classes =
    if opts.full then [ Preo_npb.Workloads.S; W; A; C ]
    else [ Preo_npb.Workloads.S; C ]
  in
  let ns = [ 2; 4; 8 ] in
  let timeout = if opts.full then 120.0 else 60.0 in
  Tablefmt.rule "FIG13: NAS Parallel Benchmarks (total run time, seconds)";
  Printf.printf
    "orig = hand-written synchronization; reo = generated connectors (new \
     approach).\n\
     Single-core testbed: compare the orig/reo ratio per row, not scaling \
     across N.\n\n";
  let rows = ref [] in
  List.iter
    (fun kernel ->
      let kname =
        match kernel with
        | `Cg -> "CG" | `Lu -> "LU" | `Ep -> "EP" | `Is -> "IS" | `Mg -> "MG"
      in
      List.iter
        (fun cls ->
          List.iter
            (fun n ->
              let orig =
                run_kernel ~kernel ~comm:(Preo_npb.Comm.hand ~nslaves:n) ~cls
                  ~nslaves:n ~timeout
              in
              let reo =
                run_kernel ~kernel ~comm:(Preo_npb.Comm.reo ~nslaves:n ()) ~cls
                  ~nslaves:n ~timeout
              in
              rows :=
                [
                  kname;
                  Preo_npb.Workloads.cls_name cls;
                  string_of_int n;
                  Printf.sprintf "%.3f" orig.kr_seconds;
                  (if reo.kr_dnf then "DNF" else Printf.sprintf "%.3f" reo.kr_seconds);
                  (if reo.kr_dnf then "-"
                   else Printf.sprintf "%.2f" (reo.kr_seconds /. orig.kr_seconds));
                  string_of_int reo.kr_steps;
                  (if reo.kr_dnf then "-"
                   else if orig.kr_value = reo.kr_value then "ok"
                   else "MISMATCH");
                ]
                :: !rows)
            ns)
        classes)
    [ `Cg; `Lu; `Mg; `Is; `Ep ];
  Tablefmt.print
    ~header:[ "kernel"; "class"; "N"; "orig(s)"; "reo(s)"; "reo/orig"; "steps"; "verify" ]
    (List.rev !rows)

let fig13_blowup opts =
  Tablefmt.rule
    "FIG13 finding 3: textbook-synchronous product blows up for N >= 16";
  Printf.printf
    "CG class S under the fully synchronous product (joint independent \
     firings,\n\
     as in the paper's implementation): states acquire exponentially many\n\
     transitions and runs stop terminating. The interleaving product and \
     the\n\
     partitioned runtime (the paper's proposed fix, implemented here) both\n\
     stay fine.\n\n";
  let timeout = if opts.full then 30.0 else 10.0 in
  let ns = [ 4; 8; 16 ] in
  let variants =
    [
      ("reo-synchronous",
       fun n ->
         Preo_npb.Comm.reo
           ~config:(Preo_runtime.Config.synchronous_of Preo_runtime.Config.new_jit)
           ~nslaves:n ());
      ("reo-interleaved", fun n -> Preo_npb.Comm.reo ~nslaves:n ());
      ("reo-partitioned",
       fun n ->
         Preo_npb.Comm.reo ~config:Preo_runtime.Config.new_partitioned ~nslaves:n ());
    ]
  in
  let rows =
    List.concat_map
      (fun n ->
        List.map
          (fun (vname, mk) ->
            let r =
              run_kernel ~kernel:`Cg ~comm:(mk n) ~cls:Preo_npb.Workloads.S
                ~nslaves:n ~timeout
            in
            [
              vname;
              string_of_int n;
              (if r.kr_dnf then Printf.sprintf "DNF(>%.0fs)" timeout
               else Printf.sprintf "%.3f" r.kr_seconds);
            ])
          variants)
      ns
  in
  Tablefmt.print ~header:[ "variant"; "N"; "time(s)" ] rows

(* ------------------------------------------------------------------ *)
(* NPB-MC: single- vs multi-domain task placement                      *)
(* ------------------------------------------------------------------ *)

(* One kernel, both comm variants, slave tasks inline (1 domain) vs.
   pooled over --domains worker domains. The comm layer derives its
   scheduling policy from [Config.effective_domains] at construction, so
   the process-wide default is flipped around each build. *)
let npb_mc opts =
  let domains = max 2 opts.domains in
  let cls = if opts.full then Preo_npb.Workloads.W else Preo_npb.Workloads.S in
  Tablefmt.rule
    (Printf.sprintf
       "NPB-MC: CG class %s, single- vs multi-domain task placement"
       (Preo_npb.Workloads.cls_name cls));
  Printf.printf
    "Slave tasks run inline (domains=1) or on a pool of %d worker domains.\n\
     On a single-core testbed the multi-domain rows measure cross-domain\n\
     signalling overhead, not speedup (see EXPERIMENTS.md §DOMAINS).\n\n"
    domains;
  let timeout = if opts.full then 120.0 else 60.0 in
  let nslaves = 4 in
  let saved = !Preo_runtime.Config.domains in
  let measure ~domains mk =
    Preo_runtime.Config.domains := Some domains;
    Fun.protect
      ~finally:(fun () -> Preo_runtime.Config.domains := saved)
      (fun () ->
        run_kernel ~kernel:`Cg ~comm:(mk ()) ~cls ~nslaves ~timeout)
  in
  let rows =
    List.concat_map
      (fun (vname, mk) ->
        List.map
          (fun d ->
            let r = measure ~domains:d mk in
            [
              vname;
              string_of_int d;
              (if r.kr_dnf then "DNF" else Printf.sprintf "%.3f" r.kr_seconds);
              string_of_int r.kr_steps;
            ])
          [ 1; domains ])
      [
        ("hand", fun () -> Preo_npb.Comm.hand ~nslaves);
        ("reo", fun () -> Preo_npb.Comm.reo ~nslaves ());
      ]
  in
  Tablefmt.print ~header:[ "variant"; "domains"; "time(s)"; "steps" ] rows

(* ------------------------------------------------------------------ *)
(* Ablations                                                            *)
(* ------------------------------------------------------------------ *)

let abl_opt opts =
  Tablefmt.rule "ABL-OPT: the two existing-compiler optimizations (paper V-B)";
  Printf.printf
    "Reason 1 (command precompilation [30]) and reason 2 (whole-automaton\n\
     dispatch [19]), measured on the sequencer connector at N=8.\n\n";
  let window = if opts.full then 1.0 else 0.2 in
  let e = Preo_connectors.Catalog.find "sequencer" in
  let existing ~dispatch ~commands =
    Preo_runtime.Config.Existing
      { use_dispatch = dispatch; optimize_labels = commands;
        max_states = 200_000; max_trans = 2_000_000;
        max_compile_seconds = 30.0; true_synchronous = false }
  in
  let jit ~commands =
    Preo_runtime.Config.New
      { optimize_labels = commands; cache_capacity = 0;
        expansion_budget = 2_000_000; partition = false;
        true_synchronous = false }
  in
  let cases =
    [
      ("existing (+dispatch +commands)", existing ~dispatch:true ~commands:true);
      ("existing (-dispatch +commands)", existing ~dispatch:false ~commands:true);
      ("existing (+dispatch -commands)", existing ~dispatch:true ~commands:false);
      ("existing (-dispatch -commands)", existing ~dispatch:false ~commands:false);
      ("new (+commands at expansion)", jit ~commands:true);
      ("new (-commands: solve every firing)", jit ~commands:false);
    ]
  in
  let rows =
    List.map
      (fun (name, config) ->
        match Preo_connectors.Driver.run_noop ~config ~seconds:window e ~n:8 with
        | Preo_connectors.Driver.Steps { steps; run_seconds; _ } ->
          [ name; Printf.sprintf "%.0f" (float_of_int steps /. run_seconds) ]
        | _ -> [ name; "fail" ])
      cases
  in
  Tablefmt.print ~header:[ "configuration"; "steps/s" ] rows

let abl_cache opts =
  Tablefmt.rule "ABL-CACHE: bounded JIT state cache (paper's future work)";
  Printf.printf
    "relay_ring at N=6 revisits many product states; a bounded LRU cache\n\
     trades recomputation for memory.\n\n";
  let window = if opts.full then 1.0 else 0.25 in
  let e = Preo_connectors.Catalog.find "relay_ring" in
  let rows =
    List.map
      (fun cap ->
        let config = Preo_runtime.Config.new_jit_cached cap in
        let compiled = Preo_connectors.Catalog.compiled e in
        let inst = Preo.instantiate ~config compiled ~lengths:(e.Preo_connectors.Catalog.lengths 6) in
        let conn = Preo.connector inst in
        let outs = Preo.outports inst "tl" in
        let ins = Preo.inports inst "hd" in
        let threads =
          List.init 6 (fun i ->
              Preo_runtime.Task.spawn (fun () ->
                  while true do
                    ignore (Preo.Port.recv ins.(i));
                    Preo.Port.send outs.(i) Value.unit
                  done))
        in
        Thread.delay window;
        let steps = Preo.steps inst in
        Preo.shutdown inst;
        List.iter (fun t -> try Preo_runtime.Task.join t with _ -> ()) threads;
        [
          (if cap = 0 then "unbounded" else string_of_int cap);
          Printf.sprintf "%.0f" (float_of_int steps /. window);
          string_of_int (Preo_runtime.Connector.cache_evictions conn);
        ])
      [ 2; 8; 64; 512; 0 ]
  in
  Tablefmt.print ~header:[ "cache capacity"; "steps/s"; "evictions" ] rows

let abl_part opts =
  Tablefmt.rule
    "ABL-PART: partitioned multi-engine runtime (DESIGN.md extension)";
  Printf.printf
    "relay_ring (a deep fifo pipeline) under one monolithic JIT engine vs.\n\
     the connector split at internal fifos into one engine per region.\n\n";
  let window = if opts.full then 1.0 else 0.25 in
  let e = Preo_connectors.Catalog.find "relay_ring" in
  let rows =
    List.concat_map
      (fun n ->
        List.map
          (fun (vname, config) ->
            let compiled = Preo_connectors.Catalog.compiled e in
            let inst =
              Preo.instantiate ~config compiled
                ~lengths:(e.Preo_connectors.Catalog.lengths n)
            in
            let outs = Preo.outports inst "tl" in
            let ins = Preo.inports inst "hd" in
            let threads =
              List.init n (fun i ->
                  Preo_runtime.Task.spawn (fun () ->
                      while true do
                        ignore (Preo.Port.recv ins.(i));
                        Preo.Port.send outs.(i) Value.unit
                      done))
            in
            Thread.delay window;
            let steps = Preo.steps inst in
            let regions = Preo.Connector.nregions (Preo.connector inst) in
            Preo.shutdown inst;
            List.iter (fun t -> try Preo_runtime.Task.join t with _ -> ()) threads;
            [
              vname;
              string_of_int n;
              string_of_int regions;
              Printf.sprintf "%.0f" (float_of_int steps /. window);
            ])
          [
            ("monolithic-jit", Preo_runtime.Config.new_jit);
            ("partitioned", Preo_runtime.Config.new_partitioned);
          ])
      [ 4; 8; 16 ]
  in
  Tablefmt.print ~header:[ "runtime"; "N"; "regions"; "steps/s" ] rows

(* ------------------------------------------------------------------ *)
(* OBS: tracing overhead                                               *)
(* ------------------------------------------------------------------ *)

(* Quantify what the observability layer costs: tracing off (the single
   guard branch per recording site) vs. on (ring stores + metrics). Off is
   the configuration whose steps/s must stay within the perf acceptance
   bound of a build without the subsystem at all. *)
let obs_overhead opts =
  Tablefmt.rule "OBS: tracing overhead (steps per second, sequencer N=8)";
  let window = if opts.full then 1.0 else 0.5 in
  let e = Preo_connectors.Catalog.find "sequencer" in
  let rate () =
    match
      Preo_connectors.Driver.run_noop ~config:Preo_runtime.Config.new_jit
        ~seconds:window e ~n:8
    with
    | Preo_connectors.Driver.Steps { steps; run_seconds; _ } ->
      float_of_int steps /. run_seconds
    | _ -> nan
  in
  let was = Preo.tracing_enabled () in
  Preo.set_tracing false;
  let off = rate () in
  Preo.set_tracing true;
  let on = rate () in
  Preo.set_tracing was;
  Tablefmt.print
    ~header:[ "tracing"; "steps/s"; "relative" ]
    [
      [ "off"; Printf.sprintf "%.0f" off; "1.00" ];
      [ "on"; Printf.sprintf "%.0f" on; Printf.sprintf "%.2f" (on /. off) ];
    ];
  Printf.printf "tracing-on overhead: %.1f%%\n" (100.0 *. (1.0 -. (on /. off)))

(* ------------------------------------------------------------------ *)
(* Shared --json row emission (schema 9)                               *)
(* ------------------------------------------------------------------ *)

let stats_json (st : Preo_runtime.Connector.stats) =
  Preo_runtime.Connector.(
    Printf.sprintf
      "{\"st_steps\": %d, \"st_regions\": %d, \"st_domains\": %d, \
       \"st_expansions\": %d, \"st_cache_hits\": %d, \
       \"st_cache_evictions\": %d, \"st_compile_seconds\": %.6f, \
       \"st_solver_calls\": %d, \"st_cond_waits\": %d, \"st_peer_kicks\": %d, \
       \"st_cand_hits\": %d, \"st_stalls\": %d, \"st_wakes_targeted\": %d, \
       \"st_wakes_spurious\": %d, \"st_wakes_broadcast\": %d, \
       \"st_mpsc_ops\": %d, \"st_mpsc_batches\": %d, \"st_mpsc_fast\": %d, \
       \"st_batch_fires\": %d, \"st_splices\": %d, \"st_color_rounds\": %d, \
       \"st_color_iters\": %d, \"st_compiled_fires\": %d, \
       \"st_interp_fires\": %d, \"st_regions_fused\": %d, \
       \"st_shard_batches\": %d, \"st_shard_items\": %d, \
       \"st_shard_acks\": %d, \"st_shard_reconnects\": %d}"
      st.st_steps st.st_regions st.st_domains st.st_expansions st.st_cache_hits
      st.st_cache_evictions st.st_compile_seconds st.st_solver_calls
      st.st_cond_waits st.st_peer_kicks st.st_cand_hits st.st_stalls
      st.st_wakes_targeted st.st_wakes_spurious st.st_wakes_broadcast
      st.st_mpsc_ops st.st_mpsc_batches st.st_mpsc_fast st.st_batch_fires
      st.st_splices st.st_color_rounds st.st_color_iters st.st_compiled_fires
      st.st_interp_fires st.st_regions_fused st.st_shard_batches
      st.st_shard_items st.st_shard_acks st.st_shard_reconnects)

(* Latency columns (schema 9): only the sections that measure end-to-end
   round trips emit them, so they are optional per row. [extra] splices
   additional section-specific keys (the shard row's worker-exit flag). *)
let json_row ?latency ?(extra = "") ~family ~n ~config ~rate ~stats () =
  let lat =
    match latency with
    | None -> ""
    | Some (p50_ms, p99_ms) ->
      Printf.sprintf " \"p50_ms\": %.3f, \"p99_ms\": %.3f," p50_ms p99_ms
  in
  Printf.sprintf
    "    {\"family\": %S, \"n\": %d, \"config\": %S, \"steps_per_s\": %.1f,%s%s \
     \"stats\": %s}"
    family n config rate lat extra (stats_json stats)

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then nan
  else sorted.(min (n - 1) (int_of_float (q *. float_of_int n)))

(* ------------------------------------------------------------------ *)
(* COLORING: three-way backend scaling                                 *)
(* ------------------------------------------------------------------ *)

(* The connector-coloring backend against both automata pipelines at sizes
   where product composition stops being viable. lossy_bcast is the §V-C
   exponential-choice shape (2^N synchronized subsets): ahead-of-time
   composition and JIT expansion both trip their budgets long before
   N=1024, while coloring resolves rounds in work proportional to the
   connector graph. broadcast_fifo + ordered_merger are the NPB master–
   slaves building blocks (EP/CG scatter and gather); sequencer is the
   deep-pending-set baseline. *)
let coloring_bench opts =
  Tablefmt.rule "COLORING: backend scaling (steps per second, no-op tasks)";
  let window = if opts.full then 0.5 else 0.12 in
  let budget = if opts.full then 2_000_000 else 200_000 in
  Printf.printf
    "existing = ahead-of-time product   new-jit = lazy product expansion\n\
     coloring = per-round 2-coloring propagation (no product states at all)\n\
     window = %.2fs per cell; expansion/propagation budget = %d\n\n"
    window budget;
  let existing_config =
    Preo_runtime.Config.Existing
      { use_dispatch = true; optimize_labels = true; max_states = 50_000;
        max_trans = 200_000;
        max_compile_seconds = (if opts.full then 10.0 else 2.0);
        true_synchronous = false }
  in
  let jit_config ~budget =
    Preo_runtime.Config.New
      { optimize_labels = true; cache_capacity = 0;
        expansion_budget = budget; partition = false;
        true_synchronous = false }
  in
  (* On exponential-choice families the JIT cell exists to document the
     budget trip, and each counted combination costs O(N) set work — at
     N=1024 a full-budget trip takes minutes while holding the engine lock.
     Shrink the budget with N so the (inevitable) failure is prompt; the
     coloring cell keeps the full budget as its propagation backstop. *)
  let configs (e : Preo_connectors.Catalog.entry) n =
    let jit_budget =
      if e.Preo_connectors.Catalog.exponential_choice then
        max 2_000 (budget * 16 / n)
      else budget
    in
    [
      ("existing", existing_config, None);
      ("new-jit", jit_config ~budget:jit_budget,
       Some Preo_runtime.Sched.Automata);
      ("coloring", jit_config ~budget, Some Preo_runtime.Sched.Coloring);
    ]
  in
  let families =
    [ "lossy_bcast"; "broadcast_fifo"; "sequencer"; "ordered_merger" ]
  in
  let ns = [ 16; 64; 256; 1024 ] in
  let json_rows = ref [] in
  let rows =
    List.concat_map
      (fun fname ->
        let e = Preo_connectors.Catalog.find fname in
        List.concat_map
          (fun n ->
            List.map
              (fun (cname, config, backend) ->
                match
                  Preo_connectors.Driver.run_noop ~config ?backend
                    ~seconds:window e ~n
                with
                | Preo_connectors.Driver.Steps
                    { steps; run_seconds; stats = st; _ } ->
                  let rate = float_of_int steps /. run_seconds in
                  json_rows :=
                    json_row ~family:fname ~n ~config:cname ~rate ~stats:st
                      ()
                    :: !json_rows;
                  Printf.eprintf "[coloring] %-16s N=%-4d %-9s %.0f steps/s\n%!"
                    fname n cname rate;
                  Preo_runtime.Connector.
                    [ fname; string_of_int n; cname;
                      Printf.sprintf "%.0f" rate;
                      string_of_int st.st_color_rounds;
                      (if st.st_color_rounds = 0 then "-"
                       else
                         Printf.sprintf "%.1f"
                           (float_of_int st.st_color_iters
                           /. float_of_int st.st_color_rounds)) ]
                | Preo_connectors.Driver.Compile_failed _ ->
                  Printf.eprintf "[coloring] %-16s N=%-4d %-9s COMPILE-FAIL\n%!"
                    fname n cname;
                  [ fname; string_of_int n; cname; "COMPILE-FAIL"; "-"; "-" ]
                | Preo_connectors.Driver.Run_failed _ ->
                  Printf.eprintf "[coloring] %-16s N=%-4d %-9s RUN-FAIL\n%!"
                    fname n cname;
                  [ fname; string_of_int n; cname; "RUN-FAIL"; "-"; "-" ])
              (configs e n))
          ns)
      families
  in
  Tablefmt.print
    ~header:
      [ "family"; "N"; "backend"; "steps/s"; "color-rounds"; "iters/round" ]
    rows;
  List.rev !json_rows

(* ------------------------------------------------------------------ *)
(* ELASTIC: run-time join/leave churn                                  *)
(* ------------------------------------------------------------------ *)

(* Throughput under elastic churn: grow a live connector by one task slot,
   exchange a full round of data at the larger size, shrink back, exchange
   another round — so every splice faces a real quiescence check and the
   steady-state data path is measured together with the splice overhead.
   The autoscaling EP kernel rides along as an end-to-end row (table only;
   its connectors are torn down inside the kernel, so no stats object). *)
let elastic_bench opts =
  Tablefmt.rule "ELASTIC: run-time join/leave (splice) churn";
  let window = if opts.full then 1.0 else 0.5 in
  let json_rows = ref [] in
  let churn fname base ~round =
    let e = Preo_connectors.Catalog.find fname in
    let inst =
      Preo.instantiate ~config:Preo_runtime.Config.new_jit
        (Preo_connectors.Catalog.compiled e)
        ~lengths:(e.Preo_connectors.Catalog.lengths base)
    in
    let t0 = Clock.now () in
    while Clock.now () -. t0 < window do
      ignore (Preo.grow inst "hd");
      round inst (base + 1);
      Preo.shrink inst "hd";
      round inst base
    done;
    let seconds = Clock.now () -. t0 in
    let st = Preo_runtime.Connector.stats (Preo.connector inst) in
    let steps = Preo.steps inst in
    let splices = Preo_runtime.Connector.splices (Preo.connector inst) in
    let rate = float_of_int steps /. seconds in
    json_rows :=
      json_row ~family:"elastic_churn" ~n:base ~config:fname ~rate ~stats:st
        ()
      :: !json_rows;
    Printf.eprintf "[elastic] %-16s N=%-3d %.0f steps/s, %d splices\n%!" fname
      base rate splices;
    Preo.shutdown inst;
    [ "churn"; fname; string_of_int base; Printf.sprintf "%.0f" rate;
      string_of_int splices;
      Printf.sprintf "%.0f" (float_of_int splices /. seconds) ]
  in
  let bcast_round inst size =
    Preo.Port.send (Preo.outports inst "tl").(0) Value.unit;
    for i = 1 to size do
      ignore (Preo.Port.recv (Preo.inport_at inst "hd" i))
    done
  in
  let seq_round inst size =
    for i = 1 to size do
      ignore (Preo.Port.recv (Preo.inport_at inst "hd" i))
    done
  in
  let ep = Preo_npb.Ep_elastic.run ~cls:Preo_npb.Workloads.S () in
  let rows =
    [
      churn "broadcast_fifo" 4 ~round:bcast_round;
      churn "sequencer" 4 ~round:seq_round;
      [ "ep-autoscale"; "load_balancer+gather";
        string_of_int ep.Preo_npb.Ep_elastic.peak_slaves;
        Printf.sprintf "%.0f"
          (float_of_int ep.Preo_npb.Ep_elastic.comm_steps
          /. ep.Preo_npb.Ep_elastic.seconds);
        string_of_int ep.Preo_npb.Ep_elastic.splices; "-" ];
    ]
  in
  Tablefmt.print
    ~header:[ "bench"; "family"; "N/peak"; "steps/s"; "splices"; "splices/s" ]
    rows;
  List.rev !json_rows

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

(* Firing-loop throughput per connector family. The committed
   BENCH_baseline.json pins these numbers so future engine changes have a
   perf trajectory to compare against. *)
(* ------------------------------------------------------------------ *)
(* COMPILE: compiled dispatch vs interpreted, interleaved A/B           *)
(* ------------------------------------------------------------------ *)

(* Same binary, same process, same wall-clock neighbourhood: the compiled
   and interpreted executions of each cell alternate (A/B/A/B…) so thermal
   and scheduler drift hits both sides equally, and each side reports the
   median of its K runs plus the relative spread (max-min)/median. The
   interpreted side is exactly PREO_COMPILE=0. The partitioned sequencer
   row doubles as the sequentialization demo: its ring fuses to one region
   (fused > 0), so the compiled side also sheds its bridge queues. *)
let compile_bench opts =
  Tablefmt.rule
    "COMPILE: compiled dispatch vs interpreted (interleaved median-of-K)";
  let window = if opts.full then 0.5 else 0.15 in
  let k = opts.interleave in
  Printf.printf
    "window = %.2fs per run; %d interleaved runs per mode; interpreted = \
     PREO_COMPILE=0\n\n"
    window k;
  let median xs =
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    if n land 1 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0
  in
  let spread xs m =
    let mx = List.fold_left max neg_infinity xs
    and mn = List.fold_left min infinity xs in
    if m > 0.0 then (mx -. mn) /. m else 0.0
  in
  let cells =
    [
      ("xform_lanes", 4, "new-jit-b8", Preo_runtime.Config.new_jit, 1, 8);
      ("xform_lanes", 4, "new-jit-b32", Preo_runtime.Config.new_jit, 1, 32);
      ("xform_lanes", 4, "new-partitioned-mc",
       Preo_runtime.Config.new_partitioned, 2, 1);
      ("sequencer", 8, "new-jit", Preo_runtime.Config.new_jit, 1, 1);
      ("token_ring", 8, "new-jit", Preo_runtime.Config.new_jit, 1, 1);
      ("relay_ring", 6, "new-jit-b8", Preo_runtime.Config.new_jit, 1, 8);
      ("sequencer", 8, "new-partitioned",
       Preo_runtime.Config.new_partitioned, 1, 1);
    ]
  in
  let rows =
    List.map
      (fun (fname, n, cname, config, domains, batch) ->
        let e = Preo_connectors.Catalog.find fname in
        let run mode =
          let saved = !Preo_runtime.Config.compile in
          Fun.protect
            ~finally:(fun () -> Preo_runtime.Config.compile := saved)
            (fun () ->
              Preo_runtime.Config.compile := Some mode;
              match
                Preo_connectors.Driver.run_noop ~config ~domains ~batch
                  ~seconds:window e ~n
              with
              | Preo_connectors.Driver.Steps { steps; run_seconds; stats; _ }
                ->
                Some (float_of_int steps /. run_seconds, stats)
              | _ -> None)
        in
        let irates = ref [] and crates = ref [] in
        let cstats = ref None in
        for _ = 1 to k do
          (match run false with
          | Some (r, _) -> irates := r :: !irates
          | None -> ());
          match run true with
          | Some (r, st) ->
            crates := r :: !crates;
            cstats := Some st
          | None -> ()
        done;
        match (!irates, !crates, !cstats) with
        | [], _, _ | _, [], _ | _, _, None ->
          [ fname; string_of_int n; cname; "FAIL"; "FAIL"; "-"; "-"; "-";
            "-"; "-" ]
        | is_, cs, Some st ->
          let im = median is_ and cm = median cs in
          Printf.eprintf "[compile] %-16s %-16s %.0f -> %.0f steps/s\n%!"
            fname cname im cm;
          Preo_runtime.Connector.
            [ fname; string_of_int n; cname;
              Printf.sprintf "%.0f" im;
              Printf.sprintf "%.0f" cm;
              Printf.sprintf "%.2fx" (cm /. im);
              Printf.sprintf "±%.0f%%"
                (50.0 *. (spread is_ im +. spread cs cm));
              string_of_int st.st_compiled_fires;
              string_of_int st.st_interp_fires;
              string_of_int st.st_regions_fused ])
      cells
  in
  Tablefmt.print
    ~header:
      [ "family"; "N"; "config"; "interp/s"; "compiled/s"; "speedup";
        "spread"; "cfires"; "ifires"; "fused" ]
    rows

(* ------------------------------------------------------------------ *)
(* SHARD: multi-process connector fabric                               *)
(* ------------------------------------------------------------------ *)

(* Production-shape pub-sub: one publisher on the host fans out through
   NBcastFifo to [branches] relay regions spread over [nworkers] worker
   processes; each relay's consumer task fans every delivery out to its
   share of ~1M simulated client counters. Every cross-process cut rides a
   batched, backpressured shard channel, so the row measures the wire-level
   fabric (frame coalescing, window stalls, ack round trips), not just the
   in-process engines. Throughput is messages acked end to end; the
   latency columns are producer-send -> ack round trips sampled every 8th
   message. *)
let shard_bench opts =
  let module Shard = Preo_dist.Shard in
  let nworkers = 3 and branches = 6 in
  let domains = max 2 opts.domains in
  let window = if opts.full then 8.0 else 2.0 in
  let clients_total = 1_000_002 in
  let per_branch = clients_total / branches in
  Tablefmt.rule
    (Printf.sprintf
       "SHARD: sharded broadcast, %d worker processes, %d simulated clients"
       nworkers clients_total);
  Printf.printf
    "NBcastFifo hd=%d: the Repl region stays on the host, relay regions\n\
     round-robin over %d worker processes; each relay fans deliveries out\n\
     to %d client counters. window = %.1fs\n\n"
    branches nworkers per_branch window;
  let src =
    "NBcastFifo(tl;hd[]) =\n\
    \  Repl(tl;x[1..#hd])\n\
    \  mult prod (i:1..#hd) Fifo1(x[i];hd[i])"
  in
  let lengths = [ ("hd", branches) ] in
  let regions =
    Shard.boundary_regions ~domains ~source:src ~name:"NBcastFifo" ~lengths ()
  in
  let hd = List.assoc "hd" regions in
  let place r = if r = 0 then 0 else ((r - 1) mod nworkers) + 1 in
  let workloads w =
    [ Shard.Consume
        { w_group = "hd";
          w_indices =
            List.filter
              (fun i -> place hd.(i) = w)
              (List.init branches Fun.id);
          w_clients = per_branch } ]
  in
  (* window 256: deep enough to keep frames coalescing, shallow enough that
     the latency columns measure the fabric rather than queueing behind a
     four-thousand-deep backlog *)
  let h =
    Shard.host ~domains ~window:256 ~latency_every:8 ~nworkers ~place
      ~workloads ~source:src ~name:"NBcastFifo" ~lengths ()
  in
  let stop = Atomic.make false in
  let sent = Atomic.make 0 in
  let producer =
    Thread.create
      (fun () ->
        let p = Shard.outport_at h "tl" 0 in
        try
          while not (Atomic.get stop) do
            Preo.Port.send p (Value.int (Atomic.get sent));
            Atomic.incr sent
          done
        with Preo_runtime.Engine.Poisoned _ -> ())
      ()
  in
  (* settle, then measure a clean window of acked traffic *)
  Thread.delay 0.3;
  ignore (Shard.latencies h);
  let a0 = Atomic.get Preo_runtime.Shard_stats.acks in
  let b0 = Atomic.get Preo_runtime.Shard_stats.batches in
  let i0 = Atomic.get Preo_runtime.Shard_stats.items in
  let t0 = Clock.now () in
  Thread.delay window;
  let elapsed = Clock.now () -. t0 in
  let acked = Atomic.get Preo_runtime.Shard_stats.acks - a0 in
  let batches = Atomic.get Preo_runtime.Shard_stats.batches - b0 in
  let items = Atomic.get Preo_runtime.Shard_stats.items - i0 in
  let lat =
    let a = Array.of_list (List.map (fun s -> s *. 1000.0) (Shard.latencies h)) in
    Array.sort compare a;
    a
  in
  let p50 = percentile lat 0.50 and p99 = percentile lat 0.99 in
  let stats = Preo_runtime.Connector.stats (Shard.connector h) in
  Atomic.set stop true;
  let statuses = Shard.shutdown h in
  (try Thread.join producer with _ -> ());
  let clean =
    List.for_all (fun (_, st) -> st = Unix.WEXITED 0) statuses
  in
  let msgs_per_s = float_of_int acked /. float_of_int branches /. elapsed in
  let deliveries_per_s = msgs_per_s *. float_of_int clients_total in
  Tablefmt.print
    ~header:
      [ "workers"; "branches"; "clients"; "msg/s"; "client-deliv/s";
        "p50(ms)"; "p99(ms)"; "items/frame"; "workers-clean" ]
    [
      [ string_of_int nworkers; string_of_int branches;
        string_of_int clients_total; Printf.sprintf "%.0f" msgs_per_s;
        Printf.sprintf "%.3g" deliveries_per_s; Printf.sprintf "%.2f" p50;
        Printf.sprintf "%.2f" p99;
        (if batches = 0 then "-"
         else Printf.sprintf "%.1f" (float_of_int items /. float_of_int batches));
        (if clean then "yes" else "NO") ];
    ];
  Printf.eprintf "[shard] %d workers %.0f msg/s p50=%.2fms p99=%.2fms%s\n%!"
    nworkers msgs_per_s p50 p99 (if clean then "" else " (UNCLEAN EXIT)");
  [ json_row ~latency:(p50, p99)
      ~extra:(Printf.sprintf " \"workers_clean\": %b," clean)
      ~family:"shard_bcast" ~n:branches
      ~config:(Printf.sprintf "sharded-%dw" nworkers)
      ~rate:msgs_per_s ~stats () ]

let micro_steps opts =
  Tablefmt.rule "MICRO-STEPS: firing-loop throughput per connector family";
  let window = if opts.full then 1.0 else 0.5 in
  Printf.printf "window = %.2fs per cell; counters with --detail\n\n" window;
  let json_rows = ref [] in
  let rows =
    List.concat_map
      (fun (fname, n) ->
        let e = Preo_connectors.Catalog.find fname in
        List.map
          (fun (cname, config, dom_spec, batch) ->
            let domains =
              match dom_spec with `One -> 1 | `Multi -> max 2 opts.domains
            in
            match
              Preo_connectors.Driver.run_noop ~config ~domains ~batch
                ~seconds:window e ~n
            with
            | Preo_connectors.Driver.Steps { steps; run_seconds; stats = st; _ } ->
              let rate = float_of_int steps /. run_seconds in
              json_rows :=
                json_row ~family:fname ~n ~config:cname ~rate ~stats:st ()
                :: !json_rows;
              Printf.eprintf "[micro] %-16s N=%-3d %-16s %.0f steps/s\n%!"
                fname n cname rate;
              [ fname; string_of_int n; cname; Printf.sprintf "%.0f" rate ]
              @ (if opts.detail then
                   Preo_runtime.Connector.
                     [ string_of_int st.st_solver_calls;
                       string_of_int st.st_cond_waits;
                       string_of_int st.st_peer_kicks;
                       string_of_int st.st_cand_hits;
                       string_of_int st.st_wakes_targeted;
                       string_of_int st.st_wakes_spurious;
                       string_of_int st.st_wakes_broadcast;
                       string_of_int st.st_mpsc_ops;
                       string_of_int st.st_mpsc_fast;
                       string_of_int st.st_batch_fires;
                       string_of_int st.st_compiled_fires;
                       string_of_int st.st_interp_fires;
                       string_of_int st.st_regions_fused ]
                 else [])
            | Preo_connectors.Driver.Compile_failed _ ->
              [ fname; string_of_int n; cname; "COMPILE-FAIL" ]
              @ (if opts.detail then List.init 13 (fun _ -> "-") else [])
            | Preo_connectors.Driver.Run_failed _ ->
              [ fname; string_of_int n; cname; "RUN-FAIL" ]
              @ (if opts.detail then List.init 13 (fun _ -> "-") else []))
          micro_configs)
      micro_families
  in
  let header =
    [ "family"; "N"; "config"; "steps/s" ]
    @ (if opts.detail then
         [ "solves"; "waits"; "kicks"; "cand-hits"; "wakes-t"; "wakes-sp";
           "wakes-b"; "mpsc"; "fast"; "bfires"; "cfires"; "ifires"; "fused" ]
       else [])
  in
  Tablefmt.print ~header rows;
  List.rev !json_rows

let micro _opts =
  Tablefmt.rule "MICRO: bechamel latencies";
  let open Bechamel in
  let fig5_graph = (Preo_reo.Figures.fig5 ()).Preo_reo.Figures.graph in
  let a = Preo_automata.Vertex.fresh "ma" and b = Preo_automata.Vertex.fresh "mb" in
  let constr =
    Preo_automata.Constr.
      [ Port b === App ("incr", Port a); pred "positive" (Port a) ]
  in
  let readable = Iset.of_list [ a ] and writable = Iset.of_list [ b ] in
  let fifo_entry = Preo_connectors.Catalog.find "broadcast_fifo" in
  let fifo_compiled = Preo_connectors.Catalog.compiled fifo_entry in
  let inst =
    Preo.instantiate ~config:Preo_runtime.Config.new_jit fifo_compiled
      ~lengths:[ ("hd", 1) ]
  in
  let out = (Preo.outports inst "tl").(0) in
  let inp = (Preo.inports inst "hd").(0) in
  let s1 = Iset.of_list [ 1; 5; 9; 12 ] and s2 = Iset.of_list [ 3; 5; 12; 40 ] in
  let tests =
    Test.make_grouped ~name:"micro" ~fmt:"%s %s"
      [
        Test.make ~name:"engine: fifo send+recv roundtrip (2 steps)"
          (Staged.stage (fun () ->
               Preo.Port.send out Value.unit;
               ignore (Preo.Port.recv inp)));
        Test.make ~name:"command: solve transform constraint"
          (Staged.stage (fun () ->
               ignore (Preo_automata.Command.solve ~readable ~writable constr)));
        Test.make ~name:"iset: union+inter (4-element sets)"
          (Staged.stage (fun () -> ignore (Iset.inter (Iset.union s1 s2) s1)));
        Test.make ~name:"product: fig5 large automaton"
          (Staged.stage (fun () ->
               ignore (Preo_reo.Graph.to_large_automaton fig5_graph)));
        Test.make ~name:"runtime share: instantiate broadcast_fifo N=8"
          (Staged.stage (fun () ->
               let bindings, _, _ =
                 Preo_lang.Eval.boundary_of_def fifo_compiled.Preo.def
                   ~lengths:[ ("hd", 8) ]
               in
               let venv = Preo_lang.Eval.venv ~ints:[] ~arrays:bindings in
               ignore
                 (Preo_lang.Template.instantiate fifo_compiled.Preo.template venv)));
      ]
  in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        let est =
          match Analyze.OLS.estimates ols_result with
          | Some (t :: _) -> Printf.sprintf "%.0f ns" t
          | _ -> "?"
        in
        [ name; est ] :: acc)
      results []
    |> List.sort compare
  in
  Tablefmt.print ~header:[ "operation"; "time/run" ] rows;
  Preo.shutdown inst

(* ------------------------------------------------------------------ *)
(* --compare: baseline regression gate                                 *)
(* ------------------------------------------------------------------ *)

(* Rows are keyed (family, n, config); steps/s within ±5% of the old value
   counts as noise. Rows carrying latency columns (schema 9) are also banded
   on p99: round-trip tails are far noisier than throughput, so the band is
   a generous +50% — only a blown-up tail fails the gate. Exit codes: 0
   clean, 1 at least one regression, 2 bad input. Used by CI against the
   committed BENCH_baseline.json. *)
let compare_baselines old_path new_path =
  let module J = Preo_obs.Json in
  let load path =
    let j =
      try
        let ic = open_in_bin path in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        J.parse s
      with Sys_error msg -> Error msg
    in
    match j with
    | Ok j -> j
    | Error msg ->
      Printf.eprintf "bench --compare: %s: %s\n" path msg;
      exit 2
  in
  let rows j =
    match J.member "rows" j with
    | Some r -> J.to_list r
    | None ->
      Printf.eprintf "bench --compare: missing \"rows\" array\n";
      exit 2
  in
  let key r =
    let str k = Option.bind (J.member k r) J.to_string in
    let num k = Option.bind (J.member k r) J.to_float in
    match (str "family", num "n", str "config") with
    | Some f, Some n, Some c -> Some (f, int_of_float n, c)
    | _ -> None
  in
  let rate r = Option.bind (J.member "steps_per_s" r) J.to_float in
  let p99 r = Option.bind (J.member "p99_ms" r) J.to_float in
  let threshold = 0.05 in
  let lat_band = 0.50 in
  let old_rows = rows (load old_path) and new_rows = rows (load new_path) in
  let old_tbl = Hashtbl.create 32 in
  List.iter
    (fun r ->
      match (key r, rate r) with
      | Some k, Some v -> Hashtbl.replace old_tbl k (v, p99 r)
      | _ -> ())
    old_rows;
  let regressions = ref 0 in
  let seen = Hashtbl.create 32 in
  let fmt_p99 = function Some v -> Printf.sprintf "%.2f" v | None -> "-" in
  let table =
    List.filter_map
      (fun r ->
        match (key r, rate r) with
        | Some ((f, n, c) as k), Some nv -> begin
          Hashtbl.replace seen k ();
          match Hashtbl.find_opt old_tbl k with
          | None ->
            Some [ f; string_of_int n; c; "-"; Printf.sprintf "%.0f" nv; "-";
                   "-"; fmt_p99 (p99 r); "new-row" ]
          | Some (ov, op99) ->
            let delta = (nv -. ov) /. ov in
            let np99 = p99 r in
            let lat_regressed =
              match (op99, np99) with
              | Some o, Some n -> n > o *. (1.0 +. lat_band)
              | _ -> false
            in
            let verdict =
              if delta < -.threshold && lat_regressed then begin
                incr regressions;
                "REGRESSION+LAT"
              end
              else if delta < -.threshold then begin
                incr regressions;
                "REGRESSION"
              end
              else if lat_regressed then begin
                incr regressions;
                "LAT-REGRESSION"
              end
              else if delta > threshold then "improved"
              else "ok"
            in
            Some
              [ f; string_of_int n; c; Printf.sprintf "%.0f" ov;
                Printf.sprintf "%.0f" nv;
                Printf.sprintf "%+.1f%%" (100.0 *. delta);
                fmt_p99 op99; fmt_p99 np99; verdict ]
        end
        | _ -> None)
      new_rows
  in
  let missing =
    Hashtbl.fold
      (fun ((f, n, c) as k) (ov, op99) acc ->
        if Hashtbl.mem seen k then acc
        else
          [ f; string_of_int n; c; Printf.sprintf "%.0f" ov; "-"; "-";
            fmt_p99 op99; "-"; "missing" ]
          :: acc)
      old_tbl []
  in
  Tablefmt.print
    ~header:
      [ "family"; "N"; "config"; "old/s"; "new/s"; "delta"; "p99old";
        "p99new"; "verdict" ]
    (table @ missing);
  if !regressions > 0 then begin
    Printf.printf "\n%d row(s) regressed beyond %.0f%%\n" !regressions
      (100.0 *. threshold);
    exit 1
  end
  else Printf.printf "\nno regressions beyond %.0f%%\n" (100.0 *. threshold)

(* ------------------------------------------------------------------ *)

let () =
  let opts = parse_args () in
  (match opts.compare with
  | Some (old_path, new_path) ->
    compare_baselines old_path new_path;
    exit 0
  | None -> ());
  Preo.set_backend opts.backend;
  let t0 = Clock.now () in
  if wants opts "fig12" then fig12 opts;
  if wants opts "fig13" then fig13 opts;
  if wants opts "fig13-blowup" then fig13_blowup opts;
  if wants opts "npb-mc" then npb_mc opts;
  if wants opts "abl-opt" then abl_opt opts;
  if wants opts "abl-cache" then abl_cache opts;
  if wants opts "abl-part" then abl_part opts;
  if wants opts "obs" then obs_overhead opts;
  let json_rows = ref [] in
  if wants opts "elastic" then json_rows := !json_rows @ elastic_bench opts;
  if wants opts "coloring" then json_rows := !json_rows @ coloring_bench opts;
  if wants opts "compile" then compile_bench opts;
  if wants opts "shard" then json_rows := !json_rows @ shard_bench opts;
  if wants opts "micro" then begin
    json_rows := !json_rows @ micro_steps opts;
    micro opts
  end;
  (match opts.json with
  | Some path when !json_rows <> [] ->
    let oc = open_out path in
    Printf.fprintf oc
      "{\n  \"schema_version\": 9,\n  \"window_seconds\": %.2f,\n  \
       \"rows\": [\n%s\n  ]\n}\n"
      (if opts.full then 1.0 else 0.5)
      (String.concat ",\n" !json_rows);
    close_out oc;
    Printf.printf "wrote %s\n" path
  | _ -> ());
  Printf.printf "\nbench total: %.1fs\n" (Clock.now () -. t0)
