(* preoc: command-line front end for the connector DSL.

     preoc check FILE                  parse + semantic check
     preoc print FILE                  pretty-print the parsed program
     preoc fmt FILE                    reformat a protocol file (canonical form)
     preoc flatten FILE CONN           flatten one definition
     preoc eval FILE CONN K=N ...      list the primitives for concrete sizes
     preoc automaton FILE CONN K=N ... compose and print the large automaton
     preoc dot FILE CONN K=N ...       Graphviz of the large automaton
     preoc graph FILE CONN K=N ...     Graphviz of the connector data flow
     preoc trace FILE CONN K=N ... [--json OUT] [--metrics]
                                       run 0.5s with port spammers under
                                       tracing; print the recorded events
                                       (or write Chrome trace JSON to OUT);
                                       --metrics appends the metrics registry
                                       in Prometheus text format
     preoc verify FILE CONN K=N ... [--prop P]
                                       deadlock/property check the composition
     preoc template FILE CONN          show the compile-time share
     preoc emit FILE CONN              generate a standalone OCaml module
     preoc simulate FILE CONN K=N ... [--backend B] [--deadline SECS]
                                      [--trace OUT]
                                       run with port-spamming tasks for 1s;
                                       --backend automata or coloring selects
                                       the round scheduler;
                                       with --deadline, a blocked operation
                                       times out and prints a stall report;
                                       with --trace, record under tracing and
                                       write Chrome trace JSON to OUT (also on
                                       the timed-out path)
     preoc compile FILE CONN K=N ... [--dump]
                                       lower every medium transition into a
                                       compiled dispatch entry and report
                                       the partition layout (regions,
                                       sequentializer merges); --dump prints
                                       the per-transition tables
     preoc catalog                     list the built-in connector families
     preoc worker --port P --token T [--retries N] [--backoff S]
                                       shard-fabric worker process; spawned
                                       by Shard.host, not usually by hand

   Unknown subcommands, missing arguments and malformed operands all print
   usage to stderr and exit 2. *)

module Ast = Preo_lang.Ast
module Parser = Preo_lang.Parser
module Eval = Preo_lang.Eval
module Template = Preo_lang.Template
module Iset = Preo_support.Iset
module Automaton = Preo_automata.Automaton
module Product = Preo_automata.Product
module Verify = Preo_verify.Verify

let usage () =
  prerr_endline
    "usage: preoc \
     {check|print|fmt|flatten|eval|automaton|dot|graph|trace|verify|template|\
     emit|simulate|compile} FILE [CONNECTOR] [ARR=N ...] [--backend \
     {automata|coloring}] [--deadline SECS] [--trace OUT] [--json OUT] \
     [--metrics] [--prop P] [--dump]\n\
     \       preoc catalog\n\
     \       preoc worker --port P --token T [--retries N] [--backoff S]";
  exit 2

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

let bad_operand fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "preoc: %s\n" msg;
      usage ())
    fmt

let parse_lengths args =
  List.map
    (fun s ->
      match String.index_opt s '=' with
      | Some i -> begin
        match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
        | Some n -> (String.sub s 0 i, n)
        | None -> bad_operand "%s: expected ARR=N with integer N" s
      end
      | None -> bad_operand "%s: expected ARR=N" s)
    args

let parse_float_arg flag s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> bad_operand "%s %s: expected a number" flag s

let compiled path name = Preo.compile ~source:(read_file path) ~name

let large_automaton_full c lengths =
  let bindings, sources, sinks = Eval.boundary_of_def c.Preo.def ~lengths in
  let venv = Eval.venv ~ints:[] ~arrays:bindings in
  let prims = Eval.prims venv c.Preo.flat.Ast.c_body in
  let large = Product.all (Eval.small_automata prims) in
  let keep = Iset.of_list (Array.to_list sources @ Array.to_list sinks) in
  ( Automaton.trim
      (Automaton.hide (Iset.diff large.Automaton.vertices keep) large),
    bindings )

let large_automaton c lengths = fst (large_automaton_full c lengths)

let main () =
  match Array.to_list Sys.argv with
  | _ :: "catalog" :: _ ->
    List.iter
      (fun (e : Preo_connectors.Catalog.entry) ->
        Printf.printf "%-16s %s\n" e.name e.description)
      Preo_connectors.Catalog.all
  | _ :: "check" :: path :: _ ->
    ignore (Preo.parse_check (read_file path));
    print_endline "ok"
  | _ :: "print" :: path :: _ ->
    Format.printf "%a@." Ast.pp_program (Preo.parse_check (read_file path))
  | _ :: "fmt" :: path :: _ ->
    (* parse (without semantic checks, so fragments format too) and print *)
    let p =
      try Parser.program (read_file path)
      with Parser.Error (msg, line) ->
        Printf.eprintf "parse error (line %d): %s\n" line msg;
        exit 2
    in
    Format.printf "%a@." Ast.pp_program p
  | _ :: "flatten" :: path :: name :: _ ->
    let c = compiled path name in
    Format.printf "%a@." Ast.pp_conn_def c.Preo.flat
  | _ :: "template" :: path :: name :: _ ->
    let c = compiled path name in
    Printf.printf
      "compile-time share of %s: %d static medium template(s), %d \
       dynamic-arity constituent(s)\n"
      name
      (Template.count_static_mediums c.Preo.template)
      (Template.count_dynamic_mediums c.Preo.template)
  | _ :: "emit" :: path :: name :: _ ->
    let c = compiled path name in
    print_string
      (Preo_lang.Codegen.connector
         ~module_comment:(Printf.sprintf "Connector %s from %s" name path)
         c.Preo.template)
  | _ :: "eval" :: path :: name :: rest ->
    let c = compiled path name in
    let bindings, _, _ =
      Eval.boundary_of_def c.Preo.def ~lengths:(parse_lengths rest)
    in
    let venv = Eval.venv ~ints:[] ~arrays:bindings in
    List.iter
      (fun (p : Eval.prim_inst) ->
        Printf.printf "%s(%s;%s)\n"
          (Preo_reo.Prim.kind_name p.pi_kind)
          (String.concat ","
             (List.map Preo_automata.Vertex.name p.pi_tails))
          (String.concat ","
             (List.map Preo_automata.Vertex.name p.pi_heads)))
      (Eval.prims venv c.Preo.flat.Ast.c_body)
  | _ :: "automaton" :: path :: name :: rest ->
    let large = large_automaton (compiled path name) (parse_lengths rest) in
    Format.printf "%a@." Automaton.pp large
  | _ :: "graph" :: path :: name :: rest ->
    (* Dataflow rendering: vertices as circles, primitives as boxes. *)
    let c = compiled path name in
    let bindings, sources, sinks =
      Eval.boundary_of_def c.Preo.def ~lengths:(parse_lengths rest)
    in
    let venv = Eval.venv ~ints:[] ~arrays:bindings in
    let prims = Eval.prims venv c.Preo.flat.Ast.c_body in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n  rankdir=LR;\n" name);
    let vertex_attrs v =
      let vname = Preo_automata.Vertex.name v in
      let shape =
        if Array.exists (Preo_automata.Vertex.equal v) sources then
          ",style=filled,fillcolor=lightblue"
        else if Array.exists (Preo_automata.Vertex.equal v) sinks then
          ",style=filled,fillcolor=lightsalmon"
        else ""
      in
      Printf.sprintf "  v%d [label=\"%s\",shape=circle%s];\n" v vname shape
    in
    let seen = Hashtbl.create 32 in
    List.iteri
      (fun i (p : Eval.prim_inst) ->
        Buffer.add_string buf
          (Printf.sprintf "  p%d [label=\"%s\",shape=box];\n" i
             (Preo_reo.Prim.kind_name p.pi_kind));
        List.iter
          (fun v ->
            if not (Hashtbl.mem seen v) then begin
              Hashtbl.add seen v ();
              Buffer.add_string buf (vertex_attrs v)
            end)
          (p.pi_tails @ p.pi_heads);
        List.iter
          (fun v -> Buffer.add_string buf (Printf.sprintf "  v%d -> p%d;\n" v i))
          p.pi_tails;
        List.iter
          (fun v -> Buffer.add_string buf (Printf.sprintf "  p%d -> v%d;\n" i v))
          p.pi_heads)
      prims;
    Buffer.add_string buf "}\n";
    print_string (Buffer.contents buf)
  | _ :: "trace" :: path :: name :: rest ->
    (* Run briefly under tracing and export what was recorded: the recorded
       rings as a human dump (default) or Chrome trace JSON (--json OUT),
       plus the metrics registry in Prometheus text format (--metrics). *)
    let json_out, metrics_wanted, rest =
      let rec split json metrics = function
        | "--json" :: out :: more -> split (Some out) metrics more
        | "--json" :: [] -> bad_operand "--json: missing output file"
        | "--metrics" :: more -> split json true more
        | x :: more ->
          let j, m, r = split json metrics more in
          (j, m, x :: r)
        | [] -> (json, metrics, [])
      in
      split None false rest
    in
    Preo.set_tracing true;
    let c = compiled path name in
    let inst = Preo.instantiate c ~lengths:(parse_lengths rest) in
    let threads =
      List.concat_map
        (fun (gname, is_source) ->
          if is_source then
            Array.to_list
              (Array.map
                 (fun p ->
                   Preo.Task.spawn (fun () ->
                       let i = ref 0 in
                       while !i < 5 do
                         Preo.Port.send p (Preo.Value.int !i);
                         incr i
                       done))
                 (Preo.outports inst gname))
          else
            Array.to_list
              (Array.map
                 (fun p ->
                   Preo.Task.spawn (fun () ->
                       while true do
                         ignore (Preo.Port.recv p)
                       done))
                 (Preo.inports inst gname)))
        (Preo.groups inst)
    in
    Thread.delay 0.5;
    Preo.shutdown inst;
    List.iter (fun t -> try Preo.Task.join t with _ -> ()) threads;
    (match json_out with
     | Some out ->
       write_file out (Preo.chrome_trace inst);
       Printf.printf "wrote %s\n" out
     | None -> print_string (Preo.dump_trace inst));
    if metrics_wanted then print_string (Preo.Metrics.to_prometheus ())
  | _ :: "dot" :: path :: name :: rest ->
    let large = large_automaton (compiled path name) (parse_lengths rest) in
    print_string (Preo_automata.Dot.automaton ~name large)
  | _ :: "verify" :: path :: name :: rest ->
    let props, rest =
      let rec split acc = function
        | "--prop" :: p :: more -> split (p :: acc) more
        | x :: more ->
          let ps, r = split acc more in
          (ps, x :: r)
        | [] -> (acc, [])
      in
      split [] rest
    in
    let large, bindings =
      large_automaton_full (compiled path name) (parse_lengths rest)
    in
    Printf.printf "%d reachable states, %d transitions\n" large.Automaton.nstates
      (Automaton.num_transitions large);
    (match Verify.deadlocks large with
     | [] -> print_endline "deadlock-free"
     | ce :: _ ->
       Printf.printf "DEADLOCK reachable after %d steps\n"
         (List.length ce.Verify.path);
       exit 1);
    let resolve pname =
      (* "tl[2]" or scalar "hd" against the boundary bindings *)
      let base, idx =
        match String.index_opt pname '[' with
        | Some i ->
          ( String.sub pname 0 i,
            int_of_string
              (String.sub pname (i + 1) (String.length pname - i - 2)) )
        | None -> (pname, 1)
      in
      match List.assoc_opt base bindings with
      | Some vs when idx >= 1 && idx <= Array.length vs -> Some vs.(idx - 1)
      | _ -> None
    in
    List.iter
      (fun psrc ->
        match Preo_verify.Prop.parse psrc with
        | Error msg ->
          Printf.printf "property %S: parse error: %s\n" psrc msg;
          exit 2
        | Ok prop -> begin
          match Preo_verify.Prop.check ~resolve large prop with
          | Ok () -> Printf.printf "property %S holds\n" psrc
          | Error msg ->
            Printf.printf "property %S FAILS: %s\n" psrc msg;
            exit 1
        end)
      (List.rev props)
  | _ :: "compile" :: rest ->
    (* Static view of what the run-time dispatch compiler will do: every
       medium transition is solved and lowered exactly as the composer's
       [lower] would (the JIT builds product entries on demand from these),
       and the partitioner runs with sequentialization on, so the printed
       region layout is the one a partitioned instantiation would use. *)
    let dump, rest =
      let rec split d = function
        | "--dump" :: more -> split true more
        | x :: more ->
          let d', r = split d more in
          (d', x :: r)
        | [] -> (d, [])
      in
      split false rest
    in
    (match rest with
     | path :: name :: rest ->
       let c = compiled path name in
       let bindings, sources, sinks =
         Eval.boundary_of_def c.Preo.def ~lengths:(parse_lengths rest)
       in
       let venv = Eval.venv ~ints:[] ~arrays:bindings in
       let autos = Eval.small_automata (Eval.prims venv c.Preo.flat.Ast.c_body) in
       let plan =
         Preo_runtime.Partition.split ~sequentialize:true
           ~sources:(Iset.of_list (Array.to_list sources))
           ~sinks:(Iset.of_list (Array.to_list sinks))
           autos
       in
       Printf.printf "%s: %d medium(s), %d region(s), %d bridge(s), %d fused\n"
         name (List.length autos)
         (Array.length plan.Preo_runtime.Partition.regions)
         plan.Preo_runtime.Partition.nbridges
         plan.Preo_runtime.Partition.nfused;
       let ncompiled = ref 0 and ninterp = ref 0 and nunsat = ref 0 in
       let sync_names sync =
         let acc = ref [] in
         Iset.iter (fun v -> acc := Preo_automata.Vertex.name v :: !acc) sync;
         String.concat "," (List.rev !acc)
       in
       Array.iteri
         (fun ri (r : Preo_runtime.Partition.region) ->
           Printf.printf "region %d: %d medium(s)%s\n" ri
             (List.length r.Preo_runtime.Partition.mediums)
             (match r.Preo_runtime.Partition.bridge_peers with
              | [] -> ""
              | ps ->
                " bridges to "
                ^ String.concat "," (List.map string_of_int ps));
           List.iteri
             (fun mi (a : Automaton.t) ->
               if dump then Printf.printf "  medium %d.%d:\n" ri mi;
               Array.iteri
                 (fun s trs ->
                   Array.iter
                     (fun (tr : Automaton.trans) ->
                       let entry =
                         match
                           Preo_automata.Command.solve
                             ~readable:
                               (Iset.inter a.Automaton.sources tr.Automaton.sync)
                             ~writable:
                               (Iset.inter a.Automaton.sinks tr.Automaton.sync)
                             tr.Automaton.constr
                         with
                         | Error _ ->
                           incr nunsat;
                           "unsatisfiable (never fires)"
                         | Ok cmd -> begin
                           match Preo_automata.Command.compile cmd with
                           | Some k ->
                             incr ncompiled;
                             Printf.sprintf "compiled, %d residual guard(s)"
                               (Preo_automata.Command.compiled_nguards k)
                           | None ->
                             incr ninterp;
                             "interpreted (late-bound data function)"
                         end
                       in
                       if dump then
                         Printf.printf "    s%d --{%s}--> s%d  %s\n" s
                           (sync_names tr.Automaton.sync) tr.Automaton.target
                           entry)
                     trs)
                 a.Automaton.trans)
             r.Preo_runtime.Partition.mediums)
         plan.Preo_runtime.Partition.regions;
       Printf.printf
         "dispatch: %d compiled, %d interpreted, %d unsatisfiable\n" !ncompiled
         !ninterp !nunsat
     | _ -> bad_operand "compile: expected FILE CONNECTOR [ARR=N ...] [--dump]")
  | _ :: "worker" :: rest ->
    (* Shard-fabric worker: connect back to the host, rebuild the plan from
       the shipped configuration, run assigned regions until closed. Errors
       here are operational, not usage mistakes — report and exit without
       printing usage (the host's manager interprets the code). *)
    let port = ref None
    and token = ref None
    and retries = ref None
    and backoff = ref None in
    let rec parse = function
      | "--port" :: v :: more ->
        port := int_of_string_opt v;
        parse more
      | "--token" :: v :: more ->
        token := Some v;
        parse more
      | "--retries" :: v :: more ->
        retries := int_of_string_opt v;
        parse more
      | "--backoff" :: v :: more ->
        backoff := float_of_string_opt v;
        parse more
      | [] -> ()
      | x :: _ -> bad_operand "worker: unexpected argument %s" x
    in
    parse rest;
    (match (!port, !token) with
     | Some port, Some token ->
       let code =
         try
           Preo_dist.Shard.worker_main ?retries:!retries ?backoff:!backoff
             ~port ~token ()
         with e ->
           Printf.eprintf "preoc worker %s: %s\n" token (Printexc.to_string e);
           1
       in
       exit code
     | _ -> bad_operand "worker: expected --port P --token T")
  | _ :: "simulate" :: path :: name :: rest ->
    (* --deadline SECS: every port operation of the spamming tasks carries
       a deadline. On expiry the stall report is printed (which pending
       vertices, how many enabled transitions, engine counters) and the
       connector is poisoned with the report attached, so this doubles as a
       runtime deadlock detector for protocols too big to verify
       statically. *)
    let deadline_s, trace_out, backend, rest =
      let rec split dl tr bk = function
        | "--deadline" :: s :: more ->
          split (Some (parse_float_arg "--deadline" s)) tr bk more
        | "--deadline" :: [] -> bad_operand "--deadline: missing seconds"
        | "--trace" :: out :: more -> split dl (Some out) bk more
        | "--trace" :: [] -> bad_operand "--trace: missing output file"
        | "--backend" :: b :: more -> begin
          match Preo.Sched.of_string b with
          | Some bk -> split dl tr (Some bk) more
          | None ->
            bad_operand "--backend %s: expected 'automata' or 'coloring'" b
        end
        | "--backend" :: [] -> bad_operand "--backend: missing name"
        | x :: more ->
          let d, t, b, r = split dl tr bk more in
          (d, t, b, x :: r)
        | [] -> (dl, tr, bk, [])
      in
      split None None None rest
    in
    if trace_out <> None then Preo.set_tracing true;
    let c = compiled path name in
    let inst = Preo.instantiate ?backend c ~lengths:(parse_lengths rest) in
    let write_trace () =
      match trace_out with
      | Some out ->
        write_file out (Preo.chrome_trace inst);
        Printf.printf "wrote %s\n" out
      | None -> ()
    in
    let stall_lock = Mutex.create () in
    let stall : Preo.Engine.stall_report option ref = ref None in
    let on_timeout (r : Preo.Engine.stall_report) =
      Mutex.lock stall_lock;
      if !stall = None then stall := Some r;
      Mutex.unlock stall_lock;
      Preo.Connector.poison ~stall:r (Preo.connector inst) "deadline expired";
      raise (Preo.Engine.Timed_out r)
    in
    let deadline () = Option.map (fun s -> Unix.gettimeofday () +. s) deadline_s in
    let threads =
      List.concat_map
        (fun (gname, is_source) ->
          if is_source then
            Array.to_list
              (Array.map
                 (fun p ->
                   Preo.Task.spawn (fun () ->
                       let i = ref 0 in
                       while true do
                         (try Preo.Port.send ?deadline:(deadline ()) p
                                (Preo.Value.int !i)
                          with Preo.Engine.Timed_out r -> on_timeout r);
                         incr i
                       done))
                 (Preo.outports inst gname))
          else
            Array.to_list
              (Array.map
                 (fun p ->
                   Preo.Task.spawn (fun () ->
                       while true do
                         try ignore (Preo.Port.recv ?deadline:(deadline ()) p)
                         with Preo.Engine.Timed_out r -> on_timeout r
                       done))
                 (Preo.inports inst gname)))
        (Preo.groups inst)
    in
    Thread.delay 1.0;
    Format.printf "%a@." Preo.Connector.pp_stats
      (Preo.Connector.stats (Preo.connector inst));
    Preo.shutdown inst;
    List.iter (fun t -> try Preo.Task.join t with _ -> ()) threads;
    write_trace ();
    (match !stall with
     | None -> ()
     | Some r ->
       Printf.printf "TIMED OUT after %.3fs:\n%s\n" r.Preo.Engine.sr_waited
         (Preo.Engine.string_of_stall_report r);
       exit 1)
  | _ -> usage ()

(* Every failure mode of a CLI invocation — unknown subcommand (the fallback
   match arm), unreadable file, parse/check errors, malformed operands —
   lands on stderr with usage and exit code 2; only a connector that
   actually deadlocked or failed a property exits 1. *)
let () =
  try main () with
  | Preo.Error msg | Failure msg | Sys_error msg ->
    Printf.eprintf "preoc: %s\n" msg;
    usage ()
  | Preo.Connector.Compile_failure msg ->
    Printf.eprintf "preoc: composition failed: %s\n" msg;
    exit 1
