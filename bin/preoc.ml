(* preoc: command-line front end for the connector DSL.

     preoc check FILE                  parse + semantic check
     preoc print FILE                  pretty-print the parsed program
     preoc fmt FILE                    reformat a protocol file (canonical form)
     preoc flatten FILE CONN           flatten one definition
     preoc eval FILE CONN K=N ...      list the primitives for concrete sizes
     preoc automaton FILE CONN K=N ... compose and print the large automaton
     preoc dot FILE CONN K=N ...       Graphviz of the large automaton
     preoc graph FILE CONN K=N ...     Graphviz of the connector data flow
     preoc trace FILE CONN K=N ...     run 1s with port spammers, print fired steps
     preoc verify FILE CONN K=N ... [--prop P]
                                       deadlock/property check the composition
     preoc template FILE CONN          show the compile-time share
     preoc emit FILE CONN              generate a standalone OCaml module
     preoc simulate FILE CONN K=N ... [--deadline SECS]
                                       run with port-spamming tasks for 1s;
                                       with --deadline, a blocked operation
                                       times out and prints a stall report
     preoc catalog                     list the built-in connector families
*)

module Ast = Preo_lang.Ast
module Parser = Preo_lang.Parser
module Eval = Preo_lang.Eval
module Template = Preo_lang.Template
module Iset = Preo_support.Iset
module Automaton = Preo_automata.Automaton
module Product = Preo_automata.Product
module Verify = Preo_verify.Verify

let usage () =
  prerr_endline
    "usage: preoc \
     {check|print|flatten|eval|automaton|dot|verify|template|simulate} FILE \
     [CONNECTOR] [ARR=N ...] [--deadline SECS]\n\
     \       preoc catalog";
  exit 2

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_lengths args =
  List.map
    (fun s ->
      match String.index_opt s '=' with
      | Some i ->
        ( String.sub s 0 i,
          int_of_string (String.sub s (i + 1) (String.length s - i - 1)) )
      | None -> failwith (s ^ ": expected ARR=N"))
    args

let compiled path name = Preo.compile ~source:(read_file path) ~name

let large_automaton_full c lengths =
  let bindings, sources, sinks = Eval.boundary_of_def c.Preo.def ~lengths in
  let venv = Eval.venv ~ints:[] ~arrays:bindings in
  let prims = Eval.prims venv c.Preo.flat.Ast.c_body in
  let large = Product.all (Eval.small_automata prims) in
  let keep = Iset.of_list (Array.to_list sources @ Array.to_list sinks) in
  ( Automaton.trim
      (Automaton.hide (Iset.diff large.Automaton.vertices keep) large),
    bindings )

let large_automaton c lengths = fst (large_automaton_full c lengths)

let () =
  match Array.to_list Sys.argv with
  | _ :: "catalog" :: _ ->
    List.iter
      (fun (e : Preo_connectors.Catalog.entry) ->
        Printf.printf "%-16s %s\n" e.name e.description)
      Preo_connectors.Catalog.all
  | _ :: "check" :: path :: _ ->
    ignore (Preo.parse_check (read_file path));
    print_endline "ok"
  | _ :: "print" :: path :: _ ->
    Format.printf "%a@." Ast.pp_program (Preo.parse_check (read_file path))
  | _ :: "fmt" :: path :: _ ->
    (* parse (without semantic checks, so fragments format too) and print *)
    let p =
      try Parser.program (read_file path)
      with Parser.Error (msg, line) ->
        Printf.eprintf "parse error (line %d): %s\n" line msg;
        exit 2
    in
    Format.printf "%a@." Ast.pp_program p
  | _ :: "flatten" :: path :: name :: _ ->
    let c = compiled path name in
    Format.printf "%a@." Ast.pp_conn_def c.Preo.flat
  | _ :: "template" :: path :: name :: _ ->
    let c = compiled path name in
    Printf.printf
      "compile-time share of %s: %d static medium template(s), %d \
       dynamic-arity constituent(s)\n"
      name
      (Template.count_static_mediums c.Preo.template)
      (Template.count_dynamic_mediums c.Preo.template)
  | _ :: "emit" :: path :: name :: _ ->
    let c = compiled path name in
    print_string
      (Preo_lang.Codegen.connector
         ~module_comment:(Printf.sprintf "Connector %s from %s" name path)
         c.Preo.template)
  | _ :: "eval" :: path :: name :: rest ->
    let c = compiled path name in
    let bindings, _, _ =
      Eval.boundary_of_def c.Preo.def ~lengths:(parse_lengths rest)
    in
    let venv = Eval.venv ~ints:[] ~arrays:bindings in
    List.iter
      (fun (p : Eval.prim_inst) ->
        Printf.printf "%s(%s;%s)\n"
          (Preo_reo.Prim.kind_name p.pi_kind)
          (String.concat ","
             (List.map Preo_automata.Vertex.name p.pi_tails))
          (String.concat ","
             (List.map Preo_automata.Vertex.name p.pi_heads)))
      (Eval.prims venv c.Preo.flat.Ast.c_body)
  | _ :: "automaton" :: path :: name :: rest ->
    let large = large_automaton (compiled path name) (parse_lengths rest) in
    Format.printf "%a@." Automaton.pp large
  | _ :: "graph" :: path :: name :: rest ->
    (* Dataflow rendering: vertices as circles, primitives as boxes. *)
    let c = compiled path name in
    let bindings, sources, sinks =
      Eval.boundary_of_def c.Preo.def ~lengths:(parse_lengths rest)
    in
    let venv = Eval.venv ~ints:[] ~arrays:bindings in
    let prims = Eval.prims venv c.Preo.flat.Ast.c_body in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n  rankdir=LR;\n" name);
    let vertex_attrs v =
      let vname = Preo_automata.Vertex.name v in
      let shape =
        if Array.exists (Preo_automata.Vertex.equal v) sources then
          ",style=filled,fillcolor=lightblue"
        else if Array.exists (Preo_automata.Vertex.equal v) sinks then
          ",style=filled,fillcolor=lightsalmon"
        else ""
      in
      Printf.sprintf "  v%d [label=\"%s\",shape=circle%s];\n" v vname shape
    in
    let seen = Hashtbl.create 32 in
    List.iteri
      (fun i (p : Eval.prim_inst) ->
        Buffer.add_string buf
          (Printf.sprintf "  p%d [label=\"%s\",shape=box];\n" i
             (Preo_reo.Prim.kind_name p.pi_kind));
        List.iter
          (fun v ->
            if not (Hashtbl.mem seen v) then begin
              Hashtbl.add seen v ();
              Buffer.add_string buf (vertex_attrs v)
            end)
          (p.pi_tails @ p.pi_heads);
        List.iter
          (fun v -> Buffer.add_string buf (Printf.sprintf "  v%d -> p%d;\n" v i))
          p.pi_tails;
        List.iter
          (fun v -> Buffer.add_string buf (Printf.sprintf "  p%d -> v%d;\n" i v))
          p.pi_heads)
      prims;
    Buffer.add_string buf "}\n";
    print_string (Buffer.contents buf)
  | _ :: "trace" :: path :: name :: rest ->
    let c = compiled path name in
    let inst = Preo.instantiate c ~lengths:(parse_lengths rest) in
    List.iter
      (fun e ->
        Preo_runtime.Engine.set_on_fire e
          (Some
             (fun sync ->
               Printf.printf "step {%s}\n%!"
                 (String.concat ","
                    (List.map Preo_automata.Vertex.name
                       (Preo_support.Iset.elements sync))))))
      (Preo.Connector.engines (Preo.connector inst));
    let threads =
      List.concat_map
        (fun (gname, is_source) ->
          if is_source then
            Array.to_list
              (Array.map
                 (fun p ->
                   Preo.Task.spawn (fun () ->
                       let i = ref 0 in
                       while !i < 5 do
                         Preo.Port.send p (Preo.Value.int !i);
                         incr i
                       done))
                 (Preo.outports inst gname))
          else
            Array.to_list
              (Array.map
                 (fun p ->
                   Preo.Task.spawn (fun () ->
                       while true do
                         ignore (Preo.Port.recv p)
                       done))
                 (Preo.inports inst gname)))
        (Preo.groups inst)
    in
    Thread.delay 0.5;
    Preo.shutdown inst;
    List.iter (fun t -> try Preo.Task.join t with _ -> ()) threads
  | _ :: "dot" :: path :: name :: rest ->
    let large = large_automaton (compiled path name) (parse_lengths rest) in
    print_string (Preo_automata.Dot.automaton ~name large)
  | _ :: "verify" :: path :: name :: rest ->
    let props, rest =
      let rec split acc = function
        | "--prop" :: p :: more -> split (p :: acc) more
        | x :: more ->
          let ps, r = split acc more in
          (ps, x :: r)
        | [] -> (acc, [])
      in
      split [] rest
    in
    let large, bindings =
      large_automaton_full (compiled path name) (parse_lengths rest)
    in
    Printf.printf "%d reachable states, %d transitions\n" large.Automaton.nstates
      (Automaton.num_transitions large);
    (match Verify.deadlocks large with
     | [] -> print_endline "deadlock-free"
     | ce :: _ ->
       Printf.printf "DEADLOCK reachable after %d steps\n"
         (List.length ce.Verify.path);
       exit 1);
    let resolve pname =
      (* "tl[2]" or scalar "hd" against the boundary bindings *)
      let base, idx =
        match String.index_opt pname '[' with
        | Some i ->
          ( String.sub pname 0 i,
            int_of_string
              (String.sub pname (i + 1) (String.length pname - i - 2)) )
        | None -> (pname, 1)
      in
      match List.assoc_opt base bindings with
      | Some vs when idx >= 1 && idx <= Array.length vs -> Some vs.(idx - 1)
      | _ -> None
    in
    List.iter
      (fun psrc ->
        match Preo_verify.Prop.parse psrc with
        | Error msg ->
          Printf.printf "property %S: parse error: %s\n" psrc msg;
          exit 2
        | Ok prop -> begin
          match Preo_verify.Prop.check ~resolve large prop with
          | Ok () -> Printf.printf "property %S holds\n" psrc
          | Error msg ->
            Printf.printf "property %S FAILS: %s\n" psrc msg;
            exit 1
        end)
      (List.rev props)
  | _ :: "simulate" :: path :: name :: rest ->
    (* --deadline SECS: every port operation of the spamming tasks carries
       a deadline. On expiry the stall report is printed (which pending
       vertices, how many enabled transitions, engine counters) and the
       connector is poisoned with the report attached, so this doubles as a
       runtime deadlock detector for protocols too big to verify
       statically. *)
    let deadline_s, rest =
      let rec split acc = function
        | "--deadline" :: s :: more -> split (Some (float_of_string s)) more
        | x :: more ->
          let d, r = split acc more in
          (d, x :: r)
        | [] -> (acc, [])
      in
      split None rest
    in
    let c = compiled path name in
    let inst = Preo.instantiate c ~lengths:(parse_lengths rest) in
    let stall_lock = Mutex.create () in
    let stall : Preo.Engine.stall_report option ref = ref None in
    let on_timeout (r : Preo.Engine.stall_report) =
      Mutex.lock stall_lock;
      if !stall = None then stall := Some r;
      Mutex.unlock stall_lock;
      Preo.Connector.poison ~stall:r (Preo.connector inst) "deadline expired";
      raise (Preo.Engine.Timed_out r)
    in
    let deadline () = Option.map (fun s -> Unix.gettimeofday () +. s) deadline_s in
    let threads =
      List.concat_map
        (fun (gname, is_source) ->
          if is_source then
            Array.to_list
              (Array.map
                 (fun p ->
                   Preo.Task.spawn (fun () ->
                       let i = ref 0 in
                       while true do
                         (try Preo.Port.send ?deadline:(deadline ()) p
                                (Preo.Value.int !i)
                          with Preo.Engine.Timed_out r -> on_timeout r);
                         incr i
                       done))
                 (Preo.outports inst gname))
          else
            Array.to_list
              (Array.map
                 (fun p ->
                   Preo.Task.spawn (fun () ->
                       while true do
                         try ignore (Preo.Port.recv ?deadline:(deadline ()) p)
                         with Preo.Engine.Timed_out r -> on_timeout r
                       done))
                 (Preo.inports inst gname)))
        (Preo.groups inst)
    in
    Thread.delay 1.0;
    Format.printf "%a@." Preo.Connector.pp_stats
      (Preo.Connector.stats (Preo.connector inst));
    Preo.shutdown inst;
    List.iter (fun t -> try Preo.Task.join t with _ -> ()) threads;
    (match !stall with
     | None -> ()
     | Some r ->
       Printf.printf "TIMED OUT after %.3fs:\n%s\n" r.Preo.Engine.sr_waited
         (Preo.Engine.string_of_stall_report r);
       exit 1)
  | _ -> usage ()
