(* Chat room with presence: members join and leave a live broadcast
   connector while messages flow — the elastic-connector showcase.

   The room is one NBcastFifo instance: a single feed port fans every
   message out into one buffered inbox per member. A join grows the "hd"
   group (Preo.grow splices a fresh inbox fifo into the running product); a
   leave shrinks it (Preo.shrink retires the member's fifo once it has
   drained and poisons only that member's parked recv — everyone else keeps
   chatting). Each member runs as a task that receives until the targeted
   "detached" poison tells it it has left.

   The script is a deterministic 1000-event churn mix of joins, leaves and
   messages (LCG-driven), so the run is reproducible:

     dune exec examples/chat_room.exe -- 1000
*)

open Preo

let room_src =
  {|Room(feed;inbox[]) =
  Repl(feed;x[1..#inbox])
  mult prod (i:1..#inbox) Fifo1(x[i];inbox[i])|}

type member = {
  id : int;
  task : Task.t;
  received : int Atomic.t;
}

let () =
  let events = try int_of_string Sys.argv.(1) with _ -> 1000 in
  let inst =
    instantiate (compile ~source:room_src ~name:"Room") ~lengths:[ ("inbox", 2) ]
  in
  let feed = (outports inst "feed").(0) in
  let next_id = ref 0 in
  (* members in slot order: position k <-> group index k+1 *)
  let roster : member list ref = ref [] in
  let spawn_member idx =
    incr next_id;
    let id = !next_id in
    let inbox = inport_at inst "inbox" idx in
    let received = Atomic.make 0 in
    let body () =
      try
        while true do
          ignore (Port.recv inbox);
          Atomic.incr received
        done
      with Engine.Poisoned _ -> () (* "detached": this member left *)
    in
    { id; task = Task.spawn ~on:(sched inst) body; received }
  in
  (* the two seed members occupy slots 1 and 2 *)
  roster := [ spawn_member 1; spawn_member 2 ];
  let joins = ref 0 and leaves = ref 0 and messages = ref 0 in
  let delivered = ref 0 in
  (* deterministic LCG so every run replays the same churn script *)
  let seed = ref 0x2545F491 in
  let rand bound =
    seed := (!seed * 1103515245) + 12345;
    (!seed lsr 9) mod bound
  in
  let rec shrink_when_quiet budget idx =
    if budget = 0 then failwith "leave never became quiescent";
    match shrink ~index:idx inst "inbox" with
    | () -> ()
    | exception Preo_runtime.Composer.Not_quiescent _ ->
      (* the leaver is still draining its inbox; let it run *)
      Thread.yield ();
      shrink_when_quiet (budget - 1) idx
  in
  for ev = 1 to events do
    let n = List.length !roster in
    let die = rand 10 in
    if (die < 3 && n < 8) || n <= 1 then begin
      (* join: one splice, a fresh inbox, a fresh member task *)
      let idx = grow inst "inbox" in
      roster := !roster @ [ spawn_member idx ];
      incr joins
    end
    else if die < 6 && n > 1 then begin
      (* leave: pick any member; only their parked recv is poisoned *)
      let pos = rand n in
      let m = List.nth !roster pos in
      shrink_when_quiet 100_000 (pos + 1);
      roster := List.filteri (fun i _ -> i <> pos) !roster;
      Task.join m.task;
      delivered := !delivered + Atomic.get m.received;
      incr leaves
    end
    else begin
      (* message: broadcast to every current member's inbox *)
      Port.send feed (Value.int ev);
      incr messages
    end;
    if ev mod 100 = 0 then
      Printf.printf
        "after %4d events: %d members, %d joins, %d leaves, %d messages, %d \
         splices\n%!"
        ev (List.length !roster) !joins !leaves !messages
        (Connector.splices (connector inst))
  done;
  (* drain: everyone but the last member leaves; the room then closes *)
  while List.length !roster > 1 do
    match !roster with
    | _first :: m :: _ ->
      shrink_when_quiet 100_000 2;
      roster := List.filteri (fun i _ -> i <> 1) !roster;
      Task.join m.task;
      delivered := !delivered + Atomic.get m.received
    | _ -> assert false
  done;
  let last = List.hd !roster in
  shutdown inst;
  Task.join last.task;
  delivered := !delivered + Atomic.get last.received;
  Printf.printf
    "done: %d events (%d joins, %d leaves, %d messages), %d deliveries, %d \
     splices, %d steps\n"
    events !joins !leaves !messages !delivered
    (Connector.splices (connector inst))
    (steps inst)
