(* Protocols across process boundaries, sharded: the connector itself is
   partitioned over OS processes. The host keeps the broadcast (Repl) region
   and spawns `preoc worker` processes that each rebuild the same plan and
   run their assigned relay regions; every cross-process cut rides a
   batched, backpressured, exactly-once shard channel (see lib/dist/shard).

     dune exec examples/distributed.exe -- 2     # worker process count

   Each worker journals what it consumed, so the demo can show — after an
   orderly shutdown — that every branch received every published value
   exactly once, in order, across real process boundaries. *)

module Shard = Preo_dist.Shard
module Shard_stats = Preo_runtime.Shard_stats
open Preo_support

let src =
  {|NBcastFifo(tl;hd[]) =
  Repl(tl;x[1..#hd])
  mult prod (i:1..#hd) Fifo1(x[i];hd[i])|}

let () =
  let nworkers = try int_of_string Sys.argv.(1) with _ -> 2 in
  let branches = 2 * nworkers in
  let rounds = 40 in
  let lengths = [ ("hd", branches) ] in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "preo_distributed_%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  (* Inspect the plan to place regions: the Repl region (the one owning the
     publisher's boundary vertex) stays on the host, the relay regions
     round-robin over the workers. *)
  let regions =
    Shard.boundary_regions ~domains:(1 + nworkers) ~source:src
      ~name:"NBcastFifo" ~lengths ()
  in
  let hd = List.assoc "hd" regions in
  let place r = if r = 0 then 0 else ((r - 1) mod nworkers) + 1 in
  let workloads w =
    [ Shard.Consume
        { w_group = "hd";
          w_indices =
            List.filter (fun i -> place hd.(i) = w) (List.init branches Fun.id);
          w_clients = 1 } ]
  in
  let h =
    Shard.host ~domains:(1 + nworkers) ~window:16 ~journal_dir:dir ~nworkers
      ~place ~workloads ~source:src ~name:"NBcastFifo" ~lengths ()
  in
  Printf.printf "host: %d branches over %d worker processes (pids:%s)\n%!"
    branches nworkers
    (Array.fold_left
       (fun acc pid -> acc ^ " " ^ string_of_int pid)
       "" (Shard.worker_pids h));
  let publisher = Shard.outport_at h "tl" 0 in
  for r = 0 to rounds - 1 do
    Preo_runtime.Port.send publisher (Value.int r)
  done;
  (* wait until every branch's journal has every round *)
  let full () =
    List.for_all
      (fun ch ->
        List.length (Shard.read_journal (Shard.journal_path ~dir ~ch)) >= rounds)
      (List.init branches Fun.id)
  in
  let deadline = Unix.gettimeofday () +. 30.0 in
  while (not (full ())) && Unix.gettimeofday () < deadline do
    Thread.delay 0.02
  done;
  let statuses = Shard.shutdown h in
  List.iter
    (fun ch ->
      let vs = Shard.read_journal (Shard.journal_path ~dir ~ch) in
      let ok =
        List.length vs = rounds
        && List.for_all2 Value.equal vs (List.init rounds Value.int)
      in
      Printf.printf "branch %d (worker %d): %d values %s\n" ch (place hd.(ch))
        (List.length vs)
        (if ok then "exactly once, in order" else "MISMATCH"))
    (List.init branches Fun.id);
  List.iter
    (fun (pid, st) ->
      Printf.printf "worker %d: %s\n" pid
        (match st with
        | Unix.WEXITED 0 -> "clean exit"
        | Unix.WEXITED c -> Printf.sprintf "exit %d" c
        | _ -> "killed"))
    statuses;
  Printf.printf
    "wire: %d values in %d batch frames (%.1f per frame), %d acked\n"
    (Atomic.get Shard_stats.items) (Atomic.get Shard_stats.batches)
    (float_of_int (Atomic.get Shard_stats.items)
    /. float_of_int (max 1 (Atomic.get Shard_stats.batches)))
    (Atomic.get Shard_stats.acks);
  print_endline "every branch delivered across real process boundaries"
