(* Protocols across process boundaries: the connector (a round-robin
   distributor and the paper's ordered merger) lives on one "host"; worker
   tasks drive their ports remotely over TCP through the preo_dist bridges.
   Here the workers are threads for a self-contained demo, but each could be
   a separate OS process on another machine — the wire format is
   cross-binary.

     dune exec examples/distributed.exe -- 3
*)

open Preo
module Bridge = Preo_dist.Bridge

let () =
  let n = try int_of_string Sys.argv.(1) with _ -> 3 in
  let rounds = 4 in
  let base_port = 38000 in
  (* --- host side: owns both connectors and exports worker-facing ports *)
  let scatter =
    instantiate
      (Preo_connectors.Catalog.compiled (Preo_connectors.Catalog.find "distributor"))
      ~lengths:[ ("hd", n) ]
  in
  let gather =
    instantiate
      (Preo_connectors.Catalog.compiled
         (Preo_connectors.Catalog.find "ordered_merger"))
      ~lengths:[ ("tl", n); ("hd", n) ]
  in
  let listener = Bridge.listen_local ~port:base_port in
  let exporter =
    Task.spawn (fun () ->
        (* one work-in and one result-out descriptor per worker, in order *)
        for i = 0 to n - 1 do
          let fd_work = Bridge.accept_one listener in
          ignore (Bridge.serve_inport (inports scatter "hd").(i) fd_work);
          let fd_res = Bridge.accept_one listener in
          ignore (Bridge.serve_outport (outports gather "tl").(i) fd_res)
        done)
  in
  (* --- "remote" workers: talk to the host only through sockets *)
  let worker i () =
    let fd_work = Bridge.connect_local ~port:base_port () in
    let fd_res = Bridge.connect_local ~port:base_port () in
    let work = Bridge.remote_inport fd_work in
    let results = Bridge.remote_outport fd_res in
    for _ = 1 to rounds do
      let x = Value.to_int (Bridge.recv work) in
      Bridge.send results (Value.int (x * x))
    done;
    Bridge.close_remote fd_work;
    Bridge.close_remote fd_res;
    ignore i
  in
  (* --- master: local ports *)
  let master () =
    let work_out = (outports scatter "tl").(0) in
    let res_in = inports gather "hd" in
    for r = 1 to rounds do
      for i = 1 to n do
        Port.send work_out (Value.int (((r - 1) * n) + i))
      done;
      Printf.printf "round %d results:" r;
      Array.iter
        (fun p -> Printf.printf " %d" (Value.to_int (Port.recv p)))
        res_in;
      print_newline ()
    done
  in
  (* Workers must connect strictly in order (worker i owns port slot i), so
     spawn them one at a time after the exporter accepted the previous
     pair. For the demo we serialize the dials with a tiny delay. *)
  let workers =
    List.init n (fun i ->
        let t = Task.spawn (worker i) in
        Thread.delay 0.02;
        t)
  in
  Task.join (Task.spawn master);
  Task.join_all workers;
  Task.join exporter;
  Unix.close listener;
  shutdown scatter;
  shutdown gather;
  print_endline "all results collected in rank order across the wire"
