(* Dining philosophers: the forks, the pick-up discipline, everything is a
   connector written in the DSL; the verification library finds the deadlock
   of the naive protocol on the composed automaton *before running anything*,
   and the fixed protocol (last philosopher picks up right-then-left) is
   proven deadlock-free and then actually run.

     dune exec examples/philosophers.exe -- 4
*)

open Preo
module Verify = Preo_verify.Verify
module Automaton = Preo_automata.Automaton
module Product = Preo_automata.Product
module Iset = Preo_support.Iset

(* Per philosopher i: boundary ports al/ar (acquire left/right) and rl/rr
   (release). Each is replicated into the fork-token merger and into the
   philosopher's own order-enforcing sequencer. Fork f is shared by
   philosopher f (left hand) and philosopher f-1 (right hand, cyclically). *)
let phils ~fixed =
  Printf.sprintf
    {|
Phils(al[],ar[],rl[],rr[];) =
  prod (i:1..#al) {
    Repl2(al[i];a1[i],a2[i]) mult Repl2(ar[i];b1[i],b2[i])
    mult Repl2(rl[i];c1[i],c2[i]) mult Repl2(rr[i];d1[i],d2[i])
  }
  mult prod (f:1..#al) {
    Merger2(a1[f], b1[(f - 2 + #al) %% #al + 1]; g[f])
    mult Merger2(c1[f], d1[(f - 2 + #al) %% #al + 1]; q[f])
    mult Seq2(g[f], q[f];)
  }
  %s
|}
    (if fixed then
       {|mult prod (i:1..#al-1) Seq4(a2[i],b2[i],c2[i],d2[i];)
  mult Seq4(b2[#al],a2[#al],c2[#al],d2[#al];)|}
     else {|mult prod (i:1..#al) Seq4(a2[i],b2[i],c2[i],d2[i];)|})

let compose_model compiled n =
  (* Existing pipeline: evaluate and compose everything, then check. *)
  let lengths = [ ("al", n); ("ar", n); ("rl", n); ("rr", n) ] in
  let bindings, sources, sinks =
    Eval.boundary_of_def compiled.Preo.def ~lengths
  in
  let venv = Eval.venv ~ints:[] ~arrays:bindings in
  let prims = Eval.prims venv compiled.Preo.flat.Ast.c_body in
  let large = Product.all (Eval.small_automata prims) in
  let keep = Iset.of_list (Array.to_list sources @ Array.to_list sinks) in
  Automaton.trim (Automaton.hide (Iset.diff large.Automaton.vertices keep) large)

let () =
  let n = try int_of_string Sys.argv.(1) with _ -> 3 in
  let naive = compile ~source:(phils ~fixed:false) ~name:"Phils" in
  let fixed = compile ~source:(phils ~fixed:true) ~name:"Phils" in
  (match Verify.deadlocks (compose_model naive n) with
   | [] -> Printf.printf "naive protocol: no deadlock?! (unexpected)\n"
   | ce :: _ ->
     Printf.printf
       "naive protocol CAN deadlock: dead state reached after %d steps\n"
       (List.length ce.Verify.path));
  (* The same deadlock caught at run time: drive the naive protocol with
     every philosopher grabbing left-then-right, each blocking operation
     carrying a deadline. The first expiry prints the stall diagnosis —
     which boundary vertices are parked across the engines, and that no
     transition is enabled — then poisons the connector so the remaining
     philosophers are released with the report in their Poisoned payload. *)
  let naive_inst =
    instantiate naive ~lengths:[ ("al", n); ("ar", n); ("rl", n); ("rr", n) ]
  in
  let nal = outports naive_inst "al" and nar = outports naive_inst "ar" in
  let report = ref None in
  let greedy i () =
    let deadline = Unix.gettimeofday () +. 0.5 in
    try
      Port.send ~deadline nal.(i) Value.unit;
      (* let every philosopher pick up their left fork first: the classic
         hold-and-wait interleaving the verifier predicted *)
      Thread.delay 0.05;
      Port.send ~deadline nar.(i) Value.unit
    with
    | Engine.Timed_out r ->
      if !report = None then begin
        report := Some r;
        Connector.poison ~stall:r (connector naive_inst) "deadlock detected"
      end
    | Engine.Poisoned _ -> ()
  in
  Task.run_all (List.init n greedy);
  (match !report with
   | Some r ->
     Printf.printf "naive protocol deadlocks at run time too; stall report:\n%s\n"
       (Engine.string_of_stall_report r)
   | None -> Printf.printf "naive protocol did not stall?! (unexpected)\n");
  shutdown naive_inst;
  (match Verify.deadlocks (compose_model fixed n) with
   | [] -> Printf.printf "fixed protocol verified deadlock-free; running it...\n"
   | _ -> Printf.printf "fixed protocol still deadlocks?! (unexpected)\n");
  (* Run the verified protocol — traced: every firing, port-operation
     lifecycle and park/wake lands in the engine's ring, and the whole run is
     exported as Chrome trace-event JSON loadable in Perfetto. *)
  set_tracing true;
  let inst =
    instantiate fixed ~lengths:[ ("al", n); ("ar", n); ("rl", n); ("rr", n) ]
  in
  let al = outports inst "al" and ar = outports inst "ar" in
  let rl = outports inst "rl" and rr = outports inst "rr" in
  let meals = Array.make n 0 in
  let philosopher i () =
    for _ = 1 to 3 do
      (* The pick-up order lives in the connector: the ports just report
         intent, and the sequencer refuses out-of-order operations. For the
         last philosopher the connector expects right before left. *)
      if i = n - 1 then begin
        Port.send ar.(i) Value.unit;
        Port.send al.(i) Value.unit
      end
      else begin
        Port.send al.(i) Value.unit;
        Port.send ar.(i) Value.unit
      end;
      meals.(i) <- meals.(i) + 1;
      Port.send rl.(i) Value.unit;
      Port.send rr.(i) Value.unit
    done
  in
  Task.run_all (List.init n philosopher);
  Array.iteri (fun i m -> Printf.printf "philosopher %d ate %d times\n" i m)
    meals;
  let trace = chrome_trace inst in
  let oc = open_out "philosophers.trace.json" in
  output_string oc trace;
  close_out oc;
  Printf.printf "wrote philosophers.trace.json (load in Perfetto)\n";
  shutdown inst
