open Preo_support

type trans = {
  sync : Iset.t;
  constr : Constr.t;
  command : Command.t option;
  target : int;
}

type t = {
  nstates : int;
  initial : int;
  trans : trans array array;
  vertices : Iset.t;
  sources : Iset.t;
  sinks : Iset.t;
  cells : Iset.t;
}

let make ~nstates ~initial ~trans ~sources ~sinks =
  assert (nstates = Array.length trans);
  assert (initial >= 0 && initial < nstates);
  let vertices = ref (Iset.union sources sinks) in
  let cells = ref Iset.empty in
  Array.iter
    (Array.iter (fun tr ->
         assert (tr.target >= 0 && tr.target < nstates);
         vertices := Iset.union !vertices tr.sync;
         cells := Iset.union !cells (Constr.cells tr.constr)))
    trans;
  { nstates; initial; trans; vertices = !vertices; sources; sinks; cells = !cells }

let num_transitions a =
  Array.fold_left (fun acc ts -> acc + Array.length ts) 0 a.trans

let internal a = Iset.diff a.vertices (Iset.union a.sources a.sinks)

let map_vertices f a =
  let set s = Iset.of_list (List.map f (Iset.elements s)) in
  {
    a with
    trans =
      Array.map
        (Array.map (fun tr ->
             {
               tr with
               sync = set tr.sync;
               constr = Constr.map_vertices f tr.constr;
               command = Option.map (Command.map_vertices f) tr.command;
             }))
        a.trans;
    vertices = set a.vertices;
    sources = set a.sources;
    sinks = set a.sinks;
  }

let map_cells f a =
  let set s = Iset.of_list (List.map f (Iset.elements s)) in
  {
    a with
    trans =
      Array.map
        (Array.map (fun tr ->
             {
               tr with
               constr = Constr.map_cells f tr.constr;
               command = Option.map (Command.map_cells f) tr.command;
             }))
        a.trans;
    cells = set a.cells;
  }

let hide h a =
  {
    a with
    trans =
      Array.map
        (Array.map (fun tr -> { tr with sync = Iset.diff tr.sync h }))
        a.trans;
    vertices = Iset.diff a.vertices h;
    sources = Iset.diff a.sources h;
    sinks = Iset.diff a.sinks h;
  }

let optimize_labels a =
  {
    a with
    trans =
      Array.map
        (fun ts ->
          Array.of_list
            (List.filter_map
               (fun tr ->
                 match tr.command with
                 | Some _ -> Some tr
                 | None -> begin
                   match
                     Command.solve ~readable:a.sources ~writable:a.sinks
                       tr.constr
                   with
                   | Ok cmd -> Some { tr with command = Some cmd }
                   | Error _ -> None
                 end)
               (Array.to_list ts)))
        a.trans;
  }

let strip_commands a =
  {
    a with
    trans = Array.map (Array.map (fun tr -> { tr with command = None })) a.trans;
  }

let trans_equal t1 t2 =
  t1.target = t2.target && Iset.equal t1.sync t2.sync && t1.constr = t2.constr

let dedup_transitions ts =
  let keep = ref [] in
  Array.iter
    (fun tr -> if not (List.exists (trans_equal tr) !keep) then keep := tr :: !keep)
    ts;
  Array.of_list (List.rev !keep)

let trim a =
  let renum = Array.make a.nstates (-1) in
  let order = ref [] in
  let count = ref 0 in
  let queue = Queue.create () in
  renum.(a.initial) <- 0;
  order := [ a.initial ];
  count := 1;
  Queue.push a.initial queue;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    Array.iter
      (fun tr ->
        if renum.(tr.target) < 0 then begin
          renum.(tr.target) <- !count;
          incr count;
          order := tr.target :: !order;
          Queue.push tr.target queue
        end)
      a.trans.(s)
  done;
  let old_states = Array.of_list (List.rev !order) in
  let trans =
    Array.map
      (fun old_s ->
        dedup_transitions
          (Array.map
             (fun tr -> { tr with target = renum.(tr.target) })
             a.trans.(old_s)))
      old_states
  in
  make ~nstates:!count ~initial:0 ~trans ~sources:a.sources ~sinks:a.sinks

let label_bisimilar a p q =
  if p = q then true
  else begin
    let n = a.nstates in
    let rel = Array.make_matrix n n true in
    (* Greatest fixpoint of the label-only bisimulation game: refine until
       no pair is removed. Data (constraints, commands, cells) is ignored —
       callers that care about stored values must encode them in states, as
       the fifo primitives do (a full fifo1's state is not label-bisimilar
       to its empty initial state, so quiescence checks built on this cannot
       discard buffered data). *)
    let changed = ref true in
    let simulates x y =
      (* every transition of [x] has a related-match in [y] *)
      Array.for_all
        (fun tx ->
          Array.exists
            (fun ty -> Iset.equal tx.sync ty.sync && rel.(tx.target).(ty.target))
            a.trans.(y))
        a.trans.(x)
    in
    while !changed do
      changed := false;
      for x = 0 to n - 1 do
        for y = 0 to n - 1 do
          if rel.(x).(y) && not (simulates x y && simulates y x) then begin
            rel.(x).(y) <- false;
            changed := true
          end
        done
      done
    done;
    rel.(p).(q)
  end

let pp ppf a =
  Format.fprintf ppf "@[<v>automaton: %d states, %d transitions, initial %d@,"
    a.nstates (num_transitions a) a.initial;
  Format.fprintf ppf "sources %a sinks %a@," Iset.pp a.sources Iset.pp a.sinks;
  Array.iteri
    (fun s ts ->
      Array.iter
        (fun tr ->
          Format.fprintf ppf "  %d --%a %a--> %d@," s Iset.pp tr.sync Constr.pp
            tr.constr tr.target)
        ts)
    a.trans;
  Format.fprintf ppf "@]"

let pp_stats ppf a =
  Format.fprintf ppf "%d states / %d transitions / %d vertices / %d cells"
    a.nstates (num_transitions a) (Iset.cardinal a.vertices)
    (Iset.cardinal a.cells)
