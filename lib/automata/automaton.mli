(** Constraint automata: the formal semantics of connectors
    (Baier–Sirjani–Arbab–Rutten 2006, as used by the Reo compilers).

    States are the connector's internal configurations, transitions its
    global execution steps. Each transition carries the set of vertices
    through which messages flow synchronously in that step ([sync]), a data
    constraint relating the values involved, and optionally a precompiled
    {!Command} (the label-simplification optimization). *)

open Preo_support

type trans = {
  sync : Iset.t;  (** visible vertices firing in this step *)
  constr : Constr.t;
  command : Command.t option;  (** [Some _] once label-optimized *)
  target : int;
}

type t = {
  nstates : int;
  initial : int;
  trans : trans array array;  (** [trans.(s)] = outgoing transitions of [s] *)
  vertices : Iset.t;  (** visible alphabet: sync sets range over this *)
  sources : Iset.t;  (** boundary vertices where tasks send (⊆ vertices) *)
  sinks : Iset.t;  (** boundary vertices where tasks receive (⊆ vertices) *)
  cells : Iset.t;  (** memory cells owned by this automaton *)
}

val make :
  nstates:int ->
  initial:int ->
  trans:trans array array ->
  sources:Iset.t ->
  sinks:Iset.t ->
  t
(** Computes [vertices] and [cells] from the transitions; checks shape
    invariants with assertions. Internal vertices (appearing in syncs but in
    neither [sources] nor [sinks]) are allowed. *)

val num_transitions : t -> int

val internal : t -> Iset.t
(** Vertices that are neither sources nor sinks. *)

val map_vertices : (Vertex.t -> Vertex.t) -> t -> t
(** Renames vertices everywhere (labels, polarity sets, constraints,
    commands). The function must be injective on [vertices]. *)

val map_cells : (int -> int) -> t -> t

val hide : Iset.t -> t -> t
(** [hide h a] removes the vertices [h] from the alphabet and all sync
    labels. Transitions whose sync becomes empty remain as silent (internal)
    steps. Constraints keep mentioning hidden ports as glue terms. *)

val optimize_labels : t -> t
(** Pre-solve every transition's constraint into a command; transitions with
    structurally unsatisfiable constraints are dropped. This is the
    compile-time transition-label optimization of the existing compiler. *)

val strip_commands : t -> t
(** Drop any precompiled commands (forces fire-time solving). *)

val trim : t -> t
(** Restrict to states reachable from [initial] (renumbering states), and
    remove duplicate transitions. *)

val label_bisimilar : t -> int -> int -> bool
(** [label_bisimilar a p q] — are states [p] and [q] strongly bisimilar when
    transitions are compared by sync label only (constraints and cells
    ignored)? Used by the elastic splice path to decide whether a medium
    sitting in state [p] can be replaced by a fresh copy starting from its
    initial state: label-bisimilarity to the initial state means the swap is
    invisible at the synchronization level. Because the fifo primitives
    encode buffered data as distinct states, a data-holding fifo state is
    never label-bisimilar to the empty initial state, so this check also
    protects against silently discarding buffered values. *)

val pp : Format.formatter -> t -> unit
val pp_stats : Format.formatter -> t -> unit
