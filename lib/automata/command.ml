open Preo_support

type expr =
  | Read_port of Vertex.t
  | Read_cell of int
  | Lit of Value.t
  | Apply of string * expr

type guard =
  | G_pred of { g_pred : string; g_positive : bool; g_arg : expr }
  | G_eq of expr * expr
type move = To_sink of Vertex.t * expr | To_cell of int * expr
type t = { guards : guard array; moves : move array }

type env = {
  read_send : Vertex.t -> Value.t;
  read_cell : int -> Value.t;
  write_cell : int -> Value.t -> unit;
  deliver : Vertex.t -> Value.t -> unit;
}

(* --- Solving ----------------------------------------------------------- *)

(* Base terms are the union-find keys; [App] terms become directed
   definitions "class := f(term)" since data functions cannot be inverted. *)

type base = B_port of Vertex.t | B_pre of int | B_post of int | B_const of Value.t

let strip = function
  | Constr.Port v -> `Base (B_port v)
  | Constr.Pre c -> `Base (B_pre c)
  | Constr.Post c -> `Base (B_post c)
  | Constr.Const v -> `Base (B_const v)
  | Constr.App (f, t) -> `App (f, t)

let solve ~readable ~writable (constr : Constr.t) : (t, string) result =
  let exception Unsolvable of string in
  try
    (* 1. Index every base term occurring anywhere in the constraint. *)
    let index : (base, int) Hashtbl.t = Hashtbl.create 16 in
    let terms = ref [] in
    let ncount = ref 0 in
    let intern b =
      match Hashtbl.find_opt index b with
      | Some i -> i
      | None ->
        let i = !ncount in
        incr ncount;
        Hashtbl.add index b i;
        terms := b :: !terms;
        i
    in
    let rec collect (t : Constr.term) =
      match strip t with
      | `Base b -> ignore (intern b)
      | `App (_, u) -> collect u
    in
    List.iter
      (function
        | Constr.Eq (a, b) -> collect a; collect b
        | Constr.Pred (_, _, x) -> collect x)
      constr;
    let n = !ncount in
    let uf = Union_find.create (max n 1) in
    (* 2. Union base-base equations; record app definitions. *)
    let defs : (int * string * Constr.term) list ref = ref [] in
    List.iter
      (function
        | Constr.Eq (a, b) -> begin
          match (strip a, strip b) with
          | `Base x, `Base y -> Union_find.union uf (intern x) (intern y)
          | `Base x, `App (f, u) | `App (f, u), `Base x ->
            (* store the raw index: the class representative may change as
               later equations union more terms in *)
            defs := (intern x, f, u) :: !defs
          | `App _, `App _ ->
            raise (Unsolvable "equation between two function applications")
        end
        | Constr.Pred _ -> ())
      constr;
    (* 3. Resolve each class to a source expression. *)
    let base_of = Array.make (max n 1) (B_const Value.Unit) in
    List.iteri (fun i b -> base_of.(!ncount - 1 - i) <- b) !terms;
    let resolved : (int, expr) Hashtbl.t = Hashtbl.create 8 in
    let in_progress : (int, unit) Hashtbl.t = Hashtbl.create 8 in
    let members = Array.make (max n 1) [] in
    for i = n - 1 downto 0 do
      let r = Union_find.find uf i in
      members.(r) <- base_of.(i) :: members.(r)
    done;
    let rec resolve_class r =
      match Hashtbl.find_opt resolved r with
      | Some e -> Some e
      | None ->
        if Hashtbl.mem in_progress r then None
        else begin
          Hashtbl.add in_progress r ();
          let direct =
            (* Prefer constants, then readable ports, then cell reads. *)
            let rec pick best = function
              | [] -> best
              | B_const v :: rest -> begin
                match best with
                | Some (Lit v') when not (Value.equal v v') ->
                  raise (Unsolvable "conflicting constants in one class")
                | _ -> pick (Some (Lit v)) rest
              end
              | B_port v :: rest when Iset.mem v readable -> begin
                match best with
                | Some (Lit _) -> pick best rest
                | _ -> pick (Some (Read_port v)) rest
              end
              | B_pre c :: rest -> begin
                match best with
                | Some (Lit _) | Some (Read_port _) -> pick best rest
                | _ -> pick (Some (Read_cell c)) rest
              end
              | (B_port _ | B_post _) :: rest -> pick best rest
            in
            pick None members.(r)
          in
          let result =
            match direct with
            | Some e -> Some e
            | None ->
              (* Fall back to a function definition targeting this class. *)
              let rec try_defs = function
                | [] -> None
                | (x, f, arg) :: rest when Union_find.find uf x = r -> begin
                  match resolve_term arg with
                  | Some e -> Some (Apply (f, e))
                  | None -> try_defs rest
                end
                | _ :: rest -> try_defs rest
              in
              try_defs !defs
          in
          Hashtbl.remove in_progress r;
          (match result with Some e -> Hashtbl.replace resolved r e | None -> ());
          result
        end
    and resolve_term (t : Constr.term) =
      match strip t with
      | `Base b -> resolve_class (Union_find.find uf (intern b))
      | `App (f, u) -> begin
        match resolve_term u with
        | Some e -> Some (Apply (f, e))
        | None -> None
      end
    in
    (* 4. Emit moves for all writable targets. *)
    let moves = ref [] in
    for r = 0 to n - 1 do
      if Union_find.find uf r = r then begin
        let sinks =
          List.filter_map
            (function
              | B_port v when Iset.mem v writable -> Some (`Sink v)
              | B_post c -> Some (`Cell c)
              | B_port _ | B_pre _ | B_const _ -> None)
            members.(r)
        in
        if sinks <> [] then begin
          match resolve_class r with
          | None ->
            raise
              (Unsolvable
                 "under-determined constraint: a sink or cell write has no \
                  data source")
          | Some e ->
            List.iter
              (fun s ->
                moves :=
                  (match s with
                   | `Sink v -> To_sink (v, e)
                   | `Cell c -> To_cell (c, e))
                  :: !moves)
              sinks
        end
      end
    done;
    (* 5. Predicate guards. *)
    let guards =
      List.filter_map
        (function
          | Constr.Pred (p, pos, arg) -> begin
            match resolve_term arg with
            | Some e -> Some (G_pred { g_pred = p; g_positive = pos; g_arg = e })
            | None ->
              raise (Unsolvable "predicate argument has no data source")
          end
          | Constr.Eq _ -> None)
        constr
    in
    (* 6. Classes with several independent sources: conflicting constants
       are statically unsatisfiable; other combinations become runtime
       equality guards. *)
    let eq_guards = ref [] in
    for r = 0 to n - 1 do
      if Union_find.find uf r = r then begin
        let consts = ref [] and others = ref [] in
        List.iter
          (fun b ->
            match b with
            | B_const v ->
              if not (List.exists (Value.equal v) !consts) then
                consts := v :: !consts
            | B_port p when Iset.mem p readable ->
              others := Read_port p :: !others
            | B_pre c -> others := Read_cell c :: !others
            | B_port _ | B_post _ -> ())
          members.(r);
        (match !consts with
         | _ :: _ :: _ -> raise (Unsolvable "conflicting constants in one class")
         | _ -> ());
        let sources =
          List.map (fun v -> Lit v) !consts @ List.rev !others
        in
        match sources with
        | [] | [ _ ] -> ()
        | rep :: rest ->
          List.iter (fun e -> eq_guards := G_eq (rep, e) :: !eq_guards) rest
      end
    done;
    Ok
      {
        guards = Array.of_list (guards @ List.rev !eq_guards);
        moves = Array.of_list (List.rev !moves);
      }
  with
  | Unsolvable msg -> Error msg
  | Failure msg -> Error msg

(* --- Evaluation -------------------------------------------------------- *)

let rec eval env = function
  | Read_port v -> env.read_send v
  | Read_cell c -> env.read_cell c
  | Lit v -> v
  | Apply (f, e) -> (Datafun.find_fn f) (eval env e)

let guards_hold t env =
  Array.for_all
    (fun g ->
      match g with
      | G_pred { g_pred; g_positive; g_arg } ->
        (Datafun.find_pred g_pred) (eval env g_arg) = g_positive
      | G_eq (a, b) -> Value.equal (eval env a) (eval env b))
    t.guards

let execute t env =
  (* Read all sources before performing any write, so a cell can be both
     consumed and refilled within one step. *)
  let staged =
    Array.map
      (fun m ->
        match m with
        | To_sink (v, e) -> `Sink (v, eval env e)
        | To_cell (c, e) -> `Cell (c, eval env e))
      t.moves
  in
  Array.iter
    (function
      | `Sink (v, value) -> env.deliver v value
      | `Cell (c, value) -> env.write_cell c value)
    staged

(* --- Compilation -------------------------------------------------------- *)

(* A command lowered into closed OCaml closures: every [Datafun] name is
   looked up once here (not per evaluation, through a mutex), constant
   guards are folded away, and the guard check + move execution fuse into a
   single [fire] call. The closures only touch the world through the same
   [env] the interpreter uses, so a compiled command is observationally
   identical to [guards_hold]+[execute] — certified by the differential
   suite over the whole catalog.

   Semantics of folding: data functions and predicates are pure functions of
   their argument (the Reo contract; all stock ones are), so a predicate
   applied to a literal can be decided at compile time. A name that is not
   registered at compile time makes the command "exotic": {!compile} returns
   [None] and the interpreter keeps late-binding it per evaluation. *)

type compiled = {
  k_nguards : int;  (** residual (unfolded) guards; 0 = batchable *)
  k_fire : env -> bool;
      (** check the residual guards; when they hold, execute the moves
          (through [env], so writes stage wherever the caller stages them)
          and return [true]. A statically false guard yields a [fire] that
          is constantly [false]. *)
}

let compiled_nguards k = k.k_nguards

exception Not_compilable

let rec lower_expr : expr -> env -> Value.t = function
  | Read_port v -> fun env -> env.read_send v
  | Read_cell c -> fun env -> env.read_cell c
  | Lit v -> fun _ -> v
  | Apply (f, e) -> (
    let g = lower_expr e in
    match Datafun.lookup_fn f with
    | Some fn -> fun env -> fn (g env)
    | None -> raise Not_compilable)

type lowered_guard = L_true | L_false | L_test of (env -> bool)

let lower_guard = function
  | G_eq (Lit a, Lit b) -> if Value.equal a b then L_true else L_false
  | G_eq (a, b) ->
    let ea = lower_expr a and eb = lower_expr b in
    L_test (fun env -> Value.equal (ea env) (eb env))
  | G_pred { g_pred; g_positive; g_arg } -> (
    match Datafun.lookup_pred g_pred with
    | None -> raise Not_compilable
    | Some p -> (
      match g_arg with
      | Lit v -> if p v = g_positive then L_true else L_false
      | _ ->
        let a = lower_expr g_arg in
        if g_positive then L_test (fun env -> p (a env))
        else L_test (fun env -> not (p (a env)))))

let lower_move = function
  | To_sink (v, e) ->
    let g = lower_expr e in
    fun env -> env.deliver v (g env)
  | To_cell (c, e) ->
    let g = lower_expr e in
    fun env -> env.write_cell c (g env)

let compile (t : t) : compiled option =
  match
    let static_false = ref false in
    let tests =
      Array.to_list t.guards
      |> List.filter_map (fun g ->
             match lower_guard g with
             | L_true -> None
             | L_false ->
               static_false := true;
               None
             | L_test f -> Some f)
      |> Array.of_list
    in
    if !static_false then
      (* Constant-folded to never-enabled; keep the original guard count so
         nobody mistakes it for guard-free. *)
      { k_nguards = max 1 (Array.length t.guards); k_fire = (fun _ -> false) }
    else begin
      let exec =
        match t.moves with
        | [||] -> fun _ -> ()
        | [| m |] ->
          (* One move: its own read happens before its own write, so the
             read-before-write contract holds with no staging. *)
          lower_move m
        | moves ->
          (* Several moves: preserve [execute]'s contract (all sources read
             before any write) by staging the values first. *)
          let writes =
            Array.map
              (function
                | To_sink (v, e) ->
                  (lower_expr e, fun env value -> env.deliver v value)
                | To_cell (c, e) ->
                  (lower_expr e, fun env value -> env.write_cell c value))
              moves
          in
          fun env ->
            let staged = Array.map (fun (g, _) -> g env) writes in
            Array.iteri (fun i (_, w) -> w env staged.(i)) writes
      in
      let k_fire =
        match Array.length tests with
        | 0 ->
          fun env ->
            exec env;
            true
        | 1 ->
          let g = tests.(0) in
          fun env ->
            if g env then begin
              exec env;
              true
            end
            else false
        | _ ->
          fun env ->
            Array.for_all (fun g -> g env) tests
            && begin
                 exec env;
                 true
               end
      in
      { k_nguards = Array.length tests; k_fire }
    end
  with
  | k -> Some k
  | exception Not_compilable -> None

let fire_compiled k env = k.k_fire env

(* --- Renaming ---------------------------------------------------------- *)

let rec map_expr_vertices f = function
  | Read_port v -> Read_port (f v)
  | (Read_cell _ | Lit _) as e -> e
  | Apply (name, e) -> Apply (name, map_expr_vertices f e)

let rec map_expr_cells f = function
  | Read_cell c -> Read_cell (f c)
  | (Read_port _ | Lit _) as e -> e
  | Apply (name, e) -> Apply (name, map_expr_cells f e)

let map_with fe fv fc t =
  {
    guards =
      Array.map
        (fun g ->
          match g with
          | G_pred p -> G_pred { p with g_arg = fe p.g_arg }
          | G_eq (a, b) -> G_eq (fe a, fe b))
        t.guards;
    moves =
      Array.map
        (function
          | To_sink (v, e) -> To_sink (fv v, fe e)
          | To_cell (c, e) -> To_cell (fc c, fe e))
        t.moves;
  }

let map_vertices f t = map_with (map_expr_vertices f) f Fun.id t
let map_cells f t = map_with (map_expr_cells f) Fun.id f t

(* --- Printing ---------------------------------------------------------- *)

let rec pp_expr ppf = function
  | Read_port v -> Vertex.pp ppf v
  | Read_cell c -> Format.fprintf ppf "cell(%d)" c
  | Lit v -> Value.pp ppf v
  | Apply (f, e) -> Format.fprintf ppf "%s(%a)" f pp_expr e

let pp ppf t =
  let pp_guard ppf g =
    match g with
    | G_pred { g_pred; g_positive; g_arg } ->
      Format.fprintf ppf "%s%s(%a)"
        (if g_positive then "" else "!")
        g_pred pp_expr g_arg
    | G_eq (a, b) -> Format.fprintf ppf "%a == %a" pp_expr a pp_expr b
  in
  let pp_move ppf = function
    | To_sink (v, e) -> Format.fprintf ppf "%a := %a" Vertex.pp v pp_expr e
    | To_cell (c, e) -> Format.fprintf ppf "cell(%d) := %a" c pp_expr e
  in
  Format.fprintf ppf "[%a | %a]"
    (Format.pp_print_seq ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_guard)
    (Array.to_seq t.guards)
    (Format.pp_print_seq ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_move)
    (Array.to_seq t.moves)
