(** Executable data-flow commands, compiled from transition constraints.

    Solving a constraint once — at compile/composition time — and replaying
    the resulting command on every firing is the transition-label
    optimization of the existing Reo compiler (Jongmans & Arbab, "Take
    Command of Your Constraints!", COORDINATION 2015). The runtime can also
    call {!solve} on every firing to model the unoptimized baseline. *)

open Preo_support

type expr =
  | Read_port of Vertex.t  (** value offered by the pending send at a source vertex *)
  | Read_cell of int
  | Lit of Value.t
  | Apply of string * expr  (** function looked up in {!Datafun} at evaluation *)

type guard =
  | G_pred of { g_pred : string; g_positive : bool; g_arg : expr }
  | G_eq of expr * expr
      (** runtime data equality, emitted when one equivalence class has
          several independent sources (e.g. equality-testing drains, or a
          port constrained to a constant) *)

type move =
  | To_sink of Vertex.t * expr  (** complete the pending receive at a sink vertex *)
  | To_cell of int * expr

type t = { guards : guard array; moves : move array }

type env = {
  read_send : Vertex.t -> Value.t;
      (** value of the pending send operation at a firing source vertex *)
  read_cell : int -> Value.t;
  write_cell : int -> Value.t -> unit;
  deliver : Vertex.t -> Value.t -> unit;
      (** complete the pending receive at a firing sink vertex *)
}

val solve :
  readable:Iset.t ->
  writable:Iset.t ->
  Constr.t ->
  (t, string) result
(** [solve ~readable ~writable c] turns constraint [c] into a command.
    [readable] are the boundary source vertices (their port terms denote
    values available from pending sends); [writable] are the boundary sink
    vertices (their port terms must be assigned). Port terms outside both
    sets are internal glue. [Error] means the constraint is structurally
    unsatisfiable (conflicting constants) or under-determined (some sink or
    cell write has no data source) — such a transition can never fire. *)

val guards_hold : t -> env -> bool
(** Evaluate the guards only (cheap pre-check before committing a firing). *)

type compiled
(** A command lowered into closed OCaml closures: [Datafun] names resolved
    once at compile time, constant guards folded, guard check and move
    execution fused into a single call. Observationally identical to
    {!guards_hold} + {!execute} on the same [env]. *)

val compile : t -> compiled option
(** Lower a command. [None] when a [Datafun] name it mentions is not yet
    registered — such "exotic" commands stay on the interpreted path, which
    late-binds names per evaluation. Data functions and predicates are
    treated as pure (the Reo contract), so a predicate applied to a literal
    is decided here, at compile time. *)

val fire_compiled : compiled -> env -> bool
(** Check the residual guards; when they hold, run the moves (reads before
    writes, exactly as {!execute}) and return [true]. A [false] performs no
    writes — safe against envs that stage effects. *)

val compiled_nguards : compiled -> int
(** Number of guards that survived constant folding — tests whose verdict
    can still change between firings. 0 means unconditionally enabled
    (modulo synchronization), which the engine's batching relies on. *)

val execute : t -> env -> unit
(** Run the moves: all source values are read first, then all writes and
    deliveries are performed, so a cell may be both read and overwritten in
    the same step. Guards are {e not} re-checked. *)

val map_vertices : (Vertex.t -> Vertex.t) -> t -> t
val map_cells : (int -> int) -> t -> t
val pp : Format.formatter -> t -> unit
