open Preo_support

let lock = Mutex.create ()
let fns : (string, Value.t -> Value.t) Hashtbl.t = Hashtbl.create 16
let preds : (string, Value.t -> bool) Hashtbl.t = Hashtbl.create 16

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let register_fn name f = with_lock (fun () -> Hashtbl.replace fns name f)
let register_pred name p = with_lock (fun () -> Hashtbl.replace preds name p)

let find_fn name =
  match with_lock (fun () -> Hashtbl.find_opt fns name) with
  | Some f -> f
  | None -> failwith (Printf.sprintf "Datafun: unregistered function %S" name)

let find_pred name =
  match with_lock (fun () -> Hashtbl.find_opt preds name) with
  | Some p -> p
  | None -> failwith (Printf.sprintf "Datafun: unregistered predicate %S" name)

let fn_exists name = with_lock (fun () -> Hashtbl.mem fns name)
let pred_exists name = with_lock (fun () -> Hashtbl.mem preds name)

(* Non-raising lookups for the command compiler: a [Some f] is the function
   itself, pre-bound into the compiled closure so the hot loop never pays
   the mutex + hashtable cost again. [None] sends the command down the
   interpreted path, which re-looks the name up at every evaluation — the
   behaviour late-registering programs rely on. *)
let lookup_fn name = with_lock (fun () -> Hashtbl.find_opt fns name)
let lookup_pred name = with_lock (fun () -> Hashtbl.find_opt preds name)

(* A few stock functions/predicates, always available. *)
let () =
  register_fn "id" Fun.id;
  register_fn "incr" (fun v -> Value.int (Value.to_int v + 1));
  register_fn "negate" (fun v -> Value.int (-Value.to_int v));
  register_pred "true" (fun _ -> true);
  register_pred "even" (fun v -> Value.to_int v mod 2 = 0);
  register_pred "odd" (fun v -> Value.to_int v mod 2 <> 0);
  register_pred "positive" (fun v -> Value.to_int v > 0)
