(** Registry of named data functions and predicates.

    Data-sensitive primitives (transformer and filter channels) refer to
    functions and predicates by name in the DSL; implementations are
    registered here by the host program. Registration is idempotent per name
    (last wins) and thread-safe. *)

val register_fn : string -> (Preo_support.Value.t -> Preo_support.Value.t) -> unit
val register_pred : string -> (Preo_support.Value.t -> bool) -> unit

val find_fn : string -> (Preo_support.Value.t -> Preo_support.Value.t)
(** Raises [Not_found] with a helpful message if unregistered. *)

val find_pred : string -> (Preo_support.Value.t -> bool)

val fn_exists : string -> bool
val pred_exists : string -> bool

val lookup_fn : string -> (Preo_support.Value.t -> Preo_support.Value.t) option
(** Non-raising lookup, for the command compiler: [Some f] is the function
    itself, pre-bound into the compiled closure so the hot loop never pays
    the registry mutex again. [None] keeps the command on the interpreted
    path, which re-resolves the name at every evaluation — the behaviour
    late-registering programs rely on. *)

val lookup_pred : string -> (Preo_support.Value.t -> bool) option
