open Preo_support

exception Budget_exceeded of string

let sync_compatible ~vertices_a ~vertices_b ~sync_a ~sync_b =
  Iset.equal (Iset.inter sync_a vertices_b) (Iset.inter sync_b vertices_a)

let combine_polarity a b =
  let open Automaton in
  let sources = Iset.union a.sources b.sources in
  let sinks = Iset.union a.sinks b.sinks in
  (* A vertex written by one constituent and read by the other is internal. *)
  let mixed = Iset.inter sources sinks in
  (Iset.diff sources mixed, Iset.diff sinks mixed)

let pair ?(label = "connector") ?(max_states = max_int) ?(max_trans = max_int)
    ?deadline ?(joint_independent = false) ?(open_vertices = Iset.empty)
    (a : Automaton.t) (b : Automaton.t) : Automaton.t =
  let va = a.vertices and vb = b.vertices in
  let shared = Iset.inter va vb in
  let index : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let states : (int * int) Dyn.t = Dyn.create () in
  let out : Automaton.trans list Dyn.t = Dyn.create () in
  let queue = Queue.create () in
  let ntrans = ref 0 in
  (* Budget failures must be diagnosable at large N: name the connector and
     report how far composition got before tripping. *)
  let time_exceeded () =
    raise
      (Budget_exceeded
         (Printf.sprintf
            "product of %s exceeded its compile-time budget (%d states, %d \
             transitions reached)"
            label (Dyn.length states) !ntrans))
  in
  let intern (sa, sb) =
    match Hashtbl.find_opt index (sa, sb) with
    | Some i -> i
    | None ->
      let i = Dyn.length states in
      if i >= max_states then
        raise
          (Budget_exceeded
             (Printf.sprintf
                "product of %s exceeded %d states (%d transitions reached)"
                label max_states !ntrans));
      Hashtbl.add index (sa, sb) i;
      ignore (Dyn.add states (sa, sb));
      ignore (Dyn.add out []);
      Queue.push i queue;
      i
  in
  let initial = intern (a.initial, b.initial) in
  assert (initial = 0);
  let emit i tr =
    incr ntrans;
    if !ntrans > max_trans then
      raise
        (Budget_exceeded
           (Printf.sprintf
              "product of %s exceeded %d transitions (%d states reached)"
              label max_trans (Dyn.length states)));
    (match deadline with
     | Some d when !ntrans land 0xFFF = 0 && Sys.time () > d -> time_exceeded ()
     | _ -> ());
    Dyn.set out i (tr :: Dyn.get out i)
  in
  while not (Queue.is_empty queue) do
    (match deadline with
     | Some d when Sys.time () > d -> time_exceeded ()
     | _ -> ());
    let i = Queue.pop queue in
    let sa, sb = Dyn.get states i in
    let ta = a.trans.(sa) and tb = b.trans.(sb) in
    (* Joint steps: transitions agreeing on the shared alphabet. A joint of
       two transitions with disjoint syncs is only kept if a later automaton
       could still force them to fire together, i.e. if both syncs touch
       [open_vertices]; joints that can never be externally synchronized are
       interleaving-equivalent to firing the parts in sequence and are
       dropped (unless [joint_independent] restores the textbook product). *)
    Array.iter
      (fun (t1 : Automaton.trans) ->
        (match deadline with
         | Some d when Sys.time () > d -> time_exceeded ()
         | _ -> ());
        let s1_shared = Iset.inter t1.sync shared in
        Array.iter
          (fun (t2 : Automaton.trans) ->
            if
              Iset.equal s1_shared (Iset.inter t2.sync shared)
              && (joint_independent
                 || (not (Iset.is_empty s1_shared))
                 || ((not (Iset.disjoint t1.sync open_vertices))
                    && not (Iset.disjoint t2.sync open_vertices)))
            then
              emit i
                {
                  Automaton.sync = Iset.union t1.sync t2.sync;
                  constr = Constr.conj t1.constr t2.constr;
                  command = None;
                  target = intern (t1.target, t2.target);
                })
          tb)
      ta;
    (* Independent steps of [a]. *)
    Array.iter
      (fun (t1 : Automaton.trans) ->
        if Iset.disjoint t1.sync shared then
          emit i { t1 with target = intern (t1.target, sb) })
      ta;
    (* Independent steps of [b]. *)
    Array.iter
      (fun (t2 : Automaton.trans) ->
        if Iset.disjoint t2.sync shared then
          emit i { t2 with target = intern (sa, t2.target) })
      tb
  done;
  let sources, sinks = combine_polarity a b in
  let trans =
    Array.init (Dyn.length out) (fun i ->
        Array.of_list (List.rev (Dyn.get out i)))
  in
  Automaton.make ~nstates:(Array.length trans) ~initial:0 ~trans ~sources
    ~sinks

let all ?(label = "connector") ?max_states ?max_trans ?max_seconds
    ?joint_independent = function
  | [] -> invalid_arg "Product.all: empty list"
  | [ a ] -> Automaton.trim a
  | first :: rest ->
    let deadline = Option.map (fun s -> Sys.time () +. s) max_seconds in
    let check_deadline ~ordered ~total =
      match deadline with
      | Some d when Sys.time () > d ->
        raise
          (Budget_exceeded
             (Printf.sprintf
                "product of %s exceeded its compile-time budget while \
                 ordering the composition (%d of %d automata ordered)"
                label ordered total))
      | _ -> ()
    in
    (* Fold in connectivity order: composing automata that share vertices as
       early as possible keeps the preserved independent joints (below) from
       accumulating across long unrelated prefixes. The selection itself is
       quadratic in the number of automata, so the compile-time budget is
       enforced here too, not only inside the pairwise products. *)
    let a, rest =
      let total = 1 + List.length rest in
      let chosen = ref [ first ] in
      let covered = ref first.Automaton.vertices in
      let remaining = ref rest in
      while !remaining <> [] do
        check_deadline ~ordered:(total - List.length !remaining) ~total;
        let score (x : Automaton.t) = Iset.cardinal (Iset.inter x.vertices !covered) in
        let best =
          List.fold_left
            (fun acc x ->
              match acc with
              | None -> Some x
              | Some b -> if score x > score b then Some x else acc)
            None !remaining
        in
        let b = Option.get best in
        chosen := b :: !chosen;
        covered := Iset.union !covered b.Automaton.vertices;
        remaining := List.filter (fun x -> x != b) !remaining
      done;
      match List.rev !chosen with
      | a :: rest -> (a, rest)
      | [] -> assert false
    in
    (* At each fold step the vertices of the automata still to be composed
       are "open" — independent joints touching them on both sides must be
       preserved for later synchronization. *)
    let rec opens = function
      | [] -> []
      | _ :: tl ->
        List.fold_left
          (fun s (x : Automaton.t) -> Iset.union s x.vertices)
          Iset.empty tl
        :: opens tl
    in
    List.fold_left2
      (fun acc b open_vertices ->
        Automaton.trim
          (pair ~label ?max_states ?max_trans ?deadline ?joint_independent
             ~open_vertices acc b))
      (Automaton.trim a) rest (opens rest)
