(** Synchronous product of constraint automata.

    A transition of [a] and one of [b] synchronize iff they agree on the
    shared alphabet: [sync_a ∩ V_b = sync_b ∩ V_a]. A transition fires alone
    iff it involves no shared vertices. This is the × operator of the
    constraint-automata semantics; the existing Reo compiler applies it
    exhaustively at compile time, the parametrized approach at run time. *)

exception Budget_exceeded of string
(** The message names the connector being composed ([?label]) and reports
    the state/transition counts reached when the budget tripped. *)

val pair :
  ?label:string ->
  ?max_states:int ->
  ?max_trans:int ->
  ?deadline:float ->
  ?joint_independent:bool ->
  ?open_vertices:Preo_support.Iset.t ->
  Automaton.t ->
  Automaton.t ->
  Automaton.t
(** Reachable product of two automata (BFS from the initial pair). Raises
    {!Budget_exceeded} if more than [max_states] product states or
    [max_trans] transitions are generated. Polarity: a vertex that is a
    source on one side and a sink on the other becomes internal.

    [joint_independent] (default [false]) controls whether two transitions
    with no shared vertices may also fire {e together} as one step. The
    constraint-automata product admits all such joint steps, but including
    them makes the number of transitions exponential in the number of
    independent parts; a joint independent step is observationally
    equivalent to firing the parts in sequence {e unless} a third automaton
    later synchronizes them. [open_vertices] are the vertices of automata
    still to be composed: independent joints whose both sides touch them are
    preserved, all others dropped. Setting [joint_independent] restores the
    textbook fully-synchronous product (used to reproduce the paper's §V-C
    transition blow-up). *)

val all :
  ?label:string ->
  ?max_states:int ->
  ?max_trans:int ->
  ?max_seconds:float ->
  ?joint_independent:bool ->
  Automaton.t list ->
  Automaton.t
(** Left fold of {!pair} with trimming, for the ahead-of-time ("existing
    compiler") pipeline. The budgets apply to every intermediate product;
    [max_seconds] additionally bounds the total CPU time ([Sys.time]) spent
    composing. Exceeding any budget raises {!Budget_exceeded} (a compile
    failure of the existing approach). Raises [Invalid_argument] on the
    empty list. *)

val sync_compatible :
  vertices_a:Preo_support.Iset.t ->
  vertices_b:Preo_support.Iset.t ->
  sync_a:Preo_support.Iset.t ->
  sync_b:Preo_support.Iset.t ->
  bool
(** The synchronization condition of ×, exposed for the JIT composer and for
    property tests. *)
