type t = int

let lock = Mutex.create ()
let next = ref 0
let names : (int, string) Hashtbl.t = Hashtbl.create 256

let fresh name =
  Mutex.lock lock;
  let id = !next in
  incr next;
  Hashtbl.replace names id name;
  Mutex.unlock lock;
  id

(* Under the lock: [fresh] may be resizing the table from another domain
   while a trace or error path formats a vertex. *)
let name v =
  Mutex.lock lock;
  let n =
    try Hashtbl.find names v with Not_found -> Printf.sprintf "v%d" v
  in
  Mutex.unlock lock;
  n
let equal = Int.equal
let compare = Int.compare
let pp ppf v = Format.fprintf ppf "%s#%d" (name v) v
let count () = !next
