open Preo_support
open Preo_automata

type row = {
  flow : Iset.t;
  no_flow : Iset.t;
  bflow : Iset.t;
  constr : Constr.t;
  target : int;
}

type t = {
  mediums : Automaton.t array;
  boundary : Iset.t;
  (* tables.(j).(s) = color-table rows of medium j at local state s, one per
     local transition; the implicit all-no-flow (idle) row is represented by
     simply not selecting the medium. *)
  tables : row array array array;
  (* vertex -> mediums whose alphabet contains it (at most two on
     well-formed graphs: the writer arc and the reader arc) *)
  owners : (Vertex.t, int list) Hashtbl.t;
}

type round = {
  r_sync : Iset.t;
  r_constr : Constr.t;
  r_moves : (int * int) array;
  r_key : string;
}

exception Propagation_budget of string

let make ~sources ~sinks mediums =
  let boundary = Iset.union sources sinks in
  let tables =
    Array.map
      (fun (a : Automaton.t) ->
        Array.init a.nstates (fun s ->
            Array.map
              (fun (tr : Automaton.trans) ->
                {
                  flow = tr.sync;
                  no_flow = Iset.diff a.vertices tr.sync;
                  bflow = Iset.inter tr.sync boundary;
                  constr = tr.constr;
                  target = tr.target;
                })
              a.trans.(s)))
      mediums
  in
  let owners = Hashtbl.create 64 in
  Array.iteri
    (fun j (a : Automaton.t) ->
      Iset.iter
        (fun v ->
          let prev = try Hashtbl.find owners v with Not_found -> [] in
          Hashtbl.replace owners v (j :: prev))
        a.vertices)
    mediums;
  { mediums; boundary; tables; owners }

let mediums t = t.mediums
let boundary t = t.boundary

(* One resolution: depth-first propagation from each seed row. [selection]
   maps medium slot -> chosen row index (-1 = not yet pulled; unpulled at
   emission time = idle row). The worklist holds fired vertices whose owners
   may not all have been pulled yet; consistency of an already-selected
   owner is implied — a row firing a vertex the owner colored no-flow would
   have been rejected against [idled] when it was tried. *)
let resolve t ~current ~pending ~rot ~max_rounds ~budget =
  let k = Array.length t.mediums in
  let iters = ref 0 in
  let found = ref [] in
  let nfound = ref 0 in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let selection = Array.make k (-1) in
  let exception Done in
  let spend () =
    incr iters;
    if !iters > budget then
      raise
        (Propagation_budget
           (Printf.sprintf
              "coloring propagation exceeded %d iterations over %d mediums \
               (%d rounds resolved so far)"
              budget k !nfound))
  in
  let emit () =
    let buf = Buffer.create 32 in
    for j = 0 to k - 1 do
      if selection.(j) >= 0 then (
        Buffer.add_string buf (string_of_int j);
        Buffer.add_char buf ':';
        Buffer.add_string buf (string_of_int current.(j));
        Buffer.add_char buf ':';
        Buffer.add_string buf (string_of_int selection.(j));
        Buffer.add_char buf ',')
    done;
    let key = Buffer.contents buf in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      let sync = ref Iset.empty in
      let constr = ref Constr.tt in
      let moves = ref [] in
      for j = k - 1 downto 0 do
        if selection.(j) >= 0 then begin
          let row = t.tables.(j).(current.(j)).(selection.(j)) in
          sync := Iset.union !sync row.flow;
          constr := Constr.conj row.constr !constr;
          moves := (j, row.target) :: !moves
        end
      done;
      found :=
        {
          r_sync = !sync;
          r_constr = !constr;
          r_moves = Array.of_list !moves;
          r_key = key;
        }
        :: !found;
      incr nfound;
      if !nfound >= max_rounds then raise Done
    end
  in
  (* [queue]: fired vertices still to be checked for unpulled owners;
     [fired]/[idled]: the partial coloring so far. Each round is enumerated
     exactly once, from its minimum-slot participant: a branch that would
     pull a medium below [seed] is abandoned — that coloring is (or was)
     found when the smaller slot acted as seed. Without this rule a round
     touching m mediums is rediscovered from all m of them, making the
     nothing-more-to-find confirmation scan quadratic in connector size. *)
  let rec close ~seed queue fired idled =
    match queue with
    | [] -> emit ()
    | v :: rest -> begin
      let js = try Hashtbl.find t.owners v with Not_found -> [] in
      if List.exists (fun j -> selection.(j) < 0 && j < seed) js then ()
      else
        match List.find_opt (fun j -> selection.(j) < 0) js with
        | None -> close ~seed rest fired idled
        | Some j ->
          let rows = t.tables.(j).(current.(j)) in
          let nrows = Array.length rows in
          for ii = 0 to nrows - 1 do
            (* rotate row preference with [rot] so successive resolutions
               surface different branches of a shared-seed choice *)
            let ri = (ii + rot) mod nrows in
            let row = rows.(ri) in
            spend ();
            let need = Iset.inter fired t.mediums.(j).vertices in
            if
              Iset.subset need row.flow
              && Iset.disjoint row.flow idled
              && Iset.subset row.bflow pending
            then begin
              selection.(j) <- ri;
              (* [v] stays queued: its other owner may still be unpulled. *)
              close ~seed
                (Iset.fold (fun u acc -> u :: acc) (Iset.diff row.flow fired)
                   queue)
                (Iset.union fired row.flow)
                (Iset.union idled row.no_flow);
              selection.(j) <- -1
            end
          done
    end
  in
  (try
     for jj = 0 to k - 1 do
       let j = (rot + jj) mod k in
       Array.iteri
         (fun ri row ->
           spend ();
           if Iset.subset row.bflow pending then begin
             selection.(j) <- ri;
             close ~seed:j (Iset.elements row.flow) row.flow row.no_flow;
             selection.(j) <- -1
           end)
         t.tables.(j).(current.(j))
     done
   with Done -> ());
  (List.rev !found, !iters)

(* --- Exhaustive LTS (verification path) ---------------------------------- *)

module Vec_key = struct
  type t = int array

  let equal (a : t) (b : t) =
    let n = Array.length a in
    n = Array.length b
    &&
    let rec go i = i >= n || (a.(i) = b.(i) && go (i + 1)) in
    go 0

  let hash (a : t) = Array.fold_left (fun acc x -> (acc * 31) + x + 1) 7 a
end

let lts ?(max_states = 20_000) ?(max_iters = 5_000_000) ~sources ~sinks
    mediums =
  let t = make ~sources ~sinks (Array.of_list mediums) in
  let module H = Hashtbl.Make (Vec_key) in
  let index : int H.t = H.create 64 in
  let states : int array Dyn.t = Dyn.create () in
  let out : Automaton.trans list Dyn.t = Dyn.create () in
  let queue = Queue.create () in
  let intern vec =
    match H.find_opt index vec with
    | Some i -> i
    | None ->
      let i = Dyn.length states in
      if i >= max_states then
        raise
          (Propagation_budget
             (Printf.sprintf "coloring LTS exceeded %d states" max_states));
      H.add index vec i;
      ignore (Dyn.add states vec);
      ignore (Dyn.add out []);
      Queue.push i queue;
      i
  in
  let initial =
    intern (Array.map (fun (a : Automaton.t) -> a.initial) t.mediums)
  in
  assert (initial = 0);
  let remaining = ref max_iters in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    let vec = Dyn.get states i in
    let rounds, iters =
      resolve t ~current:vec ~pending:t.boundary ~rot:0 ~max_rounds:max_int
        ~budget:!remaining
    in
    remaining := !remaining - iters;
    List.iter
      (fun r ->
        let target = Array.copy vec in
        Array.iter (fun (j, s) -> target.(j) <- s) r.r_moves;
        Dyn.set out i
          ({
             Automaton.sync = r.r_sync;
             constr = r.r_constr;
             command = None;
             target = intern target;
           }
           :: Dyn.get out i))
      rounds
  done;
  let trans =
    Array.init (Dyn.length out) (fun i ->
        Array.of_list (List.rev (Dyn.get out i)))
  in
  Automaton.trim
    (Automaton.make ~nstates:(Array.length trans) ~initial:0 ~trans ~sources
       ~sinks)
