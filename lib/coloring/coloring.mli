(** Connector-coloring round resolution (the coloring backend's core).

    Connector coloring ("Correlating Formal Semantic Models of Reo
    Connectors: Connector Coloring and Constraint Automata") decides each
    synchronization round by assigning every vertex one of two colors —
    {e flow} or {e no-flow} — such that every primitive agrees with the
    coloring. A primitive's agreement is captured by its {e color table}:
    one row per local transition (the transition's sync set flows, the rest
    of the primitive's vertices do not), plus the implicit all-no-flow row
    (the primitive idles). A consistent coloring of the whole graph is a
    fixed point of propagating these rows along shared vertices; each
    consistent coloring with at least one flowing primitive is one
    executable {e round}.

    This module computes rounds by propagation over the connector graph:
    seed a row of one primitive, push its flow vertices onto a worklist,
    and pull in each owner of a fired vertex, branching over its compatible
    rows. The cost of finding one round is proportional to the size of the
    connected synchronization region it covers — {e not} to the number of
    global transitions — which is what lets the coloring backend escape the
    product-automaton blow-up (§V-C): it never enumerates all rounds of a
    state, only the first [max_rounds] of them per resolution.

    Two colors cannot express context-sensitive behaviour (a primitive that
    fires only when the environment {e cannot} accept, e.g. the
    context-sensitive LossySync, needs a third color). This runtime's
    constraint-automata semantics are already context-insensitive, so
    2-coloring coincides with them exactly — certified by {!lts} +
    [Preo_verify.Bisim] over the connector catalog. *)

open Preo_support
open Preo_automata

type row = {
  flow : Iset.t;  (** vertices of the owning primitive colored flow *)
  no_flow : Iset.t;  (** its remaining vertices, colored no-flow *)
  bflow : Iset.t;  (** [flow] restricted to the boundary (viability test) *)
  constr : Constr.t;
  target : int;  (** local target state when this row fires *)
}

type t
(** Color tables for one connector: prepared medium automata (slot order),
    a boundary, per-(medium, local state) row arrays, and a vertex → owning
    mediums index. Immutable; rebuild after an elastic splice. *)

type round = {
  r_sync : Iset.t;  (** union of the participating rows' flow sets *)
  r_constr : Constr.t;  (** conjunction of their data constraints *)
  r_moves : (int * int) array;
      (** (medium slot, local target state) for each participant, in
          ascending slot order; non-participants keep their state *)
  r_key : string;
      (** canonical identity of the coloring: the participating
          (slot, local state, row) triples — stable across resolutions, so
          callers can memoize per-round work (e.g. solved commands) *)
}

exception Propagation_budget of string
(** A single resolution exceeded its iteration budget. With two colors this
    cannot happen on well-formed connectors resolved with a finite
    [max_rounds] cap — the budget is a backstop against adversarial
    structures, mirroring the JIT expander's expansion budget. *)

val make : sources:Iset.t -> sinks:Iset.t -> Automaton.t array -> t
(** Build the color tables. The mediums must already be prepared (hidden /
    trimmed / cell-renumbered) exactly as the caller's runtime uses them. *)

val mediums : t -> Automaton.t array
(** The medium array [make] was given (not a copy), in slot order. *)

val boundary : t -> Iset.t

val resolve :
  t ->
  current:int array ->
  pending:Iset.t ->
  rot:int ->
  max_rounds:int ->
  budget:int ->
  round list * int
(** [resolve t ~current ~pending ~rot ~max_rounds ~budget] finds up to
    [max_rounds] distinct rounds enabled at local states [current] whose
    boundary flow is covered by [pending], and returns them with the number
    of propagation iterations spent. Each round is enumerated exactly once,
    from its minimum-slot participating medium — propagation branches that
    reach below the current seed are cut — so confirming that nothing
    (more) is enabled costs one cheap failed probe per medium rather than a
    full re-propagation per medium. Seeds are scanned starting from medium
    [rot mod k] and row preference rotates with [rot]; callers bump [rot]
    across resolutions so rounds beyond the cap are not starved. When fewer
    than [max_rounds] rounds exist the scan is exhaustive: an empty result
    means nothing is enabled. Raises {!Propagation_budget} if [budget]
    iterations are exceeded. *)

val lts :
  ?max_states:int ->
  ?max_iters:int ->
  sources:Iset.t ->
  sinks:Iset.t ->
  Automaton.t list ->
  Automaton.t
(** The full labelled transition system the coloring semantics induces:
    breadth-first exploration of reachable local-state vectors, taking every
    round of every state (no [max_rounds] cap, all boundary vertices
    pending). Used by the verification suite to certify coloring ≡ product
    by bisimulation — it deliberately pays the exponential cost the runtime
    path avoids, guarded by [max_states] (default 20000) and [max_iters]
    (default 5e6). Raises {!Propagation_budget} when a guard trips. *)
