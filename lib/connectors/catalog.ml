type entry = {
  name : string;
  description : string;
  conn_name : string;
  source : string;
  lengths : int -> (string * int) list;
  exponential_choice : bool;
}

let tl_n n = [ ("tl", n) ]
let hd_n n = [ ("hd", n) ]
let tl_hd_n n = [ ("tl", n); ("hd", n) ]

let entry ?(exponential_choice = false) name description conn_name source
    lengths =
  { name; description; conn_name; source; lengths; exponential_choice }

let all =
  [
    entry "merger" "N producers, one consumer, nondeterministic choice"
      "NMerger"
      {|NMerger(tl[];hd) = Merger(tl[1..#tl];hd)|}
      tl_n;
    entry "replicator" "one producer, N consumers, synchronous broadcast"
      "NRepl"
      {|NRepl(tl;hd[]) = Repl(tl;hd[1..#hd])|}
      hd_n;
    entry "router" "one producer, exactly one of N consumers per datum"
      "NRouter"
      {|NRouter(tl;hd[]) = Router(tl;hd[1..#hd])|}
      hd_n;
    entry "ordered_merger"
      "the paper's running example (Fig. 9): N producers buffered and \
       forwarded to one consumer in strict round-robin order"
      "NOrderedMerger"
      {|XStage(tl;prev,next,hd) =
  Repl2(tl;prev,v) mult Fifo1(v;w) mult Repl2(w;next,hd)

NOrderedMerger(tl[];hd[]) =
  if (#tl == 1) {
    Fifo1(tl[1];hd[1])
  } else {
    prod (i:1..#tl) XStage(tl[i];prev[i],next[i],hd[i])
    mult prod (i:1..#tl-1) Seq2(next[i],prev[i+1];)
    mult Seq2(prev[1],next[#tl];)
  }|}
      tl_hd_n;
    entry "alternator"
      "N producers accepted in one synchronous step, emitted to one \
       consumer in index order"
      "NAlternator"
      {|NAlternator(tl[];hd) =
  prod (i:1..#tl) Repl2(tl[i];a[i],b[i])
  mult SyncDrain(b[1..#tl];)
  mult Sync(a[1];x[1])
  mult prod (i:2..#tl) Fifo1(a[i];x[i])
  mult prod (i:1..#tl) Repl2(x[i];m[i],s[i])
  mult Merger(m[1..#tl];hd)
  mult Seq(s[1..#tl];)|}
      tl_n;
    entry "sequencer"
      "token ring granting N clients a signal in strict round-robin order"
      "NSequencer"
      {|NSequencer(;hd[]) =
  prod (i:1..#hd) Repl2(v[i];hd[i],u[i])
  mult prod (i:1..#hd-1) Fifo1(u[i];v[i+1])
  mult Fifo1Full(u[#hd];v[1])|}
      hd_n;
    entry "barrier"
      "N senders synchronize in one step; each datum is delivered to the \
       matching receiver through a buffer (so sequential tasks can send, \
       then receive)"
      "NBarrier"
      {|NBarrier(tl[];hd[]) =
  prod (i:1..#tl) Repl2(tl[i];x[i],b[i])
  mult SyncDrain(b[1..#tl];)
  mult prod (i:1..#tl) Fifo1(x[i];hd[i])|}
      tl_hd_n;
    entry "lock" "mutual exclusion among N clients via a token buffer"
      "NLock"
      {|NLock(acq[],rel[];) =
  Merger(acq[1..#acq];q)
  mult Merger(rel[1..#rel];r)
  mult Fifo1Full(r;t)
  mult SyncDrain(q,t;)|}
      (fun n -> [ ("acq", n); ("rel", n) ]);
    entry "load_balancer"
      "one producer buffered-routed to whichever of N consumers is free"
      "NLoadBalancer"
      {|NLoadBalancer(tl;hd[]) =
  Router(tl;x[1..#hd])
  mult prod (i:1..#hd) Fifo1(x[i];hd[i])|}
      hd_n;
    entry "gather" "N buffered producers merged into one consumer" "NGather"
      {|NGather(tl[];hd) =
  prod (i:1..#tl) Fifo1(tl[i];m[i])
  mult Merger(m[1..#tl];hd)|}
      tl_n;
    entry "broadcast_fifo"
      "one producer broadcast into N per-consumer buffers" "NBcastFifo"
      {|NBcastFifo(tl;hd[]) =
  Repl(tl;x[1..#hd])
  mult prod (i:1..#hd) Fifo1(x[i];hd[i])|}
      hd_n;
    entry "token_ring"
      "a token circulates through N stations; station i receives the grant \
       and passes it on by sending"
      "NTokenRing"
      {|NTokenRing(tl[];hd[]) =
  prod (i:1..#tl-1) Fifo1(tl[i];w[i+1])
  mult Fifo1Full(tl[#tl];w[1])
  mult prod (i:1..#tl) Sync(w[i];hd[i])|}
      tl_hd_n;
    entry "relay_ring"
      "ring of N stations with double-buffered hops (a deeper pipeline)"
      "NRelayRing"
      {|NRelayRing(tl[];hd[]) =
  prod (i:1..#tl-1) {
    Fifo1(tl[i];c[i]) mult Fifo1(c[i];hd[i+1])
  }
  mult Fifo1Full(tl[#tl];c[#tl])
  mult Fifo1(c[#tl];hd[1])|}
      tl_hd_n;
    entry "fork_join"
      "one producer forks to N workers synchronously; their N replies join \
       into one result"
      "NForkJoin"
      {|NForkJoin(tl,ack[];work[],hd) =
  Repl(tl;work[1..#work])
  mult Repl2(ack[1];hd,k[1])
  mult prod (i:2..#ack) Sync(ack[i];k[i])
  mult SyncDrain(k[1..#ack];)|}
      (fun n -> [ ("ack", n); ("work", n) ]);
    entry "discriminator"
      "waits for one item from each of N producers (any order), then emits \
       a combined signal and resets"
      "NDiscriminator"
      {|NDiscriminator(tl[];hd) =
  prod (i:1..#tl) Fifo1(tl[i];x[i])
  mult Repl2(x[1];hd,k[1])
  mult prod (i:2..#tl) Sync(x[i];k[i])
  mult SyncDrain(k[1..#tl];)|}
      tl_n;
    entry "exchanger"
      "N parties exchange messages in one synchronous intake step, each \
       receiving its left neighbour's datum from a buffer"
      "NExchanger"
      {|NExchanger(tl[];hd[]) =
  prod (i:1..#tl) Repl2(tl[i];d[i],b[i])
  mult prod (i:1..#tl-1) Fifo1(d[i];hd[i+1])
  mult Fifo1(d[#tl];hd[1])
  mult SyncDrain(b[1..#tl];)|}
      tl_hd_n;
    entry "lossy_bcast"
      "one producer broadcast over lossy channels: each of the N consumers \
       independently takes or misses the datum (exponential synchronized \
       choice — the paper's §V-C shape)"
      "NLossyBcast"
      {|NLossyBcast(tl;hd[]) =
  Repl(tl;x[1..#hd])
  mult prod (i:1..#hd) LossySync(x[i];hd[i])|}
      hd_n ~exponential_choice:true;
    entry "distributor"
      "one producer dealt to N consumers in strict round-robin order"
      "NDistributor"
      {|NDistributor(tl;hd[]) =
  Router(tl;x[1..#hd])
  mult prod (i:1..#hd) Repl2(x[i];hd[i],s[i])
  mult Seq(s[1..#hd];)|}
      hd_n;
    entry "sampler"
      "one producer fans out through shift-lossy buffers: each of N \
       consumers always reads the newest datum, slow consumers skip"
      "NSampler"
      {|NSampler(tl;hd[]) =
  Repl(tl;x[1..#hd])
  mult prod (i:1..#hd) ShiftLossy(x[i];hd[i])|}
      hd_n;
    entry "parallel_syncs"
      "N independent synchronous sender/receiver pairs (embarrassingly \
       parallel control baseline)"
      "NParallelSyncs"
      {|NParallelSyncs(tl[];hd[]) =
  prod (i:1..#tl) Sync(tl[i];hd[i])|}
      tl_hd_n;
    entry "crossbar"
      "N producers funneled through a single buffer and routed exclusively \
       to N consumers"
      "NCrossbar"
      {|NCrossbar(tl[];hd[]) =
  Merger(tl[1..#tl];a)
  mult Fifo1(a;b)
  mult Router(b;hd[1..#hd])|}
      tl_hd_n;
    entry "xform_lanes"
      "N independent lanes applying a data function before and after a \
       buffer (dispatch-heavy: every firing evaluates Datafun applications)"
      "NXformLanes"
      {|NXformLanes(tl[];hd[]) =
  prod (i:1..#tl) {
    Transform<incr>(tl[i];x[i])
    mult Fifo1(x[i];y[i])
    mult Transform<incr>(y[i];hd[i])
  }|}
      tl_hd_n;
  ]

let find name = List.find (fun e -> e.name = name) all

let memo : (string, Preo.compiled) Hashtbl.t = Hashtbl.create 32
let memo_lock = Mutex.create ()

let compiled e =
  Mutex.lock memo_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock memo_lock)
    (fun () ->
      match Hashtbl.find_opt memo e.name with
      | Some c -> c
      | None ->
        let c = Preo.compile ~source:e.source ~name:e.conn_name in
        Hashtbl.add memo e.name c;
        c)
