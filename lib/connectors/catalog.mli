(** The parametrizable connector families of the Fig. 12 benchmark suite,
    covering the major parametrizable examples of the Reo literature:
    (de)multiplexers, round-robin disciplines, barriers and fork/joins,
    buffered distribution/collection, token and relay rings, mutual
    exclusion, and data-sensitive broadcast. Each entry carries its DSL
    source, so the catalog doubles as a corpus of example programs. *)

type entry = {
  name : string;  (** short key used in benchmark tables *)
  description : string;
  conn_name : string;  (** connector definition to instantiate *)
  source : string;  (** DSL source text *)
  lengths : int -> (string * int) list;
      (** array-parameter lengths as a function of N (the number of
          senders/receivers the family is parametrized in) *)
  exponential_choice : bool;
      (** whether single states have a number of transitions exponential in
          N (the paper's §V-C blow-up shape) even under the interleaving
          product *)
}

val all : entry list
val find : string -> entry
(** Raises [Not_found]. *)

val compiled : entry -> Preo.compiled
(** Parse+check+flatten+template-compile the entry (memoized). *)
