open Preo_support

type outcome =
  | Steps of {
      steps : int;
      compile_seconds : float;
      run_seconds : float;
      stats : Preo.Connector.stats;
    }
  | Compile_failed of string
  | Run_failed of string

(* [batch > 1] hammers each port with the batch API instead of one
   blocking op at a time: one lock-free publication burst and at most one
   park per [batch] values — the submission pattern the engines' MPSC
   queues and self-loop replay exist to amortize. *)
let port_threads ?(batch = 1) inst =
  let bodies = ref [] in
  List.iter
    (fun (name, is_source) ->
      if is_source then
        Array.iter
          (fun p ->
            bodies :=
              (if batch > 1 then (fun () ->
                 let i = ref 0 in
                 while true do
                   Preo.Port.send_batch p
                     (List.init batch (fun k -> Value.int (!i + k)));
                   i := !i + batch
                 done)
               else fun () ->
                 let i = ref 0 in
                 while true do
                   Preo.Port.send p (Value.int !i);
                   incr i
                 done)
              :: !bodies)
          (Preo.outports inst name)
      else
        Array.iter
          (fun p ->
            bodies :=
              (if batch > 1 then (fun () ->
                 while true do
                   ignore (Preo.Port.recv_batch p batch)
                 done)
               else fun () ->
                 while true do
                   ignore (Preo.Port.recv p)
                 done)
              :: !bodies)
          (Preo.inports inst name))
    (Preo.groups inst);
  !bodies

let dbg fmt =
  if Sys.getenv_opt "PREO_DRIVER_DEBUG" <> None then
    Printf.eprintf ("[driver] " ^^ fmt ^^ "\n%!")
  else Printf.ifprintf stderr fmt

let run_window ?config ?backend ?domains ?batch ~seconds entry n =
  let compiled = Catalog.compiled entry in
  match
    Preo.instantiate ?config ?backend ?domains compiled
      ~lengths:(entry.Catalog.lengths n)
  with
  | exception Preo.Connector.Compile_failure msg -> Compile_failed msg
  | inst ->
    dbg "instantiated %s" entry.Catalog.name;
    let conn = Preo.connector inst in
    let threads =
      List.map (Preo.Task.spawn ~on:(Preo.sched inst)) (port_threads ?batch inst)
    in
    dbg "spawned %d" (List.length threads);
    Thread.delay seconds;
    let steps = Preo.steps inst in
    let run_seconds = seconds in
    dbg "window over, steps=%d; shutting down" steps;
    let stats = Preo.Connector.stats conn in
    Preo.shutdown inst;
    dbg "poisoned; joining";
    List.iteri
      (fun i t ->
        dbg "join %d" i;
        try Preo.Task.join t with _ -> ())
      threads;
    dbg "joined";
    (match Preo.Connector.failure conn with
     | Some msg -> Run_failed msg
     | None ->
       Steps
         {
           steps;
           compile_seconds = Preo.Connector.compile_seconds conn;
           run_seconds;
           stats;
         })

let run_noop ?config ?backend ?domains ?batch ?(seconds = 0.2) entry ~n =
  run_window ?config ?backend ?domains ?batch ~seconds entry n

let smoke ?config ?backend entry ~n =
  match run_window ?config ?backend ~seconds:0.05 entry n with
  | Steps { steps; _ } -> Ok steps
  | Compile_failed msg -> Error ("compile: " ^ msg)
  | Run_failed msg -> Error ("run: " ^ msg)
