(** Benchmark driver for catalog entries: the Fig. 12 methodology. Tasks
    perform no computation — every boundary port is hammered by a dedicated
    thread — and the measured quantity is the number of global execution
    steps the connector completes within a wall-clock window. *)

type outcome =
  | Steps of {
      steps : int;
      compile_seconds : float;
      run_seconds : float;
      stats : Preo.Connector.stats;
          (** runtime counters sampled at the end of the window (before
              shutdown): fires, solver calls, waits, kicks, cache activity *)
    }
  | Compile_failed of string
      (** ahead-of-time composition exceeded its budget *)
  | Run_failed of string
      (** execution aborted (e.g. JIT expansion blow-up) *)

val run_noop :
  ?config:Preo_runtime.Config.t ->
  ?backend:Preo_runtime.Sched.backend ->
  ?domains:int ->
  ?batch:int ->
  ?seconds:float ->
  Catalog.entry ->
  n:int ->
  outcome
(** Instantiate the entry for [n], spam all ports for [seconds] (default
    0.2), poison the connector, join the tasks, and report. [?backend]
    selects the round scheduler (see {!Preo.instantiate}). Port tasks run
    under the connector's scheduling policy: pooled across domains when
    [?domains] (or the process default) exceeds 1, inline threads
    otherwise. [batch > 1] makes each port task use
    {!Preo.Port.send_batch}/[recv_batch] with that many values per call
    (default 1: one blocking op at a time). *)

val smoke :
  ?config:Preo_runtime.Config.t ->
  ?backend:Preo_runtime.Sched.backend ->
  Catalog.entry ->
  n:int ->
  (int, string) result
(** Short correctness-oriented run: exchanges a bounded number of messages
    (window 0.05 s) and returns the step count. Used by tests. *)
