module Ast = Preo_lang.Ast
module Parser = Preo_lang.Parser
module Sema = Preo_lang.Sema
module Flatten = Preo_lang.Flatten
module Normalize = Preo_lang.Normalize
module Template = Preo_lang.Template
module Eval = Preo_lang.Eval
module Value = Preo_support.Value
module Pool = Preo_support.Pool
module Port = Preo_runtime.Port
module Task = Preo_runtime.Task
module Config = Preo_runtime.Config
module Sched = Preo_runtime.Sched
module Connector = Preo_runtime.Connector
module Engine = Preo_runtime.Engine
module Datafun = Preo_automata.Datafun
module Vertex = Preo_automata.Vertex
module Obs = Preo_obs.Obs
module Metrics = Preo_obs.Metrics
module Trace_export = Preo_obs.Export

exception Error of string

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let reraise f =
  try f () with
  | Parser.Error (msg, line) -> err "parse error (line %d): %s" line msg
  | Sema.Error msg -> err "%s" msg
  | Flatten.Error msg -> err "%s" msg
  | Template.Error msg -> err "%s" msg
  | Eval.Error msg -> err "%s" msg

(* --- Compilation --------------------------------------------------------- *)

type compiled = {
  program : Ast.program;
  def : Ast.conn_def;
  flat : Ast.conn_def;
  template : Template.t;
}

let parse_check source =
  reraise (fun () ->
      let p = Parser.program source in
      Sema.check p;
      p)

let compile_program (program : Ast.program) ~name =
  reraise (fun () ->
      match List.find_opt (fun d -> d.Ast.c_name = name) program.defs with
      | None -> err "no connector definition named %s" name
      | Some def ->
        let flat = Flatten.def ~defs:program.defs def in
        { program; def; flat; template = Template.compile flat })

let compile ~source ~name = compile_program (parse_check source) ~name

(* --- Instantiation ------------------------------------------------------- *)

type group = {
  mutable g_vertices : Vertex.t array;  (* mutable: grow/shrink resize it *)
  g_offset : int;  (** value of the first index (1 for plain parameters) *)
  g_is_source : bool;
}

type elastic = {
  e_compiled : compiled;
  e_venv : Eval.venv;
      (* kept live so re-instantiations reuse the memoized local vertices:
         only the resized group's wiring differs between runs *)
  e_lock : Mutex.t;
}

type instance = {
  conn : Connector.t;
  groups : (string * group) list;
  elastic : elastic option;
}

let build_mediums ?(config = Config.new_jit) (c : compiled) venv =
  match config with
  | Config.Existing _ ->
    (* The existing pipeline starts from the fully evaluated primitives;
       composition happens inside Connector.create. *)
    Eval.small_automata (Eval.prims venv c.flat.Ast.c_body)
  | Config.New _ -> Template.instantiate c.template venv

let instantiate ?(config = Config.new_jit) ?backend ?domains ?compile
    (c : compiled) ~lengths =
  reraise (fun () ->
      let bindings, sources, sinks = Eval.boundary_of_def c.def ~lengths in
      let venv = Eval.venv ~ints:[] ~arrays:bindings in
      let mediums = build_mediums ~config c venv in
      let conn =
        Connector.create ~config ?backend ~name:c.def.Ast.c_name ?domains
          ?compile ~sources ~sinks mediums
      in
      let tails =
        List.map (function Ast.P_scalar x | Ast.P_array x -> x) c.def.Ast.c_tparams
      in
      let groups =
        List.map
          (fun (name, vs) ->
            ( name,
              {
                g_vertices = vs;
                g_offset = 1;
                g_is_source = List.mem name tails;
              } ))
          bindings
      in
      let elastic =
        match config with
        | Config.New _ ->
          Some { e_compiled = c; e_venv = venv; e_lock = Mutex.create () }
        | Config.Existing _ -> None
      in
      { conn; groups; elastic })

let groups inst = List.map (fun (n, g) -> (n, g.g_is_source)) inst.groups

let group_of inst name =
  match List.assoc_opt name inst.groups with
  | Some g -> g
  | None -> err "no parameter group named %s" name

let outports inst name =
  let g = group_of inst name in
  if not g.g_is_source then err "%s is a sink-side group (use inports)" name;
  Array.map (Connector.outport inst.conn) g.g_vertices

let inports inst name =
  let g = group_of inst name in
  if g.g_is_source then err "%s is a source-side group (use outports)" name;
  Array.map (Connector.inport inst.conn) g.g_vertices

(* --- Elastic grow/shrink ------------------------------------------------- *)

module Automaton = Preo_automata.Automaton
module Constr = Preo_automata.Constr
module Iset = Preo_support.Iset

(* Structural identity of a medium, independent of which Template.instantiate
   call produced it: cell numbers are fresh per instantiation, so they are
   normalized away. Everything else is pure data, safe under polymorphic
   equality/hashing. *)
let medium_key (a : Automaton.t) =
  ( Iset.elements a.Automaton.vertices,
    Iset.elements a.Automaton.sources,
    Iset.elements a.Automaton.sinks,
    a.Automaton.nstates,
    a.Automaton.initial,
    Array.map
      (Array.map (fun (tr : Automaton.trans) ->
           ( Iset.elements tr.Automaton.sync,
             tr.Automaton.target,
             Constr.map_cells (fun _ -> -1) tr.Automaton.constr )))
      a.Automaton.trans )

(* Multiset diff of a fresh instantiation against the live mediums: a fresh
   medium that structurally matches a live one is the same wiring (keep the
   live copy — it holds the run-time state); the rest is the splice delta. *)
let diff_mediums ~live ~fresh =
  let tbl = Hashtbl.create 64 in
  List.iter (fun a -> Hashtbl.add tbl (medium_key a) a) live;
  let added =
    List.filter
      (fun a ->
        let k = medium_key a in
        match Hashtbl.find_opt tbl k with
        | Some _ ->
          Hashtbl.remove tbl k;
          false
        | None -> true)
      fresh
  in
  let retired = Hashtbl.fold (fun _ a acc -> a :: acc) tbl [] in
  (added, retired)

let elastic_of inst op =
  match inst.elastic with
  | Some e -> e
  | None ->
    err
      "%s: instance is not elastic (only connectors built by instantiate \
       under the new approach support run-time join/leave)"
      op

(* Resize the named group to [vs'], re-run the run-time share against the
   updated environment, and splice the delta into the live connector. The
   environment is rolled back if anything goes wrong (including a transient
   Composer.Not_quiescent), so the call can simply be retried. *)
let resplice e inst (g : group) name vs' ~add_sources ~add_sinks
    ~retire_vertices =
  let old = Hashtbl.find e.e_venv.Eval.arrays name in
  Hashtbl.replace e.e_venv.Eval.arrays name vs';
  try
    let fresh =
      reraise (fun () -> Template.instantiate e.e_compiled.template e.e_venv)
    in
    let live = Connector.live_mediums inst.conn in
    let added, retired = diff_mediums ~live ~fresh in
    Connector.splice inst.conn ~add:added ~retire:retired ~add_sources
      ~add_sinks ~retire_vertices;
    g.g_vertices <- vs'
  with exn ->
    Hashtbl.replace e.e_venv.Eval.arrays name old;
    raise exn

let grow inst name =
  let e = elastic_of inst "grow" in
  let g = group_of inst name in
  Mutex.lock e.e_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock e.e_lock) @@ fun () ->
  let n = Array.length g.g_vertices in
  let idx = g.g_offset + n in
  let v = Vertex.fresh (Printf.sprintf "%s[%d]" name idx) in
  let vs' = Array.append g.g_vertices [| v |] in
  let add_sources, add_sinks =
    if g.g_is_source then ([| v |], [||]) else ([||], [| v |])
  in
  resplice e inst g name vs' ~add_sources ~add_sinks ~retire_vertices:[||];
  idx

let shrink ?index inst name =
  let e = elastic_of inst "shrink" in
  let g = group_of inst name in
  Mutex.lock e.e_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock e.e_lock) @@ fun () ->
  let n = Array.length g.g_vertices in
  if n <= 1 then err "shrink: port group %s cannot go below one port" name;
  let idx = match index with Some i -> i | None -> g.g_offset + n - 1 in
  let k = idx - g.g_offset in
  if k < 0 || k >= n then
    err "shrink: index %d out of range for port group %s" idx name;
  let v = g.g_vertices.(k) in
  let vs' =
    Array.init (n - 1) (fun j ->
        if j < k then g.g_vertices.(j) else g.g_vertices.(j + 1))
  in
  resplice e inst g name vs' ~add_sources:[||] ~add_sinks:[||]
    ~retire_vertices:[| v |]

let group_size inst name = Array.length (group_of inst name).g_vertices

let outport_at inst name i =
  let g = group_of inst name in
  if not g.g_is_source then err "%s is a sink-side group (use inport_at)" name;
  let k = i - g.g_offset in
  if k < 0 || k >= Array.length g.g_vertices then
    err "index %d out of range for port group %s" i name;
  Connector.outport inst.conn g.g_vertices.(k)

let inport_at inst name i =
  let g = group_of inst name in
  if g.g_is_source then err "%s is a source-side group (use outport_at)" name;
  let k = i - g.g_offset in
  if k < 0 || k >= Array.length g.g_vertices then
    err "index %d out of range for port group %s" i name;
  Connector.inport inst.conn g.g_vertices.(k)

let connector inst = inst.conn
let steps inst = Connector.steps inst.conn
let sched inst = Connector.sched inst.conn
let shutdown inst = Connector.poison inst.conn "shutdown"
let set_stall_threshold v = Preo_runtime.Config.stall_threshold := v
let set_domains v = Preo_runtime.Config.domains := v
let set_backend v = Preo_runtime.Sched.backend := v
let set_compile v = Preo_runtime.Config.compile := v
let backend inst = Connector.backend inst.conn
let set_tracing v = Preo_obs.Obs.set_tracing v
let tracing_enabled () = !Preo_obs.Obs.tracing
let dump_trace inst = Connector.dump_trace inst.conn
let chrome_trace inst = Connector.chrome_trace inst.conn
let last_stall inst = Connector.last_stall inst.conn

(* --- Running main -------------------------------------------------------- *)

type port_arg = Outs of Port.outport array | Ins of Port.inport array

let out1 = function
  | Outs [| p |] -> p
  | Outs ps -> err "expected one outport, got %d" (Array.length ps)
  | Ins _ -> err "expected an outport argument, got inports"

let in1 = function
  | Ins [| p |] -> p
  | Ins ps -> err "expected one inport, got %d" (Array.length ps)
  | Outs _ -> err "expected an inport argument, got outports"

let run_main ?(config = Config.new_jit) ?backend ?domains ?compile
    ~(program : Ast.program) ~params tasks =
  reraise (fun () ->
      let main =
        match program.main with
        | Some m -> m
        | None -> err "program has no main definition"
      in
      let ienv = Eval.venv ~ints:params ~arrays:[] in
      (* Materialize the port groups declared by the connector instance. *)
      let make_group is_source arg =
        match arg with
        | Ast.A_id x ->
          ( x,
            {
              g_vertices = [| Vertex.fresh x |];
              g_offset = 1;
              g_is_source = is_source;
            } )
        | Ast.A_slice (x, lo, hi) ->
          let lo = Eval.eval_int ienv lo and hi = Eval.eval_int ienv hi in
          if hi < lo then err "main: empty port group %s[%d..%d]" x lo hi;
          ( x,
            {
              g_vertices =
                Array.init
                  (hi - lo + 1)
                  (fun k -> Vertex.fresh (Printf.sprintf "%s[%d]" x (lo + k)));
              g_offset = lo;
              g_is_source = is_source;
            } )
        | Ast.A_index _ -> err "main: connector arguments must be names or slices"
      in
      let tail_groups = List.map (make_group true) main.m_conn.Ast.i_tails in
      let head_groups = List.map (make_group false) main.m_conn.Ast.i_heads in
      let groups = tail_groups @ head_groups in
      let sources = Array.concat (List.map (fun (_, g) -> g.g_vertices) tail_groups) in
      let sinks = Array.concat (List.map (fun (_, g) -> g.g_vertices) head_groups) in
      (* Build the mediums for the instantiated connector. *)
      let conn_name = main.m_conn.Ast.i_name in
      let mediums =
        match Preo_reo.Prim.of_name conn_name with
        | Some _ ->
          (* main may instantiate a primitive directly *)
          let venv =
            Eval.venv ~ints:params
              ~arrays:(List.map (fun (n, g) -> (n, g.g_vertices)) groups)
          in
          Eval.small_automata
            (Eval.prims venv
               (Ast.E_inst
                  {
                    main.m_conn with
                    Ast.i_tails = List.map (fun (n, _) -> Ast.A_id n) tail_groups;
                    i_heads = List.map (fun (n, _) -> Ast.A_id n) head_groups;
                  }))
        | None ->
          let c = compile_program program ~name:conn_name in
          (* Bind the definition's formals to the group vertex arrays. *)
          let formals =
            List.map
              (function Ast.P_scalar x | Ast.P_array x -> x)
              (c.def.Ast.c_tparams @ c.def.Ast.c_hparams)
          in
          if List.length formals <> List.length groups then
            err "main: %s expects %d parameters, got %d" conn_name
              (List.length formals) (List.length groups);
          let arrays =
            List.map2 (fun f (_, g) -> (f, g.g_vertices)) formals groups
          in
          let venv = Eval.venv ~ints:[] ~arrays in
          build_mediums ~config c venv
      in
      let conn =
        Connector.create ~config ?backend ~name:conn_name ?domains ?compile
          ~sources ~sinks mediums
      in
      let inst = { conn; groups; elastic = None } in
      (* Resolve a task argument to ports. *)
      let task_arg tenv arg =
        let name =
          match arg with
          | Ast.A_id x | Ast.A_index (x, _) | Ast.A_slice (x, _, _) -> x
        in
        let g = group_of inst name in
        let pick i =
          let k = i - g.g_offset in
          if k < 0 || k >= Array.length g.g_vertices then
            err "main: index %d out of range for port group %s" i name;
          g.g_vertices.(k)
        in
        let vertices =
          match arg with
          | Ast.A_id _ -> g.g_vertices
          | Ast.A_index (_, [ e ]) -> [| pick (Eval.eval_int tenv e) |]
          | Ast.A_index _ -> err "main: port groups take one index"
          | Ast.A_slice (_, lo, hi) ->
            let lo = Eval.eval_int tenv lo and hi = Eval.eval_int tenv hi in
            Array.init (max 0 (hi - lo + 1)) (fun k -> pick (lo + k))
        in
        if g.g_is_source then Outs (Array.map (Connector.outport conn) vertices)
        else Ins (Array.map (Connector.inport conn) vertices)
      in
      let task_fn name =
        match List.assoc_opt name tasks with
        | Some f -> f
        | None -> err "main: no OCaml implementation registered for task %s" name
      in
      let bodies = ref [] in
      List.iter
        (fun item ->
          match item with
          | Ast.TI_single t ->
            let f = task_fn t.Ast.t_name in
            let args = List.map (task_arg ienv) t.Ast.t_args in
            bodies := (fun () -> f args) :: !bodies
          | Ast.TI_forall (v, lo, hi, t) ->
            let f = task_fn t.Ast.t_name in
            let lo = Eval.eval_int ienv lo and hi = Eval.eval_int ienv hi in
            for i = lo to hi do
              let tenv = Eval.venv ~ints:((v, i) :: params) ~arrays:[] in
              let args = List.map (task_arg tenv) t.Ast.t_args in
              bodies := (fun () -> f args) :: !bodies
            done)
        main.m_tasks;
      Task.run_all ~on:(Connector.sched conn) (List.rev !bodies);
      inst)

let run_main_source ?config ?backend ?domains ?compile ~source ~params tasks =
  run_main ?config ?backend ?domains ?compile ~program:(parse_check source)
    ~params tasks
