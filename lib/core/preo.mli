(** Public facade of the parametrized-Reo library.

    Typical use:

    {[
      let compiled = Preo.compile ~source ~name:"OrderedMergerN" in
      let inst =
        Preo.instantiate compiled ~lengths:[ ("tl", 8); ("hd", 1) ]
      in
      let producers = Preo.outports inst "tl" in
      let consumer = (Preo.inports inst "hd").(0) in
      ...spawn tasks using Preo.Port.send / Preo.Port.recv...
    ]}

    or, with a [main] definition in the DSL source, register the task bodies
    and call {!run_main}. *)

module Ast = Preo_lang.Ast
module Parser = Preo_lang.Parser
module Sema = Preo_lang.Sema
module Flatten = Preo_lang.Flatten
module Normalize = Preo_lang.Normalize
module Template = Preo_lang.Template
module Eval = Preo_lang.Eval
module Value = Preo_support.Value
module Pool = Preo_support.Pool
module Port = Preo_runtime.Port
module Task = Preo_runtime.Task
module Config = Preo_runtime.Config
module Sched = Preo_runtime.Sched
module Connector = Preo_runtime.Connector
module Engine = Preo_runtime.Engine
module Datafun = Preo_automata.Datafun
module Obs = Preo_obs.Obs
module Metrics = Preo_obs.Metrics
module Trace_export = Preo_obs.Export

exception Error of string

(** {1 Compilation} *)

type compiled = {
  program : Ast.program;
  def : Ast.conn_def;  (** the chosen connector definition *)
  flat : Ast.conn_def;  (** after flattening *)
  template : Template.t;  (** compile-time share of the new approach *)
}

val parse_check : string -> Ast.program
(** Parse and semantically check DSL source. Raises {!Error} with the parser
    or checker message. *)

val compile : source:string -> name:string -> compiled
val compile_program : Ast.program -> name:string -> compiled

(** {1 Instantiation} *)

type instance

val instantiate :
  ?config:Config.t ->
  ?backend:Sched.backend ->
  ?domains:int ->
  ?compile:bool ->
  compiled ->
  lengths:(string * int) list ->
  instance
(** Create boundary vertices ([lengths] sizes each array parameter), run the
    run-time share (or, under [Config.Existing], evaluate and compose
    everything), and start the connector. Default config: [Config.new_jit].
    [?backend] picks the round scheduler — [Sched.Coloring] resolves rounds
    by color propagation instead of product-state expansion; resolution and
    downgrade rules in {!Connector.create}. [?domains] sets the parallelism
    target (see {!Connector.create}). [?compile] toggles compiled transition
    dispatch and region sequentialization (default on; see
    {!Connector.create}). Raises {!Connector.Compile_failure}
    if the existing approach exceeds its composition budget. *)

val groups : instance -> (string * bool) list
(** Parameter groups of the instance: (name, is_source). *)

(** {1 Elastic grow/shrink}

    Run-time task join/leave on an instance built by {!instantiate} under the
    new approach: resizing a parameter group re-runs the run-time share
    against the updated environment and splices only the difference into the
    live connector ({!Connector.splice}) — mediums whose wiring is unchanged
    keep their run-time state, no global rebuild. Raises {!Error} on
    instances built by {!run_main} or under [Config.Existing] (ahead-of-time
    composition freezes the product).

    Retiring a medium requires it to be quiescent; a transient
    {!Connector.Composer.Not_quiescent} means some in-flight exchange still
    occupies the affected wiring — let traffic drain and retry the call
    (instance bookkeeping is rolled back, so retrying is always safe). *)

val grow : instance -> string -> int
(** [grow inst name] adds one port slot to parameter group [name] and
    returns its index (groups are 1-based, so the first [grow] on a group of
    [n] returns [n + 1]). Fetch the new port with {!outport_at} /
    {!inport_at}. *)

val shrink : ?index:int -> instance -> string -> unit
(** [shrink inst name] removes the port slot [?index] (default: the last) of
    parameter group [name]. The leaving slot's pending operations fail with
    [Engine.Poisoned] (targeted poison — other tasks keep running); its
    mediums are retired once quiescent. Remaining slots keep their indices
    below [index] and shift down above it, mirroring the group array. *)

val group_size : instance -> string -> int
(** Current number of ports in a parameter group. *)

val outport_at : instance -> string -> int -> Port.outport
(** Port of a tail-side group at a 1-based index (fresh lookup — valid
    across {!grow}/{!shrink}). *)

val inport_at : instance -> string -> int -> Port.inport

val outports : instance -> string -> Port.outport array
(** Ports of a tail-side parameter group, in index order. *)

val inports : instance -> string -> Port.inport array
val connector : instance -> Connector.t
val steps : instance -> int

val sched : instance -> Task.sched
(** Where this instance's tasks should run: the shared domain pool when the
    connector was built for more than one domain, inline threads otherwise.
    Pass to [Task.spawn ~on] / [Task.run_all ~on]. *)

val shutdown : instance -> unit
(** Poison the connector, releasing any blocked task. *)

val set_domains : int option -> unit
(** Configure the process-wide default domain count
    ({!Config.domains} / [PREO_DOMAINS]): [Some n] makes subsequent
    connector instantiations target [n] domains (clamped to
    [Config.max_domains]); [None] falls back to
    [Domain.recommended_domain_count]. *)

val set_backend : Sched.backend option -> unit
(** Configure the process-wide default execution backend
    ({!Sched.backend} / [PREO_BACKEND]): [Some Sched.Coloring] makes
    subsequent instantiations resolve rounds by connector coloring,
    [Some Sched.Automata] by (JIT) product automata; [None] falls back to
    the environment variable, then automata. *)

val backend : instance -> Sched.backend
(** The backend the instance actually runs on (a coloring request degrades
    to automata under [Config.Existing] or [true_synchronous]). *)

val set_compile : bool option -> unit
(** Configure the process-wide default for compiled transition dispatch and
    region sequentialization ({!Config.compile} / [PREO_COMPILE]):
    [Some false] makes subsequent instantiations interpret every command and
    skip sequentialization (the reference semantics); [Some true] forces
    compilation on; [None] falls back to the environment variable, then on. *)

val set_stall_threshold : float option -> unit
(** Configure the global stall watchdog ({!Config.stall_threshold}): a port
    operation blocked longer than this many seconds has a stall report
    recorded against its engine (see {!last_stall}); [None] turns the
    watchdog off. *)

val last_stall : instance -> Engine.stall_report option
(** The most significant stall report recorded by the instance's engines —
    what was pending, how many transitions were enabled, and the engine
    counters at the moment a deadline expired or the watchdog tripped. *)

(** {1 Observability}

    Structured tracing and metrics ({!Obs}, {!Metrics}, {!Trace_export}).
    When tracing is enabled — here or via the [PREO_TRACE] environment
    variable — every engine records firings, port-operation lifecycles, JIT
    expansions, stalls and poisonings into a fixed-size ring; partition
    bridges and process bridges record slot traffic and RPC spans. When it
    is off (the default), the runtime pays one branch per recording site. *)

val set_tracing : bool -> unit
val tracing_enabled : unit -> bool

val dump_trace : instance -> string
(** Human-readable listing of all recorded trace events. *)

val chrome_trace : instance -> string
(** Chrome trace-event JSON (load in Perfetto or [chrome://tracing]);
    includes every trace lane registered in the process. *)

(** {1 Running a [main] definition} *)

type port_arg =
  | Outs of Port.outport array
  | Ins of Port.inport array
      (** what a task signature argument denotes: one or more ports of a
          single group, in the order written *)

val out1 : port_arg -> Port.outport
(** Convenience: the single outport of an argument (raises {!Error} if the
    argument is not exactly one outport). *)

val in1 : port_arg -> Port.inport

val run_main :
  ?config:Config.t ->
  ?backend:Sched.backend ->
  ?domains:int ->
  ?compile:bool ->
  program:Ast.program ->
  params:(string * int) list ->
  (string * (port_arg list -> unit)) list ->
  instance
(** Instantiate the [main] connector with the given integer parameters,
    spawn one task per task instance ([forall] items expand) — on the shared
    domain pool when the connector targets more than one domain — wait for
    all of them, and return the finished instance (for inspecting step
    counts). [tasks] maps the task names used in [main] (e.g. ["Tasks.pro"])
    to OCaml functions. *)

val run_main_source :
  ?config:Config.t ->
  ?backend:Sched.backend ->
  ?domains:int ->
  ?compile:bool ->
  source:string ->
  params:(string * int) list ->
  (string * (port_arg list -> unit)) list ->
  instance
