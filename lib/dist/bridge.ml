(* Writing to a peer that already closed must surface as EPIPE, not kill the
   process. *)
let () =
  match Sys.os_type with
  | "Unix" -> (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ())
  | _ -> ()

exception Bridge_down of string

module Obs = Preo_obs.Obs

(* One locked trace lane per side of this process's bridge RPCs: client
   calls run under per-remote locks, serve loops in their own threads, so
   neither side has a common external lock to piggyback on. *)
let rpc_ring_of : (string, Obs.ring) Hashtbl.t = Hashtbl.create 4
let rpc_ring_lock = Mutex.create ()

let rpc_ring side =
  Mutex.lock rpc_ring_lock;
  let r =
    match Hashtbl.find_opt rpc_ring_of side with
    | Some r -> r
    | None ->
      let r = Obs.create_ring ~locked:true side in
      Hashtbl.add rpc_ring_of side r;
      r
  in
  Mutex.unlock rpc_ring_lock;
  r

let poison_prefix = "poisoned:"

let is_poison_error msg = String.starts_with ~prefix:poison_prefix msg

(* Strip the "poisoned: " marker a serving side prepends, so the reason
   survives any number of re-bridge hops without accumulating prefixes. *)
let poison_reason msg =
  let n = String.length poison_prefix in
  let rest = String.sub msg n (String.length msg - n) in
  if String.starts_with ~prefix:" " rest then
    String.sub rest 1 (String.length rest - 1)
  else rest

(* --- Serving ---------------------------------------------------------------- *)

let serve loop fd =
  Thread.create
    (fun () ->
      let rec go () =
        match Wire.read_request_traced fd with
        | None | Some (Wire.Req_close, _) -> ()
        | Some (req, span) ->
          (* The span arrived inside the frame: echoing its correlation into
             our events is what lets traces from the two processes merge. *)
          let traced =
            match span with Some _ -> !Obs.tracing | None -> false
          in
          (match span with
           | Some { Wire.sp_corr; sp_span } when traced ->
             Obs.emit (rpc_ring "rpc-server") Obs.Rpc_server_start ~a:sp_span
               ~b:sp_corr
           | _ -> ());
          let resp =
            try loop req with
            | Preo_runtime.Engine.Poisoned msg ->
              Wire.Resp_error (poison_prefix ^ " " ^ msg)
            | e -> Wire.Resp_error (Printexc.to_string e)
          in
          (match span with
           | Some { Wire.sp_corr; sp_span } when traced ->
             Obs.emit (rpc_ring "rpc-server") Obs.Rpc_server_end ~a:sp_span
               ~b:sp_corr
           | _ -> ());
          Wire.write_response fd resp;
          (* Keep serving after recoverable errors (e.g. a wrong-direction
             request); only poisoning — the connector is gone for good — or
             EOF ends the session. *)
          let fatal =
            match resp with
            | Wire.Resp_error msg -> is_poison_error msg
            | _ -> false
          in
          if not fatal then go ()
      in
      (try go () with _ -> ());
      try Unix.close fd with _ -> ())
    ()

let serve_outport port fd =
  serve
    (fun req ->
      match req with
      | Wire.Req_send v ->
        Preo_runtime.Port.send port v;
        Wire.Resp_ok
      | Wire.Req_recv -> Wire.Resp_error "this bridge serves an outport"
      | Wire.Req_close -> assert false)
    fd

let serve_inport port fd =
  serve
    (fun req ->
      match req with
      | Wire.Req_recv -> Wire.Resp_value (Preo_runtime.Port.recv port)
      | Wire.Req_send _ -> Wire.Resp_error "this bridge serves an inport"
      | Wire.Req_close -> assert false)
    fd

(* --- Remote ------------------------------------------------------------------ *)

type remote_outport = {
  ofd : Unix.file_descr;
  olock : Mutex.t;
  otimeout : float option;
}

type remote_inport = {
  ifd : Unix.file_descr;
  ilock : Mutex.t;
  itimeout : float option;
}

let remote_outport ?timeout ofd = { ofd; olock = Mutex.create (); otimeout = timeout }
let remote_inport ?timeout ifd = { ifd; ilock = Mutex.create (); itimeout = timeout }

(* One request/response round trip. A dead or wedged peer — connection
   reset, EOF mid-frame, garbage framing, or no response within [timeout] —
   surfaces as the typed {!Bridge_down}, never as a hung thread or a bare
   [Unix_error]. No blind resend: a send RPC is not idempotent (the request
   may have fired before the failure), so recovery policy belongs to the
   caller. *)
let rpc fd lock timeout req =
  Mutex.lock lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () ->
      let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) timeout in
      let span =
        if !Obs.tracing then begin
          let sp =
            { Wire.sp_corr = Obs.correlation (); sp_span = Obs.next_span () }
          in
          Obs.emit (rpc_ring "rpc-client") Obs.Rpc_client_start ~a:sp.Wire.sp_span
            ~b:sp.Wire.sp_corr;
          Some sp
        end
        else None
      in
      let finish resp =
        (match span with
         | Some sp when !Obs.tracing ->
           Obs.emit (rpc_ring "rpc-client") Obs.Rpc_client_end ~a:sp.Wire.sp_span
             ~b:sp.Wire.sp_corr
         | _ -> ());
        resp
      in
      try
        Wire.write_request ?deadline ?span fd req;
        finish (Wire.read_response ?deadline fd)
      with
      | Wire.Timeout ->
        raise
          (Bridge_down
             (Printf.sprintf "peer did not respond within %.3fs"
                (match timeout with Some s -> s | None -> 0.0)))
      | Unix.Unix_error (e, _, _) ->
        raise (Bridge_down (Unix.error_message e))
      | Failure msg when String.starts_with ~prefix:"wire:" msg ->
        raise (Bridge_down msg))

let fail_of_error msg =
  if is_poison_error msg then
    raise (Preo_runtime.Engine.Poisoned (poison_reason msg))
  else failwith ("bridge: " ^ msg)

let send r v =
  match rpc r.ofd r.olock r.otimeout (Wire.Req_send v) with
  | Wire.Resp_ok -> ()
  | Wire.Resp_error msg -> fail_of_error msg
  | Wire.Resp_value _ -> failwith "bridge: unexpected value response"

let recv r =
  match rpc r.ifd r.ilock r.itimeout Wire.Req_recv with
  | Wire.Resp_value v -> v
  | Wire.Resp_error msg -> fail_of_error msg
  | Wire.Resp_ok -> failwith "bridge: unexpected ok response"

let close_remote fd =
  (try Wire.write_request fd Wire.Req_close with _ -> ());
  try Unix.close fd with _ -> ()

(* --- TCP ---------------------------------------------------------------------- *)

let listen_local ?(backlog = 64) ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd backlog;
  fd

(* With [listen_local ~port:0] the kernel picks a free port; this reads it
   back, so tests and multi-service hosts need no hardcoded port numbers. *)
let bound_port fd =
  match Unix.getsockname fd with
  | Unix.ADDR_INET (_, port) -> port
  | Unix.ADDR_UNIX _ -> invalid_arg "Bridge.bound_port: not an inet socket"

let accept_one fd = fst (Unix.accept fd)

let connect_local ?(retries = 0) ?(backoff = 0.05) ~port () =
  let fd () = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, port) in
  (* A listener that is still starting up is transient: retry with
     exponential backoff, bounded so a genuinely dead peer fails fast. The
     delay is capped at 1 s so a large retry budget bounds the total wait
     at ~retries seconds rather than growing geometrically. *)
  let rec go n delay =
    let s = fd () in
    match Unix.connect s addr with
    | () -> s
    | exception Unix.Unix_error ((ECONNREFUSED | ECONNRESET | EINTR), _, _)
      when n < retries ->
      (try Unix.close s with _ -> ());
      Thread.delay delay;
      go (n + 1) (Float.min 1.0 (delay *. 2.0))
    | exception e ->
      (try Unix.close s with _ -> ());
      raise e
  in
  go 0 backoff
