(** Bridging connector ports across process boundaries.

    A host that owns a connector can export individual boundary ports over
    file descriptors (sockets); a remote peer drives them with the same
    blocking semantics as local ports. One descriptor carries one port.
    This realizes the paper's remark that Reo "can in principle be used to
    … enforce protocols among tasks across heterogeneous platforms": the
    protocol stays on one host, tasks can live anywhere.

    All functions are thread-safe per descriptor (one outstanding request at
    a time per bridge, as enforced by an internal lock).

    Fault model: a serving side keeps the session alive across recoverable
    request errors (e.g. a wrong-direction request) and only closes on clean
    EOF or connector poisoning; a remote side surfaces a dead or wedged peer
    as the typed {!Bridge_down} — never as a silently hung thread. *)

open Preo_support

exception Bridge_down of string
(** The peer is unreachable: connection reset, EOF or garbage mid-frame, or
    no response within the bridge's configured [timeout]. *)

(** {1 Serving (connector-owning side)} *)

val serve_outport : Preo_runtime.Port.outport -> Unix.file_descr -> Thread.t
(** Handle [Req_send] requests by performing blocking local sends; replies
    [Resp_ok] per completed send. Returns when the peer closes or the
    connector is poisoned; recoverable errors are reported to the peer and
    the session continues. *)

val serve_inport : Preo_runtime.Port.inport -> Unix.file_descr -> Thread.t
(** Handle [Req_recv] requests by performing blocking local receives. *)

(** {1 Remote (task side)} *)

type remote_outport
type remote_inport

val remote_outport : ?timeout:float -> Unix.file_descr -> remote_outport
(** [timeout] bounds each whole RPC round trip, in seconds; when it expires
    (dead peer, or a protocol legitimately blocking longer than expected),
    {!Bridge_down} is raised. Default: wait forever. *)

val remote_inport : ?timeout:float -> Unix.file_descr -> remote_inport

val send : remote_outport -> Value.t -> unit
(** Blocks until the remote connector completed the send. Raises [Failure]
    on protocol errors, [Preo_runtime.Engine.Poisoned] if the remote
    reports poisoning (with the original reason — the wire prefix is
    stripped, so the message survives re-bridge hops unchanged), and
    {!Bridge_down} if the peer dies or the timeout expires. *)

val recv : remote_inport -> Value.t
val close_remote : Unix.file_descr -> unit
(** Send a clean close so the serving thread exits. *)

(** {1 TCP conveniences} *)

val listen_local : ?backlog:int -> port:int -> unit -> Unix.file_descr
(** Bind+listen on 127.0.0.1 with [SO_REUSEADDR] (so rapid re-binds in tests
    do not hit [EADDRINUSE]) and a real [backlog] (default 64 — a shard host
    accepting several workers at once must not refuse the burst). [~port:0]
    lets the kernel pick a free port — read it back with {!bound_port}. *)

val bound_port : Unix.file_descr -> int
(** The actual local port of a bound socket (via [getsockname]). *)

val accept_one : Unix.file_descr -> Unix.file_descr

val connect_local :
  ?retries:int -> ?backoff:float -> port:int -> unit -> Unix.file_descr
(** Connect to 127.0.0.1:[port]. A refused connection (listener still
    starting) is retried up to [retries] times with exponentially growing
    [backoff] (initial delay, default 50ms); default is no retry. *)
