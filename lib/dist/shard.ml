(* Sharded connector fabric: run a partitioned connector's regions in
   separate OS processes, with the cross-process cut queues carried over
   bridge sockets.

   The partition plan is the contract. [Partition.split] assigns region and
   cut indices deterministically for a given (mediums, domains,
   sequentialize) input, and both endpoints rebuild the plan from the same
   DSL source — so the host and each worker agree on every index without
   ever shipping automata: the configuration frame names region ids and cut
   ids, nothing more. Each cross-process cut becomes a seq-numbered wire
   channel; [Partition.split]'s [gate_for] hook swaps the cut's native SPSC
   queue for this module's gates.

   Wire discipline per channel:
   - the producer stamps every committed value with a sequence number and
     keeps it buffered until acknowledged; the sender thread coalesces all
     values queued since the last flush into ONE [Sh_batch] frame,
     amortizing encode and syscall cost the way batched op submission
     amortizes engine entry;
   - the producer gate reports ready only while unacknowledged items are
     below the channel window, so a slow or dead shard parks the producer
     region instead of ballooning memory (backpressure);
   - the consumer acknowledges cumulatively on gate pop (not on arrival),
     so the window tracks real consumption end to end; when a channel
     carries a journal, the popped value is durably logged before the ack
     watermark can advance — exactly-once with respect to the journal;
   - on reconnect the worker reports its durable position ([Sh_resume]) and
     the host trims the acked prefix and replays the unacked window;
     duplicates arriving from a replay race are dropped by sequence number.

   Topology is a star: every cross-process cut must have one side on the
   host (process 0). Worker-to-worker cuts would need a mesh of links and a
   distributed resume protocol; the partitioner's relay cuts make it easy
   to route any fan through the host instead. *)

open Preo_support
module Partition = Preo_runtime.Partition
module Connector = Preo_runtime.Connector
module Engine = Preo_runtime.Engine
module Port = Preo_runtime.Port
module Config = Preo_runtime.Config
module Sched = Preo_runtime.Sched
module Shard_stats = Preo_runtime.Shard_stats
module Vertex = Preo_automata.Vertex

let spf = Printf.sprintf
let shard_err fmt = Printf.ksprintf failwith fmt

(* --- Journals ----------------------------------------------------------------
   One hex-encoded wire value per line; a line is durable only once its
   newline hit the stream, so recovery counts complete lines and truncates
   any torn tail (which was never acknowledged either). *)

let journal_line v =
  let b = Buffer.create 16 in
  Wire.encode_value b v;
  let s = Buffer.contents b in
  String.init
    (2 * String.length s)
    (fun i ->
      let c = Char.code s.[i / 2] in
      let nib = if i mod 2 = 0 then c lsr 4 else c land 0xF in
      "0123456789abcdef".[nib])

let value_of_line line =
  let n = String.length line in
  if n mod 2 <> 0 then shard_err "shard: torn journal line";
  let nib c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | _ -> shard_err "shard: bad journal byte %C" c
  in
  let bytes =
    Bytes.init (n / 2) (fun i ->
        Char.chr ((nib line.[2 * i] lsl 4) lor nib line.[(2 * i) + 1]))
  in
  Wire.decode_value bytes ~pos:(ref 0)

let read_journal path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    let rec go acc start =
      match String.index_from_opt s start '\n' with
      | None -> List.rev acc
      | Some i ->
        go (value_of_line (String.sub s start (i - start)) :: acc) (i + 1)
    in
    go [] 0
  end

(* Durably journaled value count; truncates a torn trailing line. *)
let recover_journal path =
  if not (Sys.file_exists path) then 0
  else begin
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    let keep =
      match String.rindex_opt s '\n' with None -> 0 | Some i -> i + 1
    in
    if keep < len then Unix.truncate path keep;
    let count = ref 0 in
    for i = 0 to keep - 1 do
      if s.[i] = '\n' then incr count
    done;
    !count
  end

let journal_path ~dir ~ch = Filename.concat dir (spf "ch%d.journal" ch)

(* --- Workloads ---------------------------------------------------------------
   Closures cannot cross an exec, so worker task code is named: a produce
   loop sending [0 .. count-1] on each port, and a consume loop draining a
   port while fanning each delivery out to [clients] simulated subscriber
   counters (the per-client bookkeeping is the simulated work: one counter
   increment per client per delivery). *)

type workload =
  | Produce of { w_group : string; w_indices : int list; w_count : int }
  | Consume of { w_group : string; w_indices : int list; w_clients : int }

let encode_workload = function
  | Produce { w_group; w_indices; w_count } ->
    Value.list
      [
        Value.str "produce";
        Value.str w_group;
        Value.list (List.map Value.int w_indices);
        Value.int w_count;
      ]
  | Consume { w_group; w_indices; w_clients } ->
    Value.list
      [
        Value.str "consume";
        Value.str w_group;
        Value.list (List.map Value.int w_indices);
        Value.int w_clients;
      ]

let decode_workload v =
  match Value.to_list v with
  | [ kind; group; idx; k ] ->
    let indices = List.map Value.to_int (Value.to_list idx) in
    (match Value.to_str kind with
     | "produce" ->
       Produce
         {
           w_group = Value.to_str group;
           w_indices = indices;
           w_count = Value.to_int k;
         }
     | "consume" ->
       Consume
         {
           w_group = Value.to_str group;
           w_indices = indices;
           w_clients = Value.to_int k;
         }
     | s -> shard_err "shard: bad workload kind %S" s)
  | _ -> shard_err "shard: bad workload frame"

(* --- Channels ---------------------------------------------------------------- *)

type role = Producing | Consuming

type chan = {
  ch_id : int;  (* cut index in the plan *)
  ch_role : role;  (* this process's side *)
  ch_window : int;
  mutable ch_region : int;  (* local region owning our gate (for kicks) *)
  ch_mu : Mutex.t;
  (* producing side *)
  ch_buf : (int * Value.t) Queue.t;  (* unacked, in seq order *)
  mutable ch_next : int;  (* next seq to stamp *)
  mutable ch_sent : int;  (* seqs < sent handed to the wire *)
  mutable ch_acked : int;  (* seqs < acked acknowledged *)
  mutable ch_floor : int;  (* peer durably has seqs < floor: swallow *)
  ch_inflight : int Atomic.t;  (* = next - acked; lock-free gate_ready *)
  ch_t0s : (int * float) Queue.t;  (* sampled send stamps for latency *)
  (* consuming side *)
  ch_landing : Value.t Queue.t;  (* in-order, deduplicated arrivals *)
  ch_avail : int Atomic.t;  (* landing length; lock-free gate_ready *)
  mutable ch_expect : int;  (* next seq expected from the wire *)
  mutable ch_popped : int;  (* values consumed by the local engine *)
  mutable ch_ack_flushed : int;  (* ack watermark handed to the wire *)
  mutable ch_journal : out_channel option;
  (* wiring *)
  mutable ch_notify : unit -> unit;  (* wake the link sender *)
  mutable ch_kick : unit -> unit;  (* drive the gate's local engine *)
}

let make_chan ~id ~role ~window ~region =
  {
    ch_id = id;
    ch_role = role;
    ch_window = window;
    ch_region = region;
    ch_mu = Mutex.create ();
    ch_buf = Queue.create ();
    ch_next = 0;
    ch_sent = 0;
    ch_acked = 0;
    ch_floor = 0;
    ch_inflight = Atomic.make 0;
    ch_t0s = Queue.create ();
    ch_landing = Queue.create ();
    ch_avail = Atomic.make 0;
    ch_expect = 0;
    ch_popped = 0;
    ch_ack_flushed = 0;
    ch_journal = None;
    ch_notify = (fun () -> ());
    ch_kick = (fun () -> ());
  }

let locked mu f =
  Mutex.lock mu;
  match f () with
  | r ->
    Mutex.unlock mu;
    r
  | exception e ->
    Mutex.unlock mu;
    raise e

(* Producer commit: stamp, buffer, wake the sender. Values below the resume
   floor were durably consumed by the peer in a previous incarnation of
   this (deterministically replaying) producer — swallow them as already
   acked instead of re-shipping. *)
let producer_commit ~latency_every c v =
  locked c.ch_mu (fun () ->
      let seq = c.ch_next in
      c.ch_next <- seq + 1;
      if seq >= c.ch_floor then begin
        Queue.push (seq, v) c.ch_buf;
        if
          latency_every > 0
          && seq mod latency_every = 0
          && Queue.length c.ch_t0s < 4096
        then Queue.push (seq, Clock.now ()) c.ch_t0s
      end
      else begin
        c.ch_acked <- c.ch_next;
        c.ch_sent <- c.ch_next
      end;
      Atomic.set c.ch_inflight (c.ch_next - c.ch_acked));
  c.ch_notify ()

let producer_gate ~latency_every c =
  {
    Engine.gate_ready = (fun () -> Atomic.get c.ch_inflight < c.ch_window);
    gate_peek = (fun () -> invalid_arg "shard producer gate has no value");
    gate_commit =
      (fun v ->
        match v with
        | Some value -> producer_commit ~latency_every c value
        | None -> invalid_arg "shard producer gate expects a value");
    gate_dump =
      (fun () ->
        spf "shard-out ch%d seq=%d acked=%d window=%d" c.ch_id c.ch_next
          c.ch_acked c.ch_window);
  }

let consumer_gate c =
  {
    Engine.gate_ready = (fun () -> Atomic.get c.ch_avail > 0);
    gate_peek = (fun () -> locked c.ch_mu (fun () -> Queue.peek c.ch_landing));
    gate_commit =
      (fun v ->
        match v with
        | None ->
          locked c.ch_mu (fun () ->
              let v = Queue.pop c.ch_landing in
              Atomic.decr c.ch_avail;
              (* durable before acknowledgeable: the journal line is flushed
                 while the ack watermark still excludes this value *)
              (match c.ch_journal with
               | Some oc ->
                 output_string oc (journal_line v);
                 output_char oc '\n';
                 flush oc
               | None -> ());
              c.ch_popped <- c.ch_popped + 1);
          c.ch_notify ()
        | Some _ -> invalid_arg "shard consumer gate consumes, not delivers");
    gate_dump =
      (fun () ->
        spf "shard-in ch%d landing=%d expect=%d popped=%d" c.ch_id
          (Atomic.get c.ch_avail) c.ch_expect c.ch_popped);
  }

(* Initially-full cut fifos: the producer side owns the prefill and ships
   it like any committed value; the consumer side starts empty. *)
let inject_init c (shape : Partition.cut_shape) =
  match shape with
  | Partition.Cut_auto _ -> ()
  | Partition.Cut_queue { q_init; _ } ->
    List.iter (fun v -> producer_commit ~latency_every:0 c v) q_init

(* --- Links -------------------------------------------------------------------
   One socket per (host, worker) pair, multiplexing every channel between
   them. The sender thread owns all writes (frames must not interleave);
   receiving and connection lifecycle belong to the owning manager loop. *)

type link = {
  lk_token : string;
  lk_mu : Mutex.t;
  lk_cond : Condition.t;
  mutable lk_pending : Unix.file_descr option;  (* handed over by accept *)
  mutable lk_fd : Unix.file_descr option;  (* live session *)
  mutable lk_dirty : bool;
  mutable lk_poison : string option;  (* outgoing poison, sent by sender *)
  mutable lk_close : bool;  (* flush, send Sh_close, stop *)
  mutable lk_stop : bool;
  lk_chans : chan array;
  mutable lk_pid : int;  (* worker process (host side; -1 on workers) *)
  mutable lk_spawns : int;  (* total processes ever spawned on this link *)
}

let make_link ~token chans =
  {
    lk_token = token;
    lk_mu = Mutex.create ();
    lk_cond = Condition.create ();
    lk_pending = None;
    lk_fd = None;
    lk_dirty = false;
    lk_poison = None;
    lk_close = false;
    lk_stop = false;
    lk_chans = chans;
    lk_pid = -1;
    lk_spawns = 0;
  }

let link_signal lk =
  Mutex.lock lk.lk_mu;
  lk.lk_dirty <- true;
  Condition.signal lk.lk_cond;
  Mutex.unlock lk.lk_mu

(* Take a failed fd down (only the current session's). *)
let link_down lk fd =
  Mutex.lock lk.lk_mu;
  (match lk.lk_fd with
   | Some cur when cur == fd -> lk.lk_fd <- None
   | _ -> ());
  Condition.broadcast lk.lk_cond;
  Mutex.unlock lk.lk_mu;
  try Unix.close fd with _ -> ()

(* Everything this link owes the wire right now: at most one batch frame
   per producing channel (the whole flush coalesced) and one cumulative
   ack per consuming channel. *)
let collect_frames lk =
  Array.fold_left
    (fun acc c ->
      match c.ch_role with
      | Producing ->
        locked c.ch_mu (fun () ->
            if c.ch_sent >= c.ch_next then acc
            else begin
              let pending =
                Queue.fold
                  (fun l (seq, v) ->
                    if seq >= c.ch_sent then (seq, v) :: l else l)
                  [] c.ch_buf
                |> List.rev
              in
              c.ch_sent <- c.ch_next;
              match pending with
              | [] -> acc
              | (base, _) :: _ ->
                let items = List.map snd pending in
                Shard_stats.add_batch ~items:(List.length items);
                Wire.Sh_batch { ch = c.ch_id; base; items } :: acc
            end)
      | Consuming ->
        locked c.ch_mu (fun () ->
            if c.ch_popped > c.ch_ack_flushed then begin
              c.ch_ack_flushed <- c.ch_popped;
              Wire.Sh_ack { ch = c.ch_id; upto = c.ch_popped } :: acc
            end
            else acc))
    [] lk.lk_chans

let sender_loop lk =
  let stop () =
    Mutex.lock lk.lk_mu;
    lk.lk_stop <- true;
    Condition.broadcast lk.lk_cond;
    Mutex.unlock lk.lk_mu
  in
  let rec loop () =
    Mutex.lock lk.lk_mu;
    while not (lk.lk_dirty || lk.lk_stop || lk.lk_close) do
      Condition.wait lk.lk_cond lk.lk_mu
    done;
    if lk.lk_stop then Mutex.unlock lk.lk_mu
    else begin
      lk.lk_dirty <- false;
      let fd = lk.lk_fd in
      let poison = lk.lk_poison in
      let closing = lk.lk_close in
      Mutex.unlock lk.lk_mu;
      match fd with
      | None -> if closing then stop () else loop ()
      | Some fd ->
        let frames = collect_frames lk in
        let frames =
          match poison with
          | Some r -> frames @ [ Wire.Sh_poison r ]
          | None -> frames
        in
        let frames = if closing then frames @ [ Wire.Sh_close ] else frames in
        (* Writes happen outside the link mutex: a failure takes the link
           down; anything lost is replayed after reconnect (the wire
           pointer rewinds to the ack watermark) and deduplicated by
           sequence number on the far side. *)
        (try List.iter (Wire.write_shard fd) frames
         with _ -> link_down lk fd);
        if closing then stop () else loop ()
    end
  in
  loop ()

(* Incoming traffic, shared by host and worker. Returns [`Close] on an
   orderly close, [`Poisoned reason] on remote poison; raises on link
   failure. [on_ack_latency] receives RTT samples harvested from
   acknowledged latency stamps. *)
let recv_loop fd ~find_chan ~on_ack_latency =
  let rec loop () =
    match Wire.read_shard fd with
    | None -> raise End_of_file
    | Some (Wire.Sh_batch { ch; base; items }) ->
      let c = find_chan ch in
      if c.ch_role <> Consuming then
        shard_err "shard: batch on producing channel %d" ch;
      let fresh =
        locked c.ch_mu (fun () ->
            let fresh = ref false in
            List.iteri
              (fun i v ->
                let seq = base + i in
                if seq = c.ch_expect then begin
                  Queue.push v c.ch_landing;
                  Atomic.incr c.ch_avail;
                  c.ch_expect <- seq + 1;
                  fresh := true
                end
                else if seq > c.ch_expect then
                  shard_err "shard: sequence gap on channel %d (%d after %d)"
                    ch seq c.ch_expect
                  (* seq < expect: replay duplicate, drop *))
              items;
            !fresh)
      in
      if fresh then c.ch_kick ();
      loop ()
    | Some (Wire.Sh_ack { ch; upto }) ->
      let c = find_chan ch in
      if c.ch_role <> Producing then
        shard_err "shard: ack on consuming channel %d" ch;
      let samples =
        locked c.ch_mu (fun () ->
            if upto > c.ch_next then
              shard_err "shard: ack beyond produced on channel %d" ch;
            let samples = ref [] in
            if upto > c.ch_acked then begin
              while
                (not (Queue.is_empty c.ch_buf))
                && fst (Queue.peek c.ch_buf) < upto
              do
                ignore (Queue.pop c.ch_buf)
              done;
              let now = Clock.now () in
              while
                (not (Queue.is_empty c.ch_t0s))
                && fst (Queue.peek c.ch_t0s) < upto
              do
                let _, t0 = Queue.pop c.ch_t0s in
                samples := (now -. t0) :: !samples
              done;
              Shard_stats.add_acked (upto - c.ch_acked);
              c.ch_acked <- upto;
              Atomic.set c.ch_inflight (c.ch_next - c.ch_acked)
            end;
            !samples)
      in
      if samples <> [] then on_ack_latency samples;
      c.ch_kick ();
      loop ()
    | Some (Wire.Sh_poison reason) -> `Poisoned reason
    | Some Wire.Sh_close -> `Close
    | Some (Wire.Sh_hello _ | Wire.Sh_cfg _ | Wire.Sh_resume _) ->
      shard_err "shard: unexpected handshake frame mid-stream"
  in
  loop ()

(* --- Plan construction ------------------------------------------------------- *)

let build_parts ~source ~name ~lengths =
  let c = Preo.compile ~source ~name in
  let bindings, sources, sinks =
    Preo.Eval.boundary_of_def c.Preo.def ~lengths
  in
  let venv = Preo.Eval.venv ~ints:[] ~arrays:bindings in
  let mediums = Preo.Template.instantiate c.Preo.template venv in
  (bindings, sources, sinks, mediums)

let plan ?domains ?compile ~source ~name ~lengths () =
  let _, sources, sinks, mediums = build_parts ~source ~name ~lengths in
  let domains = Config.effective_domains ?requested:domains () in
  let sequentialize = Config.effective_compile ?requested:compile () in
  Partition.split ~domains ~sequentialize
    ~sources:(Iset.of_list (Array.to_list sources))
    ~sinks:(Iset.of_list (Array.to_list sinks))
    mediums

let boundary_regions ?domains ?compile ~source ~name ~lengths () =
  let bindings, sources, sinks, mediums = build_parts ~source ~name ~lengths in
  let domains = Config.effective_domains ?requested:domains () in
  let sequentialize = Config.effective_compile ?requested:compile () in
  let p =
    Partition.split ~domains ~sequentialize
      ~sources:(Iset.of_list (Array.to_list sources))
      ~sinks:(Iset.of_list (Array.to_list sinks))
      mediums
  in
  List.map
    (fun (g, arr) ->
      ( g,
        Array.map
          (fun v ->
            let found = ref (-1) in
            Array.iteri
              (fun i (r : Partition.region) ->
                if
                  !found < 0
                  && (Iset.mem v r.Partition.r_sources
                     || Iset.mem v r.Partition.r_sinks)
                then found := i)
              p.Partition.regions;
            !found)
          arr ))
    bindings

(* Wire the per-channel engine kicks once the placed connector exists: wire
   traffic flips gate readiness from outside the engine, so someone must
   drive the engine to make it look ([Engine.try_step] re-evaluates every
   gate on entry). *)
let set_kicks conn chans =
  List.iter
    (fun c ->
      c.ch_kick <-
        (fun () ->
          match Connector.engine_for_region conn c.ch_region with
          | None -> ()
          | Some e ->
            let rec drive () =
              if (try Engine.try_step e with _ -> false) then drive ()
            in
            drive ()))
    chans

(* --- Host -------------------------------------------------------------------- *)

type host = {
  h_conn : Connector.t;
  h_bindings : (string * Vertex.t array) list;
  h_links : link array;  (* index w-1 = worker w *)
  h_listener : Unix.file_descr;
  h_port : int;
  h_exe : string;
  h_retries : int;
  h_backoff : float;
  h_hello_timeout : float;
  h_cfg_of : int -> Value.t;  (* worker id -> current cfg frame *)
  h_stop : bool Atomic.t;
  h_lat_mu : Mutex.t;
  mutable h_lat : float list;
  mutable h_lat_n : int;
  mutable h_threads : Thread.t list;
}

let default_exe () =
  match Sys.getenv_opt "PREO_PREOC" with
  | Some p -> p
  | None ->
    let guess =
      Filename.concat
        (Filename.dirname Sys.executable_name)
        (Filename.concat ".." (Filename.concat "bin" "preoc.exe"))
    in
    if Sys.file_exists guess then guess else "preoc"

let spawn_worker h lk =
  let pid =
    Unix.create_process h.h_exe
      [|
        h.h_exe;
        "worker";
        "--port";
        string_of_int h.h_port;
        "--token";
        lk.lk_token;
      |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  lk.lk_pid <- pid;
  lk.lk_spawns <- lk.lk_spawns + 1

(* The accept thread reads each new connection's hello and hands the fd to
   the matching link's manager by token. Unknown tokens are dropped. *)
(* Only a closed listener ends the loop: EINTR restarts immediately, and
   transient failures (EMFILE, ECONNABORTED, ...) pause briefly and keep
   serving — exiting on those would permanently disable reconnects and turn
   every later link failure into a silent hello-timeout grind. *)
let accept_loop h =
  let rec loop () =
    match Unix.accept h.h_listener with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
      ()  (* listener closed: shutting down *)
    | exception _ ->
      if Atomic.get h.h_stop then ()
      else begin
        Thread.delay 0.05;
        loop ()
      end
    | fd, _ ->
      if Atomic.get h.h_stop then (try Unix.close fd with _ -> ())
      else begin
        (match Wire.read_shard ~deadline:(Unix.gettimeofday () +. 5.0) fd with
         | Some (Wire.Sh_hello { token }) -> begin
           match
             Array.find_opt (fun lk -> lk.lk_token = token) h.h_links
           with
           | Some lk ->
             Mutex.lock lk.lk_mu;
             (match lk.lk_pending with
              | Some old -> ( try Unix.close old with _ -> ())
              | None -> ());
             lk.lk_pending <- Some fd;
             Condition.broadcast lk.lk_cond;
             Mutex.unlock lk.lk_mu
           | None -> ( try Unix.close fd with _ -> ())
         end
         | _ | (exception _) -> ( try Unix.close fd with _ -> ()));
        loop ()
      end
  in
  loop ()

let unacked_summary lk =
  let parts =
    Array.to_list lk.lk_chans
    |> List.filter_map (fun c ->
           match c.ch_role with
           | Producing ->
             let n = Atomic.get c.ch_inflight in
             if n > 0 then Some (spf "ch%d:%d" c.ch_id n) else None
           | Consuming -> None)
  in
  if parts = [] then "none" else String.concat "," parts

(* Exhausted retry budget: structured cross-region poison, never a hang.
   Every local engine is poisoned — releasing tasks parked on the dead
   shard's window with the diagnosis — and the surviving workers are told
   to die too. *)
let escalate h lk ~attempts ~last =
  let msg =
    spf
      "shard: worker %s unreachable after %d reconnect attempt%s (last: %s); \
       unacked items: %s"
      lk.lk_token attempts
      (if attempts = 1 then "" else "s")
      last (unacked_summary lk)
  in
  Array.iter
    (fun other ->
      if other != lk then begin
        Mutex.lock other.lk_mu;
        if other.lk_poison = None then other.lk_poison <- Some msg;
        other.lk_dirty <- true;
        Condition.broadcast other.lk_cond;
        Mutex.unlock other.lk_mu
      end)
    h.h_links;
  Connector.poison h.h_conn msg

let record_latencies h samples =
  Mutex.lock h.h_lat_mu;
  List.iter
    (fun s ->
      if h.h_lat_n < 200_000 then begin
        h.h_lat <- s :: h.h_lat;
        h.h_lat_n <- h.h_lat_n + 1
      end)
    samples;
  Mutex.unlock h.h_lat_mu

(* Per-worker manager: owns the session lifecycle — wait for the accept
   thread to route a hello, handshake (cfg out, resume in), trim and rewind
   the replay window, then sit in the receive loop. On failure, retry
   within the budget (respawning the worker process if it died), then
   escalate.

   The attempt counter resets only after a session that did useful work —
   made progress (acks or arrivals) or survived a minimum lifetime — not
   after every successful handshake. A worker that deterministically dies
   right after resume therefore burns attempts and escalates instead of
   being respawned forever; a total per-link respawn cap backstops even
   slow crash cycles that do manage some progress each time. *)
let manager h lk w =
  let respawn_cap = max 32 ((h.h_retries + 1) * 8) in
  let min_session_life = max 1.0 (8.0 *. h.h_backoff) in
  let progress () =
    Array.fold_left
      (fun acc c ->
        locked c.ch_mu (fun () ->
            acc
            + (match c.ch_role with
              | Producing -> c.ch_acked
              | Consuming -> c.ch_expect)))
      0 lk.lk_chans
  in
  let find_chan id =
    match Array.find_opt (fun c -> c.ch_id = id) lk.lk_chans with
    | Some c -> c
    | None -> shard_err "shard: unknown channel %d" id
  in
  let wait_pending () =
    let limit = Unix.gettimeofday () +. h.h_hello_timeout in
    let rec go () =
      Mutex.lock lk.lk_mu;
      match lk.lk_pending with
      | Some fd ->
        lk.lk_pending <- None;
        Mutex.unlock lk.lk_mu;
        Some fd
      | None ->
        let give_up =
          lk.lk_stop || lk.lk_close || Unix.gettimeofday () > limit
        in
        Mutex.unlock lk.lk_mu;
        if give_up then None
        else begin
          Thread.delay 0.02;
          go ()
        end
    in
    go ()
  in
  let apply_resume resumes =
    List.iter
      (fun (id, upto) ->
        match Array.find_opt (fun c -> c.ch_id = id) lk.lk_chans with
        | Some c when c.ch_role = Producing ->
          locked c.ch_mu (fun () ->
              if upto > c.ch_acked && upto <= c.ch_next then begin
                while
                  (not (Queue.is_empty c.ch_buf))
                  && fst (Queue.peek c.ch_buf) < upto
                do
                  ignore (Queue.pop c.ch_buf)
                done;
                c.ch_acked <- upto;
                Atomic.set c.ch_inflight (c.ch_next - c.ch_acked)
              end)
        | _ -> ())
      resumes;
    (* replay everything unacked: rewind the wire pointer *)
    Array.iter
      (fun c ->
        if c.ch_role = Producing then
          locked c.ch_mu (fun () -> c.ch_sent <- c.ch_acked))
      lk.lk_chans
  in
  let stopping () =
    Mutex.lock lk.lk_mu;
    let s = lk.lk_stop || lk.lk_close in
    Mutex.unlock lk.lk_mu;
    s || Atomic.get h.h_stop
  in
  let deadline () = Unix.gettimeofday () +. h.h_hello_timeout in
  let rec session ~attempt ~resumed =
    if stopping () then ()
    else
      match wait_pending () with
      | None -> retry ~attempt ~last:"no connection from worker"
      | Some fd -> (
        match
          Wire.write_shard ~deadline:(deadline ()) fd
            (Wire.Sh_cfg (h.h_cfg_of w));
          Wire.read_shard ~deadline:(deadline ()) fd
        with
        | Some (Wire.Sh_resume resumes) ->
          apply_resume resumes;
          if resumed then Shard_stats.add_reconnect ();
          Mutex.lock lk.lk_mu;
          lk.lk_fd <- Some fd;
          lk.lk_dirty <- true;
          Condition.broadcast lk.lk_cond;
          Mutex.unlock lk.lk_mu;
          (* acks applied during resume may have freed window space *)
          Array.iter (fun c -> c.ch_kick ()) lk.lk_chans;
          let p0 = progress () in
          let t0 = Unix.gettimeofday () in
          let outcome =
            try recv_loop fd ~find_chan ~on_ack_latency:(record_latencies h)
            with e -> `Down e
          in
          link_down lk fd;
          (match outcome with
           | `Close -> ()
           | `Poisoned reason ->
             Connector.poison h.h_conn
               (spf "shard: worker %s: %s" lk.lk_token reason)
           | `Down e ->
             if stopping () then ()
             else begin
               let useful =
                 progress () > p0
                 || Unix.gettimeofday () -. t0 >= min_session_life
               in
               retry
                 ~attempt:(if useful then 1 else attempt + 1)
                 ~last:(Printexc.to_string e)
             end)
        | Some (Wire.Sh_poison reason) ->
          (try Unix.close fd with _ -> ());
          Connector.poison h.h_conn
            (spf "shard: worker %s: %s" lk.lk_token reason)
        | _ | (exception _) ->
          (try Unix.close fd with _ -> ());
          retry ~attempt:(attempt + 1) ~last:"handshake failed")
  and retry ~attempt ~last =
    if stopping () then ()
    else if attempt > h.h_retries then
      escalate h lk ~attempts:(max attempt h.h_retries) ~last
    else if lk.lk_spawns > respawn_cap then
      escalate h lk ~attempts:lk.lk_spawns
        ~last:(spf "%s; respawn cap %d exhausted" last respawn_cap)
    else begin
      (* Respawn the worker if its process died (one that merely dropped
         the link exits on its own and is replaced on the next attempt). *)
      (match Unix.waitpid [ Unix.WNOHANG ] lk.lk_pid with
       | 0, _ -> ()
       | _, _ -> spawn_worker h lk
       | exception _ -> spawn_worker h lk);
      Thread.delay (h.h_backoff *. (2.0 ** float_of_int attempt));
      session ~attempt:(attempt + 1) ~resumed:true
    end
  in
  session ~attempt:0 ~resumed:false

let host ?(window = 1024) ?domains ?compile ?(retries = 3) ?(backoff = 0.25)
    ?(hello_timeout = 10.0) ?journal_dir ?(latency_every = 0) ?exe ~nworkers
    ~place ~workloads ~source ~name ~lengths () =
  if nworkers < 1 then invalid_arg "Shard.host: nworkers must be >= 1";
  let bindings, sources, sinks, mediums = build_parts ~source ~name ~lengths in
  let eff_domains = Config.effective_domains ?requested:domains () in
  let eff_compile = Config.effective_compile ?requested:compile () in
  let backend = Sched.effective () in
  let p =
    Partition.split ~domains:eff_domains ~sequentialize:eff_compile
      ~sources:(Iset.of_list (Array.to_list sources))
      ~sinks:(Iset.of_list (Array.to_list sinks))
      mediums
  in
  let nregions = Array.length p.Partition.regions in
  let proc_of r =
    let pr = place r in
    if pr < 0 || pr > nworkers then
      invalid_arg (spf "Shard.host: place %d -> invalid process %d" r pr);
    pr
  in
  (* One channel per cut whose ends land in different processes. *)
  let chans = ref [] in
  Array.iteri
    (fun i (cut : Partition.cut) ->
      let tp = proc_of cut.Partition.c_tail_region
      and hp = proc_of cut.Partition.c_head_region in
      if tp <> hp then begin
        if tp <> 0 && hp <> 0 then
          invalid_arg
            (spf
               "Shard.host: cut %d joins worker %d to worker %d; every \
                cross-process cut needs one side on the host"
               i tp hp);
        (match cut.Partition.c_shape with
         | Partition.Cut_queue _ -> ()
         | Partition.Cut_auto _ ->
           invalid_arg
             (spf
                "Shard.host: cut %d is a modal-automaton cut and cannot cross \
                 processes; place both sides in one process"
                i));
        let role = if tp = 0 then Producing else Consuming in
        let region =
          if tp = 0 then cut.Partition.c_tail_region
          else cut.Partition.c_head_region
        in
        let worker = if tp = 0 then hp else tp in
        let c = make_chan ~id:i ~role ~window ~region in
        if role = Producing then inject_init c cut.Partition.c_shape;
        chans := (worker, c, cut) :: !chans
      end)
    p.Partition.cuts;
  let chans = List.rev !chans in
  let links =
    Array.init nworkers (fun w ->
        let mine =
          List.filter_map
            (fun (worker, c, _) -> if worker = w + 1 then Some c else None)
            chans
        in
        make_link ~token:(spf "w%d" (w + 1)) (Array.of_list mine))
  in
  List.iter
    (fun (worker, c, _) ->
      c.ch_notify <- (fun () -> link_signal links.(worker - 1)))
    chans;
  (* The placed connector: local engines for host regions only, shard gates
     at every cross-process cut. *)
  let chan_tbl = Hashtbl.create 16 in
  List.iter (fun (_, c, _) -> Hashtbl.replace chan_tbl c.ch_id c) chans;
  let cut_gates id _shape ~tail_region:_ ~head_region:_ =
    match Hashtbl.find_opt chan_tbl id with
    | Some c -> Some (producer_gate ~latency_every c, consumer_gate c)
    | None -> None
  in
  let conn =
    Connector.create ~config:Config.new_partitioned ~name ~domains:eff_domains
      ~compile:eff_compile
      ~local:(fun r -> proc_of r = 0)
      ~cut_gates ~sources ~sinks mediums
  in
  if Connector.plan_regions conn <> nregions then
    shard_err "shard: placement plan mismatch (%d regions vs %d)"
      (Connector.plan_regions conn) nregions;
  set_kicks conn (List.map (fun (_, c, _) -> c) chans);
  let listener = Bridge.listen_local ~port:0 () in
  (try Unix.set_close_on_exec listener with _ -> ());
  let port = Bridge.bound_port listener in
  (* The per-worker configuration frame, rebuilt at every (re)connect so
     resume floors reflect the host's current consume and ack positions. *)
  let cfg_for w =
    let mine =
      List.filter_map
        (fun (worker, c, _) -> if worker = w then Some c else None)
        chans
    in
    let chan_frames =
      List.map
        (fun c ->
          (* the frame describes the WORKER's side of the channel *)
          let wrole =
            match c.ch_role with Producing -> "cons" | Consuming -> "prod"
          in
          let journal =
            match (c.ch_role, journal_dir) with
            | Producing, Some dir -> journal_path ~dir ~ch:c.ch_id
            | _ -> ""
          in
          (* Both directions need a resume floor. Worker-producing (host
             Consuming): our receive position, so the replaying producer
             swallows what we already have. Worker-consuming (host
             Producing): our ack watermark — the host replays from
             [ch_acked], so a respawned worker with no journal (or a lost
             one) must start expecting there, not at 0, or the first
             replayed batch reads as a sequence gap and the worker dies in
             a respawn loop. *)
          let floor =
            match c.ch_role with
            | Consuming -> locked c.ch_mu (fun () -> c.ch_expect)
            | Producing -> locked c.ch_mu (fun () -> c.ch_acked)
          in
          Value.list
            [
              Value.int c.ch_id;
              Value.str wrole;
              Value.int c.ch_window;
              Value.str journal;
              Value.int floor;
            ])
        mine
    in
    let regions =
      List.filter_map
        (fun r -> if proc_of r = w then Some (Value.int r) else None)
        (List.init nregions Fun.id)
    in
    Value.list
      [
        Value.str source;
        Value.str name;
        Value.list
          (List.map
             (fun (g, n) -> Value.pair (Value.str g) (Value.int n))
             lengths);
        Value.int eff_domains;
        Value.bool eff_compile;
        Value.str
          (match backend with
           | Sched.Coloring -> "coloring"
           | Sched.Automata -> "automata");
        Value.int nregions;
        Value.int (Array.length p.Partition.cuts);
        Value.list regions;
        Value.list chan_frames;
        Value.list (List.map encode_workload (workloads w));
      ]
  in
  let exe = match exe with Some e -> e | None -> default_exe () in
  let h =
    {
      h_conn = conn;
      h_bindings = bindings;
      h_links = links;
      h_listener = listener;
      h_port = port;
      h_exe = exe;
      h_retries = retries;
      h_backoff = backoff;
      h_hello_timeout = hello_timeout;
      h_cfg_of = cfg_for;
      h_stop = Atomic.make false;
      h_lat_mu = Mutex.create ();
      h_lat = [];
      h_lat_n = 0;
      h_threads = [];
    }
  in
  Array.iter (fun lk -> spawn_worker h lk) links;
  let accept_t = Thread.create accept_loop h in
  let sender_ts =
    Array.to_list (Array.map (fun lk -> Thread.create sender_loop lk) links)
  in
  let manager_ts =
    Array.to_list
      (Array.mapi
         (fun w lk -> Thread.create (fun () -> manager h lk (w + 1)) ())
         links)
  in
  h.h_threads <- (accept_t :: sender_ts) @ manager_ts;
  h

let connector h = h.h_conn

let vertex_at h group i =
  match List.assoc_opt group h.h_bindings with
  | None -> invalid_arg (spf "Shard: unknown group %s" group)
  | Some arr ->
    if i < 0 || i >= Array.length arr then
      invalid_arg (spf "Shard: %s[%d] out of range" group i);
    arr.(i)

let outport_at h group i = Connector.outport h.h_conn (vertex_at h group i)
let inport_at h group i = Connector.inport h.h_conn (vertex_at h group i)

let latencies h =
  Mutex.lock h.h_lat_mu;
  let l = h.h_lat in
  h.h_lat <- [];
  h.h_lat_n <- 0;
  Mutex.unlock h.h_lat_mu;
  l

let worker_pids h = Array.map (fun lk -> lk.lk_pid) h.h_links

let kill_worker h w =
  if w < 1 || w > Array.length h.h_links then invalid_arg "Shard.kill_worker";
  let lk = h.h_links.(w - 1) in
  try Unix.kill lk.lk_pid Sys.sigkill with _ -> ()

let shutdown h =
  Atomic.set h.h_stop true;
  Array.iter
    (fun lk ->
      Mutex.lock lk.lk_mu;
      lk.lk_close <- true;
      lk.lk_dirty <- true;
      Condition.broadcast lk.lk_cond;
      Mutex.unlock lk.lk_mu)
    h.h_links;
  (* Give the senders a beat to flush Sh_close before poisoning cuts the
     engines (workers exit 0 on a clean close, nonzero on a dropped link). *)
  let flush_deadline = Unix.gettimeofday () +. 2.0 in
  let all_stopped () =
    Array.for_all
      (fun lk ->
        Mutex.lock lk.lk_mu;
        let s = lk.lk_stop in
        Mutex.unlock lk.lk_mu;
        s)
      h.h_links
  in
  while (not (all_stopped ())) && Unix.gettimeofday () < flush_deadline do
    Thread.delay 0.01
  done;
  (* A blocked accept() is not woken by close() on another thread; shutdown()
     on the listening socket makes it return EINVAL, and a throwaway
     self-connection covers platforms where it does not. *)
  (try Unix.shutdown h.h_listener Unix.SHUTDOWN_ALL with _ -> ());
  (try
     let fd = Bridge.connect_local ~port:h.h_port () in
     Unix.close fd
   with _ -> ());
  (try Unix.close h.h_listener with _ -> ());
  Connector.close h.h_conn;
  let statuses =
    Array.to_list
      (Array.map
         (fun lk ->
           let deadline = Unix.gettimeofday () +. 10.0 in
           let rec wait () =
             match Unix.waitpid [ Unix.WNOHANG ] lk.lk_pid with
             | 0, _ ->
               if Unix.gettimeofday () > deadline then begin
                 (try Unix.kill lk.lk_pid Sys.sigkill with _ -> ());
                 let _, st = Unix.waitpid [] lk.lk_pid in
                 (lk.lk_pid, st)
               end
               else begin
                 Thread.delay 0.02;
                 wait ()
               end
             | pid, st -> (pid, st)
             | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
               (lk.lk_pid, Unix.WEXITED 0)
             | exception _ -> (lk.lk_pid, Unix.WEXITED 0)
           in
           wait ())
         h.h_links)
  in
  List.iter (fun t -> try Thread.join t with _ -> ()) h.h_threads;
  statuses

(* --- Worker ------------------------------------------------------------------ *)

type wcfg = {
  c_source : string;
  c_name : string;
  c_lengths : (string * int) list;
  c_domains : int;
  c_compile : bool;
  c_backend : Sched.backend;
  c_nregions : int;
  c_ncuts : int;
  c_regions : int list;
  c_chans : (int * role * int * string option * int) list;
  c_workloads : workload list;
}

let decode_cfg v =
  match Value.to_list v with
  | [ src; nm; lens; doms; comp; bk; nreg; ncut; regs; chs; wls ] ->
    {
      c_source = Value.to_str src;
      c_name = Value.to_str nm;
      c_lengths =
        List.map
          (fun p ->
            let a, b = Value.to_pair p in
            (Value.to_str a, Value.to_int b))
          (Value.to_list lens);
      c_domains = Value.to_int doms;
      c_compile = Value.to_bool comp;
      c_backend =
        (match Value.to_str bk with
         | "coloring" -> Sched.Coloring
         | _ -> Sched.Automata);
      c_nregions = Value.to_int nreg;
      c_ncuts = Value.to_int ncut;
      c_regions = List.map Value.to_int (Value.to_list regs);
      c_chans =
        List.map
          (fun c ->
            match Value.to_list c with
            | [ id; role; win; jr; floor ] ->
              let role =
                match Value.to_str role with
                | "prod" -> Producing
                | "cons" -> Consuming
                | s -> shard_err "shard: bad role %S" s
              in
              let journal =
                match Value.to_str jr with "" -> None | p -> Some p
              in
              ( Value.to_int id,
                role,
                Value.to_int win,
                journal,
                Value.to_int floor )
            | _ -> shard_err "shard: bad channel frame")
          (Value.to_list chs);
      c_workloads = List.map decode_workload (Value.to_list wls);
    }
  | _ -> shard_err "shard: bad cfg frame"

let run_workload conn bindings = function
  | Produce { w_group; w_indices; w_count } ->
    List.map
      (fun i ->
        Thread.create
          (fun () ->
            let arr =
              match List.assoc_opt w_group bindings with
              | Some a -> a
              | None -> shard_err "shard: unknown group %s" w_group
            in
            let p = Connector.outport conn arr.(i) in
            try
              let k = ref 0 in
              while w_count < 0 || !k < w_count do
                Port.send p (Value.int !k);
                incr k
              done
            with Engine.Poisoned _ -> ())
          ())
      w_indices
  | Consume { w_group; w_indices; w_clients } ->
    List.map
      (fun i ->
        Thread.create
          (fun () ->
            let arr =
              match List.assoc_opt w_group bindings with
              | Some a -> a
              | None -> shard_err "shard: unknown group %s" w_group
            in
            let p = Connector.inport conn arr.(i) in
            (* each simulated client keeps a delivery counter; every popped
               message fans out to all of them *)
            let clients = Array.make (max w_clients 1) 0 in
            try
              while true do
                ignore (Port.recv p);
                if w_clients > 0 then
                  for j = 0 to w_clients - 1 do
                    clients.(j) <- clients.(j) + 1
                  done
              done
            with Engine.Poisoned _ -> ())
          ())
      w_indices

let worker_main ?(retries = 100) ?(backoff = 0.05) ~port ~token () =
  let fd = Bridge.connect_local ~retries ~backoff ~port () in
  Wire.write_shard fd (Wire.Sh_hello { token });
  let cfg =
    match Wire.read_shard ~deadline:(Unix.gettimeofday () +. 30.0) fd with
    | Some (Wire.Sh_cfg v) -> decode_cfg v
    | _ -> shard_err "shard: expected configuration after hello"
  in
  let bindings, sources, sinks, mediums =
    build_parts ~source:cfg.c_source ~name:cfg.c_name ~lengths:cfg.c_lengths
  in
  (* Rebuild our side of every channel; recover journals before anything
     can acknowledge. *)
  let chans =
    List.map
      (fun (id, role, window, journal, floor) ->
        let c = make_chan ~id ~role ~window ~region:(-1) in
        (match role with
         | Producing -> c.ch_floor <- floor
         | Consuming ->
           (* Resume position: the journal when we have one, else the ack
              floor the host shipped (its replay starts there). The max is
              safe either way: the journal is flushed before any ack can
              reach the host, so recovered >= floor whenever the journal
              survived, and floor covers a missing or lost journal. *)
           let recovered =
             match journal with Some p -> recover_journal p | None -> 0
           in
           let resume = max recovered floor in
           c.ch_expect <- resume;
           c.ch_popped <- resume;
           c.ch_ack_flushed <- resume;
           c.ch_journal <-
             Option.map
               (fun p ->
                 open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 p)
               journal);
        c)
      cfg.c_chans
  in
  let chan_tbl = Hashtbl.create 16 in
  List.iter (fun c -> Hashtbl.replace chan_tbl c.ch_id c) chans;
  let realized = Hashtbl.create 16 in
  let cut_gates id shape ~tail_region ~head_region =
    match Hashtbl.find_opt chan_tbl id with
    | None -> None
    | Some c ->
      Hashtbl.replace realized id ();
      c.ch_region <-
        (match c.ch_role with
         | Producing -> tail_region
         | Consuming -> head_region);
      if c.ch_role = Producing then inject_init c shape;
      Some (producer_gate ~latency_every:0 c, consumer_gate c)
  in
  let my_regions = cfg.c_regions in
  let conn =
    Connector.create ~config:Config.new_partitioned ~name:cfg.c_name
      ~backend:cfg.c_backend ~domains:cfg.c_domains ~compile:cfg.c_compile
      ~local:(fun r -> List.mem r my_regions)
      ~cut_gates ~sources ~sinks mediums
  in
  let fail_structurally msg =
    (try Wire.write_shard fd (Wire.Sh_poison msg) with _ -> ());
    prerr_endline msg;
    2
  in
  if Connector.plan_regions conn <> cfg.c_nregions then
    fail_structurally
      (spf "shard: worker %s plan mismatch: %d regions here, host expected %d"
         token (Connector.plan_regions conn) cfg.c_nregions)
  else if Hashtbl.length realized <> List.length cfg.c_chans then
    fail_structurally
      (spf
         "shard: worker %s cut mismatch: realized %d of %d channels (plan has \
          %d cuts)"
         token (Hashtbl.length realized) (List.length cfg.c_chans) cfg.c_ncuts)
  else begin
    set_kicks conn chans;
    let lk = make_link ~token (Array.of_list chans) in
    lk.lk_fd <- Some fd;
    List.iter (fun c -> c.ch_notify <- (fun () -> link_signal lk)) chans;
    let resumes =
      List.filter_map
        (fun c ->
          match c.ch_role with
          | Consuming -> Some (c.ch_id, c.ch_popped)
          | Producing -> None)
        chans
    in
    Wire.write_shard fd (Wire.Sh_resume resumes);
    let sender = Thread.create sender_loop lk in
    (* flush anything injected before the link existed (fifo prefills) *)
    link_signal lk;
    let tasks = List.concat_map (run_workload conn bindings) cfg.c_workloads in
    let find_chan id =
      match Hashtbl.find_opt chan_tbl id with
      | Some c -> c
      | None -> shard_err "shard: unknown channel %d" id
    in
    let code =
      match recv_loop fd ~find_chan ~on_ack_latency:(fun _ -> ()) with
      | `Close ->
        Connector.close conn;
        0
      | `Poisoned reason ->
        Connector.poison conn (spf "shard: %s" reason);
        3
      | exception e ->
        Connector.poison conn
          (spf "shard: link to host lost (%s)" (Printexc.to_string e));
        1
    in
    Mutex.lock lk.lk_mu;
    lk.lk_stop <- true;
    Condition.broadcast lk.lk_cond;
    Mutex.unlock lk.lk_mu;
    (try Thread.join sender with _ -> ());
    List.iter (fun t -> try Thread.join t with _ -> ()) tasks;
    List.iter
      (fun c ->
        match c.ch_journal with
        | Some oc -> ( try close_out oc with _ -> ())
        | None -> ())
      chans;
    (try Unix.close fd with _ -> ());
    code
  end
