(** Sharded multi-process connector fabric.

    Partition a connector's regions across worker processes: each
    cross-process cut of the {!Preo_runtime.Partition} plan becomes a
    batched, backpressured, exactly-once wire channel over a local bridge
    socket. The host (process 0) owns the boundary ports and the worker
    lifecycle; workers are [preoc worker] processes that rebuild the same
    plan from the same DSL source and run only their assigned regions.

    Guarantees per channel:
    - {b batching}: all values committed since the last flush travel in one
      frame;
    - {b backpressure}: at most [window] unacknowledged values are in
      flight — beyond that the producing region's gate closes and the
      producer task parks;
    - {b resume}: on link failure the host retries with exponential
      backoff, respawning dead workers; a reconnecting worker resumes each
      consuming channel at the greater of its journal's recovered count
      and the ack floor the host ships in the configuration frame — so a
      respawned worker without a journal picks up exactly where the host's
      replay starts — reports that position, and the unacked window is
      replayed (duplicates are dropped by sequence number). With a journal
      the channel is exactly-once with respect to the journal contents;
    - {b escalation}: an exhausted retry budget poisons every region in
      every process with a structured diagnosis — parked producers are
      released, nothing hangs. The budget is only refunded by sessions
      that do useful work (progress or a minimum lifetime), and total
      respawns per link are capped, so a worker that repeatedly dies
      after resume still escalates rather than respawning forever.

    Topology is a star: every cross-process cut must keep one side on the
    host, and only queue-shaped cuts (async fifo boundaries) may cross
    processes. {!host} rejects other placements with [Invalid_argument]. *)

(** {1 Placement plan} *)

val plan :
  ?domains:int ->
  ?compile:bool ->
  source:string ->
  name:string ->
  lengths:(string * int) list ->
  unit ->
  Preo_runtime.Partition.plan
(** Compile [name] from [source], instantiate with [lengths], and return
    the partition plan the fabric will shard — inspect [plan.cuts] (each
    cut's tail/head region) to choose a [place] function before calling
    {!host}. Deterministic: every process building the same (source, name,
    lengths, domains, compile) sees identical region and cut indices. *)

val boundary_regions :
  ?domains:int ->
  ?compile:bool ->
  source:string ->
  name:string ->
  lengths:(string * int) list ->
  unit ->
  (string * int array) list
(** For each boundary group, the plan region index owning each element —
    the map a [place] function needs ("put [hd[i]]'s region on worker
    [1 + i mod W]"). [-1] if an element landed in no region (does not
    happen for realizable boundaries). Deterministic like {!plan}. *)

(** {1 Workloads}

    Worker task code cannot be shipped as closures, so it is named. *)

type workload =
  | Produce of { w_group : string; w_indices : int list; w_count : int }
      (** One task per index of boundary group [w_group], each sending
          [Value.int 0 .. w_count-1] ([w_count < 0]: unbounded). *)
  | Consume of { w_group : string; w_indices : int list; w_clients : int }
      (** One task per index draining the port; every delivery increments
          [w_clients] simulated per-client counters. *)

(** {1 Host} *)

type host

val host :
  ?window:int ->
  ?domains:int ->
  ?compile:bool ->
  ?retries:int ->
  ?backoff:float ->
  ?hello_timeout:float ->
  ?journal_dir:string ->
  ?latency_every:int ->
  ?exe:string ->
  nworkers:int ->
  place:(int -> int) ->
  workloads:(int -> workload list) ->
  source:string ->
  name:string ->
  lengths:(string * int) list ->
  unit ->
  host
(** Build the sharded instance and spawn [nworkers] worker processes.

    [place r] maps plan region [r] to a process: [0] is the host, [1 ..
    nworkers] are workers. [workloads w] names the tasks worker [w] runs.
    [window] (default 1024) bounds unacked values per channel. [retries]
    (default 3) and [backoff] (default 0.25s, doubling) govern reconnect
    attempts per link failure. [journal_dir] enables a journal per
    worker-consumed channel under that directory (create it first).
    [latency_every] samples every Nth producer send for round-trip
    latency (0: off, see {!latencies}). [exe] is the worker binary
    (default: [$PREO_PREOC], else [preoc.exe] next to the running
    executable's [../bin], else [preoc] from [$PATH]). *)

val connector : host -> Preo_runtime.Connector.t
(** The host's placed connector (for stats, poison, port access). *)

val outport_at : host -> string -> int -> Preo_runtime.Port.outport
(** [outport_at h group i]: port of boundary vertex [group[i]]. Raises
    [Invalid_argument] if that vertex's region is placed on a worker. *)

val inport_at : host -> string -> int -> Preo_runtime.Port.inport

val latencies : host -> float list
(** Drain collected producer-send → ack round-trip samples (seconds). *)

val worker_pids : host -> int array

val kill_worker : host -> int -> unit
(** [kill_worker h w]: SIGKILL worker [w] (1-based) — crash injection for
    tests; the manager respawns it within the retry budget. *)

val shutdown : host -> (int * Unix.process_status) list
(** Orderly teardown: flush and send [Sh_close] on every link, close the
    connector, reap the workers (SIGKILL after a bounded wait) and join the
    fabric threads. Returns each worker's pid and exit status — a worker
    that saw the close exits 0. *)

(** {1 Worker} *)

val worker_main : ?retries:int -> ?backoff:float -> port:int -> token:string -> unit -> int
(** Body of [preoc worker]: connect to the host, handshake (hello → cfg →
    resume), rebuild the plan locally, run assigned regions and workloads
    until the host closes the link. Returns the process exit code: 0 clean
    close, 1 link lost (the host respawns us), 2 structural mismatch,
    3 poisoned. *)

(** {1 Journals} *)

val journal_path : dir:string -> ch:int -> string
(** Where the channel [ch] journal lives under [dir]. *)

val read_journal : string -> Preo_support.Value.t list
(** Decode a journal's complete lines ([] if the file does not exist). *)

val recover_journal : string -> int
(** Durable value count; truncates a torn trailing line in place. *)

val journal_line : Preo_support.Value.t -> string
(** The hex line {!read_journal} decodes (exposed for tests). *)
