open Preo_support

(* --- Value encoding ------------------------------------------------------- *)

let add_int64 buf (x : int64) =
  for shift = 0 to 7 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical x (8 * shift)) 0xFFL)))
  done

let add_int buf n = add_int64 buf (Int64.of_int n)

let get_int64 b ~pos =
  let x = ref 0L in
  for shift = 7 downto 0 do
    x :=
      Int64.logor
        (Int64.shift_left !x 8)
        (Int64.of_int (Char.code (Bytes.get b (!pos + shift))))
  done;
  pos := !pos + 8;
  !x

let get_int b ~pos = Int64.to_int (get_int64 b ~pos)

let rec encode_value buf (v : Value.t) =
  match v with
  | Value.Unit -> Buffer.add_char buf 'u'
  | Value.Bool b ->
    Buffer.add_char buf 'b';
    Buffer.add_char buf (if b then '\001' else '\000')
  | Value.Int n ->
    Buffer.add_char buf 'i';
    add_int buf n
  | Value.Float f ->
    Buffer.add_char buf 'f';
    add_int64 buf (Int64.bits_of_float f)
  | Value.Str s ->
    Buffer.add_char buf 's';
    add_int buf (String.length s);
    Buffer.add_string buf s
  | Value.Pair (a, b) ->
    Buffer.add_char buf 'p';
    encode_value buf a;
    encode_value buf b
  | Value.List l ->
    Buffer.add_char buf 'l';
    add_int buf (List.length l);
    List.iter (encode_value buf) l
  | Value.Float_array a ->
    Buffer.add_char buf 'a';
    add_int buf (Array.length a);
    Array.iter (fun x -> add_int64 buf (Int64.bits_of_float x)) a

(* Frames can come from untrusted peers: every length and every read is
   bounds-checked against the frame, so malformed input fails with a
   [Failure "wire: ..."] instead of escaping as [Invalid_argument] (negative
   or out-of-frame index) or [Out_of_memory] (absurd allocation size). *)
let need b pos n =
  if n < 0 || n > Bytes.length b - !pos then
    failwith
      (Printf.sprintf "wire: malformed frame (need %d bytes at %d of %d)" n
         !pos (Bytes.length b))

let rec decode_value b ~pos =
  need b pos 1;
  let tag = Bytes.get b !pos in
  incr pos;
  match tag with
  | 'u' -> Value.Unit
  | 'b' ->
    need b pos 1;
    let c = Bytes.get b !pos in
    incr pos;
    Value.Bool (c <> '\000')
  | 'i' ->
    need b pos 8;
    Value.Int (get_int b ~pos)
  | 'f' ->
    need b pos 8;
    Value.Float (Int64.float_of_bits (get_int64 b ~pos))
  | 's' ->
    need b pos 8;
    let n = get_int b ~pos in
    need b pos n;
    let s = Bytes.sub_string b !pos n in
    pos := !pos + n;
    Value.Str s
  | 'p' ->
    let a = decode_value b ~pos in
    let b' = decode_value b ~pos in
    Value.Pair (a, b')
  | 'l' ->
    need b pos 8;
    let n = get_int b ~pos in
    (* each element takes at least its one tag byte *)
    need b pos n;
    Value.List (List.init n (fun _ -> decode_value b ~pos))
  | 'a' ->
    need b pos 8;
    let n = get_int b ~pos in
    if n < 0 || n > (Bytes.length b - !pos) / 8 then
      failwith (Printf.sprintf "wire: malformed float-array length %d" n);
    Value.Float_array
      (Array.init n (fun _ -> Int64.float_of_bits (get_int64 b ~pos)))
  | c -> failwith (Printf.sprintf "wire: bad value tag %C" c)

(* --- Frames ---------------------------------------------------------------- *)

exception Timeout

(* A signal landing mid-frame must restart the interrupted syscall, not
   propagate EINTR and corrupt the stream framing. *)
let rec restart_eintr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> restart_eintr f

(* Block until [fd] is ready (readable/writable per [for_read]) or
   [deadline] (absolute Unix time) passes, raising {!Timeout} then. *)
let wait_ready fd ~for_read deadline =
  match deadline with
  | None -> ()
  | Some d ->
    let rec go () =
      let remaining = d -. Unix.gettimeofday () in
      if remaining <= 0.0 then raise Timeout;
      let rd, wr = if for_read then ([ fd ], []) else ([], [ fd ]) in
      match restart_eintr (fun () -> Unix.select rd wr [] remaining) with
      | [], [], _ -> go () (* re-check the clock; select can return early *)
      | _ -> ()
    in
    go ()

let really_write ?deadline fd bytes =
  let n = Bytes.length bytes in
  let rec go off =
    if off < n then begin
      wait_ready fd ~for_read:false deadline;
      let w = restart_eintr (fun () -> Unix.write fd bytes off (n - off)) in
      if w = 0 then failwith "wire: short write";
      go (off + w)
    end
  in
  go 0

(* Returns [None] on EOF at a frame boundary. *)
let really_read ?deadline fd n ~allow_eof =
  let b = Bytes.create n in
  let rec go off =
    if off >= n then Some b
    else begin
      wait_ready fd ~for_read:true deadline;
      let r = restart_eintr (fun () -> Unix.read fd b off (n - off)) in
      if r = 0 then
        if off = 0 && allow_eof then None else failwith "wire: unexpected EOF"
      else go (off + r)
    end
  in
  go 0

let write_frame ?deadline fd buf =
  let payload = Buffer.to_bytes buf in
  let header = Buffer.create 8 in
  add_int header (Bytes.length payload);
  really_write ?deadline fd (Buffer.to_bytes header);
  really_write ?deadline fd payload

let read_frame ?deadline fd ~allow_eof =
  match really_read ?deadline fd 8 ~allow_eof with
  | None -> None
  | Some header ->
    let pos = ref 0 in
    let n = get_int header ~pos in
    if n < 0 || n > 64 * 1024 * 1024 then failwith "wire: absurd frame length";
    (match really_read ?deadline fd n ~allow_eof:false with
     | Some payload -> Some payload
     | None -> assert false)

(* --- Messages --------------------------------------------------------------- *)

type request = Req_send of Value.t | Req_recv | Req_close
type response = Resp_ok | Resp_value of Value.t | Resp_error of string

type span = { sp_corr : int; sp_span : int }

(* A traced request frame carries a 'T' header (correlation id + span id)
   before the request tag; untraced frames start directly at the tag, so the
   two framings coexist on one connection and tracing can be toggled
   per-request. *)
let write_request ?deadline ?span fd req =
  let buf = Buffer.create 32 in
  (match span with
   | Some { sp_corr; sp_span } ->
     Buffer.add_char buf 'T';
     add_int buf sp_corr;
     add_int buf sp_span
   | None -> ());
  (match req with
   | Req_send v ->
     Buffer.add_char buf 'S';
     encode_value buf v
   | Req_recv -> Buffer.add_char buf 'R'
   | Req_close -> Buffer.add_char buf 'C');
  write_frame ?deadline fd buf

let read_request_traced ?deadline fd =
  match read_frame ?deadline fd ~allow_eof:true with
  | None -> None
  | Some b ->
    let pos = ref 0 in
    need b pos 1;
    let span =
      if Bytes.get b !pos = 'T' then begin
        incr pos;
        need b pos 16;
        let sp_corr = get_int b ~pos in
        let sp_span = get_int b ~pos in
        Some { sp_corr; sp_span }
      end
      else None
    in
    need b pos 1;
    let tag = Bytes.get b !pos in
    incr pos;
    (match tag with
     | 'S' -> Some (Req_send (decode_value b ~pos), span)
     | 'R' -> Some (Req_recv, span)
     | 'C' -> Some (Req_close, span)
     | c -> failwith (Printf.sprintf "wire: bad request tag %C" c))

let read_request ?deadline fd =
  Option.map fst (read_request_traced ?deadline fd)

let write_response ?deadline fd resp =
  let buf = Buffer.create 32 in
  (match resp with
   | Resp_ok -> Buffer.add_char buf 'O'
   | Resp_value v ->
     Buffer.add_char buf 'V';
     encode_value buf v
   | Resp_error msg ->
     Buffer.add_char buf 'E';
     add_int buf (String.length msg);
     Buffer.add_string buf msg);
  write_frame ?deadline fd buf

let read_response ?deadline fd =
  match read_frame ?deadline fd ~allow_eof:false with
  | None -> assert false
  | Some b ->
    let pos = ref 0 in
    need b pos 1;
    let tag = Bytes.get b !pos in
    incr pos;
    (match tag with
     | 'O' -> Resp_ok
     | 'V' -> Resp_value (decode_value b ~pos)
     | 'E' ->
       need b pos 8;
       let n = get_int b ~pos in
       need b pos n;
       Resp_error (Bytes.sub_string b !pos n)
     | c -> failwith (Printf.sprintf "wire: bad response tag %C" c))

(* --- Shard fabric messages -------------------------------------------------- *)

type shard_msg =
  | Sh_hello of { token : string }
  | Sh_cfg of Value.t
  | Sh_resume of (int * int) list
  | Sh_batch of { ch : int; base : int; items : Value.t list }
  | Sh_ack of { ch : int; upto : int }
  | Sh_poison of string
  | Sh_close

let add_str buf s =
  add_int buf (String.length s);
  Buffer.add_string buf s

let get_str b ~pos =
  need b pos 8;
  let n = get_int b ~pos in
  need b pos n;
  let s = Bytes.sub_string b !pos n in
  pos := !pos + n;
  s

let encode_shard buf = function
  | Sh_hello { token } ->
    Buffer.add_char buf 'H';
    add_str buf token
  | Sh_cfg v ->
    Buffer.add_char buf 'G';
    encode_value buf v
  | Sh_resume resumes ->
    Buffer.add_char buf 'M';
    add_int buf (List.length resumes);
    List.iter
      (fun (ch, upto) ->
        add_int buf ch;
        add_int buf upto)
      resumes
  | Sh_batch { ch; base; items } ->
    Buffer.add_char buf 'B';
    add_int buf ch;
    add_int buf base;
    add_int buf (List.length items);
    List.iter (encode_value buf) items
  | Sh_ack { ch; upto } ->
    Buffer.add_char buf 'A';
    add_int buf ch;
    add_int buf upto
  | Sh_poison reason ->
    Buffer.add_char buf 'P';
    add_str buf reason
  | Sh_close -> Buffer.add_char buf 'Z'

let decode_shard b ~pos =
  need b pos 1;
  let tag = Bytes.get b !pos in
  incr pos;
  match tag with
  | 'H' -> Sh_hello { token = get_str b ~pos }
  | 'G' -> Sh_cfg (decode_value b ~pos)
  | 'M' ->
    need b pos 8;
    let n = get_int b ~pos in
    (* each entry takes 16 bytes *)
    if n < 0 || n > (Bytes.length b - !pos) / 16 then
      failwith (Printf.sprintf "wire: malformed resume count %d" n);
    Sh_resume
      (List.init n (fun _ ->
           let ch = get_int b ~pos in
           let upto = get_int b ~pos in
           (ch, upto)))
  | 'B' ->
    need b pos 24;
    let ch = get_int b ~pos in
    let base = get_int b ~pos in
    let n = get_int b ~pos in
    (* each item takes at least its one tag byte *)
    need b pos n;
    Sh_batch { ch; base; items = List.init n (fun _ -> decode_value b ~pos) }
  | 'A' ->
    need b pos 16;
    let ch = get_int b ~pos in
    let upto = get_int b ~pos in
    Sh_ack { ch; upto }
  | 'P' -> Sh_poison (get_str b ~pos)
  | 'Z' -> Sh_close
  | c -> failwith (Printf.sprintf "wire: bad shard tag %C" c)

let write_shard ?deadline fd msg =
  let buf = Buffer.create 64 in
  encode_shard buf msg;
  write_frame ?deadline fd buf

let read_shard ?deadline fd =
  match read_frame ?deadline fd ~allow_eof:true with
  | None -> None
  | Some b ->
    let pos = ref 0 in
    Some (decode_shard b ~pos)
