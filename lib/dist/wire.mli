(** Wire format for port operations across process boundaries.

    Values are encoded with a self-describing binary format (no [Marshal],
    so the two endpoints need not run the same binary); every message is a
    length-prefixed frame. Decoding bounds-checks every length against the
    frame, so malformed peer input fails with [Failure "wire: ..."] rather
    than [Invalid_argument] or [Out_of_memory]; reads and writes restart on
    [EINTR] so a signal cannot corrupt the stream framing.

    All I/O entry points take an optional [deadline] (absolute Unix time);
    when the descriptor is not ready in time, {!Timeout} is raised. *)

open Preo_support

exception Timeout
(** A [deadline] passed before the peer produced (or accepted) the data. *)

val encode_value : Buffer.t -> Value.t -> unit
val decode_value : bytes -> pos:int ref -> Value.t
(** Raises [Failure] on malformed input. *)

type request =
  | Req_send of Value.t  (** complete a send on the bridged outport *)
  | Req_recv  (** complete a receive on the bridged inport *)
  | Req_close

type response =
  | Resp_ok
  | Resp_value of Value.t
  | Resp_error of string

type span = { sp_corr : int; sp_span : int }
(** Trace identity of one RPC: the client process's correlation ID plus a
    per-RPC span ID, carried inside the request frame (as a ['T'] header
    before the request tag) so traces exported on both sides of a bridge
    merge on a shared correlation. *)

val write_request :
  ?deadline:float -> ?span:span -> Unix.file_descr -> request -> unit

val read_request : ?deadline:float -> Unix.file_descr -> request option
(** [None] on clean EOF. Accepts traced and untraced frames (any span is
    dropped). *)

val read_request_traced :
  ?deadline:float -> Unix.file_descr -> (request * span option) option
(** Like {!read_request} but also returns the trace span, if the frame
    carried one. *)

val write_response : ?deadline:float -> Unix.file_descr -> response -> unit
val read_response : ?deadline:float -> Unix.file_descr -> response

(** Messages of the sharded connector fabric (see {!module:Shard}). One
    connection carries all cut channels between two processes; [Sh_batch]
    coalesces every value queued on one channel since the last flush into a
    single frame, and [Sh_ack] is cumulative (acknowledges all sequence
    numbers below [upto]), so the in-flight window survives reconnects. *)
type shard_msg =
  | Sh_hello of { token : string }
      (** first frame from a worker; names the link *)
  | Sh_cfg of Value.t
      (** host → worker: the placement configuration (DSL source, lengths,
          regions, channels, workloads) as one encoded value *)
  | Sh_resume of (int * int) list
      (** worker → host after [Sh_cfg]: per-channel [(ch, upto)] — every
          sequence number below [upto] was durably consumed; the host trims
          its replay window to start there *)
  | Sh_batch of { ch : int; base : int; items : Value.t list }
      (** items carry sequence numbers [base], [base+1], ... *)
  | Sh_ack of { ch : int; upto : int }  (** cumulative: acks all seq < upto *)
  | Sh_poison of string  (** structured cross-process poison *)
  | Sh_close  (** orderly shutdown *)

val encode_shard : Buffer.t -> shard_msg -> unit

val decode_shard : bytes -> pos:int ref -> shard_msg
(** Raises [Failure "wire: ..."] on malformed input. *)

val write_shard : ?deadline:float -> Unix.file_descr -> shard_msg -> unit

val read_shard : ?deadline:float -> Unix.file_descr -> shard_msg option
(** [None] on clean EOF. *)
