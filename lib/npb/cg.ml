open Preo_support

type result = { zeta : float; seconds : float; comm_steps : int }

(* Sparse symmetric positive-definite matrix in CSR form. Diagonal dominance
   makes it SPD; construction is deterministic in (na, nonzer). *)
type csr = {
  row_ptr : int array;  (** length na+1 *)
  col : int array;
  value : float array;
  na : int;
}

let make_matrix ~na ~nonzer =
  let rng = Rng.create (na * 1_000_003 + nonzer) in
  (* Off-diagonal pattern: per row, ~nonzer/2 entries with col > row,
     mirrored below the diagonal. *)
  let upper = Array.make na [] in
  let lower = Array.make na [] in
  for i = 0 to na - 1 do
    let k = 1 + Rng.int rng (max 1 (nonzer / 2)) in
    for _ = 1 to k do
      let j = Rng.int rng na in
      if j > i then begin
        let v = Rng.float rng 1.0 -. 0.5 in
        upper.(i) <- (j, v) :: upper.(i);
        lower.(j) <- (i, v) :: lower.(j)
      end
    done
  done;
  let rows =
    Array.init na (fun i ->
        let entries = lower.(i) @ upper.(i) in
        let entries = List.sort_uniq (fun (a, _) (b, _) -> Int.compare a b) entries in
        let offdiag = List.fold_left (fun s (_, v) -> s +. Float.abs v) 0.0 entries in
        (* strictly diagonally dominant: SPD *)
        let diag = offdiag +. 1.0 +. (10.0 /. float_of_int na *. float_of_int (i + 1)) in
        List.filter (fun (j, _) -> j < i) entries
        @ [ (i, diag) ]
        @ List.filter (fun (j, _) -> j > i) entries)
  in
  let nnz = Array.fold_left (fun acc r -> acc + List.length r) 0 rows in
  let row_ptr = Array.make (na + 1) 0 in
  let col = Array.make nnz 0 in
  let value = Array.make nnz 0.0 in
  let k = ref 0 in
  Array.iteri
    (fun i r ->
      row_ptr.(i) <- !k;
      List.iter
        (fun (j, v) ->
          col.(!k) <- j;
          value.(!k) <- v;
          incr k)
        r)
    rows;
  row_ptr.(na) <- !k;
  { row_ptr; col; value; na }

let spmv_rows m x y lo hi =
  for i = lo to hi - 1 do
    let acc = ref 0.0 in
    for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      acc := !acc +. (m.value.(k) *. x.(m.col.(k)))
    done;
    y.(i) <- !acc
  done

let dot_rows a b lo hi =
  let acc = ref 0.0 in
  for i = lo to hi - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let run ~(comm : Comm.t) ~cls ~nslaves =
  let { Workloads.cg_na = na; cg_nonzer; cg_niter; cg_inner; cg_shift } =
    Workloads.cg cls
  in
  let m = make_matrix ~na ~nonzer:cg_nonzer in
  (* Shared vectors (slaves write disjoint slices, separated by barriers). *)
  let x = Array.make na 1.0 in
  let z = Array.make na 0.0 in
  let r = Array.make na 0.0 in
  let p = Array.make na 0.0 in
  let q = Array.make na 0.0 in
  let zeta = ref 0.0 in
  let t0 = Clock.now () in
  let slave rank =
    let lo = rank * na / nslaves and hi = (rank + 1) * na / nslaves in
    for _it = 1 to cg_niter do
      (* z = solve A z = x by CG *)
      for i = lo to hi - 1 do
        z.(i) <- 0.0;
        r.(i) <- x.(i);
        p.(i) <- x.(i)
      done;
      let rho = ref (comm.allreduce ~rank (dot_rows r r lo hi)) in
      for _cgit = 1 to cg_inner do
        comm.barrier ~rank;
        (* everyone's p slice is visible *)
        spmv_rows m p q lo hi;
        let d = comm.allreduce ~rank (dot_rows p q lo hi) in
        let alpha = !rho /. d in
        for i = lo to hi - 1 do
          z.(i) <- z.(i) +. (alpha *. p.(i));
          r.(i) <- r.(i) -. (alpha *. q.(i))
        done;
        let rho' = comm.allreduce ~rank (dot_rows r r lo hi) in
        let beta = rho' /. !rho in
        rho := rho';
        for i = lo to hi - 1 do
          p.(i) <- r.(i) +. (beta *. p.(i))
        done
      done;
      (* zeta = shift + 1 / (x . z); then x = z / ||z|| *)
      let xz = comm.allreduce ~rank (dot_rows x z lo hi) in
      let zz = comm.allreduce ~rank (dot_rows z z lo hi) in
      let norm = sqrt zz in
      if rank = 0 then zeta := cg_shift +. (1.0 /. xz);
      for i = lo to hi - 1 do
        x.(i) <- z.(i) /. norm
      done;
      comm.barrier ~rank
    done
  in
  Preo_runtime.Task.run_all ~on:comm.Comm.sched
    (List.init nslaves (fun rank () -> slave rank));
  let seconds = Clock.now () -. t0 in
  let comm_steps = comm.comm_steps () in
  comm.finish ();
  { zeta = !zeta; seconds; comm_steps }

let verify cls ~nslaves =
  let hand = run ~comm:(Comm.hand ~nslaves) ~cls ~nslaves in
  let reo = run ~comm:(Comm.reo ~nslaves ()) ~cls ~nslaves in
  hand.zeta = reo.zeta
