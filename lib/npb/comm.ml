open Preo

type t = {
  allreduce : rank:int -> float -> float;
  allreduce_array : rank:int -> float array -> float array;
  barrier : rank:int -> unit;
  pipe_send : rank:int -> Value.t -> unit;
  pipe_recv : rank:int -> Value.t;
  abort : unit -> unit;
  finish : unit -> unit;
  comm_steps : unit -> int;
  sched : Task.sched;
}

(* --- Hand-written variant ------------------------------------------------ *)

let hand ~nslaves =
  let red = Handsync.reducer nslaves in
  let ared = Handsync.array_reducer nslaves in
  let bar = Handsync.barrier nslaves in
  let pipes = Array.init (max 0 (nslaves - 1)) (fun _ -> Handsync.channel ()) in
  {
    allreduce = (fun ~rank x -> Handsync.reduce red rank x);
    allreduce_array = (fun ~rank xs -> Handsync.reduce_array ared rank xs);
    barrier = (fun ~rank:_ -> Handsync.await bar);
    pipe_send = (fun ~rank v -> Handsync.send pipes.(rank) v);
    pipe_recv = (fun ~rank -> Handsync.recv pipes.(rank - 1));
    abort = (fun () -> ());
    finish = (fun () -> ());
    comm_steps = (fun () -> 0);
    sched =
      (* The hand variant has no connector to derive a policy from, but its
         slaves deserve the same placement: pool them whenever the runtime
         is configured for more than one domain. *)
      (let d = Config.effective_domains () in
       if d > 1 then Task.Domains (Pool.default ~domains:d ())
       else Task.Threads);
  }

(* --- Connector-based variant --------------------------------------------- *)

let pipe_source =
  {|NPipe(tl[];hd[]) = prod (i:1..#tl) Fifo1(tl[i];hd[i])|}

let reo ?(config = Config.new_jit) ~nslaves () =
  (* Gather (ordered) + broadcast for the allreduce. *)
  let gather_entry = Preo_connectors.Catalog.find "ordered_merger" in
  let gather_inst =
    instantiate ~config
      (Preo_connectors.Catalog.compiled gather_entry)
      ~lengths:[ ("tl", nslaves); ("hd", nslaves) ]
  in
  let gather_out = outports gather_inst "tl" in
  let gather_in = inports gather_inst "hd" in
  let bcast_entry = Preo_connectors.Catalog.find "broadcast_fifo" in
  let bcast_inst =
    instantiate ~config
      (Preo_connectors.Catalog.compiled bcast_entry)
      ~lengths:[ ("hd", nslaves) ]
  in
  let bcast_out = (outports bcast_inst "tl").(0) in
  let bcast_in = inports bcast_inst "hd" in
  (* Barrier connector. *)
  let bar_entry = Preo_connectors.Catalog.find "barrier" in
  let bar_inst =
    instantiate ~config
      (Preo_connectors.Catalog.compiled bar_entry)
      ~lengths:[ ("tl", nslaves); ("hd", nslaves) ]
  in
  let bar_out = outports bar_inst "tl" in
  let bar_in = inports bar_inst "hd" in
  (* Pipeline fifos between adjacent ranks. *)
  let pipe_inst =
    if nslaves > 1 then
      Some
        (instantiate ~config
           (compile ~source:pipe_source ~name:"NPipe")
           ~lengths:[ ("tl", nslaves - 1); ("hd", nslaves - 1) ])
    else None
  in
  let pipe_out, pipe_in =
    match pipe_inst with
    | Some inst -> (outports inst "tl", inports inst "hd")
    | None -> ([||], [||])
  in
  (* Master helper: repeatedly gather N partials in rank order, sum, and
     broadcast the total; scalar floats and float arrays (elementwise) share
     one protocol since every rank issues the same collective. Ends when the
     connectors are poisoned. *)
  let sched = sched gather_inst in
  let master =
    Task.spawn ~on:sched (fun () ->
        while true do
          let parts = Array.map Port.recv gather_in in
          let total =
            match parts.(0) with
            | Value.Float _ ->
              Value.float
                (Array.fold_left (fun acc v -> acc +. Value.to_float v) 0.0 parts)
            | Value.Float_array first ->
              let acc = Array.make (Array.length first) 0.0 in
              Array.iter
                (fun v ->
                  Array.iteri
                    (fun i x -> acc.(i) <- acc.(i) +. x)
                    (Value.to_float_array v))
                parts;
              Value.float_array acc
            | v ->
              failwith
                ("reo allreduce: unsupported payload " ^ Value.to_string v)
          in
          Port.send bcast_out total
        done)
  in
  let instances =
    [ gather_inst; bcast_inst; bar_inst ]
    @ (match pipe_inst with Some i -> [ i ] | None -> [])
  in
  {
    allreduce =
      (fun ~rank x ->
        Port.send gather_out.(rank) (Value.float x);
        Value.to_float (Port.recv bcast_in.(rank)));
    allreduce_array =
      (fun ~rank xs ->
        Port.send gather_out.(rank) (Value.float_array xs);
        Value.to_float_array (Port.recv bcast_in.(rank)));
    barrier =
      (fun ~rank ->
        Port.send bar_out.(rank) Value.unit;
        ignore (Port.recv bar_in.(rank)));
    pipe_send = (fun ~rank v -> Port.send pipe_out.(rank) v);
    pipe_recv = (fun ~rank -> Port.recv pipe_in.(rank - 1));
    abort = (fun () -> List.iter shutdown instances);
    finish =
      (let done_ = Atomic.make false in
       fun () ->
         if not (Atomic.exchange done_ true) then begin
           List.iter shutdown instances;
           Task.join master
         end);
    comm_steps =
      (fun () -> List.fold_left (fun acc i -> acc + steps i) 0 instances);
    sched;
  }
