(** Communication/synchronization layer for the NPB kernels, in two
    implementations with identical interfaces:

    - {!hand}: hand-written barriers, reducers and channels — the paper's
      "original" programs;
    - {!reo}: everything expressed as connectors compiled from the DSL —
      the paper's Reo-based variants. The allreduce uses the paper's
      ordered-merger connector (Fig. 9) for the gather (rank order makes
      floating-point reduction deterministic and bit-identical to the hand
      variant), a broadcast-fifo connector for the result, a barrier
      connector for sync points, and a fifo array for pipelines.

    Ranks are 0-based slave indices. *)

type t = {
  allreduce : rank:int -> float -> float;
      (** contribute and receive the rank-ordered sum (collective) *)
  allreduce_array : rank:int -> float array -> float array;
      (** elementwise rank-ordered sum of equal-length arrays (collective);
          the result is shared and must not be mutated *)
  barrier : rank:int -> unit;  (** collective synchronization *)
  pipe_send : rank:int -> Preo_support.Value.t -> unit;
      (** send to rank+1 (ranks 0..n-2); buffered *)
  pipe_recv : rank:int -> Preo_support.Value.t;
      (** receive from rank-1 (ranks 1..n-1) *)
  abort : unit -> unit;
      (** poison the connectors immediately (watchdog use); hand variant:
          no-op. Safe to call from another thread. *)
  finish : unit -> unit;  (** tear down helper tasks/connectors; idempotent *)
  comm_steps : unit -> int;
      (** global connector execution steps so far (0 for the hand variant) *)
  sched : Preo_runtime.Task.sched;
      (** where the kernel's slave tasks should run: the shared domain pool
          when the runtime targets more than one domain, inline threads
          otherwise. Kernels pass this to [Task.run_all ~on]. *)
}

val hand : nslaves:int -> t
val reo : ?config:Preo_runtime.Config.t -> nslaves:int -> unit -> t
