open Preo_support

type result = { estimate : float; seconds : float; comm_steps : int }

let run ~(comm : Comm.t) ~cls ~nslaves =
  let { Workloads.ep_samples } = Workloads.ep cls in
  let per = ep_samples / nslaves in
  let estimate = ref 0.0 in
  let t0 = Clock.now () in
  let slave rank =
    let rng = Rng.create (7919 * (rank + 1)) in
    let hits = ref 0 in
    for _ = 1 to per do
      let x = Rng.float rng 2.0 -. 1.0 and y = Rng.float rng 2.0 -. 1.0 in
      if (x *. x) +. (y *. y) <= 1.0 then incr hits
    done;
    let total = comm.allreduce ~rank (float_of_int !hits) in
    if rank = 0 then
      estimate := 4.0 *. total /. float_of_int (per * nslaves)
  in
  Preo_runtime.Task.run_all ~on:comm.Comm.sched
    (List.init nslaves (fun rank () -> slave rank));
  let seconds = Clock.now () -. t0 in
  let comm_steps = comm.comm_steps () in
  comm.finish ();
  { estimate = !estimate; seconds; comm_steps }

let verify cls ~nslaves =
  let hand = run ~comm:(Comm.hand ~nslaves) ~cls ~nslaves in
  let reo = run ~comm:(Comm.reo ~nslaves ()) ~cls ~nslaves in
  hand.estimate = reo.estimate
