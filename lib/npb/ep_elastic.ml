open Preo_support
open Preo

type result = {
  estimate : float;
  seconds : float;
  comm_steps : int;
  splices : int;
  peak_slaves : int;
}

(* One chunk's contribution depends only on the chunk id, so the reduction
   is independent of which slave computes it and of the scaling schedule. *)
let chunk_hits ~chunk_samples id =
  let rng = Rng.create (7919 * (id + 1)) in
  let hits = ref 0 in
  for _ = 1 to chunk_samples do
    let x = Rng.float rng 2.0 -. 1.0 and y = Rng.float rng 2.0 -. 1.0 in
    if (x *. x) +. (y *. y) <= 1.0 then incr hits
  done;
  !hits

let nchunks = 32

let scatter_e = lazy (Preo_connectors.Catalog.find "load_balancer")
let gather_e = lazy (Preo_connectors.Catalog.find "gather")

let rec retry_quiescent budget f =
  if budget = 0 then failwith "ep_elastic: shrink never became quiescent";
  match f () with
  | () -> ()
  | exception Preo_runtime.Composer.Not_quiescent _ ->
    Thread.yield ();
    retry_quiescent (budget - 1) f

let run ?(schedule = [ 2; 4; 3; 1 ]) ~cls () =
  let { Workloads.ep_samples } = Workloads.ep cls in
  let chunk_samples = max 1 (ep_samples / nchunks) in
  let nphases = List.length schedule in
  let start = List.hd schedule in
  let scatter =
    instantiate
      (Preo_connectors.Catalog.compiled (Lazy.force scatter_e))
      ~lengths:[ ("hd", start) ]
  in
  let gather =
    instantiate
      (Preo_connectors.Catalog.compiled (Lazy.force gather_e))
      ~lengths:[ ("tl", start) ]
  in
  let work_out = (outports scatter "tl").(0) in
  let hits_in = (inports gather "hd").(0) in
  let slave idx () =
    let work = inport_at scatter "hd" idx in
    let res = outport_at gather "tl" idx in
    try
      while true do
        let id = Value.to_int (Port.recv work) in
        Port.send res (Value.int (chunk_hits ~chunk_samples id))
      done
    with Engine.Poisoned _ -> () (* "detached": this slave was descaled *)
  in
  let t0 = Clock.now () in
  let tasks = ref (List.init start (fun k -> Task.spawn ~on:(sched scatter) (slave (k + 1)))) in
  let nslaves = ref start and peak = ref start in
  let total_hits = ref 0 and next_chunk = ref 0 in
  List.iteri
    (fun phase want ->
      (* resize the pool between phases: the connectors are idle here
         (every dealt chunk has been collected), so shrink retries are
         only about a leaving slave still pushing its last result out *)
      while !nslaves < want do
        let widx = grow scatter "hd" in
        let ridx = grow gather "tl" in
        assert (widx = ridx);
        tasks := Task.spawn ~on:(sched scatter) (slave widx) :: !tasks;
        incr nslaves;
        if !nslaves > !peak then peak := !nslaves
      done;
      while !nslaves > want do
        retry_quiescent 1_000_000 (fun () -> shrink scatter "hd");
        retry_quiescent 1_000_000 (fun () -> shrink gather "tl");
        decr nslaves
      done;
      (* this phase's share of the chunk budget *)
      let upto =
        if phase = nphases - 1 then nchunks else (phase + 1) * nchunks / nphases
      in
      let batch = ref [] in
      while !next_chunk < upto do
        batch := !next_chunk :: !batch;
        incr next_chunk
      done;
      let batch = List.rev !batch in
      let feeder () =
        List.iter (fun id -> Port.send work_out (Value.int id)) batch
      in
      let collector () =
        List.iter
          (fun _ -> total_hits := !total_hits + Value.to_int (Port.recv hits_in))
          batch
      in
      Task.run_all ~on:(sched scatter) [ feeder; collector ])
    schedule;
  let seconds = Clock.now () -. t0 in
  let comm_steps = steps scatter + steps gather in
  let splices =
    Connector.splices (connector scatter) + Connector.splices (connector gather)
  in
  shutdown scatter;
  shutdown gather;
  List.iter Task.join !tasks;
  {
    estimate = 4.0 *. float_of_int !total_hits
               /. float_of_int (chunk_samples * nchunks);
    seconds;
    comm_steps;
    splices;
    peak_slaves = !peak;
  }

let verify cls =
  let r = run ~cls () in
  let { Workloads.ep_samples } = Workloads.ep cls in
  let chunk_samples = max 1 (ep_samples / nchunks) in
  let seq = ref 0 in
  for id = 0 to nchunks - 1 do
    seq := !seq + chunk_hits ~chunk_samples id
  done;
  let expect =
    4.0 *. float_of_int !seq /. float_of_int (chunk_samples * nchunks)
  in
  r.estimate = expect && r.splices > 0
