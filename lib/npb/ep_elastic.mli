(** Autoscaling master–slaves variant of the EP kernel.

    The master deals Monte-Carlo sample chunks through a load-balancer
    connector and collects per-chunk hit counts through a gather connector;
    between phases it resizes the slave pool at run time with
    [Preo.grow]/[Preo.shrink] — joining slaves get freshly spliced work and
    result slots, leaving slaves are retired via the targeted "detached"
    poison once their buffers drain. Chunk results are keyed by chunk id
    (not by slave), so the estimate is bit-identical regardless of the
    scaling schedule. *)

type result = {
  estimate : float;
  seconds : float;
  comm_steps : int;  (** scatter + gather connector steps *)
  splices : int;  (** elastic splices performed across both connectors *)
  peak_slaves : int;
}

val run : ?schedule:int list -> cls:Workloads.cls -> unit -> result
(** [schedule] is the slave-pool size per phase (default [[2; 4; 3; 1]]);
    the chunk budget is split evenly across phases. *)

val verify : Workloads.cls -> bool
(** The autoscaled estimate must equal a sequential evaluation of the same
    chunks exactly. *)
