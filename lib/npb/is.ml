open Preo_support

type result = { checksum : float; seconds : float; comm_steps : int }

let nbuckets = 64
let iterations = 5

let run ~(comm : Comm.t) ~cls ~nslaves =
  let { Workloads.ep_samples } = Workloads.ep cls in
  (* reuse the EP size ladder: keys per slave *)
  let nkeys = max 1_000 (ep_samples / 10 / nslaves) in
  let max_key = 1 lsl 16 in
  let checksum = ref 0.0 in
  let t0 = Clock.now () in
  let slave rank =
    let rng = Rng.create ((rank + 1) * 104729) in
    let keys = Array.init nkeys (fun _ -> Rng.int rng max_key) in
    let local_check = ref 0.0 in
    for it = 1 to iterations do
      (* Perturb keys deterministically so each iteration sorts new data. *)
      Array.iteri
        (fun i k -> keys.(i) <- (k + (it * 17)) land (max_key - 1))
        keys;
      (* Local histogram over the global buckets. *)
      let hist = Array.make nbuckets 0.0 in
      let bucket k = k * nbuckets / max_key in
      Array.iter (fun k -> hist.(bucket k) <- hist.(bucket k) +. 1.0) keys;
      let global = comm.allreduce_array ~rank hist in
      (* Global bucket offsets (exclusive prefix sums). *)
      let offsets = Array.make nbuckets 0.0 in
      let acc = ref 0.0 in
      for b = 0 to nbuckets - 1 do
        offsets.(b) <- !acc;
        acc := !acc +. global.(b)
      done;
      (* Local counting sort (the kernel's computational share). *)
      Array.sort Int.compare keys;
      (* Verification contribution: global rank of this slave's median key. *)
      let median = keys.(nkeys / 2) in
      local_check :=
        !local_check +. offsets.(bucket median) +. float_of_int (median mod 97)
    done;
    let total = comm.allreduce ~rank !local_check in
    if rank = 0 then checksum := total
  in
  Preo_runtime.Task.run_all ~on:comm.Comm.sched
    (List.init nslaves (fun rank () -> slave rank));
  let seconds = Clock.now () -. t0 in
  let comm_steps = comm.comm_steps () in
  comm.finish ();
  { checksum = !checksum; seconds; comm_steps }

let verify cls ~nslaves =
  let hand = run ~comm:(Comm.hand ~nslaves) ~cls ~nslaves in
  let reo = run ~comm:(Comm.reo ~nslaves ()) ~cls ~nslaves in
  hand.checksum = reo.checksum
