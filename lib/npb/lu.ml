open Preo_support

type result = { residual : float; seconds : float; comm_steps : int }

let run ~(comm : Comm.t) ~cls ~nslaves =
  let { Workloads.lu_nx = nx; lu_ny = ny; lu_niter; lu_chunk } =
    Workloads.lu cls
  in
  (* Shared grid with fixed boundary; interior initialized deterministically. *)
  let u = Array.make_matrix nx ny 0.0 in
  let rng = Rng.create (nx * 31 + ny) in
  for i = 0 to nx - 1 do
    for j = 0 to ny - 1 do
      u.(i).(j) <-
        (if i = 0 || j = 0 || i = nx - 1 || j = ny - 1 then
           (* varying boundary: the fixed point is a nontrivial field *)
           1.0 +. (0.25 *. float_of_int ((i + j) mod 7))
         else Rng.float rng 1.0)
    done
  done;
  let residual = ref 0.0 in
  let nchunks = (ny + lu_chunk - 1) / lu_chunk in
  let t0 = Clock.now () in
  let slave rank =
    let lo = max 1 (rank * nx / nslaves) in
    let hi = min (nx - 1) ((rank + 1) * nx / nslaves) in
    let local_delta = ref 0.0 in
    for _it = 1 to lu_niter do
      local_delta := 0.0;
      (* Lower sweep: Gauss–Seidel using up and left neighbours; chunk k of
         this block needs chunk k of the block above to be finished. *)
      for k = 0 to nchunks - 1 do
        if rank > 0 then ignore (comm.pipe_recv ~rank);
        let jlo = max 1 (k * lu_chunk) in
        let jhi = min (ny - 2) (((k + 1) * lu_chunk) - 1) in
        for i = lo to hi - 1 do
          for j = jlo to jhi do
            let v = 0.25 *. (u.(i).(j) +. u.(i - 1).(j) +. u.(i).(j - 1) +. 1.0) in
            local_delta := !local_delta +. Float.abs (v -. u.(i).(j));
            u.(i).(j) <- v
          done
        done;
        if rank < nslaves - 1 then comm.pipe_send ~rank (Value.int k)
      done;
      comm.barrier ~rank;
      (* Upper sweep: right/down dependencies, pipelined the other way
         around the row blocks; we keep the same pipe direction by letting
         rank 0 start again (the sweep visits columns in reverse). *)
      for k = nchunks - 1 downto 0 do
        if rank > 0 then ignore (comm.pipe_recv ~rank);
        let jlo = max 1 (k * lu_chunk) in
        let jhi = min (ny - 2) (((k + 1) * lu_chunk) - 1) in
        for i = lo to hi - 1 do
          for j = jhi downto jlo do
            let v = 0.25 *. (u.(i).(j) +. u.(i - 1).(j) +. u.(i).(j - 1) +. 1.0) in
            local_delta := !local_delta +. Float.abs (v -. u.(i).(j));
            u.(i).(j) <- v
          done
        done;
        if rank < nslaves - 1 then comm.pipe_send ~rank (Value.int k)
      done;
      let total = comm.allreduce ~rank !local_delta in
      if rank = 0 then residual := total
    done
  in
  Preo_runtime.Task.run_all ~on:comm.Comm.sched
    (List.init nslaves (fun rank () -> slave rank));
  let seconds = Clock.now () -. t0 in
  (* Verification value: grid checksum plus the last sweep's delta (the
     delta alone converges to zero, which would verify vacuously). *)
  let checksum = ref 0.0 in
  for i = 0 to nx - 1 do
    for j = 0 to ny - 1 do
      checksum := !checksum +. (u.(i).(j) *. float_of_int (((i * 31) + j) mod 97))
    done
  done;
  let comm_steps = comm.comm_steps () in
  comm.finish ();
  { residual = !checksum +. !residual; seconds; comm_steps }

let verify cls ~nslaves =
  let hand = run ~comm:(Comm.hand ~nslaves) ~cls ~nslaves in
  let reo = run ~comm:(Comm.reo ~nslaves ()) ~cls ~nslaves in
  hand.residual = reo.residual
