open Preo_support

type result = { norm : float; seconds : float; comm_steps : int }

(* Grid levels: level 0 is the finest, side (n0 >> level) + 1 points per
   axis; all levels live in pre-allocated shared arrays. *)
type level = {
  side : int;  (** number of interior+boundary points per axis *)
  u : float array array;  (** current solution *)
  f : float array array;  (** right-hand side *)
  r : float array array;  (** residual scratch *)
}

let make_level side =
  {
    side;
    u = Array.make_matrix side side 0.0;
    f = Array.make_matrix side side 0.0;
    r = Array.make_matrix side side 0.0;
  }

let rows_of rank nslaves side =
  (* interior rows [1, side-2] split into contiguous blocks *)
  let interior = side - 2 in
  let lo = 1 + (rank * interior / nslaves) in
  let hi = 1 + ((rank + 1) * interior / nslaves) in
  (lo, hi)

let run ~(comm : Comm.t) ~cls ~nslaves =
  let { Workloads.lu_nx; lu_niter; _ } = Workloads.lu cls in
  (* reuse the LU size ladder: finest grid side (power of two + 1) *)
  let rec pow2_le n p = if 2 * p > n then p else pow2_le n (2 * p) in
  let finest = pow2_le (max 16 lu_nx) 16 + 1 in
  let nlevels =
    let rec count side acc = if side <= 5 then acc else count ((side / 2) + 1) (acc + 1) in
    count finest 1
  in
  let levels =
    Array.init nlevels (fun l ->
        let rec side_at l side = if l = 0 then side else side_at (l - 1) ((side / 2) + 1) in
        make_level (side_at l finest))
  in
  (* Deterministic right-hand side on the finest level. *)
  let rng = Rng.create (finest * 7 + nlevels) in
  let fine = levels.(0) in
  for i = 1 to finest - 2 do
    for j = 1 to finest - 2 do
      fine.f.(i).(j) <- Rng.float rng 1.0 -. 0.5
    done
  done;
  let norm = ref 0.0 in
  let t0 = Clock.now () in
  let smooth lvl rank steps =
    (* damped Jacobi with a read phase and a write-back phase separated by
       barriers, so neighbouring blocks never observe half-updated rows and
       both communication variants compute bit-identical grids *)
    let { side; u; f; r } = levels.(lvl) in
    let lo, hi = rows_of rank nslaves side in
    for _ = 1 to steps do
      comm.barrier ~rank;
      for i = lo to hi - 1 do
        for j = 1 to side - 2 do
          r.(i).(j) <-
            (0.8
            *. 0.25
            *. (u.(i - 1).(j) +. u.(i + 1).(j) +. u.(i).(j - 1)
               +. u.(i).(j + 1)
               -. f.(i).(j)))
            +. (0.2 *. u.(i).(j))
        done
      done;
      comm.barrier ~rank;
      for i = lo to hi - 1 do
        for j = 1 to side - 2 do
          u.(i).(j) <- r.(i).(j)
        done
      done
    done;
    comm.barrier ~rank
  in
  let residual lvl rank =
    let { side; u; f; r } = levels.(lvl) in
    let lo, hi = rows_of rank nslaves side in
    for i = lo to hi - 1 do
      for j = 1 to side - 2 do
        r.(i).(j) <-
          f.(i).(j)
          -. (u.(i - 1).(j) +. u.(i + 1).(j) +. u.(i).(j - 1) +. u.(i).(j + 1)
             -. (4.0 *. u.(i).(j)))
      done
    done;
    comm.barrier ~rank
  in
  let restrict lvl rank =
    (* full-weighting from lvl to lvl+1 *)
    let coarse = levels.(lvl + 1) and finel = levels.(lvl) in
    let lo, hi = rows_of rank nslaves coarse.side in
    for i = lo to hi - 1 do
      for j = 1 to coarse.side - 2 do
        let fi = 2 * i and fj = 2 * j in
        if fi < finel.side - 1 && fj < finel.side - 1 then
          coarse.f.(i).(j) <- finel.r.(fi).(fj);
        coarse.u.(i).(j) <- 0.0
      done
    done;
    comm.barrier ~rank
  in
  let prolong lvl rank =
    (* add coarse correction into the fine solution *)
    let coarse = levels.(lvl + 1) and finel = levels.(lvl) in
    let lo, hi = rows_of rank nslaves finel.side in
    for i = lo to hi - 1 do
      for j = 1 to finel.side - 2 do
        let ci = i / 2 and cj = j / 2 in
        if ci < coarse.side && cj < coarse.side then
          finel.u.(i).(j) <- finel.u.(i).(j) +. coarse.u.(ci).(cj)
      done
    done;
    comm.barrier ~rank
  in
  let slave rank =
    for _cycle = 1 to lu_niter do
      (* V-cycle *)
      for lvl = 0 to nlevels - 2 do
        smooth lvl rank 2;
        residual lvl rank;
        restrict lvl rank
      done;
      smooth (nlevels - 1) rank 8;
      for lvl = nlevels - 2 downto 0 do
        prolong lvl rank;
        smooth lvl rank 2
      done;
      (* residual norm on the finest level *)
      residual 0 rank;
      let lo, hi = rows_of rank nslaves fine.side in
      let local = ref 0.0 in
      for i = lo to hi - 1 do
        for j = 1 to fine.side - 2 do
          local := !local +. (fine.r.(i).(j) *. fine.r.(i).(j))
        done
      done;
      let total = comm.allreduce ~rank !local in
      if rank = 0 then norm := sqrt total
    done
  in
  Preo_runtime.Task.run_all ~on:comm.Comm.sched
    (List.init nslaves (fun rank () -> slave rank));
  let seconds = Clock.now () -. t0 in
  (* verification value: final norm plus a solution checksum *)
  let checksum = ref 0.0 in
  for i = 0 to fine.side - 1 do
    for j = 0 to fine.side - 1 do
      checksum := !checksum +. (fine.u.(i).(j) *. float_of_int (((i * 13) + j) mod 31))
    done
  done;
  let comm_steps = comm.comm_steps () in
  comm.finish ();
  { norm = !norm +. !checksum; seconds; comm_steps }

let verify cls ~nslaves =
  let hand = run ~comm:(Comm.hand ~nslaves) ~cls ~nslaves in
  let reo = run ~comm:(Comm.reo ~nslaves ()) ~cls ~nslaves in
  hand.norm = reo.norm
