(* Trace sinks: render the recorded rings as a human-readable dump or as
   Chrome trace-event JSON (the format Perfetto / chrome://tracing load).

   Lane model: every ring (engine, partition bridge, RPC side) is one
   synthetic "thread" of this process, and every OS thread observed in
   port-operation events gets its own task lane. Blocking operations become
   duration ("X") slices from submit to complete, with their park/wake span
   nested inside; everything else is an instant event. *)

let vname v = !Obs.vertex_namer v

(* Synthetic tids for ring lanes, far above any plausible OS thread id. *)
let lane_base = 900_000
let ring_tid r = lane_base + Obs.ring_id r

let dump ?rings () =
  let rings = match rings with Some rs -> rs | None -> Obs.rings () in
  let buf = Buffer.create 4096 in
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "=== %s: %d events (%d dropped)\n" (Obs.ring_label r)
           (Obs.recorded r) (Obs.dropped r));
      let t0 = ref nan in
      List.iter
        (fun (e : Obs.event) ->
          if Float.is_nan !t0 then t0 := e.e_ts;
          let detail =
            match e.e_kind with
            | Obs.Fire ->
              Printf.sprintf "sync=%d%s" e.e_a
                (if e.e_b >= 0 then " at=" ^ vname e.e_b else "")
            | Obs.Submit_send | Obs.Submit_recv | Obs.Park | Obs.Wake
            | Obs.Complete_send | Obs.Complete_recv | Obs.Stall ->
              Printf.sprintf "%s tid=%d" (vname e.e_a) e.e_b
            | Obs.Expansion -> Printf.sprintf "total=%d new=%d" e.e_a e.e_b
            | Obs.Poison -> ""
            | Obs.Slot_put | Obs.Slot_take -> vname e.e_a
            | Obs.Rpc_client_start | Obs.Rpc_client_end | Obs.Rpc_server_start
            | Obs.Rpc_server_end ->
              Printf.sprintf "span=%d corr=%d" e.e_a e.e_b
            | Obs.Wake_targeted ->
              Printf.sprintf "%s parked=%d" (vname e.e_a) e.e_b
            | Obs.Wake_broadcast -> Printf.sprintf "waiters=%d" e.e_a
          in
          Buffer.add_string buf
            (Printf.sprintf "  +%.6f d%d %-14s %s\n" (e.e_ts -. !t0) e.e_dom
               (Obs.kind_name e.e_kind) detail))
        (Obs.events r))
    rings;
  Buffer.contents buf

(* --- Chrome trace-event JSON ------------------------------------------------ *)

type out_event = {
  o_name : string;
  o_cat : string;
  o_ph : string;  (* "X" | "i" | "M" *)
  o_ts : float;  (* microseconds *)
  o_dur : float;  (* microseconds, X only *)
  o_tid : int;
  o_args : (string * string) list;  (* pre-rendered JSON values *)
}

let categories_of_kind = function
  | Obs.Fire | Obs.Expansion | Obs.Poison -> "engine"
  | Obs.Submit_send | Obs.Submit_recv | Obs.Complete_send | Obs.Complete_recv ->
    "port"
  | Obs.Park | Obs.Wake | Obs.Wake_targeted | Obs.Wake_broadcast -> "sched"
  | Obs.Stall -> "stall"
  | Obs.Slot_put | Obs.Slot_take -> "bridge"
  | Obs.Rpc_client_start | Obs.Rpc_client_end | Obs.Rpc_server_start
  | Obs.Rpc_server_end ->
    "rpc"

let chrome ?rings () =
  let rings = match rings with Some rs -> rs | None -> Obs.rings () in
  let pid = Unix.getpid () in
  (* Epoch of the whole trace, so timestamps are small and lanes align. *)
  let t0 =
    List.fold_left
      (fun acc r ->
        match Obs.events r with
        | [] -> acc
        | e :: _ -> Float.min acc e.Obs.e_ts)
      infinity rings
  in
  let t0 = if t0 = infinity then 0.0 else t0 in
  let us t = (t -. t0) *. 1e6 in
  let out = ref [] in
  let push e = out := e :: !out in
  (* tid -> recording domain (-1 when only inferred from leftovers), so the
     lane metadata can say which domain a task thread lived in. *)
  let task_lanes = Hashtbl.create 16 in
  let task_lane ?dom tid =
    match dom with
    | Some d -> Hashtbl.replace task_lanes tid d
    | None -> if not (Hashtbl.mem task_lanes tid) then Hashtbl.add task_lanes tid (-1)
  in
  List.iter
    (fun r ->
      let lane = ring_tid r in
      push
        {
          o_name = "thread_name";
          o_cat = "__metadata";
          o_ph = "M";
          o_ts = 0.0;
          o_dur = 0.0;
          o_tid = lane;
          o_args = [ ("name", Printf.sprintf "\"%s\"" (Json.escape (Obs.ring_label r))) ];
        };
      (* Pending submit / park / rpc-start events awaiting their partner. *)
      let pending_op : (int * int * bool, float) Hashtbl.t = Hashtbl.create 16 in
      let pending_park : (int, float) Hashtbl.t = Hashtbl.create 16 in
      let pending_rpc : (int, float * string) Hashtbl.t = Hashtbl.create 16 in
      (* Per-lane clamp so exported instants are non-decreasing even if the
         system clock stepped mid-trace. *)
      let last = ref neg_infinity in
      let mono t =
        let t = Float.max t !last in
        last := t;
        t
      in
      (* Domain of the event currently being rendered (events are walked in
         order, so instants and slices pick it up without re-plumbing). *)
      let cur_dom = ref 0 in
      let dom_arg () = ("dom", string_of_int !cur_dom) in
      let instant ?(tid = lane) ?(args = []) name kind ts =
        push
          {
            o_name = name;
            o_cat = categories_of_kind kind;
            o_ph = "i";
            o_ts = us ts;
            o_dur = 0.0;
            o_tid = tid;
            o_args = ("s", "\"t\"") :: dom_arg () :: args;
          }
      in
      List.iter
        (fun (e : Obs.event) ->
          let ts = mono e.e_ts in
          cur_dom := e.e_dom;
          match e.e_kind with
          | Obs.Fire ->
            instant
              (if e.e_b >= 0 then "fire " ^ vname e.e_b else "fire")
              Obs.Fire ts
              ~args:[ ("sync", string_of_int e.e_a) ]
          | Obs.Expansion ->
            instant "expansion" Obs.Expansion ts
              ~args:
                [ ("total", string_of_int e.e_a); ("new", string_of_int e.e_b) ]
          | Obs.Poison -> instant "poison" Obs.Poison ts
          | Obs.Wake_targeted ->
            instant
              ("wake " ^ vname e.e_a)
              Obs.Wake_targeted ts
              ~args:[ ("parked", string_of_int e.e_b) ]
          | Obs.Wake_broadcast ->
            instant "wake-broadcast" Obs.Wake_broadcast ts
              ~args:[ ("waiters", string_of_int e.e_a) ]
          | Obs.Slot_put -> instant ("put " ^ vname e.e_a) Obs.Slot_put ts
          | Obs.Slot_take -> instant ("take " ^ vname e.e_a) Obs.Slot_take ts
          | Obs.Submit_send ->
            Hashtbl.replace pending_op (e.e_b, e.e_a, true) ts
          | Obs.Submit_recv ->
            Hashtbl.replace pending_op (e.e_b, e.e_a, false) ts
          | Obs.Park -> Hashtbl.replace pending_park e.e_b ts
          | Obs.Wake -> begin
            task_lane ~dom:e.e_dom e.e_b;
            match Hashtbl.find_opt pending_park e.e_b with
            | None -> instant ~tid:e.e_b "wake" Obs.Wake ts
            | Some start ->
              Hashtbl.remove pending_park e.e_b;
              push
                {
                  o_name = "park";
                  o_cat = "sched";
                  o_ph = "X";
                  o_ts = us start;
                  o_dur = Float.max 0.01 (us ts -. us start);
                  o_tid = e.e_b;
                  o_args = [ dom_arg () ];
                }
          end
          | Obs.Complete_send | Obs.Complete_recv ->
            let is_send = e.e_kind = Obs.Complete_send in
            let opname = if is_send then "send" else "recv" in
            task_lane ~dom:e.e_dom e.e_b;
            (match Hashtbl.find_opt pending_op (e.e_b, e.e_a, is_send) with
             | None ->
               instant ~tid:e.e_b
                 (opname ^ " " ^ vname e.e_a)
                 e.e_kind ts
             | Some start ->
               Hashtbl.remove pending_op (e.e_b, e.e_a, is_send);
               push
                 {
                   o_name = opname ^ " " ^ vname e.e_a;
                   o_cat = "port";
                   o_ph = "X";
                   o_ts = us start;
                   o_dur = Float.max 0.01 (us ts -. us start);
                   o_tid = e.e_b;
                   o_args =
                     [
                       ("vertex", Printf.sprintf "\"%s\"" (Json.escape (vname e.e_a)));
                       dom_arg ();
                     ];
                 })
          | Obs.Stall ->
            task_lane ~dom:e.e_dom e.e_b;
            instant ~tid:e.e_b ("stall " ^ vname e.e_a) Obs.Stall ts
          | Obs.Rpc_client_start | Obs.Rpc_server_start ->
            let side =
              if e.e_kind = Obs.Rpc_client_start then "rpc-client" else "rpc-server"
            in
            Hashtbl.replace pending_rpc e.e_a (ts, side)
          | Obs.Rpc_client_end | Obs.Rpc_server_end -> begin
            let corr_args =
              [ ("span", string_of_int e.e_a); ("corr", string_of_int e.e_b) ]
            in
            match Hashtbl.find_opt pending_rpc e.e_a with
            | None -> instant "rpc" e.e_kind ts ~args:corr_args
            | Some (start, side) ->
              Hashtbl.remove pending_rpc e.e_a;
              push
                {
                  o_name = side;
                  o_cat = "rpc";
                  o_ph = "X";
                  o_ts = us start;
                  o_dur = Float.max 0.01 (us ts -. us start);
                  o_tid = lane;
                  o_args = corr_args;
                }
          end)
        (Obs.events r);
      (* Whatever is still pending at export time (blocked ops, in-flight
         RPCs) surfaces as instants so nothing silently disappears. *)
      Hashtbl.iter
        (fun (tid, v, is_send) start ->
          task_lane tid;
          instant ~tid
            ((if is_send then "blocked send " else "blocked recv ") ^ vname v)
            (if is_send then Obs.Submit_send else Obs.Submit_recv)
            start)
        pending_op;
      Hashtbl.iter
        (fun span (start, side) ->
          instant (side ^ " (in flight)") Obs.Rpc_client_start start
            ~args:[ ("span", string_of_int span) ])
        pending_rpc)
    rings;
  Hashtbl.iter
    (fun tid dom ->
      let label =
        if dom >= 0 then Printf.sprintf "task-%d@d%d" tid dom
        else Printf.sprintf "task-%d" tid
      in
      push
        {
          o_name = "thread_name";
          o_cat = "__metadata";
          o_ph = "M";
          o_ts = 0.0;
          o_dur = 0.0;
          o_tid = tid;
          o_args = [ ("name", Printf.sprintf "\"%s\"" label) ];
        })
    task_lanes;
  let buf = Buffer.create 16384 in
  Buffer.add_string buf "{\"traceEvents\": [";
  List.iteri
    (fun i e ->
      let args =
        match e.o_args with
        | [] -> ""
        | kvs ->
          Printf.sprintf ", \"args\": {%s}"
            (String.concat ", "
               (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %s" k v) kvs))
      in
      let dur =
        if e.o_ph = "X" then Printf.sprintf ", \"dur\": %.3f" e.o_dur else ""
      in
      Buffer.add_string buf
        (Printf.sprintf
           "%s\n {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"%s\", \"ts\": \
            %.3f%s, \"pid\": %d, \"tid\": %d%s}"
           (if i = 0 then "" else ",")
           (Json.escape e.o_name) e.o_cat e.o_ph e.o_ts dur pid e.o_tid args))
    (List.rev !out);
  Buffer.add_string buf
    (Printf.sprintf
       "\n], \"displayTimeUnit\": \"ms\", \"otherData\": {\"pid\": \"%d\", \
        \"correlation\": \"%d\"}}\n"
       pid (Obs.correlation ()));
  Buffer.contents buf
