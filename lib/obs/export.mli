(** Trace sinks over the recorded {!Obs} rings.

    Both exporters default to every registered ring; pass [?rings] to narrow
    (e.g. one engine's ring). *)

val dump : ?rings:Obs.ring list -> unit -> string
(** Human-readable per-ring listing, timestamps relative to each ring's first
    event. *)

val chrome : ?rings:Obs.ring list -> unit -> string
(** Chrome trace-event JSON (loadable in Perfetto / [chrome://tracing]).
    One "thread" lane per ring plus one per observed task thread; blocking
    port operations and RPCs become duration slices, everything else
    instants. Timestamps are microseconds relative to the earliest recorded
    event and non-decreasing within each ring lane. *)
