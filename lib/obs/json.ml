(* Minimal JSON reader/writer support for the exporters and their tests.
   No external dependency: the container only guarantees the OCaml
   toolchain, and the exporters need escaping plus a validating parser for
   `preoc trace` smoke checks — not a full JSON library. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

exception Parse_error of string

let parse_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("bad literal, wanted " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else begin
             (match s.[!pos] with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'n' -> Buffer.add_char buf '\n'
              | 'r' -> Buffer.add_char buf '\r'
              | 't' -> Buffer.add_char buf '\t'
              | 'b' -> Buffer.add_char buf '\b'
              | 'f' -> Buffer.add_char buf '\012'
              | 'u' ->
                if !pos + 4 >= n then fail "truncated \\u escape";
                let hex = String.sub s (!pos + 1) 4 in
                (match int_of_string_opt ("0x" ^ hex) with
                 | None -> fail "bad \\u escape"
                 | Some code ->
                   (* non-ASCII code points round-trip as '?' — the traces
                      we emit are ASCII-only *)
                   Buffer.add_char buf
                     (if code < 128 then Char.chr code else '?'));
                pos := !pos + 4
              | _ -> fail "bad escape");
             advance ()
           end);
          go ()
        | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elems (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Arr (elems [])
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse s =
  match parse_exn s with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function Arr xs -> xs | _ -> []
let to_float = function Num f -> Some f | _ -> None
let to_string = function Str s -> Some s | _ -> None
