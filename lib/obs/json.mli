(** Minimal dependency-free JSON support: escaping for the exporters, a
    validating parser for trace smoke tests ([preoc trace --check] and the
    obs test suite). Not a general-purpose JSON library: numbers are floats,
    non-ASCII escapes degrade to ['?']. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val escape : string -> string
(** Body of a JSON string literal (no surrounding quotes). *)

exception Parse_error of string

val parse : string -> (t, string) result
val parse_exn : string -> t

(** Accessors (total, returning [None]/[[]] on shape mismatch): *)

val member : string -> t -> t option
val to_list : t -> t list
val to_float : t -> float option
val to_string : t -> string option
