(* Metrics registry: named counters and latency/size histograms, serialized
   as JSON and as Prometheus text exposition format. Recording is guarded by
   the same [Obs.tracing] flag as event tracing at the call sites, so a
   non-traced run pays nothing here either. *)

type counter = { c_name : string; c_help : string; c_value : int Atomic.t }

type histogram = {
  h_name : string;
  h_help : string;
  h_bounds : float array;  (** upper bucket bounds, ascending; +inf implicit *)
  h_counts : int array;  (** length = bounds + 1 (overflow bucket) *)
  h_lock : Mutex.t;
  mutable h_sum : float;
  mutable h_count : int;
}

let registry_lock = Mutex.create ()
let counters : counter list ref = ref []
let histograms : histogram list ref = ref []

let counter ?(help = "") name =
  Mutex.lock registry_lock;
  let c =
    match List.find_opt (fun c -> c.c_name = name) !counters with
    | Some c -> c
    | None ->
      let c = { c_name = name; c_help = help; c_value = Atomic.make 0 } in
      counters := c :: !counters;
      c
  in
  Mutex.unlock registry_lock;
  c

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c.c_value by)
let counter_value c = Atomic.get c.c_value

(* Power-of-two seconds buckets from 1µs to ~8s: wide enough for a port-op
   wait on a loaded box, fine enough to separate spin from park. *)
let seconds_buckets =
  Array.init 24 (fun i -> 1e-6 *. float_of_int (1 lsl i))

let size_buckets = Array.init 12 (fun i -> float_of_int (1 lsl i))

let histogram ?(help = "") ?buckets name =
  let bounds = match buckets with Some b -> b | None -> seconds_buckets in
  Mutex.lock registry_lock;
  let h =
    match List.find_opt (fun h -> h.h_name = name) !histograms with
    | Some h -> h
    | None ->
      let h =
        {
          h_name = name;
          h_help = help;
          h_bounds = bounds;
          h_counts = Array.make (Array.length bounds + 1) 0;
          h_lock = Mutex.create ();
          h_sum = 0.0;
          h_count = 0;
        }
      in
      histograms := h :: !histograms;
      h
  in
  Mutex.unlock registry_lock;
  h

let observe h x =
  let nb = Array.length h.h_bounds in
  let rec bucket i = if i >= nb || x <= h.h_bounds.(i) then i else bucket (i + 1) in
  let i = bucket 0 in
  Mutex.lock h.h_lock;
  h.h_counts.(i) <- h.h_counts.(i) + 1;
  h.h_sum <- h.h_sum +. x;
  h.h_count <- h.h_count + 1;
  Mutex.unlock h.h_lock

let histogram_count h = h.h_count

let snapshot () =
  Mutex.lock registry_lock;
  let cs = List.rev !counters and hs = List.rev !histograms in
  Mutex.unlock registry_lock;
  (cs, hs)

let reset () =
  let cs, hs = snapshot () in
  List.iter (fun c -> Atomic.set c.c_value 0) cs;
  List.iter
    (fun h ->
      Mutex.lock h.h_lock;
      Array.fill h.h_counts 0 (Array.length h.h_counts) 0;
      h.h_sum <- 0.0;
      h.h_count <- 0;
      Mutex.unlock h.h_lock)
    hs

(* Bucket bounds print like Prometheus' own default bounds: shortest float
   representation that round-trips for powers of two. *)
let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let to_json () =
  let cs, hs = snapshot () in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"counters\": {";
  List.iteri
    (fun i c ->
      Buffer.add_string buf
        (Printf.sprintf "%s\n    \"%s\": %d"
           (if i = 0 then "" else ",")
           (Json.escape c.c_name) (counter_value c)))
    cs;
  Buffer.add_string buf "\n  },\n  \"histograms\": {";
  List.iteri
    (fun i h ->
      Mutex.lock h.h_lock;
      let counts = Array.copy h.h_counts in
      let sum = h.h_sum and count = h.h_count in
      Mutex.unlock h.h_lock;
      Buffer.add_string buf
        (Printf.sprintf "%s\n    \"%s\": {\"count\": %d, \"sum\": %.9f, \"buckets\": ["
           (if i = 0 then "" else ",")
           (Json.escape h.h_name) count sum);
      Array.iteri
        (fun j c ->
          let le =
            if j < Array.length h.h_bounds then float_str h.h_bounds.(j)
            else "+Inf"
          in
          Buffer.add_string buf
            (Printf.sprintf "%s{\"le\": \"%s\", \"count\": %d}"
               (if j = 0 then "" else ", ")
               le c))
        counts;
      Buffer.add_string buf "]}")
    hs;
  Buffer.add_string buf "\n  }\n}\n";
  Buffer.contents buf

let to_prometheus () =
  let cs, hs = snapshot () in
  let buf = Buffer.create 1024 in
  List.iter
    (fun c ->
      if c.c_help <> "" then
        Buffer.add_string buf (Printf.sprintf "# HELP preo_%s %s\n" c.c_name c.c_help);
      Buffer.add_string buf (Printf.sprintf "# TYPE preo_%s counter\n" c.c_name);
      Buffer.add_string buf (Printf.sprintf "preo_%s %d\n" c.c_name (counter_value c)))
    cs;
  List.iter
    (fun h ->
      Mutex.lock h.h_lock;
      let counts = Array.copy h.h_counts in
      let sum = h.h_sum and count = h.h_count in
      Mutex.unlock h.h_lock;
      if h.h_help <> "" then
        Buffer.add_string buf (Printf.sprintf "# HELP preo_%s %s\n" h.h_name h.h_help);
      Buffer.add_string buf (Printf.sprintf "# TYPE preo_%s histogram\n" h.h_name);
      let cumulative = ref 0 in
      Array.iteri
        (fun j c ->
          cumulative := !cumulative + c;
          let le =
            if j < Array.length h.h_bounds then float_str h.h_bounds.(j)
            else "+Inf"
          in
          Buffer.add_string buf
            (Printf.sprintf "preo_%s_bucket{le=\"%s\"} %d\n" h.h_name le !cumulative))
        counts;
      Buffer.add_string buf (Printf.sprintf "preo_%s_sum %.9f\n" h.h_name sum);
      Buffer.add_string buf (Printf.sprintf "preo_%s_count %d\n" h.h_name count))
    hs;
  Buffer.contents buf
