(** Metrics registry: named counters and histograms with JSON and Prometheus
    text serialization.

    Handles are find-or-create by name, so modules can declare them lazily
    without coordinating. Recording sites guard with [!Obs.tracing] — a
    non-traced run never touches the registry. *)

type counter
type histogram

val counter : ?help:string -> string -> counter
val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

val histogram : ?help:string -> ?buckets:float array -> string -> histogram
(** [buckets] are ascending upper bounds (an overflow bucket is implicit).
    Default: {!seconds_buckets}. *)

val seconds_buckets : float array
(** Powers of two from 1µs to ~8s — latency measurements. *)

val size_buckets : float array
(** Powers of two from 1 to 2048 — e.g. firing-batch sizes. *)

val observe : histogram -> float -> unit
val histogram_count : histogram -> int

val to_json : unit -> string
val to_prometheus : unit -> string
(** Prometheus text exposition format, metric names prefixed [preo_]. *)

val reset : unit -> unit
(** Zero all values (handles stay registered and valid). *)
