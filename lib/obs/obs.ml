open Preo_support

(* Structured tracing core: fixed-size rings of binary events.

   Design constraints, in order:
   - with tracing off, instrumented code pays exactly one [!tracing] branch
     on the hot path and nothing else — no ring exists, no closure runs;
   - with tracing on, recording an event is four array stores and one
     timestamp read, no allocation, so enabling tracing perturbs the
     schedule being observed as little as possible;
   - rings never grow: a connector left tracing for hours keeps the most
     recent [cap] events per lane and counts the rest as dropped.

   An event is (timestamp, kind, a, b). The meaning of [a]/[b] depends on
   the kind (see {!kind}); vertex identifiers are resolved to names only at
   export time through [vertex_namer], so the recording side never touches
   strings. *)

let truthy = function
  | "" | "0" | "false" | "off" -> false
  | _ -> true

let tracing =
  ref (match Sys.getenv_opt "PREO_TRACE" with
       | Some s -> truthy s
       | None -> false)

let set_tracing b = tracing := b

type kind =
  | Fire  (** transition fired; [a] = |sync|, [b] = least sync vertex or -1 *)
  | Submit_send  (** blocking send registered; [a] = vertex, [b] = thread id *)
  | Submit_recv
  | Park  (** operation parked on the engine condition; [a] = vertex, [b] = tid *)
  | Wake
  | Complete_send  (** blocking op completed; [a] = vertex, [b] = tid *)
  | Complete_recv
  | Expansion  (** JIT state expansion; [a] = total expansions, [b] = delta *)
  | Stall  (** watchdog trip or deadline expiry; [a] = vertex, [b] = tid *)
  | Poison  (** engine poisoned *)
  | Slot_put  (** partition bridge slot filled; [a] = tail vertex *)
  | Slot_take  (** partition bridge slot drained; [a] = head vertex *)
  | Rpc_client_start  (** bridge RPC issued; [a] = span id, [b] = correlation *)
  | Rpc_client_end
  | Rpc_server_start  (** traced bridge RPC received; [a] = span, [b] = corr *)
  | Rpc_server_end
  | Wake_targeted  (** waker signalled one vertex; [a] = vertex, [b] = parked *)
  | Wake_broadcast  (** waker woke every waiter; [a] = waiter count *)

let kinds =
  [| Fire; Submit_send; Submit_recv; Park; Wake; Complete_send; Complete_recv;
     Expansion; Stall; Poison; Slot_put; Slot_take; Rpc_client_start;
     Rpc_client_end; Rpc_server_start; Rpc_server_end; Wake_targeted;
     Wake_broadcast |]

let kind_index = function
  | Fire -> 0 | Submit_send -> 1 | Submit_recv -> 2 | Park -> 3 | Wake -> 4
  | Complete_send -> 5 | Complete_recv -> 6 | Expansion -> 7 | Stall -> 8
  | Poison -> 9 | Slot_put -> 10 | Slot_take -> 11 | Rpc_client_start -> 12
  | Rpc_client_end -> 13 | Rpc_server_start -> 14 | Rpc_server_end -> 15
  | Wake_targeted -> 16 | Wake_broadcast -> 17

let kind_name = function
  | Fire -> "fire" | Submit_send -> "submit-send" | Submit_recv -> "submit-recv"
  | Park -> "park" | Wake -> "wake" | Complete_send -> "complete-send"
  | Complete_recv -> "complete-recv" | Expansion -> "expansion"
  | Stall -> "stall" | Poison -> "poison" | Slot_put -> "slot-put"
  | Slot_take -> "slot-take" | Rpc_client_start -> "rpc-client-start"
  | Rpc_client_end -> "rpc-client-end" | Rpc_server_start -> "rpc-server-start"
  | Rpc_server_end -> "rpc-server-end" | Wake_targeted -> "wake-targeted"
  | Wake_broadcast -> "wake-broadcast"

(* Resolved by the runtime at module-init time (Vertex lives above this
   library in the dependency order). *)
let vertex_namer : (int -> string) ref = ref (fun v -> "v" ^ string_of_int v)
let set_vertex_namer f = vertex_namer := f

type ring = {
  id : int;
  name : string;
  lock : Mutex.t option;
      (* engine rings are written under the owning engine's lock and need
         none; rings shared between threads (bridge slots, RPC lanes)
         carry their own *)
  cap : int;
  ts : float array;
  ev : int array;
  ra : int array;
  rb : int array;
  rd : int array;  (* recording domain id, for cross-domain attribution *)
  mutable total : int;  (** events ever written; index = total mod cap *)
}

type event = {
  e_ts : float;
  e_kind : kind;
  e_a : int;
  e_b : int;
  e_dom : int;  (** domain that recorded the event *)
}

let default_cap =
  match Sys.getenv_opt "PREO_TRACE_CAP" with
  | Some s -> (match int_of_string_opt s with Some n when n >= 16 -> n | _ -> 65536)
  | None -> 65536

let registry : ring list ref = ref []
let registry_lock = Mutex.create ()
let next_ring_id = ref 0

let create_ring ?(locked = false) ?cap name =
  let cap = match cap with Some c when c >= 16 -> c | _ -> default_cap in
  Mutex.lock registry_lock;
  let id = !next_ring_id in
  incr next_ring_id;
  let r =
    {
      id;
      name;
      lock = (if locked then Some (Mutex.create ()) else None);
      cap;
      ts = Array.make cap 0.0;
      ev = Array.make cap 0;
      ra = Array.make cap 0;
      rb = Array.make cap 0;
      rd = Array.make cap 0;
      total = 0;
    }
  in
  registry := r :: !registry;
  Mutex.unlock registry_lock;
  r

(* Single-writer discipline: an unlocked (engine) ring is only ever written
   by the thread holding the owning engine's mutex — whichever domain that
   thread lives in — so writes are serialized and [rd] records which domain
   each event came from. Locked rings serialize on their own mutex. *)
let emit_unlocked r kind ~a ~b =
  let i = r.total mod r.cap in
  r.ts.(i) <- Clock.now ();
  r.ev.(i) <- kind_index kind;
  r.ra.(i) <- a;
  r.rb.(i) <- b;
  r.rd.(i) <- (Domain.self () :> int);
  r.total <- r.total + 1

let emit r kind ~a ~b =
  match r.lock with
  | None -> emit_unlocked r kind ~a ~b
  | Some m ->
    Mutex.lock m;
    emit_unlocked r kind ~a ~b;
    Mutex.unlock m

let ring_name r = r.name
let ring_id r = r.id
let ring_label r = Printf.sprintf "%s#%d" r.name r.id
let recorded r = r.total
let dropped r = if r.total > r.cap then r.total - r.cap else 0

let events r =
  let snap () =
    let n = min r.total r.cap in
    let first = r.total - n in
    List.init n (fun k ->
        let i = (first + k) mod r.cap in
        {
          e_ts = r.ts.(i);
          e_kind = kinds.(r.ev.(i));
          e_a = r.ra.(i);
          e_b = r.rb.(i);
          e_dom = r.rd.(i);
        })
  in
  match r.lock with
  | None -> snap ()
  | Some m ->
    Mutex.lock m;
    let es = snap () in
    Mutex.unlock m;
    es

let rings () =
  Mutex.lock registry_lock;
  let rs = List.rev !registry in
  Mutex.unlock registry_lock;
  rs

let reset () =
  Mutex.lock registry_lock;
  registry := [];
  Mutex.unlock registry_lock

(* --- Cross-process span correlation ---------------------------------------- *)

(* One correlation ID per trace session. The first process to open a traced
   bridge RPC stamps its correlation into the frame; serving sides record
   the received ID verbatim, so the Chrome exports of all participating
   processes can be merged on it. *)

let correlation_state = ref 0

let correlation () =
  if !correlation_state <> 0 then !correlation_state
  else begin
    Mutex.lock registry_lock;
    if !correlation_state = 0 then begin
      let seeded =
        match Sys.getenv_opt "PREO_TRACE_CORR" with
        | Some s -> (match int_of_string_opt s with Some n when n > 0 -> n | _ -> 0)
        | None -> 0
      in
      let id =
        if seeded <> 0 then seeded
        else
          (* pid in the high bits, microsecond clock in the low bits: unique
             enough across the handful of processes sharing one trace *)
          let t = int_of_float (Unix.gettimeofday () *. 1e6) in
          (((Unix.getpid () land 0x3FFFFF) lsl 40) lxor t) land max_int
      in
      correlation_state := if id = 0 then 1 else id
    end;
    Mutex.unlock registry_lock;
    !correlation_state
  end

let set_correlation id = correlation_state := id

let span_counter = Atomic.make 0
let next_span () = Atomic.fetch_and_add span_counter 1 + 1
