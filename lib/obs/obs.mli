(** Structured tracing core: per-lane fixed-size rings of binary events.

    The runtime records transition firings, port-operation lifecycles, JIT
    expansions, stalls, poisonings, partition-bridge slot traffic and bridge
    RPCs into rings registered here — but only while {!tracing} is set, so
    the firing fast path pays a single branch when tracing is off. Exporters
    ({!Export}) turn the rings into human-readable dumps or Chrome
    trace-event JSON; {!Metrics} aggregates counters and latency histograms
    alongside.

    Enable via {!set_tracing} (facade: [Preo.set_tracing]) or the
    [PREO_TRACE] environment variable. Ring capacity (events per lane,
    default 65536, oldest overwritten) comes from [PREO_TRACE_CAP]. *)

val tracing : bool ref
(** The single runtime flag. Instrumented code guards every recording with
    [if !Obs.tracing then ...]; read it directly, never through a closure. *)

val set_tracing : bool -> unit

(** {1 Events} *)

type kind =
  | Fire  (** transition fired; [a] = |sync|, [b] = least sync vertex or -1 *)
  | Submit_send  (** blocking send registered; [a] = vertex, [b] = thread id *)
  | Submit_recv
  | Park  (** operation parked on the engine condition; [a] = vertex, [b] = tid *)
  | Wake
  | Complete_send  (** blocking op completed; [a] = vertex, [b] = tid *)
  | Complete_recv
  | Expansion  (** JIT state expansion; [a] = total expansions, [b] = delta *)
  | Stall  (** watchdog trip or deadline expiry; [a] = vertex, [b] = tid *)
  | Poison  (** engine poisoned *)
  | Slot_put  (** partition bridge slot filled; [a] = tail vertex *)
  | Slot_take  (** partition bridge slot drained; [a] = head vertex *)
  | Rpc_client_start  (** bridge RPC issued; [a] = span id, [b] = correlation *)
  | Rpc_client_end
  | Rpc_server_start  (** traced bridge RPC received; [a] = span, [b] = corr *)
  | Rpc_server_end
  | Wake_targeted
      (** waker-side: signalled the waiters parked on one vertex;
          [a] = vertex, [b] = number of parked operations *)
  | Wake_broadcast
      (** waker-side: fallback woke every waiter of the engine (poison,
          kick-round cap, shutdown); [a] = waiter count *)

val kind_name : kind -> string

type ring
type event = {
  e_ts : float;
  e_kind : kind;
  e_a : int;
  e_b : int;
  e_dom : int;  (** id of the domain that recorded the event *)
}

val create_ring : ?locked:bool -> ?cap:int -> string -> ring
(** Register a new lane. [locked] (default false) adds an internal mutex —
    required when multiple threads emit without an external lock (engine
    rings are written under the engine lock and skip it). *)

val emit : ring -> kind -> a:int -> b:int -> unit
(** Record one event, stamped with {!Preo_support.Clock.now}. Constant-time,
    allocation-free; overwrites the oldest event when the ring is full.
    Callers are expected to guard with [if !Obs.tracing]. *)

val events : ring -> event list
(** Snapshot, oldest first (at most the ring capacity). *)

val rings : unit -> ring list
(** All registered rings, in creation order. *)

val ring_name : ring -> string
val ring_id : ring -> int

val ring_label : ring -> string
(** ["name#id"] — unique across rings with colliding names. *)

val recorded : ring -> int
(** Events ever emitted (including overwritten ones). *)

val dropped : ring -> int
(** Events lost to ring overwrite. *)

val reset : unit -> unit
(** Unregister all rings (for tests and benchmarks). Handles already held
    by engines keep accepting events but no longer appear in exports. *)

val vertex_namer : (int -> string) ref
(** How exporters render vertex identifiers; the runtime installs a
    [Vertex.name]-based resolver at init. *)

val set_vertex_namer : (int -> string) -> unit

(** {1 Cross-process span correlation} *)

val correlation : unit -> int
(** This process's trace correlation ID: from [PREO_TRACE_CORR], else
    generated once from pid and clock. Carried inside traced bridge-RPC
    frames so exports from bridged processes merge on a shared ID. *)

val set_correlation : int -> unit

val next_span : unit -> int
(** Fresh span ID for one bridge RPC (unique within this process). *)
