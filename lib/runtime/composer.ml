open Preo_support
open Preo_automata
module Coloring = Preo_coloring.Coloring

type xtrans = {
  sync : Iset.t;
  needs_send : Iset.t;
  needs_recv : Iset.t;
  constr : Constr.t;
  mutable cmd : cmd_state;
      (* solved eagerly under label optimization, lazily (once, on first
         firing attempt) otherwise *)
  target : target;
}

and cmd_state =
  | C_unsolved
  | C_solved of Command.t
  | C_compiled of Command.t * Command.compiled
      (* solved and lowered into closed closures; the engine fires the
         compiled form and never revisits the guard/move trees *)
  | C_unsat

and target =
  | T_aot of int
  | T_jit of int array
  | T_color of (int * int) array
      (* participating (medium slot, local target) pairs only — cacheable
         across resolutions because the round key pins the participants'
         source states, and non-participants are untouched by commit *)

exception Expansion_budget of string

(* A per-state index bucketing transitions by their least needed boundary
   vertex, so only transitions that could be enabled by the pending
   operations are examined. *)
type state_index = {
  si_silent : xtrans array;
  si_by_least : (Vertex.t, xtrans list) Hashtbl.t;
}

(* Per-state candidate memo: the firing loop recomputes the pending-filtered
   candidate array for the same state over and over. The memo key is the
   pending set *restricted to the boundary vertices this state's transitions
   actually test* ([relevant]) — pending operations on other vertices cannot
   change the filter result, so collapsing them makes the key nearly
   constant under load and the memo a short move-nothing assoc list. *)
type expanded = {
  all : xtrans array;
  index : state_index option;
  relevant : Iset.t;
  mutable cand_memo : (Iset.t * xtrans array) list;
}

module Tuple_key = struct
  type t = int array

  let equal (a : t) (b : t) =
    let n = Array.length a in
    n = Array.length b
    &&
    let rec go i = i >= n || (a.(i) = b.(i) && go (i + 1)) in
    go 0

  let hash (a : t) = Array.fold_left (fun acc x -> (acc * 31) + x + 1) 7 a
end

module Cache = Lru.Make (Tuple_key)

type jit_state = {
  mutable mediums : Automaton.t array;
  cache : expanded Cache.t;
  mutable jit_current : int array;
  mutable jit_owners : (int, int list) Hashtbl.t option;
      (* vertex -> indices of mediums whose automaton mentions it, built
         lazily from [mediums] and dropped on splice; lets the expansion
         closure pull the next medium by scanning the fired vertices
         instead of all k mediums *)
  expansion_budget : int;
  true_synchronous : bool;
  (* Atomic for the same reason as the engine counters: bumped under the
     owning engine's lock, read lock-free by [Connector.stats], possibly
     from another domain. *)
  nexpansions : int Atomic.t;
  ncache_hits : int Atomic.t;
}

type aot_state = { states : expanded array; mutable aot_current : int }

module Round_key = struct
  type t = string

  let equal = String.equal
  let hash = Hashtbl.hash
end

module Xcache = Lru.Make (Round_key)

(* Coloring backend: rounds are re-resolved by color propagation on every
   candidate request (per-round cost proportional to graph size), but the
   per-round work that does not depend on the resolution — building the
   xtrans, solving its command — is memoized on the round's canonical key.
   The cached entry is [None] when the round's constraint is structurally
   unsatisfiable under label optimization, so it is rejected once, not
   re-solved per resolution. *)
type color_state = {
  mutable col : Coloring.t;  (* rebuilt by {!splice} *)
  mutable col_current : int array;
  col_max_rounds : int;
  col_budget : int;  (* propagation-iteration budget per resolution *)
  xcache : xtrans option Xcache.t;
  mutable col_rot : int;
      (* seed-rotation cursor: resolutions start their seed scan at a
         different medium each time, so rounds beyond the per-resolution
         cap are not starved *)
  mutable col_version : int;  (* bumped on commit/splice: memo validity *)
  mutable col_memo : (int * Iset.t * xtrans array) option;
      (* single-slot candidates memo keyed on (version, pending): the
         firing loop re-asks for the same state's candidates repeatedly *)
  ncolor_rounds : int Atomic.t;
  ncolor_iters : int Atomic.t;
}

type strategy = S_aot of aot_state | S_jit of jit_state | S_color of color_state

let cand_memo_capacity = 8

type t = {
  strategy : strategy;
  name : string;  (* connector name, for diagnosable budget errors *)
  mutable srcs : Iset.t;  (* mutable: {!splice} moves the boundary *)
  mutable snks : Iset.t;
  mutable cells : int;  (* splice appends fresh cell slots; never reused *)
  optimize : bool;
  compile : bool;
      (* lower solved commands into closed closures (Command.compile);
         commands with unregistered Datafun names stay interpreted *)
  ncand_hits : int Atomic.t;
  ncand_evictions : int Atomic.t;
  nsolves : int Atomic.t;
      (* runtime (post-expansion) Command.solve calls, i.e. firing-loop
         solver work that label optimization would have precompiled *)
}

(* --- Shared helpers ----------------------------------------------------- *)

let mk_expanded ~index (ts : xtrans array) =
  let relevant =
    Array.fold_left
      (fun acc tr -> Iset.union acc (Iset.union tr.needs_send tr.needs_recv))
      Iset.empty ts
  in
  { all = ts; index; relevant; cand_memo = [] }

let build_index boundary (ts : xtrans array) =
  let silent = ref [] in
  let by_least = Hashtbl.create 8 in
  Array.iter
    (fun tr ->
      let needs = Iset.inter tr.sync boundary in
      if Iset.is_empty needs then silent := tr :: !silent
      else begin
        let key = Iset.min_elt needs in
        let prev = try Hashtbl.find by_least key with Not_found -> [] in
        Hashtbl.replace by_least key (tr :: prev)
      end)
    ts;
  { si_silent = Array.of_list (List.rev !silent); si_by_least = by_least }

let lower ~compile c =
  if compile then
    match Command.compile c with
    | Some k -> C_compiled (c, k)
    | None -> C_solved c (* exotic (late-bound Datafun): stay interpreted *)
  else C_solved c

let make_xtrans ~srcs ~snks ~optimize ~compile ~sync ~constr ~target =
  let cmd =
    if optimize then
      match Command.solve ~readable:srcs ~writable:snks constr with
      | Ok c -> lower ~compile c
      | Error _ -> C_unsat (* structurally unsatisfiable: caller drops it *)
    else C_unsolved
  in
  let keep = (not optimize) || (match cmd with C_unsat -> false | _ -> true) in
  if keep then
    Some
      {
        sync;
        needs_send = Iset.inter sync srcs;
        needs_recv = Iset.inter sync snks;
        constr;
        cmd;
        target;
      }
  else None

(* Densely renumber the cells mentioned by a list of automata. *)
let renumber_cells autos =
  let mapping : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let fresh = ref 0 in
  let remap c =
    match Hashtbl.find_opt mapping c with
    | Some d -> d
    | None ->
      let d = !fresh in
      incr fresh;
      Hashtbl.add mapping c d;
      d
  in
  let autos = List.map (Automaton.map_cells remap) autos in
  (autos, !fresh)

(* --- Ahead-of-time ------------------------------------------------------ *)

let aot ?(name = "connector") ?(use_dispatch = true) ?(optimize_labels = true)
    ?compile (large : Automaton.t) =
  let compile = Config.effective_compile ?requested:compile () in
  let large, cells = match renumber_cells [ large ] with
    | [ a ], n -> (a, n)
    | _ -> assert false
  in
  let srcs = large.sources and snks = large.sinks in
  let boundary = Iset.union srcs snks in
  let states =
    Array.init large.nstates (fun s ->
        let ts =
          Array.to_list large.trans.(s)
          |> List.filter_map (fun (tr : Automaton.trans) ->
                 make_xtrans ~srcs ~snks ~optimize:optimize_labels ~compile
                   ~sync:tr.sync ~constr:tr.constr ~target:(T_aot tr.target))
          |> Array.of_list
        in
        mk_expanded ts
          ~index:(if use_dispatch then Some (build_index boundary ts) else None))
  in
  {
    strategy = S_aot { states; aot_current = large.initial };
    name;
    srcs;
    snks;
    cells;
    optimize = optimize_labels;
    compile;
    ncand_hits = Atomic.make 0;
    ncand_evictions = Atomic.make 0;
    nsolves = Atomic.make 0;
  }

(* --- Just-in-time ------------------------------------------------------- *)

let prepare_mediums ~sources ~sinks mediums =
  (* Hide vertices that occur in exactly one medium and are not boundary:
     they need no cross-medium synchronization. *)
  let boundary = Iset.union sources sinks in
  let count : (Vertex.t, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (a : Automaton.t) ->
      Iset.iter
        (fun v ->
          Hashtbl.replace count v
            (1 + try Hashtbl.find count v with Not_found -> 0))
        a.vertices)
    mediums;
  List.map
    (fun (a : Automaton.t) ->
      let hidden =
        Iset.filter
          (fun v -> (not (Iset.mem v boundary)) && Hashtbl.find count v = 1)
          a.vertices
      in
      Automaton.trim (Automaton.hide hidden a))
    mediums

let jit ?(name = "connector") ?(cache_capacity = 0) ?(optimize_labels = true)
    ?(expansion_budget = 2_000_000) ?(true_synchronous = false) ?compile
    ~sources ~sinks mediums =
  let compile = Config.effective_compile ?requested:compile () in
  let mediums = prepare_mediums ~sources ~sinks mediums in
  let mediums, cells = renumber_cells mediums in
  let mediums = Array.of_list mediums in
  let initial = Array.map (fun (a : Automaton.t) -> a.initial) mediums in
  {
    strategy =
      S_jit
        {
          mediums;
          cache = Cache.create ~capacity:cache_capacity;
          jit_current = initial;
          jit_owners = None;
          expansion_budget;
          true_synchronous;
          nexpansions = Atomic.make 0;
          ncache_hits = Atomic.make 0;
        };
    name;
    srcs = sources;
    snks = sinks;
    cells;
    optimize = optimize_labels;
    compile;
    ncand_hits = Atomic.make 0;
    ncand_evictions = Atomic.make 0;
    nsolves = Atomic.make 0;
  }

(* --- Connector coloring -------------------------------------------------- *)

let coloring ?(name = "connector") ?(cache_capacity = 0)
    ?(optimize_labels = true) ?(expansion_budget = 2_000_000)
    ?(max_rounds = 16) ?compile ~sources ~sinks mediums =
  let compile = Config.effective_compile ?requested:compile () in
  let mediums = prepare_mediums ~sources ~sinks mediums in
  let mediums, cells = renumber_cells mediums in
  let mediums = Array.of_list mediums in
  let initial = Array.map (fun (a : Automaton.t) -> a.initial) mediums in
  {
    strategy =
      S_color
        {
          col = Coloring.make ~sources ~sinks mediums;
          col_current = initial;
          col_max_rounds = max_rounds;
          (* the one budget knob covers both backends: per state expansion
             for the JIT product, per color resolution here *)
          col_budget = expansion_budget;
          xcache = Xcache.create ~capacity:cache_capacity;
          col_rot = 0;
          col_version = 0;
          col_memo = None;
          ncolor_rounds = Atomic.make 0;
          ncolor_iters = Atomic.make 0;
        };
    name;
    srcs = sources;
    snks = sinks;
    cells;
    optimize = optimize_labels;
    compile;
    ncand_hits = Atomic.make 0;
    ncand_evictions = Atomic.make 0;
    nsolves = Atomic.make 0;
  }

(* Expand one product state, interleaving flavour: every global transition is
   the synchronization closure of one seed local transition — mediums are
   pulled in only when a fired vertex belongs to them, so independent local
   transitions stay separate steps. Exponential growth can still arise from
   genuinely synchronized choice (several compatible local options per pulled
   medium); that is the paper's §V-C blow-up, guarded by the budget. *)
let jit_owners_of (js : jit_state) =
  match js.jit_owners with
  | Some o -> o
  | None ->
    let o = Hashtbl.create (4 * Array.length js.mediums) in
    Array.iteri
      (fun j (a : Automaton.t) ->
        Iset.iter
          (fun v ->
            let prev = try Hashtbl.find o v with Not_found -> [] in
            Hashtbl.replace o v (j :: prev))
          a.vertices)
      js.mediums;
    js.jit_owners <- Some o;
    o

let expand_interleaved t (js : jit_state) (state : int array) : expanded =
  let k = Array.length js.mediums in
  let owners = jit_owners_of js in
  let result = ref [] in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let budget = ref js.expansion_budget in
  let spend () =
    decr budget;
    if !budget <= 0 then
      raise
        (Expansion_budget
           (Printf.sprintf
              "state expansion of %s exceeded %d combinations over %d \
               mediums, %d transitions emitted (exponential transition \
               structure)"
              t.name js.expansion_budget k
              (List.length !result)))
  in
  (* selection: medium index -> chosen transition index, or unset *)
  let selection = Array.make k (-1) in
  let emit () =
    let key =
      String.concat ","
        (List.filter_map
           (fun i ->
             if selection.(i) >= 0 then Some (Printf.sprintf "%d:%d" i selection.(i))
             else None)
           (List.init k Fun.id))
    in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      let sync = ref Iset.empty in
      let constr = ref Constr.tt in
      let target = Array.copy state in
      Array.iteri
        (fun j ti ->
          if ti >= 0 then begin
            let tr = js.mediums.(j).trans.(state.(j)).(ti) in
            sync := Iset.union !sync tr.sync;
            constr := Constr.conj tr.constr !constr;
            target.(j) <- tr.target
          end)
        selection;
      match
        make_xtrans ~srcs:t.srcs ~snks:t.snks ~optimize:t.optimize
          ~compile:t.compile ~sync:!sync ~constr:!constr ~target:(T_jit target)
      with
      | Some x -> result := x :: !result
      | None -> ()
    end
  in
  (* Close the current selection: if some unselected medium owns a fired
     vertex, branch over its compatible local transitions. *)
  let rec close fired idled =
    spend ();
    (* minimum-index unselected medium owning a fired vertex — the same
       pull order as scanning all k mediums, but via the vertex->mediums
       index the cost is the fired set, not the connector size *)
    let pulled = ref (-1) in
    Iset.iter
      (fun v ->
        List.iter
          (fun j ->
            if selection.(j) < 0 && (!pulled < 0 || j < !pulled) then
              pulled := j)
          (try Hashtbl.find owners v with Not_found -> []))
      fired;
    if !pulled < 0 then emit ()
    else begin
      let j = !pulled in
      let vj = js.mediums.(j).vertices in
      let need = Iset.inter fired vj in
      Array.iteri
        (fun ti (tr : Automaton.trans) ->
          if Iset.subset need tr.sync && Iset.disjoint tr.sync idled then begin
            selection.(j) <- ti;
            close (Iset.union fired tr.sync)
              (Iset.union idled (Iset.diff vj tr.sync));
            selection.(j) <- -1
          end)
        js.mediums.(j).trans.(state.(j))
    end
  in
  for i = 0 to k - 1 do
    let vi = js.mediums.(i).vertices in
    Array.iteri
      (fun ti (tr : Automaton.trans) ->
        selection.(i) <- ti;
        close tr.sync (Iset.diff vi tr.sync);
        selection.(i) <- -1)
      js.mediums.(i).trans.(state.(i))
  done;
  Atomic.incr js.nexpansions;
  let ts = Array.of_list (List.rev !result) in
  let boundary = Iset.union t.srcs t.snks in
  mk_expanded ts ~index:(Some (build_index boundary ts))

(* Fully synchronous flavour: enumerate all maximal consistent combinations
   of per-medium local transitions (each medium either idles or contributes
   one transition), including joint firings of independent parts. *)
let expand_synchronous t (js : jit_state) (state : int array) : expanded =
  let k = Array.length js.mediums in
  let result = ref [] in
  let budget = ref js.expansion_budget in
  let spend () =
    decr budget;
    if !budget <= 0 then
      raise
        (Expansion_budget
           (Printf.sprintf
              "state expansion of %s exceeded %d combinations over %d \
               mediums, %d transitions emitted (exponential transition \
               structure)"
              t.name js.expansion_budget k
              (List.length !result)))
  in
  (* choices.(i) = None (idle) or Some tr *)
  let choices = Array.make k None in
  let rec go i must_fire must_idle any =
    spend ();
    if i >= k then begin
      if any then begin
        let sync = ref Iset.empty in
        let constr = ref Constr.tt in
        let target = Array.copy state in
        Array.iteri
          (fun j choice ->
            match choice with
            | None -> ()
            | Some (tr : Automaton.trans) ->
              sync := Iset.union !sync tr.sync;
              constr := Constr.conj tr.constr !constr;
              target.(j) <- tr.target)
          choices;
        match
          make_xtrans ~srcs:t.srcs ~snks:t.snks ~optimize:t.optimize
            ~compile:t.compile ~sync:!sync ~constr:!constr
            ~target:(T_jit target)
        with
        | Some x -> result := x :: !result
        | None -> ()
      end
    end
    else begin
      let a = js.mediums.(i) in
      let va = a.vertices in
      (* Option 1: medium i idles. *)
      if Iset.disjoint must_fire va then begin
        choices.(i) <- None;
        go (i + 1) must_fire (Iset.union must_idle va) any
      end;
      (* Option 2: medium i contributes a local transition. *)
      Array.iter
        (fun (tr : Automaton.trans) ->
          if
            Iset.disjoint tr.sync must_idle
            && Iset.subset (Iset.inter must_fire va) tr.sync
          then begin
            choices.(i) <- Some tr;
            go (i + 1) (Iset.union must_fire tr.sync)
              (Iset.union must_idle (Iset.diff va tr.sync))
              true
          end)
        a.trans.(state.(i));
      choices.(i) <- None
    end
  in
  go 0 Iset.empty Iset.empty false;
  Atomic.incr js.nexpansions;
  let ts = Array.of_list (List.rev !result) in
  let boundary = Iset.union t.srcs t.snks in
  mk_expanded ts ~index:(Some (build_index boundary ts))

let expanded_of_current t =
  match t.strategy with
  | S_aot s -> s.states.(s.aot_current)
  | S_color _ ->
    invalid_arg "Composer: coloring strategy has no expanded product state"
  | S_jit js -> begin
    match Cache.find js.cache js.jit_current with
    | Some e ->
      Atomic.incr js.ncache_hits;
      e
    | None ->
      let e =
        if js.true_synchronous then expand_synchronous t js (Array.copy js.jit_current)
        else expand_interleaved t js (Array.copy js.jit_current)
      in
      Cache.add js.cache (Array.copy js.jit_current) e;
      e
  end

let build_candidates e ~pending =
  match e.index with
  | None ->
    Array.of_list
      (List.filter
         (fun tr ->
           Iset.subset tr.needs_send pending && Iset.subset tr.needs_recv pending)
         (Array.to_list e.all))
  | Some idx ->
    let acc = ref (Array.to_list idx.si_silent) in
    Iset.iter
      (fun v ->
        match Hashtbl.find_opt idx.si_by_least v with
        | None -> ()
        | Some entries ->
          List.iter
            (fun tr ->
              if
                Iset.subset tr.needs_send pending
                && Iset.subset tr.needs_recv pending
              then acc := tr :: !acc)
            entries)
      pending;
    Array.of_list !acc

(* Coloring candidates: resolve up to [col_max_rounds] rounds by color
   propagation, then map each round to its memoized xtrans. A single-slot
   memo keyed on (state version, pending) serves the firing loop's repeated
   requests for the same situation without re-propagating. *)
let color_candidates t (cs : color_state) ~pending =
  match cs.col_memo with
  | Some (v, p, arr) when v = cs.col_version && Iset.equal p pending ->
    Atomic.incr t.ncand_hits;
    arr
  | _ ->
    let rounds, iters =
      try
        Coloring.resolve cs.col ~current:cs.col_current ~pending
          ~rot:cs.col_rot ~max_rounds:cs.col_max_rounds ~budget:cs.col_budget
      with Coloring.Propagation_budget msg ->
        raise (Expansion_budget (Printf.sprintf "%s: %s" t.name msg))
    in
    cs.col_rot <- cs.col_rot + 1;
    ignore (Atomic.fetch_and_add cs.ncolor_iters iters);
    ignore (Atomic.fetch_and_add cs.ncolor_rounds (List.length rounds));
    let arr =
      rounds
      |> List.filter_map (fun (r : Coloring.round) ->
             match Xcache.find cs.xcache r.r_key with
             | Some cached -> cached
             | None ->
               let x =
                 make_xtrans ~srcs:t.srcs ~snks:t.snks ~optimize:t.optimize
                   ~compile:t.compile ~sync:r.r_sync ~constr:r.r_constr
                   ~target:(T_color r.r_moves)
               in
               Xcache.add cs.xcache r.r_key x;
               x)
      |> Array.of_list
    in
    cs.col_memo <- Some (cs.col_version, pending, arr);
    arr

let candidates t ~pending =
  match t.strategy with
  | S_color cs -> color_candidates t cs ~pending
  | S_aot _ | S_jit _ ->
  let e = expanded_of_current t in
  let key = Iset.inter pending e.relevant in
  let rec probe = function
    | [] -> None
    | (k, arr) :: _ when Iset.equal k key -> Some arr
    | _ :: rest -> probe rest
  in
  match probe e.cand_memo with
  | Some arr ->
    Atomic.incr t.ncand_hits;
    arr (* shared buffer: callers must not mutate it *)
  | None ->
    (* Filtering with the restricted key is equivalent: every transition's
       needed vertices are contained in [relevant]. *)
    let arr = build_candidates e ~pending:key in
    let memo = (key, arr) :: e.cand_memo in
    let memo =
      if List.length memo > cand_memo_capacity then begin
        Atomic.incr t.ncand_evictions;
        List.filteri (fun i _ -> i < cand_memo_capacity) memo
      end
      else memo
    in
    e.cand_memo <- memo;
    arr

(* The executable command of a transition: precompiled at expansion time
   when label optimization is on, otherwise solved here. [None] means the
   constraint is structurally unsatisfiable (never enabled). *)
let command_of t (x : xtrans) =
  match x.cmd with
  | C_solved c | C_compiled (c, _) -> Some c
  | C_unsat -> None
  | C_unsolved -> begin
    Atomic.incr t.nsolves;
    match Command.solve ~readable:t.srcs ~writable:t.snks x.constr with
    | Ok c ->
      x.cmd <- lower ~compile:t.compile c;
      Some c
    | Error _ ->
      x.cmd <- C_unsat;
      None
  end

(* The compiled form, if lowering succeeded. Meaningful only after
   {!command_of} returned [Some] — until then an unoptimized transition is
   still [C_unsolved]. *)
let compiled_of (x : xtrans) =
  match x.cmd with
  | C_compiled (_, k) -> Some k
  | C_unsolved | C_solved _ | C_unsat -> None

let compiling t = t.compile

(* Does [x] leave the composer in the state it entered? Must be asked
   BEFORE {!commit} — afterwards the current state IS the target, so the
   test degenerates to true for every transition. The engine's batched
   firing relies on this: a self-loop stays among the current state's
   transitions after it commits, so re-firing it needs no fresh candidate
   scan. *)
let is_self_loop t (x : xtrans) =
  match (t.strategy, x.target) with
  | S_aot s, T_aot target -> target = s.aot_current
  | S_jit js, T_jit target -> Tuple_key.equal target js.jit_current
  | S_color cs, T_color moves ->
    Array.for_all (fun (j, s) -> cs.col_current.(j) = s) moves
  | _ -> false

let commit t (x : xtrans) =
  match (t.strategy, x.target) with
  | S_aot s, T_aot target -> s.aot_current <- target
  | S_jit js, T_jit target -> js.jit_current <- target
  | S_color cs, T_color moves ->
    Array.iter (fun (j, s) -> cs.col_current.(j) <- s) moves;
    (* Invalidate the candidates memo even for self-loops: the next
       resolution restarts the seed rotation, keeping round selection fair
       when more rounds are enabled than one resolution returns. *)
    cs.col_version <- cs.col_version + 1
  | _ -> invalid_arg "Composer.commit: transition from a different composer"

let ncells t = t.cells
let sources t = t.srcs
let sinks t = t.snks

(* --- Elastic splice ------------------------------------------------------ *)

exception Not_quiescent of string

let live_mediums t =
  match t.strategy with
  | S_aot _ -> [||]
  | S_jit js -> Array.copy js.mediums
  | S_color cs -> Array.copy (Coloring.mediums cs.col)

let medium_vertices acc (a : Automaton.t) = Iset.union acc a.vertices

(* Replace medium slots of a live JIT composer. [retire] indexes the current
   mediums array; [add] automata arrive raw (un-hidden, un-renumbered) and go
   through the same preparation as at {!jit} time, with occurrence counts
   taken across the surviving mediums so cross-medium vertices stay visible.
   Retired mediums must be quiescent: their current local state must be
   label-bisimilar to their initial state, so that dropping them (and letting
   any replacement start from its own initial state) is invisible at the
   synchronization level. The expansion cache is flushed; the JIT expander
   rediscovers the new product states lazily — no global rebuild. Returns
   the set of vertices that vanished from the connector (retired and no
   longer referenced by any medium or the new boundary). *)
let splice t ~sources ~sinks ~retire ~add =
  match t.strategy with
  | S_aot _ ->
    invalid_arg
      "Composer.splice: only JIT/coloring composers are elastic (AOT \
       composition freezes the product; rebuild instead)"
  | S_jit _ | S_color _ ->
    let mediums, current =
      match t.strategy with
      | S_jit js -> (js.mediums, js.jit_current)
      | S_color cs -> (Coloring.mediums cs.col, cs.col_current)
      | S_aot _ -> assert false
    in
    let k = Array.length mediums in
    List.iter
      (fun i ->
        if i < 0 || i >= k then invalid_arg "Composer.splice: bad medium index")
      retire;
    let retired = Array.make k false in
    List.iter (fun i -> retired.(i) <- true) retire;
    Array.iteri
      (fun i r ->
        if r then begin
          let a = mediums.(i) in
          if not (Automaton.label_bisimilar a current.(i) a.initial) then
            raise
              (Not_quiescent
                 (Printf.sprintf
                    "medium %d (vertices %s) is mid-protocol: local state %d \
                     is not label-bisimilar to its initial state %d — retry \
                     once in-flight exchanges drain"
                    i
                    (String.concat ","
                       (List.map Vertex.name (Iset.elements a.vertices)))
                    current.(i) a.initial))
        end)
      retired;
    let kept = ref [] and kept_cur = ref [] in
    Array.iteri
      (fun i a ->
        if not retired.(i) then begin
          kept := a :: !kept;
          kept_cur := current.(i) :: !kept_cur
        end)
      mediums;
    let kept = List.rev !kept and kept_cur = List.rev !kept_cur in
    (* Prepare the added mediums exactly as [jit] does, but count vertex
       occurrences across kept ∪ added so shared vertices stay visible. *)
    let boundary = Iset.union sources sinks in
    let count : (Vertex.t, int) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun (a : Automaton.t) ->
        Iset.iter
          (fun v ->
            Hashtbl.replace count v
              (1 + try Hashtbl.find count v with Not_found -> 0))
          a.vertices)
      (kept @ add);
    let add_cooked =
      List.map
        (fun (a : Automaton.t) ->
          let hidden =
            Iset.filter
              (fun v -> (not (Iset.mem v boundary)) && Hashtbl.find count v = 1)
              a.vertices
          in
          Automaton.trim (Automaton.hide hidden a))
        add
    in
    (* Fresh cell slots for the added mediums, appended after the existing
       ones; retired mediums' slots are not reclaimed (the engine just
       clears them), so ids stay stable for surviving mediums. *)
    let mapping : (int, int) Hashtbl.t = Hashtbl.create 16 in
    let freshc = ref t.cells in
    let remap c =
      match Hashtbl.find_opt mapping c with
      | Some d -> d
      | None ->
        let d = !freshc in
        incr freshc;
        Hashtbl.add mapping c d;
        d
    in
    let add_cooked = List.map (Automaton.map_cells remap) add_cooked in
    let before =
      Array.fold_left medium_vertices (Iset.union t.srcs t.snks) mediums
    in
    let mediums' = Array.of_list (kept @ add_cooked) in
    let current' =
      Array.of_list
        (kept_cur @ List.map (fun (a : Automaton.t) -> a.initial) add_cooked)
    in
    (match t.strategy with
     | S_jit js ->
       js.mediums <- mediums';
       js.jit_current <- current';
       js.jit_owners <- None;
       Cache.clear js.cache
     | S_color cs ->
       (* The color tables are derived state: rebuild them over the new
          medium array (O(graph), no product exploration involved). *)
       cs.col <- Coloring.make ~sources ~sinks mediums';
       cs.col_current <- current';
       Xcache.clear cs.xcache;
       cs.col_memo <- None;
       cs.col_version <- cs.col_version + 1
     | S_aot _ -> assert false);
    t.srcs <- sources;
    t.snks <- sinks;
    t.cells <- !freshc;
    let after = Array.fold_left medium_vertices boundary mediums' in
    Iset.diff before after

let expansions t =
  match t.strategy with
  | S_aot _ | S_color _ -> 0
  | S_jit js -> Atomic.get js.nexpansions

let cache_hits t =
  match t.strategy with
  | S_aot _ -> 0
  | S_jit js -> Atomic.get js.ncache_hits
  | S_color cs -> Xcache.hits cs.xcache

let cache_evictions t =
  match t.strategy with
  | S_aot _ -> 0
  | S_jit js -> Cache.evictions js.cache
  | S_color cs -> Xcache.evictions cs.xcache

let solver_calls t = Atomic.get t.nsolves
let cand_hits t = Atomic.get t.ncand_hits
let cand_evictions t = Atomic.get t.ncand_evictions

let color_rounds t =
  match t.strategy with
  | S_color cs -> Atomic.get cs.ncolor_rounds
  | S_aot _ | S_jit _ -> 0

let color_iters t =
  match t.strategy with
  | S_color cs -> Atomic.get cs.ncolor_iters
  | S_aot _ | S_jit _ -> 0

let current_out_degree t =
  match t.strategy with
  | S_color cs ->
    (* Rounds enabled assuming every boundary vertex has a pending
       operation, capped at the per-resolution limit (a lower bound on the
       true out-degree — enumerating it exactly is the blow-up this backend
       exists to avoid). Debug-path only. *)
    Array.length (color_candidates t cs ~pending:(Iset.union t.srcs t.snks))
  | S_aot _ | S_jit _ -> Array.length (expanded_of_current t).all
