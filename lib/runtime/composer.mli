(** Composition strategies: how the "medium automata" of a connector become
    the "large automaton" that the runtime walks.

    [aot] receives the large automaton already composed ahead of time (the
    existing compiler's approach, §IV-D "ahead-of-time composition");
    [jit] keeps the medium automata apart and expands the product state
    space lazily, one state at a time, as execution reaches it ("just-in-time
    composition"); [coloring] also keeps them apart but never expands a
    product state at all — each candidate request resolves up to a handful
    of synchronization rounds by flow/no-flow color propagation over the
    connector graph ([Preo_coloring.Coloring]), so per-round cost tracks
    graph size rather than product size. All three present the same
    stateful interface to the engine (the {!Sched.S} contract). *)

open Preo_support
open Preo_automata

type xtrans = {
  sync : Iset.t;
  needs_send : Iset.t;  (** boundary source vertices that must have a pending send *)
  needs_recv : Iset.t;  (** boundary sink vertices that must have a pending receive *)
  constr : Constr.t;
  mutable cmd : cmd_state;
      (** solved at expansion time under label optimization, otherwise
          memoized by {!command_of} on the first firing attempt *)
  target : target;
}

and cmd_state =
  | C_unsolved
  | C_solved of Command.t
  | C_compiled of Command.t * Command.compiled
      (** solved and lowered into closed closures ([Command.compile]); the
          engine fires the compiled form without walking guard/move trees *)
  | C_unsat

and target =
  | T_aot of int
  | T_jit of int array
  | T_color of (int * int) array
      (** participating (medium slot, local target state) pairs *)

type t

exception Expansion_budget of string
(** Raised when a single JIT state expansion enumerates more than the
    configured number of candidate transition combinations — the blow-up of
    the paper's §V-C finding 3 — or when a coloring resolution exceeds its
    propagation budget. The message names the connector and reports the
    counts reached. *)

val aot :
  ?name:string ->
  ?use_dispatch:bool ->
  ?optimize_labels:bool ->
  ?compile:bool ->
  Automaton.t ->
  t
(** The automaton's [sources]/[sinks] are the connector boundary.
    [use_dispatch] builds the per-state vertex index (the whole-automaton
    optimization); [optimize_labels] pre-solves all commands. Both default
    to [true] (the existing compiler applies both). [compile] lowers solved
    commands into closed closures (default [Config.effective_compile]).
    [name] labels budget errors (default ["connector"]). *)

val jit :
  ?name:string ->
  ?cache_capacity:int ->
  ?optimize_labels:bool ->
  ?expansion_budget:int ->
  ?true_synchronous:bool ->
  ?compile:bool ->
  sources:Iset.t ->
  sinks:Iset.t ->
  Automaton.t list ->
  t
(** [cache_capacity]: bound on memoized expanded states (LRU eviction);
    unbounded by default. [optimize_labels] (default [true]) solves each
    expanded transition's constraint once at expansion time. Vertices
    internal to a single medium and not on the boundary are hidden before
    composition. [true_synchronous] (default [false]) additionally
    enumerates joint firings of independent mediums, as the textbook ×
    does — exponentially many in wide states (the paper's §V-C finding). *)

val coloring :
  ?name:string ->
  ?cache_capacity:int ->
  ?optimize_labels:bool ->
  ?expansion_budget:int ->
  ?max_rounds:int ->
  ?compile:bool ->
  sources:Iset.t ->
  sinks:Iset.t ->
  Automaton.t list ->
  t
(** The connector-coloring backend: mediums get the same preparation as
    {!jit}, but {!candidates} resolves at most [max_rounds] (default 16)
    synchronization rounds per request by color propagation instead of
    expanding the product state — per-round cost proportional to graph
    size. Resolutions rotate their seed scan so enabled rounds beyond the
    cap are not starved. [expansion_budget] bounds propagation iterations
    {e per resolution} (same knob as the JIT expander's per-state budget);
    [cache_capacity] bounds the per-round command cache (LRU; unbounded by
    default). Always interleaving semantics: 2-coloring cannot express the
    textbook synchronous product's joint independent firings (request
    [true_synchronous] via {!jit} instead). *)

val candidates : t -> pending:Iset.t -> xtrans array
(** Transitions leaving the current state whose needed boundary vertices are
    covered by [pending]; silent transitions are always included. Guards are
    not yet checked. The returned array is a shared buffer memoized on the
    expanded state, keyed by [pending] restricted to the vertices the
    state's transitions test — callers must not mutate it. *)

val commit : t -> xtrans -> unit
(** Advance the current state. The transition must come from the latest
    {!candidates} call. *)

val is_self_loop : t -> xtrans -> bool
(** Whether the transition's target is the state it leaves from. Only
    meaningful {e before} {!commit} (afterwards the current state is the
    target by definition). Basis of the engine's batched firing: a
    committed self-loop is still a transition of the current state. *)

val command_of : t -> xtrans -> Command.t option
(** The executable command of a transition: the precompiled one when label
    optimization is on, otherwise solved — once — on the first firing
    attempt and memoized on the transition. [None] means the constraint is
    structurally unsatisfiable (the transition is never enabled). When the
    composer compiles ({!compiling}), the solved command is also lowered
    into closed closures, retrievable via {!compiled_of}. *)

val compiled_of : xtrans -> Command.compiled option
(** The closure-lowered form of the transition's command, when the composer
    compiles and lowering succeeded (all [Datafun] names registered at
    solve time). Only meaningful after {!command_of} returned [Some]; the
    engine fires it in place of the interpreted guard/move walk. *)

val compiling : t -> bool
(** Whether this composer lowers solved commands into closures. *)

val ncells : t -> int
(** Number of (densely renumbered) memory cells; engine memory size. Grows
    when {!splice} adds mediums (fresh slots are appended, retired slots are
    not reclaimed). *)

exception Not_quiescent of string
(** A medium slated for retirement by {!splice} is mid-protocol: its current
    local state is not label-bisimilar to its initial state. Retry once the
    in-flight exchanges drain. *)

val live_mediums : t -> Automaton.t array
(** JIT/coloring: the current (prepared: hidden, cell-renumbered) medium
    automata, in slot order — positionally aligned with the raw medium list
    the caller composed. Empty for AOT. *)

val splice :
  t ->
  sources:Iset.t ->
  sinks:Iset.t ->
  retire:int list ->
  add:Automaton.t list ->
  Iset.t
(** Elastic splice: retire the medium slots at the given indices (current
    slot order, as in {!live_mediums}) and append the [add] automata (raw;
    they get the same hiding/trimming/cell-renumbering as at {!jit} time).
    [sources]/[sinks] become the new connector boundary. The expanded-state
    cache is flushed; the JIT expander discovers the new product states
    lazily — no global rebuild. Surviving mediums keep their current local
    states; added mediums start from their initial states. Returns the set
    of vertices that vanished (belonging only to retired mediums). Raises
    {!Not_quiescent} if a retired medium is mid-protocol (nothing is mutated
    in that case), [Invalid_argument] on AOT composers or bad indices. *)

val sources : t -> Iset.t
val sinks : t -> Iset.t

(** Instrumentation *)

val expansions : t -> int
(** JIT: number of distinct state expansions performed (0 for AOT). *)

val cache_hits : t -> int
(** JIT: how often the current state's expansion was found memoized. *)

val cache_evictions : t -> int

val solver_calls : t -> int
(** Runtime (firing-loop) [Command.solve] calls: solves that label
    optimization did not precompile. *)

val cand_hits : t -> int
(** Hits in the (state, pending-set) candidate cache consulted by
    {!candidates}. *)

val cand_evictions : t -> int

val color_rounds : t -> int
(** Coloring: synchronization rounds resolved by color propagation across
    all resolutions (0 for the automata strategies). *)

val color_iters : t -> int
(** Coloring: total propagation iterations (color-table row trials) — the
    fixed-point work; [color_iters / color_rounds] is the mean propagation
    cost of one round. *)

val current_out_degree : t -> int
(** Out-degree of the current state. Coloring: a lower bound, capped at the
    per-resolution round limit (debug paths only). *)
