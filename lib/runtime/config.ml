type t =
  | Existing of {
      use_dispatch : bool;
      optimize_labels : bool;
      max_states : int;
      max_trans : int;
      max_compile_seconds : float;
      true_synchronous : bool;
    }
  | New of {
      optimize_labels : bool;
      cache_capacity : int;
      expansion_budget : int;
      partition : bool;
      true_synchronous : bool;
    }

let existing =
  Existing
    {
      use_dispatch = true;
      optimize_labels = true;
      max_states = 200_000;
      max_trans = 2_000_000;
      max_compile_seconds = 30.0;
      true_synchronous = false;
    }

let existing_states max_states =
  Existing
    {
      use_dispatch = true;
      optimize_labels = true;
      max_states;
      max_trans = 2_000_000;
      max_compile_seconds = 2.0;
      true_synchronous = false;
    }

let new_jit =
  New
    {
      optimize_labels = true;
      cache_capacity = 0;
      expansion_budget = 2_000_000;
      partition = false;
      true_synchronous = false;
    }

let new_jit_cached cache_capacity =
  New
    {
      optimize_labels = true;
      cache_capacity;
      expansion_budget = 2_000_000;
      partition = false;
      true_synchronous = false;
    }

let new_partitioned =
  New
    {
      optimize_labels = true;
      cache_capacity = 0;
      expansion_budget = 2_000_000;
      partition = true;
      true_synchronous = false;
    }

(* Stall watchdog threshold, in seconds: a blocking port operation that
   waits longer than this gets a stall report recorded against its engine
   (see Engine). [None] disables the watchdog entirely — the default, so
   the firing loop pays nothing. Settable at runtime or via the
   PREO_STALL_THRESHOLD environment variable. *)
let stall_threshold : float option ref =
  ref
    (match Sys.getenv_opt "PREO_STALL_THRESHOLD" with
     | Some s -> float_of_string_opt s
     | None -> None)

(* Domain-count default for connector instantiation. [None] means "size
   from the hardware": [Domain.recommended_domain_count], capped. An
   explicit request (here or per-connector via [?domains]) is honored up
   to the hard cap even beyond the recommended count, so cross-domain
   paths can be exercised deterministically on small machines. Settable
   at runtime or via the PREO_DOMAINS environment variable. *)
let domains : int option ref =
  ref
    (match Sys.getenv_opt "PREO_DOMAINS" with
     | Some s -> int_of_string_opt s
     | None -> None)

(* Compiled transition dispatch. [None] means "default" (on): commands are
   lowered into closed closures at solve time and fired without walking the
   guard/move trees, and the partitioner is allowed to fuse provably
   alternating regions back together. [Some false] forces the interpreted
   path everywhere — the reference semantics, kept green in CI. Settable at
   runtime or via the PREO_COMPILE environment variable. *)
let compile : bool option ref =
  ref
    (match Sys.getenv_opt "PREO_COMPILE" with
     | Some ("0" | "false" | "no" | "off") -> Some false
     | Some _ -> Some true
     | None -> None)

let effective_compile ?requested () =
  match requested with
  | Some c -> c
  | None -> ( match !compile with Some c -> c | None -> true)

let max_domains = 16

let effective_domains ?requested () =
  let d =
    match requested with
    | Some d -> d
    | None ->
      (match !domains with
       | Some d -> d
       | None -> Domain.recommended_domain_count ())
  in
  max 1 (min max_domains d)

let synchronous_of = function
  | Existing e -> Existing { e with true_synchronous = true }
  | New n -> New { n with true_synchronous = true }

let describe = function
  | Existing { use_dispatch; optimize_labels; max_states; true_synchronous; _ } ->
    Printf.sprintf "existing(dispatch=%b,opt=%b,budget=%d%s)" use_dispatch
      optimize_labels max_states
      (if true_synchronous then ",sync" else "")
  | New { optimize_labels; cache_capacity; partition; true_synchronous; _ } ->
    Printf.sprintf "new(opt=%b,cache=%s,partition=%b%s)" optimize_labels
      (if cache_capacity = 0 then "unbounded" else string_of_int cache_capacity)
      partition
      (if true_synchronous then ",sync" else "")
