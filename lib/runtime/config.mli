(** Runtime configuration: which compilation/execution approach drives a
    connector instance. *)

type t =
  | Existing of {
      use_dispatch : bool;  (** whole-automaton dispatch index (opt. [19]) *)
      optimize_labels : bool;  (** command precompilation (opt. [30]) *)
      max_states : int;  (** compile-time state budget; exceeding = compile failure *)
      max_trans : int;  (** compile-time transition budget *)
      max_compile_seconds : float;  (** compile-time CPU budget *)
      true_synchronous : bool;  (** include joint firings of independent parts *)
    }
      (** The existing compiler: full ahead-of-time composition into one
          large automaton. *)
  | New of {
      optimize_labels : bool;  (** solve each expanded transition once *)
      cache_capacity : int;  (** bounded LRU state cache; 0 = unbounded *)
      expansion_budget : int;  (** per-state combination budget before giving up *)
      partition : bool;  (** split at internal fifos into multiple engines (extension) *)
      true_synchronous : bool;  (** include joint firings of independent parts *)
    }
      (** The new parametrized approach: medium automata composed
          just-in-time. *)

val existing : t
(** Defaults: dispatch + label optimization on, 200k-state budget. *)

val existing_states : int -> t

val new_jit : t
(** Defaults: label optimization on, unbounded cache, 2M expansion budget,
    no partitioning. *)

val new_jit_cached : int -> t
val new_partitioned : t

val stall_threshold : float option ref
(** Stall-watchdog threshold in seconds: a blocking port operation waiting
    longer than this has a stall report snapshotted into its engine (see
    [Engine.last_stall]) and counted in [Connector.stats]. [None] (default)
    disables the watchdog; initialized from the [PREO_STALL_THRESHOLD]
    environment variable when set. *)

val domains : int option ref
(** Process-wide default domain count for connector instantiation. [None]
    (default) sizes from [Domain.recommended_domain_count], capped at
    {!max_domains}; an explicit value is honored up to the cap even beyond
    the recommended count. Initialized from the [PREO_DOMAINS] environment
    variable when set. *)

val compile : bool option ref
(** Process-wide default for compiled transition dispatch. [None] (default)
    means on: solved commands are lowered into closed closures
    ([Command.compile]) and the partitioner may fuse provably alternating
    regions. [Some false] forces the interpreted reference path and disables
    region fusion. Initialized from the [PREO_COMPILE] environment variable
    when set ("0"/"false"/"no"/"off" disable, anything else enables). *)

val effective_compile : ?requested:bool -> unit -> bool
(** Resolve the compile switch: [?requested] wins, else [!compile], else
    [true]. *)

val max_domains : int
(** Hard cap on domains per connector (matches [Pool.max_domains]). *)

val effective_domains : ?requested:int -> unit -> int
(** Resolve a domain count: [?requested] wins, else [!domains], else
    [Domain.recommended_domain_count]; always clamped to
    [1..max_domains]. *)

val synchronous_of : t -> t
(** Same configuration with the textbook fully-synchronous product
    (joint independent firings included). *)

val describe : t -> string
