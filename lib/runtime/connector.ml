open Preo_support
open Preo_automata

exception Compile_failure of string
exception Splice_error of string

type t = {
  engines : Engine.t array;
  region_engines : Engine.t option array;
      (* plan-region index -> engine; [None] for regions placed in another
         process (the shard fabric kicks engines through this map) *)
  (* vertex -> owning engine *)
  route : (Vertex.t, Engine.t) Hashtbl.t;
  mutable sources : Vertex.t array;  (* mutable: elastic splices move the boundary *)
  mutable sinks : Vertex.t array;
  compile_seconds : float;
  domains : int;  (* effective domain count this connector was built for *)
  pool : Pool.t option;  (* shared pool when domains > 1 *)
  elastic : bool;  (* JIT composition — the product can be spliced live *)
  slots : Automaton.t list ref array;
      (* per engine: the RAW medium automata, in composer slot order (the
         same positional order Composer.live_mediums reports); updated in
         lockstep with every splice. Callers diff against these by physical
         identity. *)
  bridges : Automaton.t list;
      (* raw mediums the partitioner replaced with cut-queue bridges: part
         of the live connector, but owned by no engine — retiring one needs
         a rebuild, not a splice *)
  nsplices : int Atomic.t;
  splice_lock : Mutex.t;  (* serializes splices (engine locks nest inside) *)
  backend : Sched.backend;  (* the round scheduler this instance runs on *)
  nfused : int;  (* region pairs the sequentializer merged at split time *)
}

let hide_internals ~keep (a : Automaton.t) =
  Automaton.trim (Automaton.hide (Iset.diff a.vertices keep) a)

let create ?(config = Config.new_jit) ?backend ?(name = "connector") ?domains
    ?compile ?local ?cut_gates ~sources ~sinks mediums =
  let eff_domains = Config.effective_domains ?requested:domains () in
  let eff_compile = Config.effective_compile ?requested:compile () in
  let src_set = Iset.of_list (Array.to_list sources) in
  let snk_set = Iset.of_list (Array.to_list sinks) in
  let backend = Sched.effective ?requested:backend () in
  let placed = local <> None in
  let t0 = Clock.now () in
  let engines, region_engines, routes, slots, bridges, elastic, backend, nfused
      =
    match config with
    | Config.Existing
        {
          use_dispatch;
          optimize_labels;
          max_states;
          max_trans;
          max_compile_seconds;
          true_synchronous;
        } ->
      (* The ahead-of-time product IS the automata backend: a coloring
         request does not apply to [Config.Existing] (there is no per-round
         resolution to replace — the whole point of that config is the
         precomposed large automaton). *)
      let large =
        try
          Product.all ~label:name ~max_states ~max_trans
            ~max_seconds:max_compile_seconds
            ~joint_independent:true_synchronous mediums
        with
        | Product.Budget_exceeded msg -> raise (Compile_failure msg)
        | Stack_overflow -> raise (Compile_failure "stack overflow during composition")
      in
      let large = hide_internals ~keep:(Iset.union src_set snk_set) large in
      (* Force boundary polarity from the declared signature. *)
      let large = { large with sources = src_set; sinks = snk_set } in
      let comp =
        Composer.aot ~name ~use_dispatch ~optimize_labels ~compile:eff_compile
          large
      in
      let e = Engine.create ~name:"engine0" comp in
      ( [| e |],
        [| Some e |],
        [ (Iset.union src_set snk_set, e) ],
        [| ref [] |],
        [],
        false,
        Sched.Automata,
        0 )
    | Config.New
        {
          optimize_labels;
          cache_capacity;
          expansion_budget;
          partition;
          true_synchronous;
        } ->
      (* Coloring implements interleaving semantics only: 2 colors cannot
         express the textbook synchronous product's joint independent
         firings, so [true_synchronous] stays on the JIT expander. *)
      let backend =
        if true_synchronous then Sched.Automata else backend
      in
      let mk_composer ~sources ~sinks mediums =
        match backend with
        | Sched.Coloring ->
          Composer.coloring ~name ~cache_capacity ~optimize_labels
            ~expansion_budget ~compile:eff_compile ~sources ~sinks mediums
        | Sched.Automata ->
          Composer.jit ~name ~cache_capacity ~optimize_labels
            ~expansion_budget ~true_synchronous ~compile:eff_compile ~sources
            ~sinks mediums
      in
      if not partition then begin
        let comp = mk_composer ~sources:src_set ~sinks:snk_set mediums in
        let e = Engine.create ~name:"engine0" comp in
        ( [| e |],
          [| Some e |],
          [ (Iset.union src_set snk_set, e) ],
          [| ref mediums |],
          [],
          true,
          backend,
          0 )
      end
      else begin
        let plan =
          Partition.split ~domains:eff_domains ~sequentialize:eff_compile
            ?gate_for:cut_gates ~sources:src_set ~sinks:snk_set mediums
        in
        (* Placement: [?local] elects the subset of plan regions this
           process runs (the shard fabric gives each worker its share; the
           default runs everything). Non-local regions get no engine and no
           composer — the other process pays for those — and peer edges
           into them are dropped: cross-process kicks travel through the
           shard channels' gates instead. *)
        let is_local = match local with Some f -> f | None -> fun _ -> true in
        let region_engines =
          Array.mapi
            (fun i (r : Partition.region) ->
              if not (is_local i) then None
              else
                let comp =
                  mk_composer ~sources:r.r_sources ~sinks:r.r_sinks r.mediums
                in
                Some
                  (Engine.create ~gates:r.gates
                     ~name:(Printf.sprintf "engine%d" i)
                     comp))
            plan.regions
        in
        let engines =
          Array.of_list
            (List.filter_map Fun.id (Array.to_list region_engines))
        in
        Array.iteri
          (fun i (r : Partition.region) ->
            match region_engines.(i) with
            | None -> ()
            | Some e ->
              Engine.set_peers e
                (List.filter_map (fun j -> region_engines.(j)) r.bridge_peers);
              Engine.set_gate_peers e
                (List.filter_map
                   (fun (v, j) ->
                     Option.map (fun pe -> (v, pe)) region_engines.(j))
                   r.gate_peers))
          plan.regions;
        (* Settle: initially-full cut fifos make some regions enabled at
           construction with nothing to kick them (a gate commit kicks the
           peer, but the initial queue contents were placed by the planner,
           not by a commit). Drive every engine until the whole network is
           quiescent; tasks attach afterwards. *)
        let rec settle () =
          if Array.fold_left (fun acc e -> Engine.try_step e || acc) false engines
          then settle ()
        in
        settle ();
        let routes =
          List.filter_map Fun.id
            (Array.to_list
               (Array.mapi
                  (fun i (r : Partition.region) ->
                    Option.map
                      (fun e -> (Iset.union r.r_sources r.r_sinks, e))
                      region_engines.(i))
                  plan.regions))
        in
        let slots =
          Array.of_list
            (List.filter_map Fun.id
               (Array.to_list
                  (Array.mapi
                     (fun i (r : Partition.region) ->
                       if region_engines.(i) = None then None
                       else Some (ref r.mediums))
                     plan.regions)))
        in
        (* Mediums the planner replaced with bridges live in no region. *)
        let bridges =
          List.filter
            (fun a ->
              not
                (Array.exists (fun (r : Partition.region) -> List.memq a r.mediums)
                   plan.regions))
            mediums
        in
        ( engines,
          region_engines,
          routes,
          slots,
          bridges,
          (not placed),
          backend,
          plan.nfused )
      end
  in
  let route = Hashtbl.create 32 in
  List.iter
    (fun (vs, e) ->
      Iset.iter
        (fun v -> if not (Hashtbl.mem route v) then Hashtbl.add route v e)
        vs)
    routes;
  {
    engines;
    region_engines;
    route;
    sources;
    sinks;
    compile_seconds = Clock.now () -. t0;
    domains = eff_domains;
    pool =
      (* The pool is shared process-wide and never shut down here: tasks
         spawned on it may outlive the connector. *)
      (if eff_domains > 1 then Some (Pool.default ~domains:eff_domains ())
       else None);
    elastic;
    slots;
    bridges;
    nsplices = Atomic.make 0;
    splice_lock = Mutex.create ();
    backend;
    nfused;
  }

let backend t = t.backend

let engine_of t v =
  match Hashtbl.find_opt t.route v with
  | Some e -> e
  | None ->
    invalid_arg
      (Printf.sprintf "Connector: vertex %s is not on the boundary"
         (Vertex.name v))

let outport t v = Port.make_out (engine_of t v) v
let inport t v = Port.make_in (engine_of t v) v
let outports t = Array.map (outport t) t.sources
let inports t = Array.map (inport t) t.sinks
let has_port t v = Hashtbl.mem t.route v

let engine_for_region t i =
  if i < 0 || i >= Array.length t.region_engines then None
  else t.region_engines.(i)

let plan_regions t = Array.length t.region_engines

(* --- Elastic splicing --------------------------------------------------------
   Rewiring a live connector for one task slot: retire the slot's medium
   automata, add replacements, move the boundary — all against the running
   product, no global rebuild. The connector tracks its raw mediums per
   engine in composer slot order, so callers (Preo.grow/shrink) can diff a
   fresh template instantiation against the live set and hand the delta
   here by physical identity. *)

let live_mediums t =
  List.concat (Array.to_list (Array.map ( ! ) t.slots)) @ t.bridges

let splices t = Atomic.get t.nsplices

(* Engine index owning raw medium [a], by physical identity. *)
let owner_of t a =
  let n = Array.length t.slots in
  let rec go i =
    if i >= n then None
    else if List.memq a !(t.slots.(i)) then Some i
    else go (i + 1)
  in
  go 0

(* All vertices an engine currently touches: its composer boundary plus its
   mediums' alphabets (splice anchoring and cross-region validation). *)
let engine_vertices t i =
  let comp = Engine.composer t.engines.(i) in
  List.fold_left
    (fun acc (a : Automaton.t) -> Iset.union acc a.vertices)
    (Iset.union (Composer.sources comp) (Composer.sinks comp))
    !(t.slots.(i))

let array_mem v arr = Array.exists (Vertex.equal v) arr

let splice t ~add ~retire ~add_sources ~add_sinks ~retire_vertices =
  if not t.elastic then
    raise
      (Splice_error
         "connector is not elastic: ahead-of-time composition (Config.Existing) \
          freezes the product — rebuild with Config.New to splice live");
  Mutex.lock t.splice_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.splice_lock) @@ fun () ->
  (* Locate the retired mediums; they must all live on one engine. *)
  List.iter
    (fun a ->
      if List.memq a t.bridges then
        raise
          (Splice_error
             "cannot retire a partition-bridge medium: a cut queue owns it \
              (splice-vs-rebuild boundary; rebuild the connector instead)"))
    retire;
  let anchor =
    match
      List.fold_left
        (fun acc a ->
          match (owner_of t a, acc) with
          | None, _ ->
            raise
              (Splice_error
                 "retired medium is not part of this connector (already \
                  retired, or from another instantiation)")
          | Some i, None -> Some i
          | Some i, Some j when i = j -> acc
          | Some _, Some _ ->
            raise
              (Splice_error
                 "splice spans partition regions: the retired mediums live on \
                  different engines (rebuild instead)"))
        None retire
    with
    | Some i -> i
    | None ->
      if Array.length t.engines = 1 then 0
      else begin
        (* Pure attach on a partitioned connector: anchor to the engine
           already owning the added mediums' shared vertices. *)
        let shared =
          List.fold_left
            (fun acc (a : Automaton.t) -> Iset.union acc a.vertices)
            Iset.empty add
        in
        let candidates =
          List.filter
            (fun i -> not (Iset.disjoint shared (engine_vertices t i)))
            (List.init (Array.length t.engines) Fun.id)
        in
        match candidates with
        | [ i ] -> i
        | [] ->
          raise
            (Splice_error
               "cannot anchor the splice: added mediums share no vertex with \
                any region")
        | _ ->
          raise
            (Splice_error
               "splice spans partition regions: added mediums touch several \
                engines (rebuild instead)")
      end
  in
  (* Cross-region safety: the added mediums must not touch other engines'
     vertices or bridge alphabets. *)
  if Array.length t.engines > 1 then begin
    let foreign = ref Iset.empty in
    Array.iteri
      (fun i _ ->
        if i <> anchor then foreign := Iset.union !foreign (engine_vertices t i))
      t.engines;
    List.iter
      (fun (a : Automaton.t) ->
        foreign := Iset.union !foreign a.vertices)
      t.bridges;
    List.iter
      (fun (a : Automaton.t) ->
        if not (Iset.disjoint a.vertices !foreign) then
          raise
            (Splice_error
               "added medium touches a vertex owned by another region or a \
                partition bridge (splice-vs-rebuild boundary)"))
      add
  end;
  let engine = t.engines.(anchor) in
  Array.iter
    (fun v ->
      match Hashtbl.find_opt t.route v with
      | Some e when e == engine -> ()
      | Some _ ->
        raise
          (Splice_error
             "retired boundary vertex belongs to a different region than the \
              retired mediums")
      | None ->
        raise
          (Splice_error
             (Printf.sprintf "retired vertex %s is not on the boundary"
                (Vertex.name v))))
    retire_vertices;
  (* The anchor engine's new boundary. *)
  let comp = Engine.composer engine in
  let retired_set = Iset.of_list (Array.to_list retire_vertices) in
  let e_sources =
    Array.fold_left
      (fun acc v -> Iset.add v acc)
      (Iset.diff (Composer.sources comp) retired_set)
      add_sources
  in
  let e_sinks =
    Array.fold_left
      (fun acc v -> Iset.add v acc)
      (Iset.diff (Composer.sinks comp) retired_set)
      add_sinks
  in
  (* Slot indices of the retired mediums in composer order. *)
  let slot_list = !(t.slots.(anchor)) in
  let retire_idx =
    List.map
      (fun a ->
        let rec go i = function
          | [] -> assert false (* owner_of found it above *)
          | x :: _ when x == a -> i
          | _ :: rest -> go (i + 1) rest
        in
        go 0 slot_list)
      retire
  in
  (* The engine validates quiescence before mutating anything, so a
     [Composer.Not_quiescent] here leaves connector bookkeeping untouched. *)
  Engine.splice engine ~sources:e_sources ~sinks:e_sinks ~retire:retire_idx
    ~add;
  t.slots.(anchor) :=
    List.filter (fun a -> not (List.memq a retire)) slot_list @ add;
  Array.iter (fun v -> Hashtbl.remove t.route v) retire_vertices;
  Array.iter
    (fun v -> if not (Hashtbl.mem t.route v) then Hashtbl.add t.route v engine)
    add_sources;
  Array.iter
    (fun v -> if not (Hashtbl.mem t.route v) then Hashtbl.add t.route v engine)
    add_sinks;
  t.sources <-
    Array.append
      (Array.of_list
         (List.filter
            (fun v -> not (array_mem v retire_vertices))
            (Array.to_list t.sources)))
      add_sources;
  t.sinks <-
    Array.append
      (Array.of_list
         (List.filter
            (fun v -> not (array_mem v retire_vertices))
            (Array.to_list t.sinks)))
      add_sinks;
  Atomic.incr t.nsplices

let attach t ?(retire = []) ~sources ~sinks add =
  splice t ~add ~retire ~add_sources:sources ~add_sinks:sinks
    ~retire_vertices:[||]

let detach t ?(add = []) ?(retire = []) ~vertices () =
  splice t ~add ~retire ~add_sources:[||] ~add_sinks:[||]
    ~retire_vertices:vertices

let steps t = Array.fold_left (fun acc e -> acc + Engine.steps e) 0 t.engines
let compile_seconds t = t.compile_seconds
let engines t = Array.to_list t.engines
let nregions t = Array.length t.engines
let regions_fused t = t.nfused
let domains t = t.domains
let pool t = t.pool

(* Where this connector's tasks should run: on the shared pool when it was
   built for more than one domain, inline threads otherwise. *)
let sched t =
  match t.pool with Some p -> Task.Domains p | None -> Task.Threads

let expansions t =
  Array.fold_left
    (fun acc e -> acc + Composer.expansions (Engine.composer e))
    0 t.engines

let cache_evictions t =
  Array.fold_left
    (fun acc e -> acc + Composer.cache_evictions (Engine.composer e))
    0 t.engines

(* [stall] (defaulting to the engines' most recent stall report, if any)
   is rendered into the poison message, so every task released by the
   shutdown — including those blocked on other regions, via cross-region
   poison propagation — sees the diagnosis in its [Poisoned] payload. *)
let poison ?stall t msg =
  let stall =
    match stall with
    | Some _ -> stall
    | None ->
      Array.fold_left
        (fun acc e -> match acc with Some _ -> acc | None -> Engine.last_stall e)
        None t.engines
  in
  let msg =
    match stall with
    | Some r when msg <> "shutdown" ->
      msg ^ "\n" ^ Engine.string_of_stall_report r
    | _ -> msg
  in
  Array.iter (fun e -> Engine.poison e msg) t.engines

let close t = poison t "shutdown"

let last_stall t =
  Array.fold_left
    (fun acc e ->
      match (acc, Engine.last_stall e) with
      | None, r -> r
      | Some (a : Engine.stall_report), Some b ->
        Some (if b.sr_waited > a.sr_waited then b else a)
      | acc, None -> acc)
    None t.engines

let failure t =
  Array.fold_left
    (fun acc e ->
      match acc with
      | Some _ -> acc
      | None -> begin
        match Engine.poisoned_reason e with
        | Some msg when msg <> "shutdown" -> Some msg
        | _ -> None
      end)
    None t.engines

type stats = {
  st_steps : int;
  st_regions : int;
  st_expansions : int;
  st_cache_hits : int;
  st_cache_evictions : int;
  st_compile_seconds : float;
  st_solver_calls : int;
  st_cond_waits : int;
  st_peer_kicks : int;
  st_cand_hits : int;
  st_stalls : int;
  st_wakes_targeted : int;
  st_wakes_spurious : int;
  st_wakes_broadcast : int;
  st_mpsc_ops : int;
  st_mpsc_batches : int;
  st_mpsc_fast : int;
  st_batch_fires : int;
  st_domains : int;
  st_splices : int;
  st_color_rounds : int;
  st_color_iters : int;
  st_compiled_fires : int;
  st_interp_fires : int;
  st_regions_fused : int;
  st_shard_batches : int;
  st_shard_items : int;
  st_shard_acks : int;
  st_shard_reconnects : int;
      (** the four [st_shard_*] fields are process-wide (every shard link in
          the process, see {!Shard_stats}); in-process connectors report 0 *)
}

let sum_engines t f = Array.fold_left (fun acc e -> acc + f e) 0 t.engines

let stats t =
  {
    st_steps = steps t;
    st_regions = nregions t;
    st_expansions = expansions t;
    st_cache_hits = sum_engines t (fun e -> Composer.cache_hits (Engine.composer e));
    st_cache_evictions = cache_evictions t;
    st_compile_seconds = compile_seconds t;
    st_solver_calls =
      sum_engines t (fun e -> Composer.solver_calls (Engine.composer e));
    st_cond_waits = sum_engines t Engine.cond_waits;
    st_peer_kicks = sum_engines t Engine.peer_kicks;
    st_cand_hits = sum_engines t (fun e -> Composer.cand_hits (Engine.composer e));
    st_stalls = sum_engines t Engine.stalls;
    st_wakes_targeted = sum_engines t Engine.wakes_targeted;
    st_wakes_spurious = sum_engines t Engine.wakes_spurious;
    st_wakes_broadcast = sum_engines t Engine.wakes_broadcast;
    st_mpsc_ops = sum_engines t Engine.mpsc_ops;
    st_mpsc_batches = sum_engines t Engine.mpsc_batches;
    st_mpsc_fast = sum_engines t Engine.mpsc_fast;
    st_batch_fires = sum_engines t Engine.batch_fires;
    st_domains = t.domains;
    st_splices = Atomic.get t.nsplices;
    st_color_rounds =
      sum_engines t (fun e -> Composer.color_rounds (Engine.composer e));
    st_color_iters =
      sum_engines t (fun e -> Composer.color_iters (Engine.composer e));
    st_compiled_fires = sum_engines t Engine.compiled_fires;
    st_interp_fires = sum_engines t Engine.interp_fires;
    st_regions_fused = t.nfused;
    st_shard_batches = Atomic.get Shard_stats.batches;
    st_shard_items = Atomic.get Shard_stats.items;
    st_shard_acks = Atomic.get Shard_stats.acks;
    st_shard_reconnects = Atomic.get Shard_stats.reconnects;
  }

(* Exports cover every lane registered in the process — this connector's
   engines (whose rings are forced into existence so each appears even if it
   recorded nothing yet) plus shared lanes such as partition bridges and
   bridge RPCs. *)
let dump_trace t =
  Array.iter (fun e -> ignore (Engine.obs_ring e)) t.engines;
  Preo_obs.Export.dump ()

let chrome_trace t =
  Array.iter (fun e -> ignore (Engine.obs_ring e)) t.engines;
  Preo_obs.Export.chrome ()

let pp_stats ppf s =
  Format.fprintf ppf
    "steps=%d regions=%d domains=%d expansions=%d cache-hits=%d evictions=%d \
     compile=%.3fs solves=%d waits=%d kicks=%d cand-hits=%d stalls=%d \
     wakes=%d/%d/%d mpsc=%d/%d fast=%d batch-fires=%d splices=%d \
     color-rounds=%d color-iters=%d compiled-fires=%d interp-fires=%d \
     fused=%d shard=%d/%d/%d/%d"
    s.st_steps s.st_regions s.st_domains s.st_expansions s.st_cache_hits
    s.st_cache_evictions s.st_compile_seconds s.st_solver_calls s.st_cond_waits
    s.st_peer_kicks s.st_cand_hits s.st_stalls s.st_wakes_targeted
    s.st_wakes_spurious s.st_wakes_broadcast s.st_mpsc_ops s.st_mpsc_batches
    s.st_mpsc_fast s.st_batch_fires s.st_splices s.st_color_rounds
    s.st_color_iters s.st_compiled_fires s.st_interp_fires s.st_regions_fused
    s.st_shard_batches s.st_shard_items s.st_shard_acks s.st_shard_reconnects
