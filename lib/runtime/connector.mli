(** Connector instances: medium automata + a boundary, compiled into running
    engines according to a {!Config.t}, exposing task-facing ports (the
    [Connector.connect] of the paper's Fig. 3). *)

open Preo_automata

exception Compile_failure of string
(** The existing approach exceeded its ahead-of-time composition budget
    (Fig. 12's "existing approach fails" cells). *)

exception Splice_error of string
(** An elastic splice was rejected structurally: the connector is not
    elastic (AOT composition), a retired medium is unknown or owned by a
    partition bridge, or the delta spans several partition regions. Distinct
    from {!Composer.Not_quiescent}, which is transient (retry once traffic
    drains) — a [Splice_error] will not succeed on retry. *)

type t

val create :
  ?config:Config.t ->
  ?backend:Sched.backend ->
  ?name:string ->
  ?domains:int ->
  ?compile:bool ->
  ?local:(int -> bool) ->
  ?cut_gates:
    (int ->
    Partition.cut_shape ->
    tail_region:int ->
    head_region:int ->
    (Engine.gate * Engine.gate) option) ->
  sources:Vertex.t array ->
  sinks:Vertex.t array ->
  Automaton.t list ->
  t
(** [create ~sources ~sinks mediums] compiles and starts a connector whose
    boundary vertices are [sources] (tasks send there) and [sinks] (tasks
    receive there). Default config: {!Config.new_jit}.

    [?backend] selects the round scheduler for JIT-composed configs
    (resolution follows {!Sched.effective}: explicit argument, else
    [Sched.backend] / [PREO_BACKEND], else {!Sched.Automata}).
    {!Sched.Coloring} resolves each synchronization round by color
    propagation over the connector graph instead of expanding product
    states — per-round cost proportional to graph size. The request is
    ignored (automata used) for [Config.Existing] (the ahead-of-time
    product {e is} the automata backend) and for configs with
    [true_synchronous] set (2-coloring cannot express joint independent
    firings). [?name] labels compile/expansion budget errors and stall
    diagnostics with the connector's name (default ["connector"]).

    [?domains] is the parallelism target: it feeds the partitioner (relay
    fan-out/fan-in cuts are only made when > 1) and selects the task
    scheduling policy ({!sched}). Resolution follows
    {!Config.effective_domains}: an explicit argument wins, else the
    process-wide [Config.domains] / [PREO_DOMAINS], else
    [Domain.recommended_domain_count], clamped to [Config.max_domains].

    [?compile] controls compiled transition dispatch and region
    sequentialization together (resolution follows
    {!Config.effective_compile}: explicit argument, else [Config.compile] /
    [PREO_COMPILE], else on): solved commands are lowered into closed
    closures fired without interpretation, and the partitioner fuses region
    pairs whose cross-cut traffic is provably strictly alternating.
    [false] gives the interpreted, unfused reference semantics.

    [?local] and [?cut_gates] are the shard fabric's placement hooks (only
    meaningful for partitioned configs). [local i] elects whether plan
    region [i] runs in this process: non-local regions get no engine — the
    process that owns them pays their composition and drive cost — and peer
    edges into them are dropped. [cut_gates] is forwarded to
    {!Partition.split} as [gate_for], substituting bridge-backed gates at
    cross-process cuts. A placed connector ([?local] given) is not elastic.
    Ports of non-local boundary vertices do not exist here: {!outport} /
    {!inport} raise [Invalid_argument] for them (probe with {!has_port}). *)

val backend : t -> Sched.backend
(** The backend this connector actually runs on (after the resolution and
    downgrade rules above). *)

val outport : t -> Vertex.t -> Port.outport
val inport : t -> Vertex.t -> Port.inport
val outports : t -> Port.outport array
(** In [sources] order. *)

val inports : t -> Port.inport array

val has_port : t -> Vertex.t -> bool
(** Whether this boundary vertex is routed to a local engine (always true
    for unplaced connectors; on a placed one, false for vertices whose
    region runs in another process). *)

val engine_for_region : t -> int -> Engine.t option
(** The engine running plan region [i], if local. For unpartitioned
    connectors region 0 is the single engine. The shard fabric uses this to
    kick the engine owning a channel's gate when wire traffic flips the
    gate's readiness. *)

val plan_regions : t -> int
(** Total regions in the partition plan, local or not ({!nregions} counts
    only local engines). *)

(** {1 Elastic splicing}

    Run-time task join/leave: rewire a {e live} connector for one task slot
    without a global rebuild. Only JIT-composed connectors (the default
    {!Config.new_jit} and partitioned {!Config.new_partitioned}) are
    elastic. On partitioned connectors the whole delta must fall inside one
    region and away from cut bridges; anything wider raises {!Splice_error}
    (the splice-vs-rebuild boundary). Retired mediums must be quiescent —
    {!Composer.Not_quiescent} is transient: retry once in-flight exchanges
    drain. Pending operations of retired boundary vertices fail individually
    with [Engine.Poisoned] (targeted poison); the rest of the connector
    keeps running throughout. *)

val live_mediums : t -> Automaton.t list
(** The raw medium automata currently composing this connector, including
    any the partitioner turned into bridges. Callers diff fresh template
    instantiations against this list by physical identity. *)

val splice :
  t ->
  add:Automaton.t list ->
  retire:Automaton.t list ->
  add_sources:Vertex.t array ->
  add_sinks:Vertex.t array ->
  retire_vertices:Vertex.t array ->
  unit
(** Core rewiring primitive. [retire] members must be physically identical
    ([==]) to elements of {!live_mediums}; [add] automata arrive raw.
    [add_sources]/[add_sinks] join the boundary; [retire_vertices] leave it
    (their pending ops get targeted poison). Serialized per connector. *)

val attach :
  t ->
  ?retire:Automaton.t list ->
  sources:Vertex.t array ->
  sinks:Vertex.t array ->
  Automaton.t list ->
  unit
(** [attach t ~sources ~sinks mediums]: a task joins — register its fresh
    boundary vertices and splice in its medium automata. [?retire] drops
    mediums the new wiring replaces (e.g. a ring-closing fifo that moves). *)

val detach :
  t ->
  ?add:Automaton.t list ->
  ?retire:Automaton.t list ->
  vertices:Vertex.t array ->
  unit ->
  unit
(** [detach t ~retire ~vertices ()]: a task leaves — retire its mediums,
    withdraw its boundary [vertices] (only {e its} pending ops are poisoned),
    [?add] splices in any rewiring the remaining topology needs. *)

val splices : t -> int
(** Completed splices so far. *)

val steps : t -> int
(** Total global execution steps across all engines. *)

val compile_seconds : t -> float
(** Time spent composing/preparing before execution started. *)

val engines : t -> Engine.t list
val nregions : t -> int

val regions_fused : t -> int
(** Region pairs the sequentializer merged back at split time (0 for
    unpartitioned configs or when compilation is off). *)

val expansions : t -> int
val cache_evictions : t -> int

val domains : t -> int
(** The effective domain count this connector was instantiated for. *)

val pool : t -> Preo_support.Pool.t option
(** The shared domain pool, when [domains t > 1]. *)

val sched : t -> Task.sched
(** Where this connector's tasks should run: [Task.Domains pool] when built
    for more than one domain, [Task.Threads] otherwise. Pass to
    [Task.spawn ~on] / [Task.run_all ~on]. *)

val poison : ?stall:Engine.stall_report -> t -> string -> unit
(** Shut every engine down. [stall] (defaulting to the most recent recorded
    stall report, if any, unless [msg] is plain ["shutdown"]) is appended to
    the poison message so released tasks — including those blocked on other
    partitioned regions — see the diagnosis in their [Poisoned] payload. *)

val close : t -> unit
(** Orderly shutdown: [poison t "shutdown"]. Wakes every blocked task with
    [Engine.Poisoned "shutdown"] and clears per-thread engine-trace entries,
    so a closed connector leaves no operation bookkeeping behind. *)

val last_stall : t -> Engine.stall_report option
(** The longest-waited stall report recorded by any engine, from a deadline
    expiry or the {!Config.stall_threshold} watchdog. *)

val failure : t -> string option
(** The first engine-poisoning reason other than plain shutdown, if any
    (e.g. a JIT expansion blow-up). *)

type stats = {
  st_steps : int;  (** fired transitions across all engines *)
  st_regions : int;
  st_expansions : int;  (** JIT state expansions (0 under the existing approach) *)
  st_cache_hits : int;
  st_cache_evictions : int;
  st_compile_seconds : float;
  st_solver_calls : int;
      (** firing-loop [Command.solve] calls (0 when labels are optimized) *)
  st_cond_waits : int;  (** blocked operations parked on a condition variable *)
  st_peer_kicks : int;  (** cross-engine nudges (partitioned runtime) *)
  st_cand_hits : int;  (** candidate-cache hits in the firing loop *)
  st_stalls : int;  (** stall reports recorded (watchdog trips + deadline expiries) *)
  st_wakes_targeted : int;
      (** per-vertex wake signals issued after firings (one per woken vertex) *)
  st_wakes_spurious : int;
      (** wakes after which the woken operation re-parked without engine
          progress; the spurious fraction is [st_wakes_spurious /
          st_cond_waits] *)
  st_wakes_broadcast : int;
      (** fallback wake-everyone broadcasts (poison, kick-round cap,
          shutdown) *)
  st_mpsc_ops : int;
      (** blocking operations published through the lock-free submission
          queues (try-ops and gate traffic bypass them) *)
  st_mpsc_batches : int;
      (** nonempty submission-queue drains; [st_mpsc_ops /
          st_mpsc_batches] is the mean installed batch size *)
  st_mpsc_fast : int;
      (** operations completed without the submitting task ever taking an
          engine mutex (lock-free fast path) *)
  st_batch_fires : int;
      (** transition firings obtained by replaying a committed guard-free
          self-loop — firings beyond the one found by a candidate scan *)
  st_domains : int;  (** effective domain count (see {!domains}) *)
  st_splices : int;  (** elastic splices completed (see {!splices}) *)
  st_color_rounds : int;
      (** synchronization rounds resolved by color propagation (coloring
          backend; 0 under automata) *)
  st_color_iters : int;
      (** color-propagation iterations — row trials during the fixed point;
          [st_color_iters / st_color_rounds] is the mean cost of resolving
          one round *)
  st_compiled_fires : int;
      (** firings executed through closure-compiled commands
          ([Command.compile]): guard check + moves in one pre-bound call *)
  st_interp_fires : int;
      (** firings through the interpreted guard/move walk — everything when
          [PREO_COMPILE=0], otherwise only unsolved-lazily or exotic
          (late-bound Datafun) commands *)
  st_regions_fused : int;
      (** region pairs the sequentializer merged back (see
          {!regions_fused}) *)
  st_shard_batches : int;
      (** [Sh_batch] frames sent by the shard fabric (each coalesces one
          channel's whole flush). Process-wide, like all [st_shard_*]
          fields: they aggregate every shard link in the process (see
          {!Shard_stats}); in-process connectors report 0. *)
  st_shard_items : int;  (** values carried inside those batch frames *)
  st_shard_acks : int;  (** values acknowledged by remote shards *)
  st_shard_reconnects : int;
      (** successful reconnect+resume cycles after link failures *)
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit

(** {1 Trace export}

    Both exporters render every trace lane registered in the process: this
    connector's engines (one lane each, present even if empty) plus shared
    lanes — partition-bridge slots and bridge RPCs. Events are recorded only
    while tracing is enabled ([Preo.set_tracing] / [PREO_TRACE]). *)

val dump_trace : t -> string
(** Human-readable event listing. *)

val chrome_trace : t -> string
(** Chrome trace-event JSON (load in Perfetto or [chrome://tracing]). *)
