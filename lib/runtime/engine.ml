open Preo_support
open Preo_automata
module Obs = Preo_obs.Obs
module Metrics = Preo_obs.Metrics

exception Poisoned of string

(* Teach the exporters how to render vertex ids; obs itself cannot depend on
   the automata layer. *)
let () = Obs.set_vertex_namer (fun v -> Printf.sprintf "%s#%d" (Vertex.name v) v)

(* Registered eagerly (cheap, once) so `preoc trace --metrics` always has the
   full set; recording sites still guard on !Obs.tracing. *)
let m_port_wait =
  Metrics.histogram ~help:"blocking port-operation wait time"
    ~buckets:Metrics.seconds_buckets "port_wait_seconds"

let m_fire_batch =
  Metrics.histogram ~help:"transitions fired per drive batch"
    ~buckets:Metrics.size_buckets "fire_batch_size"

let m_fires = Metrics.counter ~help:"transitions fired" "transitions_fired_total"
let m_parks = Metrics.counter ~help:"operation parks" "port_parks_total"
let m_stalls = Metrics.counter ~help:"stall reports" "stalls_total"

(* Diagnostic-only: per-thread stage notes, enabled via PREO_ENGINE_TRACE or
   set_op_trace. One entry per thread with an in-flight operation; the entry
   is removed when the operation finishes (normally or by exception), so the
   table stays bounded by the number of currently blocked tasks instead of
   growing with every thread ever seen. *)
let trace_enabled = ref (Sys.getenv_opt "PREO_ENGINE_TRACE" <> None)
let set_op_trace b = trace_enabled := b

(* Sharded by thread id: stage notes from tasks on different domains no
   longer serialize on one process-wide mutex. Each shard keeps the
   single-writer-per-entry discipline (a thread only ever touches its own
   tid's entry); the shard lock exists for the Hashtbl's sake and for
   [trace_dump], which walks all shards. *)
let trace_shards = 16 (* power of two: shard_of uses a mask *)

type trace_shard = { sh_lock : Mutex.t; sh_tbl : (int, string) Hashtbl.t }

let trace_tbl =
  Array.init trace_shards (fun _ ->
      { sh_lock = Mutex.create (); sh_tbl = Hashtbl.create 8 })

let shard_of tid = trace_tbl.(tid land (trace_shards - 1))

let trace stage =
  if !trace_enabled then begin
    let tid = Thread.id (Thread.self ()) in
    let sh = shard_of tid in
    Mutex.lock sh.sh_lock;
    Hashtbl.replace sh.sh_tbl tid stage;
    Mutex.unlock sh.sh_lock
  end

(* Called when an operation leaves the engine for good; the thread has no
   in-flight op, so its stage note is stale. *)
let trace_clear () =
  if !trace_enabled then begin
    let tid = Thread.id (Thread.self ()) in
    let sh = shard_of tid in
    Mutex.lock sh.sh_lock;
    Hashtbl.remove sh.sh_tbl tid;
    Mutex.unlock sh.sh_lock
  end

let trace_dump () =
  Array.fold_left
    (fun acc sh ->
      Mutex.lock sh.sh_lock;
      let acc =
        Hashtbl.fold
          (fun tid stage acc -> acc ^ Printf.sprintf "thread %d: %s\n" tid stage)
          sh.sh_tbl acc
      in
      Mutex.unlock sh.sh_lock;
      acc)
    "" trace_tbl

type gate = {
  gate_ready : unit -> bool;
  gate_peek : unit -> Value.t;
  gate_commit : Value.t option -> unit;
  gate_dump : unit -> string;
}

(* Structured diagnosis of a blocked operation: what the engine (and its
   partitioned peers) looked like when a deadline expired or the stall
   watchdog tripped. *)
type engine_snapshot = {
  es_steps : int;
  es_waits : int;
  es_kicks : int;
  es_pending : string list;
  es_candidates : int;  (** -1 when the composer budget is exhausted *)
  es_gates : string list;
  es_poisoned : string option;
}

type stall_report = {
  sr_op : string;
  sr_vertex : string;
  sr_waited : float;
  sr_engines : engine_snapshot list;
}

exception Timed_out of stall_report

(* Per-vertex parking list: every blocked operation waits on its vertex's
   own condition variable (all sharing the engine mutex), so a firing can
   wake exactly the tasks whose operations completed instead of the whole
   herd. [w_parked] counts operations currently inside Condition.wait; a
   waker skips vertices with nobody parked. [w_queued] dedups membership in
   the engine's wake-list without a set structure. *)
type waiter = {
  w_cond : Condition.t;
  w_vertex : Vertex.t;
  mutable w_parked : int;
  mutable w_queued : bool;
}

(* Blocking ops carry their vertex's waiter (resolved by whichever thread
   drains the submission queue) so completion inside the firing loop
   reaches the right condition variable with no lookup at all; nonblocking
   try-ops leave it [None] — their issuing thread is the one driving,
   nobody needs a wake.

   Completion ([s_done] / [r_result]) is atomic, not a plain mutable: on
   the lock-free fast path the submitting task polls it from outside the
   engine lock while the current lock holder completes it inside, possibly
   on another domain. The waiter field stays plain mutable — it is only
   touched under the engine lock (set at drain, read at completion).

   [s_tid]/[r_tid] record the submitting thread so the drainer — a
   different thread — can still emit this op's Submit trace event under
   the original task's id. *)
type send_op = {
  sv : Value.t;
  s_done : bool Atomic.t;
  mutable s_w : waiter option;
  s_tid : int;
  s_fail : string option Atomic.t;
      (* targeted failure: set when the op's vertex is retired by an elastic
         splice (at drain time or while queued); the owner raises [Poisoned]
         for just this op — the rest of the connector keeps running *)
}

type recv_op = {
  r_result : Value.t option Atomic.t;
  mutable r_w : waiter option;
  r_tid : int;
  r_fail : string option Atomic.t;
}

(* An operation published to the lock-free submission queue, before the
   drainer has installed it into the per-vertex queues. *)
type sub = Sub_send of Vertex.t * send_op | Sub_recv of Vertex.t * recv_op

type t = {
  lock : Mutex.t;
  comp : Composer.t;
  mutable cells : Value.t option array;
      (** mutable: {!splice} grows the cell store when added mediums bring
          fresh slots (never shrunk; retired slots are simply cleared) *)
  subs : sub Mpsc.t;
      (** lock-free submission queue: tasks publish operations here with a
          CAS; whichever thread next drives the engine (under the lock)
          drains them in one batch into the per-vertex queues *)
  send_q : (Vertex.t, send_op Queue.t) Hashtbl.t;
  recv_q : (Vertex.t, recv_op Queue.t) Hashtbl.t;
  mutable base_pending : Iset.t;  (** vertices with nonempty queues *)
  mutable retired : Iset.t;
      (** vertices removed by elastic splices; operations arriving on them
          (from tasks holding stale ports) fail immediately at drain time
          instead of queueing forever *)
  gates : (Vertex.t * gate) array;
  gate_tbl : (Vertex.t, gate_entry) Hashtbl.t;
      (** O(1) view of [gates], each entry fused with the peer engine behind
          its bridge so the firing loop resolves gate + kick target in one
          lookup *)
  mutable gate_pending : Iset.t;
      (** cached gate-readiness; meaningful only while [gate_valid].
          External gate changes only ever turn readiness ON (the peer that
          consumes a slot re-drives us via a kick), so a stale cache can
          under-report but never over-report enabledness. *)
  mutable gate_valid : bool;
  waiters : (Vertex.t, waiter) Hashtbl.t;
      (** per-vertex parking lists; entries are created lazily and kept for
          the engine's lifetime (boundary vertices are a small fixed set) *)
  mutable wake_list : waiter list;
      (** waiters with a parked task whose operations completed since the
          last {!flush_wakes} — the wake-set of the current drive loop
          (deduplicated via [w_queued]) *)
  mutable kick_list : t list;
      (** peer engines behind gates committed since the last kick flush
          (already resolved through [gate_peer]; tiny, deduped by memq) *)
  mutable kick_missing : bool;
      (** a committed gate had no [gate_peer] mapping (hand-wired gates):
          fall back to kicking every peer at the next flush *)
  (* Counters are atomic, not plain ints: they are bumped under the engine
     lock but read lock-free by [Connector.stats] — possibly from another
     domain once tasks run on a pool. *)
  nsteps : int Atomic.t;
  nwaits : int Atomic.t;  (** times a blocked operation parked *)
  nkicks : int Atomic.t;  (** peer-engine nudges issued after firings *)
  nwakes_t : int Atomic.t;  (** targeted per-vertex wake signals issued *)
  nwakes_sp : int Atomic.t;  (** wakes after which the woken op re-parked
                                 without the engine having progressed *)
  nwakes_b : int Atomic.t;  (** broadcast fallbacks (poison, kick-round cap) *)
  nstalls : int Atomic.t;  (** stall reports recorded (watchdog + deadlines) *)
  nmpsc_ops : int Atomic.t;  (** operations that went through the MPSC queue *)
  nmpsc_batches : int Atomic.t;  (** nonempty drains of the MPSC queue *)
  nmpsc_fast : int Atomic.t;
      (** ops completed on the lock-free fast path: the submitting task
          never took the engine mutex *)
  nbatch : int Atomic.t;
      (** extra transition firings obtained by batched self-loop replay
          (beyond the first firing found by the candidate scan) *)
  ncfires : int Atomic.t;  (** firings through compiled (closure) commands *)
  nifires : int Atomic.t;  (** firings through the interpreted walk *)
  mutable fire_env : Command.env option;
      (** the one [Command.env] this engine ever allocates: its closures
          capture [t] (not the cell array, which splice replaces) and stage
          into [staged_cells]/[delivered] below — reset at the top of every
          firing attempt, all under the engine lock *)
  mutable staged_cells : (int * Value.t) list;
  mutable delivered : (Vertex.t * Value.t) list;
  mutable last_stall : stall_report option;
  poison_flag : string option Atomic.t;
      (* read without the lock so overloaded engines notice shutdown *)
  mutable poisoned : string option;
  mutable peers : t list;
  mutable need_kick : bool;
  visit_stamp : int Atomic.t;
      (* kick_all bookkeeping: stamped with the traversal round's epoch
         instead of scanning membership lists (atomic so concurrent
         traversals with distinct epochs stay independent) *)
  defer_stamp : int Atomic.t;
  mutable on_fire : (Iset.t -> unit) option;
      (* called with each fired sync set, under the engine lock (tracing) *)
  ename : string;
  mutable oring : Obs.ring option;
      (* created on first traced emit; written only under the engine lock,
         so it needs no ring mutex of its own *)
  mutable last_exp : int;  (** JIT expansions already reported to the ring *)
}

and gate_entry = {
  ge_gate : gate;
  mutable ge_peer : t option;
      (** the engine sharing this gate's bridge (partitioned runtime); [None]
          falls back to kicking every peer *)
}

let create ?(gates = []) ?(name = "engine") comp =
  let gate_tbl = Hashtbl.create (max 1 (List.length gates)) in
  List.iter
    (fun (v, g) -> Hashtbl.replace gate_tbl v { ge_gate = g; ge_peer = None })
    gates;
  {
    lock = Mutex.create ();
    comp;
    cells = Array.make (max 1 (Composer.ncells comp)) None;
    subs = Mpsc.create ();
    send_q = Hashtbl.create 16;
    recv_q = Hashtbl.create 16;
    base_pending = Iset.empty;
    retired = Iset.empty;
    gates = Array.of_list gates;
    gate_tbl;
    gate_pending = Iset.empty;
    gate_valid = false;
    waiters = Hashtbl.create 16;
    wake_list = [];
    kick_list = [];
    kick_missing = false;
    nsteps = Atomic.make 0;
    nwaits = Atomic.make 0;
    nkicks = Atomic.make 0;
    nwakes_t = Atomic.make 0;
    nwakes_sp = Atomic.make 0;
    nwakes_b = Atomic.make 0;
    nstalls = Atomic.make 0;
    nmpsc_ops = Atomic.make 0;
    nmpsc_batches = Atomic.make 0;
    nmpsc_fast = Atomic.make 0;
    nbatch = Atomic.make 0;
    ncfires = Atomic.make 0;
    nifires = Atomic.make 0;
    fire_env = None;
    staged_cells = [];
    delivered = [];
    last_stall = None;
    poison_flag = Atomic.make None;
    poisoned = None;
    peers = [];
    need_kick = false;
    visit_stamp = Atomic.make 0;
    defer_stamp = Atomic.make 0;
    on_fire = None;
    ename = name;
    oring = None;
    last_exp = 0;
  }

(* The ring is the engine's trace lane; created lazily so untraced runs
   never register anything. Callers hold the engine lock. *)
let obs_ring t =
  match t.oring with
  | Some r -> r
  | None ->
    let r = Obs.create_ring t.ename in
    t.oring <- Some r;
    r

let set_peers t peers = t.peers <- peers

let set_gate_peers t pairs =
  List.iter
    (fun (v, p) ->
      match Hashtbl.find_opt t.gate_tbl v with
      | Some e -> e.ge_peer <- Some p
      | None -> ())
    pairs

let set_on_fire t f = t.on_fire <- f
let composer t = t.comp
let steps t = Atomic.get t.nsteps
let cond_waits t = Atomic.get t.nwaits
let peer_kicks t = Atomic.get t.nkicks
let wakes_targeted t = Atomic.get t.nwakes_t
let wakes_spurious t = Atomic.get t.nwakes_sp
let wakes_broadcast t = Atomic.get t.nwakes_b
let stalls t = Atomic.get t.nstalls
let mpsc_ops t = Atomic.get t.nmpsc_ops
let mpsc_batches t = Atomic.get t.nmpsc_batches
let mpsc_fast t = Atomic.get t.nmpsc_fast
let batch_fires t = Atomic.get t.nbatch
let compiled_fires t = Atomic.get t.ncfires
let interp_fires t = Atomic.get t.nifires

(* --- Targeted wakeups -------------------------------------------------------
   Operations complete only inside [fire_one], under the engine lock, and a
   parked task holds the lock continuously from its last [finished ()] check
   to [Condition.wait] — so recording completed vertices in [wake_pending]
   and signalling their waiters before the lock is released cannot lose a
   wakeup. Paths that cannot name a vertex (poison, kick-round cap) fall
   back to [wake_all], counted separately. *)

let waiter_of t v =
  match Hashtbl.find_opt t.waiters v with
  | Some w -> w
  | None ->
    let w =
      { w_cond = Condition.create (); w_vertex = v; w_parked = 0;
        w_queued = false }
    in
    Hashtbl.add t.waiters v w;
    w

(* A task-facing operation just completed: queue its waiter (carried in
   the op since submit) for the end-of-drive-loop flush. Skipped when
   nobody is parked there — the lock is held from here through
   {!flush_wakes}, so no task can park in between, and a non-parked task
   re-checks [finished] itself. Caller holds the lock. *)
let queue_wake t = function
  | Some w when w.w_parked > 0 && not w.w_queued ->
    w.w_queued <- true;
    t.wake_list <- w :: t.wake_list
  | _ -> ()

(* Signal the waiters of every vertex in the wake-set. Caller holds the
   lock; runs at the end of each drive loop (and on the try_step path). *)
let flush_wakes t =
  match t.wake_list with
  | [] -> ()
  | ws ->
    t.wake_list <- [];
    List.iter
      (fun w ->
        w.w_queued <- false;
        if w.w_parked > 0 then begin
          Atomic.incr t.nwakes_t;
          if !Obs.tracing then
            Obs.emit (obs_ring t) Obs.Wake_targeted ~a:w.w_vertex
              ~b:w.w_parked;
          (* One parked op: a single signal wakes exactly it. Several
             parked on the same vertex: broadcast — which of them can
             proceed depends on queue order, and the losers re-park (the
             spurious-wake counter picks them up). *)
          if w.w_parked = 1 then Condition.signal w.w_cond
          else Condition.broadcast w.w_cond
        end)
      ws

(* Correctness backstop: wake every parked operation so each re-examines the
   engine itself (poison delivery, kick-round cap, shutdown). *)
let wake_all t =
  List.iter (fun w -> w.w_queued <- false) t.wake_list;
  t.wake_list <- [];
  let woken = ref 0 in
  Hashtbl.iter
    (fun _ w ->
      if w.w_parked > 0 then begin
        woken := !woken + w.w_parked;
        Condition.broadcast w.w_cond
      end)
    t.waiters;
  Atomic.incr t.nwakes_b;
  if !Obs.tracing then Obs.emit (obs_ring t) Obs.Wake_broadcast ~a:!woken ~b:0

let entry_of t v =
  if Array.length t.gates = 0 then None else Hashtbl.find_opt t.gate_tbl v

let gate_of t v =
  match entry_of t v with Some e -> Some e.ge_gate | None -> None

(* This gate just committed: remember which peer engine shares its bridge
   so the next kick flush re-drives exactly that engine. Gates with no
   mapping (hand-wired in tests) degrade to kicking every peer. Caller
   holds the lock. *)
let queue_kick t e =
  match e.ge_peer with
  | Some p -> if not (List.memq p t.kick_list) then t.kick_list <- p :: t.kick_list
  | None -> t.kick_missing <- true

let queue_of tbl v =
  match Hashtbl.find_opt tbl v with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Hashtbl.add tbl v q;
    q

(* Pending boundary set. Engines without gates (the common case) pay
   nothing; gated engines refold readiness only when the cache was
   invalidated (on entry to a drive loop, and after a firing that committed
   to a gate). *)
let pending_now t =
  if Array.length t.gates = 0 then t.base_pending
  else begin
    if not t.gate_valid then begin
      t.gate_pending <-
        Array.fold_left
          (fun acc (v, g) -> if g.gate_ready () then Iset.add v acc else acc)
          Iset.empty t.gates;
      t.gate_valid <- true
    end;
    Iset.union t.base_pending t.gate_pending
  end

let invalidate_gates t = if Array.length t.gates > 0 then t.gate_valid <- false

let check_poison t =
  (match (t.poisoned, Atomic.get t.poison_flag) with
   | None, Some msg -> t.poisoned <- Some msg
   | _ -> ());
  match t.poisoned with Some msg -> raise (Poisoned msg) | None -> ()

(* Install everything published to the lock-free submission queue into the
   real per-vertex queues; returns whether anything was installed. Runs
   under the engine lock, at the top of every drive (and from the poison /
   exception paths). Non-raising by construction, so an op popped from the
   MPSC queue always lands in a queue where the poison, deadline-withdraw
   and stall machinery can reach it — an [Expansion_budget] or poison in a
   later solve finds it parked in the queue, never dropped.

   Submit trace events are emitted here, by the drainer, under the
   submitting task's recorded thread id: the obs ring keeps its
   single-writer-under-the-engine-lock discipline even though submission
   itself no longer takes the lock. *)
let retired_msg v =
  Printf.sprintf "detached: port %s#%d was retired from the connector"
    (Vertex.name v) v

let drain_subs t =
  match Mpsc.pop_all t.subs with
  | [] -> false
  | subs ->
    Atomic.incr t.nmpsc_batches;
    let traced = !Obs.tracing in
    let n = ref 0 in
    List.iter
      (fun s ->
        incr n;
        match s with
        | Sub_send (v, op) ->
          if Iset.mem v t.retired then begin
            (* Stale port: the vertex was spliced out. Fail just this op —
               its owner re-checks the failure flag in its blocking loop (or
               is woken below if already parked). *)
            Atomic.set op.s_fail (Some (retired_msg v));
            queue_wake t (Hashtbl.find_opt t.waiters v)
          end
          else begin
            op.s_w <- Some (waiter_of t v);
            Queue.push op (queue_of t.send_q v);
            t.base_pending <- Iset.add v t.base_pending;
            if traced then Obs.emit (obs_ring t) Obs.Submit_send ~a:v ~b:op.s_tid
          end
        | Sub_recv (v, op) ->
          if Iset.mem v t.retired then begin
            Atomic.set op.r_fail (Some (retired_msg v));
            queue_wake t (Hashtbl.find_opt t.waiters v)
          end
          else begin
            op.r_w <- Some (waiter_of t v);
            Queue.push op (queue_of t.recv_q v);
            t.base_pending <- Iset.add v t.base_pending;
            if traced then Obs.emit (obs_ring t) Obs.Submit_recv ~a:v ~b:op.r_tid
          end)
      subs;
    ignore (Atomic.fetch_and_add t.nmpsc_ops !n);
    true

(* Batched self-loop firing: when a transition that just fired is a
   self-loop with a guard-free command, it is — by definition of self-loop
   — still among the current state's transitions, and its enabledness
   depends only on its needed boundary vertices still having data/room. So
   instead of re-running the whole candidate scan (and, for JIT, the
   candidate-cache lookup) per datum, replay the same transition while its
   needs stay satisfied: one scan, k data moves. The cap bounds how long
   the lock is held against a pathological firehose. *)
let batch_limit = 64

(* May [x] fire again right now? Per needed vertex: a gate must report
   ready (data / room in the bridge), a task-facing vertex must have a
   nonempty queue. Caller holds the lock; only called for self-loops, so
   the composer state is unchanged. *)
let still_enabled t (x : Composer.xtrans) =
  let vertex_ready q_tbl v =
    match entry_of t v with
    | Some e -> e.ge_gate.gate_ready ()
    | None -> (
      match Hashtbl.find_opt q_tbl v with
      | Some q -> not (Queue.is_empty q)
      | None -> false)
  in
  Iset.for_all (vertex_ready t.send_q) x.needs_send
  && Iset.for_all (vertex_ready t.recv_q) x.needs_recv

(* The engine's single [Command.env]: allocated once, reused for every
   firing attempt (compiled or interpreted). Its closures capture [t], so
   they survive splice (which replaces [t.cells] and the composer's
   boundary) and always see the current state; writes stage into the
   engine's [staged_cells]/[delivered] fields, reset by each attempt. All
   of this happens strictly under the engine lock. *)
let fire_env t =
  match t.fire_env with
  | Some env -> env
  | None ->
    let env =
      {
        Command.read_send =
          (fun v ->
            match gate_of t v with
            | Some g -> g.gate_peek ()
            | None -> (Queue.peek (queue_of t.send_q v)).sv);
        read_cell =
          (fun c ->
            match t.cells.(c) with
            | Some v -> v
            | None ->
              failwith "engine: read from empty cell (corrupt automaton)");
        write_cell = (fun c v -> t.staged_cells <- (c, v) :: t.staged_cells);
        deliver = (fun v value -> t.delivered <- (v, value) :: t.delivered);
      }
    in
    t.fire_env <- Some env;
    env

(* Fire one enabled transition if any (plus its batched replays); caller
   holds the lock. *)
let fire_one t =
  let pending = pending_now t in
  let cands = Composer.candidates t.comp ~pending in
  let n = Array.length cands in
  if n = 0 then false
  else begin
    let start = Atomic.get t.nsteps mod n in
    (* Decided inside try_candidate, BEFORE Composer.commit — afterwards
       the current state is the target and self-loop-ness degenerates. *)
    let batchable = ref false in
    let try_candidate (x : Composer.xtrans) =
      let env = fire_env t in
      t.staged_cells <- [];
      t.delivered <- [];
      match Composer.command_of t.comp x with
      | None -> false (* structurally unsatisfiable: never enabled *)
      | Some cmd ->
        (* Compiled commands check guards and execute in one closure call
           (its writes only stage, so a [false] has no effect to undo);
           interpreted ones walk the guard/move trees. [residual_guards]
           counts data tests that survived constant folding — the ones
           whose verdict could change between replays. *)
        let fired, residual_guards =
          match Composer.compiled_of x with
          | Some k ->
            if Command.fire_compiled k env then begin
              Atomic.incr t.ncfires;
              (true, Command.compiled_nguards k)
            end
            else (false, 0)
          | None ->
            if Command.guards_hold cmd env then begin
              Atomic.incr t.nifires;
              Command.execute cmd env;
              (true, Array.length cmd.Command.guards)
            end
            else (false, 0)
        in
        if not fired then false
        else begin
          (* A silent self-loop (no needs at all) must never be replayed:
             it would spin inside the batch loop without moving data. *)
          batchable :=
            residual_guards = 0
            && (not (Iset.is_empty x.needs_send)
               || not (Iset.is_empty x.needs_recv))
            && Composer.is_self_loop t.comp x;
          (* Apply staged effects. *)
          List.iter (fun (c, v) -> t.cells.(c) <- Some v) t.staged_cells;
          List.iter
            (fun (v, value) ->
              match entry_of t v with
              | Some e ->
                e.ge_gate.gate_commit (Some value);
                queue_kick t e
              | None ->
                let q = queue_of t.recv_q v in
                let op = Queue.pop q in
                Atomic.set op.r_result (Some value);
                queue_wake t op.r_w;
                if Queue.is_empty q then
                  t.base_pending <- Iset.remove v t.base_pending)
            t.delivered;
          (* Complete the consumed sends (their data was either moved by the
             command or discarded by the protocol). *)
          Iset.iter
            (fun v ->
              match entry_of t v with
              | Some e ->
                e.ge_gate.gate_commit None;
                queue_kick t e
              | None ->
                let q = queue_of t.send_q v in
                let op = Queue.pop q in
                Atomic.set op.s_done true;
                queue_wake t op.s_w;
                if Queue.is_empty q then
                  t.base_pending <- Iset.remove v t.base_pending)
            x.needs_send;
          (* Every non-gated needed receive must have been delivered. *)
          assert (
            Iset.for_all
              (fun v ->
                gate_of t v <> None
                || List.exists (fun (u, _) -> Vertex.equal u v) t.delivered)
              x.needs_recv);
          Composer.commit t.comp x;
          invalidate_gates t;
          Atomic.incr t.nsteps;
          if !Obs.tracing then begin
            Obs.emit (obs_ring t) Obs.Fire ~a:(Iset.cardinal x.sync)
              ~b:(if Iset.is_empty x.sync then -1 else Iset.choose x.sync);
            Metrics.incr m_fires
          end;
          (match t.on_fire with Some f -> f x.sync | None -> ());
          true
        end
    in
    let rec scan i =
      i < n
      && begin
           let x = cands.((start + i) mod n) in
           if not (try_candidate x) then scan (i + 1)
           else begin
             (* Amortize the scan: replay the committed self-loop while its
                needs stay satisfied. Each replay goes back through
                try_candidate, so staging, delivery, gate kicks, wakes and
                tracing behave exactly as for a scanned firing. *)
             if !batchable then begin
               let k = ref 1 in
               while
                 !k < batch_limit && still_enabled t x && try_candidate x
               do
                 incr k;
                 Atomic.incr t.nbatch
               done
             end;
             true
           end
         end
    in
    scan 0
  end

(* Poison this engine and (lock-free) flag its partitioned peers; the
   caller holds the lock, so peers are only marked through their atomic
   flags and woken later through the kick machinery — taking their locks
   here could deadlock against a peer poisoning us. This is what makes a
   cross-region failure (and the poison message, including any attached
   stall report) reach tasks blocked on sibling regions instead of leaving
   them hung forever. *)
let poison_locked t msg =
  if Atomic.get t.poison_flag = None then Atomic.set t.poison_flag (Some msg);
  if t.poisoned = None then begin
    t.poisoned <- Some msg;
    if !Obs.tracing then Obs.emit (obs_ring t) Obs.Poison ~a:0 ~b:0
  end;
  List.iter
    (fun p ->
      if Atomic.get p.poison_flag = None then
        Atomic.set p.poison_flag (Some msg))
    t.peers;
  if t.peers <> [] then t.need_kick <- true;
  (* Ops published but not yet installed would be invisible to the
     wake/stall machinery below: install them first (their owners also
     re-check the poison flag themselves, but the queues must account for
     every popped submission). *)
  ignore (drain_subs t);
  wake_all t

(* Install pending submissions and fire as many transitions as possible;
   returns whether any were installed or fired (progress). *)
let drive t =
  invalidate_gates t;
  let drained = drain_subs t in
  let fired = ref 0 in
  (try
     while fire_one t do
       incr fired
     done
   with Composer.Expansion_budget msg -> poison_locked t msg);
  if !Obs.tracing then begin
    if !fired > 0 then Metrics.observe m_fire_batch (float_of_int !fired);
    let exp = Composer.expansions t.comp in
    if exp > t.last_exp then begin
      Obs.emit (obs_ring t) Obs.Expansion ~a:exp ~b:(exp - t.last_exp);
      t.last_exp <- exp
    end
  end;
  (* The wake-set of this drive loop: signal exactly the vertices whose
     task-facing operations completed, while still holding the lock. *)
  flush_wakes t;
  !fired > 0 || drained

(* Consume this engine's pending kick requests and resolve them to the
   engines that must be re-driven. Gate commits were already resolved
   through [gate_peer] into [kick_list] (exactly the engine sharing each
   bridge); a commit with no mapping (hand-wired gates, tests) set
   [kick_missing] and degrades to kicking every peer, and [need_kick]
   (poison) always means every peer. Caller holds the lock. *)
let take_kick_targets t =
  let need_all = t.need_kick || t.kick_missing in
  t.need_kick <- false;
  t.kick_missing <- false;
  let targets = t.kick_list in
  t.kick_list <- [];
  let targets =
    if not need_all then targets
    else
      List.fold_left
        (fun acc p -> if List.memq p acc then acc else p :: acc)
        targets t.peers
  in
  ignore (Atomic.fetch_and_add t.nkicks (List.length targets));
  targets

(* Nudge peer engines so a firing here propagates through shared gates.
   Each engine is visited at most once per round; a kick aimed at an
   already-visited engine is deferred to the next round rather than
   revisited immediately, so cyclic peer topologies cannot loop. Rounds
   stamp engines with a fresh epoch (two atomically allocated stamps per
   round: visited and deferred) instead of scanning membership lists, so a
   round over k engines costs O(k) rather than O(k²); concurrent traversals
   draw distinct epochs and simply tolerate the occasional double visit.
   The round cap bounds total work; any requests left after it get a
   broadcast wake-up so blocked tasks re-examine their engine themselves.
   The cap is generous because in ring topologies each round advances the
   ring by one lap, and momentum (one thread driving the whole ring without
   context switches) is where the partitioned runtime's throughput comes
   from. *)
let kick_rounds = 64
let kick_epoch = Atomic.make 1

let kick_all engines =
  let wake_everyone e =
    Mutex.lock e.lock;
    wake_all e;
    Mutex.unlock e.lock
  in
  let visit e =
    Mutex.lock e.lock;
    let _ = drive e in
    (* drive signalled e's completed operations; poisoned peers (flagged
       lock-free by poison_locked) additionally need everyone woken so
       their parked tasks observe the poison. *)
    (match Atomic.get e.poison_flag with
     | Some msg ->
       if e.poisoned = None then begin
         e.poisoned <- Some msg;
         if !Obs.tracing then Obs.emit (obs_ring e) Obs.Poison ~a:0 ~b:0
       end;
       wake_all e
     | None -> ());
    let more = take_kick_targets e in
    Mutex.unlock e.lock;
    more
  in
  let rec round n todo =
    match todo with
    | [] -> ()
    | _ when n >= kick_rounds -> List.iter wake_everyone todo
    | _ ->
      let ev = Atomic.fetch_and_add kick_epoch 2 in
      let ed = ev + 1 in
      let deferred = ref [] in
      let rec go = function
        | [] -> ()
        | e :: rest ->
          if Atomic.get e.visit_stamp = ev then go rest
          else begin
            Atomic.set e.visit_stamp ev;
            (* fresh targets are consumed this round; already-visited ones
               are deferred to the next (no intermediate lists: the common
               chain case — one fresh target — allocates one cons cell) *)
            let rest =
              List.fold_left
                (fun acc x ->
                  if Atomic.get x.visit_stamp <> ev then x :: acc
                  else begin
                    if Atomic.get x.defer_stamp <> ed then begin
                      Atomic.set x.defer_stamp ed;
                      deferred := x :: !deferred
                    end;
                    acc
                  end)
                rest (visit e)
            in
            go rest
          end
      in
      go todo;
      round (n + 1) !deferred
  in
  round 0 engines

(* Release the lock, nudge the targeted engines, re-acquire. Caller holds
   the lock. *)
let flush_kicks t =
  if t.need_kick || t.kick_missing || t.kick_list <> [] then begin
    match take_kick_targets t with
    | [] -> ()
    | targets ->
      Mutex.unlock t.lock;
      kick_all targets;
      Mutex.lock t.lock
  end

(* Consume any pending kick request, unlock, deliver the kicks, and only
   then propagate [exn]. A transition that fired just before the exception
   (e.g. before poison was noticed) must still wake downstream peers, or
   their blocked tasks never re-check their engines. Caller holds the
   lock. *)
let unlock_raise t exn =
  (* Exception audit: submissions popped by a mid-drain exception were
     installed by drain_subs (it is non-raising); submissions still in the
     MPSC queue are installed now, so nothing leaves this function merely
     published — every op is either in a per-vertex queue (reachable by
     poison/withdraw) or still safely in the MPSC queue's atomic. *)
  ignore (drain_subs t);
  let targets =
    if t.need_kick || t.kick_missing || t.kick_list <> [] then
      take_kick_targets t
    else []
  in
  flush_wakes t;
  Mutex.unlock t.lock;
  (match targets with
   | [] -> ()
   | _ -> ( try kick_all targets with _ -> ()));
  raise exn

let add_pending t v = t.base_pending <- Iset.add v t.base_pending

(* --- Stall diagnosis -------------------------------------------------------- *)

let vname v = Printf.sprintf "%s#%d" (Vertex.name v) v

(* Caller holds the lock. Refolds gate readiness so the snapshot reflects
   the engine as the firing loop would see it. *)
let snapshot_locked t =
  invalidate_gates t;
  let pending = pending_now t in
  let candidates =
    match Composer.candidates t.comp ~pending with
    | cands -> Array.length cands
    | exception Composer.Expansion_budget _ -> -1
  in
  {
    es_steps = Atomic.get t.nsteps;
    es_waits = Atomic.get t.nwaits;
    es_kicks = Atomic.get t.nkicks;
    es_pending = List.map vname (Iset.elements pending);
    es_candidates = candidates;
    es_gates =
      Array.to_list
        (Array.map
           (fun (v, g) ->
             Printf.sprintf "%s:%s" (vname v)
               (try g.gate_dump () with _ -> "?"))
           t.gates);
    es_poisoned = t.poisoned;
  }

let snapshot t =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  snapshot_locked t

let pp_stall_report ppf r =
  Format.fprintf ppf "stalled %s at %s after %.3fs@," r.sr_op r.sr_vertex
    r.sr_waited;
  List.iteri
    (fun i es ->
      Format.fprintf ppf
        "engine[%d]: steps=%d waits=%d kicks=%d candidates=%s pending={%s}%s \
         poisoned=%s@,"
        i es.es_steps es.es_waits es.es_kicks
        (if es.es_candidates < 0 then "?" else string_of_int es.es_candidates)
        (String.concat "," es.es_pending)
        (match es.es_gates with
         | [] -> ""
         | gs -> Printf.sprintf " gates={%s}" (String.concat "," gs))
        (match es.es_poisoned with Some m -> m | None -> "no"))
    r.sr_engines

let string_of_stall_report r =
  Format.asprintf "@[<v>%a@]" pp_stall_report r

let last_stall t =
  Mutex.lock t.lock;
  let r = t.last_stall in
  Mutex.unlock t.lock;
  r

(* Withdraw an op from a queue (nonblocking or timed-out attempt that did
   not fire), so a later firing cannot complete into a dead slot. *)
let withdraw t tbl v keep_op =
  let q = queue_of tbl v in
  let kept = Queue.create () in
  Queue.iter (fun o -> if not (keep_op o) then Queue.push o kept) q;
  Queue.clear q;
  Queue.transfer kept q;
  if Queue.is_empty q then t.base_pending <- Iset.remove v t.base_pending

(* The blocking-operation loop. With neither a deadline nor a stall
   threshold configured (the common case) the extra work is two option
   checks on the park path only — firings never touch any of it. When an
   operation is about to park and carries a deadline (or the global
   watchdog threshold is set), a one-shot wake-up is registered with
   {!Timer} so even a fully deadlocked engine gets woken to notice the
   expiry; expiry withdraws the operation and returns the stall report. *)
let untraced_submit_t = ref 0.0

(* Bounded lock-free wait after publishing an op: give the current lock
   holder a chance to drain and complete it before we contend on the mutex
   at all. The occasional yield matters on a single domain, where systhreads
   interleave rather than truly run in parallel — spinning alone would never
   let the drainer progress. *)
let spin_budget = 64

let run_op ?deadline ?(publish = true) t ~opname ~opv ~sub ~remove ~finished
    ~failed ~extract =
  trace "entry";
  (match Atomic.get t.poison_flag with
   | Some msg -> raise (Poisoned msg)
   | None -> ());
  let check_failed () =
    match failed () with Some msg -> raise (Poisoned msg) | None -> ()
  in
  check_failed ();
  (* One flag read when tracing is off; the op's whole lifecycle shares the
     decision so submit/complete events always pair up. *)
  let traced = !Obs.tracing in
  let is_send = traced && String.equal opname "send" in
  let tid = if traced then Thread.id (Thread.self ()) else 0 in
  (* written and read only when [traced]; the shared dummy spares the
     untraced path the allocation *)
  let submit_t = if traced then ref (Clock.now ()) else untraced_submit_t in
  (* Publish the operation lock-free: from here on, whichever thread next
     drives the engine installs — and may complete — it. The op's Submit
     trace event is emitted by that drainer (under the lock, preserving the
     ring's single-writer discipline), stamped with our thread id.
     [publish = false] re-enters the wait for an op that is already
     installed (the batch retry path). *)
  if publish then Mpsc.push t.subs sub;
  trace "published";
  let locked = ref false in
  let fast_done =
    deadline = None
    && !Config.stall_threshold = None
    && (not traced)
    &&
    (* Fast path: poll the op's atomic completion flag while a concurrent
       drainer works, grabbing the lock only if it frees up first. Plain
       ops only — deadlines, the stall watchdog and tracing all need the
       locked bookkeeping below. Completion is read through an atomic, so
       this is safe from any domain; if nobody completes the op we fall
       through to the mutex+condvar path, which drains the queue itself
       (every published op has an owner that eventually drains, so none is
       ever lost). *)
    let rec spin i =
      if finished () then true
      else if Mutex.try_lock t.lock then begin
        locked := true;
        false
      end
      else if i >= spin_budget then false
      else begin
        if i land 7 = 7 then Thread.yield () else Domain.cpu_relax ();
        spin (i + 1)
      end
    in
    spin 0
  in
  if fast_done then begin
    Atomic.incr t.nmpsc_fast;
    trace_clear ();
    Ok (extract ())
  end
  else begin
  trace "locking";
  if not !locked then Mutex.lock t.lock;
  let result =
    try
      check_poison t;
      let w = waiter_of t opv in
      let threshold = !Config.stall_threshold in
      let wait_start = ref nan in
      let timer_armed = ref false in
      let watchdog_tripped = ref false in
      let stall_here waited =
        {
          sr_op = opname;
          sr_vertex = vname opv;
          sr_waited = waited;
          sr_engines = [ snapshot_locked t ];
        }
      in
      (* About to park with a deadline or watchdog active: check expiry,
         arm the timer wake-up once. Returns [Some report] on expiry. *)
      let check_deadline () =
        let now = Clock.now () in
        if Float.is_nan !wait_start then wait_start := now;
        let waited = now -. !wait_start in
        (match threshold with
         | Some th when (not !watchdog_tripped) && waited >= th ->
           watchdog_tripped := true;
           Atomic.incr t.nstalls;
           t.last_stall <- Some (stall_here waited);
           if traced then begin
             Obs.emit (obs_ring t) Obs.Stall ~a:opv ~b:tid;
             Metrics.incr m_stalls
           end
         | _ -> ());
        match deadline with
        | Some d when now >= d ->
          (* snapshot before withdrawing, so the report still names the
             expiring operation among the pending vertices *)
          let report = stall_here waited in
          remove ();
          Some report
        | _ ->
          if not !timer_armed then begin
            timer_armed := true;
            (* Wake only this operation's vertex: the timer fires for a
               specific parked op, not for the whole engine. *)
            (* Targeted: with exactly one parked op (the overwhelming
               common case — this deadline's owner) a single signal
               suffices; the old unconditional broadcast woke every op
               parked on the vertex, and the extras re-parked as spurious
               wakes (visible in the st_wakes_spurious counter, which the
               wakeup suite pins at zero). With several parked we must
               still broadcast — a lone signal could wake the wrong op and
               leave the expiring one asleep. *)
            let wake () =
              Mutex.lock t.lock;
              if w.w_parked = 1 then Condition.signal w.w_cond
              else if w.w_parked > 1 then Condition.broadcast w.w_cond;
              Mutex.unlock t.lock
            in
            (match deadline with Some d -> Timer.wake_at d wake | None -> ());
            match threshold with
            | Some th -> Timer.wake_at (!wait_start +. th) wake
            | None -> ()
          end;
          None
      in
      (* Set after a wake, cleared when the engine makes progress: reaching
         the next park with it still set means the wake achieved nothing —
         a spurious wake (the metric targeted wakeups exist to minimize). *)
      let woke_idle = ref false in
      let park () =
        trace "waiting";
        if !woke_idle then Atomic.incr t.nwakes_sp;
        Atomic.incr t.nwaits;
        if traced then begin
          Obs.emit (obs_ring t) Obs.Park ~a:opv ~b:tid;
          Metrics.incr m_parks
        end;
        w.w_parked <- w.w_parked + 1;
        Condition.wait w.w_cond t.lock;
        w.w_parked <- w.w_parked - 1;
        woke_idle := true;
        if traced then Obs.emit (obs_ring t) Obs.Wake ~a:opv ~b:tid;
        trace "woken"
      in
      let rec loop () =
        trace "loop";
        check_poison t;
        check_failed ();
        if finished () then Ok (extract ())
        else begin
          trace "driving";
          let progressed = drive t in
          if progressed then woke_idle := false;
          check_poison t;
          if finished () then begin
            flush_kicks t;
            Ok (extract ())
          end
          else begin
            flush_kicks t;
            if progressed || finished () then loop ()
            else if deadline = None && threshold = None then begin
              park ();
              loop ()
            end
            else begin
              match check_deadline () with
              | Some report -> Error report
              | None ->
                park ();
                loop ()
            end
          end
        end
      in
      loop ()
    with e ->
      (* The operation is over either way; drop this thread's stage note so
         trace_tbl stays bounded by in-flight operations. *)
      trace_clear ();
      unlock_raise t e
  in
  if traced then begin
    (match result with
     | Ok _ ->
       Obs.emit (obs_ring t)
         (if is_send then Obs.Complete_send else Obs.Complete_recv)
         ~a:opv ~b:tid;
       Metrics.observe m_port_wait (Clock.now () -. !submit_t)
     | Error _ ->
       Obs.emit (obs_ring t) Obs.Stall ~a:opv ~b:tid;
       Metrics.incr m_stalls)
  end;
  flush_kicks t;
  Mutex.unlock t.lock;
  trace_clear ();
  match result with
  | Ok _ -> result
  | Error partial ->
    (* Complete the report with peer snapshots — their locks must be taken
       with ours released (same discipline as kick_all). *)
    let full =
      { partial with
        sr_engines = partial.sr_engines @ List.map snapshot t.peers }
    in
    Mutex.lock t.lock;
    t.last_stall <- Some full;
    Atomic.incr t.nstalls;
    Mutex.unlock t.lock;
    Error full
  end

let new_send_op value =
  { sv = value; s_done = Atomic.make false; s_w = None;
    s_tid = Thread.id (Thread.self ()); s_fail = Atomic.make None }

let new_recv_op () =
  { r_result = Atomic.make None; r_w = None;
    r_tid = Thread.id (Thread.self ()); r_fail = Atomic.make None }

let send_opt ?deadline t v value =
  let op = new_send_op value in
  run_op ?deadline t ~opname:"send" ~opv:v ~sub:(Sub_send (v, op))
    ~remove:(fun () -> withdraw t t.send_q v (fun o -> o == op))
    ~finished:(fun () -> Atomic.get op.s_done)
    ~failed:(fun () -> Atomic.get op.s_fail)
    ~extract:(fun () -> ())

let recv_opt ?deadline t v =
  let op = new_recv_op () in
  run_op ?deadline t ~opname:"recv" ~opv:v ~sub:(Sub_recv (v, op))
    ~remove:(fun () -> withdraw t t.recv_q v (fun o -> o == op))
    ~finished:(fun () -> Atomic.get op.r_result <> None)
    ~failed:(fun () -> Atomic.get op.r_fail)
    ~extract:(fun () ->
      match Atomic.get op.r_result with Some x -> x | None -> assert false)

let send ?deadline t v value =
  match send_opt ?deadline t v value with
  | Ok () -> ()
  | Error report -> raise (Timed_out report)

let recv ?deadline t v =
  match recv_opt ?deadline t v with
  | Ok x -> x
  | Error report -> raise (Timed_out report)

(* --- Batch submission --------------------------------------------------------
   Publish [k] operations in one shot and block behind the LAST one only.
   Operations on one vertex complete in queue (FIFO) order — the firing
   loop pops from the front and batch ops are never withdrawn — so the
   last op finishing implies all the earlier ones have. MPSC pushes from
   one producer keep their order, so the k ops land in the vertex queue in
   submission order. No [?deadline]: a partially completed batch has no
   sensible withdraw semantics. The empty batch ([send_many _ _ []],
   [recv_many _ _ 0]) is a documented no-op — churn code computes batch
   sizes at run time and zero must not trip anything. [last_of] is only
   reached with a nonempty list; the [invalid_arg] is a belt-and-braces
   guard, not an API surface. *)

let rec last_of = function
  | [ x ] -> x
  | _ :: rest -> last_of rest
  | [] -> invalid_arg "Engine: empty batch"

let wait_last ?prefix t ~opname ~opv ~sub ~finished ~failed =
  (match prefix with
   | Some subs -> List.iter (fun s -> Mpsc.push t.subs s) subs
   | None -> ());
  let rec wait publish =
    match
      run_op ~publish t ~opname ~opv ~sub ~remove:(fun () -> ()) ~finished
        ~failed ~extract:(fun () -> ())
    with
    | Ok () -> ()
    | Error report ->
      (* A stall report came back for a no-deadline batch op (the watchdog
         path). run_op already recorded it (st_stalls, last_stall); the op
         itself is still queued — [remove] is a no-op — so keep waiting
         instead of aborting the process. [publish = false]: the op must
         not be resubmitted. *)
      ignore report;
      wait false
  in
  wait true

let send_many t v values =
  match values with
  | [] -> ()
  | values ->
    let ops = List.map new_send_op values in
    let last = last_of ops in
    let prefix =
      List.filter_map
        (fun op -> if op == last then None else Some (Sub_send (v, op)))
        ops
    in
    wait_last t ~prefix ~opname:"send" ~opv:v ~sub:(Sub_send (v, last))
      ~finished:(fun () -> Atomic.get last.s_done)
      ~failed:(fun () -> Atomic.get last.s_fail);
    (* Keep Submit/Complete pairing for the whole batch in traces: run_op
       emitted Complete for the last op only. Under the lock, like every
       ring write. *)
    if !Obs.tracing then begin
      Mutex.lock t.lock;
      List.iter
        (fun op ->
          if op != last then
            Obs.emit (obs_ring t) Obs.Complete_send ~a:v ~b:op.s_tid)
        ops;
      Mutex.unlock t.lock
    end

let recv_many t v k =
  if k <= 0 then []
  else begin
    let ops = List.init k (fun _ -> new_recv_op ()) in
    let last = last_of ops in
    let prefix =
      List.filter_map
        (fun op -> if op == last then None else Some (Sub_recv (v, op)))
        ops
    in
    wait_last t ~prefix ~opname:"recv" ~opv:v ~sub:(Sub_recv (v, last))
      ~finished:(fun () -> Atomic.get last.r_result <> None)
      ~failed:(fun () -> Atomic.get last.r_fail);
    if !Obs.tracing then begin
      Mutex.lock t.lock;
      List.iter
        (fun op ->
          if op != last then
            Obs.emit (obs_ring t) Obs.Complete_recv ~a:v ~b:op.r_tid)
        ops;
      Mutex.unlock t.lock
    end;
    List.map
      (fun op ->
        match Atomic.get op.r_result with
        | Some x -> x
        | None -> assert false (* FIFO: last done implies all done *))
      ops
  end

let try_send t v value =
  (match Atomic.get t.poison_flag with
   | Some msg -> raise (Poisoned msg)
   | None -> ());
  Mutex.lock t.lock;
  let result =
    try
      check_poison t;
      if Iset.mem v t.retired then raise (Poisoned (retired_msg v));
      (* Install concurrently published ops first, so our direct enqueue
         does not jump ahead of operations submitted before us. *)
      ignore (drain_subs t);
      let op =
        { sv = value; s_done = Atomic.make false; s_w = None; s_tid = 0;
          s_fail = Atomic.make None }
      in
      Queue.push op (queue_of t.send_q v);
      add_pending t v;
      let _ = drive t in
      check_poison t;
      if Atomic.get op.s_done then true
      else begin
        withdraw t t.send_q v (fun o -> o == op);
        false
      end
    with e -> unlock_raise t e
  in
  flush_kicks t;
  Mutex.unlock t.lock;
  result

let try_recv t v =
  (match Atomic.get t.poison_flag with
   | Some msg -> raise (Poisoned msg)
   | None -> ());
  Mutex.lock t.lock;
  let result =
    try
      check_poison t;
      if Iset.mem v t.retired then raise (Poisoned (retired_msg v));
      ignore (drain_subs t);
      let op =
        { r_result = Atomic.make None; r_w = None; r_tid = 0;
          r_fail = Atomic.make None }
      in
      Queue.push op (queue_of t.recv_q v);
      add_pending t v;
      let _ = drive t in
      check_poison t;
      (match Atomic.get op.r_result with
       | Some _ as r -> r
       | None ->
         withdraw t t.recv_q v (fun o -> o == op);
         None)
    with e -> unlock_raise t e
  in
  flush_kicks t;
  Mutex.unlock t.lock;
  result

let try_step t =
  (match Atomic.get t.poison_flag with
   | Some msg -> raise (Poisoned msg)
   | None -> ());
  Mutex.lock t.lock;
  let fired =
    try
      check_poison t;
      invalidate_gates t;
      ignore (drain_subs t);
      (try fire_one t with Composer.Expansion_budget msg ->
        poison_locked t msg;
        false)
    with e -> unlock_raise t e
  in
  if fired then flush_wakes t;
  flush_kicks t;
  Mutex.unlock t.lock;
  fired

(* --- Elastic splice ----------------------------------------------------------
   Rewire the live composer under the engine lock: retire medium slots,
   append fresh ones, move the boundary. The composer validates quiescence
   (label-bisimilarity of each retired medium's current state to its initial
   state) before mutating anything, so a [Composer.Not_quiescent] leaves the
   engine untouched and the caller free to retry. After a successful splice:
   ops queued on vanished vertices fail individually (targeted poison — the
   rest of the connector keeps running), future ops on them fail at drain
   time via [retired], the cell store grows to cover the added mediums'
   fresh slots, and every parked op is woken to re-examine the rewired
   engine. *)
let splice t ~sources ~sinks ~retire ~add =
  Mutex.lock t.lock;
  (try
     check_poison t;
     (* Install everything already published, so queued ops on soon-dead
        vertices are visible to the targeted-failure sweep below. *)
     ignore (drain_subs t);
     let dead = Composer.splice t.comp ~sources ~sinks ~retire ~add in
     t.retired <- Iset.union t.retired dead;
     let n = Composer.ncells t.comp in
     if n > Array.length t.cells then begin
       let cells = Array.make n None in
       Array.blit t.cells 0 cells 0 (Array.length t.cells);
       t.cells <- cells
     end;
     Iset.iter
       (fun v ->
         let msg = retired_msg v in
         (match Hashtbl.find_opt t.send_q v with
          | Some q ->
            Queue.iter (fun op -> Atomic.set op.s_fail (Some msg)) q;
            Queue.clear q;
            Hashtbl.remove t.send_q v
          | None -> ());
         (match Hashtbl.find_opt t.recv_q v with
          | Some q ->
            Queue.iter (fun op -> Atomic.set op.r_fail (Some msg)) q;
            Queue.clear q;
            Hashtbl.remove t.recv_q v
          | None -> ());
         t.base_pending <- Iset.remove v t.base_pending;
         (* Wake this vertex's parked owners before dropping the table
            entry — [wake_all] below iterates the table, so anything
            removed here would sleep through the broadcast. *)
         (match Hashtbl.find_opt t.waiters v with
          | Some w when w.w_parked > 0 -> Condition.broadcast w.w_cond
          | _ -> ());
         Hashtbl.remove t.waiters v)
       dead;
     invalidate_gates t;
     (* The product changed shape: wake everything so each parked op
        re-examines the rewired engine (failed ops raise, survivors re-park
        or complete against the new transitions). Splices are rare; the
        broadcast cost is irrelevant next to the rewiring itself. *)
     wake_all t;
     flush_wakes t
   with e -> unlock_raise t e);
  flush_kicks t;
  Mutex.unlock t.lock

let retired_vertices t =
  Mutex.lock t.lock;
  let r = t.retired in
  Mutex.unlock t.lock;
  r

(* Public poisoning propagates transitively through partitioned peers so a
   whole multi-region connector shuts down from any one engine; the atomic
   flag doubles as the visited set, so peer cycles terminate. Each engine's
   lock is taken with no other engine lock held. *)
let rec poison t msg =
  let first = Atomic.get t.poison_flag = None in
  if first then Atomic.set t.poison_flag (Some msg);
  Mutex.lock t.lock;
  if t.poisoned = None then begin
    t.poisoned <- Some msg;
    if !Obs.tracing then Obs.emit (obs_ring t) Obs.Poison ~a:0 ~b:0
  end;
  ignore (drain_subs t);
  wake_all t;
  let peers = t.peers in
  Mutex.unlock t.lock;
  if first then
    List.iter
      (fun p -> if Atomic.get p.poison_flag = None then poison p msg)
      peers

let poisoned_reason t =
  Mutex.lock t.lock;
  let r = t.poisoned in
  Mutex.unlock t.lock;
  r

let debug_dump t =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  let buf = Buffer.create 256 in
  invalidate_gates t;
  let pending = pending_now t in
  Buffer.add_string buf
    (Printf.sprintf "steps=%d poisoned=%s\n" (Atomic.get t.nsteps)
       (match t.poisoned with Some m -> m | None -> "no"));
  Buffer.add_string buf "pending:";
  Iset.iter
    (fun v -> Buffer.add_string buf (Printf.sprintf " %s#%d" (Vertex.name v) v))
    pending;
  Buffer.add_char buf '\n';
  Hashtbl.iter
    (fun v q ->
      Buffer.add_string buf
        (Printf.sprintf "send_q %s#%d len=%d\n" (Vertex.name v) v (Queue.length q)))
    t.send_q;
  Hashtbl.iter
    (fun v q ->
      Buffer.add_string buf
        (Printf.sprintf "recv_q %s#%d len=%d\n" (Vertex.name v) v (Queue.length q)))
    t.recv_q;
  (match Composer.candidates t.comp ~pending with
   | cands ->
     let degree =
       match Composer.current_out_degree t.comp with
       | d -> string_of_int d
       | exception Composer.Expansion_budget _ -> "?"
     in
     Buffer.add_string buf
       (Printf.sprintf "candidates(enabled-by-pending)=%d out-degree=%s\n"
          (Array.length cands) degree)
   | exception Composer.Expansion_budget msg ->
     Buffer.add_string buf
       (Printf.sprintf "candidates unavailable: expansion budget exhausted: %s\n"
          msg));
  (match
     Composer.candidates t.comp
       ~pending:(Iset.union (Composer.sources t.comp) (Composer.sinks t.comp))
   with
   | all ->
     Array.iter
       (fun (x : Composer.xtrans) ->
         Buffer.add_string buf
           (Printf.sprintf "  trans sync={%s} needs_send={%s} needs_recv={%s}\n"
              (String.concat "," (List.map Vertex.name (Iset.elements x.sync)))
              (String.concat "," (List.map Vertex.name (Iset.elements x.needs_send)))
              (String.concat "," (List.map Vertex.name (Iset.elements x.needs_recv)))))
       all
   | exception Composer.Expansion_budget _ -> ());
  Buffer.contents buf
