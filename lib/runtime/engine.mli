(** Connector execution engine.

    One engine owns one composed protocol (via a {!Composer.t}) plus the
    connector memory. Tasks interact through blocking [send]/[recv]
    operations on boundary vertices; the state machine runs inside the
    calling threads, under the engine lock, exactly like the generated code
    of the Reo-to-Java runtime: whenever an operation is registered, the
    caller repeatedly tries to fire enabled transitions until its own
    operation completes, and otherwise waits to be woken by another firing.

    External gates let a vertex be driven by another engine instead of a
    task (used by the partitioned runtime). *)

open Preo_support

type t

exception Poisoned of string
(** Raised by pending operations when the engine is shut down or a JIT state
    expansion blows its budget. *)

type gate = {
  gate_ready : unit -> bool;  (** may the gated vertex fire right now? *)
  gate_peek : unit -> Value.t;  (** for source gates: the value offered *)
  gate_commit : Value.t option -> unit;
      (** called on firing: [Some v] delivers to a sink gate, [None] consumes
          from a source gate *)
}

val create : ?gates:(Preo_automata.Vertex.t * gate) list -> Composer.t -> t

val send : t -> Preo_automata.Vertex.t -> Value.t -> unit
(** Blocking send at a boundary source vertex. *)

val recv : t -> Preo_automata.Vertex.t -> Value.t
(** Blocking receive at a boundary sink vertex. *)

val try_send : t -> Preo_automata.Vertex.t -> Preo_support.Value.t -> bool
(** Nonblocking send: fires whatever the offer enables and reports whether
    the operation completed; otherwise the offer is withdrawn. *)

val try_recv : t -> Preo_automata.Vertex.t -> Preo_support.Value.t option
(** Nonblocking receive (see {!try_send}). *)

val try_step : t -> bool
(** Fire at most one enabled transition without registering any operation
    (used by the partitioned runtime to react to gate changes and by tests).
    Returns whether a transition fired.
    @raise Poisoned if the engine has been shut down. *)

val steps : t -> int
(** Number of global execution steps (fired transitions) so far. *)

val cond_waits : t -> int
(** How often a blocked operation parked on the engine's condition
    variable (cheap always-on counter). *)

val peer_kicks : t -> int
(** Peer-engine nudges issued after firings (partitioned runtime). *)

val poison : t -> string -> unit
(** Wake all blocked operations with {!Poisoned}. *)

val poisoned_reason : t -> string option

val composer : t -> Composer.t

val set_peers : t -> t list -> unit
(** Other engines to nudge after each firing (partitioned runtime). *)

val set_on_fire : t -> (Preo_support.Iset.t -> unit) option -> unit
(** Tracing hook: called with each fired sync set, under the engine lock —
    keep it fast and reentrancy-free. *)

(**/**)

val trace_dump : unit -> string
(** Per-thread stage notes when PREO_ENGINE_TRACE is set. *)

val debug_dump : t -> string
(** Engine state snapshot (pending vertices, candidate count) for
    diagnosing stuck protocols; not part of the stable API. *)
