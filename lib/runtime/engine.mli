(** Connector execution engine.

    One engine owns one composed protocol (via a {!Composer.t}) plus the
    connector memory. Tasks interact through blocking [send]/[recv]
    operations on boundary vertices; the state machine runs inside the
    calling threads, under the engine lock, exactly like the generated code
    of the Reo-to-Java runtime: whenever an operation is registered, the
    caller repeatedly tries to fire enabled transitions until its own
    operation completes, and otherwise waits to be woken by another firing.

    External gates let a vertex be driven by another engine instead of a
    task (used by the partitioned runtime). *)

open Preo_support

type t

exception Poisoned of string
(** Raised by pending operations when the engine is shut down or a JIT state
    expansion blows its budget. *)

type gate = {
  gate_ready : unit -> bool;  (** may the gated vertex fire right now? *)
  gate_peek : unit -> Value.t;  (** for source gates: the value offered *)
  gate_commit : Value.t option -> unit;
      (** called on firing: [Some v] delivers to a sink gate, [None] consumes
          from a source gate *)
  gate_dump : unit -> string;
      (** one-line state description for stall reports (e.g. bridge-slot
          occupancy); must not block *)
}

(** {1 Deadlines and stall diagnosis} *)

type engine_snapshot = {
  es_steps : int;
  es_waits : int;
  es_kicks : int;
  es_pending : string list;  (** pending boundary vertices, ["name#id"] *)
  es_candidates : int;
      (** transitions enabled by the pending set; -1 if the composer's
          expansion budget is exhausted *)
  es_gates : string list;  (** per-gate dumps (partitioned bridge slots) *)
  es_poisoned : string option;
}

type stall_report = {
  sr_op : string;  (** ["send"] or ["recv"] *)
  sr_vertex : string;
  sr_waited : float;  (** seconds the operation had been parked *)
  sr_engines : engine_snapshot list;
      (** the blocked operation's engine first, then its partitioned peers *)
}
(** Snapshot of a blocked operation's engine (and its peers) taken when a
    deadline expired or the stall watchdog tripped: the runtime counterpart
    of [preoc verify]'s static deadlock counterexample. *)

exception Timed_out of stall_report
(** Raised by [send]/[recv] whose [?deadline] expired. *)

val pp_stall_report : Format.formatter -> stall_report -> unit
val string_of_stall_report : stall_report -> string

val last_stall : t -> stall_report option
(** Most recent stall report recorded against this engine (by a deadline
    expiry, or by the watchdog when {!Config.stall_threshold} is set). *)

val stalls : t -> int
(** Stall reports recorded so far (watchdog trips + deadline expiries). *)

val create :
  ?gates:(Preo_automata.Vertex.t * gate) list -> ?name:string -> Composer.t -> t
(** [name] (default ["engine"]) labels this engine's trace lane in
    {!Preo_obs} exports. *)

val obs_ring : t -> Preo_obs.Obs.ring
(** This engine's trace ring (created on first use). Events are recorded
    only while [Preo_obs.Obs.tracing] is set. *)

val send : ?deadline:float -> t -> Preo_automata.Vertex.t -> Value.t -> unit
(** Blocking send at a boundary source vertex. [deadline] is an absolute
    Unix time; when it expires before the protocol fires, the pending
    operation is withdrawn (later firings cannot complete into the dead
    slot) and {!Timed_out} is raised with a stall report. *)

val recv : ?deadline:float -> t -> Preo_automata.Vertex.t -> Value.t
(** Blocking receive at a boundary sink vertex (deadline as in {!send}). *)

val send_opt :
  ?deadline:float ->
  t ->
  Preo_automata.Vertex.t ->
  Value.t ->
  (unit, stall_report) result
(** Like {!send} but returns [Error report] instead of raising on expiry. *)

val recv_opt :
  ?deadline:float ->
  t ->
  Preo_automata.Vertex.t ->
  (Value.t, stall_report) result

val send_many : t -> Preo_automata.Vertex.t -> Value.t list -> unit
(** Batch send: publish every value's operation in one shot (submission
    order preserved) and block behind the {e last} one only — operations on
    one vertex complete in FIFO order, so the last completing implies all
    did. One lock-free publication per op, at most one park path for the
    whole batch. No deadline: a partially completed batch has no sensible
    withdraw semantics — under the global stall watchdog
    ({!Config.stall_threshold}) a slow batch records stall reports
    ({!last_stall}, the [st_stalls] counter) and keeps waiting. The empty
    batch ([[]]) is a no-op: callers computing batch sizes at run time (as
    churn code does) need no special-casing. *)

val recv_many : t -> Preo_automata.Vertex.t -> int -> Value.t list
(** Batch receive of [k] values, in arrival order (see {!send_many}).
    [k <= 0] is a no-op returning [[]]. *)

val try_send : t -> Preo_automata.Vertex.t -> Preo_support.Value.t -> bool
(** Nonblocking send: fires whatever the offer enables and reports whether
    the operation completed; otherwise the offer is withdrawn. *)

val try_recv : t -> Preo_automata.Vertex.t -> Preo_support.Value.t option
(** Nonblocking receive (see {!try_send}). *)

val try_step : t -> bool
(** Fire at most one enabled transition without registering any operation
    (used by the partitioned runtime to react to gate changes and by tests).
    Returns whether a transition fired.
    @raise Poisoned if the engine has been shut down. *)

val steps : t -> int
(** Number of global execution steps (fired transitions) so far. *)

val cond_waits : t -> int
(** How often a blocked operation parked on its vertex's condition
    variable (cheap always-on counter). *)

val peer_kicks : t -> int
(** Peer-engine nudges issued after firings (partitioned runtime). *)

val wakes_targeted : t -> int
(** Per-vertex wake signals issued by drive loops: each counts one vertex
    whose waiters were signalled because their operation completed. *)

val wakes_spurious : t -> int
(** Wakes after which the woken operation re-parked without the engine
    having made progress — the thundering-herd cost targeted wakeups
    exist to eliminate. *)

val wakes_broadcast : t -> int
(** Fallback broadcasts that woke every parked operation (poison delivery,
    kick-round cap, shutdown); correctness backstop, not a fast path. *)

val mpsc_ops : t -> int
(** Operations that went through the lock-free submission queue (every
    blocking send/recv; try-ops and gate traffic bypass it). *)

val mpsc_batches : t -> int
(** Nonempty drains of the submission queue; [mpsc_ops / mpsc_batches] is
    the mean submission batch size — the amortization the MPSC queue
    buys. *)

val mpsc_fast : t -> int
(** Operations completed on the lock-free fast path: the submitting task
    polled its op's completion flag and never took the engine mutex. *)

val batch_fires : t -> int
(** Extra transition firings obtained by replaying a committed guard-free
    self-loop while its needed vertices stayed ready — firings beyond the
    one the candidate scan found (one scan, k data moves). *)

val compiled_fires : t -> int
(** Firings executed through a closure-compiled command
    ([Command.compile]): guard check + moves in one pre-bound call. *)

val interp_fires : t -> int
(** Firings executed through the interpreted guard/move walk — the
    fallback for unsolved-lazily or exotic (late-bound Datafun) commands,
    and everything when compilation is off ([PREO_COMPILE=0]). *)

val splice :
  t ->
  sources:Iset.t ->
  sinks:Iset.t ->
  retire:int list ->
  add:Preo_automata.Automaton.t list ->
  unit
(** Elastic splice (see {!Composer.splice}): retire the given medium slots,
    add the raw automata, move the boundary to [sources]/[sinks] — all
    under the engine lock, against the live product. Quiescence of retired
    mediums is validated before anything mutates, so
    {!Composer.Not_quiescent} leaves the engine unchanged (retry once
    in-flight exchanges drain). On success: operations pending on vanished
    vertices fail with {!Poisoned} {e individually} (targeted poison — the
    rest of the connector keeps running), later operations on them (stale
    ports) fail at submission-drain time, the connector memory grows to
    cover the added mediums' cells, and every parked operation is woken to
    re-examine the rewired engine. *)

val retired_vertices : t -> Iset.t
(** Vertices removed by elastic splices so far: operations on them fail
    immediately instead of queueing forever. *)

val poison : t -> string -> unit
(** Wake all blocked operations with {!Poisoned}. Propagates transitively
    to partitioned peer engines, so the message (including any attached
    stall report) reaches tasks blocked on sibling regions. *)

val poisoned_reason : t -> string option

val composer : t -> Composer.t

val set_peers : t -> t list -> unit
(** Other engines this one may need to nudge (partitioned runtime): the
    poison-propagation set and the fallback kick target when a gate commit
    cannot be attributed to a specific peer. *)

val set_gate_peers : t -> (Preo_automata.Vertex.t * t) list -> unit
(** Which peer engine shares each gate's bridge. A firing that commits to a
    mapped gate kicks exactly that peer; gates left unmapped degrade to
    kicking every peer from {!set_peers}. *)

val set_on_fire : t -> (Preo_support.Iset.t -> unit) option -> unit
(** Tracing hook: called with each fired sync set, under the engine lock —
    keep it fast and reentrancy-free. *)

(**/**)

val trace_dump : unit -> string
(** Per-thread stage notes when PREO_ENGINE_TRACE is set. The table holds
    one entry per thread with an in-flight operation; entries are removed
    when the operation finishes, so an idle system dumps empty. *)

val set_op_trace : bool -> unit
(** Toggle the per-thread stage notes at runtime (same switch as the
    PREO_ENGINE_TRACE environment variable). *)

val debug_dump : t -> string
(** Engine state snapshot (pending vertices, candidate count) for
    diagnosing stuck protocols; not part of the stable API. *)
