open Preo_support
open Preo_automata
module Obs = Preo_obs.Obs

(* All bridge slots of the process share one trace lane. The two gate sides
   commit under two different engine locks, so this ring needs its own. *)
let bridge_ring : Obs.ring option ref = ref None
let bridge_ring_lock = Mutex.create ()

let get_bridge_ring () =
  match !bridge_ring with
  | Some r -> r
  | None ->
    Mutex.lock bridge_ring_lock;
    let r =
      match !bridge_ring with
      | Some r -> r
      | None ->
        let r = Obs.create_ring ~locked:true "bridges" in
        bridge_ring := Some r;
        r
    in
    Mutex.unlock bridge_ring_lock;
    r

type region = {
  mediums : Automaton.t list;
  r_sources : Iset.t;
  r_sinks : Iset.t;
  gates : (Vertex.t * Engine.gate) list;
  bridge_peers : int list;
}

type plan = { regions : region array; nbridges : int }

let is_plain_fifo1 (a : Automaton.t) =
  if
    a.nstates = 2 && a.initial = 0
    && Iset.cardinal a.sources = 1
    && Iset.cardinal a.sinks = 1
    && Array.length a.trans.(0) = 1
    && Array.length a.trans.(1) = 1
  then begin
    let tail = Iset.choose a.sources and head = Iset.choose a.sinks in
    let t0 = a.trans.(0).(0) and t1 = a.trans.(1).(0) in
    if
      t0.target = 1 && t1.target = 0
      && Iset.equal t0.sync (Iset.singleton tail)
      && Iset.equal t1.sync (Iset.singleton head)
    then Some (tail, head)
    else None
  end
  else None

(* A single-place slot bridging two engines. [Atomic] gives the necessary
   memory ordering; mutual exclusion follows from the slot being
   single-producer single-consumer: the producing engine only acts when the
   slot is empty, the consuming engine only when it is full. *)
let make_slot ~tail ~head =
  let slot : Value.t option Atomic.t = Atomic.make None in
  (* Slot occupancy feeds stall reports: a deadline expiring in one region
     shows whether the bridge into a peer region was full or starved. *)
  let dump side () =
    Printf.sprintf "%s-slot=%s" side
      (match Atomic.get slot with Some _ -> "full" | None -> "empty")
  in
  let producer_gate =
    {
      Engine.gate_ready = (fun () -> Atomic.get slot = None);
      gate_peek = (fun () -> invalid_arg "producer gate has no value");
      gate_commit =
        (fun v ->
          match v with
          | Some value ->
            Atomic.set slot (Some value);
            if !Obs.tracing then
              Obs.emit (get_bridge_ring ()) Obs.Slot_put ~a:tail ~b:head
          | None -> invalid_arg "producer gate expects a value");
      gate_dump = dump "out";
    }
  in
  let consumer_gate =
    {
      Engine.gate_ready = (fun () -> Atomic.get slot <> None);
      gate_peek =
        (fun () ->
          match Atomic.get slot with
          | Some v -> v
          | None -> invalid_arg "consumer gate: slot empty");
      gate_commit =
        (fun v ->
          match v with
          | None ->
            Atomic.set slot None;
            if !Obs.tracing then
              Obs.emit (get_bridge_ring ()) Obs.Slot_take ~a:head ~b:tail
          | Some _ -> invalid_arg "consumer gate consumes, not delivers");
      gate_dump = dump "in";
    }
  in
  (producer_gate, consumer_gate)

let split ~sources ~sinks (mediums : Automaton.t list) =
  let boundary = Iset.union sources sinks in
  let candidates0, solids0 =
    List.partition
      (fun a ->
        match is_plain_fifo1 a with
        | Some (tail, head) ->
          (* Only cut fifos whose both ends are internal joints. *)
          (not (Iset.mem tail boundary)) && not (Iset.mem head boundary)
        | None -> false)
      mediums
  in
  (* Every vertex of a remaining bridge must belong to some solid region.
     Vertices shared between two candidate fifos (fifo-to-fifo chains)
     therefore force one of the two to be kept solid: a greedy vertex cover
     on the candidate-adjacency graph decides which. *)
  let candidates0 = Array.of_list candidates0 in
  let nc = Array.length candidates0 in
  let owned_by_solid : (Vertex.t, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (a : Automaton.t) ->
      Iset.iter (fun v -> Hashtbl.replace owned_by_solid v ()) a.vertices)
    solids0;
  let promoted = Array.make nc false in
  let touches : (Vertex.t, int list) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun i (a : Automaton.t) ->
      Iset.iter
        (fun v ->
          Hashtbl.replace touches v
            (i :: (try Hashtbl.find touches v with Not_found -> [])))
        a.vertices)
    candidates0;
  let edges = ref [] in
  Hashtbl.iter
    (fun v is ->
      if not (Hashtbl.mem owned_by_solid v) then
        match is with
        | [ i ] -> promoted.(i) <- true (* dangling end: keep solid *)
        | [ i; j ] -> edges := (i, j) :: !edges
        | _ -> List.iter (fun i -> promoted.(i) <- true) is)
    touches;
  let degree = Array.make nc 0 in
  List.iter
    (fun (i, j) ->
      degree.(i) <- degree.(i) + 1;
      degree.(j) <- degree.(j) + 1)
    !edges;
  let remaining = ref !edges in
  let uncovered (i, j) = (not promoted.(i)) && not promoted.(j) in
  while List.exists uncovered !remaining do
    (* Promote the max-degree endpoint of some uncovered edge. *)
    let i, j = List.find uncovered !remaining in
    let pick = if degree.(i) >= degree.(j) then i else j in
    promoted.(pick) <- true;
    remaining := List.filter uncovered !remaining
  done;
  let candidates = ref [] and solids = ref solids0 in
  Array.iteri
    (fun i a ->
      if promoted.(i) then solids := a :: !solids
      else candidates := a :: !candidates)
    candidates0;
  let candidates = !candidates and solids = !solids in
  (* Union-find over solid mediums through shared vertices. *)
  let solids = Array.of_list solids in
  let n = Array.length solids in
  if n = 0 then begin
    (* Nothing to anchor regions on; fall back to a single region. *)
    let gates = [] in
    {
      regions =
        [|
          {
            mediums;
            r_sources = sources;
            r_sinks = sinks;
            gates;
            bridge_peers = [];
          };
        |];
      nbridges = 0;
    }
  end
  else begin
    let uf = Union_find.create n in
    let owner : (Vertex.t, int) Hashtbl.t = Hashtbl.create 64 in
    Array.iteri
      (fun i (a : Automaton.t) ->
        Iset.iter
          (fun v ->
            match Hashtbl.find_opt owner v with
            | Some j -> Union_find.union uf i j
            | None -> Hashtbl.add owner v i)
          a.vertices)
      solids;
    (* Decide each candidate fifo: bridge if its ends lie in two different
       components, otherwise return it to its (single) region. *)
    let region_of_vertex v =
      match Hashtbl.find_opt owner v with
      | Some i -> Some (Union_find.find uf i)
      | None -> None
    in
    let bridges = ref [] and returned = ref [] in
    List.iter
      (fun (f : Automaton.t) ->
        match is_plain_fifo1 f with
        | None -> assert false
        | Some (tail, head) -> begin
          match (region_of_vertex tail, region_of_vertex head) with
          | Some rt, Some rh when rt <> rh -> bridges := (f, tail, head, rt, rh) :: !bridges
          | _ -> returned := f :: !returned
        end)
      candidates;
    (* Materialize regions. *)
    let reps = Hashtbl.create 8 in
    let region_ids = ref [] in
    for i = n - 1 downto 0 do
      let r = Union_find.find uf i in
      if not (Hashtbl.mem reps r) then begin
        Hashtbl.add reps r ();
        region_ids := r :: !region_ids
      end
    done;
    let region_ids = Array.of_list !region_ids in
    let index_of_rep r =
      let rec go i = if region_ids.(i) = r then i else go (i + 1) in
      go 0
    in
    let nregions = Array.length region_ids in
    let r_mediums = Array.make nregions [] in
    let r_sources = Array.make nregions Iset.empty in
    let r_sinks = Array.make nregions Iset.empty in
    let r_gates = Array.make nregions [] in
    let r_peers = Array.make nregions [] in
    Array.iteri
      (fun i (a : Automaton.t) ->
        let r = index_of_rep (Union_find.find uf i) in
        r_mediums.(r) <- a :: r_mediums.(r))
      solids;
    List.iter
      (fun (f : Automaton.t) ->
        match is_plain_fifo1 f with
        | Some (tail, _) -> begin
          (* Returned fifos keep living in the region of their tail (or any
             region if dangling). *)
          let r =
            match region_of_vertex tail with
            | Some rep -> index_of_rep rep
            | None -> 0
          in
          r_mediums.(r) <- f :: r_mediums.(r)
        end
        | None -> assert false)
      !returned;
    (* Boundary vertices belong to the region that mentions them. *)
    let assign_boundary v =
      let rec find r =
        if r >= nregions then None
        else if
          List.exists (fun (a : Automaton.t) -> Iset.mem v a.vertices) r_mediums.(r)
        then Some r
        else find (r + 1)
      in
      find 0
    in
    Iset.iter
      (fun v ->
        match assign_boundary v with
        | Some r -> r_sources.(r) <- Iset.add v r_sources.(r)
        | None -> r_sources.(0) <- Iset.add v r_sources.(0))
      sources;
    Iset.iter
      (fun v ->
        match assign_boundary v with
        | Some r -> r_sinks.(r) <- Iset.add v r_sinks.(r)
        | None -> r_sinks.(0) <- Iset.add v r_sinks.(0))
      sinks;
    (* Bridges: the tail region treats the fifo's tail vertex as a gated
       sink (it pushes into the slot); the head region treats the head
       vertex as a gated source. *)
    let nbridges = List.length !bridges in
    List.iter
      (fun (_f, tail, head, rep_t, rep_h) ->
        let rt = index_of_rep rep_t and rh = index_of_rep rep_h in
        let producer_gate, consumer_gate = make_slot ~tail ~head in
        r_sinks.(rt) <- Iset.add tail r_sinks.(rt);
        r_gates.(rt) <- (tail, producer_gate) :: r_gates.(rt);
        r_sources.(rh) <- Iset.add head r_sources.(rh);
        r_gates.(rh) <- (head, consumer_gate) :: r_gates.(rh);
        if not (List.mem rh r_peers.(rt)) then r_peers.(rt) <- rh :: r_peers.(rt);
        if not (List.mem rt r_peers.(rh)) then r_peers.(rh) <- rt :: r_peers.(rh))
      !bridges;
    {
      regions =
        Array.init nregions (fun r ->
            {
              mediums = r_mediums.(r);
              r_sources = r_sources.(r);
              r_sinks = r_sinks.(r);
              gates = r_gates.(r);
              bridge_peers = r_peers.(r);
            });
      nbridges;
    }
  end
