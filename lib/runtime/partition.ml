open Preo_support
open Preo_automata
module Obs = Preo_obs.Obs

(* All bridge slots of the process share one trace lane. The two gate sides
   commit under two different engine locks, so this ring needs its own. *)
let bridge_ring : Obs.ring option ref = ref None
let bridge_ring_lock = Mutex.create ()

let get_bridge_ring () =
  match !bridge_ring with
  | Some r -> r
  | None ->
    Mutex.lock bridge_ring_lock;
    let r =
      match !bridge_ring with
      | Some r -> r
      | None ->
        let r = Obs.create_ring ~locked:true "bridges" in
        bridge_ring := Some r;
        r
    in
    Mutex.unlock bridge_ring_lock;
    r

type region = {
  mediums : Automaton.t list;
  r_sources : Iset.t;
  r_sinks : Iset.t;
  gates : (Vertex.t * Engine.gate) list;
  bridge_peers : int list;
  gate_peers : (Vertex.t * int) list;
}

(* --- Cut-shape recognition -------------------------------------------------

   A medium can be cut out of the synchronous product and replaced by a
   native bridge when no transition ever synchronizes its source side with
   its sink side: the two sides then never fire together, so the product
   across the medium never needs to be computed (Jongmans–Santini–Arbab
   2015). Three recognized shapes, in order of preference:

   - [Cut_queue]: fifo1 (empty or initially full) — a lock-free SPSC slot.
     Chains of these collapse into one queue of summed capacity.
   - [Cut_auto]: any other single-producer single-consumer medium whose
     states are "modal": every state's transitions all consume (sync =
     {tail}) or all emit (sync = {head}), never mixed and never both in one
     sync. Modality is what makes the interpreted bridge safe: while the
     consumer side is between peek and commit the automaton sits in an
     all-head state, where the producer has no enabled transition — and
     symmetrically — so the two engines can never interleave on the bridge,
     and cached gate readiness only ever flips ON from the outside (the
     invariant the engine's gate cache relies on). *)

type cut_shape =
  | Cut_queue of {
      q_tail : Vertex.t;
      q_head : Vertex.t;
      q_cap : int;
      q_init : Value.t list;  (** first element = next to pop *)
    }
  | Cut_auto of {
      a_tail : Vertex.t;
      a_head : Vertex.t;
      a_auto : Automaton.t;  (** label-optimized, cells densely renumbered *)
    }

(* A realized cut, in plan order: cut index [i] is position [i] of this
   array. The ordering is deterministic for a given (mediums, domains,
   sequentialize) input — two processes that build the same connector from
   the same source agree on every cut and region index, which is what lets
   the shard fabric name its wire channels by cut index alone. *)
type cut = { c_shape : cut_shape; c_tail_region : int; c_head_region : int }

type plan = {
  regions : region array;
  cuts : cut array;
  nbridges : int;
  nfused : int;
}

let is_plain_fifo1 (a : Automaton.t) =
  if
    a.nstates = 2 && a.initial = 0
    && Iset.cardinal a.sources = 1
    && Iset.cardinal a.sinks = 1
    && Array.length a.trans.(0) = 1
    && Array.length a.trans.(1) = 1
  then begin
    let tail = Iset.choose a.sources and head = Iset.choose a.sinks in
    let t0 = a.trans.(0).(0) and t1 = a.trans.(1).(0) in
    if
      t0.target = 1 && t1.target = 0
      && Iset.equal t0.sync (Iset.singleton tail)
      && Iset.equal t1.sync (Iset.singleton head)
    then Some (tail, head)
    else None
  end
  else None

(* The initially-full fifo1 built by [Prim]: state 0 emits a constant, then
   the automaton is a plain fifo1 over states 1 (empty) / 2 (full). *)
let is_full_fifo1 (a : Automaton.t) =
  if
    a.nstates = 3 && a.initial = 0
    && Iset.cardinal a.sources = 1
    && Iset.cardinal a.sinks = 1
    && Array.length a.trans.(0) = 1
    && Array.length a.trans.(1) = 1
    && Array.length a.trans.(2) = 1
  then begin
    let tail = Iset.choose a.sources and head = Iset.choose a.sinks in
    let t0 = a.trans.(0).(0) and t1 = a.trans.(1).(0) and t2 = a.trans.(2).(0) in
    if
      t0.target = 1 && t1.target = 2 && t2.target = 1
      && Iset.equal t0.sync (Iset.singleton head)
      && Iset.equal t1.sync (Iset.singleton tail)
      && Iset.equal t2.sync (Iset.singleton head)
    then
      match t0.constr with
      | [ Constr.Eq (Constr.Port h, Constr.Const x) ]
      | [ Constr.Eq (Constr.Const x, Constr.Port h) ]
        when Vertex.equal h head ->
        Some (tail, head, x)
      | _ -> None
    else None
  end
  else None

(* The general modal SPSC shape (see the module comment above). Structural
   prechecks first; only then label-optimize and demand that nothing was
   dropped (a dropped transition means a state could look ready without
   being fireable) and every command is guard-free (a failing guard at
   commit time could not be rolled back). *)
let is_modal_spsc (a : Automaton.t) =
  if
    Iset.cardinal a.sources = 1
    && Iset.cardinal a.sinks = 1
    && a.nstates >= 1
  then begin
    let tail = Iset.choose a.sources and head = Iset.choose a.sinks in
    if
      Vertex.equal tail head
      || not (Iset.equal a.vertices (Iset.of_list [ tail; head ]))
    then None
    else begin
      let stail = Iset.singleton tail and shead = Iset.singleton head in
      let modal =
        Array.for_all
          (fun ts ->
            Array.length ts > 0
            &&
            let is_tail = Iset.equal ts.(0).Automaton.sync stail in
            Array.for_all
              (fun (tr : Automaton.trans) ->
                Iset.equal tr.sync (if is_tail then stail else shead))
              ts)
          a.trans
      in
      if not modal then None
      else begin
        let opt = Automaton.optimize_labels a in
        let intact =
          Automaton.num_transitions opt = Automaton.num_transitions a
          && Array.for_all
               (Array.for_all (fun (tr : Automaton.trans) ->
                    match tr.command with
                    | Some cmd -> Array.length cmd.Command.guards = 0
                    | None -> false))
               opt.trans
        in
        if intact then Some (tail, head, opt) else None
      end
    end
  end
  else None

let classify (a : Automaton.t) =
  match is_plain_fifo1 a with
  | Some (tail, head) ->
    Some (Cut_queue { q_tail = tail; q_head = head; q_cap = 1; q_init = [] })
  | None -> begin
    match is_full_fifo1 a with
    | Some (tail, head, x) ->
      Some (Cut_queue { q_tail = tail; q_head = head; q_cap = 1; q_init = [ x ] })
    | None -> begin
      match is_modal_spsc a with
      | Some (tail, head, opt) ->
        (* Dense cell renumbering so the bridge carries a small array. *)
        let ids = Iset.elements opt.cells in
        let tbl = Hashtbl.create 8 in
        List.iteri (fun i c -> Hashtbl.add tbl c i) ids;
        let opt =
          if ids = [] then opt
          else Automaton.map_cells (fun c -> Hashtbl.find tbl c) opt
        in
        Some (Cut_auto { a_tail = tail; a_head = head; a_auto = opt })
      | None -> None
    end
  end

let shape_ends = function
  | Cut_queue q -> (q.q_tail, q.q_head)
  | Cut_auto a -> (a.a_tail, a.a_head)

(* --- Bridges ---------------------------------------------------------------- *)

(* A capacity-[cap] SPSC ring buffer bridging two engines, optionally
   prefilled (initially-full fifos); the buffer itself is {!Ring}, which
   carries the cross-domain memory ordering. Mutual exclusion follows from
   single-producer single-consumer: only the producing engine's gate
   pushes, only the consuming engine's gate pops, and each side acts only
   when its gate reports room / data. The engines' batched self-loop
   firing moves whole batches through these gates per candidate scan —
   bounded by the ring's occupancy/room, which the replay loop re-checks
   through [gate_ready] before every move. *)
let make_queue ~tail ~head ~cap ~init =
  let ring : Value.t Ring.t = Ring.create ~init cap in
  (* Queue occupancy feeds stall reports: a deadline expiring in one region
     shows whether the bridge into a peer region was full or starved. *)
  let dump side () =
    Printf.sprintf "%s-queue=%d/%d" side (Ring.length ring) cap
  in
  let producer_gate =
    {
      Engine.gate_ready = (fun () -> not (Ring.is_full ring));
      gate_peek = (fun () -> invalid_arg "producer gate has no value");
      gate_commit =
        (fun v ->
          match v with
          | Some value ->
            Ring.push ring value;
            if !Obs.tracing then
              Obs.emit (get_bridge_ring ()) Obs.Slot_put ~a:tail ~b:head
          | None -> invalid_arg "producer gate expects a value");
      gate_dump = dump "out";
    }
  in
  let consumer_gate =
    {
      Engine.gate_ready = (fun () -> not (Ring.is_empty ring));
      gate_peek = (fun () -> Ring.peek ring);
      gate_commit =
        (fun v ->
          match v with
          | None ->
            ignore (Ring.pop ring);
            if !Obs.tracing then
              Obs.emit (get_bridge_ring ()) Obs.Slot_take ~a:head ~b:tail
          | Some _ -> invalid_arg "consumer gate consumes, not delivers");
      gate_dump = dump "in";
    }
  in
  (producer_gate, consumer_gate)

(* An interpreted bridge running a modal SPSC automaton. The state is
   atomic so gate_ready stays lock-free; commits serialize on the mutex.
   Modality guarantees the consumer's peek and commit see the same state
   (the producer is disabled throughout), so the value peeked is the value
   popped. *)
let make_auto ~tail ~head (a : Automaton.t) =
  let ncells = max 1 (Iset.cardinal a.cells) in
  let cells : Value.t option array = Array.make ncells None in
  let state = Atomic.make a.initial in
  let lock = Mutex.create () in
  let first_sync_has v s =
    let ts = a.trans.(s) in
    Array.length ts > 0 && Iset.mem v ts.(0).Automaton.sync
  in
  (* Run the current state's first transition. Nondeterminism among the
     state's (same-polarity) transitions is resolved by always taking the
     first — peek and commit therefore agree on the chosen transition. *)
  let exec ~input ~commit =
    let tr = a.trans.(Atomic.get state).(0) in
    let cmd = match tr.Automaton.command with Some c -> c | None -> assert false in
    let staged = ref [] in
    let delivered = ref None in
    let env =
      {
        Command.read_send =
          (fun _ ->
            match input with
            | Some v -> v
            | None -> invalid_arg "auto bridge: no input value");
        read_cell =
          (fun c ->
            match cells.(c) with
            | Some v -> v
            | None -> invalid_arg "auto bridge: read from empty cell");
        write_cell = (fun c v -> staged := (c, v) :: !staged);
        deliver = (fun _ v -> delivered := Some v);
      }
    in
    Command.execute cmd env;
    if commit then begin
      List.iter (fun (c, v) -> cells.(c) <- Some v) !staged;
      Atomic.set state tr.target
    end;
    !delivered
  in
  let locked f =
    Mutex.lock lock;
    match f () with
    | r ->
      Mutex.unlock lock;
      r
    | exception e ->
      Mutex.unlock lock;
      raise e
  in
  let dump side () = Printf.sprintf "%s-auto-state=%d" side (Atomic.get state) in
  let producer_gate =
    {
      Engine.gate_ready = (fun () -> first_sync_has tail (Atomic.get state));
      gate_peek = (fun () -> invalid_arg "producer gate has no value");
      gate_commit =
        (fun v ->
          match v with
          | Some value ->
            locked (fun () -> ignore (exec ~input:(Some value) ~commit:true));
            if !Obs.tracing then
              Obs.emit (get_bridge_ring ()) Obs.Slot_put ~a:tail ~b:head
          | None -> invalid_arg "producer gate expects a value");
      gate_dump = dump "out";
    }
  in
  let consumer_gate =
    {
      Engine.gate_ready = (fun () -> first_sync_has head (Atomic.get state));
      gate_peek =
        (fun () ->
          match locked (fun () -> exec ~input:None ~commit:false) with
          | Some v -> v
          | None -> invalid_arg "auto bridge: head transition delivers nothing");
      gate_commit =
        (fun v ->
          match v with
          | None ->
            locked (fun () -> ignore (exec ~input:None ~commit:true));
            if !Obs.tracing then
              Obs.emit (get_bridge_ring ()) Obs.Slot_take ~a:head ~b:tail
          | Some _ -> invalid_arg "consumer gate consumes, not delivers");
      gate_dump = dump "in";
    }
  in
  (producer_gate, consumer_gate)

let gates_of_shape = function
  | Cut_queue { q_tail; q_head; q_cap; q_init } ->
    make_queue ~tail:q_tail ~head:q_head ~cap:q_cap ~init:q_init
  | Cut_auto { a_tail; a_head; a_auto } ->
    make_auto ~tail:a_tail ~head:a_head a_auto

(* The relay medium synthesized for a cut whose fifo end is a connector
   boundary: a plain Sync between a fresh gate vertex and the boundary
   vertex, run on its own little engine, preserves the cut fifo's buffered
   semantics exactly (the buffering lives in the bridge queue). *)
let sync_medium g h =
  Automaton.make ~nstates:1 ~initial:0
    ~trans:
      [|
        [|
          {
            Automaton.sync = Iset.of_list [ g; h ];
            constr = [ Constr.Eq (Constr.Port h, Constr.Port g) ];
            command = None;
            target = 0;
          };
        |];
      |]
    ~sources:(Iset.singleton g) ~sinks:(Iset.singleton h)

(* --- Sequentialization -------------------------------------------------------

   PAPERS.md's "Toward Sequentializing Overparallelized Protocol Code": the
   splitter below happily cuts at every eligible fifo, but a cut only pays
   when the two sides can actually run concurrently. For a pair of solid
   components joined by cut queues, concurrency is decidable from a small
   abstraction: compose each side's mediums, hide everything except the
   pair's cut ends, and run the two interface automata against the cut
   occupancies. If no reachable state of that product enables both sides at
   once, the cross-cut traffic is strictly alternating — the regions would
   only ever take turns, and every queue slot, wake signal and drive-loop
   pass on the bridge is pure overhead. Such pairs are fused back into one
   region.

   Conservative in the right direction: hiding over-approximates each
   side's enabledness (external ports are assumed ready, data guards
   assumed true), so "alternating" under the abstraction implies
   alternating in every real execution. Every escape hatch — a silent
   interface transition (the side has work unrelated to this cut), a
   non-queue cut shape, a budget trip, an abstraction too large to explore
   — refuses the fusion and keeps the cut. Fusion never changes observable
   behaviour (the unfused split is just a runtime layout of the same
   product); the fused ≡ unfused suite certifies that. *)

let seq_iface_budget = 512
let seq_explore_budget = 4096

(* One cut queue between the pair, as the occupancy simulation sees it. *)
type seq_cut = {
  sc_tail : Vertex.t;
  sc_head : Vertex.t;
  sc_cap : int;
  sc_occ0 : int;
  sc_tail_in_a : bool;  (** the producing end lives in side A *)
}

let strictly_alternating meds_a meds_b (cuts : seq_cut list) =
  let cutverts =
    List.fold_left
      (fun acc c -> Iset.add c.sc_tail (Iset.add c.sc_head acc))
      Iset.empty cuts
  in
  let iface meds =
    let p =
      Product.all ~label:"sequentialize" ~max_states:seq_iface_budget
        ~max_trans:(4 * seq_iface_budget) ~max_seconds:0.05 meds
    in
    Automaton.trim (Automaton.hide (Iset.diff p.vertices cutverts) p)
  in
  match (iface meds_a, iface meds_b) with
  | exception Product.Budget_exceeded _ -> false
  | exception Invalid_argument _ -> false (* an empty side: nothing to prove *)
  | ia, ib ->
    let no_silent (a : Automaton.t) =
      Array.for_all
        (Array.for_all (fun (tr : Automaton.trans) ->
             not (Iset.is_empty tr.sync)))
        a.trans
    in
    no_silent ia && no_silent ib
    && begin
         let cuts = Array.of_list cuts in
         (* Occupancy feasibility + effect of one interface transition:
            pushing needs room, popping needs data; a side only ever
            touches its own end of a cut. *)
         let step occ ~in_a (tr : Automaton.trans) =
           let occ' = Array.copy occ in
           let ok = ref true in
           Array.iteri
             (fun i c ->
               let this_end =
                 if c.sc_tail_in_a = in_a then c.sc_tail else c.sc_head
               in
               if Iset.mem this_end tr.sync then
                 if Vertex.equal this_end c.sc_tail then begin
                   if occ'.(i) < c.sc_cap then occ'.(i) <- occ'.(i) + 1
                   else ok := false
                 end
                 else if occ'.(i) > 0 then occ'.(i) <- occ'.(i) - 1
                 else ok := false)
             cuts;
           if !ok then Some occ' else None
         in
         let seen = Hashtbl.create 64 in
         let key sa sb occ = (sa, sb, Array.to_list occ) in
         let frontier = Queue.create () in
         let occ0 = Array.map (fun c -> c.sc_occ0) cuts in
         Queue.push (ia.initial, ib.initial, occ0) frontier;
         Hashtbl.replace seen (key ia.initial ib.initial occ0) ();
         let refused = ref false in
         (try
            while not (Queue.is_empty frontier) do
              if Hashtbl.length seen > seq_explore_budget then begin
                refused := true;
                raise Exit
              end;
              let sa, sb, occ = Queue.pop frontier in
              let succs side_trans ~in_a mk =
                Array.fold_left
                  (fun acc (tr : Automaton.trans) ->
                    match step occ ~in_a tr with
                    | Some occ' -> mk tr.target occ' :: acc
                    | None -> acc)
                  [] side_trans
              in
              let sa_succs =
                succs ia.trans.(sa) ~in_a:true (fun t occ' -> (t, sb, occ'))
              in
              let sb_succs =
                succs ib.trans.(sb) ~in_a:false (fun t occ' -> (sa, t, occ'))
              in
              if sa_succs <> [] && sb_succs <> [] then begin
                (* both sides enabled at a reachable state: concurrent *)
                refused := true;
                raise Exit
              end;
              List.iter
                (fun ((sa', sb', occ') as s) ->
                  let k = key sa' sb' occ' in
                  if not (Hashtbl.mem seen k) then begin
                    Hashtbl.replace seen k ();
                    Queue.push s frontier
                  end)
                (sa_succs @ sb_succs)
            done
          with Exit -> ());
         not !refused
       end

(* --- The splitter ----------------------------------------------------------- *)

type chain = { members : Automaton.t list; shape : cut_shape }

let split ?(domains = 2) ?sequentialize ?gate_for ~sources ~sinks
    (mediums : Automaton.t list) =
  (* Fusion rides the compile switch: PREO_COMPILE=0 gives the unfused
     (reference) layout as well as the interpreted commands. *)
  let sequentialize = Config.effective_compile ?requested:sequentialize () in
  let boundary = Iset.union sources sinks in
  (* Classify every medium; eligibility (boundary ends, components) is
     decided later over the collapsed chains. *)
  let classified =
    List.map (fun (a : Automaton.t) -> (a, classify a)) mediums
  in
  let solids0 =
    List.filter_map
      (fun (a, c) -> if c = None then Some a else None)
      classified
  in
  let cand0 =
    Array.of_list
      (List.filter_map
         (fun (a, c) -> match c with Some s -> Some (a, s) | None -> None)
         classified)
  in
  let nc = Array.length cand0 in
  (* Vertex usage across all mediums, to find chain joints: a joint is an
     internal vertex touched by exactly two mediums, the head of one queue
     candidate and the tail of another. Any other vertex shared between
     candidates (fan-in/fan-out among cuttables, overlap with nothing to
     own it) demotes the candidates touching it — some region must own
     every vertex a bridge leaves behind. *)
  let uses : (Vertex.t, int list) Hashtbl.t = Hashtbl.create 64 in
  (* candidate indexes per vertex *)
  let solid_touches : (Vertex.t, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (a : Automaton.t) ->
      Iset.iter (fun v -> Hashtbl.replace solid_touches v ()) a.vertices)
    solids0;
  Array.iteri
    (fun i ((a : Automaton.t), _) ->
      Iset.iter
        (fun v ->
          Hashtbl.replace uses v
            (i :: (try Hashtbl.find uses v with Not_found -> [])))
        a.vertices)
    cand0;
  let demoted = Array.make nc false in
  (* next candidate whose tail is this vertex, when it's a proper joint *)
  let joint_next : (Vertex.t, int) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter
    (fun v is ->
      match is with
      | [] | [ _ ] -> ()
      | [ i; j ] when (not (Iset.mem v boundary)) && not (Hashtbl.mem solid_touches v)
        -> begin
        (* chainable iff head of one queue meets tail of the other *)
        let ends k = shape_ends (snd cand0.(k)) in
        let queue k = match snd cand0.(k) with Cut_queue _ -> true | _ -> false in
        let ti, hi = ends i and tj, hj = ends j in
        if queue i && queue j && Vertex.equal hi tj && Vertex.equal v hi then
          Hashtbl.replace joint_next v j
        else if queue i && queue j && Vertex.equal hj ti && Vertex.equal v hj
        then Hashtbl.replace joint_next v i
        else begin
          demoted.(i) <- true;
          demoted.(j) <- true
        end
      end
      | is -> List.iter (fun i -> demoted.(i) <- true) is)
    uses;
  let solids = ref solids0 in
  Array.iteri (fun i (a, _) -> if demoted.(i) then solids := a :: !solids) cand0;
  (* Build maximal chains over the surviving candidates: follow joint_next
     links; a candidate whose tail is a joint is not a chain start. Cycles
     (every member mid-chain) are kept solid — a pure fifo cycle has no
     component to anchor either cut end. *)
  let consumed = Array.make nc false in
  let tail_is_joint = Array.make nc false in
  Hashtbl.iter
    (fun _ j -> if not demoted.(j) then tail_is_joint.(j) <- true)
    joint_next;
  let collapse idxs =
    (* [idxs] tail-end first. Queue contents pop downstream first, so the
       collapsed init lists the head-end fifo's value(s) first. *)
    let qs =
      List.map
        (fun i ->
          match snd cand0.(i) with
          | Cut_queue { q_tail; q_head; q_cap; q_init } ->
            (q_tail, q_head, q_cap, q_init)
          | Cut_auto _ -> assert false)
        idxs
    in
    let tail, _, _, _ = List.hd qs in
    let _, head, _, _ = List.nth qs (List.length qs - 1) in
    let cap = List.fold_left (fun acc (_, _, c, _) -> acc + c) 0 qs in
    let init = List.concat (List.rev_map (fun (_, _, _, i) -> i) qs) in
    {
      members = List.map (fun i -> fst cand0.(i)) idxs;
      shape = Cut_queue { q_tail = tail; q_head = head; q_cap = cap; q_init = init };
    }
  in
  let chains = ref [] in
  for i = 0 to nc - 1 do
    if (not demoted.(i)) && (not consumed.(i)) && not tail_is_joint.(i) then begin
      let rec follow j acc =
        consumed.(j) <- true;
        let _, hj = shape_ends (snd cand0.(j)) in
        match Hashtbl.find_opt joint_next hj with
        | Some k when (not demoted.(k)) && not consumed.(k) -> follow k (j :: acc)
        | _ -> List.rev (j :: acc)
      in
      let idxs = follow i [] in
      match idxs with
      | [ j ] -> chains := { members = [ fst cand0.(j) ]; shape = snd cand0.(j) } :: !chains
      | _ -> chains := collapse idxs :: !chains
    end
  done;
  (* Leftover unconsumed candidates are mid-cycle: keep them solid. *)
  for i = 0 to nc - 1 do
    if (not demoted.(i)) && not consumed.(i) then solids := fst cand0.(i) :: !solids
  done;
  (* Peel boundary ends off multi-member chains: the end fifo returns to
     the solids (it anchors the boundary vertex in a region of its own),
     and the remaining interior — now with internal ends — stays a cut
     candidate. Single-member chains with one boundary end stay as relay
     candidates, decided per component below; both-boundary singles are
     never cut. *)
  let internal_cands = ref [] in
  let relay_cands = ref [] in
  List.iter
    (fun ch ->
      let rec peel ch =
        let t, h = shape_ends ch.shape in
        let tb = Iset.mem t boundary and hb = Iset.mem h boundary in
        match ch.members with
        | [] -> ()
        | [ _m ] ->
          if tb && hb then solids := ch.members @ !solids
          else if tb || hb then relay_cands := ch :: !relay_cands
          else internal_cands := ch :: !internal_cands
        | m_first :: rest when tb ->
          solids := m_first :: !solids;
          peel { members = rest; shape = reshape_after_peel_front ch }
        | _ when hb ->
          let rec split_last = function
            | [] -> assert false
            | [ x ] -> ([], x)
            | x :: xs ->
              let ys, last = split_last xs in
              (x :: ys, last)
          in
          let rest, m_last = split_last ch.members in
          solids := m_last :: !solids;
          peel { members = rest; shape = reshape_after_peel_back ch }
        | _ -> internal_cands := ch :: !internal_cands
      and reshape_after_peel_front ch =
        match (ch.shape, classify (List.hd ch.members)) with
        | ( Cut_queue { q_tail = _; q_head; q_cap; q_init },
            Some (Cut_queue { q_head = mh; q_cap = mc; q_init = mi; _ }) ) ->
          Cut_queue
            {
              q_tail = mh;
              q_head;
              q_cap = q_cap - mc;
              q_init =
                (* the peeled tail-end fifo held the upstream-most value(s):
                   drop them from the back of the init list *)
                (let keep = List.length q_init - List.length mi in
                 List.filteri (fun i _ -> i < keep) q_init);
            }
        | _ -> assert false
      and reshape_after_peel_back ch =
        let m_last = List.nth ch.members (List.length ch.members - 1) in
        match (ch.shape, classify m_last) with
        | ( Cut_queue { q_tail; q_head = _; q_cap; q_init },
            Some (Cut_queue { q_tail = mt; q_cap = mc; q_init = mi; _ }) ) ->
          Cut_queue
            {
              q_tail;
              q_head = mt;
              q_cap = q_cap - mc;
              q_init =
                (let drop = List.length mi in
                 List.filteri (fun i _ -> i >= drop) q_init);
            }
        | _ -> assert false
      in
      peel ch)
    !chains;
  let solids = Array.of_list !solids in
  let n = Array.length solids in
  if n = 0 then
    {
      regions =
        [|
          {
            mediums;
            r_sources = sources;
            r_sinks = sinks;
            gates = [];
            bridge_peers = [];
            gate_peers = [];
          };
        |];
      cuts = [||];
      nbridges = 0;
      nfused = 0;
    }
  else begin
    (* Union-find over solid mediums through shared vertices. *)
    let uf = Union_find.create n in
    let owner : (Vertex.t, int) Hashtbl.t = Hashtbl.create 64 in
    Array.iteri
      (fun i (a : Automaton.t) ->
        Iset.iter
          (fun v ->
            match Hashtbl.find_opt owner v with
            | Some j -> Union_find.union uf i j
            | None -> Hashtbl.add owner v i)
          a.vertices)
      solids;
    let region_of_vertex v =
      match Hashtbl.find_opt owner v with
      | Some i -> Some (Union_find.find uf i)
      | None -> None
    in
    (* Internal candidates: bridge iff the two ends lie in different solid
       components (a same-component cut buys nothing: the cut ends would
       still serialize on one engine), otherwise return the members to that
       component. *)
    let cuts = ref [] in
    (* (shape, members, tail_rep option, head_rep option); None = relay *)
    let returned = ref [] in
    List.iter
      (fun ch ->
        let t, h = shape_ends ch.shape in
        match (region_of_vertex t, region_of_vertex h) with
        | Some rt, Some rh when rt <> rh -> cuts := (ch, Some rt, Some rh) :: !cuts
        | _ -> returned := ch :: !returned)
      !internal_cands;
    (* Sequentialization: fuse component pairs whose cross-cut traffic is
       strictly alternating (see {!strictly_alternating} above). Greedy to a
       fixed point — a merged pair can itself alternate with a neighbour
       (the sequencer ring collapses to one region this way). The fused
       cuts' fifos return to the merged region as ordinary mediums. *)
    let nfused = ref 0 in
    if sequentialize then begin
      (* Everything currently anchored to a component, for its interface
         automaton: its solids, plus returned/relay chains living there (a
         chain with a boundary end is anchored at its internal end). *)
      let comp_mediums rep =
        let acc = ref [] in
        Array.iteri
          (fun i m -> if Union_find.find uf i = rep then acc := m :: !acc)
          solids;
        let anchored ch =
          let t, h = shape_ends ch.shape in
          let here v = region_of_vertex v = Some rep in
          if Iset.mem t boundary then here h
          else if Iset.mem h boundary then here t
          else here t || here h
        in
        List.iter (fun ch -> if anchored ch then acc := ch.members @ !acc) !returned;
        List.iter (fun ch -> if anchored ch then acc := ch.members @ !acc) !relay_cands;
        !acc
      in
      let changed = ref true in
      while !changed do
        changed := false;
        (* Group the surviving internal cuts by current component pair
           (reps re-resolved through the union-find after earlier fusions). *)
        let groups : (int * int, (chain * bool) list) Hashtbl.t =
          Hashtbl.create 8
        in
        List.iter
          (fun (ch, rt, rh) ->
            match (rt, rh) with
            | Some rt, Some rh ->
              let ra = Union_find.find uf rt and rb = Union_find.find uf rh in
              if ra <> rb then begin
                let a = min ra rb and b = max ra rb in
                Hashtbl.replace groups (a, b)
                  ((ch, ra = a)
                  :: (try Hashtbl.find groups (a, b) with Not_found -> []))
              end
            | _ -> ())
          !cuts;
        Hashtbl.iter
          (fun (a, b) chs ->
            if not !changed then begin
              let scuts =
                List.map
                  (fun (ch, tail_in_a) ->
                    match ch.shape with
                    | Cut_queue { q_tail; q_head; q_cap; q_init } ->
                      Some
                        {
                          sc_tail = q_tail;
                          sc_head = q_head;
                          sc_cap = q_cap;
                          sc_occ0 = List.length q_init;
                          sc_tail_in_a = tail_in_a;
                        }
                    | Cut_auto _ -> None)
                  chs
              in
              if
                List.for_all Option.is_some scuts
                && strictly_alternating (comp_mediums a) (comp_mediums b)
                     (List.filter_map Fun.id scuts)
              then begin
                let stay, gone =
                  List.partition
                    (fun (_, rt, rh) ->
                      match (rt, rh) with
                      | Some rt, Some rh ->
                        let ra = Union_find.find uf rt
                        and rb = Union_find.find uf rh in
                        (min ra rb, max ra rb) <> (a, b)
                      | _ -> true)
                    !cuts
                in
                cuts := stay;
                List.iter (fun (ch, _, _) -> returned := ch :: !returned) gone;
                Union_find.union uf a b;
                incr nfused;
                changed := true
              end
            end)
          groups
      done
    end;
    (* Relay candidates (exactly one boundary end): cut only when at least
       two of them hang off the same solid component AND the runtime has
       more than one domain to run the pieces on. Cutting a lone relay
       adds an engine and a bridge on a path that already serializes
       through that component — pure overhead (this is what keeps
       token_ring's per-station fifos fused with their Syncs). With two or
       more, the cut decouples siblings that previously contended on one
       engine (broadcast_fifo's and gather's per-task fifos) — but only if
       the decoupled pieces can actually run concurrently: on a single
       domain the extra regions just add bridge and wakeup traffic (the
       gather regression of PR 4), so [domains <= 1] keeps relays fused.
       Internal cuts above are kept regardless — they shrink per-region
       products, which pays even on one core. *)
    let by_comp : (int, chain list) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun ch ->
        let t, h = shape_ends ch.shape in
        let internal_end = if Iset.mem t boundary then h else t in
        match region_of_vertex internal_end with
        | Some rep ->
          Hashtbl.replace by_comp rep
            (ch :: (try Hashtbl.find by_comp rep with Not_found -> []))
        | None -> returned := ch :: !returned)
      !relay_cands;
    let relay_cuts = ref [] in
    Hashtbl.iter
      (fun rep chs ->
        if domains > 1 && List.length chs >= 2 then
          List.iter
            (fun ch ->
              let t, _ = shape_ends ch.shape in
              if Iset.mem t boundary then
                (* boundary tail: relay feeds the bridge *)
                relay_cuts := (ch, None, Some rep) :: !relay_cuts
              else relay_cuts := (ch, Some rep, None) :: !relay_cuts)
            chs
        else returned := chs @ !returned)
      by_comp;
    let all_cuts = !cuts @ !relay_cuts in
    (* Materialize the solid regions... *)
    let reps = Hashtbl.create 8 in
    let region_ids = ref [] in
    for i = n - 1 downto 0 do
      let r = Union_find.find uf i in
      if not (Hashtbl.mem reps r) then begin
        Hashtbl.add reps r ();
        region_ids := r :: !region_ids
      end
    done;
    let region_ids = Array.of_list !region_ids in
    let index_of_rep r =
      (* Re-canonicalize: cut records hold reps captured before the
         sequentializer's unions, which may since have merged away. *)
      let r = Union_find.find uf r in
      let rec go i = if region_ids.(i) = r then i else go (i + 1) in
      go 0
    in
    let nsolid = Array.length region_ids in
    (* ...plus one relay region per boundary-end cut. *)
    let nrelay =
      List.fold_left
        (fun acc (_, rt, rh) -> if rt = None || rh = None then acc + 1 else acc)
        0 all_cuts
    in
    let nregions = nsolid + nrelay in
    let r_mediums = Array.make nregions [] in
    let r_sources = Array.make nregions Iset.empty in
    let r_sinks = Array.make nregions Iset.empty in
    let r_gates = Array.make nregions [] in
    let r_peers = Array.make nregions [] in
    let r_gpeers = Array.make nregions [] in
    Array.iteri
      (fun i (a : Automaton.t) ->
        let r = index_of_rep (Union_find.find uf i) in
        r_mediums.(r) <- a :: r_mediums.(r))
      solids;
    (* Returned candidates keep living in the region of their tail (or
       head, or any region if fully dangling). *)
    List.iter
      (fun ch ->
        let t, h = shape_ends ch.shape in
        let r =
          match (region_of_vertex t, region_of_vertex h) with
          | Some rep, _ | None, Some rep -> index_of_rep rep
          | None, None -> 0
        in
        r_mediums.(r) <- ch.members @ r_mediums.(r))
      !returned;
    (* Boundary vertices claimed by relay regions are assigned there; the
       rest belong to whichever region's mediums mention them. *)
    let claimed : (Vertex.t, int) Hashtbl.t = Hashtbl.create 8 in
    let add_peer r p =
      if not (List.mem p r_peers.(r)) then r_peers.(r) <- p :: r_peers.(r)
    in
    (* Pass 1: resolve both region indices of every cut (synthesizing relay
       region ids) before any gate is built, so a [gate_for] override can see
       where each side of its cut will run. *)
    let next_relay = ref nsolid in
    let assigned =
      List.map
        (fun (ch, rt, rh) ->
          let tail_region =
            match rt with
            | Some rep -> index_of_rep rep
            | None ->
              let ridx = !next_relay in
              incr next_relay;
              ridx
          and head_region =
            match rh with
            | Some rep -> index_of_rep rep
            | None ->
              let ridx = !next_relay in
              incr next_relay;
              ridx
          in
          (ch, rt, rh, tail_region, head_region))
        all_cuts
    in
    (* Pass 2: materialize gates and wiring. A side whose rep is [None] is a
       synthesized relay: the gate moves to a fresh vertex bridged to the
       boundary end by a sync medium. [gate_for] (the shard fabric's hook)
       may replace the native SPSC gates of any cut with its own pair. *)
    List.iteri
      (fun idx (ch, rt, rh, tail_region, head_region) ->
        let tail, head = shape_ends ch.shape in
        let producer_gate, consumer_gate =
          match gate_for with
          | Some f -> (
            match f idx ch.shape ~tail_region ~head_region with
            | Some gates -> gates
            | None -> gates_of_shape ch.shape)
          | None -> gates_of_shape ch.shape
        in
        (match rt with
         | Some _ ->
           r_sinks.(tail_region) <- Iset.add tail r_sinks.(tail_region);
           r_gates.(tail_region) <- (tail, producer_gate) :: r_gates.(tail_region);
           r_gpeers.(tail_region) <- (tail, head_region) :: r_gpeers.(tail_region)
         | None ->
           (* boundary tail: synthesize the feeding relay *)
           let g = Vertex.fresh "bridge" in
           r_mediums.(tail_region) <- [ sync_medium tail g ];
           r_sources.(tail_region) <- Iset.singleton tail;
           Hashtbl.replace claimed tail tail_region;
           (* the producer gate moves to the relay's fresh vertex *)
           r_sinks.(tail_region) <- Iset.singleton g;
           r_gates.(tail_region) <- [ (g, producer_gate) ];
           r_gpeers.(tail_region) <- (g, head_region) :: r_gpeers.(tail_region));
        (match rh with
         | Some _ ->
           r_sources.(head_region) <- Iset.add head r_sources.(head_region);
           r_gates.(head_region) <- (head, consumer_gate) :: r_gates.(head_region);
           r_gpeers.(head_region) <- (head, tail_region) :: r_gpeers.(head_region)
         | None ->
           let g = Vertex.fresh "bridge" in
           r_mediums.(head_region) <- [ sync_medium g head ];
           r_sinks.(head_region) <- Iset.singleton head;
           Hashtbl.replace claimed head head_region;
           r_sources.(head_region) <- Iset.singleton g;
           r_gates.(head_region) <- [ (g, consumer_gate) ];
           r_gpeers.(head_region) <- (g, tail_region) :: r_gpeers.(head_region));
        add_peer tail_region head_region;
        add_peer head_region tail_region)
      assigned;
    let assign_boundary v =
      match Hashtbl.find_opt claimed v with
      | Some r -> Some r
      | None ->
        let rec find r =
          if r >= nregions then None
          else if
            List.exists
              (fun (a : Automaton.t) -> Iset.mem v a.vertices)
              r_mediums.(r)
          then Some r
          else find (r + 1)
        in
        find 0
    in
    Iset.iter
      (fun v ->
        if not (Hashtbl.mem claimed v) then
          match assign_boundary v with
          | Some r -> r_sources.(r) <- Iset.add v r_sources.(r)
          | None -> r_sources.(0) <- Iset.add v r_sources.(0))
      sources;
    Iset.iter
      (fun v ->
        if not (Hashtbl.mem claimed v) then
          match assign_boundary v with
          | Some r -> r_sinks.(r) <- Iset.add v r_sinks.(r)
          | None -> r_sinks.(0) <- Iset.add v r_sinks.(0))
      sinks;
    {
      regions =
        Array.init nregions (fun r ->
            {
              mediums = r_mediums.(r);
              r_sources = r_sources.(r);
              r_sinks = r_sinks.(r);
              gates = r_gates.(r);
              bridge_peers = r_peers.(r);
              gate_peers = r_gpeers.(r);
            });
      cuts =
        Array.of_list
          (List.map
             (fun (ch, _, _, tr, hr) ->
               { c_shape = ch.shape; c_tail_region = tr; c_head_region = hr })
             assigned);
      nbridges = List.length all_cuts;
      nfused = !nfused;
    }
  end
