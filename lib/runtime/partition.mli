(** Partitioned composition (extension; the fix the paper's §V-C points to,
    after Jongmans–Santini–Arbab 2015).

    A medium whose source side never fires synchronously with its sink side
    decouples the regions on its two sides: the product across it never
    needs to be computed. This module splits a connector's medium automata
    at such mediums into regions; each region runs on its own engine, and
    the cut mediums become native bridges (lock-free SPSC queues for fifo
    shapes, a small interpreted bridge for other modal SPSC automata). The
    per-region products stay small even when the monolithic product would
    have exponentially many transitions per state.

    Recognized cuts: empty fifo1s, initially-full fifo1s, chains of fifo1s
    (collapsed into one queue of the summed capacity), and any other
    single-source single-sink medium whose states are modal (each state
    either only consumes or only emits). A candidate with one boundary end
    is cut by synthesizing a tiny relay region that owns the boundary
    vertex — but only when at least two such candidates hang off the same
    region and more than one domain is available, so the cut buys
    parallelism rather than pure bridge overhead. *)

open Preo_support
open Preo_automata

type region = {
  mediums : Automaton.t list;
  r_sources : Iset.t;  (** task-facing sources plus incoming bridge ends *)
  r_sinks : Iset.t;
  gates : (Vertex.t * Engine.gate) list;
  bridge_peers : int list;  (** indices of regions adjacent via bridges *)
  gate_peers : (Vertex.t * int) list;
      (** per gate vertex, the region on the other side of its bridge (for
          targeted cross-engine kicks) *)
}

(** {1 Cut shapes} *)

type cut_shape =
  | Cut_queue of {
      q_tail : Vertex.t;
      q_head : Vertex.t;
      q_cap : int;
      q_init : Value.t list;  (** first element = next to pop *)
    }
  | Cut_auto of {
      a_tail : Vertex.t;
      a_head : Vertex.t;
      a_auto : Automaton.t;  (** label-optimized, cells densely renumbered *)
    }

type cut = { c_shape : cut_shape; c_tail_region : int; c_head_region : int }
(** A realized cut: its shape and the plan indices of the regions holding
    its tail (producer) and head (consumer) gates. *)

type plan = {
  regions : region array;
  cuts : cut array;
      (** in deterministic plan order: for a given (mediums, domains,
          sequentialize) input, two processes building the same connector
          agree on every cut and region index — the shard fabric names wire
          channels by cut index on the strength of this *)
  nbridges : int;
  nfused : int;
      (** component pairs the sequentializer merged back (regions the plan
          has {e fewer} than an unfused split would) *)
}

val split :
  ?domains:int ->
  ?sequentialize:bool ->
  ?gate_for:
    (int ->
    cut_shape ->
    tail_region:int ->
    head_region:int ->
    (Engine.gate * Engine.gate) option) ->
  sources:Iset.t ->
  sinks:Iset.t ->
  Automaton.t list ->
  plan
(** Always succeeds; when nothing can be cut the plan has one region and no
    bridges. [?domains] is the parallelism available to run the regions
    (default 2, i.e. assume parallelism): relay fan-out/fan-in cuts are
    skipped when [domains <= 1], since those cuts only pay when the
    decoupled siblings can actually run concurrently. Internal cuts are
    made regardless — except when [?sequentialize] (default
    [Config.effective_compile], i.e. rides [PREO_COMPILE]) proves a pair of
    regions strictly alternating across their cuts: such pairs are fused
    back into one region, eliminating their queues, wake traffic and drive
    loops ({!plan.nfused} counts the merges). Fusion is a layout decision
    only; observable behaviour is unchanged.

    [?gate_for] lets a placement layer substitute its own (producer,
    consumer) gate pair for any cut — called once per cut with the cut's
    plan index, shape and both resolved region indices; [None] keeps the
    native SPSC gates. This is how the shard fabric swaps a cross-process
    cut's queue for a bridge-backed channel. *)

(** {1 Cut-shape recognition (exposed for tests)} *)

val classify : Automaton.t -> cut_shape option
(** The shape a lone medium would be cut as, if its ends allow it: empty
    fifo1 / full fifo1 as capacity-1 queues, otherwise the general modal
    SPSC check. [None] means the medium always stays solid. *)

val is_plain_fifo1 : Automaton.t -> (Vertex.t * Vertex.t) option
(** Recognize an (empty) fifo1-shaped medium, returning (tail, head). *)
