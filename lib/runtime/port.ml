open Preo_support
open Preo_automata

type outport = { oe : Engine.t; ov : Vertex.t }
type inport = { ie : Engine.t; iv : Vertex.t }

let make_out oe ov = { oe; ov }
let make_in ie iv = { ie; iv }
let send ?deadline p (v : Value.t) = Engine.send ?deadline p.oe p.ov v
let recv ?deadline p = Engine.recv ?deadline p.ie p.iv
let send_opt ?deadline p (v : Value.t) = Engine.send_opt ?deadline p.oe p.ov v
let recv_opt ?deadline p = Engine.recv_opt ?deadline p.ie p.iv
let try_send p (v : Value.t) = Engine.try_send p.oe p.ov v
let try_recv p = Engine.try_recv p.ie p.iv
let out_vertex p = p.ov
let in_vertex p = p.iv
