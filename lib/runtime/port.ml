open Preo_support
open Preo_automata
module Obs = Preo_obs.Obs
module Metrics = Preo_obs.Metrics

type outport = { oe : Engine.t; ov : Vertex.t }
type inport = { ie : Engine.t; iv : Vertex.t }

let m_sends = Metrics.counter ~help:"blocking port sends" "port_sends_total"
let m_recvs = Metrics.counter ~help:"blocking port receives" "port_recvs_total"

let make_out oe ov = { oe; ov }
let make_in ie iv = { ie; iv }

let send ?deadline p (v : Value.t) =
  if !Obs.tracing then Metrics.incr m_sends;
  Engine.send ?deadline p.oe p.ov v

let recv ?deadline p =
  if !Obs.tracing then Metrics.incr m_recvs;
  Engine.recv ?deadline p.ie p.iv

let send_opt ?deadline p (v : Value.t) =
  if !Obs.tracing then Metrics.incr m_sends;
  Engine.send_opt ?deadline p.oe p.ov v

let recv_opt ?deadline p =
  if !Obs.tracing then Metrics.incr m_recvs;
  Engine.recv_opt ?deadline p.ie p.iv
let send_batch p (vs : Value.t list) =
  if !Obs.tracing then
    List.iter (fun _ -> Metrics.incr m_sends) vs;
  Engine.send_many p.oe p.ov vs

let recv_batch p k =
  if !Obs.tracing then
    for _ = 1 to k do Metrics.incr m_recvs done;
  Engine.recv_many p.ie p.iv k

let try_send p (v : Value.t) = Engine.try_send p.oe p.ov v
let try_recv p = Engine.try_recv p.ie p.iv
let out_vertex p = p.ov
let in_vertex p = p.iv
