(** Task-facing ports (the generalized Foster–Chandy model, Fig. 3).

    An outport accepts blocking [send] operations, an inport blocking [recv]
    operations; completion is decided entirely by the connector the port is
    linked to. *)

open Preo_support

type outport
type inport

val make_out : Engine.t -> Preo_automata.Vertex.t -> outport
val make_in : Engine.t -> Preo_automata.Vertex.t -> inport

val send : ?deadline:float -> outport -> Value.t -> unit
(** Blocks until the connector completes the operation. May raise
    {!Engine.Poisoned}, and {!Engine.Timed_out} when [deadline] (an
    absolute Unix time) expires first — the pending operation is withdrawn
    before raising, so the port stays usable. *)

val recv : ?deadline:float -> inport -> Value.t
(** Blocks until a datum is delivered (deadline as in {!send}). *)

val send_opt :
  ?deadline:float -> outport -> Value.t -> (unit, Engine.stall_report) result
(** Like {!send} but returns [Error report] instead of raising on expiry. *)

val recv_opt :
  ?deadline:float -> inport -> (Value.t, Engine.stall_report) result

val send_batch : outport -> Value.t list -> unit
(** Submit every value's send in one lock-free publication burst and block
    behind the last one only (FIFO completion makes that sufficient); see
    {!Engine.send_many}. No deadline variant. *)

val recv_batch : inport -> int -> Value.t list
(** Receive [k] values in arrival order, parking at most once; see
    {!Engine.recv_many}. *)

val try_send : outport -> Value.t -> bool
(** Nonblocking: completes the send iff the connector can take it now. *)

val try_recv : inport -> Value.t option
(** Nonblocking: returns a datum iff the connector can deliver one now. *)

val out_vertex : outport -> Preo_automata.Vertex.t
val in_vertex : inport -> Preo_automata.Vertex.t
