type backend = Automata | Coloring

let of_string s =
  match String.lowercase_ascii s with
  | "automata" -> Some Automata
  | "coloring" -> Some Coloring
  | _ -> None

let to_string = function Automata -> "automata" | Coloring -> "coloring"

let backend : backend option ref =
  ref
    (match Sys.getenv_opt "PREO_BACKEND" with
     | Some s -> of_string s
     | None -> None)

let set_backend b = backend := b

let effective ?requested () =
  match requested with
  | Some b -> b
  | None -> ( match !backend with Some b -> b | None -> Automata)

module type S = sig
  type t
  type xtrans

  val candidates : t -> pending:Preo_support.Iset.t -> xtrans array
  val commit : t -> xtrans -> unit
  val is_self_loop : t -> xtrans -> bool
  val ncells : t -> int
  val sources : t -> Preo_support.Iset.t
  val sinks : t -> Preo_support.Iset.t

  val splice :
    t ->
    sources:Preo_support.Iset.t ->
    sinks:Preo_support.Iset.t ->
    retire:int list ->
    add:Preo_automata.Automaton.t list ->
    Preo_support.Iset.t
end

(* Static conformance: every backend is reached through [Composer]'s
   strategies (S_aot/S_jit = automata, S_color = coloring), so one check
   covers all three. *)
module Conformance : S = Composer
