(** Round-scheduler (execution backend) selection.

    The engine is backend-agnostic: each drive iteration asks its composer
    for the rounds enabled by the pending operations, fires one, commits.
    {!S} is that contract — the slice of [Composer]'s interface the engine
    actually consumes. Both backends implement it through [Composer]'s
    strategies:

    - {!Automata} — the constraint-automata backends: ahead-of-time product
      ([Config.Existing] / [Composer.aot]) and lazy product expansion
      ([Config.New] / [Composer.jit]). A round is a transition of the
      (possibly lazily expanded) product automaton; expanding one state
      enumerates {e all} its rounds, which blows up exponentially on
      synchronized-choice connectors (§V-C).
    - {!Coloring} — connector coloring ([Composer.coloring], backed by
      [Preo_coloring.Coloring]): each resolution propagates flow/no-flow
      colors over the connector graph and stops after the first few
      consistent colorings, so per-round cost is proportional to graph
      size, not product size.

    Selection precedence: explicit [?backend] argument (to
    [Preo.instantiate] / [Connector.create] / [Driver.run_noop]) >
    process-wide default ({!set_backend}, or the [PREO_BACKEND] environment
    variable read at startup) > {!Automata}. *)

type backend = Automata | Coloring

val of_string : string -> backend option
(** Case-insensitive ["automata"] / ["coloring"]; [None] otherwise. *)

val to_string : backend -> string

val backend : backend option ref
(** Process-wide default, initialized from [PREO_BACKEND] (unrecognized
    values are ignored). [None] means {!Automata}. *)

val set_backend : backend option -> unit

val effective : ?requested:backend -> unit -> backend
(** Resolve the backend for one instantiation: [requested] wins, else the
    process-wide default, else {!Automata}. *)

(** The round-scheduler contract both backends implement (via [Composer]'s
    strategies — see [Sched.Conformance] in the implementation for the
    static check). [candidates] may raise the implementation's budget
    exception; the engine treats it as poison. *)
module type S = sig
  type t
  type xtrans

  val candidates : t -> pending:Preo_support.Iset.t -> xtrans array
  val commit : t -> xtrans -> unit
  val is_self_loop : t -> xtrans -> bool
  val ncells : t -> int
  val sources : t -> Preo_support.Iset.t
  val sinks : t -> Preo_support.Iset.t

  val splice :
    t ->
    sources:Preo_support.Iset.t ->
    sinks:Preo_support.Iset.t ->
    retire:int list ->
    add:Preo_automata.Automaton.t list ->
    Preo_support.Iset.t
end
