(* Process-wide counters of the sharded connector fabric (lib/dist/shard).
   They live here, not in lib/dist, so [Connector.stats] can report them
   without a runtime->dist dependency inversion — the same arrangement as
   the bridge RPC trace rings. All are monotone and process-global: a
   connector with no cross-process cuts reports zeros. *)

let batches = Atomic.make 0
let items = Atomic.make 0
let acks = Atomic.make 0
let reconnects = Atomic.make 0

let add_batch ~items:n =
  Atomic.incr batches;
  ignore (Atomic.fetch_and_add items n)

let add_acked n = ignore (Atomic.fetch_and_add acks n)
let add_reconnect () = Atomic.incr reconnects
