(** Process-wide counters of the sharded connector fabric.

    Incremented by [lib/dist]'s shard module, surfaced through
    [Connector.stats] as the [st_shard_*] fields (bench schema 9). Global by
    design: a shard link multiplexes the cut channels of one connector over
    one socket, but the counters aggregate every link in the process — a
    connector with no cross-process cuts reports zeros. *)

val batches : int Atomic.t
(** [Sh_batch] frames sent (each coalesces a whole flush of one channel). *)

val items : int Atomic.t
(** Values carried inside those batch frames. *)

val acks : int Atomic.t
(** Values acknowledged by the remote side (cumulative-ack deltas). *)

val reconnects : int Atomic.t
(** Successful reconnect+resume cycles after a link failure. *)

val add_batch : items:int -> unit
val add_acked : int -> unit
val add_reconnect : unit -> unit
