open Preo_support
open Preo_automata

type policy = First | Random of int

type t = {
  comp : Composer.t;
  cells : Value.t option array;
  send_q : (Vertex.t, Value.t Queue.t) Hashtbl.t;
  recv_q : (Vertex.t, int ref) Hashtbl.t;  (** waiting receive count *)
  mutable pending : Iset.t;
  rng : Rng.t option;
  mutable nsteps : int;
}

let composer_of ~config ~sources ~sinks mediums =
  let src_set = Iset.of_list (Array.to_list sources) in
  let snk_set = Iset.of_list (Array.to_list sinks) in
  match config with
  | Config.Existing { use_dispatch; optimize_labels; max_states; max_trans;
                      max_compile_seconds; true_synchronous } ->
    let large =
      Product.all ~max_states ~max_trans ~max_seconds:max_compile_seconds
        ~joint_independent:true_synchronous mediums
    in
    let keep = Iset.union src_set snk_set in
    let large =
      Automaton.trim (Automaton.hide (Iset.diff large.Automaton.vertices keep) large)
    in
    let large = { large with Automaton.sources = src_set; sinks = snk_set } in
    Composer.aot ~use_dispatch ~optimize_labels large
  | Config.New { optimize_labels; cache_capacity; expansion_budget;
                 true_synchronous; partition = _ } ->
    Composer.jit ~cache_capacity ~optimize_labels ~expansion_budget
      ~true_synchronous ~sources:src_set ~sinks:snk_set mediums

let create ?(config = Config.new_jit) ?(policy = First) ~sources ~sinks
    mediums =
  let comp = composer_of ~config ~sources ~sinks mediums in
  {
    comp;
    cells = Array.make (max 1 (Composer.ncells comp)) None;
    send_q = Hashtbl.create 16;
    recv_q = Hashtbl.create 16;
    pending = Iset.empty;
    rng = (match policy with First -> None | Random seed -> Some (Rng.create seed));
    nsteps = 0;
  }

let send_queue t v =
  match Hashtbl.find_opt t.send_q v with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Hashtbl.add t.send_q v q;
    q

let recv_count t v =
  match Hashtbl.find_opt t.recv_q v with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t.recv_q v r;
    r

let offer t v x =
  Queue.push x (send_queue t v);
  t.pending <- Iset.add v t.pending

let demand t v =
  incr (recv_count t v);
  t.pending <- Iset.add v t.pending

type event = {
  ev_sync : Iset.t;
  ev_delivered : (Vertex.t * Value.t) list;
  ev_consumed : Vertex.t list;
}

let try_transition t (x : Composer.xtrans) =
  let read_send v = Queue.peek (send_queue t v) in
  let read_cell c =
    match t.cells.(c) with
    | Some v -> v
    | None -> failwith "sim: read from empty cell"
  in
  let staged_cells = ref [] and delivered = ref [] in
  let env =
    {
      Command.read_send;
      read_cell;
      write_cell = (fun c v -> staged_cells := (c, v) :: !staged_cells);
      deliver = (fun v value -> delivered := (v, value) :: !delivered);
    }
  in
  match Composer.command_of t.comp x with
  | None -> None
  | Some cmd ->
    if not (Command.guards_hold cmd env) then None
    else begin
      Command.execute cmd env;
      List.iter (fun (c, v) -> t.cells.(c) <- Some v) !staged_cells;
      List.iter
        (fun (v, _) ->
          let r = recv_count t v in
          decr r;
          if !r = 0 then t.pending <- Iset.remove v t.pending)
        !delivered;
      let consumed = ref [] in
      Iset.iter
        (fun v ->
          consumed := v :: !consumed;
          let q = send_queue t v in
          ignore (Queue.pop q);
          if Queue.is_empty q then t.pending <- Iset.remove v t.pending)
        x.needs_send;
      Composer.commit t.comp x;
      t.nsteps <- t.nsteps + 1;
      Some { ev_sync = x.sync; ev_delivered = List.rev !delivered;
             ev_consumed = List.rev !consumed }
    end

let step t =
  let cands = Composer.candidates t.comp ~pending:t.pending in
  let n = Array.length cands in
  if n = 0 then None
  else begin
    let order =
      match t.rng with
      | None -> Array.init n Fun.id
      | Some rng ->
        let a = Array.init n Fun.id in
        Rng.shuffle rng a;
        a
    in
    let rec go i =
      if i >= n then None
      else
        match try_transition t cands.(order.(i)) with
        | Some ev -> Some ev
        | None -> go (i + 1)
    in
    go 0
  end

let run ?(max_steps = 10_000) t =
  let rec go acc k =
    if k >= max_steps then List.rev acc
    else
      match step t with
      | Some ev -> go (ev :: acc) (k + 1)
      | None -> List.rev acc
  in
  go [] 0

let pending_sends t =
  Hashtbl.fold
    (fun v q acc -> if Queue.is_empty q then acc else v :: acc)
    t.send_q []
  |> List.sort Vertex.compare

let pending_recvs t =
  Hashtbl.fold (fun v r acc -> if !r > 0 then v :: acc else acc) t.recv_q []
  |> List.sort Vertex.compare

let steps t = t.nsteps
