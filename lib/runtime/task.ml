(* Where a task's body runs. [Threads] keeps the original model: a systhread
   in the caller's domain. [Domains pool] places the body on one of the
   pool's worker domains (still a thread there, so it may block on connector
   operations indefinitely) — that is what makes partitioned connectors
   actually parallel on OCaml 5. *)
type sched = Threads | Domains of Preo_support.Pool.t

type t =
  | Thr of { thread : Thread.t; failure : exn option ref }
  | Job of Preo_support.Pool.job

let spawn ?(on = Threads) f =
  match on with
  | Threads ->
    let failure = ref None in
    let thread =
      Thread.create
        (fun () -> try f () with e -> failure := Some e)
        ()
    in
    Thr { thread; failure }
  | Domains pool -> Job (Preo_support.Pool.spawn pool f)

(* Wait for completion and surface the failure, if any. Pooled jobs can't
   be [Thread.join]ed from here — the thread lives in another domain — so
   completion travels through the pool's per-job condition instead. *)
let wait = function
  | Thr { thread; failure } ->
    Thread.join thread;
    !failure
  | Job j -> Preo_support.Pool.result j

let join t =
  match wait t with
  | None | Some (Engine.Poisoned _) -> ()
  | Some e -> raise e

let join_all ts =
  (* Join everything before propagating, so no task outlives the call. *)
  let failures = List.map wait ts in
  List.iter
    (function
      | None | Some (Engine.Poisoned _) -> ()
      | Some e -> raise e)
    failures

let run_all ?on fs = join_all (List.map (spawn ?on) fs)
