(** Tasks as threads. Thin wrappers so examples and benchmarks read like the
    paper's programming model: spawn tasks, join them, tolerate poisoning.

    A task's body may run as a plain systhread in the caller's domain
    (default) or on a worker domain of a {!Preo_support.Pool.t} — the latter
    is how partitioned connectors get real parallelism on OCaml 5. *)

type sched =
  | Threads  (** systhread in the caller's domain (the classic model) *)
  | Domains of Preo_support.Pool.t
      (** thread placed round-robin on the pool's worker domains *)

type t

val spawn : ?on:sched -> (unit -> unit) -> t
(** [spawn ?on f] runs [f] under the given policy (default [Threads]). *)

val join : t -> unit
(** Re-raises any exception the task died with, except {!Engine.Poisoned},
    which is swallowed (a poisoned connector already reported the failure). *)

val join_all : t list -> unit

val run_all : ?on:sched -> (unit -> unit) list -> unit
(** Spawn all, then join all. *)
