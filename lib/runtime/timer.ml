(* A single lazily-started timer thread that fires callbacks at absolute
   times. OCaml's [Condition] has no timed wait, so deadline-carrying engine
   operations register a wake-up here before parking; the callback simply
   broadcasts the engine's condition variable and the woken operation
   re-checks its own deadline. A callback that fires after its operation
   already completed is a harmless spurious broadcast.

   The thread sleeps in [Unix.select] on a self-pipe: registering an
   earlier wake-up writes one byte to the pipe to cut the sleep short.
   Entries are dropped once fired, so memory is bounded by the number of
   outstanding deadlines. Nothing here runs unless a wake-up is registered,
   so deadline-free programs pay nothing. *)

type handle = int

let lock = Mutex.create ()
let entries : (handle * float * (unit -> unit)) list ref = ref []
let next_handle = ref 0
let pipe_ref : (Unix.file_descr * Unix.file_descr) option ref = ref None
let thread_ref : Thread.t option ref = ref None
let stopping = ref false  (* under [lock]; tells the thread to exit *)

(* The wake-up time the thread is currently sleeping towards (under [lock]);
   registrations later than this need no self-pipe poke — the thread will
   rescan [entries] when it wakes anyway. *)
let next_wake = ref infinity

let rec restart_eintr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> restart_eintr f

let drain fd =
  let b = Bytes.create 64 in
  let rec go () =
    match restart_eintr (fun () -> Unix.read fd b 0 64) with
    | 64 -> go ()
    | _ -> ()
  in
  go ()

let rec thread_fn rd () =
  let now = Unix.gettimeofday () in
  Mutex.lock lock;
  if !stopping then Mutex.unlock lock (* exit; shutdown drops the state *)
  else begin
    let due, rest = List.partition (fun (_, at, _) -> at <= now) !entries in
    entries := rest;
    let next =
      List.fold_left (fun acc (_, at, _) -> Float.min acc at) infinity rest
    in
    next_wake := next;
    Mutex.unlock lock;
    List.iter (fun (_, _, f) -> try f () with _ -> ()) due;
    let timeout = if next = infinity then -1.0 else Float.max 0.0 (next -. now) in
    (match restart_eintr (fun () -> Unix.select [ rd ] [] [] timeout) with
     | [ _ ], _, _ -> drain rd
     | _ -> ());
    thread_fn rd ()
  end

(* Caller holds [lock]. *)
let wake_pipe () =
  match !pipe_ref with
  | Some (_, wr) ->
    (try ignore (restart_eintr (fun () -> Unix.write wr (Bytes.make 1 'x') 0 1))
     with _ -> ())
  | None ->
    let rd, wr = Unix.pipe () in
    pipe_ref := Some (rd, wr);
    stopping := false;
    thread_ref := Some (Thread.create (thread_fn rd) ())

let register at f =
  Mutex.lock lock;
  incr next_handle;
  let h = !next_handle in
  entries := (h, at, f) :: !entries;
  if at < !next_wake then begin
    next_wake := at;
    wake_pipe ()
  end
  else if !pipe_ref = None then wake_pipe ();
  Mutex.unlock lock;
  h

let wake_at at f = ignore (register at f)

(* Removing the entry under [lock] is a complete cancellation: the thread
   only calls callbacks it partitioned out of [entries] under the same lock,
   so an entry still present here has not fired and never will. A handle
   whose callback already fired is simply absent — cancelling it is a
   no-op. *)
let cancel h =
  Mutex.lock lock;
  entries := List.filter (fun (h', _, _) -> h' <> h) !entries;
  Mutex.unlock lock

(* Stop and join the timer thread, dropping outstanding registrations (their
   callbacks never run). The module stays usable: the next [register]
   lazily starts a fresh thread. Mainly for tests, which can now assert the
   thread does not leak across suite runs. *)
let shutdown () =
  Mutex.lock lock;
  let joinable = !thread_ref in
  let pipe = !pipe_ref in
  (match pipe with
   | Some _ ->
     stopping := true;
     entries := [];
     next_wake := infinity;
     wake_pipe () (* cut the select short so the thread sees [stopping] *)
   | None -> ());
  thread_ref := None;
  Mutex.unlock lock;
  (match joinable with Some th -> Thread.join th | None -> ());
  Mutex.lock lock;
  (* Close fds only after the join: the thread can no longer select on them. *)
  (match pipe with
   | Some (rd, wr) ->
     if !pipe_ref = pipe then begin
       pipe_ref := None;
       stopping := false;
       (try Unix.close rd with _ -> ());
       (try Unix.close wr with _ -> ())
     end
   | None -> ());
  Mutex.unlock lock
