(* A single lazily-started timer thread that fires callbacks at absolute
   times. OCaml's [Condition] has no timed wait, so deadline-carrying engine
   operations register a wake-up here before parking; the callback simply
   broadcasts the engine's condition variable and the woken operation
   re-checks its own deadline. A callback that fires after its operation
   already completed is a harmless spurious broadcast.

   The thread sleeps in [Unix.select] on a self-pipe: registering an
   earlier wake-up writes one byte to the pipe to cut the sleep short.
   Entries are dropped once fired, so memory is bounded by the number of
   outstanding deadlines. Nothing here runs unless a wake-up is registered,
   so deadline-free programs pay nothing.

   Lifecycle: everything thread-specific — pipe, thread handle, stop flag —
   lives in one [state] record that [shutdown] detaches atomically under
   [lock]. A [register] racing a [shutdown] therefore sees either the old
   state (its entry is dropped with the rest, exactly as if it had lost the
   race outright and registered just before) or no state at all, in which
   case it starts a fresh thread that services it. The old failure mode —
   an entry added between shutdown's join and its state reset, poking a
   dying thread's pipe and then sitting in [entries] with nothing to fire
   it — cannot happen: the dying thread's state is unreachable the moment
   shutdown's first locked section ends. *)

type handle = int

type state = {
  s_rd : Unix.file_descr;
  s_wr : Unix.file_descr;
  s_thread : Thread.t;
  s_stop : bool ref;  (* under [lock]; tells this thread (only) to exit *)
}

let lock = Mutex.create ()
let entries : (handle * float * (unit -> unit)) list ref = ref []
let next_handle = ref 0
let state : state option ref = ref None

(* The wake-up time the thread is currently sleeping towards (under [lock]);
   registrations later than this need no self-pipe poke — the thread will
   rescan [entries] when it wakes anyway. *)
let next_wake = ref infinity

let rec restart_eintr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> restart_eintr f

let drain fd =
  let b = Bytes.create 64 in
  let rec go () =
    match restart_eintr (fun () -> Unix.read fd b 0 64) with
    | 64 -> go ()
    | _ -> ()
  in
  go ()

let rec thread_fn stop rd () =
  let now = Unix.gettimeofday () in
  Mutex.lock lock;
  if !stop then Mutex.unlock lock (* exit; shutdown closes the detached fds *)
  else begin
    let due, rest = List.partition (fun (_, at, _) -> at <= now) !entries in
    entries := rest;
    let next =
      List.fold_left (fun acc (_, at, _) -> Float.min acc at) infinity rest
    in
    next_wake := next;
    Mutex.unlock lock;
    List.iter (fun (_, _, f) -> try f () with _ -> ()) due;
    let timeout = if next = infinity then -1.0 else Float.max 0.0 (next -. now) in
    (match restart_eintr (fun () -> Unix.select [ rd ] [] [] timeout) with
     | [ _ ], _, _ -> drain rd
     | _ -> ());
    thread_fn stop rd ()
  end

(* Caller holds [lock] and has checked [!state = None]. *)
let start_locked () =
  let rd, wr = Unix.pipe () in
  let stop = ref false in
  next_wake := infinity;
  state := Some { s_rd = rd; s_wr = wr; s_thread = Thread.create (thread_fn stop rd) (); s_stop = stop }

(* Caller holds [lock]. *)
let poke s =
  try ignore (restart_eintr (fun () -> Unix.write s.s_wr (Bytes.make 1 'x') 0 1))
  with _ -> ()

let register at f =
  Mutex.lock lock;
  incr next_handle;
  let h = !next_handle in
  entries := (h, at, f) :: !entries;
  (match !state with
   | Some s -> if at < !next_wake then begin next_wake := at; poke s end
   | None -> start_locked ());
  Mutex.unlock lock;
  h

let wake_at at f = ignore (register at f)

(* Removing the entry under [lock] is a complete cancellation: the thread
   only calls callbacks it partitioned out of [entries] under the same lock,
   so an entry still present here has not fired and never will. A handle
   whose callback already fired is simply absent — cancelling it is a
   no-op. *)
let cancel h =
  Mutex.lock lock;
  entries := List.filter (fun (h', _, _) -> h' <> h) !entries;
  Mutex.unlock lock

(* Stop and join the timer thread, dropping outstanding registrations (their
   callbacks never run). Detaching the whole state record under one lock
   section makes this idempotent and safe against concurrent [register]s:
   once the section ends, no other caller can reach the dying thread's pipe
   or stop flag, so a register observing [None] simply starts a replacement
   thread. The fds are closed only after the join, when the exited thread
   can no longer select on them, and without the lock — nothing else holds a
   reference to the detached state. *)
let shutdown () =
  Mutex.lock lock;
  let st = !state in
  (match st with
   | Some s ->
     s.s_stop := true;
     entries := [];
     next_wake := infinity;
     poke s; (* cut the select short so the thread sees its stop flag *)
     state := None
   | None -> ());
  Mutex.unlock lock;
  match st with
  | Some s ->
    Thread.join s.s_thread;
    (try Unix.close s.s_rd with _ -> ());
    (try Unix.close s.s_wr with _ -> ())
  | None -> ()
