(** Process-wide wake-up timer for deadline-carrying blocking operations.

    [Condition.wait] cannot time out, so an operation with a deadline
    registers a wake-up callback here before parking; the timer thread
    (started lazily on first use — deadline-free programs never pay for it)
    fires the callback at the requested absolute time. Callbacks must be
    cheap and exception-free in spirit (exceptions are swallowed); the
    intended use is broadcasting a condition variable so the parked
    operation re-checks its deadline itself. Fired entries are dropped; a
    late spurious broadcast is harmless. *)

type handle

val register : float -> (unit -> unit) -> handle
(** [register t f] runs [f ()] on the timer thread at absolute Unix time [t]
    (promptly if [t] is already past). Entries with identical times all
    fire. *)

val cancel : handle -> unit
(** Remove a registration; its callback will never run afterwards. Cancelling
    an already-fired (or already-cancelled) handle is a no-op. Cancellation
    does not wait for a concurrently-running callback. *)

val wake_at : float -> (unit -> unit) -> unit
(** {!register} without keeping the handle (fire-and-forget). *)

val shutdown : unit -> unit
(** Stop and join the timer thread, dropping outstanding registrations
    (their callbacks never run). No-op when the thread was never started;
    idempotent, and safe to race with {!register} from other threads: a
    concurrent registration either lands before the cut (and is dropped with
    the rest) or observes no timer thread and starts a fresh one that will
    service it — it is never silently stranded. The module stays usable
    afterwards: the next {!register} starts a fresh thread. Intended for
    tests, so the timer thread can be joined instead of leaking across suite
    runs. *)
