(** Process-wide wake-up timer for deadline-carrying blocking operations.

    [Condition.wait] cannot time out, so an operation with a deadline
    registers a wake-up callback here before parking; the timer thread
    (started lazily on first use — deadline-free programs never pay for it)
    fires the callback at the requested absolute time. Callbacks must be
    cheap and exception-free in spirit (exceptions are swallowed); the
    intended use is broadcasting a condition variable so the parked
    operation re-checks its deadline itself. Fired entries are dropped;
    there is no cancellation — a late spurious broadcast is harmless. *)

val wake_at : float -> (unit -> unit) -> unit
(** [wake_at t f] runs [f ()] on the timer thread at absolute Unix time [t]
    (immediately if [t] is already past). *)
