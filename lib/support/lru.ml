module Make (K : Hashtbl.HashedType) = struct
  module H = Hashtbl.Make (K)

  type 'v node = {
    key : K.t;
    mutable value : 'v;
    mutable prev : 'v node option;
    mutable next : 'v node option;
  }

  type 'v t = {
    capacity : int;
    table : 'v node H.t;
    mutable head : 'v node option; (* most recently used *)
    mutable tail : 'v node option; (* least recently used *)
    mutable evicted : int;
    mutable hit : int;
  }

  let create ~capacity =
    { capacity; table = H.create 64; head = None; tail = None; evicted = 0;
      hit = 0 }

  let unlink t node =
    (match node.prev with
     | Some p -> p.next <- node.next
     | None -> t.head <- node.next);
    (match node.next with
     | Some n -> n.prev <- node.prev
     | None -> t.tail <- node.prev);
    node.prev <- None;
    node.next <- None

  let push_front t node =
    node.next <- t.head;
    node.prev <- None;
    (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
    t.head <- Some node

  let find t k =
    match H.find_opt t.table k with
    | None -> None
    | Some node ->
      t.hit <- t.hit + 1;
      if t.capacity > 0 then begin
        unlink t node;
        push_front t node
      end;
      Some node.value

  let evict_lru t =
    match t.tail with
    | None -> ()
    | Some node ->
      unlink t node;
      H.remove t.table node.key;
      t.evicted <- t.evicted + 1

  let add t k v =
    match H.find_opt t.table k with
    | Some node ->
      node.value <- v;
      if t.capacity > 0 then begin
        unlink t node;
        push_front t node
      end
    | None ->
      let node = { key = k; value = v; prev = None; next = None } in
      H.replace t.table k node;
      if t.capacity > 0 then begin
        push_front t node;
        if H.length t.table > t.capacity then evict_lru t
      end

  let length t = H.length t.table
  let evictions t = t.evicted
  let hits t = t.hit

  let clear t =
    H.clear t.table;
    t.head <- None;
    t.tail <- None
end
