(** Bounded least-recently-used cache.

    Backs the just-in-time composer's optional bounded state cache: expanded
    product states can be evicted and recomputed later, trading time for
    space (the paper's "bounded state cache" future-work discussion). *)

module Make (K : Hashtbl.HashedType) : sig
  type 'v t

  val create : capacity:int -> 'v t
  (** [capacity <= 0] means unbounded. *)

  val find : 'v t -> K.t -> 'v option
  (** Marks the entry most-recently used on hit. *)

  val add : 'v t -> K.t -> 'v -> unit
  (** Inserts (or refreshes) the binding, evicting the least-recently-used
      entry if over capacity. *)

  val length : 'v t -> int
  val evictions : 'v t -> int
  (** Number of entries evicted so far. *)

  val hits : 'v t -> int
  (** Number of successful {!find} lookups so far. Like {!evictions}, the
      counter survives {!clear}. *)

  val clear : 'v t -> unit
end
