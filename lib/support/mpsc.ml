(* Lock-free multi-producer single-consumer queue: a Treiber stack of cons
   cells plus a whole-list reversal at drain time.

   Producers only ever CAS a new head on; the (single) consumer exchanges
   the whole list for [[]] in one atomic swap and reverses it, so one drain
   observes every element pushed before the swap, in push order. Push is
   wait-free in the absence of contention and lock-free under it (a failed
   CAS retries against the freshly observed head); drain is wait-free.

   Per-producer FIFO order is exact: a producer's second push can only CAS
   on top of (a list containing) its first, so after reversal its elements
   appear oldest-first. Cross-producer order is whatever the CAS
   interleaving produced — the same guarantee a mutex-protected queue gives
   concurrent producers.

   The engine uses this as its submission queue: tasks publish blocking
   send/recv operations without touching the engine mutex; whichever thread
   holds the mutex drains the batch into the real per-vertex queues before
   solving. *)

type 'a t = 'a list Atomic.t

let create () = Atomic.make []

let rec push q x =
  let old = Atomic.get q in
  if not (Atomic.compare_and_set q old (x :: old)) then push q x

let pop_all q =
  match Atomic.get q with
  | [] -> [] (* empty fast path: no swap, no fence traffic for the drainer *)
  | _ -> List.rev (Atomic.exchange q [])

let is_empty q = Atomic.get q = []
