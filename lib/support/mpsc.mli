(** Lock-free multi-producer single-consumer queue.

    Any number of threads (on any domain) may {!push} concurrently; one
    consumer at a time calls {!pop_all} and receives every element pushed
    before the call, in per-producer FIFO order. The engine's op-submission
    queue: producers publish operations with a CAS instead of taking the
    engine mutex; the mutex holder drains them in batches. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Lock-free; safe from any thread or domain. *)

val pop_all : 'a t -> 'a list
(** Atomically take everything pushed so far, oldest first (per producer).
    Caller discipline: one drainer at a time (the engine-mutex holder) —
    concurrent drains are safe but split the batch arbitrarily. *)

val is_empty : 'a t -> bool
(** Snapshot; may be stale by the time the caller acts on it. *)
