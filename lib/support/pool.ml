(* A reusable pool of OCaml 5 domains for running tasks in parallel.

   Shape: each worker is one domain running a small scheduler loop; a
   submitted job is spawned as a *system thread inside the worker's domain*
   rather than run inline on the scheduler loop. This matters for the
   runtime's programming model: tasks block on connector operations
   (condition variables) for arbitrarily long, so a pool that ran jobs to
   completion one at a time would deadlock as soon as more tasks than
   workers wait on each other. Threads within one domain interleave as
   under the single-domain runtime; threads in different domains run truly
   in parallel.

   Placement is round-robin across workers (overridable with [~worker]),
   so K tasks on N domains spread evenly and deterministically. Completion
   and failure travel through a per-job mutex/condition pair rather than
   [Thread.join], because joins are issued from the submitting domain while
   the thread lives in the worker's domain.

   Shutdown is graceful: queued jobs still run, and every worker joins the
   threads it spawned before its domain exits. *)

type job_state = J_running | J_done | J_failed of exn

type job = {
  j_m : Mutex.t;
  j_c : Condition.t;
  mutable j_state : job_state;
}

type worker = {
  w_m : Mutex.t;
  w_c : Condition.t;
  w_q : (unit -> unit) Queue.t;
  mutable w_stop : bool;
  mutable w_dom : unit Domain.t option;
}

type t = {
  p_m : Mutex.t;  (* guards worker-set growth and [p_closed] *)
  mutable p_workers : worker array;
  p_rr : int Atomic.t;
  mutable p_closed : bool;
}

(* Beyond this, domains stop paying for themselves (OCaml caps the process
   at 128 and recommends at most one per core). *)
let max_domains = 16

let clamp n = max 1 (min max_domains n)

let worker_loop w () =
  (* Threads spawned for finished jobs are pruned lazily (one flag read
     each) so a long-lived pool doesn't accumulate handles; whatever is
     still live at shutdown is joined before the domain exits. *)
  let live = ref [] in
  let rec loop () =
    Mutex.lock w.w_m;
    while Queue.is_empty w.w_q && not w.w_stop do
      Condition.wait w.w_c w.w_m
    done;
    if Queue.is_empty w.w_q then begin
      (* stop requested and queue drained *)
      Mutex.unlock w.w_m;
      List.iter (fun (_, th) -> Thread.join th) !live
    end
    else begin
      let f = Queue.pop w.w_q in
      Mutex.unlock w.w_m;
      live := List.filter (fun (fin, _) -> not (Atomic.get fin)) !live;
      let fin = Atomic.make false in
      let th =
        Thread.create
          (fun () ->
            (try f () with _ -> ());
            Atomic.set fin true)
          ()
      in
      live := (fin, th) :: !live;
      loop ()
    end
  in
  loop ()

let make_worker () =
  let w =
    {
      w_m = Mutex.create ();
      w_c = Condition.create ();
      w_q = Queue.create ();
      w_stop = false;
      w_dom = None;
    }
  in
  w.w_dom <- Some (Domain.spawn (worker_loop w));
  w

let create ?(domains = 2) () =
  {
    p_m = Mutex.create ();
    p_workers = Array.init (clamp domains) (fun _ -> make_worker ());
    p_rr = Atomic.make 0;
    p_closed = false;
  }

let size t =
  Mutex.lock t.p_m;
  let n = Array.length t.p_workers in
  Mutex.unlock t.p_m;
  n

let ensure t n =
  let n = clamp n in
  Mutex.lock t.p_m;
  let cur = Array.length t.p_workers in
  if (not t.p_closed) && n > cur then
    t.p_workers <-
      Array.append t.p_workers (Array.init (n - cur) (fun _ -> make_worker ()));
  Mutex.unlock t.p_m

let submit ?worker t f =
  Mutex.lock t.p_m;
  if t.p_closed then begin
    Mutex.unlock t.p_m;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  let ws = t.p_workers in
  Mutex.unlock t.p_m;
  let n = Array.length ws in
  let i =
    match worker with
    | Some i -> ((i mod n) + n) mod n
    | None -> Atomic.fetch_and_add t.p_rr 1 mod n
  in
  let w = ws.(i) in
  Mutex.lock w.w_m;
  Queue.push f w.w_q;
  Condition.signal w.w_c;
  Mutex.unlock w.w_m

let spawn ?worker t f =
  let j = { j_m = Mutex.create (); j_c = Condition.create (); j_state = J_running } in
  submit ?worker t (fun () ->
      let r = try f (); J_done with e -> J_failed e in
      Mutex.lock j.j_m;
      j.j_state <- r;
      Condition.broadcast j.j_c;
      Mutex.unlock j.j_m);
  j

let result j =
  Mutex.lock j.j_m;
  while j.j_state = J_running do
    Condition.wait j.j_c j.j_m
  done;
  let r = j.j_state in
  Mutex.unlock j.j_m;
  match r with J_failed e -> Some e | J_done -> None | J_running -> assert false

let await j = match result j with Some e -> raise e | None -> ()

let shutdown t =
  Mutex.lock t.p_m;
  let ws = if t.p_closed then [||] else t.p_workers in
  t.p_closed <- true;
  Mutex.unlock t.p_m;
  Array.iter
    (fun w ->
      Mutex.lock w.w_m;
      w.w_stop <- true;
      Condition.broadcast w.w_c;
      Mutex.unlock w.w_m)
    ws;
  Array.iter
    (fun w -> match w.w_dom with Some d -> Domain.join d | None -> ())
    ws

(* --- Shared process-wide pool ----------------------------------------------

   Connectors (and anything else placing long-lived tasks) share one pool so
   consecutive instantiations reuse domains instead of churning them. The
   pool is sized by the first caller and grows on demand up to [max_domains];
   it is never shut down — worker domains blocked on their queue condition
   are reclaimed by process exit. *)

let default_lock = Mutex.create ()
let default_pool : t option ref = ref None

let default ~domains () =
  Mutex.lock default_lock;
  let p =
    match !default_pool with
    | Some p -> p
    | None ->
      let p = create ~domains ()
      in
      default_pool := Some p;
      p
  in
  Mutex.unlock default_lock;
  ensure p domains;
  p
