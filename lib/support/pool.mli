(** A reusable pool of OCaml 5 domains.

    Each worker is one domain; a submitted job runs as a system thread
    *inside* the worker's domain, so jobs may block on condition variables
    (as runtime tasks do) without stalling the pool. Threads placed in
    different domains run truly in parallel; threads within one domain
    interleave exactly as under the single-domain runtime. *)

type t
(** A pool of worker domains. *)

type job
(** Handle for one submitted unit of work. *)

val max_domains : int
(** Hard cap on workers per pool (requests are clamped to [1..max_domains]). *)

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns a pool of [domains] worker domains
    (clamped to [1..max_domains]; default 2). *)

val size : t -> int
(** Current number of worker domains. *)

val ensure : t -> int -> unit
(** [ensure t n] grows the pool to at least [n] workers (clamped; no-op if
    already that large or shut down). *)

val submit : ?worker:int -> t -> (unit -> unit) -> unit
(** Fire-and-forget: run [f] on a pooled domain. Exceptions from [f] are
    dropped. [~worker] pins the job to a specific worker (mod pool size)
    instead of round-robin. Raises [Invalid_argument] after [shutdown]. *)

val spawn : ?worker:int -> t -> (unit -> unit) -> job
(** Like {!submit} but returns a handle carrying completion and failure. *)

val result : job -> exn option
(** Block until the job finishes; [Some e] if it raised [e]. *)

val await : job -> unit
(** Block until the job finishes; re-raises the job's exception, if any. *)

val shutdown : t -> unit
(** Graceful: queued jobs still run; each worker joins the threads it
    spawned, then its domain exits and is joined. Subsequent submits raise. *)

val default : domains:int -> unit -> t
(** The shared process-wide pool, created on first use and grown (never
    shrunk) to [domains] workers. It is never shut down. *)
