(* Fixed-capacity single-producer single-consumer ring buffer.

   The partitioned runtime's cut queues: one engine (the producer side of a
   severed fifo chain) fills slots, the engine on the other side drains
   them. [Atomic] indices give the necessary cross-domain memory ordering;
   mutual exclusion follows from the SPSC discipline — only the producer
   moves [tail], only the consumer moves [head], and each side acts only
   when its gate reports room / data. Indices grow monotonically and are
   reduced mod [cap] at access, so [length] is a plain subtraction.

   Slots hold ['a option Atomic.t] rather than a plain array: the value
   written by the producer must be published before the consumer (possibly
   on another domain) reads it through [head]; the atomic slot store plus
   the atomic [tail] bump provide that ordering. *)

type 'a t = {
  slots : 'a option Atomic.t array;
  head : int Atomic.t;  (* next slot to pop; advanced only by the consumer *)
  tail : int Atomic.t;  (* next slot to fill; advanced only by the producer *)
  cap : int;
}

let create ?(init = []) cap =
  if cap < 1 then invalid_arg "Ring.create: capacity must be >= 1";
  if List.length init > cap then invalid_arg "Ring.create: init exceeds capacity";
  {
    slots = Array.init cap (fun i -> Atomic.make (List.nth_opt init i));
    head = Atomic.make 0;
    tail = Atomic.make (List.length init);
    cap;
  }

let capacity r = r.cap
let length r = Atomic.get r.tail - Atomic.get r.head
let is_empty r = length r = 0
let is_full r = length r >= r.cap

(* Producer side. *)
let try_push r x =
  if is_full r then false
  else begin
    let i = Atomic.get r.tail in
    Atomic.set r.slots.(i mod r.cap) (Some x);
    Atomic.set r.tail (i + 1);
    true
  end

let push r x = if not (try_push r x) then invalid_arg "Ring.push: full"

(* Consumer side. *)
let peek_opt r =
  if is_empty r then None else Atomic.get r.slots.(Atomic.get r.head mod r.cap)

let peek r =
  match peek_opt r with Some x -> x | None -> invalid_arg "Ring.peek: empty"

let pop_opt r =
  if is_empty r then None
  else begin
    let i = Atomic.get r.head in
    let s = r.slots.(i mod r.cap) in
    let x = Atomic.get s in
    Atomic.set s None;
    Atomic.set r.head (i + 1);
    x
  end

let pop r =
  match pop_opt r with Some x -> x | None -> invalid_arg "Ring.pop: empty"

(* Batch helpers: move up to [n] elements in one call — one index read per
   element is unavoidable, but callers save the per-element closure/branch
   overhead of going through a gate for each datum. *)
let pop_upto r n =
  let rec go n acc =
    if n <= 0 then List.rev acc
    else
      match pop_opt r with
      | Some x -> go (n - 1) (x :: acc)
      | None -> List.rev acc
  in
  go n []

let push_list r xs =
  let rec go = function
    | [] -> []
    | x :: rest -> if try_push r x then go rest else x :: rest
  in
  go xs
