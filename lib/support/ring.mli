(** Fixed-capacity single-producer single-consumer ring buffer.

    Lock-free under the SPSC discipline: exactly one thread pushes, exactly
    one thread pops (they may live on different domains). The partitioned
    runtime's cut-queue bridges are built on this — a severed fifo chain of
    capacity [k] becomes a [k]-slot ring moving batches of data between two
    engine regions. *)

type 'a t

val create : ?init:'a list -> int -> 'a t
(** [create ~init cap]: ring of capacity [cap >= 1], prefilled with [init]
    (first element = next to pop; at most [cap] elements).
    @raise Invalid_argument on a bad capacity or oversized [init]. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Elements currently buffered. Exact for the producer and consumer
    themselves; a racing third-party reader sees a consistent snapshot. *)

val is_empty : 'a t -> bool
val is_full : 'a t -> bool

val try_push : 'a t -> 'a -> bool
(** Producer only. [false] when full. *)

val push : 'a t -> 'a -> unit
(** Producer only. @raise Invalid_argument when full. *)

val peek_opt : 'a t -> 'a option
(** Consumer only: next element without removing it. *)

val peek : 'a t -> 'a
(** @raise Invalid_argument when empty. *)

val pop_opt : 'a t -> 'a option
(** Consumer only. *)

val pop : 'a t -> 'a
(** @raise Invalid_argument when empty. *)

val pop_upto : 'a t -> int -> 'a list
(** Consumer only: up to [n] elements, oldest first. *)

val push_list : 'a t -> 'a list -> 'a list
(** Producer only: push until full or done; returns the leftovers. *)
