(* Constraint automata: commands, product, hiding, exploration. *)

open Preo_support
open Preo_automata

let v name = Vertex.fresh name
let iset = Iset.of_list

(* --- Command solver ------------------------------------------------------- *)

let mk_env ?(sends = []) ?(cells = []) () =
  let written_cells = Hashtbl.create 4 in
  let delivered = Hashtbl.create 4 in
  ( {
      Command.read_send =
        (fun p ->
          match List.assoc_opt p sends with
          | Some x -> x
          | None -> Alcotest.failf "unexpected read_send %s" (Vertex.name p));
      read_cell =
        (fun c ->
          match List.assoc_opt c cells with
          | Some x -> x
          | None -> Alcotest.failf "unexpected read_cell %d" c);
      write_cell = (fun c x -> Hashtbl.replace written_cells c x);
      deliver = (fun p x -> Hashtbl.replace delivered p x);
    },
    written_cells,
    delivered )

let solve_ok ~readable ~writable c =
  match Command.solve ~readable ~writable c with
  | Ok cmd -> cmd
  | Error msg -> Alcotest.failf "solve failed: %s" msg

let cmd_sync_moves_data () =
  let a = v "a" and b = v "b" in
  let cmd =
    solve_ok ~readable:(iset [ a ]) ~writable:(iset [ b ])
      Constr.[ Port b === Port a ]
  in
  let env, _, delivered = mk_env ~sends:[ (a, Value.int 7) ] () in
  Command.execute cmd env;
  Alcotest.(check bool) "delivered to b" true
    (Hashtbl.find delivered b = Value.int 7)

let cmd_transform_applies () =
  let a = v "a" and b = v "b" in
  let cmd =
    solve_ok ~readable:(iset [ a ]) ~writable:(iset [ b ])
      Constr.[ Port b === App ("incr", Port a) ]
  in
  let env, _, delivered = mk_env ~sends:[ (a, Value.int 7) ] () in
  Command.execute cmd env;
  Alcotest.(check bool) "b = incr a" true
    (Hashtbl.find delivered b = Value.int 8)

let cmd_through_internal_glue () =
  (* a -> m -> b with m internal: class {a,m,b}. *)
  let a = v "a" and m = v "m" and b = v "b" in
  let cmd =
    solve_ok ~readable:(iset [ a ]) ~writable:(iset [ b ])
      Constr.[ Port m === Port a; Port b === Port m ]
  in
  let env, _, delivered = mk_env ~sends:[ (a, Value.str "x") ] () in
  Command.execute cmd env;
  Alcotest.(check bool) "b got a through m" true
    (Hashtbl.find delivered b = Value.str "x")

let cmd_cell_write_and_read () =
  let a = v "a" and b = v "b" in
  let cmd =
    solve_ok ~readable:(iset [ a ]) ~writable:(iset [ b ])
      Constr.[ Post 1 === Port a; Port b === Pre 2 ]
  in
  let env, written, delivered =
    mk_env ~sends:[ (a, Value.int 1) ] ~cells:[ (2, Value.int 9) ] ()
  in
  Command.execute cmd env;
  Alcotest.(check bool) "cell 1 written" true (Hashtbl.find written 1 = Value.int 1);
  Alcotest.(check bool) "b from cell 2" true
    (Hashtbl.find delivered b = Value.int 9)

let cmd_cell_refill_same_step () =
  (* Shift: b := pre(c); post(c) := a — all sources read before writes. *)
  let a = v "a" and b = v "b" in
  let cmd =
    solve_ok ~readable:(iset [ a ]) ~writable:(iset [ b ])
      Constr.[ Port b === Pre 3; Post 3 === Port a ]
  in
  let env, written, delivered =
    mk_env ~sends:[ (a, Value.int 100) ] ~cells:[ (3, Value.int 5) ] ()
  in
  Command.execute cmd env;
  Alcotest.(check bool) "b got old cell" true
    (Hashtbl.find delivered b = Value.int 5);
  Alcotest.(check bool) "cell refilled" true
    (Hashtbl.find written 3 = Value.int 100)

let cmd_guards () =
  let a = v "a" in
  let cmd =
    solve_ok ~readable:(iset [ a ]) ~writable:Iset.empty
      Constr.[ pred "even" (Port a) ]
  in
  let env_even, _, _ = mk_env ~sends:[ (a, Value.int 4) ] () in
  let env_odd, _, _ = mk_env ~sends:[ (a, Value.int 5) ] () in
  Alcotest.(check bool) "even passes" true (Command.guards_hold cmd env_even);
  Alcotest.(check bool) "odd fails" false (Command.guards_hold cmd env_odd);
  let ncmd =
    solve_ok ~readable:(iset [ a ]) ~writable:Iset.empty
      Constr.[ npred "even" (Port a) ]
  in
  Alcotest.(check bool) "negated" true (Command.guards_hold ncmd env_odd)

let cmd_const_conflict_is_unsat () =
  let a = v "a" in
  match
    Command.solve ~readable:(iset [ a ]) ~writable:Iset.empty
      Constr.[ Port a === Const (Value.int 1); Port a === Const (Value.int 2) ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "conflicting constants must be unsolvable"

let cmd_underdetermined_is_error () =
  let b = v "b" in
  match
    Command.solve ~readable:Iset.empty ~writable:(iset [ b ])
      Constr.[ Port b === Port (v "ghost") ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "sink without source must be unsolvable"

let cmd_const_source () =
  let b = v "b" in
  let cmd =
    solve_ok ~readable:Iset.empty ~writable:(iset [ b ])
      Constr.[ Port b === Const (Value.str "tok") ]
  in
  let env, _, delivered = mk_env () in
  Command.execute cmd env;
  Alcotest.(check bool) "const delivered" true
    (Hashtbl.find delivered b = Value.str "tok")

(* --- Product -------------------------------------------------------------- *)

let sync_auto a b = Preo_reo.Prim.build Preo_reo.Prim.Sync ~tails:[ a ] ~heads:[ b ]
let fifo_auto a b = Preo_reo.Prim.build Preo_reo.Prim.Fifo1 ~tails:[ a ] ~heads:[ b ]

let product_sync_pipeline () =
  (* sync(a;m) x sync(m;b): one state, one transition {a,m,b}. *)
  let a = v "a" and m = v "m" and b = v "b" in
  let p = Product.pair (sync_auto a m) (sync_auto m b) in
  Alcotest.(check int) "1 state" 1 p.Automaton.nstates;
  Alcotest.(check int) "1 transition" 1 (Automaton.num_transitions p);
  let tr = p.Automaton.trans.(0).(0) in
  Alcotest.(check bool) "sync = {a,m,b}" true
    (Iset.equal tr.Automaton.sync (iset [ a; m; b ]))

let product_fifo_pair_states () =
  (* Two unrelated fifos: 4 states, interleaved transitions only. *)
  let f1 = fifo_auto (v "a1") (v "b1") in
  let f2 = fifo_auto (v "a2") (v "b2") in
  let p = Product.pair f1 f2 in
  Alcotest.(check int) "4 states" 4 p.Automaton.nstates;
  (* each state: 2 interleaved moves *)
  Alcotest.(check int) "8 transitions" 8 (Automaton.num_transitions p)

let product_joint_independent_flag () =
  let f1 = fifo_auto (v "a1") (v "b1") in
  let f2 = fifo_auto (v "a2") (v "b2") in
  let p = Product.pair ~joint_independent:true f1 f2 in
  (* each state also has the joint move: 3 per state *)
  Alcotest.(check int) "12 transitions" 12 (Automaton.num_transitions p)

let product_budget () =
  let autos =
    List.init 12 (fun i ->
        fifo_auto (v (Printf.sprintf "a%d" i)) (v (Printf.sprintf "b%d" i)))
  in
  match Product.all ~max_states:100 autos with
  | exception Product.Budget_exceeded msg ->
    (* the diagnostic names the connector and reports how far composition
       got before tripping *)
    Alcotest.(check bool) "names the connector" true
      (String.length msg >= 30
      && String.sub msg 0 30 = "product of connector exceeded ")
  | _ -> Alcotest.fail "budget must trip"

let product_polarity_mixed_internal () =
  let a = v "a" and m = v "m" and b = v "b" in
  let p = Product.pair (sync_auto a m) (sync_auto m b) in
  Alcotest.(check bool) "a source" true (Iset.mem a p.Automaton.sources);
  Alcotest.(check bool) "b sink" true (Iset.mem b p.Automaton.sinks);
  Alcotest.(check bool) "m internal" true
    ((not (Iset.mem m p.Automaton.sources)) && not (Iset.mem m p.Automaton.sinks))

let sync_compatible_cases () =
  let va = iset [ 1; 2; 3 ] and vb = iset [ 3; 4; 5 ] in
  let chk expect sa sb =
    Alcotest.(check bool) "compat" expect
      (Product.sync_compatible ~vertices_a:va ~vertices_b:vb ~sync_a:(iset sa)
         ~sync_b:(iset sb))
  in
  chk true [ 1; 3 ] [ 3; 4 ];
  chk false [ 1; 3 ] [ 4 ];
  chk true [ 1 ] [ 4 ];
  chk false [ 3 ] [ 4; 5 ]

(* --- Hide / trim / explore ------------------------------------------------ *)

let hide_makes_silent () =
  let a = v "a" and m = v "m" and b = v "b" in
  let chain = Product.all [ fifo_auto a m; fifo_auto m b ] in
  let hidden = Automaton.hide (iset [ m ]) chain in
  let silent = ref 0 in
  Array.iter
    (Array.iter (fun (tr : Automaton.trans) ->
         if Iset.is_empty tr.Automaton.sync then incr silent))
    hidden.Automaton.trans;
  Alcotest.(check bool) "one silent transfer somewhere" true (!silent >= 1);
  Alcotest.(check bool) "m gone from alphabet" false
    (Iset.mem m hidden.Automaton.vertices)

let trim_removes_unreachable () =
  let a = v "a" and b = v "b" in
  (* Hand-built automaton with an unreachable state 2. *)
  let t sync target = { Automaton.sync; constr = Constr.tt; command = None; target } in
  let auto =
    Automaton.make ~nstates:3 ~initial:0
      ~trans:[| [| t (iset [ a ]) 1 |]; [| t (iset [ b ]) 0 |]; [| t (iset [ a ]) 2 |] |]
      ~sources:(iset [ a ]) ~sinks:(iset [ b ])
  in
  let trimmed = Automaton.trim auto in
  Alcotest.(check int) "2 states" 2 trimmed.Automaton.nstates;
  Alcotest.(check (list int)) "no deadlocks" []
    (Explore.deadlock_states trimmed)

let optimize_labels_drops_unsat () =
  let a = v "a" and b = v "b" in
  let t constr target = { Automaton.sync = iset [ a; b ]; constr; command = None; target } in
  let auto =
    Automaton.make ~nstates:1 ~initial:0
      ~trans:
        [|
          [|
            t Constr.[ Port b === Port a ] 0;
            t Constr.[ Port b === Const (Value.int 1); Port b === Const (Value.int 2) ] 0;
          |];
        |]
      ~sources:(iset [ a ]) ~sinks:(iset [ b ])
  in
  let opt = Automaton.optimize_labels auto in
  Alcotest.(check int) "unsat dropped" 1 (Automaton.num_transitions opt);
  Array.iter
    (Array.iter (fun (tr : Automaton.trans) ->
         Alcotest.(check bool) "command present" true (tr.Automaton.command <> None)))
    opt.Automaton.trans

let map_vertices_roundtrip () =
  let a = v "a" and b = v "b" in
  let f = fifo_auto a b in
  let a' = v "a2" and b' = v "b2" in
  let subst x = if Vertex.equal x a then a' else if Vertex.equal x b then b' else x in
  let g = Automaton.map_vertices subst f in
  Alcotest.(check bool) "renamed sources" true (Iset.mem a' g.Automaton.sources);
  Alcotest.(check bool) "old gone" false (Iset.mem a g.Automaton.vertices)

let dispatch_candidates () =
  let a = v "a" and b = v "b" in
  let auto = Automaton.trim (fifo_auto a b) in
  let d = Dispatch.build auto in
  let cands = Dispatch.candidates d ~state:0 ~pending:(iset [ a ]) in
  Alcotest.(check int) "accept enabled" 1 (Array.length cands);
  let none = Dispatch.candidates d ~state:0 ~pending:(iset [ b ]) in
  Alcotest.(check int) "emit not in empty state" 0 (Array.length none)

let dot_export_mentions_states () =
  let a = v "a" and b = v "b" in
  let s = Dot.automaton ~name:"fifo" (fifo_auto a b) in
  Alcotest.(check bool) "digraph" true
    (String.length s > 10 && String.sub s 0 7 = "digraph")

(* --- Constraint helpers ---------------------------------------------------- *)

let constr_ports_and_cells () =
  let a = v "a" and b = v "b" in
  let c = Constr.[ Port b === App ("f", Port a); Post 7 === Pre 8 ] in
  Alcotest.(check bool) "ports" true
    (Iset.equal (Constr.ports c) (iset [ a; b ]));
  Alcotest.(check bool) "cells" true (Iset.equal (Constr.cells c) (iset [ 7; 8 ]))

let tests =
  [
    ("command: sync moves data", `Quick, cmd_sync_moves_data);
    ("command: transform applies fn", `Quick, cmd_transform_applies);
    ("command: data flows through glue", `Quick, cmd_through_internal_glue);
    ("command: cell write and read", `Quick, cmd_cell_write_and_read);
    ("command: cell refilled in one step", `Quick, cmd_cell_refill_same_step);
    ("command: guards", `Quick, cmd_guards);
    ("command: const conflict unsat", `Quick, cmd_const_conflict_is_unsat);
    ("command: underdetermined error", `Quick, cmd_underdetermined_is_error);
    ("command: constant source", `Quick, cmd_const_source);
    ("product: sync pipeline", `Quick, product_sync_pipeline);
    ("product: independent fifos", `Quick, product_fifo_pair_states);
    ("product: joint_independent flag", `Quick, product_joint_independent_flag);
    ("product: state budget", `Quick, product_budget);
    ("product: mixed polarity internal", `Quick, product_polarity_mixed_internal);
    ("product: sync_compatible", `Quick, sync_compatible_cases);
    ("hide: silent transitions", `Quick, hide_makes_silent);
    ("trim: unreachable removed", `Quick, trim_removes_unreachable);
    ("optimize_labels drops unsat", `Quick, optimize_labels_drops_unsat);
    ("map_vertices", `Quick, map_vertices_roundtrip);
    ("dispatch index", `Quick, dispatch_candidates);
    ("dot export", `Quick, dot_export_mentions_states);
    ("constraint ports/cells", `Quick, constr_ports_and_cells);
  ]
