(* The coloring backend certified against the automata semantics:
   - Coloring.lts is label-bisimilar to the interleaving product over the
     full connector catalog (the ISSUE's equivalence obligation);
   - randomized connector networks transport identical data and count
     identical steps under both backends (and under partitioned coloring);
   - the §V-C blow-up family (lossy_bcast) at N=64 defeats both automata
     paths within a small budget while the coloring backend executes it;
   - budget diagnostics name the connector and report how far composition
     got (satellite: Explore/Product error enrichment);
   - backend resolution and downgrade rules (Existing, true_synchronous);
   - deadline storms, stall reports and the watchdog behave identically on
     the coloring backend (satellite: timer parity);
   - elastic splices keep working when rounds are resolved by coloring. *)

open Preo_support
open Preo_automata
module Coloring = Preo_coloring.Coloring
module Bisim = Preo_verify.Bisim
module Catalog = Preo_connectors.Catalog
module Driver = Preo_connectors.Driver
module Config = Preo_runtime.Config
module Connector = Preo_runtime.Connector
module Composer = Preo_runtime.Composer
module Engine = Preo_runtime.Engine
module Port = Preo_runtime.Port
module Task = Preo_runtime.Task
module Sched = Preo_runtime.Sched

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* --- backend selection ---------------------------------------------------- *)

let sched_unit () =
  Alcotest.(check bool) "coloring parses" true
    (Sched.of_string "coloring" = Some Sched.Coloring);
  Alcotest.(check bool) "case-insensitive" true
    (Sched.of_string "COLORING" = Some Sched.Coloring);
  Alcotest.(check bool) "automata parses" true
    (Sched.of_string "Automata" = Some Sched.Automata);
  Alcotest.(check bool) "unknown rejected" true (Sched.of_string "bogus" = None);
  Alcotest.(check string) "roundtrip" "coloring"
    (Sched.to_string Sched.Coloring);
  let saved = !Sched.backend in
  Fun.protect
    ~finally:(fun () -> Sched.backend := saved)
    (fun () ->
      Sched.backend := None;
      Alcotest.(check bool) "default automata" true
        (Sched.effective () = Sched.Automata);
      Sched.backend := Some Sched.Coloring;
      Alcotest.(check bool) "process default wins over automata" true
        (Sched.effective () = Sched.Coloring);
      Alcotest.(check bool) "explicit request wins over default" true
        (Sched.effective ~requested:Sched.Automata () = Sched.Automata))

(* --- equivalence: coloring ~ product over the catalog ---------------------- *)

let catalog_bisimulation () =
  List.iter
    (fun (e : Catalog.entry) ->
      let c = Catalog.compiled e in
      let bindings, sources, sinks =
        Preo_lang.Eval.boundary_of_def c.Preo.def ~lengths:(e.Catalog.lengths 3)
      in
      let venv = Preo_lang.Eval.venv ~ints:[] ~arrays:bindings in
      let prims = Preo_lang.Eval.prims venv c.Preo.flat.Preo.Ast.c_body in
      let autos = Preo_lang.Eval.small_automata prims in
      let srcs = Iset.of_list (Array.to_list sources) in
      let snks = Iset.of_list (Array.to_list sinks) in
      let keep = Iset.union srcs snks in
      let restrict a =
        Automaton.trim (Automaton.hide (Iset.diff a.Automaton.vertices keep) a)
      in
      let reference = restrict (Product.all autos) in
      let colored = restrict (Coloring.lts ~sources:srcs ~sinks:snks autos) in
      Alcotest.(check bool)
        (e.Catalog.name ^ " coloring ~ product")
        true
        (Bisim.equivalent reference colored))
    Catalog.all

(* --- randomized agreement -------------------------------------------------- *)

type stage = St_sync | St_fifo | St_incr | St_full

let build_chain rng len =
  let stages =
    List.init len (fun _ ->
        match Rng.int rng 4 with
        | 0 -> St_sync
        | 1 -> St_fifo
        | 2 -> St_incr
        | _ -> St_full)
  in
  let a = Vertex.fresh "in" in
  let rec go tail = function
    | [] -> ([], tail)
    | st :: rest ->
      let head = Vertex.fresh "v" in
      let auto =
        match st with
        | St_sync ->
          Preo_reo.Prim.build Preo_reo.Prim.Sync ~tails:[ tail ]
            ~heads:[ head ]
        | St_fifo ->
          Preo_reo.Prim.build Preo_reo.Prim.Fifo1 ~tails:[ tail ]
            ~heads:[ head ]
        | St_incr ->
          Preo_reo.Prim.build
            (Preo_reo.Prim.Transform "incr")
            ~tails:[ tail ] ~heads:[ head ]
        | St_full ->
          Preo_reo.Prim.build
            (Preo_reo.Prim.Fifo1_full (Value.int 0))
            ~tails:[ tail ] ~heads:[ head ]
      in
      let autos, last = go head rest in
      (auto :: autos, last)
  in
  let autos, b = go a stages in
  (autos, a, b)

let run_chain config backend autos a b nitems =
  let conn =
    Connector.create ~config ~backend ~sources:[| a |] ~sinks:[| b |] autos
  in
  let got = ref [] in
  Task.run_all
    [
      (fun () ->
        for i = 1 to nitems do
          Port.send (Connector.outport conn a) (Value.int (i * 100))
        done);
      (fun () ->
        for _ = 1 to nitems do
          got := Value.to_int (Port.recv (Connector.inport conn b)) :: !got
        done);
    ];
  let steps = Connector.steps conn in
  let stats = Connector.stats conn in
  Connector.poison conn "done";
  (List.rev !got, steps, stats)

(* Partitioned connectors legitimately count fewer global steps than the
   monolithic runtime (bridge hand-offs replace fifo hops), so each
   coloring run is compared against an automata run of the SAME config:
   values and step counts must both coincide. *)
let chains_agree () =
  let rng = Rng.create 4242 in
  for _case = 1 to 10 do
    let len = 1 + Rng.int rng 6 in
    let descr_rng = Rng.copy rng in
    List.iter
      (fun (cname, config) ->
        let run backend =
          let rng' = Rng.copy descr_rng in
          let autos, a, b = build_chain rng' len in
          run_chain config backend autos a b 8
        in
        let rvals, rsteps, _ = run Sched.Automata in
        let cvals, csteps, stats = run Sched.Coloring in
        Alcotest.(check (pair (list int) int))
          (Printf.sprintf "case len=%d config=%s" len cname)
          (rvals, rsteps) (cvals, csteps);
        Alcotest.(check bool)
          (cname ^ " resolved by coloring")
          true
          (stats.Connector.st_color_rounds > 0
          && stats.Connector.st_color_iters >= stats.Connector.st_color_rounds))
      [ ("jit", Config.new_jit); ("partitioned", Config.new_partitioned) ];
    ignore (build_chain rng len)
  done

let fanout_agree () =
  let rng = Rng.create 88 in
  for _case = 1 to 4 do
    let k = 2 + Rng.int rng 4 in
    let incr_lane = Rng.int rng k in
    let run config backend =
      let a = Vertex.fresh "a" in
      let mids = Array.init k (fun _ -> Vertex.fresh "m") in
      let outs = Array.init k (fun _ -> Vertex.fresh "o") in
      let autos =
        Preo_reo.Prim.build Preo_reo.Prim.Replicator ~tails:[ a ]
          ~heads:(Array.to_list mids)
        :: List.init k (fun i ->
               if i = incr_lane then
                 Preo_reo.Prim.build
                   (Preo_reo.Prim.Transform "incr")
                   ~tails:[ mids.(i) ] ~heads:[ outs.(i) ]
               else
                 Preo_reo.Prim.build Preo_reo.Prim.Fifo1 ~tails:[ mids.(i) ]
                   ~heads:[ outs.(i) ])
      in
      let conn =
        Connector.create ~config ?backend ~sources:[| a |] ~sinks:outs autos
      in
      let lanes = Array.make k [] in
      let lock = Mutex.create () in
      Task.run_all
        ((fun () ->
           for i = 1 to 5 do
             Port.send (Connector.outport conn a) (Value.int i)
           done)
        :: List.init k (fun i -> fun () ->
               for _ = 1 to 5 do
                 let x =
                   Value.to_int (Port.recv (Connector.inport conn outs.(i)))
                 in
                 Mutex.lock lock;
                 lanes.(i) <- x :: lanes.(i);
                 Mutex.unlock lock
               done));
      Connector.poison conn "done";
      Array.map List.rev lanes
    in
    let reference = run Config.existing None in
    List.iter
      (fun (name, config) ->
        let got = run config (Some Sched.Coloring) in
        Array.iteri
          (fun i lane ->
            Alcotest.(check (list int))
              (Printf.sprintf "k=%d lane=%d %s" k i name)
              reference.(i) lane)
          got)
      [ ("coloring", Config.new_jit); ("coloring-part", Config.new_partitioned) ]
  done

(* --- the §V-C blow-up family at N=64 -------------------------------------- *)

let blowup_escape () =
  let e = Catalog.find "lossy_bcast" in
  let n = 64 in
  let existing =
    Config.Existing
      {
        use_dispatch = true;
        optimize_labels = true;
        max_states = 2_000;
        max_trans = 8_000;
        max_compile_seconds = 1.0;
        true_synchronous = false;
      }
  in
  let jit =
    Config.New
      {
        optimize_labels = true;
        cache_capacity = 0;
        expansion_budget = 50_000;
        partition = false;
        true_synchronous = false;
      }
  in
  (match Driver.run_noop ~config:existing ~seconds:0.05 e ~n with
   | Driver.Compile_failed msg ->
     Alcotest.(check bool) "AOT failure names the connector" true
       (contains ~sub:"NLossyBcast" msg);
     Alcotest.(check bool) "AOT failure reports progress" true
       (contains ~sub:"exceeded" msg)
   | _ -> Alcotest.fail "existing approach must trip its budget at N=64");
  (match
     Driver.run_noop ~config:jit ~backend:Sched.Automata ~seconds:0.05 e ~n
   with
   | Driver.Run_failed msg ->
     Alcotest.(check bool) "JIT failure names the connector" true
       (contains ~sub:"NLossyBcast" msg)
   | Driver.Compile_failed msg -> Alcotest.fail ("unexpected compile: " ^ msg)
   | Driver.Steps _ ->
     Alcotest.fail "JIT expansion must trip its budget at N=64");
  match Driver.run_noop ~config:jit ~backend:Sched.Coloring ~seconds:0.1 e ~n with
  | Driver.Steps { steps; stats; _ } ->
    Alcotest.(check bool) "coloring makes progress" true (steps > 0);
    Alcotest.(check bool) "rounds resolved by coloring" true
      (stats.Connector.st_color_rounds > 0)
  | Driver.Compile_failed msg -> Alcotest.fail ("coloring compile: " ^ msg)
  | Driver.Run_failed msg -> Alcotest.fail ("coloring run: " ^ msg)

(* --- budget diagnostics (satellite) ---------------------------------------- *)

let product_budget_messages () =
  let chain () =
    let a = Vertex.fresh "a" and m1 = Vertex.fresh "m1" in
    let m2 = Vertex.fresh "m2" and b = Vertex.fresh "b" in
    [
      Preo_reo.Prim.build Preo_reo.Prim.Fifo1 ~tails:[ a ] ~heads:[ m1 ];
      Preo_reo.Prim.build Preo_reo.Prim.Fifo1 ~tails:[ m1 ] ~heads:[ m2 ];
      Preo_reo.Prim.build Preo_reo.Prim.Fifo1 ~tails:[ m2 ] ~heads:[ b ];
    ]
  in
  (match Product.all ~label:"widget" ~max_states:4 (chain ()) with
   | exception Product.Budget_exceeded msg ->
     Alcotest.(check bool) "state message names connector" true
       (contains ~sub:"product of widget exceeded 4 states" msg);
     Alcotest.(check bool) "state message reports transitions" true
       (contains ~sub:"transitions reached" msg)
   | _ -> Alcotest.fail "state budget must trip");
  (match Product.all ~label:"widget" ~max_trans:3 (chain ()) with
   | exception Product.Budget_exceeded msg ->
     Alcotest.(check bool) "transition message names connector" true
       (contains ~sub:"product of widget exceeded 3 transitions" msg);
     Alcotest.(check bool) "transition message reports states" true
       (contains ~sub:"states reached" msg)
   | _ -> Alcotest.fail "transition budget must trip");
  (* the quadratic connectivity-ordering loop is covered by the same
     compile-time budget; an already-expired deadline must trip there,
     before any pairwise product is attempted *)
  match Product.all ~label:"widget" ~max_seconds:(-1.0) (chain ()) with
  | exception Product.Budget_exceeded msg ->
    Alcotest.(check bool) "ordering message names connector" true
      (contains ~sub:"product of widget exceeded its compile-time budget" msg);
    Alcotest.(check bool) "ordering message reports progress" true
      (contains ~sub:"while ordering the composition (1 of 3 automata ordered)"
         msg)
  | _ -> Alcotest.fail "ordering deadline must trip"

(* --- resolution and downgrade rules ---------------------------------------- *)

let fifo1 () =
  let a = Vertex.fresh "a" and b = Vertex.fresh "b" in
  (a, b, Preo_reo.Prim.build Preo_reo.Prim.Fifo1 ~tails:[ a ] ~heads:[ b ])

let backend_downgrades () =
  (* neutralize any PREO_BACKEND process default: these cases pin down the
     resolution rules themselves *)
  let saved = !Sched.backend in
  Sched.backend := None;
  Fun.protect ~finally:(fun () -> Sched.backend := saved) @@ fun () ->
  let check name config backend expect =
    let a, b, auto = fifo1 () in
    let conn =
      Connector.create ~config ?backend ~sources:[| a |] ~sinks:[| b |]
        [ auto ]
    in
    Fun.protect
      ~finally:(fun () -> Connector.close conn)
      (fun () ->
        Alcotest.(check string) name (Sched.to_string expect)
          (Sched.to_string (Connector.backend conn)))
  in
  check "jit honors coloring" Config.new_jit (Some Sched.Coloring)
    Sched.Coloring;
  check "default is automata" Config.new_jit None Sched.Automata;
  check "existing downgrades to automata" Config.existing (Some Sched.Coloring)
    Sched.Automata;
  check "true_synchronous downgrades to automata"
    (Config.synchronous_of Config.new_jit)
    (Some Sched.Coloring) Sched.Automata

let color_counters () =
  let a, b, auto = fifo1 () in
  let conn =
    Connector.create ~backend:Sched.Coloring ~sources:[| a |] ~sinks:[| b |]
      [ auto ]
  in
  Task.run_all
    [
      (fun () ->
        for i = 1 to 5 do
          Port.send (Connector.outport conn a) (Value.int i)
        done);
      (fun () ->
        for _ = 1 to 5 do
          ignore (Port.recv (Connector.inport conn b))
        done);
    ];
  let st = Connector.stats conn in
  Connector.close conn;
  Alcotest.(check bool) "color rounds counted" true
    (st.Connector.st_color_rounds >= 10);
  Alcotest.(check bool) "iters dominate rounds" true
    (st.Connector.st_color_iters >= st.Connector.st_color_rounds);
  (* and the automata backend reports zeros *)
  let a, b, auto = fifo1 () in
  let conn =
    Connector.create ~backend:Sched.Automata ~sources:[| a |] ~sinks:[| b |]
      [ auto ]
  in
  Port.send (Connector.outport conn a) Value.unit;
  ignore (Port.recv (Connector.inport conn b));
  let st = Connector.stats conn in
  Connector.close conn;
  Alcotest.(check int) "automata: no color rounds" 0
    st.Connector.st_color_rounds;
  Alcotest.(check int) "automata: no color iters" 0 st.Connector.st_color_iters

(* --- deadline/watchdog parity (satellite) ---------------------------------- *)

let with_family_coloring ?(n = 4) name f =
  let e = Catalog.find name in
  List.iter
    (fun (cname, config) ->
      let inst =
        Preo.instantiate ~config ~backend:Sched.Coloring
          (Catalog.compiled e)
          ~lengths:(e.Catalog.lengths n)
      in
      Fun.protect
        ~finally:(fun () -> Preo.shutdown inst)
        (fun () ->
          f cname n inst;
          let st = Preo.Connector.stats (Preo.connector inst) in
          Alcotest.(check bool)
            (cname ^ " storm ran on the coloring backend")
            true
            (st.Preo.Connector.st_color_rounds > 0)))
    [ ("jit", Config.new_jit); ("partitioned", Config.new_partitioned) ]

let recv_retry rng p =
  let rec go () =
    if Rng.int rng 4 = 0 then
      match Port.recv_opt ~deadline:(Unix.gettimeofday () +. 0.002) p with
      | Ok v -> v
      | Error _ -> go ()
    else Port.recv p
  in
  go ()

let send_retry rng p v =
  let rec go () =
    if Rng.int rng 4 = 0 then
      match Port.send_opt ~deadline:(Unix.gettimeofday () +. 0.002) p v with
      | Ok () -> ()
      | Error _ -> go ()
    else Port.send p v
  in
  go ()

let sequencer_storm_coloring () =
  with_family_coloring "sequencer" (fun cname n inst ->
      let ins = Preo.inports inst "hd" in
      let rng = Rng.create 303 in
      let order = ref [] in
      Task.run_all
        [
          (fun () ->
            for _round = 1 to 25 do
              Array.iteri
                (fun i p ->
                  ignore (recv_retry rng p);
                  order := i :: !order)
                ins
            done);
        ];
      Alcotest.(check (list int))
        (cname ^ " rotation survives deadlines under coloring")
        (List.concat (List.init 25 (fun _ -> List.init n Fun.id)))
        (List.rev !order))

let broadcast_storm_coloring () =
  with_family_coloring "broadcast_fifo" (fun cname n inst ->
      let out = (Preo.outports inst "tl").(0) in
      let ins = Preo.inports inst "hd" in
      let rounds = 40 in
      let streams = Array.make n [] in
      let lock = Mutex.create () in
      Task.run_all
        ((fun () ->
           let rng = Rng.create 9 in
           for r = 1 to rounds do
             send_retry rng out (Value.int r)
           done)
        :: List.init n (fun i -> fun () ->
               let rng = Rng.create (2000 + i) in
               for _ = 1 to rounds do
                 let x = Value.to_int (recv_retry rng ins.(i)) in
                 Mutex.lock lock;
                 streams.(i) <- x :: streams.(i);
                 Mutex.unlock lock
               done));
      Array.iteri
        (fun i s ->
          Alcotest.(check (list int))
            (Printf.sprintf "%s stream %d in order under coloring" cname i)
            (List.init rounds (fun r -> r + 1))
            (List.rev s))
        streams)

(* A timed-out operation must carry the same structured snapshot on both
   backends: op, vertex, wait time, and one engine snapshot whose pending
   set lists the parked vertex. *)
let stall_report_parity () =
  List.iter
    (fun backend ->
      let tag = Sched.to_string backend in
      let a, b, auto = fifo1 () in
      let conn =
        Connector.create ~backend ~sources:[| a |] ~sinks:[| b |] [ auto ]
      in
      Fun.protect
        ~finally:(fun () -> Connector.close conn)
        (fun () ->
          match
            Port.recv_opt
              ~deadline:(Unix.gettimeofday () +. 0.02)
              (Connector.inport conn b)
          with
          | Ok _ -> Alcotest.fail (tag ^ ": empty fifo cannot deliver")
          | Error r ->
            Alcotest.(check string) (tag ^ " op") "recv" r.Engine.sr_op;
            Alcotest.(check bool) (tag ^ " vertex named") true
              (String.length r.Engine.sr_vertex > 0);
            Alcotest.(check bool) (tag ^ " waited") true
              (r.Engine.sr_waited >= 0.0);
            Alcotest.(check int)
              (tag ^ " one engine snapshot")
              1
              (List.length r.Engine.sr_engines);
            let es = List.hd r.Engine.sr_engines in
            Alcotest.(check bool) (tag ^ " pending recorded") true
              (List.exists
                 (fun v -> contains ~sub:r.Engine.sr_vertex v)
                 es.Engine.es_pending);
            Alcotest.(check bool) (tag ^ " not poisoned") true
              (es.Engine.es_poisoned = None);
            let st = Connector.stats conn in
            Alcotest.(check bool) (tag ^ " stall counted") true
              (st.Connector.st_stalls >= 1);
            Alcotest.(check bool) (tag ^ " last_stall kept") true
              (Connector.last_stall conn <> None)))
    [ Sched.Automata; Sched.Coloring ]

(* --- elastic splicing under coloring --------------------------------------- *)

let bcast_src =
  {|NBcastFifo(tl;hd[]) =
  Repl(tl;x[1..#hd])
  mult prod (i:1..#hd) Fifo1(x[i];hd[i])|}

let elastic_grow_under_coloring () =
  let c = Preo.compile ~source:bcast_src ~name:"NBcastFifo" in
  let inst =
    Preo.instantiate ~backend:Sched.Coloring c ~lengths:[ ("hd", 2) ]
  in
  Fun.protect
    ~finally:(fun () -> Preo.shutdown inst)
    (fun () ->
      let tl = (Preo.outports inst "tl").(0) in
      Port.send tl (Value.int 7);
      let idx = Preo.grow inst "hd" in
      Alcotest.(check int) "new slot is 3" 3 idx;
      Alcotest.(check string) "backend survives the splice" "coloring"
        (Sched.to_string (Preo.Connector.backend (Preo.connector inst)));
      Alcotest.(check int) "pre-splice datum survives (slot 1)" 7
        (Value.to_int (Port.recv (Preo.inport_at inst "hd" 1)));
      Alcotest.(check int) "pre-splice datum survives (slot 2)" 7
        (Value.to_int (Port.recv (Preo.inport_at inst "hd" 2)));
      let got = Array.make 3 0 in
      Task.run_all ~on:(Preo.sched inst)
        ((fun () -> Port.send tl (Value.int 9))
        :: List.init 3 (fun k -> fun () ->
               got.(k) <-
                 Value.to_int (Port.recv (Preo.inport_at inst "hd" (k + 1)))));
      Alcotest.(check (list int)) "all three slots served" [ 9; 9; 9 ]
        (Array.to_list got);
      let st = Preo.Connector.stats (Preo.connector inst) in
      Alcotest.(check bool) "rounds resolved by coloring" true
        (st.Preo.Connector.st_color_rounds > 0))

(* --- catalog smoke --------------------------------------------------------- *)

let catalog_smoke_coloring () =
  List.iter
    (fun name ->
      let e = Catalog.find name in
      match Driver.smoke ~backend:Sched.Coloring e ~n:4 with
      | Ok steps ->
        Alcotest.(check bool) (name ^ " makes progress") true (steps > 0)
      | Error msg -> Alcotest.fail (name ^ ": " ^ msg))
    [ "sequencer"; "broadcast_fifo"; "ordered_merger"; "token_ring" ]

let tests =
  [
    ("sched selection unit", `Quick, sched_unit);
    ("catalog: coloring ~ product (bisimulation)", `Quick, catalog_bisimulation);
    ("random chains agree across backends", `Quick, chains_agree);
    ("random fanouts agree across backends", `Quick, fanout_agree);
    ("lossy_bcast N=64: coloring escapes the blow-up", `Quick, blowup_escape);
    ("product budget messages name the connector", `Quick,
     product_budget_messages);
    ("backend resolution and downgrades", `Quick, backend_downgrades);
    ("st_color_* counters", `Quick, color_counters);
    ("sequencer deadline storm (coloring)", `Quick, sequencer_storm_coloring);
    ("broadcast deadline storm (coloring)", `Quick, broadcast_storm_coloring);
    ("stall report parity across backends", `Quick, stall_report_parity);
    ("elastic grow under coloring", `Quick, elastic_grow_under_coloring);
    ("catalog smoke under coloring", `Quick, catalog_smoke_coloring);
  ]
