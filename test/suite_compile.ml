(* Compiled transition dispatch certified against the interpreted
   reference:
   - every solved catalog command agrees with its closure-compiled form on
     randomized environments — verdict, cell writes and deliveries, in
     order (the per-label equivalence behind the dispatch swap);
   - every catalog family executes with compilation on and off under both
     backends; compiled runs fire through closures (st_compiled_fires),
     the PREO_COMPILE=0 reference never does;
   - randomized chains transport identical data and count identical steps
     compiled vs interpreted;
   - splicing a live compiled instance rebuilds the compiled tables (grow
     and shrink keep firing through closures);
   - the sequencer ring is sequentialized to a single region and its
     grant order matches the unfused reference. *)

open Preo_support
open Preo_automata
module Catalog = Preo_connectors.Catalog
module Driver = Preo_connectors.Driver
module Config = Preo_runtime.Config
module Connector = Preo_runtime.Connector
module Partition = Preo_runtime.Partition
module Port = Preo_runtime.Port
module Task = Preo_runtime.Task
module Sched = Preo_runtime.Sched

(* --- per-label equivalence: compiled ≡ interpreted over the catalog ------- *)

type effect_ = E_cell of int * Value.t | E_sink of Vertex.t * Value.t

let effects_equal a b =
  List.compare_lengths a b = 0
  && List.for_all2
       (fun x y ->
         match (x, y) with
         | E_cell (i, v), E_cell (j, w) -> i = j && Value.equal v w
         | E_sink (p, v), E_sink (q, w) -> Vertex.equal p q && Value.equal v w
         | _ -> false)
       a b

(* Deterministic environment: the same (seed, vertex/cell) always yields the
   same value, so the interpreted and compiled runs see identical inputs;
   writes and deliveries are logged, not applied. *)
let mk_env ~seed log =
  {
    Command.read_send =
      (fun v -> Value.int ((seed * 131) + (Hashtbl.hash v land 0xfff)));
    read_cell = (fun i -> Value.int ((seed * 31) + (7 * i) + 3));
    write_cell = (fun i x -> log := E_cell (i, x) :: !log);
    deliver = (fun v x -> log := E_sink (v, x) :: !log);
  }

let catalog_commands_agree () =
  let ncompiled = ref 0 and nexotic = ref 0 in
  List.iter
    (fun (e : Catalog.entry) ->
      let c = Catalog.compiled e in
      let bindings, _, _ =
        Preo_lang.Eval.boundary_of_def c.Preo.def ~lengths:(e.Catalog.lengths 3)
      in
      let venv = Preo_lang.Eval.venv ~ints:[] ~arrays:bindings in
      let prims = Preo_lang.Eval.prims venv c.Preo.flat.Preo.Ast.c_body in
      let autos = Preo_lang.Eval.small_automata prims in
      List.iter
        (fun (a : Automaton.t) ->
          Array.iter
            (Array.iter (fun (tr : Automaton.trans) ->
                 match
                   Command.solve
                     ~readable:(Iset.inter a.Automaton.sources tr.Automaton.sync)
                     ~writable:(Iset.inter a.Automaton.sinks tr.Automaton.sync)
                     tr.Automaton.constr
                 with
                 | Error _ -> () (* never fires; nothing to dispatch *)
                 | Ok cmd -> (
                   match Command.compile cmd with
                   | None -> incr nexotic
                   | Some k ->
                     incr ncompiled;
                     for seed = 1 to 5 do
                       let ilog = ref [] and clog = ref [] in
                       let ienv = mk_env ~seed ilog
                       and cenv = mk_env ~seed clog in
                       let ifired = Command.guards_hold cmd ienv in
                       if ifired then Command.execute cmd ienv;
                       let cfired = Command.fire_compiled k cenv in
                       Alcotest.(check bool)
                         (e.Catalog.name ^ ": verdict agrees")
                         ifired cfired;
                       Alcotest.(check bool)
                         (e.Catalog.name ^ ": effects agree")
                         true
                         (effects_equal (List.rev !ilog) (List.rev !clog))
                     done)))
            a.Automaton.trans)
        autos)
    Catalog.all;
  Alcotest.(check bool) "catalog exercises compiled commands" true
    (!ncompiled > 100);
  Alcotest.(check int) "stock catalog has no exotic commands" 0 !nexotic

(* --- the whole catalog executes, compiled and interpreted, both backends -- *)

let catalog_runs_both_modes () =
  List.iter
    (fun backend ->
      let bname = Sched.to_string backend in
      List.iter
        (fun (e : Catalog.entry) ->
          List.iter
            (fun mode ->
              let saved = !Config.compile in
              Fun.protect
                ~finally:(fun () -> Config.compile := saved)
                (fun () ->
                  Config.compile := Some mode;
                  let label =
                    Printf.sprintf "%s/%s/compile=%b" e.Catalog.name bname mode
                  in
                  match Driver.run_noop ~backend ~seconds:0.02 e ~n:3 with
                  | Driver.Steps { steps; stats; _ } ->
                    Alcotest.(check bool) (label ^ " progresses") true
                      (steps > 0);
                    if mode then
                      Alcotest.(check bool)
                        (label ^ " fires through closures")
                        true
                        (stats.Connector.st_compiled_fires > 0)
                    else
                      Alcotest.(check int)
                        (label ^ " reference never compiles")
                        0 stats.Connector.st_compiled_fires
                  | Driver.Compile_failed msg | Driver.Run_failed msg ->
                    Alcotest.fail (label ^ ": " ^ msg)))
            [ true; false ])
        Catalog.all)
    [ Sched.Automata; Sched.Coloring ]

(* --- randomized value/step agreement -------------------------------------- *)

type stage = St_sync | St_fifo | St_incr | St_full

let build_chain rng len =
  let stages =
    List.init len (fun _ ->
        match Rng.int rng 4 with
        | 0 -> St_sync
        | 1 -> St_fifo
        | 2 -> St_incr
        | _ -> St_full)
  in
  let a = Vertex.fresh "in" in
  let rec go tail = function
    | [] -> ([], tail)
    | st :: rest ->
      let head = Vertex.fresh "v" in
      let auto =
        match st with
        | St_sync ->
          Preo_reo.Prim.build Preo_reo.Prim.Sync ~tails:[ tail ] ~heads:[ head ]
        | St_fifo ->
          Preo_reo.Prim.build Preo_reo.Prim.Fifo1 ~tails:[ tail ]
            ~heads:[ head ]
        | St_incr ->
          Preo_reo.Prim.build
            (Preo_reo.Prim.Transform "incr")
            ~tails:[ tail ] ~heads:[ head ]
        | St_full ->
          Preo_reo.Prim.build
            (Preo_reo.Prim.Fifo1_full (Value.int 0))
            ~tails:[ tail ] ~heads:[ head ]
      in
      let autos, last = go head rest in
      (auto :: autos, last)
  in
  let autos, b = go a stages in
  (autos, a, b)

let run_chain config compile autos a b nitems =
  let conn =
    Connector.create ~config ~compile ~sources:[| a |] ~sinks:[| b |] autos
  in
  let got = ref [] in
  Task.run_all
    [
      (fun () ->
        for i = 1 to nitems do
          Port.send (Connector.outport conn a) (Value.int (i * 100))
        done);
      (fun () ->
        for _ = 1 to nitems do
          got := Value.to_int (Port.recv (Connector.inport conn b)) :: !got
        done);
    ];
  let steps = Connector.steps conn in
  let stats = Connector.stats conn in
  Connector.poison conn "done";
  (List.rev !got, steps, stats)

let chains_agree_compiled_vs_interpreted () =
  let rng = Rng.create 9099 in
  for _case = 1 to 8 do
    let len = 1 + Rng.int rng 6 in
    let descr_rng = Rng.copy rng in
    List.iter
      (fun (cname, config, compare_steps) ->
        let run compile =
          let rng' = Rng.copy descr_rng in
          let autos, a, b = build_chain rng' len in
          run_chain config compile autos a b 8
        in
        let ivals, isteps, istats = run false in
        let cvals, csteps, cstats = run true in
        Alcotest.(check (list int))
          (Printf.sprintf "values len=%d config=%s" len cname)
          ivals cvals;
        (* Sequentialization legitimately changes the partitioned step
           count: fused fifos fire as ordinary transitions where the
           unfused run hands values across a bridge queue. *)
        if compare_steps then
          Alcotest.(check int)
            (Printf.sprintf "steps len=%d config=%s" len cname)
            isteps csteps;
        Alcotest.(check int)
          (cname ^ " reference never compiles")
          0 istats.Connector.st_compiled_fires;
        Alcotest.(check bool)
          (cname ^ " compiled run uses closures")
          true
          (cstats.Connector.st_compiled_fires > 0
          && cstats.Connector.st_interp_fires = 0))
      [
        ("jit", Config.new_jit, true);
        ("partitioned", Config.new_partitioned, false);
      ];
    ignore (build_chain rng len)
  done

(* --- splice on a live compiled instance ----------------------------------- *)

let bcast_src =
  {|NBcastFifo(tl;hd[]) =
  Repl(tl;x[1..#hd])
  mult prod (i:1..#hd) Fifo1(x[i];hd[i])|}

let splice_rebuilds_compiled_tables () =
  let open Preo in
  let c = compile ~source:bcast_src ~name:"NBcastFifo" in
  let inst = instantiate ~compile:true c ~lengths:[ ("hd", 2) ] in
  Fun.protect
    ~finally:(fun () -> shutdown inst)
    (fun () ->
      let bcast n v =
        Task.run_all ~on:(sched inst)
          ((fun () -> Port.send (outports inst "tl").(0) (Value.int v))
          :: List.init n (fun k -> fun () ->
                 Alcotest.(check int) "broadcast value" v
                   (Value.to_int (Port.recv (inport_at inst "hd" (k + 1))))))
      in
      bcast 2 7;
      let fires0 =
        (Connector.stats (connector inst)).Connector.st_compiled_fires
      in
      Alcotest.(check bool) "compiled before splice" true (fires0 > 0);
      ignore (grow inst "hd");
      bcast 3 8;
      let fires1 =
        (Connector.stats (connector inst)).Connector.st_compiled_fires
      in
      Alcotest.(check bool) "grown tables compiled" true (fires1 > fires0);
      shrink inst "hd";
      bcast 2 9;
      let st = Connector.stats (connector inst) in
      Alcotest.(check bool) "shrunk tables compiled" true
        (st.Connector.st_compiled_fires > fires1);
      Alcotest.(check int) "nothing fell back to interpretation" 0
        st.Connector.st_interp_fires)

(* --- sequentialization: fused ≡ unfused on the sequencer ring ------------- *)

let seq_src =
  {|NSequencer(;hd[]) =
  prod (i:1..#hd) Repl2(v[i];hd[i],u[i])
  mult prod (i:1..#hd-1) Fifo1(u[i];v[i+1])
  mult Fifo1Full(u[#hd];v[1])|}

let sequencer_fuses_to_one_region () =
  let open Preo in
  let n = 4 in
  let rounds inst k =
    (* One receiver walking the ring in grant order: any deviation from
       strict round-robin deadlocks and trips the deadline. *)
    for _ = 1 to k do
      for i = 1 to n do
        ignore (Port.recv ~deadline:5.0 (inport_at inst "hd" i))
      done
    done
  in
  let c = compile ~source:seq_src ~name:"NSequencer" in
  let run cmode =
    let inst =
      instantiate ~config:Config.new_partitioned ~domains:2 ~compile:cmode c
        ~lengths:[ ("hd", n) ]
    in
    Fun.protect
      ~finally:(fun () -> shutdown inst)
      (fun () ->
        rounds inst 3;
        (Connector.nregions (connector inst),
         Connector.regions_fused (connector inst)))
  in
  let uregions, ufused = run false in
  let fregions, ffused = run true in
  Alcotest.(check int) "unfused split keeps the ring cut" n uregions;
  Alcotest.(check int) "unfused run reports no merges" 0 ufused;
  Alcotest.(check int) "ring sequentialized to one region" 1 fregions;
  Alcotest.(check int) "all cuts merged" (n - 1) ffused

let tests =
  [
    ("catalog: compiled ≡ interpreted commands", `Quick, catalog_commands_agree);
    ("catalog runs compiled and interpreted (both backends)", `Slow,
     catalog_runs_both_modes);
    ("random chains agree compiled vs interpreted", `Quick,
     chains_agree_compiled_vs_interpreted);
    ("splice rebuilds compiled tables", `Quick, splice_rebuilds_compiled_tables);
    ("sequencer fuses to one region", `Quick, sequencer_fuses_to_one_region);
  ]
